// Package perfcloud reproduces "Performance Isolation of Data-Intensive
// Scale-out Applications in a Multi-tenant Cloud" (Lama, Wang, Zhou,
// Cheng — IPPS 2018) as a self-contained Go library: the PerfCloud
// system (internal/core) plus every substrate its evaluation depends on
// — a discrete-time cluster simulator with cgroup/perf-counter surfaces,
// a libvirt-like hypervisor facade, a Nova-like cloud manager, HDFS-like
// storage, MapReduce and Spark framework simulators, the fio/STREAM/
// sysbench antagonist benchmarks, and the LATE and Dolly baselines.
//
// See DESIGN.md for the system inventory and per-experiment index,
// EXPERIMENTS.md for paper-vs-measured results, and bench_test.go for
// the harness that regenerates every table and figure.
package perfcloud
