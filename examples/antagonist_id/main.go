// Antagonist identification: colocate a Hadoop terasort cluster with
// four low-priority suspects — a bursty fio random-read stressor, a
// bursty STREAM, a steady sysbench oltp and a steady sysbench cpu — and
// show how PerfCloud's online Pearson cross-correlation singles out the
// real culprits within a handful of 5-second measurement intervals.
//
// Run with: go run ./examples/antagonist_id
package main

import (
	"fmt"
	"time"

	"perfcloud/internal/experiments"
	"perfcloud/internal/mapreduce"
	"perfcloud/internal/stats"
	"perfcloud/internal/workloads"
)

func main() {
	tb := experiments.NewTestbed(experiments.TestbedConfig{
		Seed:      11,
		PerfCloud: experiments.ObserverConfig(),
	})
	tb.MustInput("input", 640<<20)
	tb.AddAntagonist(0, workloads.NewFioRandRead(
		workloads.BurstPattern{StartOffset: 10 * time.Second, On: 20 * time.Second, Off: 10 * time.Second}))
	tb.AddAntagonist(0, workloads.NewSysbenchOLTP(workloads.AlwaysOn))
	tb.AddAntagonist(0, workloads.NewSysbenchCPU(workloads.AlwaysOn))

	// Keep the victim busy for two minutes.
	j, _ := tb.JT.Submit(mapreduce.Terasort("input", 10), 0)
	for tb.Eng.Clock().Seconds() < 120 {
		tb.Eng.Step()
		if j.Done() {
			j, _ = tb.JT.Submit(mapreduce.Terasort("input", 10), tb.Eng.Clock().Seconds())
		}
	}

	corr := tb.Sys.Managers()[0].Correlator()
	victim := corr.VictimIOSeries().Values()
	fmt.Println("== Pearson correlation of victim iowait deviation vs suspect I/O activity ==")
	fmt.Printf("%-16s", "dataset size:")
	sizes := []int{3, 4, 6, 8, 10}
	for _, n := range sizes {
		fmt.Printf("  n=%-5d", n)
	}
	fmt.Println()
	for _, suspect := range []string{"fio-randread", "sysbench-oltp", "sysbench-cpu"} {
		s := corr.SuspectIOSeries(suspect)
		fmt.Printf("%-16s", suspect)
		for _, n := range sizes {
			// Skip the first two warm-up samples, as the harness does.
			r, err := stats.PearsonMissingAsZero(victim[2:2+n], s.Values()[2:2+n])
			if err != nil {
				fmt.Printf("  %-7s", "-")
				continue
			}
			mark := " "
			if r >= 0.8 {
				mark = "*" // identified as antagonist
			}
			fmt.Printf("  %+.2f%s ", r, mark)
		}
		fmt.Println()
	}
	fmt.Println("\n(*) correlation >= 0.8: identified as an antagonist")
}
