// Interference detection: watch PerfCloud's two system-level signals —
// the std-dev of the block-iowait ratio and of CPI across a scale-out
// application's VMs — respond to an I/O antagonist and a memory
// antagonist, without any application-level instrumentation.
//
// Run with: go run ./examples/interference_detection
package main

import (
	"fmt"
	"time"

	"perfcloud/internal/experiments"
	"perfcloud/internal/mapreduce"
	"perfcloud/internal/workloads"
)

func main() {
	fmt.Println("== Detection signals under different antagonists ==")
	fmt.Println("thresholds: iowait-ratio dev H_io = 10 ms/op, CPI dev H_cpi = 1")
	fmt.Println()
	for _, scenario := range []string{"alone", "fio", "stream"} {
		runScenario(scenario)
	}
}

func runScenario(antagonist string) {
	// Observe-only PerfCloud: record the signals, never throttle.
	tb := experiments.NewTestbed(experiments.TestbedConfig{
		Seed:      7,
		PerfCloud: experiments.ObserverConfig(),
	})
	tb.MustInput("input", 640<<20)
	switch antagonist {
	case "fio":
		tb.AddAntagonist(0, workloads.NewFioRandRead(
			workloads.BurstPattern{StartOffset: 10 * time.Second, On: 20 * time.Second, Off: 10 * time.Second}))
	case "stream":
		pat := workloads.BurstPattern{StartOffset: 10 * time.Second, On: 25 * time.Second, Off: 10 * time.Second}
		tb.AddAntagonist(0, workloads.NewStream(pat))
		tb.AddAntagonist(0, workloads.NewStream(pat))
	}

	// Keep terasort running for 90 s of simulated time.
	j, _ := tb.JT.Submit(mapreduce.Terasort("input", 10), 0)
	for tb.Eng.Clock().Seconds() < 90 {
		tb.Eng.Step()
		if j.Done() {
			j, _ = tb.JT.Submit(mapreduce.Terasort("input", 10), tb.Eng.Clock().Seconds())
		}
	}

	nm := tb.Sys.Managers()[0]
	var peakIO, peakCPI float64
	detections := 0
	for _, e := range nm.Trace() {
		if e.IowaitDev > peakIO {
			peakIO = e.IowaitDev
		}
		if e.CPIDev > peakCPI {
			peakCPI = e.CPIDev
		}
		if e.IOContention || e.CPUContention {
			detections++
		}
	}
	fmt.Printf("%-8s peak iowait dev %6.1f ms/op | peak CPI dev %5.2f | %d/%d intervals flagged\n",
		antagonist, peakIO, peakCPI, detections, len(nm.Trace()))
}
