// Planet scale: a 10,000-server cloud hosting one million VMs, of which
// only a small hot region (16 servers of Hadoop workers) does anything.
// This is the multi-tenant-cloud shape the paper's scheme must coexist
// with — fleets where almost every tenant is idle at any instant — and
// the setting the sharded cluster tick is built for: per-tick cost is
// O(active servers + shards), so a terasort on the hot region runs in
// seconds of wall clock even though every tick nominally covers all ten
// thousand servers.
//
// The cloud manager side scales the same way: the one million Boot calls
// each pick the least-loaded server from the hierarchical (zone → rack →
// server) placement index in O(log servers) instead of rescanning the
// fleet's VMs.
//
// Telemetry follows the hierarchy too: FleetTelemetry exports gauges and
// time series per zone and per tick shard — never per server — so the
// Prometheus exposition for the whole fleet stays a few hundred samples
// instead of ten thousand.
//
// Run with: go run ./examples/planet_scale
//
//	-servers N   fleet size            (default 10000)
//	-vms N       total VMs to host     (default 1000000)
//	-hot N       busy Hadoop servers   (default 16)
//	-shards N    0 auto, -1 flat path  (default 0; -1 shows the contrast)
//	-jobs N      terasort jobs to run  (default 2)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"strings"
	"time"

	"perfcloud/internal/cloud"
	"perfcloud/internal/cluster"
	"perfcloud/internal/experiments"
	"perfcloud/internal/mapreduce"
	"perfcloud/internal/obs"
)

func main() {
	servers := flag.Int("servers", 10000, "total servers in the fleet")
	vms := flag.Int("vms", 1000000, "total VMs hosted across the fleet")
	hot := flag.Int("hot", 16, "servers running the Hadoop workers")
	shards := flag.Int("shards", 0, "cluster tick shards: 0 auto, n forced, -1 flat pre-shard path")
	jobs := flag.Int("jobs", 2, "terasort jobs to run on the hot region")
	seed := flag.Int64("seed", 42, "random seed")
	parallel := flag.Int("parallel", 0, "tick worker bound (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()
	cluster.SetDefaultShards(*shards)
	cluster.SetDefaultTickWorkers(*parallel)

	// The hot region: a normal testbed — Hadoop worker VMs, DFS, job
	// tracker — confined to the first -hot servers.
	start := time.Now()
	tb := experiments.NewTestbed(experiments.TestbedConfig{
		Seed:             *seed,
		Servers:          *hot,
		WorkersPerServer: 8,
	})
	tb.MustInput("input", 640<<20)

	// The rest of the planet: cold servers and idle tenant VMs, placed by
	// the cloud manager's spread scheduler.
	tb.CM.ProvisionServers(*servers - *hot)
	for i := tb.Clus.NumVMs(); i < *vms; i++ {
		if _, err := tb.CM.Boot(cloud.VMSpec{Name: fmt.Sprintf("tenant-%07d", i)}); err != nil {
			panic(err)
		}
	}
	build := time.Since(start)
	zones := tb.CM.Zones()
	fmt.Printf("== fleet: %d servers in %d zones, %d VMs (built in %.1fs) ==\n",
		tb.Clus.NumServers(), len(zones), tb.Clus.NumVMs(), build.Seconds())

	// Fleet telemetry at hierarchy granularity: one sample per zone and
	// per shard. A Sample is O(zones + shards), so taking one per job is
	// noise next to the simulation itself.
	reg := obs.NewRegistry()
	sr := obs.NewSeriesRegistry(0)
	ft := tb.FleetTelemetry(reg, sr)
	ft.Sample(tb.Eng.Clock().Seconds())

	start = time.Now()
	var jct float64
	for j := 0; j < *jobs; j++ {
		job := tb.RunMR(mapreduce.Terasort("input", 10), time.Hour)
		jct += job.JCT()
		ft.Sample(tb.Eng.Clock().Seconds())
	}
	run := time.Since(start)
	fmt.Printf("%d terasort jobs on the hot region: mean JCT %.1fs simulated, %.2fs wall\n",
		*jobs, jct/float64(*jobs), run.Seconds())

	fp := tb.Clus.FastPathStats()
	fmt.Printf("active servers at the end: %d of %d (%d shards)\n",
		tb.Clus.ActiveServers(), tb.Clus.NumServers(), tb.Clus.ShardCount())
	fmt.Printf("fast paths: %d whole-shard skips, %d quiescent grant skips, %d stride-elided ticks\n",
		fp.ShardSkips, fp.QuiescentSkips, fp.StrideSkips)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		panic(err)
	}
	samples := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			samples++
		}
	}
	fmt.Printf("fleet telemetry: %d /metrics samples and %d time series for %d servers (%d zones + %d shards)\n",
		samples, len(sr.Keys()), tb.Clus.NumServers(), len(zones), tb.Clus.ShardCount())
}
