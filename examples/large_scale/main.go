// Large scale: a 15-server, 150-worker virtual cluster running a mix of
// MapReduce and Spark jobs (80% small, 20% large) with randomly placed
// fio and STREAM antagonists — comparing LATE, Dolly and PerfCloud on
// job degradation and resource-utilization efficiency, the setting of
// the paper's Figure 11 (scaled down so the example runs in seconds).
//
// Run with: go run ./examples/large_scale
package main

import (
	"fmt"
	"time"

	"perfcloud/internal/experiments"
)

func main() {
	cfg := experiments.LargeScaleConfig{
		Seed:             3,
		Servers:          6,
		WorkersPerServer: 8,
		NumMR:            15,
		NumSpark:         15,
		Fio:              3,
		Streams:          3,
		InterarrivalSec:  3,
		Limit:            2 * time.Hour,
	}
	fmt.Printf("== %d servers, %d workers, %d jobs, %d antagonists ==\n",
		cfg.Servers, cfg.Servers*cfg.WorkersPerServer, cfg.NumMR+cfg.NumSpark, cfg.Fio+cfg.Streams)
	res := experiments.Fig11With(cfg, []experiments.Scheme{
		experiments.SchemeLATE(),
		experiments.SchemeDolly(2),
		experiments.SchemeDolly(4),
		experiments.SchemePerfCloud(),
	})
	fmt.Println(res.Table().String())
	fmt.Println("PerfCloud throttles antagonists at their source: no cloned or")
	fmt.Println("speculative work, so its efficiency stays at ~100% while Dolly's")
	fmt.Println("falls with every extra clone.")
}
