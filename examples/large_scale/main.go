// Large scale: a 6-server, 48-worker virtual cluster running a mix of
// MapReduce and Spark jobs (80% small, 20% large) with randomly placed
// fio and STREAM antagonists — comparing LATE, Dolly and PerfCloud on
// job degradation and resource-utilization efficiency, the setting of
// the paper's Figure 11 (scaled down so the example runs in seconds).
//
// Run with: go run ./examples/large_scale
//
// The baseline and the four scheme mixes are independent engines, so they
// run concurrently (one per core) and each cluster fans its per-server
// tick work out to a bounded pool; pass -parallel 1 to force the fully
// sequential mode — the tables are bit-for-bit identical either way.
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"perfcloud/internal/cluster"
	"perfcloud/internal/experiments"
)

func main() {
	parallel := flag.Int("parallel", 0, "worker bound for tick and run concurrency (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()
	cluster.SetDefaultTickWorkers(*parallel)
	experiments.SetMaxParallelRuns(*parallel)
	experiments.SetTrackFastPaths(true)
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	cfg := experiments.LargeScaleConfig{
		Seed:             3,
		Servers:          6,
		WorkersPerServer: 8,
		NumMR:            15,
		NumSpark:         15,
		Fio:              3,
		Streams:          3,
		InterarrivalSec:  3,
		Limit:            2 * time.Hour,
	}
	fmt.Printf("== %d servers, %d workers, %d jobs, %d antagonists (%d-way parallel) ==\n",
		cfg.Servers, cfg.Servers*cfg.WorkersPerServer, cfg.NumMR+cfg.NumSpark, cfg.Fio+cfg.Streams, workers)
	res := experiments.Fig11With(cfg, []experiments.Scheme{
		experiments.SchemeLATE(),
		experiments.SchemeDolly(2),
		experiments.SchemeDolly(4),
		experiments.SchemePerfCloud(),
	})
	fmt.Println(res.Table().String())
	fmt.Println("PerfCloud throttles antagonists at their source: no cloned or")
	fmt.Println("speculative work, so its efficiency stays at ~100% while Dolly's")
	fmt.Println("falls with every extra clone.")

	// The mixes advance through the event-driven stepper: whenever every
	// framework is between scheduling decisions the simulation replays the
	// resource pipeline in variable-length strides instead of full engine
	// ticks. Report how much of the simulated time that covered.
	fp := experiments.FastPathTotals()
	grant := fp.QuiescentSkips + fp.SteadyReuses + fp.Rebuilds
	if ticks := grant / uint64(cfg.Servers); ticks > 0 { // grant phases are per server
		fmt.Printf("\nstride stepping: %d of %d cluster ticks elided (%.1f%%), avg %.1f ticks per stride\n",
			fp.StrideSkips, ticks, 100*float64(fp.StrideSkips)/float64(ticks),
			float64(fp.StrideSkips)/float64(max(fp.HorizonRecomputes, 1)))
	}
}
