// Migration escalation: two high-priority MapReduce applications are
// packed onto one server of a two-server cloud. Their mutual shuffle
// I/O raises the iowait-deviation signal, but there is no low-priority
// VM to throttle — so the PerfCloud node manager escalates to the cloud
// manager, which live-migrates VMs of one application to the idle
// server (the paper's §III-D2 complementary solution).
//
// Run with: go run ./examples/migration
//
// The migration-on and migration-off arms are independent engines and run
// concurrently; results are identical to a sequential run for the same
// seed (the simulation core's determinism contract, DESIGN.md §5.1).
package main

import (
	"fmt"

	"perfcloud/internal/experiments"
)

func main() {
	fmt.Println("== Two colliding high-priority apps on one server ==")
	r := experiments.Migration(3)
	fmt.Println(r.Table().String())
	if r.Migrations > 0 {
		fmt.Printf("The node manager escalated %d time(s); the apps now span %d servers\n",
			r.Migrations, r.FinalSpread)
		fmt.Printf("and mean job completion time dropped from %.1fs to %.1fs (%.0f%%).\n",
			r.JCTWithout, r.JCTWith, 100*(1-r.JCTWith/r.JCTWithout))
	} else {
		fmt.Println("No migration occurred — contention never persisted unresolved.")
	}
}
