// Quickstart: build a one-server cloud, run a Hadoop terasort next to a
// fio antagonist, and watch PerfCloud detect the interference, identify
// the antagonist, and throttle it — then compare completion times with
// and without PerfCloud.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"time"

	"perfcloud/internal/cloud"
	"perfcloud/internal/cluster"
	"perfcloud/internal/core"
	"perfcloud/internal/dfs"
	"perfcloud/internal/exec"
	"perfcloud/internal/mapreduce"
	"perfcloud/internal/sim"
	"perfcloud/internal/workloads"
)

func main() {
	fmt.Println("== PerfCloud quickstart ==")
	for _, enabled := range []bool{false, true} {
		jct := run(enabled)
		state := "off"
		if enabled {
			state = "on "
		}
		fmt.Printf("PerfCloud %s: terasort completed in %.1fs\n", state, jct)
	}
}

// run assembles the testbed from the public pieces directly (the
// experiments package wraps this pattern for the paper's figures).
func run(perfcloud bool) float64 {
	// Simulation engine and an empty cloud.
	eng := sim.NewEngine(100*time.Millisecond, 42)
	clus := cluster.New()
	cm := cloud.NewManager(clus, eng.RNG())
	cm.ProvisionServers(1)

	// Six high-priority Hadoop VMs, each a 2-slot task tracker.
	var pool exec.Pool
	var names []string
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("hadoop-%d", i)
		vm, err := cm.Boot(cloud.VMSpec{Name: name, Priority: cluster.HighPriority, AppID: "hadoop"})
		if err != nil {
			panic(err)
		}
		pool = append(pool, exec.NewExecutor(vm, 2))
		names = append(names, name)
	}

	// One low-priority antagonist: fio 4 KiB random reads, in bursts.
	fioVM, err := cm.Boot(cloud.VMSpec{Name: "fio", Priority: cluster.LowPriority})
	if err != nil {
		panic(err)
	}
	fioVM.SetWorkload(workloads.NewFioRandRead(
		workloads.BurstPattern{StartOffset: 5 * time.Second, On: 20 * time.Second, Off: 10 * time.Second}))

	// HDFS with a 640 MB input (ten 64 MB blocks -> ten map tasks).
	fs := dfs.New(dfs.DefaultConfig(), names, rand.New(rand.NewSource(1)))
	if _, err := fs.Create("input", 640<<20); err != nil {
		panic(err)
	}
	jt := mapreduce.NewJobTracker(pool, fs, nil)

	// Wire the tick order: frameworks schedule, cluster executes,
	// PerfCloud observes and acts.
	eng.RegisterPriority(jt, -1)
	eng.RegisterPriority(clus, 0)
	if perfcloud {
		core.Attach(eng, clus, cm, core.DefaultConfig())
	}

	// Run terasort jobs back-to-back for a while; report the mean JCT of
	// the later jobs (after PerfCloud has had a chance to identify fio).
	var jcts []float64
	j, _ := jt.Submit(mapreduce.Terasort("input", 10), 0)
	for eng.Clock().Seconds() < 120 {
		eng.Step()
		if j.Done() {
			jcts = append(jcts, j.JCT())
			j, _ = jt.Submit(mapreduce.Terasort("input", 10), eng.Clock().Seconds())
		}
	}
	// Mean of the second half of completions.
	var sum float64
	half := jcts[len(jcts)/2:]
	for _, v := range half {
		sum += v
	}
	return sum / float64(len(half))
}
