module perfcloud

go 1.22
