# Tier-1 verification (ROADMAP.md): build + full test suite.
.PHONY: all build test check race bench

all: check

build:
	go build ./...

test:
	go test ./...

# race runs the detector over the packages with concurrent code paths:
# the parallel tick fan-out, the experiment run pool, and the primitive
# they share.
race:
	go test -race ./internal/cluster/... ./internal/sim/... ./internal/experiments/...

# check is the full local gate: vet, build, tests, and the race tier.
# Benchmarks are tracked separately — run `make bench` to measure the
# monitoring/detection hot loops; they are not part of this gate.
check:
	go vet ./...
	go build ./...
	go test ./...
	$(MAKE) race

# bench measures the hot loops of the control plane — Monitor.Sample,
# Correlator identification, and quiescent-cluster ticks — and records
# the parsed results (iteration count, ns/op, B/op, allocs/op) in
# BENCH_hotloop.json via cmd/benchjson. The raw `go test` output is
# echoed so regressions are visible without opening the file.
bench:
	go test -run='^$$' -bench='MonitorSample|CorrelatorIdentify|QuiescentCluster' -benchmem \
		./internal/core ./internal/cluster | go run ./cmd/benchjson -o BENCH_hotloop.json
