# Tier-1 verification (ROADMAP.md): build + full test suite.
.PHONY: all build test check race bench

all: check

build:
	go build ./...

test:
	go test ./...

# race runs the detector over the packages with concurrent code paths:
# the parallel tick fan-out, the experiment run pool, and the primitive
# they share.
race:
	go test -race ./internal/cluster/... ./internal/sim/... ./internal/experiments/...

# check is the full local gate: vet, build, tests, and the race tier.
check:
	go vet ./...
	go build ./...
	go test ./...
	$(MAKE) race

# bench reproduces the paper figures and the parallel-core speedups.
bench:
	go test -bench=. -benchmem -benchtime=1x .
