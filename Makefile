# Tier-1 verification (ROADMAP.md): build + full test suite.
.PHONY: all build test check race bench bench-suite bench-compare bench-scale

all: check

build:
	go build ./...

test:
	go test ./...

# race runs the detector over the packages with concurrent code paths:
# the parallel tick fan-out, the experiment run pool, the primitive they
# share, the control plane whose instruments are updated from ticking
# goroutines, the observability package (whose health timers are bumped
# from ticking goroutines while HTTP handlers snapshot them), the
# daemon that serves those handlers, and the data plane (executors,
# frameworks, speculators) that parallel experiment repetitions drive.
race:
	go test -race ./internal/cluster/... ./internal/sim/... \
		./internal/experiments/... ./internal/core/... ./internal/obs/... \
		./internal/exec/... ./internal/mapreduce/... ./internal/spark/... \
		./internal/straggler/... ./cmd/perfcloudd/...

# check is the full local gate: vet, build, tests, and the race tier.
# Benchmarks are tracked separately — run `make bench` to measure the
# monitoring/detection hot loops; they are not part of this gate.
check:
	go vet ./...
	go build ./...
	go test ./...
	$(MAKE) race

# bench measures the hot loops of the simulation and control plane —
# Monitor.Sample, Correlator identification, quiescent-cluster ticks,
# busy-cluster (active) ticks and mixed-cluster strides — and merges the
# parsed results (iteration count, ns/op, B/op, allocs/op) into
# BENCH_hotloop.json via cmd/benchjson. The raw `go test` output is
# echoed so regressions are visible without opening the file.
BENCH_PATTERN = MonitorSample|CorrelatorIdentify|QuiescentCluster|ActiveServerTick|StrideAdvance
bench:
	go test -run='^$$' -bench='$(BENCH_PATTERN)' -benchmem \
		./internal/core ./internal/cluster | go run ./cmd/benchjson -o BENCH_hotloop.json

# bench-compare reruns the hot-loop benchmarks and prints per-benchmark
# deltas against the committed BENCH_hotloop.json baseline without
# touching it.
bench-compare:
	go test -run='^$$' -bench='$(BENCH_PATTERN)' -benchmem \
		./internal/core ./internal/cluster | go run ./cmd/benchjson -baseline BENCH_hotloop.json

# bench-scale measures the sharded tick path at fleet scale — the same
# 8 busy servers inside 1k- and 10k-server clusters — merges the results
# into BENCH_scale.json, and gates on the scaling ratio: ticking the
# 10x-larger fleet may cost at most 2x per tick (the O(active + shards)
# contract; a flat tick would be ~10x). The ratio compares two results
# from the same run, so the gate holds on any machine.
bench-scale:
	go test -run='^$$' -bench=ShardScale -benchmem \
		./internal/cluster | go run ./cmd/benchjson -o BENCH_scale.json
	go run ./cmd/benchjson -injson BENCH_scale.json \
		-ratio 'servers=10240,servers=1024' -max-ratio 2

# bench-suite times the full Fig 3-12 experiment suite end to end —
# per-figure wall clock via perfbench -suite, plus the single-pass
# BenchmarkFigSuite measurement — and merges both into BENCH_suite.json.
bench-suite:
	go run ./cmd/perfbench -suite > /dev/null
	go test -run='^$$' -bench=FigSuite -benchtime=1x \
		./internal/experiments | go run ./cmd/benchjson -o BENCH_suite.json
