package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("constant series stddev = %v, want 0", got)
	}
	// Population stddev of {1,3} is 1.
	if got := StdDev([]float64{1, 3}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("StdDev({1,3}) = %v, want 1", got)
	}
	if got := StdDev([]float64{7}); got != 0 {
		t.Errorf("single element stddev = %v, want 0", got)
	}
	if got := StdDev(nil); got != 0 {
		t.Errorf("empty stddev = %v, want 0", got)
	}
}

func TestVarianceMatchesStdDev(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	if got, want := Variance(xs), StdDev(xs)*StdDev(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("r = %v, want 1", r)
	}
}

func TestPearsonPerfectAnticorrelation(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{3, 2, 1}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("r = %v, want -1", r)
	}
}

func TestPearsonConstantSeriesIsZero(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("constant series r = %v, want 0", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err != ErrInsufficientData {
		t.Errorf("short series: got %v, want ErrInsufficientData", err)
	}
}

func TestPearsonMissingAsZero(t *testing.T) {
	nan := math.NaN()
	// Suspect idle (missing) in intervals where victim deviation is low:
	// treating missing as zero preserves the real correlation structure.
	x := []float64{10, nan, 12, nan, 11}
	y := []float64{9, 0.1, 10, 0.2, 9.5}
	r, err := PearsonMissingAsZero(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.9 {
		t.Errorf("missing-as-zero r = %v, want >= 0.9", r)
	}
	// Classical omission computes over only the 3 present pairs, which can
	// over-emphasise similarity; verify the two rules actually differ here.
	ro, err := PearsonOmitMissing(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if almostEqual(r, ro, 1e-9) {
		t.Errorf("expected missing-as-zero (%v) to differ from omit (%v)", r, ro)
	}
}

func TestPearsonOmitMissingDropsPairs(t *testing.T) {
	nan := math.NaN()
	x := []float64{1, nan, 3, 4}
	y := []float64{1, 100, 3, 4}
	r, err := PearsonOmitMissing(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("omit-missing r = %v, want 1 (pair with NaN dropped)", r)
	}
}

func TestEWMAFirstSamplePrimes(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Primed() {
		t.Fatal("new EWMA should be unprimed")
	}
	if got := e.Update(10); got != 10 {
		t.Errorf("first update = %v, want 10", got)
	}
	if got := e.Update(0); got != 5 {
		t.Errorf("second update = %v, want 5", got)
	}
	e.Reset()
	if e.Primed() || e.Value() != 0 {
		t.Error("reset should clear state")
	}
}

func TestEWMAAlphaOneTracksInput(t *testing.T) {
	e := NewEWMA(1)
	for _, v := range []float64{3, 9, 27} {
		if got := e.Update(v); got != v {
			t.Errorf("alpha=1 update(%v) = %v", v, got)
		}
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha=%v: want panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-10, 1}, {150, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 50); !almostEqual(got, 5, 1e-12) {
		t.Errorf("interp percentile = %v, want 5", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("bad summary: %+v", s)
	}
	if !almostEqual(s.IQR(), 2, 1e-12) {
		t.Errorf("IQR = %v, want 2", s.IQR())
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary N = %d", z.N)
	}
}

// Property: Pearson is symmetric and bounded in [-1, 1].
func TestPearsonPropertySymmetricBounded(t *testing.T) {
	f := func(a, b, c, d, e, g int16) bool {
		x := []float64{float64(a), float64(b), float64(c)}
		y := []float64{float64(d), float64(e), float64(g)}
		r1, err1 := Pearson(x, y)
		r2, err2 := Pearson(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(r1, r2, 1e-9) && r1 >= -1.0000001 && r1 <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Pearson is invariant under positive affine transforms of x.
func TestPearsonPropertyAffineInvariant(t *testing.T) {
	f := func(a, b, c, d, e, g int8, scale uint8) bool {
		s := float64(scale%50) + 1
		x := []float64{float64(a), float64(b), float64(c), float64(d)}
		y := []float64{float64(e), float64(g), float64(a) + 1, float64(b) - 1}
		x2 := make([]float64, len(x))
		for i := range x {
			x2[i] = s*x[i] + 7
		}
		r1, _ := Pearson(x, y)
		r2, _ := Pearson(x2, y)
		return almostEqual(r1, r2, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EWMA output stays within the min/max envelope of its inputs.
func TestEWMAPropertyBounded(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		e := NewEWMA(0.5)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			x := float64(v)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			got := e.Update(x)
			if got < lo-1e-9 || got > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Percentile is monotone in p.
func TestPercentilePropertyMonotone(t *testing.T) {
	f := func(vals []uint8, p1, p2 uint8) bool {
		if len(vals) == 0 {
			return true
		}
		xs := make([]float64, len(vals))
		for i, v := range vals {
			xs[i] = float64(v)
		}
		a, b := float64(p1%101), float64(p2%101)
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
