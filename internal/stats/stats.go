// Package stats provides the statistical primitives PerfCloud relies on:
// exponentially weighted moving averages for smoothing 5-second samples,
// standard deviation across worker VMs for interference detection, and
// Pearson cross-correlation (with the paper's missing-as-zero rule) for
// antagonist identification. It also carries general time-series helpers
// used by the experiment harness (percentiles, histograms, summaries).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when an operation needs more samples
// than were provided (e.g. Pearson correlation over fewer than two points).
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
// It returns 0 for slices with fewer than two elements: the detector treats
// a single-VM application as having no cross-VM deviation signal.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Variance returns the population variance of xs (0 for len < 2).
func Variance(xs []float64) float64 {
	sd := StdDev(xs)
	return sd * sd
}

// Pearson computes the Pearson correlation coefficient between two series
// of equal length. It returns ErrInsufficientData when fewer than two
// points are available and 0 (no correlation) when either series is
// constant, since correlation is undefined for zero variance and the
// correlator must not flag constant-usage suspects.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: series length mismatch")
	}
	if len(x) < 2 {
		return 0, ErrInsufficientData
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// PearsonMissingAsZero implements the paper's §III-B rule: when a suspect
// VM reports no measurement for an interval (NaN in the input), the value
// is treated as zero rather than omitted. This avoids over-emphasising
// similarity computed over little data for mostly-idle suspects.
// The substitution happens inline during accumulation — no copies are
// made — and the arithmetic matches Pearson over zero-substituted copies
// bit for bit.
func PearsonMissingAsZero(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: series length mismatch")
	}
	if len(x) < 2 {
		return 0, ErrInsufficientData
	}
	var sx, sy float64
	for i := range x {
		sx += zeroIfNaN(x[i])
	}
	for i := range y {
		sy += zeroIfNaN(y[i])
	}
	mx, my := sx/float64(len(x)), sy/float64(len(y))
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := zeroIfNaN(x[i])-mx, zeroIfNaN(y[i])-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// PearsonOmitMissing is the classical alternative used as the ablation
// baseline for design decision D2: pairs where either series is missing
// (NaN) are dropped before computing the correlation.
func PearsonOmitMissing(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: series length mismatch")
	}
	var fx, fy []float64
	for i := range x {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) {
			continue
		}
		fx = append(fx, x[i])
		fy = append(fy, y[i])
	}
	return Pearson(fx, fy)
}

func zeroIfNaN(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// EWMA smooths a stream of samples with an exponentially weighted moving
// average: v' = alpha*x + (1-alpha)*v. The zero value is not usable; use
// NewEWMA. The first observed sample initialises the average directly so
// that smoothing does not drag early detections toward zero.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1].
// PerfCloud's performance monitor smooths 5-second samples with it.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// MakeEWMA returns an EWMA by value, for embedding in slice-backed state
// (one heap object per filter would defeat an allocation-free hot loop).
func MakeEWMA(alpha float64) EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0, 1]")
	}
	return EWMA{alpha: alpha}
}

// Update folds sample x into the average and returns the new value.
func (e *EWMA) Update(x float64) float64 {
	if !e.primed {
		e.value = x
		e.primed = true
		return e.value
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current smoothed value (0 before any update).
func (e *EWMA) Value() float64 { return e.value }

// Primed reports whether at least one sample has been folded in.
func (e *EWMA) Primed() bool { return e.primed }

// Reset clears the average back to its unprimed state.
func (e *EWMA) Reset() { e.value = 0; e.primed = false }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It returns 0 for empty input.
// One-off queries use O(n) quickselect on a scratch copy rather than a
// full sort; callers needing several quantiles of one sample should sort
// once and use PercentileOfSorted (as Summarize does).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	if p <= 0 {
		return selectKth(s, 0)
	}
	if p >= 100 {
		return selectKth(s, len(s)-1)
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	vlo := selectKth(s, lo)
	if lo == hi {
		return vlo
	}
	// After selectKth(s, lo), every element right of lo is >= s[lo], so
	// the (lo+1)-th order statistic is the minimum of that suffix.
	vhi := s[lo+1]
	for _, v := range s[lo+2:] {
		if floatLess(v, vhi) {
			vhi = v
		}
	}
	frac := rank - float64(lo)
	return vlo*(1-frac) + vhi*frac
}

// PercentileOfSorted reads the p-th percentile from an already-sorted
// sample (ascending, as sort.Float64s leaves it) with the same
// interpolation rule as Percentile. It does not copy or allocate.
func PercentileOfSorted(s []float64, p float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// floatLess orders float64s the way sort.Float64s does: NaN sorts before
// every other value.
func floatLess(a, b float64) bool {
	return a < b || (math.IsNaN(a) && !math.IsNaN(b))
}

// selectKth partially sorts s in place so that s[k] holds the k-th order
// statistic (0-based, in floatLess order) with everything before it <=
// and everything after it >=, and returns s[k]. Median-of-three pivoting
// with an insertion-sort base case keeps the selection deterministic and
// O(n) expected.
func selectKth(s []float64, k int) float64 {
	lo, hi := 0, len(s)-1
	for hi-lo > 12 {
		// Median-of-three pivot of lo, mid, hi.
		mid := lo + (hi-lo)/2
		if floatLess(s[mid], s[lo]) {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if floatLess(s[hi], s[lo]) {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if floatLess(s[hi], s[mid]) {
			s[hi], s[mid] = s[mid], s[hi]
		}
		pivot := s[mid]
		// Hoare partition around the pivot value.
		i, j := lo, hi
		for i <= j {
			for floatLess(s[i], pivot) {
				i++
			}
			for floatLess(pivot, s[j]) {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return s[k]
		}
	}
	// Small range: insertion sort settles the exact order statistics.
	for i := lo + 1; i <= hi; i++ {
		for j := i; j > lo && floatLess(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[k]
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary captures the five-number summary plus mean of a sample,
// matching what the paper's box plots (Fig. 12) report.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
	StdDev float64
}

// Summarize computes a Summary of xs. An empty input yields a zero
// Summary. One sorted copy serves all five quantiles (and Min/Max read
// its endpoints directly) instead of the per-quantile copy-and-sort the
// naive formulation pays five times over.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     PercentileOfSorted(s, 25),
		Median: PercentileOfSorted(s, 50),
		Q3:     PercentileOfSorted(s, 75),
		Max:    s[len(s)-1],
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
	}
}

// IQR returns the inter-quartile range of the summary.
func (s Summary) IQR() float64 { return s.Q3 - s.Q1 }
