package stats

import (
	"fmt"
	"math"
	"strings"
)

// Point is a single timestamped sample in a TimeSeries. Time is expressed
// in seconds of simulated time.
type Point struct {
	Time  float64
	Value float64
}

// TimeSeries is an append-only series of timestamped samples. PerfCloud's
// correlator builds one series per victim-signal and per suspect-signal,
// then correlates aligned windows of them.
type TimeSeries struct {
	points []Point
}

// NewTimeSeries returns an empty series.
func NewTimeSeries() *TimeSeries { return &TimeSeries{} }

// Append adds a sample. Samples must be appended in nondecreasing time
// order; out-of-order appends panic, since the monitor produces them from
// a single clock and disorder indicates a harness bug.
func (ts *TimeSeries) Append(t, v float64) {
	if n := len(ts.points); n > 0 && t < ts.points[n-1].Time {
		panic(fmt.Sprintf("stats: out-of-order append t=%g after %g", t, ts.points[n-1].Time))
	}
	ts.points = append(ts.points, Point{Time: t, Value: v})
}

// AppendMissing records an interval with no measurement (stored as NaN).
// The paper's missing-as-zero Pearson rule interprets these as zero.
func (ts *TimeSeries) AppendMissing(t float64) { ts.Append(t, math.NaN()) }

// Len returns the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.points) }

// Values returns a copy of all sample values (NaN marks missing).
func (ts *TimeSeries) Values() []float64 {
	out := make([]float64, len(ts.points))
	for i, p := range ts.points {
		out[i] = p.Value
	}
	return out
}

// Times returns a copy of all sample timestamps.
func (ts *TimeSeries) Times() []float64 {
	out := make([]float64, len(ts.points))
	for i, p := range ts.points {
		out[i] = p.Time
	}
	return out
}

// Last returns the most recent point, or a zero Point if empty.
func (ts *TimeSeries) Last() Point {
	if len(ts.points) == 0 {
		return Point{}
	}
	return ts.points[len(ts.points)-1]
}

// Window returns the values of the most recent n samples (fewer if the
// series is shorter). The returned slice is a copy.
func (ts *TimeSeries) Window(n int) []float64 {
	if n > len(ts.points) {
		n = len(ts.points)
	}
	out := make([]float64, 0, n)
	for _, p := range ts.points[len(ts.points)-n:] {
		out = append(out, p.Value)
	}
	return out
}

// Max returns the maximum non-missing value, or 0 for an empty series.
func (ts *TimeSeries) Max() float64 {
	max := math.Inf(-1)
	seen := false
	for _, p := range ts.points {
		if math.IsNaN(p.Value) {
			continue
		}
		if p.Value > max {
			max = p.Value
			seen = true
		}
	}
	if !seen {
		return 0
	}
	return max
}

// NormalizeByMax returns a new series with every value divided by the peak
// value, matching the normalization used in the paper's Figs. 5 and 6.
// Missing values stay missing. A zero peak leaves values unchanged.
func (ts *TimeSeries) NormalizeByMax() *TimeSeries {
	peak := ts.Max()
	out := NewTimeSeries()
	for _, p := range ts.points {
		v := p.Value
		if !math.IsNaN(v) && peak > 0 {
			v = v / peak
		}
		out.Append(p.Time, v)
	}
	return out
}

// Sparkline renders the series as a compact ASCII strip chart for logs
// and the example programs. Missing samples render as spaces.
func (ts *TimeSeries) Sparkline(width int) string {
	if len(ts.points) == 0 || width <= 0 {
		return ""
	}
	levels := []byte("_.-=*#%@")
	peak := ts.Max()
	var b strings.Builder
	step := float64(len(ts.points)) / float64(width)
	if step < 1 {
		step = 1
		width = len(ts.points)
	}
	for i := 0; i < width; i++ {
		idx := int(float64(i) * step)
		if idx >= len(ts.points) {
			idx = len(ts.points) - 1
		}
		v := ts.points[idx].Value
		if math.IsNaN(v) || peak == 0 {
			b.WriteByte(' ')
			continue
		}
		lvl := int(v / peak * float64(len(levels)-1))
		if lvl < 0 {
			lvl = 0
		}
		if lvl >= len(levels) {
			lvl = len(levels) - 1
		}
		b.WriteByte(levels[lvl])
	}
	return b.String()
}

// AlignedWindows extracts the trailing window of length n from each series
// and returns them; it returns false when any series has fewer than n
// samples. The correlator uses it to compare equal-length victim/suspect
// histories.
func AlignedWindows(n int, series ...*TimeSeries) ([][]float64, bool) {
	out := make([][]float64, len(series))
	for i, ts := range series {
		if ts.Len() < n {
			return nil, false
		}
		out[i] = ts.Window(n)
	}
	return out, true
}
