package stats_test

import (
	"fmt"
	"math"

	"perfcloud/internal/stats"
)

// The paper's §III-B missing-as-zero rule: intervals where a suspect VM
// reports no measurement count as zero activity instead of being
// dropped, so similarity is never inferred from a handful of samples.
func ExamplePearsonMissingAsZero() {
	victimDeviation := []float64{12, 1, 14, 1, 13}
	suspectActivity := []float64{9e6, math.NaN(), 1.1e7, math.NaN(), 1e7}
	r, _ := stats.PearsonMissingAsZero(victimDeviation, suspectActivity)
	fmt.Printf("r = %.2f, antagonist: %v\n", r, r >= 0.8)
	// Output: r = 1.00, antagonist: true
}

func ExampleEWMA() {
	e := stats.NewEWMA(0.5)
	fmt.Println(e.Update(10)) // first sample primes the average
	fmt.Println(e.Update(0))
	fmt.Println(e.Update(0))
	// Output:
	// 10
	// 5
	// 2.5
}

func ExampleSummarize() {
	s := stats.Summarize([]float64{1.0, 1.1, 1.3, 1.2, 2.0})
	fmt.Printf("median %.1f IQR %.1f max %.1f\n", s.Median, s.IQR(), s.Max)
	// Output: median 1.2 IQR 0.2 max 2.0
}

func ExampleHistogram() {
	h := stats.NewHistogram(0.10, 0.30)
	for _, degradation := range []float64{0.02, 0.07, 0.15, 0.9} {
		h.Add(degradation)
	}
	fmt.Printf("under 10%%: %.0f%%\n", 100*h.CumulativeFrac(0.10))
	fmt.Printf("under 30%%: %.0f%%\n", 100*h.CumulativeFrac(0.30))
	// Output:
	// under 10%: 50%
	// under 30%: 75%
}
