package stats

import "math"

// This file holds the incremental accumulators behind PerfCloud's
// per-interval analytics: the detector's cross-VM deviation (Moments),
// the correlator's trailing-window Pearson state (RollingPearson), and a
// generic fixed-window mean/std-dev (RollingWindow). They replace the
// collect-into-a-slice-and-rescan pattern of the scratch implementations
// with O(1)-amortized updates and zero steady-state allocation.
//
// Numerical contract: every accumulator agrees with its scratch
// counterpart (StdDev, PearsonMissingAsZero) to within 1e-9 relative
// error over arbitrarily long streams. Two mechanisms bound the drift a
// naive running sum would accumulate: sums are kept *anchored* (shifted
// by a representative value, so Σ(x-a) and Σ(x-a)² operate on deviations
// rather than raw magnitudes — the textbook cure for catastrophic
// cancellation when the mean dwarfs the variance), and every time a ring
// buffer completes a full revolution the sums are recomputed exactly from
// the buffered window, resetting accumulated round-off.

// Moments is a one-pass (Welford) accumulator for mean and population
// standard deviation. The detector folds each active VM's signal into one
// Moments per channel instead of building a slice and rescanning it.
// The zero value is ready to use.
type Moments struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one sample into the accumulator.
func (m *Moments) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of samples folded in.
func (m *Moments) N() int { return m.n }

// Mean returns the running mean (0 before any sample).
func (m *Moments) Mean() float64 {
	if m.n == 0 {
		return 0
	}
	return m.mean
}

// Variance returns the population variance, 0 for fewer than two samples
// (matching Variance on a slice: a single observation carries no spread).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	v := m.m2 / float64(m.n)
	if v < 0 {
		return 0
	}
	return v
}

// StdDev returns the population standard deviation (0 for n < 2),
// matching the StdDev slice function's convention.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Reset clears the accumulator for reuse.
func (m *Moments) Reset() { *m = Moments{} }

// RollingWindow is a fixed-capacity ring buffer of float64 samples with
// anchored running sums, giving O(1) mean and population standard
// deviation over the trailing window.
type RollingWindow struct {
	buf    []float64
	head   int // next write position
	n      int // samples currently buffered (<= cap)
	total  uint64
	anchor float64
	sum    float64 // Σ (x - anchor) over the window
	sumsq  float64 // Σ (x - anchor)² over the window
}

// NewRollingWindow creates a window holding the most recent capacity
// samples. Capacity must be at least 1.
func NewRollingWindow(capacity int) *RollingWindow {
	if capacity < 1 {
		panic("stats: rolling window capacity must be >= 1")
	}
	return &RollingWindow{buf: make([]float64, capacity)}
}

// Push appends a sample, evicting the oldest once the window is full.
func (w *RollingWindow) Push(x float64) {
	if w.total == 0 {
		w.anchor = x // anchor near the data to keep the sums small
	}
	if w.n == len(w.buf) {
		old := w.buf[w.head] - w.anchor
		w.sum -= old
		w.sumsq -= old * old
	} else {
		w.n++
	}
	w.buf[w.head] = x
	d := x - w.anchor
	w.sum += d
	w.sumsq += d * d
	w.head++
	if w.head == len(w.buf) {
		w.head = 0
	}
	w.total++
	if w.total%uint64(len(w.buf)) == 0 {
		w.recompute()
	}
}

// recompute re-derives the anchored sums exactly from the buffered
// window, discarding any round-off the incremental updates accumulated.
// Called once per ring revolution, so its O(window) cost amortizes to
// O(1) per push.
func (w *RollingWindow) recompute() {
	w.anchor = w.buf[0]
	w.sum, w.sumsq = 0, 0
	for _, x := range w.buf[:w.n] {
		d := x - w.anchor
		w.sum += d
		w.sumsq += d * d
	}
}

// Len returns the number of samples currently in the window.
func (w *RollingWindow) Len() int { return w.n }

// Cap returns the window capacity.
func (w *RollingWindow) Cap() int { return len(w.buf) }

// Full reports whether the window has reached capacity.
func (w *RollingWindow) Full() bool { return w.n == len(w.buf) }

// Mean returns the mean of the buffered samples (0 when empty).
func (w *RollingWindow) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.anchor + w.sum/float64(w.n)
}

// StdDev returns the population standard deviation of the buffered
// samples, 0 for fewer than two (matching StdDev on a slice).
func (w *RollingWindow) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	mean := w.sum / float64(w.n) // in anchored coordinates
	v := w.sumsq/float64(w.n) - mean*mean
	if v < 0 {
		return 0
	}
	return math.Sqrt(v)
}

// Values appends the buffered samples to dst in push order (oldest first)
// and returns the extended slice. Pass dst[:0] of a reusable buffer for
// an allocation-free read.
func (w *RollingWindow) Values(dst []float64) []float64 {
	start := w.head - w.n
	if start < 0 {
		start += len(w.buf)
	}
	for i := 0; i < w.n; i++ {
		j := start + i
		if j >= len(w.buf) {
			j -= len(w.buf)
		}
		dst = append(dst, w.buf[j])
	}
	return dst
}

// RollingPearson maintains the Pearson correlation of two aligned series
// over a trailing window, with the paper's missing-as-zero rule (§III-B)
// applied as samples arrive: a NaN in either series is folded in as zero.
// It keeps ring buffers of the pair plus anchored running sums
// Σx, Σy, Σxy, Σx², Σy², so the correlator updates in O(1) per interval
// and never rebuilds aligned window copies.
type RollingPearson struct {
	x, y   []float64 // ring buffers, missing already zeroed
	head   int
	n      int
	total  uint64
	ax, ay float64 // anchors
	sx, sy float64 // Σ (x-ax), Σ (y-ay)
	sxy    float64 // Σ (x-ax)(y-ay)
	sxx    float64 // Σ (x-ax)²
	syy    float64 // Σ (y-ay)²
}

// NewRollingPearson creates a correlation window over the most recent
// `window` pairs. Window must be at least 2 (correlation is undefined on
// fewer points).
func NewRollingPearson(window int) *RollingPearson {
	if window < 2 {
		panic("stats: rolling pearson window must be >= 2")
	}
	return &RollingPearson{x: make([]float64, window), y: make([]float64, window)}
}

// Push appends one aligned pair. NaN (missing) values are recorded as
// zero, per the missing-as-zero rule.
func (r *RollingPearson) Push(x, y float64) {
	x, y = zeroIfNaN(x), zeroIfNaN(y)
	if r.total == 0 {
		r.ax, r.ay = x, y
	}
	if r.n == len(r.x) {
		dx, dy := r.x[r.head]-r.ax, r.y[r.head]-r.ay
		r.sx -= dx
		r.sy -= dy
		r.sxy -= dx * dy
		r.sxx -= dx * dx
		r.syy -= dy * dy
	} else {
		r.n++
	}
	r.x[r.head], r.y[r.head] = x, y
	dx, dy := x-r.ax, y-r.ay
	r.sx += dx
	r.sy += dy
	r.sxy += dx * dy
	r.sxx += dx * dx
	r.syy += dy * dy
	r.head++
	if r.head == len(r.x) {
		r.head = 0
	}
	r.total++
	if r.total%uint64(len(r.x)) == 0 {
		r.recompute()
	}
}

// recompute re-derives the anchored sums exactly from the buffered pairs
// (see RollingWindow.recompute). Re-anchoring at the window means keeps
// the sums operating on deviations even when the series level drifts far
// from its initial value.
func (r *RollingPearson) recompute() {
	var mx, my float64
	for i := 0; i < r.n; i++ {
		mx += r.x[i]
		my += r.y[i]
	}
	r.ax, r.ay = mx/float64(r.n), my/float64(r.n)
	r.sx, r.sy, r.sxy, r.sxx, r.syy = 0, 0, 0, 0, 0
	for i := 0; i < r.n; i++ {
		dx, dy := r.x[i]-r.ax, r.y[i]-r.ay
		r.sx += dx
		r.sy += dy
		r.sxy += dx * dy
		r.sxx += dx * dx
		r.syy += dy * dy
	}
}

// Len returns the number of pairs currently buffered.
func (r *RollingPearson) Len() int { return r.n }

// Full reports whether the window has reached capacity.
func (r *RollingPearson) Full() bool { return r.n == len(r.x) }

// Corr returns the Pearson coefficient over the buffered window. It
// mirrors PearsonMissingAsZero's contract: ErrInsufficientData for fewer
// than two pairs, and 0 (no correlation) when either series is constant
// over the window.
func (r *RollingPearson) Corr() (float64, error) {
	if r.n < 2 {
		return 0, ErrInsufficientData
	}
	n := float64(r.n)
	cov := r.sxy - r.sx*r.sy/n
	varx := r.sxx - r.sx*r.sx/n
	vary := r.syy - r.sy*r.sy/n
	if varx <= 0 || vary <= 0 {
		return 0, nil
	}
	c := cov / math.Sqrt(varx*vary)
	// Guard the last-ulp overshoot incremental arithmetic can produce.
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c, nil
}
