package stats

import (
	"math"
	"testing"
)

func TestTimeSeriesAppendAndAccessors(t *testing.T) {
	ts := NewTimeSeries()
	if ts.Len() != 0 {
		t.Fatal("new series should be empty")
	}
	ts.Append(0, 1)
	ts.Append(5, 2)
	ts.Append(10, 4)
	if ts.Len() != 3 {
		t.Fatalf("len = %d, want 3", ts.Len())
	}
	if last := ts.Last(); last.Time != 10 || last.Value != 4 {
		t.Errorf("Last = %+v", last)
	}
	wantV := []float64{1, 2, 4}
	for i, v := range ts.Values() {
		if v != wantV[i] {
			t.Errorf("Values[%d] = %v, want %v", i, v, wantV[i])
		}
	}
	wantT := []float64{0, 5, 10}
	for i, v := range ts.Times() {
		if v != wantT[i] {
			t.Errorf("Times[%d] = %v, want %v", i, v, wantT[i])
		}
	}
}

func TestTimeSeriesOutOfOrderPanics(t *testing.T) {
	ts := NewTimeSeries()
	ts.Append(5, 1)
	defer func() {
		if recover() == nil {
			t.Error("want panic on out-of-order append")
		}
	}()
	ts.Append(4, 1)
}

func TestTimeSeriesEqualTimestampsAllowed(t *testing.T) {
	ts := NewTimeSeries()
	ts.Append(5, 1)
	ts.Append(5, 2) // same instant: allowed (nondecreasing)
	if ts.Len() != 2 {
		t.Fatal("equal timestamps should be accepted")
	}
}

func TestTimeSeriesWindow(t *testing.T) {
	ts := NewTimeSeries()
	for i := 0; i < 5; i++ {
		ts.Append(float64(i), float64(i*i))
	}
	w := ts.Window(3)
	want := []float64{4, 9, 16}
	if len(w) != 3 {
		t.Fatalf("window len = %d", len(w))
	}
	for i := range w {
		if w[i] != want[i] {
			t.Errorf("window[%d] = %v, want %v", i, w[i], want[i])
		}
	}
	if got := ts.Window(99); len(got) != 5 {
		t.Errorf("oversized window len = %d, want 5", len(got))
	}
}

func TestTimeSeriesMissingAndMax(t *testing.T) {
	ts := NewTimeSeries()
	ts.Append(0, 3)
	ts.AppendMissing(5)
	ts.Append(10, 7)
	if got := ts.Max(); got != 7 {
		t.Errorf("Max = %v, want 7 (NaN skipped)", got)
	}
	vals := ts.Values()
	if !math.IsNaN(vals[1]) {
		t.Error("missing sample should be NaN")
	}
	empty := NewTimeSeries()
	if empty.Max() != 0 {
		t.Error("empty Max should be 0")
	}
	allMissing := NewTimeSeries()
	allMissing.AppendMissing(0)
	if allMissing.Max() != 0 {
		t.Error("all-missing Max should be 0")
	}
}

func TestNormalizeByMax(t *testing.T) {
	ts := NewTimeSeries()
	ts.Append(0, 2)
	ts.Append(1, 4)
	ts.AppendMissing(2)
	n := ts.NormalizeByMax()
	v := n.Values()
	if v[0] != 0.5 || v[1] != 1 {
		t.Errorf("normalized = %v", v[:2])
	}
	if !math.IsNaN(v[2]) {
		t.Error("missing should survive normalization")
	}
	// Zero-peak series is left unchanged.
	z := NewTimeSeries()
	z.Append(0, 0)
	if got := z.NormalizeByMax().Values()[0]; got != 0 {
		t.Errorf("zero-peak normalize = %v", got)
	}
}

func TestAlignedWindows(t *testing.T) {
	a, b := NewTimeSeries(), NewTimeSeries()
	for i := 0; i < 4; i++ {
		a.Append(float64(i), float64(i))
		if i < 3 {
			b.Append(float64(i), float64(10*i))
		}
	}
	if _, ok := AlignedWindows(4, a, b); ok {
		t.Error("want ok=false when a series is short")
	}
	w, ok := AlignedWindows(3, a, b)
	if !ok {
		t.Fatal("want ok")
	}
	if len(w) != 2 || len(w[0]) != 3 || w[0][2] != 3 || w[1][2] != 20 {
		t.Errorf("windows = %v", w)
	}
}

func TestSparkline(t *testing.T) {
	ts := NewTimeSeries()
	for i := 0; i < 8; i++ {
		ts.Append(float64(i), float64(i))
	}
	s := ts.Sparkline(8)
	if len(s) != 8 {
		t.Fatalf("sparkline width = %d, want 8", len(s))
	}
	if s[0] == s[7] {
		t.Errorf("ramp sparkline should vary: %q", s)
	}
	if NewTimeSeries().Sparkline(10) != "" {
		t.Error("empty series should render empty sparkline")
	}
	short := NewTimeSeries()
	short.Append(0, 1)
	if got := short.Sparkline(10); len(got) != 1 {
		t.Errorf("series shorter than width should shrink: %q", got)
	}
}
