package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.1, 0.3)
	for _, v := range []float64{0.05, 0.09, 0.15, 0.31, 2.0} {
		h.Add(v)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Count(0) != 2 || h.Count(1) != 1 || h.Count(2) != 2 {
		t.Errorf("counts = %d/%d/%d", h.Count(0), h.Count(1), h.Count(2))
	}
	if got := h.CumulativeFrac(0.1); got != 0.4 {
		t.Errorf("frac <0.1 = %v, want 0.4", got)
	}
	if got := h.CumulativeFrac(0.3); got != 0.6 {
		t.Errorf("frac <0.3 = %v, want 0.6", got)
	}
	if s := h.String(); !strings.Contains(s, "rest: 2") {
		t.Errorf("render = %q", s)
	}
}

func TestHistogramBoundaryGoesUp(t *testing.T) {
	// "Degraded < 10%" excludes exactly 10%.
	h := NewHistogram(0.1)
	h.Add(0.1)
	if h.Count(0) != 0 || h.Count(1) != 1 {
		t.Errorf("boundary sample landed in %d/%d", h.Count(0), h.Count(1))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1)
	if h.CumulativeFrac(1) != 0 {
		t.Error("empty histogram frac should be 0")
	}
}

func TestHistogramPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewHistogram() },
		func() { NewHistogram(2, 1) },
		func() { NewHistogram(1, 1) },
		func() { NewHistogram(1).CumulativeFrac(0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: counts always sum to the number of samples added.
func TestHistogramPropertyConservation(t *testing.T) {
	f := func(vals []int16) bool {
		h := NewHistogram(-100, 0, 100)
		for _, v := range vals {
			h.Add(float64(v))
		}
		sum := 0
		for i := 0; i <= 3; i++ {
			sum += h.Count(i)
		}
		return sum == len(vals) && h.Total() == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
