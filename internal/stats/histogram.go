package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram counts samples into fixed, caller-defined buckets — the
// degradation-breakdown analyses (Fig. 11) bucket jobs by how much they
// degraded. Bounds are upper edges; a final implicit +Inf bucket catches
// the rest.
type Histogram struct {
	bounds []float64
	counts []int
	total  int
}

// NewHistogram creates a histogram with the given strictly increasing
// upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int, len(bounds)+1),
	}
}

// Add counts one sample.
func (h *Histogram) Add(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	// SearchFloat64s returns the first bound >= v; a sample exactly on a
	// bound belongs to that bucket ("degraded < 10%" means v < 0.10, so
	// v == 0.10 falls into the next bucket).
	if i < len(h.bounds) && v == h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.total++
}

// Total returns the number of samples added.
func (h *Histogram) Total() int { return h.total }

// Count returns the count of bucket i (the last index is the overflow
// bucket).
func (h *Histogram) Count(i int) int { return h.counts[i] }

// CumulativeFrac returns the fraction of samples strictly below the
// given bound, which must be one of the histogram's bounds.
func (h *Histogram) CumulativeFrac(bound float64) float64 {
	idx := -1
	for i, b := range h.bounds {
		if b == bound {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("stats: %v is not a histogram bound", bound))
	}
	if h.total == 0 {
		return 0
	}
	acc := 0
	for i := 0; i <= idx; i++ {
		acc += h.counts[i]
	}
	return float64(acc) / float64(h.total)
}

// String renders the buckets compactly, e.g. "<0.1: 12 | <0.3: 7 | rest: 1".
func (h *Histogram) String() string {
	var b strings.Builder
	for i, bound := range h.bounds {
		fmt.Fprintf(&b, "<%s: %d | ", F(bound), h.counts[i])
	}
	fmt.Fprintf(&b, "rest: %d", h.counts[len(h.bounds)])
	return b.String()
}

// F is re-exported from the trace package's formatting style to keep the
// histogram printable standalone.
func F(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
