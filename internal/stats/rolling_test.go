package stats

import (
	"math"
	"math/rand"
	"testing"
)

// relClose reports whether a and b agree to 1e-9 relative (or absolute,
// near zero) error — the contract between the rolling accumulators and
// their scratch counterparts.
func relClose(a, b float64) bool {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= 1e-9*math.Max(1, scale)
}

// randStream draws a stream mixing the magnitudes the monitor actually
// produces (iowait ratios ~10, throughputs ~1e8) plus missing samples.
func randStream(rng *rand.Rand, n int, scale, missingFrac float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		if rng.Float64() < missingFrac {
			out[i] = math.NaN()
			continue
		}
		out[i] = scale * (1 + 0.3*rng.NormFloat64())
	}
	return out
}

// TestRollingWindowMatchesStdDev streams seeded random values through
// windows of several sizes, asserting the rolling mean/std-dev equals the
// scratch Mean/StdDev of the same trailing window at every step.
func TestRollingWindowMatchesStdDev(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, cap := range []int{1, 2, 4, 7, 32} {
		for _, scale := range []float64{1, 12.5, 4e8} {
			w := NewRollingWindow(cap)
			xs := randStream(rng, 400, scale, 0)
			for i, x := range xs {
				w.Push(x)
				lo := i + 1 - cap
				if lo < 0 {
					lo = 0
				}
				win := xs[lo : i+1]
				if got, want := w.Mean(), Mean(win); !relClose(got, want) {
					t.Fatalf("cap=%d scale=%g step=%d: Mean=%g want %g", cap, scale, i, got, want)
				}
				if got, want := w.StdDev(), StdDev(win); !relClose(got, want) {
					t.Fatalf("cap=%d scale=%g step=%d: StdDev=%g want %g", cap, scale, i, got, want)
				}
				if w.Len() != len(win) {
					t.Fatalf("cap=%d step=%d: Len=%d want %d", cap, i, w.Len(), len(win))
				}
			}
		}
	}
}

func TestRollingWindowValues(t *testing.T) {
	w := NewRollingWindow(3)
	for _, x := range []float64{1, 2, 3, 4, 5} {
		w.Push(x)
	}
	got := w.Values(nil)
	want := []float64{3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("Values = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
}

// TestRollingPearsonMatchesMissingAsZero streams seeded random pairs
// (with missing samples) and asserts the rolling coefficient equals
// PearsonMissingAsZero over the same trailing window at every step.
func TestRollingPearsonMatchesMissingAsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, window := range []int{2, 3, 4, 16} {
		for _, scale := range []float64{1, 4e8} {
			rp := NewRollingPearson(window)
			xs := randStream(rng, 400, 10, 0.1)
			ys := randStream(rng, 400, scale, 0.2)
			for i := range xs {
				rp.Push(xs[i], ys[i])
				lo := i + 1 - window
				if lo < 0 {
					lo = 0
				}
				got, gerr := rp.Corr()
				want, werr := PearsonMissingAsZero(xs[lo:i+1], ys[lo:i+1])
				if (gerr != nil) != (werr != nil) {
					t.Fatalf("window=%d step=%d: err=%v want %v", window, i, gerr, werr)
				}
				if gerr == nil && !relClose(got, want) {
					t.Fatalf("window=%d scale=%g step=%d: Corr=%g want %g", window, scale, i, got, want)
				}
			}
		}
	}
}

// TestRollingPearsonCorrelatedSeries checks the sign and strength come
// out right on a deliberately correlated pair, and that a constant series
// reports zero correlation exactly as the scratch path does.
func TestRollingPearsonCorrelatedSeries(t *testing.T) {
	rp := NewRollingPearson(8)
	for i := 0; i < 40; i++ {
		x := float64(i % 5)
		rp.Push(x, 3*x+1)
	}
	if r, err := rp.Corr(); err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("perfectly correlated: r=%v err=%v", r, err)
	}
	rp = NewRollingPearson(4)
	for i := 0; i < 10; i++ {
		rp.Push(7, float64(i)) // x constant
	}
	if r, err := rp.Corr(); err != nil || r != 0 {
		t.Errorf("constant series: r=%v err=%v, want 0", r, err)
	}
	rp = NewRollingPearson(4)
	rp.Push(1, 2)
	if _, err := rp.Corr(); err != ErrInsufficientData {
		t.Errorf("single pair: err=%v, want ErrInsufficientData", err)
	}
}

// TestMomentsMatchesStdDev folds random slices through Moments and
// compares against the two-pass Mean/StdDev.
func TestMomentsMatchesStdDev(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 5, 100} {
		for _, scale := range []float64{1, 1e9} {
			xs := randStream(rng, n, scale, 0)
			var m Moments
			for _, x := range xs {
				m.Add(x)
			}
			if got, want := m.Mean(), Mean(xs); !relClose(got, want) {
				t.Errorf("n=%d scale=%g: Mean=%g want %g", n, scale, got, want)
			}
			if got, want := m.StdDev(), StdDev(xs); !relClose(got, want) {
				t.Errorf("n=%d scale=%g: StdDev=%g want %g", n, scale, got, want)
			}
			if m.N() != n {
				t.Errorf("N=%d want %d", m.N(), n)
			}
		}
	}
}

// TestPercentileSelectionMatchesSort cross-checks the quickselect
// Percentile and PercentileOfSorted against each other on random data:
// both must produce the identical interpolated order statistics.
func TestPercentileSelectionMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		xs := randStream(rng, n, 100, 0)
		sorted := append([]float64(nil), xs...)
		// Insertion sort as an independent oracle.
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		for _, p := range []float64{0, 3, 25, 50, 75, 97.5, 100} {
			if got, want := Percentile(xs, p), PercentileOfSorted(sorted, p); got != want {
				t.Fatalf("trial %d p=%v: Percentile=%g, of-sorted=%g (xs=%v)", trial, p, got, want, xs)
			}
		}
	}
}

// TestSummarizeSingleSort pins Summarize to the quantiles of a known
// sample and confirms it agrees with per-quantile Percentile calls.
func TestSummarizeSingleSort(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	s := Summarize(xs)
	if s.Min != 1 || s.Max != 9 || s.Median != 5 || s.Q1 != 3 || s.Q3 != 7 {
		t.Errorf("summary = %+v", s)
	}
	for _, tc := range []struct {
		p    float64
		want float64
	}{{0, s.Min}, {25, s.Q1}, {50, s.Median}, {75, s.Q3}, {100, s.Max}} {
		if got := Percentile(xs, tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %g, summary says %g", tc.p, got, tc.want)
		}
	}
}

// TestPearsonMissingAsZeroNoCopies guards the inline substitution:
// results must match Pearson over explicitly zero-substituted copies,
// and the input slices must not be modified.
func TestPearsonMissingAsZeroNoCopies(t *testing.T) {
	x := []float64{1, math.NaN(), 3, 4}
	y := []float64{2, 5, math.NaN(), 8}
	cx := []float64{1, 0, 3, 4}
	cy := []float64{2, 5, 0, 8}
	got, err1 := PearsonMissingAsZero(x, y)
	want, err2 := Pearson(cx, cy)
	if err1 != nil || err2 != nil || got != want {
		t.Errorf("inline=%v (%v), copies=%v (%v)", got, err1, want, err2)
	}
	if !math.IsNaN(x[1]) || !math.IsNaN(y[2]) {
		t.Error("inputs were modified")
	}
}

func BenchmarkSummarize(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := randStream(rng, 1000, 50, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(xs)
	}
}

func BenchmarkRollingPearsonPush(b *testing.B) {
	rp := NewRollingPearson(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp.Push(float64(i%13), float64(i%7))
		if _, err := rp.Corr(); err != nil && i > 2 {
			b.Fatal(err)
		}
	}
}
