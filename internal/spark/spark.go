// Package spark simulates a Spark-style framework over the exec
// substrate: an application is a sequence of stages separated by strict
// barriers; each stage is a wave of tasks over the executor pool. The
// defining behaviour the paper leans on (§II-C, Fig. 2) is that after an
// initial load stage that reads input from disk, iterative stages operate
// on memory-resident RDDs: almost no block I/O, but heavy memory-bandwidth
// and LLC traffic — which is why Spark suffers more from a colocated
// STREAM antagonist than MapReduce does, and why throttling an I/O
// antagonist below ~20% buys Spark little (Fig. 1b).
//
// SparkBench's logistic regression, pagerank and svm (§IV-A) are provided
// as application-config constructors.
package spark

import (
	"fmt"
	"strconv"

	"perfcloud/internal/exec"
	"perfcloud/internal/sim"
	"perfcloud/internal/trace"
)

// StageShape bundles a stage's per-task memory behaviour.
type StageShape struct {
	OpBytes         float64
	CoreCPI         float64
	LLCRefsPerInstr float64
	BytesPerInstr   float64
	WorkingSetBytes float64
}

// loadShape is disk-read-dominant (parsing input into an RDD).
func loadShape() StageShape {
	return StageShape{
		CoreCPI:         0.9,
		LLCRefsPerInstr: 0.02,
		BytesPerInstr:   0.4,
		WorkingSetBytes: 200 << 20,
	}
}

// iterShape is the in-memory iteration profile: the RDD is re-read from
// memory every pass, so bytes-per-instruction and the working set are
// large — the LLC/memory-bandwidth sensitivity the paper measures.
func iterShape() StageShape {
	return StageShape{
		CoreCPI:         0.8,
		LLCRefsPerInstr: 0.04,
		BytesPerInstr:   0.8,
		WorkingSetBytes: 400 << 20,
	}
}

// StageConfig describes one stage.
type StageConfig struct {
	Name         string
	NumTasks     int
	IOBytesPer   float64 // disk bytes per task (input load or shuffle spill)
	InstrPerTask float64
	Shape        StageShape
	// InputKeyPrefix, when set, marks the stage's reads as shared content
	// (task i reads "<prefix>/t<i>"): repeated reads — by job clones or
	// re-runs — can then be served from the host page cache. Leave empty
	// for attempt-private data such as shuffle spills.
	InputKeyPrefix string
}

// AppConfig describes a Spark application.
type AppConfig struct {
	Name   string
	Stages []StageConfig
}

// State is an application's lifecycle phase.
type State int

const (
	// StateQueued means submitted, not yet started.
	StateQueued State = iota
	// StateRunning means some stage is executing.
	StateRunning
	// StateCompleted means the final stage finished.
	StateCompleted
	// StateKilled means the app was killed (losing Dolly clone).
	StateKilled
)

// App is one submitted Spark application.
type App struct {
	id    string
	cfg   AppConfig
	state State

	stageIdx  int
	stage     *exec.TaskSet
	stagesRun []*exec.TaskSet
	spec      exec.Speculator

	tr   *trace.Tracer
	span trace.SpanID

	submitSec float64
	finishSec float64
}

// Span returns the app's trace span (trace.NoSpan when tracing is off).
func (a *App) Span() trace.SpanID { return a.span }

// ID returns the application id.
func (a *App) ID() string { return a.id }

// Config returns the application configuration.
func (a *App) Config() AppConfig { return a.cfg }

// State returns the lifecycle phase.
func (a *App) State() State { return a.state }

// Done reports completion or kill.
func (a *App) Done() bool { return a.state == StateCompleted || a.state == StateKilled }

// Completed reports successful completion.
func (a *App) Completed() bool { return a.state == StateCompleted }

// JCT returns the job completion time in seconds (0 until done).
func (a *App) JCT() float64 {
	if !a.Done() {
		return 0
	}
	return a.finishSec - a.submitSec
}

// SubmitSec returns the submission time.
func (a *App) SubmitSec() float64 { return a.submitSec }

// StageIndex returns the index of the currently running stage.
func (a *App) StageIndex() int { return a.stageIdx }

// TaskSets returns the stages run so far.
func (a *App) TaskSets() []*exec.TaskSet { return append([]*exec.TaskSet(nil), a.stagesRun...) }

// Account sums the app's attempt-time accounting as of nowSec.
func (a *App) Account(nowSec float64) exec.Accounting {
	var acc exec.Accounting
	for _, ts := range a.stagesRun {
		x := ts.Account(nowSec)
		acc.SuccessfulSeconds += x.SuccessfulSeconds
		acc.TotalSeconds += x.TotalSeconds
	}
	return acc
}

// Kill terminates the application immediately.
func (a *App) Kill(nowSec float64) {
	if a.Done() {
		return
	}
	if a.stage != nil {
		a.stage.Kill(nowSec)
	}
	a.state = StateKilled
	a.finishSec = nowSec
	a.tr.MarkKilled(a.span)
	a.tr.End(a.span, nowSec)
}

// Driver schedules applications over a pool of Spark executors.
// It implements sim.Tickable; register it before the cluster.
type Driver struct {
	pool   exec.Pool
	apps   []*App
	nextID int
	spec   exec.Speculator
	tr     *trace.Tracer // nil when tracing is off
}

// SetTracer attaches a span tracer: subsequent Submits open job spans
// and their stages are traced. Attach before submitting apps.
func (d *Driver) SetTracer(tr *trace.Tracer) { d.tr = tr }

// NewDriver creates a driver over the executor pool. The speculator (may
// be nil) applies to all stages of all submitted apps.
func NewDriver(pool exec.Pool, spec exec.Speculator) *Driver {
	return &Driver{pool: pool, spec: spec}
}

// Pool returns the driver's executor pool.
func (d *Driver) Pool() exec.Pool { return d.pool }

// Apps returns all submitted applications in submission order.
func (d *Driver) Apps() []*App { return append([]*App(nil), d.apps...) }

// Submit enqueues an application at nowSec.
func (d *Driver) Submit(cfg AppConfig, nowSec float64) (*App, error) {
	if len(cfg.Stages) == 0 {
		return nil, fmt.Errorf("spark: app %q has no stages", cfg.Name)
	}
	for _, s := range cfg.Stages {
		if s.NumTasks <= 0 {
			return nil, fmt.Errorf("spark: stage %q needs tasks", s.Name)
		}
	}
	a := &App{
		id:        cfg.Name + "-" + strconv.Itoa(d.nextID),
		cfg:       cfg,
		spec:      d.spec,
		tr:        d.tr,
		span:      trace.NoSpan,
		submitSec: nowSec,
	}
	a.span = a.tr.Start(trace.KindJob, a.id, "", trace.NoSpan, nowSec)
	d.nextID++
	d.apps = append(d.apps, a)
	return a, nil
}

// Tick implements sim.Tickable.
func (d *Driver) Tick(c *sim.Clock) {
	now := c.Seconds()
	for _, e := range d.pool {
		e.SyncClock(now)
	}
	for _, a := range d.apps {
		d.advance(a, now)
	}
}

// StrideQuiet reports whether the driver's next Tick is provably a no-op
// beyond the executor clock sync: every app is finished or mid-stage with
// a quiet, not-yet-done task set. A queued app or a completed stage means
// the next Tick advances the stage machine, so the event-driven stepper
// must run it (DESIGN.md §5.6).
func (d *Driver) StrideQuiet() bool {
	for _, a := range d.apps {
		if a.Done() {
			continue
		}
		if a.state == StateQueued || a.stage.Done() || !a.stage.StrideQuiet(d.pool) {
			return false
		}
	}
	return true
}

// advance runs one scheduling round of an app's stage machine.
func (d *Driver) advance(a *App, now float64) {
	if a.Done() {
		return
	}
	if a.state == StateQueued {
		a.state = StateRunning
		d.startStage(a, now)
	}
	a.stage.Tick(now, d.pool)
	for a.stage.Done() {
		a.stageIdx++
		if a.stageIdx >= len(a.cfg.Stages) {
			a.state = StateCompleted
			a.finishSec = now
			a.tr.End(a.span, now)
			return
		}
		d.startStage(a, now)
		a.stage.Tick(now, d.pool)
		if !a.stage.Done() {
			break
		}
	}
}

// startStage materialises the current stage's task set.
func (d *Driver) startStage(a *App, now float64) {
	sc := a.cfg.Stages[a.stageIdx]
	specs := make([]exec.TaskSpec, sc.NumTasks)
	stagePrefix := a.id + "/s" + pad2(a.stageIdx)
	for i := range specs {
		key := ""
		if sc.InputKeyPrefix != "" {
			key = sc.InputKeyPrefix + "/t" + pad3(i)
		}
		specs[i] = exec.TaskSpec{
			ID:              stagePrefix + "-t" + pad3(i),
			IOBytes:         sc.IOBytesPer,
			OpBytes:         sc.Shape.OpBytes,
			InputKey:        key,
			Instructions:    sc.InstrPerTask,
			CoreCPI:         sc.Shape.CoreCPI,
			LLCRefsPerInstr: sc.Shape.LLCRefsPerInstr,
			BytesPerInstr:   sc.Shape.BytesPerInstr,
			WorkingSetBytes: sc.Shape.WorkingSetBytes,
		}
	}
	a.stage = exec.NewTaskSet(stagePrefix, specs, a.spec)
	a.stage.Trace(a.tr, a.span, now)
	a.stagesRun = append(a.stagesRun, a.stage)
}

// iterativeApp builds a load stage followed by n in-memory iterations.
func iterativeApp(name string, tasksPerStage, iterations int, inputBytes, instrPerIter float64) AppConfig {
	perTask := inputBytes / float64(tasksPerStage)
	stages := []StageConfig{{
		Name:         "load",
		NumTasks:     tasksPerStage,
		IOBytesPer:   perTask,
		InstrPerTask: perTask * 10,
		Shape:        loadShape(),
	}}
	for i := 0; i < iterations; i++ {
		stages = append(stages, StageConfig{
			Name:         "iter-" + strconv.Itoa(i),
			NumTasks:     tasksPerStage,
			InstrPerTask: instrPerIter,
			Shape:        iterShape(),
		})
	}
	return AppConfig{Name: name, Stages: stages}
}

// LogisticRegression builds the SparkBench logistic-regression app: one
// input load stage plus gradient-descent iterations over the cached RDD.
func LogisticRegression(tasksPerStage, iterations int, inputBytes float64) AppConfig {
	return iterativeApp("spark-logreg", tasksPerStage, iterations, inputBytes, 2.5e9)
}

// SVM builds the SparkBench svm app: like logistic regression with
// heavier per-iteration compute.
func SVM(tasksPerStage, iterations int, inputBytes float64) AppConfig {
	return iterativeApp("spark-svm", tasksPerStage, iterations, inputBytes, 3.5e9)
}

// PageRank builds the SparkBench pagerank app: iterations exchange edge
// contributions, so each iteration also spills a modest amount to disk.
func PageRank(tasksPerStage, iterations int, inputBytes float64) AppConfig {
	cfg := iterativeApp("spark-pagerank", tasksPerStage, iterations, inputBytes, 2.0e9)
	for i := 1; i < len(cfg.Stages); i++ {
		cfg.Stages[i].IOBytesPer = 4 << 20 // shuffle spill per task
	}
	return cfg
}

// pad2 and pad3 render nonnegative indices like fmt's %02d / %03d —
// zero-padded, wider values in full — without the printf machinery;
// stage construction runs on every startStage and the repeated-run
// experiments submit thousands of apps.
func pad2(n int) string {
	if n < 0 || n >= 100 {
		return strconv.Itoa(n)
	}
	return string([]byte{'0' + byte(n/10), '0' + byte(n%10)})
}

func pad3(n int) string {
	if n < 0 || n >= 1000 {
		return strconv.Itoa(n)
	}
	return string([]byte{'0' + byte(n/100), '0' + byte(n/10%10), '0' + byte(n%10)})
}
