package spark

import (
	"testing"
	"time"
)

// Property-style invariants over the Spark framework simulator.

func TestPropertyJCTMonotoneInIterations(t *testing.T) {
	jct := func(iters int) float64 {
		h := newHarness(t, 6)
		a := h.runApp(t, LogisticRegression(10, iters, 320<<20), time.Hour)
		return a.JCT()
	}
	prev := 0.0
	for _, iters := range []int{1, 3, 6, 10} {
		got := jct(iters)
		if got < prev {
			t.Errorf("JCT(%d iters) = %v < JCT of fewer iterations %v", iters, got, prev)
		}
		prev = got
	}
}

func TestPropertyStageCountMatchesConfig(t *testing.T) {
	for _, iters := range []int{1, 4, 7} {
		h := newHarness(t, 4)
		a := h.runApp(t, SVM(6, iters, 128<<20), time.Hour)
		if got := len(a.TaskSets()); got != iters+1 {
			t.Errorf("iters=%d: stages run = %d, want %d", iters, got, iters+1)
		}
	}
}

func TestPropertyEveryStageTaskCompletes(t *testing.T) {
	h := newHarness(t, 6)
	a := h.runApp(t, PageRank(9, 3, 256<<20), time.Hour)
	for si, ts := range a.TaskSets() {
		if len(ts.Tasks()) != 9 {
			t.Errorf("stage %d tasks = %d, want 9", si, len(ts.Tasks()))
		}
		for _, task := range ts.Tasks() {
			if !task.Done() {
				t.Errorf("stage %d task %s not done", si, task.Spec().ID)
			}
		}
	}
}
