package spark

import (
	"fmt"
	"testing"
	"time"

	"perfcloud/internal/cluster"
	"perfcloud/internal/exec"
	"perfcloud/internal/sim"
	"perfcloud/internal/workloads"
)

type harness struct {
	eng    *sim.Engine
	clus   *cluster.Cluster
	srv    *cluster.Server
	pool   exec.Pool
	driver *Driver
}

func newHarness(t *testing.T, nVMs int) *harness {
	t.Helper()
	h := &harness{}
	h.eng = sim.NewEngine(100*time.Millisecond, 9)
	h.clus = cluster.New()
	h.srv = h.clus.AddServer("s0", cluster.DefaultServerConfig(), h.eng.RNG())
	for i := 0; i < nVMs; i++ {
		vm := h.clus.AddVM(h.srv, fmt.Sprintf("spark-%d", i), 2, 8<<30, cluster.HighPriority, "spark")
		h.pool = append(h.pool, exec.NewExecutor(vm, 2))
	}
	h.driver = NewDriver(h.pool, nil)
	h.eng.RegisterPriority(h.driver, -1)
	h.eng.RegisterPriority(h.clus, 0)
	return h
}

func (h *harness) runApp(t *testing.T, cfg AppConfig, limit time.Duration) *App {
	t.Helper()
	a, err := h.driver.Submit(cfg, h.eng.Clock().Seconds())
	if err != nil {
		t.Fatal(err)
	}
	if !h.eng.RunUntil(a.Done, limit) {
		t.Fatalf("app %s stuck at stage %d", a.ID(), a.StageIndex())
	}
	return a
}

func TestLogisticRegressionCompletes(t *testing.T) {
	h := newHarness(t, 6)
	a := h.runApp(t, LogisticRegression(10, 3, 640<<20), time.Hour)
	if !a.Completed() {
		t.Fatalf("state = %v", a.State())
	}
	if a.JCT() <= 0 {
		t.Errorf("JCT = %v", a.JCT())
	}
	// Load stage + 3 iterations = 4 task sets.
	if got := len(a.TaskSets()); got != 4 {
		t.Errorf("stages run = %d, want 4", got)
	}
}

func TestStageBarrier(t *testing.T) {
	h := newHarness(t, 4)
	a, _ := h.driver.Submit(LogisticRegression(8, 2, 320<<20), 0)
	prevIdx := -1
	for i := 0; i < 100000 && !a.Done(); i++ {
		if a.StageIndex() < prevIdx {
			t.Fatal("stage index went backwards")
		}
		// Only one stage's tasks may run at a time.
		if a.stage != nil && a.StageIndex() < len(a.cfg.Stages) {
			for si, ts := range a.TaskSets() {
				if si < a.StageIndex() && !ts.Done() {
					t.Fatalf("stage %d still active while stage %d runs", si, a.StageIndex())
				}
			}
		}
		prevIdx = a.StageIndex()
		h.eng.Step()
	}
	if !a.Completed() {
		t.Fatalf("state = %v", a.State())
	}
}

func TestSubmitErrors(t *testing.T) {
	h := newHarness(t, 2)
	if _, err := h.driver.Submit(AppConfig{Name: "x"}, 0); err == nil {
		t.Error("no stages: want error")
	}
	bad := LogisticRegression(4, 1, 64<<20)
	bad.Stages[0].NumTasks = 0
	if _, err := h.driver.Submit(bad, 0); err == nil {
		t.Error("zero tasks: want error")
	}
}

func TestKillApp(t *testing.T) {
	h := newHarness(t, 4)
	a, _ := h.driver.Submit(LogisticRegression(8, 5, 640<<20), 0)
	h.eng.Run(20)
	a.Kill(h.eng.Clock().Seconds())
	if !a.Done() || a.Completed() || a.State() != StateKilled {
		t.Fatalf("state = %v", a.State())
	}
	free := 0
	for _, e := range h.pool {
		free += e.FreeSlots()
	}
	if free != 8 {
		t.Errorf("free slots = %d, want 8", free)
	}
	a.Kill(999) // idempotent
	// Ticking a killed app is a no-op.
	h.eng.Run(5)
}

func TestSparkSensitivityShape(t *testing.T) {
	// The paper's Fig. 1 vs Fig. 2 contrast: Spark suffers more from a
	// memory antagonist than from an I/O antagonist, because after the
	// load stage it is memory-resident.
	jct := func(antagonist string) float64 {
		h := newHarness(t, 6)
		switch antagonist {
		case "fio":
			vm := h.clus.AddVM(h.srv, "fio", 2, 8<<30, cluster.LowPriority, "")
			vm.SetWorkload(workloads.NewFioRandRead(workloads.AlwaysOn))
		case "stream":
			for i := 0; i < 2; i++ {
				vm := h.clus.AddVM(h.srv, fmt.Sprintf("stream-%d", i), 2, 8<<30, cluster.LowPriority, "")
				vm.SetWorkload(workloads.NewStream(workloads.AlwaysOn))
			}
		}
		a := h.runApp(t, LogisticRegression(10, 4, 640<<20), time.Hour)
		return a.JCT()
	}
	alone := jct("none")
	withFio := jct("fio")
	withStream := jct("stream")
	if withStream < alone*1.2 {
		t.Errorf("stream degradation = %vx, want >= 1.2x", withStream/alone)
	}
	if withStream <= withFio {
		t.Errorf("spark should suffer more from STREAM (%v) than fio (%v)", withStream, withFio)
	}
}

func TestPageRankAndSVMComplete(t *testing.T) {
	h := newHarness(t, 6)
	pr := h.runApp(t, PageRank(8, 2, 320<<20), time.Hour)
	if !pr.Completed() {
		t.Fatalf("pagerank state = %v", pr.State())
	}
	svm := h.runApp(t, SVM(8, 2, 320<<20), time.Hour)
	if !svm.Completed() {
		t.Fatalf("svm state = %v", svm.State())
	}
	// PageRank iterations spill to disk; its iteration stages carry IO.
	if pr.Config().Stages[1].IOBytesPer == 0 {
		t.Error("pagerank iterations should spill")
	}
	if lr := LogisticRegression(8, 2, 320<<20); lr.Stages[1].IOBytesPer != 0 {
		t.Error("logreg iterations should be memory-resident")
	}
}

func TestAccountingWithoutSpeculationIsEfficient(t *testing.T) {
	h := newHarness(t, 4)
	a := h.runApp(t, LogisticRegression(6, 2, 128<<20), time.Hour)
	if eff := a.Account(h.eng.Clock().Seconds()).Efficiency(); eff != 1 {
		t.Errorf("efficiency = %v, want 1", eff)
	}
}
