// Package mapreduce simulates a Hadoop-1-style MapReduce framework over
// the exec substrate: a JobTracker accepts jobs, derives one map task per
// HDFS block (with replica locality), runs the map wave, then a strict
// shuffle barrier, then the reduce wave. Task slots live on per-VM
// executors (TaskTrackers). Straggler mitigation plugs in through
// exec.Speculator (LATE and friends live in the straggler package), and
// Dolly-style whole-job cloning is supported through Job.Kill plus
// idempotent re-submission.
//
// The PUMA benchmarks the paper evaluates — terasort, wordcount and
// inverted-index (§IV-A) — are provided as job-config constructors whose
// resource shapes set their I/O-vs-compute balance: terasort is
// I/O-dominant with a full-size shuffle, wordcount is compute-dominant
// with a tiny shuffle, inverted-index sits between.
package mapreduce

import (
	"fmt"
	"strconv"

	"perfcloud/internal/dfs"
	"perfcloud/internal/exec"
	"perfcloud/internal/sim"
	"perfcloud/internal/trace"
)

// TaskShape bundles the per-byte compute intensity and memory behaviour
// of one task type.
type TaskShape struct {
	InstrPerByte    float64 // instructions retired per input byte
	OpBytes         float64 // I/O granularity (0 = exec default)
	CoreCPI         float64
	LLCRefsPerInstr float64
	BytesPerInstr   float64
	WorkingSetBytes float64
}

// defaultMRShape is the baseline memory behaviour of Hadoop tasks.
func defaultMRShape(instrPerByte float64) TaskShape {
	return TaskShape{
		InstrPerByte:    instrPerByte,
		CoreCPI:         0.9,
		LLCRefsPerInstr: 0.02,
		BytesPerInstr:   0.3,
		WorkingSetBytes: 100 << 20,
	}
}

// JobConfig describes one MapReduce job.
type JobConfig struct {
	Name       string
	InputFile  string // DFS file; one map task per block
	NumReduces int

	// MapOutputRatio is intermediate bytes per input byte (terasort ~1,
	// wordcount ~0.05). The shuffle moves NumMaps*block*ratio bytes.
	MapOutputRatio float64
	// ReduceOutputRatio is output bytes per shuffled byte.
	ReduceOutputRatio float64

	MapShape    TaskShape
	ReduceShape TaskShape
}

// State is a job's lifecycle phase.
type State int

const (
	// StateQueued means the job has been submitted but not started.
	StateQueued State = iota
	// StateMap means the map wave is running.
	StateMap
	// StateReduce means the reduce wave is running.
	StateReduce
	// StateCompleted means all reduces finished.
	StateCompleted
	// StateKilled means the job was killed (e.g. a losing Dolly clone).
	StateKilled
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateMap:
		return "map"
	case StateReduce:
		return "reduce"
	case StateCompleted:
		return "completed"
	default:
		return "killed"
	}
}

// Job is one submitted MapReduce job.
type Job struct {
	id    string
	cfg   JobConfig
	state State

	file      dfs.File
	mapSet    *exec.TaskSet
	reduceSet *exec.TaskSet
	spec      exec.Speculator

	tr   *trace.Tracer
	span trace.SpanID

	submitSec float64
	finishSec float64
}

// Span returns the job's trace span (trace.NoSpan when tracing is off).
func (j *Job) Span() trace.SpanID { return j.span }

// ID returns the job id.
func (j *Job) ID() string { return j.id }

// Config returns the job configuration.
func (j *Job) Config() JobConfig { return j.cfg }

// State returns the job's phase.
func (j *Job) State() State { return j.state }

// Done reports whether the job completed or was killed.
func (j *Job) Done() bool { return j.state == StateCompleted || j.state == StateKilled }

// Completed reports successful completion.
func (j *Job) Completed() bool { return j.state == StateCompleted }

// JCT returns the job completion time in seconds (0 until done).
func (j *Job) JCT() float64 {
	if !j.Done() {
		return 0
	}
	return j.finishSec - j.submitSec
}

// SubmitSec returns the submission time.
func (j *Job) SubmitSec() float64 { return j.submitSec }

// NumMaps returns the number of map tasks.
func (j *Job) NumMaps() int { return len(j.file.Blocks) }

// TaskSets returns the job's task sets created so far.
func (j *Job) TaskSets() []*exec.TaskSet {
	var out []*exec.TaskSet
	if j.mapSet != nil {
		out = append(out, j.mapSet)
	}
	if j.reduceSet != nil {
		out = append(out, j.reduceSet)
	}
	return out
}

// Account sums the job's attempt-time accounting as of nowSec.
func (j *Job) Account(nowSec float64) exec.Accounting {
	var acc exec.Accounting
	for _, ts := range j.TaskSets() {
		a := ts.Account(nowSec)
		acc.SuccessfulSeconds += a.SuccessfulSeconds
		acc.TotalSeconds += a.TotalSeconds
	}
	return acc
}

// Kill terminates the job immediately.
func (j *Job) Kill(nowSec float64) {
	if j.Done() {
		return
	}
	for _, ts := range j.TaskSets() {
		ts.Kill(nowSec)
	}
	j.state = StateKilled
	j.finishSec = nowSec
	j.tr.MarkKilled(j.span)
	j.tr.End(j.span, nowSec)
}

// JobTracker schedules jobs over a pool of task-tracker executors.
// It implements sim.Tickable; register it before the cluster so tasks
// scheduled in a tick consume that tick's resources.
type JobTracker struct {
	fs     *dfs.FileSystem
	pool   exec.Pool
	jobs   []*Job
	nextID int
	spec   exec.Speculator // default speculator for new jobs (may be nil)
	tr     *trace.Tracer   // nil when tracing is off
}

// SetTracer attaches a span tracer: subsequent Submits open job spans
// and their task sets are traced. Attach before submitting jobs.
func (jt *JobTracker) SetTracer(tr *trace.Tracer) { jt.tr = tr }

// NewJobTracker creates a tracker over the executor pool and filesystem.
func NewJobTracker(pool exec.Pool, fs *dfs.FileSystem, spec exec.Speculator) *JobTracker {
	return &JobTracker{fs: fs, pool: pool, spec: spec}
}

// Pool returns the tracker's executor pool.
func (jt *JobTracker) Pool() exec.Pool { return jt.pool }

// Jobs returns all submitted jobs in submission order.
func (jt *JobTracker) Jobs() []*Job { return append([]*Job(nil), jt.jobs...) }

// Submit enqueues a job at nowSec. The input file must already exist in
// the DFS.
func (jt *JobTracker) Submit(cfg JobConfig, nowSec float64) (*Job, error) {
	f, ok := jt.fs.Open(cfg.InputFile)
	if !ok {
		return nil, fmt.Errorf("mapreduce: input file %q not found", cfg.InputFile)
	}
	if cfg.NumReduces < 0 {
		return nil, fmt.Errorf("mapreduce: negative reduce count")
	}
	j := &Job{
		id:        cfg.Name + "-" + strconv.Itoa(jt.nextID),
		cfg:       cfg,
		file:      f,
		spec:      jt.spec,
		tr:        jt.tr,
		span:      trace.NoSpan,
		submitSec: nowSec,
	}
	j.span = j.tr.Start(trace.KindJob, j.id, "", trace.NoSpan, nowSec)
	jt.nextID++
	jt.jobs = append(jt.jobs, j)
	return j, nil
}

// Tick implements sim.Tickable: sync executor clocks, then advance every
// live job (FIFO order — earlier jobs grab slots first, as Hadoop's
// default scheduler does).
func (jt *JobTracker) Tick(c *sim.Clock) {
	now := c.Seconds()
	for _, e := range jt.pool {
		e.SyncClock(now)
	}
	for _, j := range jt.jobs {
		jt.advance(j, now)
	}
}

// StrideQuiet reports whether the tracker's next Tick is provably a no-op
// beyond the executor clock sync: every job is either finished or sitting
// in a wave whose task set is quiet and not yet done. A queued job or a
// completed wave means the next Tick takes a state-machine transition, so
// the event-driven stepper must run it (DESIGN.md §5.6).
func (jt *JobTracker) StrideQuiet() bool {
	for _, j := range jt.jobs {
		switch j.state {
		case StateQueued:
			return false
		case StateMap:
			if j.mapSet.Done() || !j.mapSet.StrideQuiet(jt.pool) {
				return false
			}
		case StateReduce:
			if j.reduceSet.Done() || !j.reduceSet.StrideQuiet(jt.pool) {
				return false
			}
		}
	}
	return true
}

// advance runs one scheduling round of a job's state machine.
func (jt *JobTracker) advance(j *Job, now float64) {
	switch j.state {
	case StateQueued:
		j.mapSet = exec.NewTaskSet(j.id+"/map", jt.mapSpecs(j), j.spec)
		j.mapSet.Trace(j.tr, j.span, now)
		j.state = StateMap
		j.mapSet.Tick(now, jt.pool)
	case StateMap:
		j.mapSet.Tick(now, jt.pool)
		if j.mapSet.Done() {
			if j.cfg.NumReduces == 0 {
				j.state = StateCompleted
				j.finishSec = now
				j.tr.End(j.span, now)
				return
			}
			j.reduceSet = exec.NewTaskSet(j.id+"/reduce", jt.reduceSpecs(j), j.spec)
			j.reduceSet.Trace(j.tr, j.span, now)
			j.state = StateReduce
			j.reduceSet.Tick(now, jt.pool)
		}
	case StateReduce:
		j.reduceSet.Tick(now, jt.pool)
		if j.reduceSet.Done() {
			j.state = StateCompleted
			j.finishSec = now
			j.tr.End(j.span, now)
		}
	}
}

// mapSpecs derives one task per input block, preferring replica holders.
func (jt *JobTracker) mapSpecs(j *Job) []exec.TaskSpec {
	specs := make([]exec.TaskSpec, 0, len(j.file.Blocks))
	s := j.cfg.MapShape
	for _, b := range j.file.Blocks {
		specs = append(specs, exec.TaskSpec{
			ID:              j.id + "/m" + pad3(b.Index),
			IOBytes:         b.Bytes,
			OpBytes:         s.OpBytes,
			InputKey:        j.cfg.InputFile + "/b" + pad3(b.Index),
			Instructions:    b.Bytes * s.InstrPerByte,
			CoreCPI:         s.CoreCPI,
			LLCRefsPerInstr: s.LLCRefsPerInstr,
			BytesPerInstr:   s.BytesPerInstr,
			WorkingSetBytes: s.WorkingSetBytes,
			PreferredVMs:    b.Replicas,
		})
	}
	return specs
}

// reduceSpecs splits the shuffled intermediate data across reducers; a
// reduce task's I/O covers both its shuffle read and its output write.
func (jt *JobTracker) reduceSpecs(j *Job) []exec.TaskSpec {
	inter := j.file.Bytes * j.cfg.MapOutputRatio
	perReduce := inter / float64(j.cfg.NumReduces)
	out := perReduce * j.cfg.ReduceOutputRatio
	s := j.cfg.ReduceShape
	specs := make([]exec.TaskSpec, 0, j.cfg.NumReduces)
	for i := 0; i < j.cfg.NumReduces; i++ {
		specs = append(specs, exec.TaskSpec{
			ID:              j.id + "/r" + pad3(i),
			IOBytes:         perReduce + out,
			OpBytes:         s.OpBytes,
			Instructions:    perReduce * s.InstrPerByte,
			CoreCPI:         s.CoreCPI,
			LLCRefsPerInstr: s.LLCRefsPerInstr,
			BytesPerInstr:   s.BytesPerInstr,
			WorkingSetBytes: s.WorkingSetBytes,
		})
	}
	return specs
}

// pad3 renders a nonnegative index like fmt's %03d — zero-padded to
// three digits, wider values in full — without the printf machinery;
// spec construction runs once per job and the repeated-run experiments
// submit thousands of jobs.
func pad3(n int) string {
	if n < 0 || n >= 1000 {
		return strconv.Itoa(n)
	}
	return string([]byte{'0' + byte(n/100), '0' + byte(n/10%10), '0' + byte(n%10)})
}

// Terasort builds the PUMA terasort job: I/O-dominant maps (sort is
// cheap per byte) and a full-size shuffle — the paper's most
// interference-sensitive MapReduce benchmark (72% degradation in Fig. 1).
func Terasort(input string, numReduces int) JobConfig {
	return JobConfig{
		Name:              "terasort",
		InputFile:         input,
		NumReduces:        numReduces,
		MapOutputRatio:    1.0,
		ReduceOutputRatio: 1.0,
		MapShape:          defaultMRShape(8),
		ReduceShape:       defaultMRShape(8),
	}
}

// Wordcount builds the PUMA wordcount job: compute-dominant maps
// (tokenising costs far more instructions per byte) and a tiny shuffle.
func Wordcount(input string, numReduces int) JobConfig {
	return JobConfig{
		Name:              "wordcount",
		InputFile:         input,
		NumReduces:        numReduces,
		MapOutputRatio:    0.05,
		ReduceOutputRatio: 1.0,
		MapShape:          defaultMRShape(30),
		ReduceShape:       defaultMRShape(15),
	}
}

// InvertedIndex builds the PUMA inverted-index job: between terasort and
// wordcount in both compute intensity and shuffle volume.
func InvertedIndex(input string, numReduces int) JobConfig {
	return JobConfig{
		Name:              "inverted-index",
		InputFile:         input,
		NumReduces:        numReduces,
		MapOutputRatio:    0.3,
		ReduceOutputRatio: 1.0,
		MapShape:          defaultMRShape(22),
		ReduceShape:       defaultMRShape(12),
	}
}
