package mapreduce

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"perfcloud/internal/cluster"
	"perfcloud/internal/dfs"
	"perfcloud/internal/exec"
	"perfcloud/internal/sim"
	"perfcloud/internal/workloads"
)

// harness builds a 6-VM single-server Hadoop cluster with a job tracker.
type harness struct {
	eng  *sim.Engine
	clus *cluster.Cluster
	srv  *cluster.Server
	pool exec.Pool
	fs   *dfs.FileSystem
	jt   *JobTracker
}

func newHarness(t *testing.T, nVMs int, spec exec.Speculator) *harness {
	t.Helper()
	h := &harness{}
	h.eng = sim.NewEngine(100*time.Millisecond, 7)
	h.clus = cluster.New()
	h.srv = h.clus.AddServer("s0", cluster.DefaultServerConfig(), h.eng.RNG())
	var names []string
	for i := 0; i < nVMs; i++ {
		id := fmt.Sprintf("hadoop-%d", i)
		vm := h.clus.AddVM(h.srv, id, 2, 8<<30, cluster.HighPriority, "hadoop")
		h.pool = append(h.pool, exec.NewExecutor(vm, 2))
		names = append(names, id)
	}
	h.fs = dfs.New(dfs.DefaultConfig(), names, rand.New(rand.NewSource(11)))
	h.jt = NewJobTracker(h.pool, h.fs, spec)
	h.eng.RegisterPriority(h.jt, -1)
	h.eng.RegisterPriority(h.clus, 0)
	return h
}

func (h *harness) runJob(t *testing.T, cfg JobConfig, limit time.Duration) *Job {
	t.Helper()
	j, err := h.jt.Submit(cfg, h.eng.Clock().Seconds())
	if err != nil {
		t.Fatal(err)
	}
	if !h.eng.RunUntil(j.Done, limit) {
		t.Fatalf("job %s stuck in state %v", j.ID(), j.State())
	}
	return j
}

func TestTerasortRunsToCompletion(t *testing.T) {
	h := newHarness(t, 6, nil)
	h.fs.Create("input", 640<<20)
	j := h.runJob(t, Terasort("input", 10), 30*time.Minute)
	if !j.Completed() {
		t.Fatalf("state = %v", j.State())
	}
	if j.NumMaps() != 10 {
		t.Errorf("maps = %d, want 10", j.NumMaps())
	}
	if j.JCT() <= 0 {
		t.Errorf("JCT = %v", j.JCT())
	}
	// All tasks have a winning attempt; no kills without speculation.
	for _, ts := range j.TaskSets() {
		for _, task := range ts.Tasks() {
			if !task.Done() {
				t.Errorf("task %s not done", task.Spec().ID)
			}
			if len(task.Attempts()) != 1 {
				t.Errorf("task %s attempts = %d", task.Spec().ID, len(task.Attempts()))
			}
		}
	}
	if eff := j.Account(h.eng.Clock().Seconds()).Efficiency(); eff != 1 {
		t.Errorf("efficiency without speculation = %v, want 1", eff)
	}
}

func TestStateStringAndPhases(t *testing.T) {
	states := map[State]string{
		StateQueued: "queued", StateMap: "map", StateReduce: "reduce",
		StateCompleted: "completed", StateKilled: "killed",
	}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestReduceBarrierOrdering(t *testing.T) {
	h := newHarness(t, 6, nil)
	h.fs.Create("input", 320<<20)
	j, _ := h.jt.Submit(Terasort("input", 5), 0)
	// While the map set is not done, no reduce set may exist.
	for i := 0; i < 10000 && !j.Done(); i++ {
		if j.State() == StateMap && j.reduceSet != nil {
			t.Fatal("reduce set created before map barrier")
		}
		h.eng.Step()
	}
	if !j.Completed() {
		t.Fatalf("state = %v", j.State())
	}
}

func TestMapOnlyJob(t *testing.T) {
	h := newHarness(t, 4, nil)
	h.fs.Create("input", 128<<20)
	cfg := Wordcount("input", 0)
	j := h.runJob(t, cfg, 30*time.Minute)
	if !j.Completed() || j.reduceSet != nil {
		t.Errorf("map-only job: state=%v reduceSet=%v", j.State(), j.reduceSet)
	}
}

func TestSubmitErrors(t *testing.T) {
	h := newHarness(t, 2, nil)
	if _, err := h.jt.Submit(Terasort("missing", 2), 0); err == nil {
		t.Error("missing input: want error")
	}
	h.fs.Create("input", 64<<20)
	bad := Terasort("input", 2)
	bad.NumReduces = -1
	if _, err := h.jt.Submit(bad, 0); err == nil {
		t.Error("negative reduces: want error")
	}
}

func TestKillJob(t *testing.T) {
	h := newHarness(t, 4, nil)
	h.fs.Create("input", 640<<20)
	j, _ := h.jt.Submit(Terasort("input", 10), 0)
	h.eng.Run(20)
	j.Kill(h.eng.Clock().Seconds())
	if !j.Done() || j.Completed() || j.State() != StateKilled {
		t.Fatalf("state = %v", j.State())
	}
	if j.JCT() <= 0 {
		t.Error("killed job should have a finish time")
	}
	// Slots freed.
	free := 0
	for _, e := range h.pool {
		free += e.FreeSlots()
	}
	if free != 8 {
		t.Errorf("free slots = %d, want all 8", free)
	}
	// Killing again is a no-op; efficiency reflects the waste.
	j.Kill(999)
	if eff := j.Account(h.eng.Clock().Seconds()).Efficiency(); eff != 0 {
		t.Errorf("efficiency of fully killed job = %v, want 0", eff)
	}
}

func TestFIFOAcrossJobs(t *testing.T) {
	h := newHarness(t, 2, nil) // 4 slots total
	h.fs.Create("a", 640<<20)
	h.fs.Create("b", 640<<20)
	j1, _ := h.jt.Submit(Terasort("a", 2), 0)
	j2, _ := h.jt.Submit(Terasort("b", 2), 0)
	h.eng.Run(2)
	// First job's maps grab the slots first.
	run1 := len(j1.mapSet.RunningAttempts())
	if run1 != 4 {
		t.Errorf("job1 running = %d, want all 4 slots", run1)
	}
	if j2.mapSet != nil && len(j2.mapSet.RunningAttempts()) != 0 {
		t.Errorf("job2 should wait for slots")
	}
	if !h.eng.RunUntil(func() bool { return j1.Done() && j2.Done() }, time.Hour) {
		t.Fatal("jobs stuck")
	}
	if j2.JCT() <= j1.JCT() {
		t.Errorf("FIFO: j2 (%v) should finish after j1 (%v)", j2.JCT(), j1.JCT())
	}
}

func TestWorkloadShapesDiffer(t *testing.T) {
	// Terasort is I/O-dominant, wordcount compute-dominant: on the same
	// input, wordcount should take clearly longer alone (more instr/byte),
	// while terasort should suffer more from an I/O antagonist.
	jct := func(cfg func(string, int) JobConfig, withFio bool) float64 {
		h := newHarness(t, 6, nil)
		h.fs.Create("input", 640<<20)
		if withFio {
			fioVM := h.clus.AddVM(h.srv, "fio", 2, 8<<30, cluster.LowPriority, "")
			fioVM.SetWorkload(workloads.NewFioRandRead(workloads.AlwaysOn))
		}
		j := h.runJob(t, cfg("input", 10), time.Hour)
		return j.JCT()
	}
	tsAlone := jct(Terasort, false)
	tsFio := jct(Terasort, true)
	wcAlone := jct(Wordcount, false)
	wcFio := jct(Wordcount, true)

	tsDeg := tsFio / tsAlone
	wcDeg := wcFio / wcAlone
	if tsDeg < 1.3 {
		t.Errorf("terasort degradation = %vx, want >= 1.3x under fio", tsDeg)
	}
	if tsDeg <= wcDeg {
		t.Errorf("terasort (%vx) should degrade more than wordcount (%vx)", tsDeg, wcDeg)
	}
}

func TestInvertedIndexCompletes(t *testing.T) {
	h := newHarness(t, 6, nil)
	h.fs.Create("wiki", 320<<20)
	j := h.runJob(t, InvertedIndex("wiki", 5), time.Hour)
	if !j.Completed() {
		t.Fatalf("state = %v", j.State())
	}
}
