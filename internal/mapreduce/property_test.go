package mapreduce

import (
	"fmt"
	"testing"
	"time"
)

// Property-style invariants over the framework, swept across job shapes.

func TestPropertyJCTMonotoneInInputSize(t *testing.T) {
	jct := func(blocks int) float64 {
		h := newHarness(t, 6, nil)
		h.fs.Create("in", float64(blocks)*(64<<20))
		j := h.runJob(t, Terasort("in", blocks/2+1), time.Hour)
		return j.JCT()
	}
	prev := 0.0
	for _, blocks := range []int{2, 6, 12, 24} {
		got := jct(blocks)
		if got < prev {
			t.Errorf("JCT(%d blocks) = %v < JCT of smaller input %v", blocks, got, prev)
		}
		prev = got
	}
}

func TestPropertyEfficiencyNeverExceedsOne(t *testing.T) {
	for _, reduces := range []int{0, 1, 5} {
		h := newHarness(t, 4, nil)
		h.fs.Create("in", 320<<20)
		j := h.runJob(t, Wordcount("in", reduces), time.Hour)
		eff := j.Account(h.eng.Clock().Seconds()).Efficiency()
		if eff > 1+1e-9 || eff <= 0 {
			t.Errorf("reduces=%d: efficiency = %v", reduces, eff)
		}
	}
}

func TestPropertyEveryTaskExactlyOneWinner(t *testing.T) {
	h := newHarness(t, 6, nil)
	h.fs.Create("in", 640<<20)
	j := h.runJob(t, InvertedIndex("in", 7), time.Hour)
	for _, ts := range j.TaskSets() {
		for _, task := range ts.Tasks() {
			winners := 0
			for _, a := range task.Attempts() {
				if task.Completed() == a {
					winners++
				}
			}
			if winners != 1 {
				t.Errorf("task %s winners = %d", task.Spec().ID, winners)
			}
		}
	}
}

func TestPropertyMapCountsMatchBlocks(t *testing.T) {
	for _, mb := range []int{64, 100, 640, 1000} {
		h := newHarness(t, 6, nil)
		name := fmt.Sprintf("in-%d", mb)
		h.fs.Create(name, float64(mb)*(1<<20))
		j, err := h.jt.Submit(Terasort(name, 2), 0)
		if err != nil {
			t.Fatal(err)
		}
		wantMaps := mb / 64
		if mb%64 != 0 {
			wantMaps++
		}
		if j.NumMaps() != wantMaps {
			t.Errorf("%d MiB input: maps = %d, want %d", mb, j.NumMaps(), wantMaps)
		}
		if !h.eng.RunUntil(j.Done, time.Hour) {
			t.Fatalf("stuck at %v", j.State())
		}
	}
}
