package trace

import (
	"fmt"
	"math"
	"strings"

	"perfcloud/internal/stats"
)

// SeriesCSV renders one or more aligned time series as CSV with a time
// column — the raw data behind the paper's time-series figures (Figs. 3,
// 9, 10), suitable for any plotting tool. Series may have different
// lengths; missing cells (beyond a series' end, or NaN samples) are
// empty.
func SeriesCSV(names []string, series []*stats.TimeSeries) string {
	if len(names) != len(series) {
		panic("trace: names/series length mismatch")
	}
	var b strings.Builder
	b.WriteString("time")
	for _, n := range names {
		b.WriteByte(',')
		b.WriteString(n)
	}
	b.WriteByte('\n')

	// Index each series by timestamp (monitors share a clock, so rows
	// align on equal timestamps).
	rows := map[float64][]float64{}
	var order []float64
	for si, ts := range series {
		times := ts.Times()
		vals := ts.Values()
		for i := range times {
			row, ok := rows[times[i]]
			if !ok {
				row = make([]float64, len(series))
				for k := range row {
					row[k] = math.NaN()
				}
				rows[times[i]] = row
				order = append(order, times[i])
			}
			row[si] = vals[i]
		}
	}
	sortFloats(order)
	for _, t := range order {
		fmt.Fprintf(&b, "%g", t)
		for _, v := range rows[t] {
			b.WriteByte(',')
			if !math.IsNaN(v) {
				fmt.Fprintf(&b, "%g", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// sortFloats is an insertion sort: timestamp sets are near-sorted already
// (series append in time order) and tiny.
func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
