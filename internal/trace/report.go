package trace

// Report rendering: per-job "where did the time go" tables and the
// critical path through each job's sequential waves, built from the span
// tree. Both render through Table, so psim can emit aligned text or CSV.

// jobAgg is one job's aggregated attribution.
type jobAgg struct {
	span   *Span
	totals PhaseTotals
}

// aggregate folds every closed attempt/task span into its root job. A
// span's root is found by walking Parent links; orphan task sets (traced
// with parent NoSpan) act as their own roots.
func (t *Tracer) aggregate() []*jobAgg {
	if t == nil {
		return nil
	}
	spans := t.spans
	root := make([]SpanID, len(spans))
	byRoot := map[SpanID]*jobAgg{}
	var jobs []*jobAgg
	for i := range spans {
		s := &spans[i]
		r := s.ID
		if s.Parent != NoSpan {
			r = root[s.Parent] // parents precede children in creation order
		}
		root[i] = r
		if s.Parent == NoSpan {
			agg := &jobAgg{span: s}
			byRoot[r] = agg
			jobs = append(jobs, agg)
			continue
		}
		agg := byRoot[r]
		if agg == nil || s.Open {
			continue
		}
		switch s.Kind {
		case KindTask:
			agg.totals.QueueWaitSec += s.QueueWaitSec
		case KindAttempt:
			agg.totals.Attempts++
			wall := s.WallSec()
			agg.totals.WallSec += wall
			for p := range s.Phases {
				agg.totals.Phases[p] += s.Phases[p]
			}
			agg.totals.CacheSavedSec += s.CacheSavedSec
			if s.Killed {
				if s.Speculative {
					agg.totals.SpeculativeWasteSec += wall
				} else {
					agg.totals.KilledWasteSec += wall
				}
			}
		}
	}
	return jobs
}

// PhaseReport renders the per-job attribution table: where every job's
// attempt-seconds went, plus queue wait, speculative/killed waste and
// page-cache savings. Works on a nil tracer (empty table).
func (t *Tracer) PhaseReport() *Table {
	tab := New("Phase attribution: per-job attempt-seconds by phase",
		"job", "jct_s", "attempts", "queue_s",
		"disk_wait_s", "disk_throttled_s", "cache_read_s",
		"cpu_s", "cpi_stall_s", "idle_s",
		"spec_waste_s", "kill_waste_s", "cache_saved_s")
	for _, j := range t.aggregate() {
		pt := j.totals
		tab.Addf(j.span.Name, j.span.WallSec(), pt.Attempts, pt.QueueWaitSec,
			pt.Phases[PhaseDiskWait], pt.Phases[PhaseDiskThrottled], pt.Phases[PhaseCacheRead],
			pt.Phases[PhaseCPU], pt.Phases[PhaseCPIStall], pt.Phases[PhaseIdle],
			pt.SpeculativeWasteSec, pt.KilledWasteSec, pt.CacheSavedSec)
	}
	return tab
}

// CriticalPathReport renders, for each job, the chain of waves/stages
// with the attempt that finished each wave — the span whose phases
// explain the wave's duration, since a wave (strict barrier) ends only
// when its last task does. Killed attempts never gate a barrier and are
// excluded. Works on a nil tracer (empty table).
func (t *Tracer) CriticalPathReport() *Table {
	tab := New("Critical path: the attempt that closed each wave/stage barrier",
		"job", "wave", "attempt", "start_s", "end_s", "wall_s",
		"disk_wait_s", "disk_throttled_s", "cache_read_s",
		"cpu_s", "cpi_stall_s", "idle_s")
	if t == nil {
		return tab
	}
	spans := t.spans
	// jobOf resolves a task set's job name (its own when standalone).
	jobOf := func(s *Span) string {
		if s.Parent != NoSpan {
			return spans[s.Parent].Name
		}
		return s.Name
	}
	// critical[setID] is the latest-ending surviving attempt of the set.
	critical := map[SpanID]*Span{}
	for i := range spans {
		a := &spans[i]
		if a.Kind != KindAttempt || a.Open || a.Killed || a.Parent == NoSpan {
			continue
		}
		task := &spans[a.Parent]
		if task.Parent == NoSpan {
			continue
		}
		set := task.Parent
		if cur := critical[set]; cur == nil || a.EndSec > cur.EndSec {
			critical[set] = a
		}
	}
	for i := range spans {
		set := &spans[i]
		if set.Kind != KindTaskSet {
			continue
		}
		a := critical[set.ID]
		if a == nil {
			continue
		}
		tab.Addf(jobOf(set), set.Name, a.Name,
			a.StartSec, a.EndSec, a.WallSec(),
			a.Phases[PhaseDiskWait], a.Phases[PhaseDiskThrottled], a.Phases[PhaseCacheRead],
			a.Phases[PhaseCPU], a.Phases[PhaseCPIStall], a.Phases[PhaseIdle])
	}
	return tab
}
