package trace

// This file grows the package from a table renderer into the data-plane
// tracing layer: a deterministic span tracer recording where every task
// attempt's time went (DESIGN.md §5.5). The tracer follows the same
// nil-receiver contract as obs.Registry — every method on a nil *Tracer
// is a no-op returning NoSpan — so the exec hot loop pays one pointer
// comparison when tracing is off.
//
// Spans form a tree: job → task set (map/reduce wave or Spark stage) →
// task → attempt. Only attempt spans carry phase attribution; task spans
// carry queue wait (submission to first launch); attempt spans carry the
// killed/speculative/cached-input classification the waste accounting
// needs. Span ids are indices into one append-only slice, so a tracer
// driven by a deterministic simulation is itself deterministic: same
// seed, same spans, in the same order, with the same ids.

// SpanID names one span within its Tracer. Ids are dense indices in
// creation order; NoSpan marks "no span" (e.g. tracing disabled).
type SpanID int32

// NoSpan is the id returned when no span was created. Every Tracer
// method accepts it and does nothing.
const NoSpan SpanID = -1

// Kind classifies a span's level in the job → attempt tree.
type Kind uint8

const (
	// KindJob is a whole MapReduce job or Spark application.
	KindJob Kind = iota
	// KindTaskSet is one scheduling wave: a map or reduce wave, or a
	// Spark stage.
	KindTaskSet
	// KindTask is one logical task (completes when any attempt does).
	KindTask
	// KindAttempt is one execution of a task on one executor slot.
	KindAttempt
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindJob:
		return "job"
	case KindTaskSet:
		return "taskset"
	case KindTask:
		return "task"
	default:
		return "attempt"
	}
}

// Phase is one bucket of the per-attempt time attribution. Every tick an
// attempt is running, the executor attributes the full tick across these
// buckets, so a closed attempt's phase seconds sum to its wall time.
type Phase uint8

const (
	// PhaseDiskWait is time an attempt with outstanding block I/O spent
	// off-core: waiting on the shared disk, uncapped.
	PhaseDiskWait Phase = iota
	// PhaseDiskThrottled is disk-wait time while the executor VM was
	// under a blkio cgroup cap (cgroup.Throttle read limits active) —
	// wait the control plane itself induced.
	PhaseDiskThrottled
	// PhaseCacheRead is off-core time spent streaming a page-cache-
	// resident input (no disk demand placed).
	PhaseCacheRead
	// PhaseCPU is on-core execution time at the task's baseline CoreCPI.
	PhaseCPU
	// PhaseCPIStall is the on-core time lost to CPI inflation: granted
	// core time that retired fewer instructions than the CoreCPI
	// baseline would have (LLC/memory-bandwidth interference).
	PhaseCPIStall
	// PhaseIdle is residual tick time with neither I/O pending nor core
	// time granted (e.g. the instruction gate closed, or CPU starvation
	// with no disk work to hide it).
	PhaseIdle

	// NumPhases sizes per-span phase arrays.
	NumPhases = int(PhaseIdle) + 1
)

// String names the phase (stable; used as Perfetto arg keys and report
// column headers).
func (p Phase) String() string {
	switch p {
	case PhaseDiskWait:
		return "disk_wait"
	case PhaseDiskThrottled:
		return "disk_throttled"
	case PhaseCacheRead:
		return "cache_read"
	case PhaseCPU:
		return "cpu"
	case PhaseCPIStall:
		return "cpi_stall"
	default:
		return "idle"
	}
}

// Span is one node of the trace tree. Fields are exported for exporters
// and reports; mutate spans only through Tracer methods.
type Span struct {
	ID     SpanID
	Parent SpanID // NoSpan at the root (jobs)
	Kind   Kind
	Name   string
	// Track is the render lane: executor-slot name ("vm-id/slot0") for
	// attempts, empty for logical spans.
	Track string

	StartSec float64
	EndSec   float64 // == StartSec while Open
	Open     bool

	// Phases is the per-attempt time attribution (attempt spans only).
	Phases [NumPhases]float64

	// QueueWaitSec is submission-to-first-launch wait (task spans only).
	QueueWaitSec float64
	// CacheSavedSec estimates the disk-stream time a page-cache-served
	// input avoided (attempt spans with CachedInput).
	CacheSavedSec float64

	Speculative bool // attempt was a speculative backup copy
	Killed      bool // attempt/set terminated before completing
	CachedInput bool // attempt read its input from the host page cache

	launched bool // first-launch latch for QueueWaitSec
}

// WallSec returns the span's wall-clock duration (0 while open).
func (s *Span) WallSec() float64 {
	if s.Open {
		return 0
	}
	return s.EndSec - s.StartSec
}

// PhaseSum returns the total attributed seconds across all phases.
func (s *Span) PhaseSum() float64 {
	var sum float64
	for _, v := range s.Phases {
		sum += v
	}
	return sum
}

// Tracer records spans for one simulation engine. It is single-threaded
// by construction: executors are advanced sequentially within a tick and
// each engine gets its own tracer (parallel experiment repetitions never
// share one). The zero value is NOT ready; use NewTracer. A nil *Tracer
// is the disabled tracer: every method no-ops.
type Tracer struct {
	spans []Span
}

// NewTracer returns an empty enabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Start opens a span and returns its id. On a nil tracer it returns
// NoSpan.
func (t *Tracer) Start(kind Kind, name, track string, parent SpanID, startSec float64) SpanID {
	if t == nil {
		return NoSpan
	}
	id := SpanID(len(t.spans))
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Kind: kind, Name: name, Track: track,
		StartSec: startSec, EndSec: startSec, Open: true,
	})
	return id
}

// span returns the addressable span for id, or nil (nil tracer, NoSpan,
// or out of range).
func (t *Tracer) span(id SpanID) *Span {
	if t == nil || id < 0 || int(id) >= len(t.spans) {
		return nil
	}
	return &t.spans[id]
}

// End closes a span at endSec. Ending a closed span (or NoSpan) is a
// no-op, so idempotent callers need no latch of their own.
func (t *Tracer) End(id SpanID, endSec float64) {
	if s := t.span(id); s != nil && s.Open {
		s.EndSec = endSec
		s.Open = false
	}
}

// AddPhase accumulates sec into one attribution bucket of a span.
// Non-positive amounts are dropped.
func (t *Tracer) AddPhase(id SpanID, p Phase, sec float64) {
	if sec <= 0 {
		return
	}
	if s := t.span(id); s != nil {
		s.Phases[p] += sec
	}
}

// MarkSpeculative flags an attempt span as a speculative backup copy.
func (t *Tracer) MarkSpeculative(id SpanID) {
	if s := t.span(id); s != nil {
		s.Speculative = true
	}
}

// MarkKilled flags a span as terminated before completion.
func (t *Tracer) MarkKilled(id SpanID) {
	if s := t.span(id); s != nil {
		s.Killed = true
	}
}

// MarkCachedInput flags an attempt span as page-cache-served and records
// the estimated disk-stream seconds the cache hit avoided.
func (t *Tracer) MarkCachedInput(id SpanID, savedSec float64) {
	if s := t.span(id); s != nil {
		s.CachedInput = true
		s.CacheSavedSec = savedSec
	}
}

// FirstLaunch records a task span's queue wait the first time one of its
// attempts launches; later launches (speculative backups) do not reset
// it.
func (t *Tracer) FirstLaunch(id SpanID, nowSec float64) {
	if s := t.span(id); s != nil && !s.launched {
		s.launched = true
		s.QueueWaitSec = nowSec - s.StartSec
	}
}

// Len returns the number of spans recorded (0 on a nil tracer).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Spans returns a copy of all spans in creation order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return append([]Span(nil), t.spans...)
}

// PhaseTotals aggregates attempt-level attribution across a run — the
// numbers the Fig. 11/12 result rows carry alongside JCT.
type PhaseTotals struct {
	// Attempts counts closed attempt spans folded into the totals.
	Attempts int
	// WallSec sums those attempts' wall time; the Phases buckets
	// partition it (within float tolerance).
	WallSec float64
	Phases  [NumPhases]float64
	// QueueWaitSec sums task-span submission-to-launch waits (not part
	// of WallSec: a queued task occupies no slot).
	QueueWaitSec float64
	// CacheSavedSec sums the estimated disk time page-cache hits saved.
	CacheSavedSec float64
	// SpeculativeWasteSec is wall time of killed speculative attempts;
	// KilledWasteSec is wall time of other killed attempts (losing
	// originals, killed job clones).
	SpeculativeWasteSec float64
	KilledWasteSec      float64
}

// PhaseSum returns the sum of the phase buckets; it should match
// WallSec within float tolerance.
func (pt *PhaseTotals) PhaseSum() float64 {
	var sum float64
	for _, v := range pt.Phases {
		sum += v
	}
	return sum
}

// Add accumulates another total into pt.
func (pt *PhaseTotals) Add(o PhaseTotals) {
	pt.Attempts += o.Attempts
	pt.WallSec += o.WallSec
	for i := range pt.Phases {
		pt.Phases[i] += o.Phases[i]
	}
	pt.QueueWaitSec += o.QueueWaitSec
	pt.CacheSavedSec += o.CacheSavedSec
	pt.SpeculativeWasteSec += o.SpeculativeWasteSec
	pt.KilledWasteSec += o.KilledWasteSec
}

// Totals aggregates the tracer's closed spans. Open spans (attempts
// still running when the simulation stopped) are excluded: their wall
// time is undefined.
func (t *Tracer) Totals() PhaseTotals {
	var pt PhaseTotals
	if t == nil {
		return pt
	}
	for i := range t.spans {
		s := &t.spans[i]
		if s.Open {
			continue
		}
		switch s.Kind {
		case KindTask:
			pt.QueueWaitSec += s.QueueWaitSec
		case KindAttempt:
			pt.Attempts++
			wall := s.WallSec()
			pt.WallSec += wall
			for p := range s.Phases {
				pt.Phases[p] += s.Phases[p]
			}
			pt.CacheSavedSec += s.CacheSavedSec
			if s.Killed {
				if s.Speculative {
					pt.SpeculativeWasteSec += wall
				} else {
					pt.KilledWasteSec += wall
				}
			}
		}
	}
	return pt
}
