package trace

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"

	"perfcloud/internal/obs"
)

// WritePerfetto encodes the tracer's closed spans as a Chrome-trace-event
// JSON object ("traceEvents" array), the format Perfetto and
// chrome://tracing open directly.
//
// Layout: process 1 ("executors") has one thread per executor slot, and
// every attempt span renders there as a duration event whose args carry
// the phase attribution. Process 2 ("jobs") has one thread per job on
// which the job span and its sequential task-set (wave/stage) spans
// nest. Logical task spans are recorded by the tracer but not rendered —
// tasks of one wave overlap in time, which duration events on a single
// thread cannot express; their queue wait is visible through the report
// tables instead. Process 3 ("control") renders cap/release/migrate
// events from the control-plane audit log (one thread per server) as
// instant events, so throttle decisions line up with the attempts they
// slowed.
//
// The encoding is hand-rolled with fixed field order, sorted track
// numbering and creation-order spans: a deterministic simulation
// produces byte-identical output (asserted by
// TestSameSeedTracesAreByteIdentical). Timestamps are microseconds, as
// the format requires.
func (t *Tracer) WritePerfetto(w io.Writer, events []obs.Event) error {
	bw := bufio.NewWriter(w)
	enc := perfettoEncoder{w: bw}

	// Track numbering. Executor-slot threads are numbered by sorted
	// track name; job threads by job-span creation order; control
	// threads by sorted server id.
	slotTid := map[string]int{}
	var slotNames []string
	jobTid := map[SpanID]int{}
	var jobNames []string
	spans := t.Spans()
	for i := range spans {
		s := &spans[i]
		switch {
		case s.Kind == KindAttempt && s.Track != "":
			if _, ok := slotTid[s.Track]; !ok {
				slotTid[s.Track] = 0 // numbered after the sort below
				slotNames = append(slotNames, s.Track)
			}
		case s.Kind == KindJob, s.Kind == KindTaskSet && s.Parent == NoSpan:
			jobTid[s.ID] = len(jobNames) + 1
			jobNames = append(jobNames, s.Name)
		}
	}
	sort.Strings(slotNames)
	for i, name := range slotNames {
		slotTid[name] = i + 1
	}
	serverTid := map[string]int{}
	var serverNames []string
	for _, e := range events {
		if !controlEvent(e.Type) {
			continue
		}
		if _, ok := serverTid[e.Server]; !ok {
			serverTid[e.Server] = 0
			serverNames = append(serverNames, e.Server)
		}
	}
	sort.Strings(serverNames)
	for i, name := range serverNames {
		serverTid[name] = i + 1
	}

	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)

	// Metadata first: process and thread names.
	if len(slotNames) > 0 {
		enc.meta("process_name", 1, 0, "executors")
		for _, name := range slotNames {
			enc.meta("thread_name", 1, slotTid[name], name)
		}
	}
	if len(jobNames) > 0 {
		enc.meta("process_name", 2, 0, "jobs")
		for i, name := range jobNames {
			enc.meta("thread_name", 2, i+1, name)
		}
	}
	if len(serverNames) > 0 {
		enc.meta("process_name", 3, 0, "control")
		for _, name := range serverNames {
			enc.meta("thread_name", 3, serverTid[name], name)
		}
	}

	// Duration events, in span-creation order.
	for i := range spans {
		s := &spans[i]
		if s.Open {
			continue
		}
		switch s.Kind {
		case KindAttempt:
			if s.Track == "" {
				continue
			}
			enc.attempt(s, slotTid[s.Track])
		case KindJob:
			enc.duration(s, 2, jobTid[s.ID])
		case KindTaskSet:
			tid, ok := jobTid[s.ID]
			if !ok {
				tid, ok = jobTid[s.Parent]
			}
			if ok {
				enc.duration(s, 2, tid)
			}
		}
	}

	// Control-plane instants, in audit-log (simulation-time) order.
	for _, e := range events {
		if controlEvent(e.Type) {
			enc.instant(e, serverTid[e.Server])
		}
	}

	bw.WriteString("]}\n")
	return bw.Flush()
}

// controlEvent reports whether an audit-log event is a control action
// worth an instant marker on the trace.
func controlEvent(t obs.EventType) bool {
	return t == obs.EventCap || t == obs.EventRelease || t == obs.EventMigrate
}

// perfettoEncoder hand-writes trace events with fixed field order.
type perfettoEncoder struct {
	w     *bufio.Writer
	wrote bool
}

// sep writes the element separator before every event after the first.
func (e *perfettoEncoder) sep() {
	if e.wrote {
		e.w.WriteByte(',')
	}
	e.wrote = true
}

// meta writes a metadata event naming a process or thread.
func (e *perfettoEncoder) meta(kind string, pid, tid int, name string) {
	e.sep()
	e.w.WriteString(`{"name":"`)
	e.w.WriteString(kind)
	e.w.WriteString(`","ph":"M","pid":`)
	e.w.WriteString(strconv.Itoa(pid))
	e.w.WriteString(`,"tid":`)
	e.w.WriteString(strconv.Itoa(tid))
	e.w.WriteString(`,"args":{"name":`)
	e.w.WriteString(quoteJSON(name))
	e.w.WriteString(`}}`)
}

// header writes the shared prefix of a duration event up to its args.
func (e *perfettoEncoder) header(s *Span, pid, tid int) {
	e.sep()
	e.w.WriteString(`{"name":`)
	e.w.WriteString(quoteJSON(s.Name))
	e.w.WriteString(`,"cat":"`)
	e.w.WriteString(s.Kind.String())
	e.w.WriteString(`","ph":"X","pid":`)
	e.w.WriteString(strconv.Itoa(pid))
	e.w.WriteString(`,"tid":`)
	e.w.WriteString(strconv.Itoa(tid))
	e.w.WriteString(`,"ts":`)
	e.w.WriteString(jsonFloat(s.StartSec * 1e6))
	e.w.WriteString(`,"dur":`)
	e.w.WriteString(jsonFloat((s.EndSec - s.StartSec) * 1e6))
}

// duration writes a job or task-set span without phase args.
func (e *perfettoEncoder) duration(s *Span, pid, tid int) {
	e.header(s, pid, tid)
	if s.Killed {
		e.w.WriteString(`,"args":{"killed":true}`)
	}
	e.w.WriteString(`}`)
}

// attempt writes an attempt span with the full phase attribution.
func (e *perfettoEncoder) attempt(s *Span, tid int) {
	e.header(s, 1, tid)
	e.w.WriteString(`,"args":{`)
	for p := 0; p < NumPhases; p++ {
		if p > 0 {
			e.w.WriteByte(',')
		}
		e.w.WriteString(`"`)
		e.w.WriteString(Phase(p).String())
		e.w.WriteString(`_s":`)
		e.w.WriteString(jsonFloat(s.Phases[p]))
	}
	e.w.WriteString(`,"speculative":`)
	e.w.WriteString(strconv.FormatBool(s.Speculative))
	e.w.WriteString(`,"killed":`)
	e.w.WriteString(strconv.FormatBool(s.Killed))
	e.w.WriteString(`,"cached_input":`)
	e.w.WriteString(strconv.FormatBool(s.CachedInput))
	e.w.WriteString(`,"cache_saved_s":`)
	e.w.WriteString(jsonFloat(s.CacheSavedSec))
	e.w.WriteString(`}}`)
}

// instant writes one control action as a thread-scoped instant event.
func (e *perfettoEncoder) instant(ev obs.Event, tid int) {
	e.sep()
	name := string(ev.Type)
	if ev.Res != "" {
		name += " " + ev.Res
	}
	if ev.VM != "" {
		name += " " + ev.VM
	}
	e.w.WriteString(`{"name":`)
	e.w.WriteString(quoteJSON(name))
	e.w.WriteString(`,"cat":"control","ph":"i","s":"t","pid":3,"tid":`)
	e.w.WriteString(strconv.Itoa(tid))
	e.w.WriteString(`,"ts":`)
	e.w.WriteString(jsonFloat(ev.T * 1e6))
	e.w.WriteString(`,"args":{"vm":`)
	e.w.WriteString(quoteJSON(ev.VM))
	e.w.WriteString(`,"res":`)
	e.w.WriteString(quoteJSON(ev.Res))
	e.w.WriteString(`,"old_cap":`)
	e.w.WriteString(jsonFloat(ev.OldCap))
	e.w.WriteString(`,"new_cap":`)
	e.w.WriteString(jsonFloat(ev.NewCap))
	e.w.WriteString(`}}`)
}

// jsonFloat formats a float as a JSON number (shortest round-trip form,
// deterministic for a given value).
func jsonFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// quoteJSON escapes a string as a JSON string literal. Span and VM names
// are ASCII identifiers; the escaper still covers quotes, backslashes
// and control bytes so arbitrary names cannot corrupt the document.
func quoteJSON(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			b.WriteString(`\u00`)
			b.WriteByte(hex[c>>4])
			b.WriteByte(hex[c&0xf])
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
