package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"perfcloud/internal/obs"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	id := tr.Start(KindJob, "j", "", NoSpan, 0)
	if id != NoSpan {
		t.Fatalf("Start on nil tracer = %v, want NoSpan", id)
	}
	// None of these may panic.
	tr.End(id, 1)
	tr.AddPhase(id, PhaseCPU, 1)
	tr.MarkSpeculative(id)
	tr.MarkKilled(id)
	tr.MarkCachedInput(id, 1)
	tr.FirstLaunch(id, 1)
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Error("nil tracer should report no spans")
	}
	if got := tr.Totals(); got != (PhaseTotals{}) {
		t.Errorf("nil tracer totals = %+v", got)
	}
	if tr.PhaseReport() == nil || tr.CriticalPathReport() == nil {
		t.Error("nil tracer reports should render empty tables")
	}
}

// buildTree records a small job: one task set with two tasks; task t0
// completes, its speculative backup is killed; t1 reads from cache.
func buildTree() *Tracer {
	tr := NewTracer()
	job := tr.Start(KindJob, "job-0", "", NoSpan, 0)
	set := tr.Start(KindTaskSet, "job-0/map", "", job, 0)
	t0 := tr.Start(KindTask, "t0", "", set, 0)
	t1 := tr.Start(KindTask, "t1", "", set, 0)

	a0 := tr.Start(KindAttempt, "t0", "vm-a/slot0", t0, 1)
	tr.FirstLaunch(t0, 1)
	tr.AddPhase(a0, PhaseDiskWait, 2)
	tr.AddPhase(a0, PhaseCPU, 3)
	tr.End(a0, 6)
	tr.End(t0, 6)

	spec := tr.Start(KindAttempt, "t0", "vm-b/slot0", t0, 3)
	tr.MarkSpeculative(spec)
	tr.AddPhase(spec, PhaseCPIStall, 3)
	tr.MarkKilled(spec)
	tr.End(spec, 6)

	a1 := tr.Start(KindAttempt, "t1", "vm-a/slot1", t1, 2)
	tr.FirstLaunch(t1, 2)
	tr.MarkCachedInput(a1, 0.5)
	tr.AddPhase(a1, PhaseCacheRead, 1)
	tr.AddPhase(a1, PhaseCPU, 6)
	tr.End(a1, 9)
	tr.End(t1, 9)

	tr.End(set, 9)
	tr.End(job, 9)
	return tr
}

func TestTotals(t *testing.T) {
	pt := buildTree().Totals()
	if pt.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", pt.Attempts)
	}
	if pt.WallSec != 5+3+7 {
		t.Errorf("wall = %v, want 15", pt.WallSec)
	}
	if pt.QueueWaitSec != 1+2 {
		t.Errorf("queue wait = %v, want 3", pt.QueueWaitSec)
	}
	if pt.SpeculativeWasteSec != 3 || pt.KilledWasteSec != 0 {
		t.Errorf("waste = %v/%v, want 3/0", pt.SpeculativeWasteSec, pt.KilledWasteSec)
	}
	if pt.CacheSavedSec != 0.5 {
		t.Errorf("cache saved = %v", pt.CacheSavedSec)
	}
	if pt.Phases[PhaseCPU] != 9 || pt.Phases[PhaseDiskWait] != 2 ||
		pt.Phases[PhaseCPIStall] != 3 || pt.Phases[PhaseCacheRead] != 1 {
		t.Errorf("phase totals = %v", pt.Phases)
	}
}

func TestEndIsIdempotentAndQueueWaitLatches(t *testing.T) {
	tr := NewTracer()
	task := tr.Start(KindTask, "t", "", NoSpan, 10)
	tr.FirstLaunch(task, 12)
	tr.FirstLaunch(task, 99) // speculative relaunch must not reset it
	tr.End(task, 20)
	tr.End(task, 50) // late duplicate end must not move the span
	s := tr.Spans()[0]
	if s.QueueWaitSec != 2 {
		t.Errorf("queue wait = %v, want 2", s.QueueWaitSec)
	}
	if s.EndSec != 20 || s.Open {
		t.Errorf("span end = %v open=%v, want 20/closed", s.EndSec, s.Open)
	}
}

func TestPhaseReportAndCriticalPath(t *testing.T) {
	tr := buildTree()
	rep := tr.PhaseReport().String()
	if !strings.Contains(rep, "job-0") {
		t.Errorf("phase report missing job row:\n%s", rep)
	}
	cp := tr.CriticalPathReport()
	if len(cp.Rows) != 1 {
		t.Fatalf("critical path rows = %d, want 1:\n%s", len(cp.Rows), cp.String())
	}
	// t1's attempt ends last (9s) and the killed backup must not win.
	if cp.Rows[0][2] != "t1" {
		t.Errorf("critical attempt = %q, want t1", cp.Rows[0][2])
	}
}

func TestWritePerfettoIsValidAndDeterministic(t *testing.T) {
	events := []obs.Event{
		{T: 5, Type: obs.EventCap, Server: "server-0", VM: "fio", Res: "io", OldCap: 0, NewCap: 2000},
		{T: 7, Type: obs.EventSample, Server: "server-0"}, // not a control action: excluded
		{T: 9, Type: obs.EventRelease, Server: "server-0", VM: "fio", Res: "io"},
	}
	var a, b bytes.Buffer
	if err := buildTree().WritePerfetto(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := buildTree().WritePerfetto(&b, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same tree produced different bytes")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, a.String())
	}
	var attempts, instants, metas int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			if ev["cat"] == "attempt" {
				attempts++
			}
		case "i":
			instants++
		case "M":
			metas++
		}
	}
	if attempts != 3 {
		t.Errorf("attempt events = %d, want 3", attempts)
	}
	if instants != 2 {
		t.Errorf("instant events = %d, want 2 (cap+release)", instants)
	}
	if metas == 0 {
		t.Error("expected process/thread metadata events")
	}
}

func TestQuoteJSONEscapes(t *testing.T) {
	got := quoteJSON("a\"b\\c\nd")
	want := `"a\"b\\c\u000ad"`
	if got != want {
		t.Errorf("quoteJSON = %s, want %s", got, want)
	}
	var s string
	if err := json.Unmarshal([]byte(got), &s); err != nil || s != "a\"b\\c\nd" {
		t.Errorf("round trip = %q, err %v", s, err)
	}
}
