package trace

import (
	"strings"
	"testing"

	"perfcloud/internal/stats"
)

func TestSeriesCSV(t *testing.T) {
	a := stats.NewTimeSeries()
	a.Append(0, 1)
	a.Append(5, 2)
	a.Append(10, 3)
	b := stats.NewTimeSeries()
	b.Append(5, 20)
	b.AppendMissing(10)
	b.Append(15, 40)

	csv := SeriesCSV([]string{"alone", "fio"}, []*stats.TimeSeries{a, b})
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	want := []string{
		"time,alone,fio",
		"0,1,",
		"5,2,20",
		"10,3,",
		"15,,40",
	}
	if len(lines) != len(want) {
		t.Fatalf("lines = %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestSeriesCSVPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	SeriesCSV([]string{"a"}, nil)
}

func TestSortFloats(t *testing.T) {
	xs := []float64{3, 1, 2, 2, 0}
	sortFloats(xs)
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			t.Fatalf("not sorted: %v", xs)
		}
	}
}
