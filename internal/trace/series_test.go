package trace

import (
	"strings"
	"testing"

	"perfcloud/internal/stats"
)

func TestSeriesCSV(t *testing.T) {
	a := stats.NewTimeSeries()
	a.Append(0, 1)
	a.Append(5, 2)
	a.Append(10, 3)
	b := stats.NewTimeSeries()
	b.Append(5, 20)
	b.AppendMissing(10)
	b.Append(15, 40)

	csv := SeriesCSV([]string{"alone", "fio"}, []*stats.TimeSeries{a, b})
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	want := []string{
		"time,alone,fio",
		"0,1,",
		"5,2,20",
		"10,3,",
		"15,,40",
	}
	if len(lines) != len(want) {
		t.Fatalf("lines = %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestSeriesCSVDisjointTimestamps(t *testing.T) {
	// No shared timestamps at all: every row has exactly one populated
	// cell, rows in global time order.
	a := stats.NewTimeSeries()
	a.Append(0, 1)
	a.Append(10, 2)
	b := stats.NewTimeSeries()
	b.Append(5, 30)
	b.Append(15, 40)

	csv := SeriesCSV([]string{"a", "b"}, []*stats.TimeSeries{a, b})
	want := "time,a,b\n0,1,\n5,,30\n10,2,\n15,,40\n"
	if csv != want {
		t.Errorf("csv = %q, want %q", csv, want)
	}
}

func TestSeriesCSVAllNaNColumn(t *testing.T) {
	// A series of only missing samples still contributes its rows (the
	// timestamps exist) but every cell stays empty.
	a := stats.NewTimeSeries()
	a.Append(0, 1)
	b := stats.NewTimeSeries()
	b.AppendMissing(0)
	b.AppendMissing(5)

	csv := SeriesCSV([]string{"a", "gaps"}, []*stats.TimeSeries{a, b})
	want := "time,a,gaps\n0,1,\n5,,\n"
	if csv != want {
		t.Errorf("csv = %q, want %q", csv, want)
	}
}

func TestSeriesCSVEmptyInput(t *testing.T) {
	// Zero series: just the time header. Empty series: header plus the
	// column names, no data rows.
	if got := SeriesCSV(nil, nil); got != "time\n" {
		t.Errorf("no series: %q", got)
	}
	empty := stats.NewTimeSeries()
	if got := SeriesCSV([]string{"x"}, []*stats.TimeSeries{empty}); got != "time,x\n" {
		t.Errorf("empty series: %q", got)
	}
}

func TestSeriesCSVPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	SeriesCSV([]string{"a"}, nil)
}

func TestSortFloats(t *testing.T) {
	xs := []float64{3, 1, 2, 2, 0}
	sortFloats(xs)
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			t.Fatalf("not sorted: %v", xs)
		}
	}
}
