// Package trace renders experiment results as aligned ASCII tables and
// CSV, the output format of cmd/perfbench and the bench harness. It
// deliberately has no knowledge of the experiments themselves.
package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with a title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row. Rows shorter than the header are padded; longer
// rows panic, since that is always a harness bug.
func (t *Table) Add(cells ...string) {
	if len(cells) > len(t.Headers) {
		panic(fmt.Sprintf("trace: row has %d cells, table %q has %d columns",
			len(cells), t.Title, len(t.Headers)))
	}
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Addf appends a row formatting each value with F/S as appropriate.
func (t *Table) Addf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			out[i] = v
		case float64:
			out[i] = F(v)
		case int:
			out[i] = strconv.Itoa(v)
		case bool:
			out[i] = fmt.Sprintf("%v", v)
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	t.Add(out...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (RFC-4180-style quoting
// for cells containing commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// F formats a float compactly: up to three significant decimals, with
// trailing zeros trimmed.
func F(v float64) string {
	s := strconv.FormatFloat(v, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Pct formats a ratio as a percentage with one decimal.
func Pct(v float64) string {
	return strconv.FormatFloat(100*v, 'f', 1, 64) + "%"
}
