package trace

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("Fig X", "name", "value")
	tb.Add("terasort", "1.72")
	tb.Add("logreg", "1.44")
	s := tb.String()
	if !strings.Contains(s, "Fig X") || !strings.Contains(s, "terasort") {
		t.Errorf("render:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Errorf("lines = %d:\n%s", len(lines), s)
	}
	// Columns aligned: header and rows share the separator width.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("misaligned header/separator:\n%s", s)
	}
}

func TestAddPadsShortRows(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.Add("x")
	if got := tb.Rows[0]; len(got) != 3 || got[1] != "" {
		t.Errorf("row = %v", got)
	}
}

func TestAddPanicsOnTooManyCells(t *testing.T) {
	tb := New("", "a")
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	tb.Add("1", "2")
}

func TestAddf(t *testing.T) {
	tb := New("", "s", "f", "i", "b")
	tb.Addf("x", 1.5, 3, true)
	got := tb.Rows[0]
	want := []string{"x", "1.5", "3", "true"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cell %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := New("", "a", "b")
	tb.Add(`has,comma`, `has"quote`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"has,comma"`) || !strings.Contains(csv, `"has""quote"`) {
		t.Errorf("csv = %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("csv header = %q", csv)
	}
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		1.72:    "1.72",
		1.0:     "1",
		0:       "0",
		0.125:   "0.125",
		0.1256:  "0.126",
		-2.5:    "-2.5",
		100.000: "100",
	}
	for in, want := range cases {
		if got := F(in); got != want {
			t.Errorf("F(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.345); got != "34.5%" {
		t.Errorf("Pct = %q", got)
	}
}
