// Package dfs is the HDFS-like storage layout substrate: files are split
// into fixed-size blocks, each block replicated on a subset of worker
// nodes. The MapReduce job tracker derives one map task per block and
// prefers scheduling it on a node holding a replica (data locality), the
// same structure the paper's Hadoop clusters have with the default 64 MB
// block size (§IV-A).
package dfs

import (
	"fmt"
	"math/rand"
)

// Config describes the filesystem geometry.
type Config struct {
	BlockBytes  float64 // block size; the paper uses the 64 MB default
	Replication int     // replicas per block
}

// DefaultConfig mirrors the paper's HDFS setup.
func DefaultConfig() Config {
	return Config{BlockBytes: 64 << 20, Replication: 3}
}

// Block is one replicated chunk of a file.
type Block struct {
	Index    int
	Bytes    float64
	Replicas []string // node (VM) ids holding a copy
}

// File is a named sequence of blocks.
type File struct {
	Name   string
	Bytes  float64
	Blocks []Block
}

// FileSystem places blocks across a fixed set of datanodes.
type FileSystem struct {
	cfg   Config
	nodes []string
	rng   *rand.Rand
	files map[string]File
}

// New creates a filesystem over the given datanodes.
func New(cfg Config, nodes []string, rng *rand.Rand) *FileSystem {
	if cfg.BlockBytes <= 0 {
		panic("dfs: nonpositive block size")
	}
	if cfg.Replication <= 0 {
		panic("dfs: nonpositive replication")
	}
	if len(nodes) == 0 {
		panic("dfs: no datanodes")
	}
	return &FileSystem{
		cfg:   cfg,
		nodes: append([]string(nil), nodes...),
		rng:   rng,
		files: make(map[string]File),
	}
}

// Config returns the filesystem geometry.
func (fs *FileSystem) Config() Config { return fs.cfg }

// Nodes returns the datanode ids.
func (fs *FileSystem) Nodes() []string { return append([]string(nil), fs.nodes...) }

// Create writes a file of the given size, splitting it into blocks and
// placing replicas on distinct randomly chosen datanodes.
func (fs *FileSystem) Create(name string, bytes float64) (File, error) {
	if _, dup := fs.files[name]; dup {
		return File{}, fmt.Errorf("dfs: file %q exists", name)
	}
	if bytes <= 0 {
		return File{}, fmt.Errorf("dfs: file %q needs positive size", name)
	}
	f := File{Name: name, Bytes: bytes}
	remaining := bytes
	for i := 0; remaining > 0; i++ {
		b := Block{Index: i, Bytes: fs.cfg.BlockBytes}
		if remaining < fs.cfg.BlockBytes {
			b.Bytes = remaining
		}
		b.Replicas = fs.pickReplicas()
		f.Blocks = append(f.Blocks, b)
		remaining -= b.Bytes
	}
	fs.files[name] = f
	return f, nil
}

// pickReplicas chooses min(replication, nodes) distinct nodes.
func (fs *FileSystem) pickReplicas() []string {
	k := fs.cfg.Replication
	if k > len(fs.nodes) {
		k = len(fs.nodes)
	}
	perm := fs.rng.Perm(len(fs.nodes))
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = fs.nodes[perm[i]]
	}
	return out
}

// Open returns a file by name.
func (fs *FileSystem) Open(name string) (File, bool) {
	f, ok := fs.files[name]
	return f, ok
}

// Delete removes a file; deleting a missing file is a no-op.
func (fs *FileSystem) Delete(name string) { delete(fs.files, name) }

// BlocksOn returns the indices of blocks of the named file with a
// replica on the given node.
func (fs *FileSystem) BlocksOn(name, node string) []int {
	f, ok := fs.files[name]
	if !ok {
		return nil
	}
	var out []int
	for _, b := range f.Blocks {
		for _, r := range b.Replicas {
			if r == node {
				out = append(out, b.Index)
				break
			}
		}
	}
	return out
}
