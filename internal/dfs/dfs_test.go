package dfs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func nodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('a' + i))
	}
	return out
}

func newFS(n int) *FileSystem {
	return New(DefaultConfig(), nodes(n), rand.New(rand.NewSource(1)))
}

func TestCreateSplitsIntoBlocks(t *testing.T) {
	fs := newFS(6)
	f, err := fs.Create("input", 640<<20) // 10 blocks of 64 MB
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 10 {
		t.Fatalf("blocks = %d, want 10", len(f.Blocks))
	}
	for i, b := range f.Blocks {
		if b.Index != i || b.Bytes != 64<<20 {
			t.Errorf("block %d = %+v", i, b)
		}
		if len(b.Replicas) != 3 {
			t.Errorf("block %d replicas = %d", i, len(b.Replicas))
		}
		seen := map[string]bool{}
		for _, r := range b.Replicas {
			if seen[r] {
				t.Errorf("block %d duplicate replica %s", i, r)
			}
			seen[r] = true
		}
	}
}

func TestCreatePartialLastBlock(t *testing.T) {
	fs := newFS(6)
	f, err := fs.Create("x", 100<<20) // 64 + 36
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	if f.Blocks[1].Bytes != 36<<20 {
		t.Errorf("last block = %v bytes", f.Blocks[1].Bytes)
	}
}

func TestReplicationClampedToNodeCount(t *testing.T) {
	fs := newFS(2)
	f, err := fs.Create("x", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks[0].Replicas) != 2 {
		t.Errorf("replicas = %d, want clamped to 2", len(f.Blocks[0].Replicas))
	}
}

func TestOpenDeleteAndErrors(t *testing.T) {
	fs := newFS(3)
	if _, ok := fs.Open("missing"); ok {
		t.Error("missing file should not open")
	}
	if _, err := fs.Create("x", 0); err == nil {
		t.Error("zero-size create should fail")
	}
	if _, err := fs.Create("x", 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("x", 1<<20); err == nil {
		t.Error("duplicate create should fail")
	}
	if f, ok := fs.Open("x"); !ok || f.Name != "x" {
		t.Error("open after create")
	}
	fs.Delete("x")
	if _, ok := fs.Open("x"); ok {
		t.Error("open after delete")
	}
	fs.Delete("x") // idempotent
}

func TestBlocksOn(t *testing.T) {
	fs := newFS(4)
	fs.Create("x", 256<<20) // 4 blocks, 3 replicas each over 4 nodes
	total := 0
	for _, n := range fs.Nodes() {
		total += len(fs.BlocksOn("x", n))
	}
	if total != 12 { // 4 blocks * 3 replicas
		t.Errorf("total replica placements = %d, want 12", total)
	}
	if fs.BlocksOn("missing", "a") != nil {
		t.Error("missing file should yield nil")
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	cases := []func(){
		func() { New(Config{BlockBytes: 0, Replication: 1}, nodes(1), rand.New(rand.NewSource(1))) },
		func() { New(Config{BlockBytes: 1, Replication: 0}, nodes(1), rand.New(rand.NewSource(1))) },
		func() { New(DefaultConfig(), nil, rand.New(rand.NewSource(1))) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: total block bytes equal the file size, and every block has
// between 1 and Replication distinct replicas.
func TestPropertyBlockInvariants(t *testing.T) {
	fs := newFS(6)
	i := 0
	f := func(mb uint16) bool {
		size := float64(int(mb)+1) * (1 << 20)
		i++
		file, err := fs.Create(string(rune('A'+i%26))+string(rune('0'+i/26%10))+string(rune('0'+i/260)), size)
		if err != nil {
			return true // name collision after many cases; skip
		}
		var tot float64
		for _, b := range file.Blocks {
			tot += b.Bytes
			if len(b.Replicas) < 1 || len(b.Replicas) > 3 {
				return false
			}
		}
		return tot == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
