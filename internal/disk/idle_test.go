package disk

import (
	"testing"
)

// TestAdvanceIdleMatchesQuiescentAllocates is the bit-for-bit contract of
// the idle fast-forward: replaying n all-idle ticks through AdvanceIdle
// must leave the device's seeded random stream and per-client luck state
// exactly where n quiescent Allocate calls would, so the first busy tick
// after a skipped idle stretch grants identically. The skip count is
// large (10^6) on purpose — the batched replay must stay a tight loop,
// not an O(n) re-run of the allocation pipeline.
func TestAdvanceIdleMatchesQuiescentAllocates(t *testing.T) {
	ids := []string{"vm-a", "vm-b", "vm-c"}
	idle := make([]Request, len(ids))
	for i, id := range ids {
		idle[i] = Request{ClientID: id}
	}
	busy := []Request{seqReq("vm-a", 40), seqReq("vm-b", 25), fioReq(800)}
	// fioReq's client is "fio"; keep the busy set inside the idle client
	// population so the jitter states being compared are the replayed ones.
	busy[2].ClientID = "vm-c"

	ref := newTestDisk()
	fast := newTestDisk()
	// Warm both devices with one busy tick so the comparison covers
	// non-zero luck state, not just fresh processes.
	ref.Allocate(tick, busy)
	fast.Allocate(tick, busy)

	const n = 1_000_000
	for i := 0; i < n; i++ {
		ref.Allocate(tick, idle)
	}
	fast.AdvanceIdle(n, ids)

	gRef := ref.Allocate(tick, busy)
	gFast := fast.Allocate(tick, busy)
	if len(gRef) != len(gFast) {
		t.Fatalf("grant counts differ: %d vs %d", len(gRef), len(gFast))
	}
	for i := range gRef {
		if gRef[i] != gFast[i] {
			t.Errorf("grant %d differs after idle stretch:\nper-tick: %+v\nbatched:  %+v", i, gRef[i], gFast[i])
		}
	}
}

// TestAdvanceIdleZeroAllocs pins the O(skipped)-with-zero-allocations
// property: once the per-client slots exist, fast-forwarding even a
// planet-scale idle stretch allocates nothing.
func TestAdvanceIdleZeroAllocs(t *testing.T) {
	d := newTestDisk()
	ids := []string{"vm-a", "vm-b", "vm-c"}
	d.AdvanceIdle(1, ids) // resolve slots and size the scratch buffer
	if allocs := testing.AllocsPerRun(1, func() {
		d.AdvanceIdle(1_000_000, ids)
	}); allocs != 0 {
		t.Errorf("AdvanceIdle allocated %v times per run, want 0", allocs)
	}
}
