// Package disk models a physical server's shared block device. It is the
// substrate behind the paper's I/O-contention experiments: a device with
// finite seek and transfer capacity, per-VM throttle caps (the blkio
// throttling policy PerfCloud actuates), and a queueing-delay model in
// which *random-I/O interference* — not mere utilization — drives both
// the mean queueing delay and how unevenly that delay lands across VMs.
//
// # Device-time cost model
//
// Every operation costs device time: a fixed (seek/rotate) component plus
// a transfer component proportional to the op's size. Small ops pay the
// full seek cost; large sequential ops pay only a fraction of it (the
// elevator merges them). Device time is shared max-min fairly across
// clients, as CFQ's per-cgroup time slices do.
//
// A client issuing a stream of small random ops (fio randread) poisons
// the device for everyone: the interleaved seeks degrade the effective
// transfer bandwidth of sequential streams. The degradation scales with
// the *random load* — the fraction of device time demanded by small-op
// clients.
//
// # Why deviation, not utilization, is the signal
//
// A scale-out application's own VMs place symmetric sequential load, so
// even when they saturate the device each VM sees nearly the same
// queueing per op: the std-dev of the iowait ratio across the app's VMs
// stays low. Random interference instead lands unevenly — whichever VM's
// requests coincide with the antagonist's bursts stays unlucky for
// seconds (modelled as a per-client AR(1) luck factor whose effect scales
// with the random load). This reproduces the paper's §III-A1 observation:
// alone, peak deviation stays under H_io = 10 ms/op; with fio colocated
// it rises roughly an order of magnitude (Fig. 3).
package disk

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"perfcloud/internal/sim"
)

// Config describes the device.
type Config struct {
	IOPSCapacity      float64 // small random ops per second at saturation
	BandwidthCapacity float64 // streaming bytes per second at saturation
	BaseLatencyMs     float64 // per-op service latency on an idle device

	// SmallOpBytes is the op-size boundary: ops at or below it pay the
	// full seek cost and count toward the random load.
	SmallOpBytes float64
	// SeqFixedFactor is the fraction of the seek cost paid by large
	// (merged, sequential) ops.
	SeqFixedFactor float64
	// DegradeScale controls how much random load degrades the effective
	// streaming bandwidth: effBW = BW / (1 + DegradeScale*randomLoad).
	DegradeScale float64

	// CongestionScale multiplies the queueing-delay term.
	CongestionScale float64
	// MaxQueueFactor clips the queueing intensity under overload.
	MaxQueueFactor float64
	// RandomWaitScale converts random load into the wait/jitter factor.
	RandomWaitScale float64
	// BaselineWaitFactor is the floor of that factor: even symmetric
	// self-contention produces a little queueing noise.
	BaselineWaitFactor float64

	// JitterStdDev / JitterCorr parameterise the per-client AR(1) luck
	// factor (0.98 at a 100 ms tick is a ~5 s correlation time).
	JitterStdDev float64
	JitterCorr   float64
}

// DefaultConfig returns the device parameters used by the testbed
// reproduction, calibrated so a 6-VM Hadoop cluster alone keeps the
// iowait-ratio deviation under the paper's H_io = 10 ms/op threshold
// while a colocated fio random-read antagonist raises it roughly 8x.
func DefaultConfig() Config {
	return Config{
		IOPSCapacity:       10000,
		BandwidthCapacity:  400 << 20, // 400 MiB/s streaming
		BaseLatencyMs:      2,
		SmallOpBytes:       64 << 10,
		SeqFixedFactor:     0.1,
		DegradeScale:       1.5,
		CongestionScale:    2.0,
		MaxQueueFactor:     25,
		RandomWaitScale:    1.5,
		BaselineWaitFactor: 0.05,
		JitterStdDev:       0.6,
		JitterCorr:         0.98,
	}
}

// Request is one client's I/O demand for a tick, plus its throttle caps.
type Request struct {
	ClientID string
	Ops      float64 // operations wanted this tick
	Bytes    float64 // bytes wanted this tick
	CapIOPS  float64 // throttle cap, ops/sec; 0 = unlimited
	CapBPS   float64 // throttle cap, bytes/sec; 0 = unlimited
}

// Grant is the device's answer for one client for one tick.
type Grant struct {
	ClientID string
	Ops      float64 // operations served
	Bytes    float64 // bytes served
	WaitMs   float64 // total queueing delay accrued by the served ops, ms
}

// Disk is the shared device. It is not safe for concurrent use; the
// cluster steps it once per tick from the simulation loop.
type Disk struct {
	cfg    Config
	jitter *sim.AR1

	lastUtilization float64
	lastRandomLoad  float64
	lastQuiescent   bool

	// Reused per-Allocate scratch (one disk serves one server, ticked by a
	// single goroutine, so plain fields suffice).
	capped     []Request
	opSize     []float64
	cost       []float64
	timeDemand []float64
	keep       map[string]bool
	fair       fairScratch

	// Steady-state memo. Unlike the CPU and memory allocators the disk
	// cannot return cached grants wholesale: the per-client AR(1) luck
	// factor feeds every grant's queueing delay, so WaitMs is fresh every
	// tick by construction. What *is* a pure function of (tickSec, reqs)
	// is everything upstream of the luck draw — throttle capping, random
	// load, degraded bandwidth, per-op cost and the max-min fair shares —
	// so a tick repeating last tick's request vector reuses the cached
	// Ops/Bytes grants and the cached wait coefficient, and recomputes
	// only WaitMs from this tick's draws.
	memoValid     bool
	memoTick      float64
	memoQuiescent bool
	memoUtil      float64
	memoRandom    float64
	memoWaitCoef  float64 // CongestionScale*q*rlFactor of the memoized tick
	memoReqs      []Request
	memoGrants    []Grant // WaitMs fields unused; recomputed per tick

	// Resolved jitter slots for memoGrants, rebuilt lazily after each memo
	// save (and after any AR(1) GC compaction, tracked by the generation),
	// so the fused steady path draws without per-client map lookups.
	memoSlots    []sim.Slot
	memoSlotsOK  bool
	memoSlotsGen uint64

	// Memo accounting (plain fields: one disk serves one server's
	// ticking goroutine; read between ticks via MemoStats).
	memoHits   uint64
	memoMisses uint64
}

// MemoStats returns how many AllocateInto calls took the steady path
// (hits: cached shares reused, only WaitMs recomputed) versus solved the
// full allocation (misses) over the disk's lifetime. Read it between
// ticks — the counters are owned by the goroutine ticking the server.
func (d *Disk) MemoStats() (hits, misses uint64) { return d.memoHits, d.memoMisses }

// memoizeOff disables the steady-state memo package-wide when set; the
// zero value (enabled) is the normal operating mode. Atomic so tests can
// flip modes without racing live disks.
var memoizeOff atomic.Bool

// SetDefaultMemoize toggles the package-wide steady-state memo and
// returns the previous setting. Both settings produce bit-for-bit
// identical grants — the memoized path replays the same jitter draws and
// evaluates the same wait expression — so the toggle exists only for
// equivalence tests and benchmarking the unmemoized path.
func SetDefaultMemoize(enabled bool) bool {
	return !memoizeOff.Swap(!enabled)
}

// requestsEqual reports element-wise equality of two request vectors.
func requestsEqual(a, b []Request) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// New creates a device with the given config and random stream.
func New(cfg Config, rng *rand.Rand) *Disk {
	if cfg.IOPSCapacity <= 0 || cfg.BandwidthCapacity <= 0 {
		panic(fmt.Sprintf("disk: nonpositive capacity in %+v", cfg))
	}
	if cfg.JitterCorr < 0 || cfg.JitterCorr >= 1 {
		panic("disk: JitterCorr must be in [0, 1)")
	}
	return &Disk{cfg: cfg, jitter: sim.NewAR1(cfg.JitterCorr, cfg.JitterStdDev, rng)}
}

// Config returns the device configuration.
func (d *Disk) Config() Config { return d.cfg }

// Utilization returns the device-time demand-to-capacity ratio observed
// on the most recent Allocate call (may exceed 1 under overload).
func (d *Disk) Utilization() float64 { return d.lastUtilization }

// RandomLoad returns the fraction of device time demanded by small-op
// (random) clients on the most recent Allocate call, clipped at 1.
func (d *Disk) RandomLoad() float64 { return d.lastRandomLoad }

// Quiescent reports whether the most recent Allocate call carried zero
// demand. A quiescent allocation grants nothing and leaves all observable
// device state (utilization, random load) at zero; its only side effect
// is stepping the per-client AR(1) luck factors, which AdvanceIdle can
// replay — that is what lets the cluster skip idle servers' grant phases
// without perturbing determinism.
func (d *Disk) Quiescent() bool { return d.lastQuiescent }

// AdvanceIdle replays the random draws of n all-idle ticks for the given
// clients in order, advancing the per-client AR(1) luck factors exactly
// as n quiescent Allocate calls would. The cluster calls it when a server
// wakes from a stretch of skipped idle ticks, so skipping and processing
// idle ticks leave the device's seeded random stream in the identical
// position (DESIGN.md §5.2). The replay is a single batched loop —
// per-client map state is touched once regardless of n — so fast-forwarding
// even planet-scale idle stretches stays O(n*clients) time, zero allocs.
func (d *Disk) AdvanceIdle(n int, clientIDs []string) {
	d.jitter.StepBatch(n, clientIDs)
}

// Allocate serves one tick of I/O. tickSec is the tick length in seconds.
// Grants are returned in the order of the requests.
func (d *Disk) Allocate(tickSec float64, reqs []Request) []Grant {
	return d.AllocateInto(nil, tickSec, reqs)
}

// AllocateInto is Allocate appending into dst (usually dst[:0] of a
// caller-owned buffer), so the per-tick hot path allocates nothing once
// the buffers reach steady-state size.
func (d *Disk) AllocateInto(dst []Grant, tickSec float64, reqs []Request) []Grant {
	if tickSec <= 0 {
		panic("disk: nonpositive tick")
	}
	if d.memoValid && !memoizeOff.Load() && tickSec == d.memoTick && requestsEqual(reqs, d.memoReqs) {
		d.memoHits++
		return d.allocateSteady(dst)
	}
	d.memoMisses++
	base := len(dst)
	seekCost := 1 / d.cfg.IOPSCapacity

	// Phase 1: apply throttle caps. A throttled client queues above its
	// cap inside its own cgroup, invisible to the shared device — this is
	// how blkio throttling shields victims from an antagonist's demand.
	d.capped = d.capped[:0]
	d.opSize = d.opSize[:0]
	for _, r := range reqs {
		if r.Ops < 0 || r.Bytes < 0 {
			panic(fmt.Sprintf("disk: negative demand from %s", r.ClientID))
		}
		c := r
		var size float64
		if c.Ops == 0 && c.Bytes > 0 {
			c.Ops = c.Bytes / (256 << 10) // bytes-only demand: assume 256 KiB ops
		}
		if r.CapIOPS > 0 {
			c.Ops = math.Min(c.Ops, r.CapIOPS*tickSec)
		}
		if c.Ops > 0 {
			size = r.Bytes / math.Max(c.Ops, 1e-12)
			if r.Ops > 0 {
				size = r.Bytes / r.Ops
			}
		}
		if r.CapBPS > 0 && size > 0 {
			c.Ops = math.Min(c.Ops, r.CapBPS*tickSec/size)
		}
		c.Bytes = c.Ops * size
		d.capped = append(d.capped, c)
		d.opSize = append(d.opSize, size)
	}
	capped, opSize := d.capped, d.opSize

	// Quiescent fast path: nobody wants any ops, so the cost model, fair
	// share and queueing delay all reduce to zero grants. The per-client
	// AR(1) luck factors still step exactly as the full path would — the
	// draws are part of the device's seeded random stream, and a busy tick
	// after an idle stretch must observe the same stream whether or not
	// this branch ran. AdvanceIdle replays these draws for ticks the
	// cluster skipped outright (DESIGN.md §5.2).
	var anyOps bool
	for _, c := range capped {
		if c.Ops > 0 {
			anyOps = true
			break
		}
	}
	d.lastQuiescent = !anyOps
	if !anyOps {
		d.lastRandomLoad = 0
		d.lastUtilization = 0
		if d.keep == nil {
			d.keep = make(map[string]bool, len(reqs))
		}
		clear(d.keep)
		for i := range reqs {
			id := reqs[i].ClientID
			d.keep[id] = true
			d.jitter.Step(id)
			dst = append(dst, Grant{ClientID: id})
		}
		d.jitter.GC(d.keep)
		d.saveMemo(tickSec, reqs, dst[base:], 0)
		return dst
	}

	// Phase 2: random load from small-op clients' demanded device time.
	var randomTime float64
	for i, c := range capped {
		if c.Ops > 0 && opSize[i] <= d.cfg.SmallOpBytes {
			randomTime += c.Ops * seekCost
		}
	}
	randomLoad := math.Min(1, randomTime/tickSec)
	d.lastRandomLoad = randomLoad

	// Phase 3: per-op device-time cost under the degraded bandwidth, and
	// total utilization.
	effBW := d.cfg.BandwidthCapacity / (1 + d.cfg.DegradeScale*randomLoad)
	d.cost = d.cost[:0]
	d.timeDemand = d.timeDemand[:0]
	var totalTime float64
	for i, c := range capped {
		var costI, demandI float64
		if c.Ops > 0 {
			fixed := seekCost
			if opSize[i] > d.cfg.SmallOpBytes {
				fixed = seekCost * d.cfg.SeqFixedFactor
			}
			costI = fixed + opSize[i]/effBW
			demandI = c.Ops * costI
			totalTime += demandI
		}
		d.cost = append(d.cost, costI)
		d.timeDemand = append(d.timeDemand, demandI)
	}
	util := totalTime / tickSec
	d.lastUtilization = util

	// Phase 4: max-min fair share of device time; convert back to ops.
	shares := d.fair.fill(d.timeDemand, tickSec)
	for i := range reqs {
		g := Grant{ClientID: reqs[i].ClientID}
		if d.cost[i] > 0 {
			g.Ops = shares[i] / d.cost[i]
			g.Bytes = g.Ops * opSize[i]
		}
		dst = append(dst, g)
	}

	// Phase 5: queueing delay. The blow-up tracks utilization but is
	// scaled by the random-interference factor, so symmetric sequential
	// self-contention stays quiet while a random antagonist makes delays
	// both large and uneven (per-client AR(1) luck).
	q := queueIntensity(util, d.cfg.MaxQueueFactor)
	rlFactor := d.cfg.BaselineWaitFactor + math.Min(1, d.cfg.RandomWaitScale*randomLoad)
	waitCoef := d.cfg.CongestionScale * q * rlFactor
	if d.keep == nil {
		d.keep = make(map[string]bool, len(reqs))
	}
	clear(d.keep)
	grants := dst[base:]
	for i := range grants {
		id := grants[i].ClientID
		d.keep[id] = true
		luck := 1 + d.jitter.Step(id)
		if luck < 0 {
			luck = 0
		}
		waitPerOp := d.cfg.BaseLatencyMs * (1 + waitCoef*luck)
		grants[i].WaitMs = grants[i].Ops * waitPerOp
	}
	d.jitter.GC(d.keep)
	d.saveMemo(tickSec, reqs, grants, waitCoef)
	return dst
}

// saveMemo snapshots the inputs, grants and derived device state of a
// fully solved tick so an identical next tick can skip everything but
// the queueing-delay draws.
func (d *Disk) saveMemo(tickSec float64, reqs []Request, grants []Grant, waitCoef float64) {
	d.memoTick = tickSec
	d.memoQuiescent = d.lastQuiescent
	d.memoUtil = d.lastUtilization
	d.memoRandom = d.lastRandomLoad
	d.memoWaitCoef = waitCoef
	d.memoReqs = append(d.memoReqs[:0], reqs...)
	d.memoGrants = append(d.memoGrants[:0], grants...)
	d.memoValid = true
	d.memoSlotsOK = false
}

// SteadyReady reports whether the steady-state memo would serve a tick of
// length tickSec whose request vector the caller guarantees is unchanged
// since the memo was saved (proven via demand epochs on the fused steady
// path).
func (d *Disk) SteadyReady(tickSec float64) bool {
	return d.memoValid && !memoizeOff.Load() && tickSec == d.memoTick
}

// ReplaySteadyInPlace serves one guaranteed-hit tick directly in the
// caller's grant buffer, which already holds this memo's Ops/Bytes grants
// from the previous tick: only the per-client luck draws and the WaitMs
// they scale are evaluated, operand for operand as allocateSteady would.
// Call only after SteadyReady with len(grants) == len(memoGrants).
func (d *Disk) ReplaySteadyInPlace(grants []Grant) {
	d.memoHits++
	d.lastQuiescent = d.memoQuiescent
	d.lastUtilization = d.memoUtil
	d.lastRandomLoad = d.memoRandom
	if !d.memoSlotsOK || d.memoSlotsGen != d.jitter.Gen() {
		d.memoSlots = d.memoSlots[:0]
		for i := range d.memoGrants {
			d.memoSlots = append(d.memoSlots, d.jitter.Slot(d.memoGrants[i].ClientID))
		}
		d.memoSlotsGen = d.jitter.Gen()
		d.memoSlotsOK = true
	}
	for i := range grants {
		luck := 1 + d.jitter.StepSlot(d.memoSlots[i])
		if luck < 0 {
			luck = 0
		}
		waitPerOp := d.cfg.BaseLatencyMs * (1 + d.memoWaitCoef*luck)
		grants[i].WaitMs = grants[i].Ops * waitPerOp
	}
}

// allocateSteady serves a tick whose request vector repeats the memoized
// one: the cached Ops/Bytes grants and wait coefficient are reused, and
// only the per-client luck draw — per-tick state by design — and the
// WaitMs it scales are evaluated. The draws happen in request order, as
// both full paths (quiescent and busy) do, so the seeded stream position
// is identical; the keep-set GC is skipped, a no-op after an unchanged
// tick.
func (d *Disk) allocateSteady(dst []Grant) []Grant {
	d.lastQuiescent = d.memoQuiescent
	d.lastUtilization = d.memoUtil
	d.lastRandomLoad = d.memoRandom
	for i := range d.memoGrants {
		g := d.memoGrants[i]
		luck := 1 + d.jitter.Step(g.ClientID)
		if luck < 0 {
			luck = 0
		}
		waitPerOp := d.cfg.BaseLatencyMs * (1 + d.memoWaitCoef*luck)
		g.WaitMs = g.Ops * waitPerOp
		dst = append(dst, g)
	}
	return dst
}

// queueIntensity maps utilization to a queueing factor: ~u^2/(1-u) below
// saturation (M/M/1 mean queue length shape), clipped at maxFactor.
func queueIntensity(util, maxFactor float64) float64 {
	if util <= 0 {
		return 0
	}
	denom := 1 - util
	if denom < 0.04 {
		denom = 0.04
	}
	q := util * util / denom
	if q > maxFactor {
		q = maxFactor
	}
	return q
}

// fairScratch holds the reusable buffers of one max-min fair computation.
type fairScratch struct {
	out []float64
	idx []int
}

// fill water-fills the capacity across the demands max-min fairly,
// returning a slice owned by the scratch (valid until the next fill call).
func (f *fairScratch) fill(demands []float64, capacity float64) []float64 {
	n := len(demands)
	if cap(f.out) < n {
		f.out = make([]float64, n)
	}
	f.out = f.out[:n]
	out := f.out
	for i := range out {
		out[i] = 0
	}
	if n == 0 {
		return out
	}
	var total float64
	for _, d := range demands {
		total += d
	}
	if total <= capacity {
		copy(out, demands)
		return out
	}
	f.idx = f.idx[:0]
	for i := 0; i < n; i++ {
		f.idx = append(f.idx, i)
	}
	idx := f.idx
	sort.Slice(idx, func(a, b int) bool { return demands[idx[a]] < demands[idx[b]] })
	left := capacity
	for k, i := range idx {
		share := left / float64(n-k)
		if demands[i] <= share {
			out[i] = demands[i]
			left -= demands[i]
		} else {
			for _, j := range idx[k:] {
				out[j] = share
			}
			break
		}
	}
	return out
}
