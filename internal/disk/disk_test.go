package disk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"perfcloud/internal/stats"
)

const tick = 0.1 // seconds

func newTestDisk() *Disk {
	return New(DefaultConfig(), rand.New(rand.NewSource(1)))
}

// seqReq is a Hadoop-like sequential reader: 256 KiB ops.
func seqReq(id string, ops float64) Request {
	return Request{ClientID: id, Ops: ops, Bytes: ops * (256 << 10)}
}

// fioReq is the fio 4 KiB random-read antagonist at 8000 IOPS.
func fioReq(ops float64) Request {
	return Request{ClientID: "fio", Ops: ops, Bytes: ops * 4096}
}

func TestUncontendedDemandFullyServed(t *testing.T) {
	d := newTestDisk()
	g := d.Allocate(tick, []Request{seqReq("a", 10), seqReq("b", 5)})
	if math.Abs(g[0].Ops-10) > 1e-9 || math.Abs(g[1].Ops-5) > 1e-9 {
		t.Errorf("grants = %v, %v", g[0].Ops, g[1].Ops)
	}
	if math.Abs(g[0].Bytes-10*(256<<10)) > 1 {
		t.Errorf("bytes = %v", g[0].Bytes)
	}
	if d.Utilization() >= 1 {
		t.Errorf("utilization = %v, want < 1", d.Utilization())
	}
}

func TestFioSoloGetsFullRate(t *testing.T) {
	d := newTestDisk()
	g := d.Allocate(tick, []Request{fioReq(800)})
	if g[0].Ops < 799 {
		t.Errorf("solo fio ops = %v, want 800", g[0].Ops)
	}
	if d.RandomLoad() < 0.7 {
		t.Errorf("random load = %v, want high", d.RandomLoad())
	}
}

func TestSequentialOverloadSharedFairly(t *testing.T) {
	d := newTestDisk()
	// Each stream demands ~150 MB/s; six streams oversubscribe 400 MiB/s.
	reqs := make([]Request, 6)
	for i := range reqs {
		reqs[i] = seqReq(string(rune('a'+i)), 57)
	}
	g := d.Allocate(tick, reqs)
	var tot float64
	for i := 1; i < 6; i++ {
		if math.Abs(g[i].Ops-g[0].Ops) > 1e-6 {
			t.Errorf("unequal shares: %v vs %v", g[i].Ops, g[0].Ops)
		}
	}
	for _, gr := range g {
		tot += gr.Bytes
	}
	maxBytes := DefaultConfig().BandwidthCapacity * tick
	if tot > maxBytes*1.05 {
		t.Errorf("total bytes %v exceed streaming capacity %v", tot, maxBytes)
	}
	if d.Utilization() <= 1 {
		t.Errorf("utilization = %v, want > 1", d.Utilization())
	}
	// No random load: purely sequential.
	if d.RandomLoad() != 0 {
		t.Errorf("random load = %v, want 0", d.RandomLoad())
	}
}

func TestRandomAntagonistDegradesSequentialClients(t *testing.T) {
	seqOps := func(withFio bool) float64 {
		d := New(DefaultConfig(), rand.New(rand.NewSource(2)))
		reqs := make([]Request, 0, 7)
		for i := 0; i < 6; i++ {
			reqs = append(reqs, seqReq(string(rune('a'+i)), 114))
		}
		if withFio {
			reqs = append(reqs, fioReq(800))
		}
		var acc float64
		for i := 0; i < 50; i++ {
			g := d.Allocate(tick, reqs)
			acc += g[0].Ops
		}
		return acc
	}
	alone := seqOps(false)
	contended := seqOps(true)
	if contended > alone*0.6 {
		t.Errorf("seq throughput alone=%v with fio=%v, want <= 60%%", alone, contended)
	}
}

func TestThrottleCapRestoresVictims(t *testing.T) {
	// Capping fio reduces the random load and so restores sequential
	// throughput — the mechanism PerfCloud relies on.
	seqOps := func(capIOPS float64) float64 {
		d := New(DefaultConfig(), rand.New(rand.NewSource(3)))
		reqs := make([]Request, 0, 7)
		for i := 0; i < 6; i++ {
			reqs = append(reqs, seqReq(string(rune('a'+i)), 114))
		}
		f := fioReq(800)
		f.CapIOPS = capIOPS
		reqs = append(reqs, f)
		var acc float64
		for i := 0; i < 50; i++ {
			g := d.Allocate(tick, reqs)
			acc += g[0].Ops
		}
		return acc
	}
	uncapped := seqOps(0)
	cap50 := seqOps(4000)
	cap20 := seqOps(1600)
	if !(cap20 > cap50 && cap50 > uncapped) {
		t.Errorf("victim ops should rise as fio cap tightens: uncapped=%v cap50=%v cap20=%v",
			uncapped, cap50, cap20)
	}
}

func TestCapIOPSBindsClient(t *testing.T) {
	d := newTestDisk()
	f := fioReq(800)
	f.CapIOPS = 2000 // 200 ops per tick
	g := d.Allocate(tick, []Request{f})
	if g[0].Ops > 200.01 {
		t.Errorf("capped ops = %v, want <= 200", g[0].Ops)
	}
}

func TestCapBPSBindsClient(t *testing.T) {
	d := newTestDisk()
	// 4 KiB ops, 409600 B/s cap -> 100 ops/s -> 10 ops per tick.
	f := fioReq(800)
	f.CapBPS = 409600
	g := d.Allocate(tick, []Request{f})
	if g[0].Ops > 10.01 {
		t.Errorf("ops = %v, want <= 10 under bps cap", g[0].Ops)
	}
	if g[0].Bytes > 40960*1.01 {
		t.Errorf("bytes = %v, want <= 40960", g[0].Bytes)
	}
}

func TestBytesOnlyDemandSynthesizesOps(t *testing.T) {
	d := newTestDisk()
	g := d.Allocate(tick, []Request{{ClientID: "a", Bytes: 10 << 20}})
	if g[0].Bytes <= 0 || g[0].Ops <= 0 {
		t.Errorf("grant = %+v", g[0])
	}
}

func TestWaitQuietUnderSymmetricSelfContention(t *testing.T) {
	d := New(DefaultConfig(), rand.New(rand.NewSource(4)))
	reqs := make([]Request, 6)
	for i := range reqs {
		reqs[i] = seqReq(string(rune('a'+i)), 114)
	}
	var wait, ops float64
	for i := 0; i < 100; i++ {
		for _, g := range d.Allocate(tick, reqs) {
			wait += g.WaitMs
			ops += g.Ops
		}
	}
	perOp := wait / ops
	if perOp > 15 {
		t.Errorf("self-contended wait/op = %v ms, want modest", perOp)
	}
}

func TestSpreadSeparatesAntagonistFromSelfContention(t *testing.T) {
	// The detector's core property at device level: std-dev of wait/op
	// across six symmetric sequential clients, measured over 5 s windows.
	spread := func(withFio bool, seed int64) float64 {
		d := New(DefaultConfig(), rand.New(rand.NewSource(seed)))
		var sds []float64
		for w := 0; w < 20; w++ {
			wait := make([]float64, 6)
			ops := make([]float64, 6)
			for i := 0; i < 50; i++ {
				reqs := make([]Request, 0, 7)
				for k := 0; k < 6; k++ {
					reqs = append(reqs, seqReq(string(rune('a'+k)), 114))
				}
				if withFio {
					reqs = append(reqs, fioReq(800))
				}
				g := d.Allocate(tick, reqs)
				for k := 0; k < 6; k++ {
					wait[k] += g[k].WaitMs
					ops[k] += g[k].Ops
				}
			}
			ratios := make([]float64, 6)
			for k := range ratios {
				ratios[k] = wait[k] / ops[k]
			}
			sds = append(sds, stats.StdDev(ratios))
		}
		return stats.Mean(sds)
	}
	alone := spread(false, 5)
	contended := spread(true, 5)
	if alone > 10 {
		t.Errorf("alone spread = %v, must stay under the paper's H_io=10", alone)
	}
	if contended < 3*10 {
		t.Errorf("contended spread = %v, want well above threshold", contended)
	}
	if contended < 5*alone {
		t.Errorf("contended/alone = %v/%v, want >= 5x separation", contended, alone)
	}
}

func TestQueueIntensityShape(t *testing.T) {
	if q := queueIntensity(0, 25); q != 0 {
		t.Errorf("q(0) = %v", q)
	}
	q5 := queueIntensity(0.5, 25)
	q9 := queueIntensity(0.9, 25)
	if q9 <= q5 {
		t.Errorf("intensity must grow with utilization: q(.5)=%v q(.9)=%v", q5, q9)
	}
	if q := queueIntensity(5, 25); q != 25 {
		t.Errorf("overload q = %v, want clipped at 25", q)
	}
}

func TestZeroRequests(t *testing.T) {
	d := newTestDisk()
	if g := d.Allocate(tick, nil); len(g) != 0 {
		t.Errorf("grants = %v", g)
	}
	if d.Utilization() != 0 || d.RandomLoad() != 0 {
		t.Errorf("utilization=%v randomLoad=%v", d.Utilization(), d.RandomLoad())
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	cases := []func(){
		func() { New(Config{IOPSCapacity: 0, BandwidthCapacity: 1}, rand.New(rand.NewSource(1))) },
		func() { New(Config{IOPSCapacity: 1, BandwidthCapacity: 1, JitterCorr: 1}, rand.New(rand.NewSource(1))) },
		func() { newTestDisk().Allocate(0, nil) },
		func() { newTestDisk().Allocate(tick, []Request{{ClientID: "x", Ops: -1}}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestJitterStateGarbageCollected(t *testing.T) {
	d := newTestDisk()
	for i := 0; i < 200; i++ {
		id := string(rune('a'+i%26)) + string(rune('0'+i/26))
		d.Allocate(tick, []Request{{ClientID: id, Ops: 1, Bytes: 4096}})
	}
	if d.jitter.Len() > 100 {
		t.Errorf("jitter map grew to %d entries", d.jitter.Len())
	}
}

// Property: no client receives more ops than it demanded, waits are
// nonnegative, and total granted bytes respect streaming capacity.
func TestPropertyCapacityAndDemandRespected(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg, rand.New(rand.NewSource(7)))
	f := func(demands []uint16, small []bool) bool {
		if len(demands) == 0 {
			return true
		}
		if len(demands) > 12 {
			demands = demands[:12]
		}
		reqs := make([]Request, len(demands))
		for i, dm := range demands {
			size := float64(256 << 10)
			if i < len(small) && small[i] {
				size = 4096
			}
			reqs[i] = Request{ClientID: string(rune('a' + i)), Ops: float64(dm), Bytes: float64(dm) * size}
		}
		grants := d.Allocate(tick, reqs)
		var totBytes float64
		for i, g := range grants {
			if g.Ops > reqs[i].Ops+1e-6 {
				return false
			}
			if g.WaitMs < 0 {
				return false
			}
			totBytes += g.Bytes
		}
		return totBytes <= cfg.BandwidthCapacity*tick*1.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: max-min fairness on device time — equal demands, equal grants.
func TestPropertyEqualDemandsEqualGrants(t *testing.T) {
	d := New(DefaultConfig(), rand.New(rand.NewSource(8)))
	f := func(dm uint16, n uint8) bool {
		count := int(n%6) + 2
		reqs := make([]Request, count)
		for i := range reqs {
			reqs[i] = seqReq(string(rune('a'+i)), float64(dm))
		}
		g := d.Allocate(tick, reqs)
		for i := 1; i < count; i++ {
			if math.Abs(g[i].Ops-g[0].Ops) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() []float64 {
		d := New(DefaultConfig(), rand.New(rand.NewSource(99)))
		var out []float64
		for i := 0; i < 20; i++ {
			g := d.Allocate(tick, []Request{seqReq("a", 100), fioReq(800)})
			out = append(out, g[0].WaitMs, g[1].WaitMs, g[0].Ops)
		}
		return out
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("same seed must reproduce identical grants")
		}
	}
}
