package disk

import (
	"math/rand"
	"reflect"
	"testing"
)

// setMemoize flips the package memo default and restores it on cleanup.
func setMemoize(t *testing.T, enabled bool) {
	t.Helper()
	prev := SetDefaultMemoize(enabled)
	t.Cleanup(func() { SetDefaultMemoize(prev) })
}

// memoTickSeq drives one disk through steady busy ticks (steady-path
// hits), a demand change, a throttle-cap change, and a quiescent stretch,
// recording every grant including WaitMs. WaitMs depends on the
// per-client AR(1) draw of each tick, so any difference in how many draws
// the steady path consumes shows up as a divergence here.
func memoTickSeq(d *Disk) [][]Grant {
	reqs := []Request{
		{ClientID: "seq", Ops: 40, Bytes: 40 * (256 << 10)},
		{ClientID: "rand", Ops: 800, Bytes: 800 * 4096},
		{ClientID: "idle"},
	}
	var out [][]Grant
	record := func() {
		out = append(out, append([]Grant(nil), d.Allocate(0.1, reqs)...))
	}
	for i := 0; i < 6; i++ {
		record()
	}
	reqs[1].Ops = 600
	reqs[1].Bytes = 600 * 4096
	for i := 0; i < 4; i++ {
		record()
	}
	reqs[1].CapIOPS = 2000
	for i := 0; i < 4; i++ {
		record()
	}
	reqs[0] = Request{ClientID: "seq"}
	reqs[1] = Request{ClientID: "rand"}
	for i := 0; i < 3; i++ {
		record()
	}
	return out
}

func TestMemoizationMatchesFullAllocate(t *testing.T) {
	setMemoize(t, true)
	memo := memoTickSeq(New(DefaultConfig(), rand.New(rand.NewSource(21))))

	setMemoize(t, false)
	full := memoTickSeq(New(DefaultConfig(), rand.New(rand.NewSource(21))))

	if !reflect.DeepEqual(memo, full) {
		t.Fatalf("steady-path grants diverge from full solve:\nmemo: %v\nfull: %v", memo, full)
	}
}

func TestSteadyPathRefreshesWaitMs(t *testing.T) {
	setMemoize(t, true)
	d := New(DefaultConfig(), rand.New(rand.NewSource(22)))
	reqs := []Request{{ClientID: "rand", Ops: 800, Bytes: 800 * 4096}}
	first := d.Allocate(0.1, reqs)
	second := d.Allocate(0.1, reqs)
	if first[0].Ops != second[0].Ops || first[0].Bytes != second[0].Bytes {
		t.Fatalf("steady tick changed the solved shares: %v vs %v", first, second)
	}
	if first[0].WaitMs == second[0].WaitMs {
		t.Fatal("steady tick reused WaitMs; the luck draw is per-tick state and must be fresh")
	}
}
