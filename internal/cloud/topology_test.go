package cloud

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"perfcloud/internal/cluster"
	"perfcloud/internal/sim"
)

// scanLeastLoaded is the reference placement the heap must reproduce:
// the first server in creation order with strictly fewest placed vcpus,
// exactly the linear rescan the manager shipped with before the index.
func scanLeastLoaded(c *cluster.Cluster, exclude *cluster.Server) *cluster.Server {
	var best *cluster.Server
	bestLoad := -1.0
	c.EachServer(func(s *cluster.Server) {
		if s == exclude {
			return
		}
		var load float64
		s.EachVM(func(v *cluster.VM) { load += v.VCPUs() })
		if best == nil || load < bestLoad {
			best, bestLoad = s, load
		}
	})
	return best
}

// checkIndex asserts the manager's incremental placed totals — per
// server, per rack, per zone — against a fresh recount of the cluster.
func checkIndex(t *testing.T, m *Manager) {
	t.Helper()
	m.Cluster().EachServer(func(s *cluster.Server) {
		var want float64
		s.EachVM(func(v *cluster.VM) { want += v.VCPUs() })
		got, ok := m.PlacedVCPUs(s.ID())
		if !ok || got != want {
			t.Fatalf("server %s placed = %v (ok=%v), want %v", s.ID(), got, ok, want)
		}
	})
	for _, z := range m.Zones() {
		var zSum float64
		for _, r := range z.Racks() {
			var rSum float64
			r.EachServer(func(s *cluster.Server) {
				p, _ := m.PlacedVCPUs(s.ID())
				rSum += p
			})
			if r.PlacedVCPUs() != rSum {
				t.Fatalf("rack %s placed = %v, want %v", r.ID(), r.PlacedVCPUs(), rSum)
			}
			zSum += rSum
		}
		if z.PlacedVCPUs() != zSum {
			t.Fatalf("zone %s placed = %v, want %v", z.ID(), z.PlacedVCPUs(), zSum)
		}
	}
	// Heap order: every node at most its children under (placed, seq).
	for i := range m.heap {
		if m.heap[i].heapIdx != i {
			t.Fatalf("heap[%d] back-pointer = %d", i, m.heap[i].heapIdx)
		}
		for _, ch := range []int{2*i + 1, 2*i + 2} {
			if ch < len(m.heap) && entryLess(m.heap[ch], m.heap[i]) {
				t.Fatalf("heap violated at %d/%d", i, ch)
			}
		}
	}
}

// TestHeapMatchesLinearScan drives a long random sequence of boots,
// migrations, terminations and rebalance-style exclusions, checking at
// every step that the heap's choice equals the old linear rescan's and
// that all incremental totals stay exact.
func TestHeapMatchesLinearScan(t *testing.T) {
	eng := sim.NewEngine(100*time.Millisecond, 3)
	c := cluster.New()
	m := NewManager(c, eng.RNG())
	m.SetTopology(Topology{ServersPerRack: 4, RacksPerZone: 2})
	srvs := m.ProvisionServers(13)
	r := rand.New(rand.NewSource(99))
	var live []string
	nextVM := 0
	for step := 0; step < 400; step++ {
		switch op := r.Intn(10); {
		case op < 5 || len(live) == 0: // boot, random vcpus (spread placement)
			want := scanLeastLoaded(c, nil)
			name := fmt.Sprintf("vm-%d", nextVM)
			nextVM++
			v, err := m.Boot(VMSpec{Name: name, VCPUs: float64(1 + r.Intn(4))})
			if err != nil {
				t.Fatal(err)
			}
			if v.Server() != want {
				t.Fatalf("step %d: boot placed on %s, scan wants %s", step, v.Server().ID(), want.ID())
			}
			live = append(live, name)
		case op < 7: // terminate a random VM
			i := r.Intn(len(live))
			m.Terminate(live[i])
			live = append(live[:i], live[i+1:]...)
		case op < 9: // migrate a random VM to a random server
			v := live[r.Intn(len(live))]
			if err := m.Migrate(v, srvs[r.Intn(len(srvs))].ID()); err != nil {
				t.Fatal(err)
			}
		default: // least-loaded excluding a random src (the rebalance query)
			src := srvs[r.Intn(len(srvs))]
			got := m.leastLoadedExcluding(src)
			want := scanLeastLoaded(c, src)
			if (got == nil) != (want == nil) || (got != nil && got.srv != want) {
				t.Fatalf("step %d: excluding %s heap says %v, scan says %v",
					step, src.ID(), got, want)
			}
		}
		checkIndex(t, m)
	}
}

// TestTopologyAssignment checks the creation-order zone/rack grid and
// the zone-constrained boot path.
func TestTopologyAssignment(t *testing.T) {
	eng := sim.NewEngine(100*time.Millisecond, 1)
	c := cluster.New()
	m := NewManager(c, eng.RNG())
	m.SetTopology(Topology{ServersPerRack: 2, RacksPerZone: 2})
	m.ProvisionServers(10) // 5 racks -> zones of 2 racks: z0{r0,r1} z1{r2,r3} z2{r4}
	zones := m.Zones()
	if len(zones) != 3 {
		t.Fatalf("zones = %d, want 3", len(zones))
	}
	wants := map[string][2]string{
		"server-0": {"zone-0", "rack-0-0"},
		"server-3": {"zone-0", "rack-0-1"},
		"server-4": {"zone-1", "rack-1-0"},
		"server-7": {"zone-1", "rack-1-1"},
		"server-9": {"zone-2", "rack-2-0"},
	}
	for id, want := range wants {
		z, r, ok := m.ServerLocation(id)
		if !ok || z != want[0] || r != want[1] {
			t.Errorf("%s at (%s,%s,%v), want %v", id, z, r, ok, want)
		}
	}
	if _, _, ok := m.ServerLocation("nope"); ok {
		t.Error("unknown server located")
	}
	// Zone-constrained boot lands in zone-1 (servers 4-7) even though the
	// whole fleet is empty and the global spread would pick server-0.
	v, err := m.Boot(VMSpec{Name: "pinned", Zone: "zone-1"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Server().ID() != "server-4" {
		t.Errorf("zone boot placed on %s, want server-4", v.Server().ID())
	}
	if _, err := m.Boot(VMSpec{Name: "x", Zone: "zone-99"}); err == nil {
		t.Error("unknown zone: want error")
	}
	checkIndex(t, m)
}

// TestIndexResyncsAfterDirectClusterMutation mutates the cluster behind
// the manager's back; the placement-sequence check must catch it and the
// next placement must account for the out-of-band VM.
func TestIndexResyncsAfterDirectClusterMutation(t *testing.T) {
	eng := sim.NewEngine(100*time.Millisecond, 1)
	c := cluster.New()
	m := NewManager(c, eng.RNG())
	srvs := m.ProvisionServers(2)
	// Load server-0 directly through the cluster, bypassing Boot.
	c.AddVM(srvs[0], "backdoor", 8, 8<<30, cluster.LowPriority, "")
	v := mustBoot(t, m, VMSpec{Name: "after"})
	if v.Server().ID() != "server-1" {
		t.Errorf("post-resync boot placed on %s, want the empty server-1", v.Server().ID())
	}
	if p, ok := m.PlacedVCPUs("server-0"); !ok || p != 8 {
		t.Errorf("resynced placed for server-0 = %v, want 8", p)
	}
	checkIndex(t, m)
}
