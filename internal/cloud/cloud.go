// Package cloud is the OpenStack-Nova-like cloud manager of the
// reproduction: the authority on VM placement, instance priority and
// application membership. PerfCloud's node managers periodically query it
// (as the paper's agents do through the Nova API) to learn which VMs on
// their server are high priority and which high-priority VMs form one
// scale-out application — staying current across VM arrivals, departures
// and migrations (§III-D2, Algorithm 1).
package cloud

import (
	"fmt"
	"sort"

	"perfcloud/internal/cluster"
	"perfcloud/internal/sim"
)

// VMSpec describes an instance to boot.
type VMSpec struct {
	Name     string
	VCPUs    float64
	MemBytes float64
	Priority cluster.Priority
	AppID    string // "" for standalone VMs
	ServerID string // "" lets the scheduler pick the least-loaded server
	Zone     string // constrain placement to one zone (ignored with ServerID set)
}

// VMInfo is what the cloud manager tells node managers about a VM.
type VMInfo struct {
	ID       string
	Priority cluster.Priority
	AppID    string
	ServerID string
}

// Manager tracks placement over a cluster. Placement state lives in an
// incrementally maintained index (topology.go): per-server placed-vCPU
// entries organized zone→rack→server, plus an indexed min-heap over them
// keyed (placed vcpus, creation order). Boot, Terminate, Migrate and
// RebalanceHighPriority update the index in O(log servers) and never
// rescan the fleet's VMs.
type Manager struct {
	cluster *cluster.Cluster
	rng     *sim.RNG
	defCfg  cluster.ServerConfig
	nextSrv int

	topo    Topology
	entries map[string]*srvEntry
	heap    []*srvEntry
	zones   []*Zone
	seq     int
	// syncedSeq mirrors the cluster's placement sequence as of the last
	// index update; a mismatch means some mutation bypassed the manager
	// (tests driving cluster.AddVM directly) and forces a rebuild.
	syncedSeq uint64
}

// NewManager creates a cloud manager over a (possibly pre-populated)
// cluster, with the default zone/rack topology.
func NewManager(c *cluster.Cluster, rng *sim.RNG) *Manager {
	m := &Manager{cluster: c, rng: rng, defCfg: cluster.DefaultServerConfig(), topo: DefaultTopology()}
	m.rebuild()
	return m
}

// Cluster returns the managed cluster.
func (m *Manager) Cluster() *cluster.Cluster { return m.cluster }

// SetDefaultServerConfig overrides the config used by ProvisionServers.
func (m *Manager) SetDefaultServerConfig(cfg cluster.ServerConfig) { m.defCfg = cfg }

// ProvisionServers adds n bare-metal servers with the default config and
// returns them, naming them server-<k> with a monotonically increasing k.
func (m *Manager) ProvisionServers(n int) []*cluster.Server {
	return m.ProvisionServersWith(n, m.defCfg)
}

// ProvisionServersWith adds n servers with an explicit hardware config —
// heterogeneous fleets mix calls with different configs.
func (m *Manager) ProvisionServersWith(n int, cfg cluster.ServerConfig) []*cluster.Server {
	m.syncIndex()
	out := make([]*cluster.Server, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("server-%d", m.nextSrv)
		m.nextSrv++
		s := m.cluster.AddServer(id, cfg, m.rng)
		m.indexServer(s)
		out = append(out, s)
	}
	m.syncedSeq = m.cluster.PlacementSeq()
	return out
}

// Boot creates a VM per spec. With an empty ServerID the scheduler picks
// the server with the fewest placed vcpus (a simple spread placement,
// matching how the paper's testbed distributes Hadoop VMs) — the heap
// root, in O(1) plus an O(log servers) update, regardless of fleet size.
// A Zone constrains the spread to that zone's servers.
func (m *Manager) Boot(spec VMSpec) (*cluster.VM, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("cloud: VM spec needs a name")
	}
	if m.cluster.FindVM(spec.Name) != nil {
		return nil, fmt.Errorf("cloud: VM %q already exists", spec.Name)
	}
	m.syncIndex()
	var e *srvEntry
	switch {
	case spec.ServerID != "":
		e = m.entries[spec.ServerID]
		if e == nil {
			return nil, fmt.Errorf("cloud: no server %q", spec.ServerID)
		}
	case spec.Zone != "":
		e = m.leastLoadedInZone(spec.Zone)
		if e == nil {
			return nil, fmt.Errorf("cloud: no servers in zone %q", spec.Zone)
		}
	default:
		e = m.leastLoaded()
		if e == nil {
			return nil, fmt.Errorf("cloud: no servers provisioned")
		}
	}
	vcpus := spec.VCPUs
	if vcpus == 0 {
		vcpus = 2
	}
	mem := spec.MemBytes
	if mem == 0 {
		mem = 8 << 30
	}
	vm := m.cluster.AddVM(e.srv, spec.Name, vcpus, mem, spec.Priority, spec.AppID)
	m.addPlaced(e, vcpus)
	m.syncedSeq = m.cluster.PlacementSeq()
	return vm, nil
}

// Terminate removes a VM from the cloud. Unknown ids are a no-op, so
// idempotent teardown in experiments is cheap.
func (m *Manager) Terminate(id string) {
	v := m.cluster.FindVM(id)
	if v == nil {
		return
	}
	m.syncIndex()
	e := m.entries[v.Server().ID()]
	m.cluster.RemoveVM(id)
	if e != nil {
		m.addPlaced(e, -v.VCPUs())
	}
	m.syncedSeq = m.cluster.PlacementSeq()
}

// VMsOnServer answers the node manager's periodic query: every VM hosted
// on the given server with its priority and application membership.
func (m *Manager) VMsOnServer(serverID string) ([]VMInfo, error) {
	srv := m.cluster.FindServer(serverID)
	if srv == nil {
		return nil, fmt.Errorf("cloud: no server %q", serverID)
	}
	out := make([]VMInfo, 0, srv.NumVMs())
	srv.EachVM(func(v *cluster.VM) {
		out = append(out, VMInfo{ID: v.ID(), Priority: v.Priority(), AppID: v.AppID(), ServerID: serverID})
	})
	return out, nil
}

// EachVMOnServer is the non-copying VMsOnServer: it calls fn once per VM
// on the server, in placement order, without building a slice. Node
// managers poll placement every interval, so their hot path uses this.
func (m *Manager) EachVMOnServer(serverID string, fn func(VMInfo)) error {
	srv := m.cluster.FindServer(serverID)
	if srv == nil {
		return fmt.Errorf("cloud: no server %q", serverID)
	}
	srv.EachVM(func(v *cluster.VM) {
		fn(VMInfo{ID: v.ID(), Priority: v.Priority(), AppID: v.AppID(), ServerID: serverID})
	})
	return nil
}

// HighPriorityApps groups the high-priority VMs on a server by
// application id, sorted for deterministic iteration.
func (m *Manager) HighPriorityApps(serverID string) (map[string][]string, error) {
	infos, err := m.VMsOnServer(serverID)
	if err != nil {
		return nil, err
	}
	apps := make(map[string][]string)
	for _, in := range infos {
		if in.Priority == cluster.HighPriority && in.AppID != "" {
			apps[in.AppID] = append(apps[in.AppID], in.ID)
		}
	}
	for id := range apps {
		sort.Strings(apps[id])
	}
	return apps, nil
}

// LowPriorityVMs returns the ids of low-priority VMs on a server, sorted.
func (m *Manager) LowPriorityVMs(serverID string) ([]string, error) {
	infos, err := m.VMsOnServer(serverID)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, in := range infos {
		if in.Priority == cluster.LowPriority {
			out = append(out, in.ID)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Migrate live-migrates a VM to another server, preserving its identity
// (cgroup, caps, workload, framework references). The paper lists
// migration as the cloud manager's complement to node-level throttling
// when multiple high-priority apps collide (§III-D2, §IV-D2).
func (m *Manager) Migrate(vmID, toServerID string) error {
	m.syncIndex()
	var srcID string
	if v := m.cluster.FindVM(vmID); v != nil {
		srcID = v.Server().ID()
	}
	if err := m.cluster.MoveVM(vmID, toServerID); err != nil {
		return fmt.Errorf("cloud: %w", err)
	}
	if srcID != "" && srcID != toServerID {
		v := m.cluster.FindVM(vmID)
		if se := m.entries[srcID]; se != nil {
			m.addPlaced(se, -v.VCPUs())
		}
		if de := m.entries[toServerID]; de != nil {
			m.addPlaced(de, v.VCPUs())
		}
		m.syncedSeq = m.cluster.PlacementSeq()
	}
	return nil
}

// RebalanceHighPriority handles a node manager's escalation: when two or
// more high-priority applications collide on one server and throttling
// low-priority VMs cannot help, move one VM of the smaller colocated app
// to the server currently hosting the fewest vcpus. It returns the id of
// the migrated VM ("" if nothing could be improved).
func (m *Manager) RebalanceHighPriority(serverID string) (string, error) {
	apps, err := m.HighPriorityApps(serverID)
	if err != nil {
		return "", err
	}
	if len(apps) < 2 {
		return "", nil
	}
	// Pick the app with the fewest VMs on this server (cheapest to move),
	// deterministically by name on ties.
	var pick string
	for id, vms := range apps {
		if pick == "" || len(vms) < len(apps[pick]) || (len(vms) == len(apps[pick]) && id < pick) {
			pick = id
		}
	}
	m.syncIndex()
	src := m.cluster.FindServer(serverID)
	dst := m.leastLoadedExcluding(src)
	if dst == nil {
		return "", nil
	}
	vmID := apps[pick][0]
	if err := m.Migrate(vmID, dst.srv.ID()); err != nil {
		return "", err
	}
	return vmID, nil
}
