// Package cloud is the OpenStack-Nova-like cloud manager of the
// reproduction: the authority on VM placement, instance priority and
// application membership. PerfCloud's node managers periodically query it
// (as the paper's agents do through the Nova API) to learn which VMs on
// their server are high priority and which high-priority VMs form one
// scale-out application — staying current across VM arrivals, departures
// and migrations (§III-D2, Algorithm 1).
package cloud

import (
	"fmt"
	"sort"

	"perfcloud/internal/cluster"
	"perfcloud/internal/sim"
)

// VMSpec describes an instance to boot.
type VMSpec struct {
	Name     string
	VCPUs    float64
	MemBytes float64
	Priority cluster.Priority
	AppID    string // "" for standalone VMs
	ServerID string // "" lets the scheduler pick the least-loaded server
}

// VMInfo is what the cloud manager tells node managers about a VM.
type VMInfo struct {
	ID       string
	Priority cluster.Priority
	AppID    string
	ServerID string
}

// Manager tracks placement over a cluster.
type Manager struct {
	cluster *cluster.Cluster
	rng     *sim.RNG
	defCfg  cluster.ServerConfig
	nextSrv int
}

// NewManager creates a cloud manager over an (initially empty) cluster.
func NewManager(c *cluster.Cluster, rng *sim.RNG) *Manager {
	return &Manager{cluster: c, rng: rng, defCfg: cluster.DefaultServerConfig()}
}

// Cluster returns the managed cluster.
func (m *Manager) Cluster() *cluster.Cluster { return m.cluster }

// SetDefaultServerConfig overrides the config used by ProvisionServers.
func (m *Manager) SetDefaultServerConfig(cfg cluster.ServerConfig) { m.defCfg = cfg }

// ProvisionServers adds n bare-metal servers with the default config and
// returns them, naming them server-<k> with a monotonically increasing k.
func (m *Manager) ProvisionServers(n int) []*cluster.Server {
	return m.ProvisionServersWith(n, m.defCfg)
}

// ProvisionServersWith adds n servers with an explicit hardware config —
// heterogeneous fleets mix calls with different configs.
func (m *Manager) ProvisionServersWith(n int, cfg cluster.ServerConfig) []*cluster.Server {
	out := make([]*cluster.Server, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("server-%d", m.nextSrv)
		m.nextSrv++
		out = append(out, m.cluster.AddServer(id, cfg, m.rng))
	}
	return out
}

// Boot creates a VM per spec. With an empty ServerID the scheduler picks
// the server with the fewest placed vcpus (a simple spread placement,
// matching how the paper's testbed distributes Hadoop VMs).
func (m *Manager) Boot(spec VMSpec) (*cluster.VM, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("cloud: VM spec needs a name")
	}
	if m.cluster.FindVM(spec.Name) != nil {
		return nil, fmt.Errorf("cloud: VM %q already exists", spec.Name)
	}
	var srv *cluster.Server
	if spec.ServerID != "" {
		srv = m.cluster.FindServer(spec.ServerID)
		if srv == nil {
			return nil, fmt.Errorf("cloud: no server %q", spec.ServerID)
		}
	} else {
		srv = m.leastLoaded()
		if srv == nil {
			return nil, fmt.Errorf("cloud: no servers provisioned")
		}
	}
	vcpus := spec.VCPUs
	if vcpus == 0 {
		vcpus = 2
	}
	mem := spec.MemBytes
	if mem == 0 {
		mem = 8 << 30
	}
	return m.cluster.AddVM(srv, spec.Name, vcpus, mem, spec.Priority, spec.AppID), nil
}

// Terminate removes a VM from the cloud. Unknown ids are a no-op, so
// idempotent teardown in experiments is cheap.
func (m *Manager) Terminate(id string) { m.cluster.RemoveVM(id) }

// leastLoaded returns the server with the fewest placed vcpus.
func (m *Manager) leastLoaded() *cluster.Server {
	var best *cluster.Server
	bestLoad := -1.0
	for _, s := range m.cluster.Servers() {
		load := placedVCPUs(s)
		if best == nil || load < bestLoad {
			best, bestLoad = s, load
		}
	}
	return best
}

// placedVCPUs sums the vcpus placed on a server without copying its VM list.
func placedVCPUs(s *cluster.Server) float64 {
	var load float64
	s.EachVM(func(v *cluster.VM) {
		load += v.VCPUs()
	})
	return load
}

// VMsOnServer answers the node manager's periodic query: every VM hosted
// on the given server with its priority and application membership.
func (m *Manager) VMsOnServer(serverID string) ([]VMInfo, error) {
	srv := m.cluster.FindServer(serverID)
	if srv == nil {
		return nil, fmt.Errorf("cloud: no server %q", serverID)
	}
	out := make([]VMInfo, 0, srv.NumVMs())
	srv.EachVM(func(v *cluster.VM) {
		out = append(out, VMInfo{ID: v.ID(), Priority: v.Priority(), AppID: v.AppID(), ServerID: serverID})
	})
	return out, nil
}

// EachVMOnServer is the non-copying VMsOnServer: it calls fn once per VM
// on the server, in placement order, without building a slice. Node
// managers poll placement every interval, so their hot path uses this.
func (m *Manager) EachVMOnServer(serverID string, fn func(VMInfo)) error {
	srv := m.cluster.FindServer(serverID)
	if srv == nil {
		return fmt.Errorf("cloud: no server %q", serverID)
	}
	srv.EachVM(func(v *cluster.VM) {
		fn(VMInfo{ID: v.ID(), Priority: v.Priority(), AppID: v.AppID(), ServerID: serverID})
	})
	return nil
}

// HighPriorityApps groups the high-priority VMs on a server by
// application id, sorted for deterministic iteration.
func (m *Manager) HighPriorityApps(serverID string) (map[string][]string, error) {
	infos, err := m.VMsOnServer(serverID)
	if err != nil {
		return nil, err
	}
	apps := make(map[string][]string)
	for _, in := range infos {
		if in.Priority == cluster.HighPriority && in.AppID != "" {
			apps[in.AppID] = append(apps[in.AppID], in.ID)
		}
	}
	for id := range apps {
		sort.Strings(apps[id])
	}
	return apps, nil
}

// LowPriorityVMs returns the ids of low-priority VMs on a server, sorted.
func (m *Manager) LowPriorityVMs(serverID string) ([]string, error) {
	infos, err := m.VMsOnServer(serverID)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, in := range infos {
		if in.Priority == cluster.LowPriority {
			out = append(out, in.ID)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Migrate live-migrates a VM to another server, preserving its identity
// (cgroup, caps, workload, framework references). The paper lists
// migration as the cloud manager's complement to node-level throttling
// when multiple high-priority apps collide (§III-D2, §IV-D2).
func (m *Manager) Migrate(vmID, toServerID string) error {
	if err := m.cluster.MoveVM(vmID, toServerID); err != nil {
		return fmt.Errorf("cloud: %w", err)
	}
	return nil
}

// RebalanceHighPriority handles a node manager's escalation: when two or
// more high-priority applications collide on one server and throttling
// low-priority VMs cannot help, move one VM of the smaller colocated app
// to the server currently hosting the fewest vcpus. It returns the id of
// the migrated VM ("" if nothing could be improved).
func (m *Manager) RebalanceHighPriority(serverID string) (string, error) {
	apps, err := m.HighPriorityApps(serverID)
	if err != nil {
		return "", err
	}
	if len(apps) < 2 {
		return "", nil
	}
	// Pick the app with the fewest VMs on this server (cheapest to move),
	// deterministically by name on ties.
	var pick string
	for id, vms := range apps {
		if pick == "" || len(vms) < len(apps[pick]) || (len(vms) == len(apps[pick]) && id < pick) {
			pick = id
		}
	}
	src := m.cluster.FindServer(serverID)
	var dst *cluster.Server
	bestLoad := -1.0
	for _, s := range m.cluster.Servers() {
		if s == src {
			continue
		}
		load := placedVCPUs(s)
		if dst == nil || load < bestLoad {
			dst, bestLoad = s, load
		}
	}
	if dst == nil {
		return "", nil
	}
	vmID := apps[pick][0]
	if err := m.Migrate(vmID, dst.ID()); err != nil {
		return "", err
	}
	return vmID, nil
}
