package cloud

import (
	"fmt"

	"perfcloud/internal/cluster"
)

// Topology sizes the zone→rack→server hierarchy the manager assigns
// servers into: consecutive provisioned servers fill a rack, consecutive
// racks fill a zone. The hierarchy carries incrementally-maintained
// placed-vCPU totals, so zone/rack load queries and zone-constrained
// placement never rescan VMs.
type Topology struct {
	ServersPerRack int // 0 = 40
	RacksPerZone   int // 0 = 8
}

// DefaultTopology returns the default hierarchy sizing: 40-server racks,
// 8-rack (320-server) zones.
func DefaultTopology() Topology { return Topology{ServersPerRack: 40, RacksPerZone: 8} }

func (t Topology) serversPerRack() int {
	if t.ServersPerRack <= 0 {
		return 40
	}
	return t.ServersPerRack
}

func (t Topology) racksPerZone() int {
	if t.RacksPerZone <= 0 {
		return 8
	}
	return t.RacksPerZone
}

// Zone is one availability zone: an ordered set of racks with a running
// placed-vCPU total.
type Zone struct {
	id     string
	placed float64
	racks  []*Rack
}

// ID returns the zone's identifier ("zone-<k>").
func (z *Zone) ID() string { return z.id }

// PlacedVCPUs returns the vCPUs currently placed across the zone.
func (z *Zone) PlacedVCPUs() float64 { return z.placed }

// Racks returns the zone's racks in creation order (a copy).
func (z *Zone) Racks() []*Rack { return append([]*Rack(nil), z.racks...) }

// NumServers returns the number of servers assigned to the zone.
// O(racks in the zone), cheap enough for per-sample telemetry.
func (z *Zone) NumServers() int {
	n := 0
	for _, r := range z.racks {
		n += len(r.servers)
	}
	return n
}

// Rack is one rack: an ordered set of servers with a running placed-vCPU
// total.
type Rack struct {
	id      string
	zone    *Zone
	placed  float64
	servers []*srvEntry
}

// ID returns the rack's identifier ("rack-<zone>-<k>").
func (r *Rack) ID() string { return r.id }

// Zone returns the zone containing the rack.
func (r *Rack) Zone() *Zone { return r.zone }

// PlacedVCPUs returns the vCPUs currently placed across the rack.
func (r *Rack) PlacedVCPUs() float64 { return r.placed }

// EachServer calls fn for every server in the rack in creation order.
func (r *Rack) EachServer(fn func(*cluster.Server)) {
	for _, e := range r.servers {
		fn(e.srv)
	}
}

// srvEntry is the manager's per-server index record: the incrementally
// maintained placed-vCPU total, the creation sequence used to break load
// ties exactly like the old linear scan did (first provisioned wins),
// the containing rack, and the entry's position in the load heap.
type srvEntry struct {
	srv     *cluster.Server
	seq     int
	placed  float64
	heapIdx int
	rack    *Rack
}

// entryLess orders entries by (placed vCPUs, creation sequence) — the
// strict total order under which the heap minimum reproduces the old
// "first server with strictly fewest placed vcpus" scan bit for bit.
func entryLess(a, b *srvEntry) bool {
	if a.placed != b.placed {
		return a.placed < b.placed
	}
	return a.seq < b.seq
}

// The load index is a hand-rolled indexed binary min-heap: each entry
// carries its own heap position, so a placed-vCPU change re-establishes
// heap order in O(log n) with heapFix instead of a rebuild, and Boot's
// least-loaded lookup is O(1) at the root.

func (m *Manager) heapSwap(i, j int) {
	m.heap[i], m.heap[j] = m.heap[j], m.heap[i]
	m.heap[i].heapIdx = i
	m.heap[j].heapIdx = j
}

func (m *Manager) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !entryLess(m.heap[i], m.heap[p]) {
			return
		}
		m.heapSwap(i, p)
		i = p
	}
}

func (m *Manager) siftDown(i int) {
	n := len(m.heap)
	for {
		small := i
		if l := 2*i + 1; l < n && entryLess(m.heap[l], m.heap[small]) {
			small = l
		}
		if r := 2*i + 2; r < n && entryLess(m.heap[r], m.heap[small]) {
			small = r
		}
		if small == i {
			return
		}
		m.heapSwap(i, small)
		i = small
	}
}

func (m *Manager) heapPush(e *srvEntry) {
	e.heapIdx = len(m.heap)
	m.heap = append(m.heap, e)
	m.siftUp(e.heapIdx)
}

// heapFix restores heap order after e.placed changed in either direction.
func (m *Manager) heapFix(e *srvEntry) {
	m.siftUp(e.heapIdx)
	m.siftDown(e.heapIdx)
}

// leastLoaded returns the globally least-loaded server's entry (heap
// root), or nil with no servers provisioned.
func (m *Manager) leastLoaded() *srvEntry {
	if len(m.heap) == 0 {
		return nil
	}
	return m.heap[0]
}

// leastLoadedExcluding returns the least-loaded entry whose server is
// not src. The second-smallest element of a binary min-heap is one of
// the root's children, so excluding the root costs two comparisons, not
// a scan.
func (m *Manager) leastLoadedExcluding(src *cluster.Server) *srvEntry {
	if len(m.heap) == 0 {
		return nil
	}
	if m.heap[0].srv != src {
		return m.heap[0]
	}
	if len(m.heap) == 1 {
		return nil
	}
	best := m.heap[1]
	if len(m.heap) > 2 && entryLess(m.heap[2], best) {
		best = m.heap[2]
	}
	return best
}

// leastLoadedInZone returns the least-loaded entry within the named
// zone, or nil if the zone is unknown or empty. O(zone size) — zone
// placement is a constrained query the global heap cannot answer.
func (m *Manager) leastLoadedInZone(zoneID string) *srvEntry {
	var best *srvEntry
	for _, z := range m.zones {
		if z.id != zoneID {
			continue
		}
		for _, r := range z.racks {
			for _, e := range r.servers {
				if best == nil || entryLess(e, best) {
					best = e
				}
			}
		}
	}
	return best
}

// indexServer adds a freshly provisioned (or re-discovered) server to
// the load index and the topology, folding any VMs already placed on it
// into the totals.
func (m *Manager) indexServer(s *cluster.Server) {
	e := &srvEntry{srv: s, seq: m.seq}
	m.seq++
	s.EachVM(func(v *cluster.VM) { e.placed += v.VCPUs() })
	m.assignRack(e)
	e.rack.placed += e.placed
	e.rack.zone.placed += e.placed
	m.entries[s.ID()] = e
	m.heapPush(e)
}

// assignRack slots an entry into the zone→rack grid by its creation
// sequence: rack seq/ServersPerRack, zone rack/RacksPerZone, creating
// levels on demand.
func (m *Manager) assignRack(e *srvEntry) {
	rackIdx := e.seq / m.topo.serversPerRack()
	zoneIdx := rackIdx / m.topo.racksPerZone()
	for len(m.zones) <= zoneIdx {
		m.zones = append(m.zones, &Zone{id: fmt.Sprintf("zone-%d", len(m.zones))})
	}
	z := m.zones[zoneIdx]
	local := rackIdx % m.topo.racksPerZone()
	for len(z.racks) <= local {
		z.racks = append(z.racks, &Rack{id: fmt.Sprintf("rack-%d-%d", zoneIdx, len(z.racks)), zone: z})
	}
	e.rack = z.racks[local]
	e.rack.servers = append(e.rack.servers, e)
}

// addPlaced applies a placed-vCPU delta to a server entry and its rack
// and zone totals, and re-establishes the heap order.
func (m *Manager) addPlaced(e *srvEntry, delta float64) {
	e.placed += delta
	e.rack.placed += delta
	e.rack.zone.placed += delta
	m.heapFix(e)
}

// rebuild re-derives the whole index — entries, heap, topology and
// totals — from the cluster's current state. Run at construction and
// whenever the cluster's placement sequence shows out-of-band mutations
// (tests adding VMs through cluster.AddVM directly); manager-mediated
// changes keep the index current incrementally and never pay this.
func (m *Manager) rebuild() {
	m.entries = make(map[string]*srvEntry, m.cluster.NumServers())
	m.heap = m.heap[:0]
	m.zones = nil
	m.seq = 0
	m.cluster.EachServer(func(s *cluster.Server) { m.indexServer(s) })
	m.syncedSeq = m.cluster.PlacementSeq()
}

// syncIndex revalidates the index against the cluster before any use.
func (m *Manager) syncIndex() {
	if m.entries == nil || m.syncedSeq != m.cluster.PlacementSeq() {
		m.rebuild()
	}
}

// SetTopology replaces the hierarchy sizing and re-assigns every server
// to its zone and rack. Call it before provisioning for the intended
// layout; calling later relabels existing servers in creation order.
func (m *Manager) SetTopology(t Topology) {
	m.topo = t
	m.rebuild()
}

// Topology returns the hierarchy sizing in effect.
func (m *Manager) Topology() Topology { return m.topo }

// Zones returns the zones in creation order (a copy).
func (m *Manager) Zones() []*Zone {
	m.syncIndex()
	return append([]*Zone(nil), m.zones...)
}

// EachZone calls fn for every zone in creation order without copying —
// the telemetry rollup key for the fleet's top level.
func (m *Manager) EachZone(fn func(*Zone)) {
	m.syncIndex()
	for _, z := range m.zones {
		fn(z)
	}
}

// ServerLocation returns the zone and rack ids hosting the given server.
func (m *Manager) ServerLocation(serverID string) (zone, rack string, ok bool) {
	m.syncIndex()
	e := m.entries[serverID]
	if e == nil {
		return "", "", false
	}
	return e.rack.zone.id, e.rack.id, true
}

// PlacedVCPUs returns the manager's incrementally maintained placed-vCPU
// total for a server.
func (m *Manager) PlacedVCPUs(serverID string) (float64, bool) {
	m.syncIndex()
	e := m.entries[serverID]
	if e == nil {
		return 0, false
	}
	return e.placed, true
}
