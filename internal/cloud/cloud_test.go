package cloud

import (
	"testing"
	"time"

	"perfcloud/internal/cluster"
	"perfcloud/internal/sim"
	"perfcloud/internal/workloads"
)

func setup(t *testing.T) (*sim.Engine, *Manager) {
	t.Helper()
	eng := sim.NewEngine(100*time.Millisecond, 1)
	c := cluster.New()
	eng.Register(c)
	return eng, NewManager(c, eng.RNG())
}

func TestProvisionServers(t *testing.T) {
	_, m := setup(t)
	srvs := m.ProvisionServers(3)
	if len(srvs) != 3 {
		t.Fatalf("provisioned %d", len(srvs))
	}
	if srvs[0].ID() != "server-0" || srvs[2].ID() != "server-2" {
		t.Errorf("names = %v, %v", srvs[0].ID(), srvs[2].ID())
	}
	more := m.ProvisionServers(1)
	if more[0].ID() != "server-3" {
		t.Errorf("continued naming = %v", more[0].ID())
	}
}

func TestBootExplicitAndSpreadPlacement(t *testing.T) {
	_, m := setup(t)
	m.ProvisionServers(2)
	v, err := m.Boot(VMSpec{Name: "a", ServerID: "server-1", Priority: cluster.HighPriority, AppID: "app"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Server().ID() != "server-1" {
		t.Errorf("placed on %v", v.Server().ID())
	}
	if v.VCPUs() != 2 || v.MemBytes() != 8<<30 {
		t.Errorf("defaults not applied: %v vcpus, %v mem", v.VCPUs(), v.MemBytes())
	}
	// Spread: next boot without ServerID goes to the emptier server-0.
	b, err := m.Boot(VMSpec{Name: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if b.Server().ID() != "server-0" {
		t.Errorf("spread placement chose %v, want server-0", b.Server().ID())
	}
	// And the one after balances again.
	c, _ := m.Boot(VMSpec{Name: "c"})
	d, _ := m.Boot(VMSpec{Name: "d"})
	if c.Server() == d.Server() {
		t.Errorf("c and d both on %v", c.Server().ID())
	}
}

func TestBootErrors(t *testing.T) {
	_, m := setup(t)
	if _, err := m.Boot(VMSpec{Name: "x"}); err == nil {
		t.Error("no servers: want error")
	}
	m.ProvisionServers(1)
	if _, err := m.Boot(VMSpec{}); err == nil {
		t.Error("empty name: want error")
	}
	if _, err := m.Boot(VMSpec{Name: "x", ServerID: "nope"}); err == nil {
		t.Error("bad server: want error")
	}
	if _, err := m.Boot(VMSpec{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Boot(VMSpec{Name: "x"}); err == nil {
		t.Error("duplicate name: want error")
	}
}

func TestVMsOnServerAndGrouping(t *testing.T) {
	_, m := setup(t)
	m.ProvisionServers(1)
	mustBoot(t, m, VMSpec{Name: "h1", ServerID: "server-0", Priority: cluster.HighPriority, AppID: "hadoop"})
	mustBoot(t, m, VMSpec{Name: "h0", ServerID: "server-0", Priority: cluster.HighPriority, AppID: "hadoop"})
	mustBoot(t, m, VMSpec{Name: "fio", ServerID: "server-0", Priority: cluster.LowPriority})
	mustBoot(t, m, VMSpec{Name: "solo", ServerID: "server-0", Priority: cluster.HighPriority})

	infos, err := m.VMsOnServer("server-0")
	if err != nil || len(infos) != 4 {
		t.Fatalf("infos = %v, %v", infos, err)
	}
	apps, err := m.HighPriorityApps("server-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 {
		t.Fatalf("apps = %v", apps)
	}
	got := apps["hadoop"]
	if len(got) != 2 || got[0] != "h0" || got[1] != "h1" {
		t.Errorf("hadoop VMs = %v (want sorted h0,h1)", got)
	}
	low, err := m.LowPriorityVMs("server-0")
	if err != nil || len(low) != 1 || low[0] != "fio" {
		t.Errorf("low = %v, %v", low, err)
	}
	if _, err := m.VMsOnServer("nope"); err == nil {
		t.Error("unknown server: want error")
	}
	if _, err := m.HighPriorityApps("nope"); err == nil {
		t.Error("unknown server: want error")
	}
	if _, err := m.LowPriorityVMs("nope"); err == nil {
		t.Error("unknown server: want error")
	}
}

func TestTerminate(t *testing.T) {
	_, m := setup(t)
	m.ProvisionServers(1)
	mustBoot(t, m, VMSpec{Name: "x"})
	m.Terminate("x")
	if m.Cluster().FindVM("x") != nil {
		t.Error("x should be gone")
	}
	m.Terminate("x") // idempotent
}

func TestMigratePreservesStateAndCaps(t *testing.T) {
	_, m := setup(t)
	m.ProvisionServers(2)
	v := mustBoot(t, m, VMSpec{Name: "x", ServerID: "server-0", Priority: cluster.LowPriority})
	w := workloads.NewFioRandRead(workloads.AlwaysOn)
	v.SetWorkload(w)
	v.Cgroup().SetReadIOPS(1234)

	if err := m.Migrate("x", "server-1"); err != nil {
		t.Fatal(err)
	}
	nv := m.Cluster().FindVM("x")
	if nv.Server().ID() != "server-1" {
		t.Errorf("on %v", nv.Server().ID())
	}
	if nv.Cgroup().Throttle().ReadIOPS != 1234 {
		t.Errorf("caps lost: %+v", nv.Cgroup().Throttle())
	}
	if nv.Workload() != w {
		t.Error("workload lost")
	}
	if nv.Priority() != cluster.LowPriority {
		t.Error("priority lost")
	}
	// Migrating to the same server is a no-op.
	if err := m.Migrate("x", "server-1"); err != nil {
		t.Fatal(err)
	}
	// Errors.
	if err := m.Migrate("nope", "server-0"); err == nil {
		t.Error("unknown VM: want error")
	}
	if err := m.Migrate("x", "nope"); err == nil {
		t.Error("unknown server: want error")
	}
}

func mustBoot(t *testing.T, m *Manager, spec VMSpec) *cluster.VM {
	t.Helper()
	v, err := m.Boot(spec)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
