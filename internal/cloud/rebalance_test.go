package cloud

import (
	"testing"

	"perfcloud/internal/cluster"
)

func TestRebalanceHighPriorityMovesSmallerApp(t *testing.T) {
	_, m := setup(t)
	m.ProvisionServers(3)
	// app-a: 3 VMs, app-b: 2 VMs — all packed on server-0.
	for i := 0; i < 3; i++ {
		mustBoot(t, m, VMSpec{Name: "a" + string(rune('0'+i)), ServerID: "server-0",
			Priority: cluster.HighPriority, AppID: "app-a"})
	}
	for i := 0; i < 2; i++ {
		mustBoot(t, m, VMSpec{Name: "b" + string(rune('0'+i)), ServerID: "server-0",
			Priority: cluster.HighPriority, AppID: "app-b"})
	}
	moved, err := m.RebalanceHighPriority("server-0")
	if err != nil {
		t.Fatal(err)
	}
	if moved == "" || moved[0] != 'b' {
		t.Errorf("moved %q, want a VM of the smaller app-b", moved)
	}
	vm := m.Cluster().FindVM(moved)
	if vm.Server().ID() == "server-0" {
		t.Error("VM not actually moved")
	}
}

func TestRebalanceNoopCases(t *testing.T) {
	_, m := setup(t)
	m.ProvisionServers(1)
	mustBoot(t, m, VMSpec{Name: "a0", ServerID: "server-0",
		Priority: cluster.HighPriority, AppID: "app-a"})
	// Single app: nothing to rebalance.
	if moved, err := m.RebalanceHighPriority("server-0"); err != nil || moved != "" {
		t.Errorf("single app: moved=%q err=%v", moved, err)
	}
	// Two apps but no other server to move to.
	mustBoot(t, m, VMSpec{Name: "b0", ServerID: "server-0",
		Priority: cluster.HighPriority, AppID: "app-b"})
	if moved, err := m.RebalanceHighPriority("server-0"); err != nil || moved != "" {
		t.Errorf("no destination: moved=%q err=%v", moved, err)
	}
	if _, err := m.RebalanceHighPriority("nope"); err == nil {
		t.Error("unknown server: want error")
	}
}

func TestProvisionServersWithAndDefaultOverride(t *testing.T) {
	_, m := setup(t)
	slow := cluster.DefaultServerConfig()
	slow.CPU.FreqHz = 1e9
	srvs := m.ProvisionServersWith(2, slow)
	if len(srvs) != 2 || srvs[0].CPUConfig().FreqHz != 1e9 {
		t.Errorf("custom config not applied: %+v", srvs[0].CPUConfig())
	}
	fast := cluster.DefaultServerConfig()
	fast.CPU.Cores = 96
	m.SetDefaultServerConfig(fast)
	srv := m.ProvisionServers(1)[0]
	if srv.CPUConfig().Cores != 96 {
		t.Errorf("default override not applied: %+v", srv.CPUConfig())
	}
}
