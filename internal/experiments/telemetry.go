package experiments

import (
	"strconv"

	"perfcloud/internal/cloud"
	"perfcloud/internal/cluster"
	"perfcloud/internal/obs"
)

// FleetTelemetry exports fleet-scale metrics and time series at the
// placement hierarchy's granularity — cluster totals, one series per
// tick shard and one per availability zone — never per server. On the
// 10k-server planet_scale fleet that is ~30 zones + ~160 shards of
// output instead of 10k server series, and a Sample costs
// O(zones + shards), matching the sharded tick's own per-tick budget
// (TestFleetMetricsBoundedByZonesPlusShards pins the output bound).
//
// Timestamps passed to Sample must be simulation seconds (the caller
// reads its Clock, which PR 6's striding keeps exact across elided
// ticks), so the series honour the stride-aware sampling contract.
type FleetTelemetry struct {
	clus *cluster.Cluster
	cm   *cloud.Manager
	reg  *obs.Registry
	sr   *obs.SeriesRegistry

	gActive *obs.Gauge
	gVMs    *obs.Gauge

	sActive *obs.Series
	sVMs    *obs.Series

	// Per-shard and per-zone instruments, created lazily on first
	// sight so late partition rebuilds (provisioning grows the fleet)
	// extend the sets without re-registering existing labels.
	shardGauges []*obs.Gauge
	shardSeries []*obs.Series

	zones         []*cloud.Zone
	zoneGauges    []*obs.Gauge
	zoneSrvGauges []*obs.Gauge
	zoneSeries    []*obs.Series

	// Engine self-profiling (wall-clock, never in sim outputs): the
	// sampling phase timer and the health layer the shard-imbalance
	// observation feeds. Both nil — a branch each — without SetHealth.
	health  *obs.Health
	tSample *obs.PhaseTimer
}

// NewFleetTelemetry wires fleet metrics over a cluster and its cloud
// manager. reg and sr may each be nil to disable that output (nil-safe
// instruments make every update a no-op).
func NewFleetTelemetry(clus *cluster.Cluster, cm *cloud.Manager, reg *obs.Registry, sr *obs.SeriesRegistry) *FleetTelemetry {
	ft := &FleetTelemetry{clus: clus, cm: cm, reg: reg, sr: sr}
	ft.gActive = reg.Gauge("perfcloud_fleet_active_servers", "servers currently in the active tick set")
	ft.gVMs = reg.Gauge("perfcloud_fleet_vms", "VMs hosted across the fleet")
	ft.sActive = sr.Series("fleet_active_servers")
	ft.sVMs = sr.Series("fleet_vms")
	ft.syncZones()
	ft.SetHealth(healthRef())
	return ft
}

// SetHealth attaches (or with nil detaches) the self-profiling layer:
// Sample gets a wall-clock phase timer and feeds the layer's shard
// load-imbalance observation. NewFleetTelemetry wires the process-wide
// layer (SetHealth global) automatically; daemons with their own layer
// call this explicitly.
func (ft *FleetTelemetry) SetHealth(h *obs.Health) {
	ft.health = h
	ft.tSample = h.Timer("experiments.telemetry")
}

// syncZones extends the per-zone instrument set to cover every zone the
// manager currently has. Zones only grow, in creation order, so known
// ones are skipped by index.
func (ft *FleetTelemetry) syncZones() {
	if ft.cm == nil {
		return
	}
	i := 0
	ft.cm.EachZone(func(z *cloud.Zone) {
		defer func() { i++ }()
		if i < len(ft.zones) {
			return
		}
		l := obs.Label{Key: "zone", Value: z.ID()}
		ft.zones = append(ft.zones, z)
		ft.zoneGauges = append(ft.zoneGauges, ft.reg.Gauge("perfcloud_zone_placed_vcpus", "vCPUs placed in the zone", l))
		ft.zoneSeries = append(ft.zoneSeries, ft.sr.Series("zone_placed_vcpus", l))
		g := ft.reg.Gauge("perfcloud_zone_servers", "servers assigned to the zone", l)
		g.Set(float64(z.NumServers()))
		ft.zoneSrvGauges = append(ft.zoneSrvGauges, g)
	})
}

// ensureShard grows the per-shard instrument set through index i.
func (ft *FleetTelemetry) ensureShard(i int) {
	for len(ft.shardGauges) <= i {
		l := obs.Label{Key: "shard", Value: strconv.Itoa(len(ft.shardGauges))}
		ft.shardGauges = append(ft.shardGauges, ft.reg.Gauge("perfcloud_shard_active_servers", "active servers in the tick shard", l))
		ft.shardSeries = append(ft.shardSeries, ft.sr.Series("shard_active_servers", l))
	}
}

// Sample reads the fleet state and updates every gauge and series with
// the given simulation timestamp. O(zones + shards); call it between
// ticks (it touches the same partition state FastPathStats does).
func (ft *FleetTelemetry) Sample(nowSec float64) {
	ts := ft.tSample.Begin()
	defer ft.tSample.End(ts)
	active := float64(ft.clus.ActiveServers())
	vms := float64(ft.clus.NumVMs())
	ft.gActive.Set(active)
	ft.gVMs.Set(vms)
	ft.sActive.Append(nowSec, active)
	ft.sVMs.Append(nowSec, vms)

	var shardMax, shardSum float64
	shards := 0
	ft.clus.EachShardStats(func(st cluster.ShardStats) {
		ft.ensureShard(st.Index)
		ft.shardGauges[st.Index].Set(float64(st.Active))
		ft.shardSeries[st.Index].Append(nowSec, float64(st.Active))
		shards++
		shardSum += float64(st.Active)
		if float64(st.Active) > shardMax {
			shardMax = float64(st.Active)
		}
	})
	if ft.health != nil && shards > 0 && shardSum > 0 {
		ft.health.ObserveShardImbalance(shardMax * float64(shards) / shardSum)
	}

	ft.syncZones()
	for i, z := range ft.zones {
		ft.zoneGauges[i].Set(z.PlacedVCPUs())
		ft.zoneSrvGauges[i].Set(float64(z.NumServers()))
		ft.zoneSeries[i].Append(nowSec, z.PlacedVCPUs())
	}
}

// Locator returns the rollup locate function for this fleet: server id →
// (tick shard, availability zone), the keys hierarchical event rollups
// (obs.NewRollupSink) aggregate under.
func (ft *FleetTelemetry) Locator() func(server string) (shard, zone string, ok bool) {
	return func(server string) (string, string, bool) {
		si := ft.clus.ShardOf(server)
		if si < 0 {
			return "", "", false
		}
		zone := ""
		if ft.cm != nil {
			zone, _, _ = ft.cm.ServerLocation(server)
		}
		return strconv.Itoa(si), zone, true
	}
}

// FleetTelemetry wires fleet-scale telemetry over the testbed's cluster
// and cloud manager.
func (tb *Testbed) FleetTelemetry(reg *obs.Registry, sr *obs.SeriesRegistry) *FleetTelemetry {
	return NewFleetTelemetry(tb.Clus, tb.CM, reg, sr)
}
