package experiments

import (
	"reflect"
	"testing"
	"time"

	"perfcloud/internal/obs"
)

// alertTestRules is the default pack; the signal rules alone are enough
// to exercise the engine inside experiment runs.
func alertTestRules() []obs.Rule {
	return obs.DefaultRules(obs.DefaultRulesConfig{})
}

// TestAlertsDoNotChangeResults is the pure-observer invariant for the
// alert layer: the same seeded mix with rules off and on must produce
// bit-identical JCTs, efficiency, phase totals and scorecards — the
// engine only reads the audit stream, it never feeds back into the
// simulation. Covers both Fig 11 and Fig 12.
func TestAlertsDoNotChangeResults(t *testing.T) {
	cfg := scoreTestMix()
	schemes := []Scheme{SchemeLATE(), SchemePerfCloud()}
	off11 := Fig11With(cfg, schemes)

	vcfg := VariabilityConfig{
		Seed: 3, Servers: 2, WorkersPerServer: 4,
		Runs: 2, Fio: 1, Streams: 1, Tasks: 8, Limit: time.Hour,
	}
	off12 := Fig12With(vcfg, schemes)

	prev := SetAlertRules(alertTestRules())
	defer SetAlertRules(prev)
	on11 := Fig11With(cfg, schemes)
	on12 := Fig12With(vcfg, schemes)

	// Strip the alert summaries; everything else must match exactly.
	stripped11 := on11
	stripped11.Rows = append([]Fig11Row(nil), on11.Rows...)
	for i := range stripped11.Rows {
		stripped11.Rows[i].Alerts = nil
	}
	if !reflect.DeepEqual(off11, stripped11) {
		t.Fatalf("alert rules changed Fig11 results:\noff: %+v\non:  %+v", off11, stripped11)
	}
	stripped12 := on12
	stripped12.Rows = append([]Fig12Row(nil), on12.Rows...)
	for i := range stripped12.Rows {
		stripped12.Rows[i].Alerts = nil
	}
	if !reflect.DeepEqual(off12, stripped12) {
		t.Fatalf("alert rules changed Fig12 results:\noff: %+v\non:  %+v", off12, stripped12)
	}

	// And the "on" runs actually evaluated rules for the PerfCloud rows
	// (LATE has no control plane, so no engine and a nil summary).
	if on11.Row("PerfCloud").Alerts == nil {
		t.Fatal("Fig11 PerfCloud row has no alert summary with rules on")
	}
	if on11.Row("LATE").Alerts != nil {
		t.Fatal("Fig11 LATE row has an alert summary without a control plane")
	}
	found := false
	for _, row := range on12.Rows {
		if row.Scheme == "PerfCloud" {
			if row.Alerts == nil {
				t.Fatalf("Fig12 row %s/%s has no alert summary", row.Workload, row.Scheme)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no PerfCloud rows in Fig12 result")
	}
}

// TestAlertsDeterministic: same seed, same rules ⇒ identical summaries,
// including the rendered table the CLI emits.
func TestAlertsDeterministic(t *testing.T) {
	prev := SetAlertRules(alertTestRules())
	defer SetAlertRules(prev)
	cfg := scoreTestMix()
	schemes := []Scheme{SchemePerfCloud()}
	a := Fig11With(cfg, schemes)
	b := Fig11With(cfg, schemes)
	sa, sb := a.Row("PerfCloud").Alerts, b.Row("PerfCloud").Alerts
	if sa == nil || sb == nil {
		t.Fatal("missing alert summaries")
	}
	if !reflect.DeepEqual(*sa, *sb) {
		t.Fatalf("alert summaries differ across same-seed runs:\n%+v\nvs\n%+v", *sa, *sb)
	}
	if sa.String() != sb.String() {
		t.Fatalf("rendered summaries differ:\n%s\nvs\n%s", sa, sb)
	}
	if at, bt := a.AlertTable().String(), b.AlertTable().String(); at != bt {
		t.Fatalf("alert tables differ:\n%s\nvs\n%s", at, bt)
	}
}

// TestHealthLayerIsInert: attaching the health layer must not perturb
// experiment results either — its timers and gauges are wall-clock
// observations that never feed back into the simulation.
func TestHealthLayerIsInert(t *testing.T) {
	cfg := scoreTestMix()
	schemes := []Scheme{SchemePerfCloud()}
	off := Fig11With(cfg, schemes)

	h := obs.NewHealth(obs.NewRegistry())
	SetHealth(h)
	defer SetHealth(nil)
	on := Fig11With(cfg, schemes)

	if !reflect.DeepEqual(off, on) {
		t.Fatalf("health layer changed experiment results:\noff: %+v\non:  %+v", off, on)
	}
	// The layer did observe the run: the cluster timers got calls.
	snap := h.Snapshot()
	phases := map[string]obs.PhaseStats{}
	for _, p := range snap.Phases {
		phases[p.Phase] = p
	}
	if p := phases["cluster.grant"]; p.Calls == 0 {
		t.Errorf("cluster.grant timer never called (snapshot %+v)", snap.Phases)
	}
	if p := phases["core.monitor"]; p.Calls == 0 {
		t.Errorf("core.monitor timer never called (snapshot %+v)", snap.Phases)
	}
}
