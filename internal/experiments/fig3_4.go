package experiments

import (
	"time"

	"perfcloud/internal/core"
	"perfcloud/internal/sim"
	"perfcloud/internal/stats"
	"perfcloud/internal/trace"
	"perfcloud/internal/workloads"
)

// DeviationTimeline is one run's detection-signal history.
type DeviationTimeline struct {
	Label  string
	Iowait *stats.TimeSeries // std-dev of block-iowait ratio per interval
	CPI    *stats.TimeSeries // std-dev of CPI per interval
}

// PeakIowait returns the peak of the iowait-deviation series.
func (d DeviationTimeline) PeakIowait() float64 { return d.Iowait.Max() }

// PeakCPI returns the peak of the CPI-deviation series.
func (d DeviationTimeline) PeakCPI() float64 { return d.CPI.Max() }

// deviationRun executes one benchmark back-to-back for the duration on
// an instrumented (observe-only) testbed with the given antagonists, and
// returns the recorded deviation series.
func deviationRun(seed int64, b Bench, d time.Duration, label string, antagonists func(tb *Testbed)) DeviationTimeline {
	cfg := TestbedConfig{Seed: seed, PerfCloud: ObserverConfig()}
	tb := smallTestbed(seed, &cfg)
	if antagonists != nil {
		antagonists(tb)
	}
	runBackToBack(tb, b, d)

	nm := tb.Sys.Managers()[0]
	out := DeviationTimeline{Label: label, Iowait: stats.NewTimeSeries(), CPI: stats.NewTimeSeries()}
	for _, e := range nm.Trace() {
		out.Iowait.Append(e.TimeSec, e.IowaitDev)
		out.CPI.Append(e.TimeSec, e.CPIDev)
	}
	return out
}

// runBackToBack keeps the benchmark running in a loop for the duration.
func runBackToBack(tb *Testbed, b Bench, d time.Duration) {
	ticks := int64(d / tb.Eng.Clock().TickSize())
	var done func() bool
	submit := func() {
		if b.Spark {
			a, err := tb.Driver.Submit(sparkConfig(b.Name), tb.Eng.Clock().Seconds())
			if err != nil {
				panic(err)
			}
			done = a.Done
		} else {
			j, err := tb.JT.Submit(mrConfig(b.Name), tb.Eng.Clock().Seconds())
			if err != nil {
				panic(err)
			}
			done = j.Done
		}
	}
	submit()
	st := tb.Stepper()
	for i := int64(0); i < ticks; {
		remaining := ticks - i
		i += st.Step(func(*sim.Clock) int64 {
			// Never stride past a completion: the resubmission must happen
			// at the same tick (and timestamp) per-tick stepping would use.
			if done() {
				return 0
			}
			return remaining - 1
		})
		if done() {
			submit()
		}
	}
}

// Fig3Result reproduces Figure 3: the standard deviation of the block
// iowait ratio across the Hadoop VMs over time, running alone versus
// colocated with fio. The paper reports the peak rising by ~8.2x and
// staying under the threshold of 10 when alone.
type Fig3Result struct {
	Bench     string
	Alone     DeviationTimeline
	WithFio   DeviationTimeline
	Threshold float64
}

// Fig3 runs the terasort case study from §III-A1.
func Fig3(seed int64) Fig3Result { return fig3For(seed, Bench{Name: "terasort"}) }

func fig3For(seed int64, b Bench) Fig3Result {
	const d = 2 * time.Minute
	return Fig3Result{
		Bench:     b.Name,
		Threshold: core.DefaultThresholds().Iowait,
		Alone:     deviationRun(seed, b, d, "alone", nil),
		WithFio: deviationRun(seed, b, d, "with fio", func(tb *Testbed) {
			tb.AddAntagonist(0, workloads.NewFioRandRead(
				workloads.BurstPattern{On: 20 * time.Second, Off: 10 * time.Second}))
		}),
	}
}

// PeakRatio returns peak(with fio) / peak(alone).
func (r Fig3Result) PeakRatio() float64 {
	a := r.Alone.PeakIowait()
	if a == 0 {
		return 0
	}
	return r.WithFio.PeakIowait() / a
}

// Table renders the Figure 3 summary (the series are available for
// plotting through the timelines).
func (r Fig3Result) Table() *trace.Table {
	t := trace.New("Fig 3: std-dev of block-iowait ratio across Hadoop VMs ("+r.Bench+")",
		"run", "peak dev (ms/op)", "above threshold?", "series")
	t.Addf(r.Alone.Label, r.Alone.PeakIowait(), r.Alone.PeakIowait() > r.Threshold, r.Alone.Iowait.Sparkline(40))
	t.Addf(r.WithFio.Label, r.WithFio.PeakIowait(), r.WithFio.PeakIowait() > r.Threshold, r.WithFio.Iowait.Sparkline(40))
	t.Addf("peak ratio", r.PeakRatio(), "", "")
	return t
}

// Fig4Row is one benchmark's peak CPI deviation alone vs with STREAM.
type Fig4Row struct {
	Bench      string
	PeakAlone  float64
	PeakStream float64
}

// Fig4Result reproduces Figure 4: peak CPI deviation stays under 1 when
// benchmarks run alone and exceeds it under a colocated STREAM.
type Fig4Result struct {
	Rows      []Fig4Row
	Threshold float64
}

// Fig4 measures all six benchmarks.
func Fig4(seed int64) Fig4Result { return fig4For(seed, Benches()) }

func fig4For(seed int64, benches []Bench) Fig4Result {
	const d = 2 * time.Minute
	res := Fig4Result{Threshold: core.DefaultThresholds().CPI}
	for _, b := range benches {
		alone := deviationRun(seed, b, d, "alone", nil)
		contended := deviationRun(seed, b, d, "with stream", func(tb *Testbed) {
			pat := workloads.BurstPattern{On: 25 * time.Second, Off: 10 * time.Second}
			tb.AddAntagonist(0, workloads.NewStream(pat))
			tb.AddAntagonist(0, workloads.NewStream(pat))
		})
		res.Rows = append(res.Rows, Fig4Row{
			Bench:      b.Name,
			PeakAlone:  alone.PeakCPI(),
			PeakStream: contended.PeakCPI(),
		})
	}
	return res
}

// Table renders the Figure 4 result.
func (r Fig4Result) Table() *trace.Table {
	t := trace.New("Fig 4: peak std-dev of CPI across Hadoop VMs (threshold 1)",
		"benchmark", "alone", "with STREAM")
	for _, row := range r.Rows {
		t.Addf(row.Bench, row.PeakAlone, row.PeakStream)
	}
	return t
}
