package experiments

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"perfcloud/internal/cluster"
	"perfcloud/internal/core"
	"perfcloud/internal/mapreduce"
	"perfcloud/internal/obs"
	"perfcloud/internal/sim"
	"perfcloud/internal/trace"
	"perfcloud/internal/workloads"
)

// setStride forces event-driven stepping on or off for the duration of a
// test.
func setStride(t *testing.T, enabled bool) {
	t.Helper()
	prev := cluster.SetDefaultStride(enabled)
	t.Cleanup(func() { cluster.SetDefaultStride(prev) })
}

// TestStrideMatchesPerTick is the determinism contract of event-driven
// time advancement (DESIGN.md §5.6): eliding runs of provably event-free
// ticks must produce results bit-for-bit identical to stepping the engine
// every tick. The scenarios cover both frameworks, antagonists, Dolly
// cloning and the PerfCloud control loop — so strides cross demand-epoch
// changes (task waves starting and draining), throttle flips (the
// controller capping and restoring antagonists) and monitor intervals.
func TestStrideMatchesPerTick(t *testing.T) {
	const s = seed

	smallVariability := VariabilityConfig{
		Seed:             s,
		Servers:          3,
		WorkersPerServer: 6,
		Runs:             3,
		Fio:              2,
		Streams:          2,
		Tasks:            18,
		Limit:            time.Hour,
	}
	mix := smallMix()
	mix.NumMR, mix.NumSpark = 4, 4

	cases := []struct {
		name string
		run  func() any
	}{
		{"Fig3", func() any { return Fig3(s) }},
		{"Fig11", func() any { return Fig11With(mix, []Scheme{SchemeLATE(), SchemeDolly(2), SchemePerfCloud()}) }},
		{"Fig12", func() any { return Fig12With(smallVariability, []Scheme{SchemeLATE(), SchemePerfCloud()}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			setStride(t, false)
			perTick := tc.run()

			setStride(t, true)
			strided := tc.run()

			if !reflect.DeepEqual(perTick, strided) {
				t.Errorf("strided result differs from per-tick reference:\nper-tick: %+v\nstride:   %+v", perTick, strided)
			}
		})
	}
}

// TestStrideTracingByteIdentical extends the PR 5 tracing invariant to
// stride mode: a traced run with event-driven stepping must emit Perfetto
// JSON byte-identical to the per-tick run — every span boundary, phase
// attribution and control-plane instant lands on the same timestamps.
func TestStrideTracingByteIdentical(t *testing.T) {
	run := func() []byte {
		pc := ControllerConfig()
		col := obs.NewCollector()
		pc.Events = col
		tr := trace.NewTracer()
		tb := NewTestbed(TestbedConfig{
			Seed:      7,
			Servers:   1,
			PerfCloud: pc,
			Tracer:    tr,
		})
		tb.MustInput("input", 512<<20)
		tb.AddAntagonist(0, workloads.NewFioRandRead(workloads.AlwaysOn))
		tb.RunMR(mapreduce.Terasort("input", 4), 30*time.Minute)
		var b bytes.Buffer
		if err := tr.WritePerfetto(&b, col.Events()); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}

	setStride(t, false)
	perTick := run()
	setStride(t, true)
	strided := run()
	if !bytes.Equal(perTick, strided) {
		t.Error("strided run produced different trace bytes than the per-tick reference")
	}
}

// TestStrideAcrossThrottleFlip pins the throttle event source: a static
// cap applied (and later lifted) between strides must yield bit-identical
// job completion under both stepping modes — the cgroup's throttle
// sequence bump forces the elided ticks' pipeline to rebuild exactly as
// per-tick stepping would.
func TestStrideAcrossThrottleFlip(t *testing.T) {
	run := func() (float64, float64) {
		tb := NewTestbed(TestbedConfig{Seed: 11, Servers: 1})
		tb.MustInput("input", 2<<30)
		tb.AddAntagonist(0, workloads.NewFioRandRead(workloads.AlwaysOn))
		j, err := tb.JT.Submit(mapreduce.Terasort("input", 8), 0)
		if err != nil {
			t.Fatal(err)
		}
		st := tb.Stepper()
		// Let contention build, then cap the antagonist; lift the cap
		// later. The job runs ~42 s uncapped, so both flips land mid-run
		// and strides must rebuild against the new caps on either side.
		capAt, liftAt := 10.0, 20.0
		clk := tb.Eng.Clock()
		// The bounds fold the completion predicate exactly as RunUntil
		// does, so neither mode's clock overshoots the job's last tick.
		until := func(targetSec float64) func(*sim.Clock) int64 {
			return func(c *sim.Clock) int64 {
				if j.Done() {
					return 0
				}
				return c.TicksBefore(targetSec, 1<<40)
			}
		}
		for clk.Seconds() < capAt && !j.Done() {
			st.Step(until(capAt))
		}
		if j.Done() {
			t.Fatal("job finished before the cap flip — scenario no longer exercises a mid-run throttle change")
		}
		tb.CapAntagonistIOPS("fio-randread", 0.2, FioSoloIOPS)
		for clk.Seconds() < liftAt && !j.Done() {
			st.Step(until(liftAt))
		}
		if j.Done() {
			t.Fatal("job finished before the cap lift — scenario no longer exercises a mid-run throttle change")
		}
		vm := tb.Clus.FindVM("fio-randread")
		vm.Cgroup().SetReadIOPS(0)
		vm.Server().MarkDirty()
		if !st.RunUntil(j.Done, time.Hour) {
			t.Fatal("job did not finish")
		}
		return j.JCT(), vm.Cgroup().Snapshot().Blkio.IoServiced
	}

	setStride(t, false)
	refJCT, refOps := run()
	setStride(t, true)
	strJCT, strOps := run()
	if refJCT != strJCT {
		t.Errorf("JCT differs across stepping modes: per-tick %v, stride %v", refJCT, strJCT)
	}
	if refOps != strOps {
		t.Errorf("antagonist ops differ across stepping modes: per-tick %v, stride %v", refOps, strOps)
	}
}

// TestStrideBoundRespectsMonitorInterval pins the control-interval event
// source: System.StrideBound must cap a stride so the tick carrying the
// next node-manager sample executes in the engine, never inside a stride.
func TestStrideBoundRespectsMonitorInterval(t *testing.T) {
	pc := ControllerConfig()
	tb := NewTestbed(TestbedConfig{Seed: 5, Servers: 2, PerfCloud: pc})
	if tb.Sys == nil {
		t.Fatal("testbed has no control plane")
	}
	clk := tb.Eng.Clock()
	for i := 0; i < 40; i++ {
		tb.Eng.Step()
		b := tb.Sys.StrideBound(clk, 1<<40)
		next := tb.Sys.Manager("server-0").NextSampleSec()
		if n2 := tb.Sys.Manager("server-1").NextSampleSec(); n2 < next {
			next = n2
		}
		if clk.PeekSeconds(b) < next {
			t.Fatalf("tick %d: bound %d stops before the sample tick (%.2f < %.2f)", clk.Tick(), b, clk.PeekSeconds(b), next)
		}
		if b > 0 && !(clk.PeekSeconds(b-1) < next) {
			t.Fatalf("tick %d: bound %d would elide the sample tick at %.2f", clk.Tick(), b, next)
		}
	}
}

// TestStrideBoundCacheMatchesDirect pins the bound's O(1) cache: across
// ticks that cross several control intervals, the cached StrideBound
// must equal the uncached per-manager minimum it replaced, at every max.
func TestStrideBoundCacheMatchesDirect(t *testing.T) {
	pc := ControllerConfig()
	tb := NewTestbed(TestbedConfig{Seed: 9, Servers: 3, PerfCloud: pc})
	clk := tb.Eng.Clock()
	for i := 0; i < 60; i++ {
		tb.Eng.Step()
		for _, max := range []int64{1, 3, 10, 1 << 40} {
			want := max
			tb.Sys.EachManager(func(nm *core.NodeManager) {
				if b := clk.TicksBefore(nm.NextSampleSec(), want); b < want {
					want = b
				}
			})
			if got := tb.Sys.StrideBound(clk, max); got != want {
				t.Fatalf("tick %d max %d: cached bound %d, direct %d", clk.Tick(), max, got, want)
			}
		}
	}
}
