package experiments

import (
	"fmt"
	"time"

	"perfcloud/internal/core"
	"perfcloud/internal/mapreduce"
	"perfcloud/internal/obs"
	"perfcloud/internal/spark"
	"perfcloud/internal/stats"
	"perfcloud/internal/straggler"
	"perfcloud/internal/trace"
)

// VariabilityConfig sizes the Figure 12 experiment: a 50-task terasort
// and a 50-task-per-stage Spark logistic regression, repeated with
// randomly placed antagonists, per scheme.
type VariabilityConfig struct {
	Seed             int64
	Servers          int
	WorkersPerServer int
	Runs             int
	Fio              int
	Streams          int
	Tasks            int
	Limit            time.Duration
}

// DefaultVariabilityConfig mirrors the paper: 15 servers, 30 repetitions.
func DefaultVariabilityConfig() VariabilityConfig {
	return VariabilityConfig{
		Seed:             1,
		Servers:          15,
		WorkersPerServer: 10,
		Runs:             30,
		Fio:              8,
		Streams:          8,
		Tasks:            50,
		Limit:            time.Hour,
	}
}

// Fig12Row is one (workload, scheme) distribution of normalized JCTs.
type Fig12Row struct {
	Workload string
	Scheme   string
	Summary  stats.Summary // of JCT normalized by the interference-free JCT
	// Phases sums per-attempt phase attribution across the row's
	// repetitions; zero unless a trace directory is set (SetTraceDir).
	Phases trace.PhaseTotals
	// Score merges the repetitions' detection scorecards; nil unless
	// scorecards are enabled (SetScorecards).
	Score *obs.Scorecard
	// Alerts merges the repetitions' alert summaries; nil unless rules
	// are installed (SetAlertRules) and the scheme deploys PerfCloud.
	Alerts *obs.AlertSummary
}

// Fig12Result reproduces Figure 12: JCT variability across repeated runs
// with random antagonist placement, per scheme.
type Fig12Result struct {
	Rows []Fig12Row
}

// Fig12 runs the paper-size experiment for LATE, Dolly-4 and PerfCloud.
func Fig12(seed int64) Fig12Result {
	cfg := DefaultVariabilityConfig()
	cfg.Seed = seed
	return Fig12With(cfg, []Scheme{SchemeLATE(), SchemeDolly(2), SchemePerfCloud()})
}

// Fig12With runs a custom size and scheme list. Every repetition is an
// independent engine with its own seed, so the (workload, scheme, run)
// grid — plus the per-workload interference-free baselines — is fanned
// out across goroutines (bounded by MaxParallelRuns); each repetition
// writes only its own slot, and rows are assembled afterwards in the same
// deterministic order as the sequential loop.
func Fig12With(cfg VariabilityConfig, schemes []Scheme) Fig12Result {
	workloads := []string{"terasort", "spark-logreg"}
	type job struct{ wi, si, run int } // si < 0 marks the baseline run
	var jobs []job
	base := make([]float64, len(workloads))
	jcts := make([][][]float64, len(workloads))
	phases := make([][][]trace.PhaseTotals, len(workloads))
	scores := make([][][]*obs.Scorecard, len(workloads))
	alerts := make([][][]*obs.AlertSummary, len(workloads))
	for wi := range workloads {
		jobs = append(jobs, job{wi: wi, si: -1})
		jcts[wi] = make([][]float64, len(schemes))
		phases[wi] = make([][]trace.PhaseTotals, len(schemes))
		scores[wi] = make([][]*obs.Scorecard, len(schemes))
		alerts[wi] = make([][]*obs.AlertSummary, len(schemes))
		for si := range schemes {
			jcts[wi][si] = make([]float64, cfg.Runs)
			phases[wi][si] = make([]trace.PhaseTotals, cfg.Runs)
			scores[wi][si] = make([]*obs.Scorecard, cfg.Runs)
			alerts[wi][si] = make([]*obs.AlertSummary, cfg.Runs)
			for run := 0; run < cfg.Runs; run++ {
				jobs = append(jobs, job{wi: wi, si: si, run: run})
			}
		}
	}
	forEachRun(len(jobs), func(k int) {
		j := jobs[k]
		if j.si < 0 {
			base[j.wi], _, _, _ = fig12Run(cfg, cfg.Seed, workloads[j.wi], SchemeDefault(), false,
				fmt.Sprintf("fig12-%s-baseline", workloads[j.wi]))
			return
		}
		jcts[j.wi][j.si][j.run], phases[j.wi][j.si][j.run], scores[j.wi][j.si][j.run], alerts[j.wi][j.si][j.run] = fig12Run(
			cfg, cfg.Seed+int64(j.run)*997, workloads[j.wi], schemes[j.si], true,
			fmt.Sprintf("fig12-%s-%s-run%02d", workloads[j.wi], schemes[j.si].Name, j.run))
	})
	var res Fig12Result
	for wi, workload := range workloads {
		for si, sch := range schemes {
			var norm []float64
			var pt trace.PhaseTotals
			var merged *obs.Scorecard
			var mergedAlerts *obs.AlertSummary
			for run, jct := range jcts[wi][si] {
				norm = append(norm, jct/base[wi])
				pt.Add(phases[wi][si][run])
				if sc := scores[wi][si][run]; sc != nil {
					if merged == nil {
						cp := *sc
						merged = &cp
					} else {
						merged.Merge(*sc)
					}
				}
				if as := alerts[wi][si][run]; as != nil {
					if mergedAlerts == nil {
						cp := *as
						mergedAlerts = &cp
					} else {
						mergedAlerts.Merge(*as)
					}
				}
			}
			summary := stats.Summarize(norm)
			if merged != nil {
				merged.Scheme = workload + "/" + sch.Name
				// The mean normalized JCT is Σ(jct/base)/runs, so its
				// reciprocal is the row's aggregate JCT recovery.
				if summary.Mean > 0 {
					merged.JCTRecovery = 1 / summary.Mean
				}
			}
			res.Rows = append(res.Rows, Fig12Row{
				Workload: workload,
				Scheme:   sch.Name,
				Summary:  summary,
				Phases:   pt,
				Score:    merged,
				Alerts:   mergedAlerts,
			})
		}
	}
	return res
}

// fig12Run executes one repetition, returning the logical JCT, the
// repetition's phase totals (zero when tracing is off), its detection
// scorecard (nil when scorecards are off) and its alert summary (nil
// when no rules are installed).
func fig12Run(cfg VariabilityConfig, seed int64, workload string, sch Scheme, antagonists bool, traceName string) (float64, trace.PhaseTotals, *obs.Scorecard, *obs.AlertSummary) {
	var pc *core.Config
	if sch.PerfCloud {
		pc = ControllerConfig()
	}
	tr := newRunTracer()
	scoring := scorecardsOn()
	rules := alertRules()
	var col *obs.Collector
	if pc != nil && (tr != nil || scoring || len(rules) > 0) {
		col = obs.NewCollector()
		pc.Events = col
	}
	var eng *obs.AlertEngine
	if pc != nil && len(rules) > 0 {
		eng = obs.NewAlertEngine(rules, col)
		pc.Alerts = eng
	}
	tb := NewTestbed(TestbedConfig{
		Seed:             seed,
		Servers:          cfg.Servers,
		WorkersPerServer: cfg.WorkersPerServer,
		Speculator:       sch.Speculator,
		PerfCloud:        pc,
		BlockBytes:       mixBlockBytes,
		Tracer:           tr,
	})
	eng.SetGroundTruth(tb.Truth)
	inputBytes := float64(cfg.Tasks) * mixBlockBytes
	tb.MustInput("input", inputBytes)
	if antagonists {
		placeAntagonists(tb, LargeScaleConfig{
			Seed: seed, Servers: cfg.Servers, Fio: cfg.Fio, Streams: cfg.Streams,
		})
	}

	submit := func() straggler.Clone {
		now := tb.Eng.Clock().Seconds()
		if workload == "terasort" {
			j, err := tb.JT.Submit(mapreduce.Terasort("input", cfg.Tasks/5), now)
			if err != nil {
				panic(err)
			}
			return j
		}
		a, err := tb.Driver.Submit(spark.LogisticRegression(cfg.Tasks, 3, inputBytes), now)
		if err != nil {
			panic(err)
		}
		return a
	}
	finish := func(jct float64) (float64, trace.PhaseTotals, *obs.Scorecard, *obs.AlertSummary) {
		var pt trace.PhaseTotals
		if tr != nil {
			pt = tr.Totals()
			var events []obs.Event
			if col != nil {
				events = col.Events()
			}
			writeRunTrace(traceName, tr, events)
		}
		var sc *obs.Scorecard
		if scoring && antagonists {
			sc = scoreRun(tb, col, sch.Name, tb.Eng.Clock().Seconds())
		}
		return jct, pt, sc, alertSummaryFor(eng)
	}
	if sch.Clones <= 1 {
		c := submit()
		if !tb.Stepper().RunUntil(c.Done, cfg.Limit) {
			panic(fmt.Sprintf("experiments: fig12 %s/%s stuck", workload, sch.Name))
		}
		return finish(c.JCT())
	}
	clones := make([]straggler.Clone, 0, sch.Clones)
	for i := 0; i < sch.Clones; i++ {
		clones = append(clones, submit())
	}
	g := tb.Dolly.Watch(workload, clones...)
	if !tb.Stepper().RunUntil(g.Done, cfg.Limit) {
		panic(fmt.Sprintf("experiments: fig12 %s/%s clone race stuck", workload, sch.Name))
	}
	return finish(g.JCT())
}

// Table renders the Figure 12 box-plot statistics.
func (r Fig12Result) Table() *trace.Table {
	t := trace.New("Fig 12: normalized JCT variability over repeated runs with random antagonist placement",
		"workload", "scheme", "median", "Q1", "Q3", "IQR", "min", "max")
	for _, row := range r.Rows {
		s := row.Summary
		t.Addf(row.Workload, row.Scheme, s.Median, s.Q1, s.Q3, s.IQR(), s.Min, s.Max)
	}
	return t
}

// ScorecardTable renders the merged per-row detection scorecards (empty
// unless the run had SetScorecards enabled).
func (r Fig12Result) ScorecardTable() *trace.Table {
	var cards []*obs.Scorecard
	for _, row := range r.Rows {
		cards = append(cards, row.Score)
	}
	return scorecardTable("Fig 12 scorecards: cap decisions vs ground truth (merged over repetitions)", cards)
}

// AlertTable renders the merged per-row alert summaries (empty unless
// the run had rules installed via SetAlertRules).
func (r Fig12Result) AlertTable() *trace.Table {
	var schemes []string
	var sums []*obs.AlertSummary
	for _, row := range r.Rows {
		schemes = append(schemes, row.Workload+"/"+row.Scheme)
		sums = append(sums, row.Alerts)
	}
	return alertTable("Fig 12 alerts: rule firings per scheme (merged over repetitions)", schemes, sums)
}

// Row returns the named (workload, scheme) row.
func (r Fig12Result) Row(workload, scheme string) Fig12Row {
	for _, row := range r.Rows {
		if row.Workload == workload && row.Scheme == scheme {
			return row
		}
	}
	return Fig12Row{}
}
