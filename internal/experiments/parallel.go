package experiments

import (
	"sync/atomic"

	"perfcloud/internal/sim"
)

// maxParallelRuns caps how many independent experiment repetitions (each
// with its own engine, testbed and seed) run concurrently. 0 selects
// GOMAXPROCS; 1 forces the sequential mode determinism tests compare
// against.
var maxParallelRuns atomic.Int64

// SetMaxParallelRuns sets the package-wide concurrency cap for repeated
// experiment runs and returns the previous value, so tests can restore it
// with defer. n <= 0 resets to automatic (GOMAXPROCS).
func SetMaxParallelRuns(n int) int {
	if n < 0 {
		n = 0
	}
	return int(maxParallelRuns.Swap(int64(n)))
}

// MaxParallelRuns reports the current setting (0 = automatic).
func MaxParallelRuns() int { return int(maxParallelRuns.Load()) }

// forEachRun executes fn(i) for i in [0, n), fanning independent
// repetitions out across at most MaxParallelRuns goroutines. Each engine
// is self-contained (own RNG streams, own cluster), so results written to
// index-owned slots are bit-for-bit identical to a sequential loop.
// Workers come from the process-wide shared slot pool, so repetition
// fan-out composes with each cluster's per-tick fan-out without
// oversubscribing GOMAXPROCS.
func forEachRun(n int, fn func(i int)) {
	sim.ForEachShared(n, sim.Workers(MaxParallelRuns()), fn)
}
