package experiments

import (
	"sort"
	"time"

	"perfcloud/internal/core"
	"perfcloud/internal/stats"
	"perfcloud/internal/trace"
	"perfcloud/internal/workloads"
)

// CorrelationByWindow holds one suspect's Pearson coefficient computed
// over growing dataset sizes (the paper's Fig. 5c / Fig. 6c analysis).
type CorrelationByWindow struct {
	Suspect string
	ByN     map[int]float64 // dataset size -> coefficient
}

// identificationRun executes an instrumented run and returns, per
// suspect, the correlation of the victim deviation signal with the
// suspect's activity signal over the first n samples, for each n.
func identificationRun(seed int64, b Bench, d time.Duration, useCPU bool,
	antagonists func(tb *Testbed), suspects []string, windows []int) []CorrelationByWindow {

	cfg := TestbedConfig{Seed: seed, PerfCloud: ObserverConfig()}
	tb := smallTestbed(seed, &cfg)
	antagonists(tb)
	runBackToBack(tb, b, d)
	corr := tb.Sys.Managers()[0].Correlator()

	victim := corr.VictimIOSeries()
	if useCPU {
		victim = corr.VictimCPISeries()
	}
	// Skip the warm-up samples: the very first intervals see every VM —
	// victim and decoys alike — ramp up from zero together, a degenerate
	// correlation that says nothing about interference. The paper's
	// "dataset size" counts measurements taken while the system runs.
	const warmup = 2
	var out []CorrelationByWindow
	for _, id := range suspects {
		ss := corr.SuspectIOSeries(id)
		if useCPU {
			ss = corr.SuspectLLCSeries(id)
		}
		if ss == nil {
			continue
		}
		row := CorrelationByWindow{Suspect: id, ByN: make(map[int]float64)}
		for _, n := range windows {
			if victim.Len() < warmup+n || ss.Len() < warmup+n {
				continue
			}
			r, err := stats.PearsonMissingAsZero(
				victim.Values()[warmup:warmup+n], ss.Values()[warmup:warmup+n])
			if err != nil {
				continue
			}
			row.ByN[n] = r
		}
		out = append(out, row)
	}
	return out
}

// Fig5Result reproduces Figure 5: identifying the I/O antagonist among
// {fio random read, sysbench oltp, sysbench cpu} colocated with a
// terasort cluster, by correlating each suspect's I/O throughput with
// the victim's iowait-ratio deviation — at dataset sizes as small as 3.
type Fig5Result struct {
	Rows      []CorrelationByWindow
	Windows   []int
	Threshold float64
}

// Fig5 runs the terasort case study from §III-B.
func Fig5(seed int64) Fig5Result {
	windows := []int{3, 4, 5, 6, 8, 10}
	rows := identificationRun(seed, Bench{Name: "terasort"}, 2*time.Minute, false,
		func(tb *Testbed) {
			tb.AddAntagonist(0, workloads.NewFioRandRead(
				workloads.BurstPattern{StartOffset: 10 * time.Second, On: 20 * time.Second, Off: 10 * time.Second}))
			tb.AddAntagonist(0, workloads.NewSysbenchOLTP(workloads.AlwaysOn))
			tb.AddAntagonist(0, workloads.NewSysbenchCPU(workloads.AlwaysOn))
		},
		[]string{"fio-randread", "sysbench-oltp", "sysbench-cpu"}, windows)
	return Fig5Result{Rows: rows, Windows: windows, Threshold: core.DefaultConfig().CorrThreshold}
}

// Table renders the Figure 5 correlation matrix.
func (r Fig5Result) Table() *trace.Table {
	headers := []string{"suspect"}
	for _, n := range r.Windows {
		headers = append(headers, "n="+itoa(n))
	}
	t := trace.New("Fig 5: Pearson correlation of victim iowait deviation vs suspect I/O throughput", headers...)
	for _, row := range r.Rows {
		cells := []any{row.Suspect}
		for _, n := range r.Windows {
			if v, ok := row.ByN[n]; ok {
				cells = append(cells, v)
			} else {
				cells = append(cells, "-")
			}
		}
		t.Addf(cells...)
	}
	return t
}

// Identified reports whether the suspect crosses the threshold at the
// given dataset size.
func identified(rows []CorrelationByWindow, suspect string, n int, threshold float64) bool {
	for _, row := range rows {
		if row.Suspect == suspect {
			return row.ByN[n] >= threshold
		}
	}
	return false
}

// Identified answers "was this suspect flagged at dataset size n?".
func (r Fig5Result) Identified(suspect string, n int) bool {
	return identified(r.Rows, suspect, n, r.Threshold)
}

// Fig6Result reproduces Figure 6: identifying the processor-resource
// antagonists (two STREAM VMs that only jointly cause interference)
// among decoys, by correlating suspects' LLC miss rates with the
// victim's CPI deviation; missing miss-rate samples count as zero.
type Fig6Result struct {
	Rows      []CorrelationByWindow
	Windows   []int
	Threshold float64
}

// Fig6 runs the Spark logistic-regression case study from §III-B.
func Fig6(seed int64) Fig6Result {
	windows := []int{3, 4, 5, 6, 8, 10}
	rows := identificationRun(seed, Bench{Name: "spark-logreg-mem", Spark: true}, 150*time.Second, true,
		func(tb *Testbed) {
			pat := workloads.BurstPattern{StartOffset: 10 * time.Second, On: 25 * time.Second, Off: 10 * time.Second}
			tb.AddAntagonist(0, workloads.NewStream(pat))
			tb.AddAntagonist(0, workloads.NewStream(pat))
			tb.AddAntagonist(0, workloads.NewSysbenchOLTP(workloads.AlwaysOn))
			tb.AddAntagonist(0, workloads.NewSysbenchCPU(workloads.AlwaysOn))
		},
		[]string{"stream", "stream-1", "sysbench-oltp", "sysbench-cpu"}, windows)
	return Fig6Result{Rows: rows, Windows: windows, Threshold: core.DefaultConfig().CorrThreshold}
}

// Table renders the Figure 6 correlation matrix.
func (r Fig6Result) Table() *trace.Table {
	headers := []string{"suspect"}
	for _, n := range r.Windows {
		headers = append(headers, "n="+itoa(n))
	}
	t := trace.New("Fig 6: Pearson correlation of victim CPI deviation vs suspect LLC miss rate", headers...)
	rows := append([]CorrelationByWindow(nil), r.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Suspect < rows[j].Suspect })
	for _, row := range rows {
		cells := []any{row.Suspect}
		for _, n := range r.Windows {
			if v, ok := row.ByN[n]; ok {
				cells = append(cells, v)
			} else {
				cells = append(cells, "-")
			}
		}
		t.Addf(cells...)
	}
	return t
}

// Identified answers "was this suspect flagged at dataset size n?".
func (r Fig6Result) Identified(suspect string, n int) bool {
	return identified(r.Rows, suspect, n, r.Threshold)
}

// itoa is strconv.Itoa without the import noise in table code.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
