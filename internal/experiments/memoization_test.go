package experiments

import (
	"reflect"
	"testing"
	"time"

	"perfcloud/internal/cluster"
	"perfcloud/internal/cpu"
	"perfcloud/internal/disk"
	"perfcloud/internal/memsys"
	"perfcloud/internal/sim"
)

// setFastPaths forces every steady-state fast path introduced for busy
// servers — the cluster's demand-epoch reuse and the three allocators'
// input memos — on or off for the duration of a test.
func setFastPaths(t *testing.T, enabled bool) {
	t.Helper()
	prevReuse := cluster.SetDefaultDemandReuse(enabled)
	prevCPU := cpu.SetDefaultMemoize(enabled)
	prevMem := memsys.SetDefaultMemoize(enabled)
	prevDisk := disk.SetDefaultMemoize(enabled)
	t.Cleanup(func() {
		cluster.SetDefaultDemandReuse(prevReuse)
		cpu.SetDefaultMemoize(prevCPU)
		memsys.SetDefaultMemoize(prevMem)
		disk.SetDefaultMemoize(prevDisk)
	})
}

// TestMemoizationMatchesFullPipeline is the determinism contract of the
// steady-state fast paths: reusing a server's request vectors while no
// VM's demand epoch moved, returning the CPU and memory allocators'
// cached grants on repeated inputs, and reusing the disk's solved shares
// must all produce results bit-for-bit identical to re-solving every
// tick. The scenarios run busy phases (steady hits), demand flips
// (invalidation), throttling (cap changes outside MarkDirty) and idle
// stretches (interaction with quiescence).
func TestMemoizationMatchesFullPipeline(t *testing.T) {
	const s = seed

	smallVariability := VariabilityConfig{
		Seed:             s,
		Servers:          3,
		WorkersPerServer: 6,
		Runs:             3,
		Fio:              2,
		Streams:          2,
		Tasks:            18,
		Limit:            time.Hour,
	}
	mix := smallMix()
	mix.NumMR, mix.NumSpark = 4, 4

	cases := []struct {
		name string
		run  func() any
	}{
		{"Fig3", func() any { return Fig3(s) }},
		{"Fig11", func() any { return Fig11With(mix, []Scheme{SchemeLATE()}) }},
		{"Fig12", func() any { return Fig12With(smallVariability, []Scheme{SchemeLATE(), SchemePerfCloud()}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			setFastPaths(t, false)
			full := tc.run()

			setFastPaths(t, true)
			memo := tc.run()

			if !reflect.DeepEqual(full, memo) {
				t.Errorf("memoized result differs from full pipeline:\nfull: %+v\nmemo: %+v", full, memo)
			}
		})
	}
}

// TestSharedPoolBoundsWorkers runs concurrent experiment repetitions —
// each ticking a multi-server cluster through the parallel grant phase —
// and asserts the process-wide slot pool never hands out more slots than
// it has: total concurrent workers stay at or below GOMAXPROCS (the pool
// capacity plus the one root goroutine). `make race` runs this under the
// race detector, exercising the pool's acquire/release paths.
func TestSharedPoolBoundsWorkers(t *testing.T) {
	pool := sim.SharedPool()
	pool.ResetPeak()

	prev := SetMaxParallelRuns(0) // automatic: as many repetition workers as allowed
	t.Cleanup(func() { SetMaxParallelRuns(prev) })

	cfg := VariabilityConfig{
		Seed:             seed,
		Servers:          3,
		WorkersPerServer: 6,
		Runs:             6,
		Fio:              2,
		Streams:          2,
		Tasks:            18,
		Limit:            time.Hour,
	}
	Fig12With(cfg, []Scheme{SchemeLATE()})

	if peak, capacity := pool.PeakInUse(), pool.Capacity(); peak > capacity {
		t.Fatalf("pool handed out %d slots, capacity %d: worker fan-outs multiplied", peak, capacity)
	}
	if used := pool.InUse(); used != 0 {
		t.Fatalf("%d slots still held after the suite finished", used)
	}
}
