package experiments

import (
	"bytes"
	"testing"
	"time"

	"perfcloud/internal/mapreduce"
	"perfcloud/internal/obs"
	"perfcloud/internal/trace"
	"perfcloud/internal/workloads"
)

// traceTestMix is a small Fig 11 mix that still exercises both
// frameworks, antagonists and the PerfCloud control loop.
func traceTestMix() LargeScaleConfig {
	return LargeScaleConfig{
		Seed:             3,
		Servers:          2,
		WorkersPerServer: 4,
		NumMR:            3,
		NumSpark:         3,
		Fio:              1,
		Streams:          2,
		InterarrivalSec:  2,
		Limit:            30 * time.Minute,
	}
}

// TestTracingDoesNotChangeJCTs runs the same seeded mix with tracing off
// and on and requires bit-for-bit identical JCTs and efficiency: the
// tracer must be a pure observer of the simulation.
func TestTracingDoesNotChangeJCTs(t *testing.T) {
	cfg := traceTestMix()
	off := runMix(cfg, SchemePerfCloud(), true)

	SetTraceDir(t.TempDir())
	defer SetTraceDir("")
	on := runMix(cfg, SchemePerfCloud(), true)

	if len(off.JCTs) != len(on.JCTs) {
		t.Fatalf("job counts differ: %d vs %d", len(off.JCTs), len(on.JCTs))
	}
	for i := range off.JCTs {
		if off.JCTs[i] != on.JCTs[i] {
			t.Errorf("job %d JCT: off=%v on=%v (must be bit-identical)", i, off.JCTs[i], on.JCTs[i])
		}
	}
	if off.Efficiency != on.Efficiency {
		t.Errorf("efficiency: off=%v on=%v", off.Efficiency, on.Efficiency)
	}
	if on.Phases.Attempts == 0 || on.Phases.WallSec <= 0 {
		t.Errorf("traced run should carry phase totals, got %+v", on.Phases)
	}
	if diff := on.Phases.PhaseSum() - on.Phases.WallSec; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("phase totals %v do not partition wall %v", on.Phases.PhaseSum(), on.Phases.WallSec)
	}
}

// TestSameSeedTracesAreByteIdentical is the determinism contract of
// DESIGN.md §5.5: two runs with the same seed produce byte-identical
// Perfetto JSON, control-plane instants included.
func TestSameSeedTracesAreByteIdentical(t *testing.T) {
	run := func() []byte {
		pc := ControllerConfig()
		col := obs.NewCollector()
		pc.Events = col
		tr := trace.NewTracer()
		tb := NewTestbed(TestbedConfig{
			Seed:      7,
			Servers:   1,
			PerfCloud: pc,
			Tracer:    tr,
		})
		tb.MustInput("input", 512<<20)
		tb.AddAntagonist(0, workloads.NewFioRandRead(workloads.AlwaysOn))
		tb.RunMR(mapreduce.Terasort("input", 4), 30*time.Minute)
		var b bytes.Buffer
		if err := tr.WritePerfetto(&b, col.Events()); err != nil {
			t.Fatal(err)
		}
		if tr.Len() == 0 {
			t.Fatal("no spans recorded")
		}
		return b.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Error("same-seed runs produced different trace bytes")
	}
}
