// Package experiments contains one scenario builder per figure of the
// paper's motivation and evaluation sections. Each experiment constructs
// a fresh simulated testbed (servers, Hadoop/Spark worker VMs, antagonist
// VMs, optional PerfCloud deployment), runs the workload the paper ran,
// and returns a structured result that renders as the corresponding
// table/series via internal/trace. The bench harness at the repository
// root and cmd/perfbench are thin wrappers over this package.
package experiments

import (
	"fmt"
	"time"

	"perfcloud/internal/cloud"
	"perfcloud/internal/cluster"
	"perfcloud/internal/core"
	"perfcloud/internal/dfs"
	"perfcloud/internal/exec"
	"perfcloud/internal/mapreduce"
	"perfcloud/internal/obs"
	"perfcloud/internal/sim"
	"perfcloud/internal/spark"
	"perfcloud/internal/straggler"
	"perfcloud/internal/trace"
	"perfcloud/internal/workloads"
)

// TestbedConfig sizes a testbed.
type TestbedConfig struct {
	Seed             int64
	Tick             time.Duration // 0 = 100 ms
	Servers          int           // 0 = 1
	WorkersPerServer int           // 0 = 6
	SlotsPerWorker   int           // 0 = 2
	Speculator       exec.Speculator
	// PerfCloud deploys the node managers when non-nil.
	PerfCloud *core.Config
	// ServerConfig overrides the per-server resource models.
	ServerConfig *cluster.ServerConfig
	// BlockBytes overrides the DFS block size (0 = the 64 MB default).
	BlockBytes float64
	// SlowServers makes the last N provisioned servers heterogeneous:
	// their disk bandwidth/IOPS and CPU frequency are scaled by
	// SlowFactor (0 = 0.5). The paper's §IV-D2 future-work setting.
	SlowServers int
	SlowFactor  float64
	// Tracer, when non-nil, is attached to every executor and both
	// frameworks: jobs, stages, tasks and attempts are recorded as spans
	// with per-phase time attribution.
	Tracer *trace.Tracer
}

// Testbed is a fully wired simulated deployment.
type Testbed struct {
	Cfg    TestbedConfig
	Eng    *sim.Engine
	Clus   *cluster.Cluster
	CM     *cloud.Manager
	FS     *dfs.FileSystem
	JT     *mapreduce.JobTracker
	Driver *spark.Driver
	Pool   exec.Pool
	Sys    *core.System // nil unless PerfCloud deployed
	Dolly  *straggler.Dolly

	Benchmarks map[string]*workloads.Benchmark
	nAnt       int

	// Truth records every benchmark VM booted through AddAntagonist —
	// identity, burst schedule and harm channel — so detection-quality
	// scorecards can grade the control plane's cap decisions against
	// what the simulator knows to be true.
	Truth *obs.GroundTruth
}

// NewTestbed builds and wires a testbed: worker VMs are spread evenly
// across servers (as the paper's virtual Hadoop clusters are), executors
// attached, DFS over the workers, both frameworks registered before the
// resource pipeline and PerfCloud (if any) after it.
func NewTestbed(cfg TestbedConfig) *Testbed {
	if cfg.Tick == 0 {
		cfg.Tick = 100 * time.Millisecond
	}
	if cfg.Servers == 0 {
		cfg.Servers = 1
	}
	if cfg.WorkersPerServer == 0 {
		cfg.WorkersPerServer = 6
	}
	if cfg.SlotsPerWorker == 0 {
		cfg.SlotsPerWorker = 2
	}
	tb := &Testbed{Cfg: cfg, Benchmarks: make(map[string]*workloads.Benchmark), Truth: obs.NewGroundTruth()}
	tb.Eng = sim.NewEngine(cfg.Tick, cfg.Seed)
	tb.Clus = cluster.New()
	tb.CM = cloud.NewManager(tb.Clus, tb.Eng.RNG())
	if cfg.ServerConfig != nil {
		tb.CM.SetDefaultServerConfig(*cfg.ServerConfig)
	}
	fast := cfg.Servers - cfg.SlowServers
	if fast < 0 {
		panic("experiments: more slow servers than servers")
	}
	tb.CM.ProvisionServers(fast)
	if cfg.SlowServers > 0 {
		factor := cfg.SlowFactor
		if factor == 0 {
			factor = 0.5
		}
		slow := cluster.DefaultServerConfig()
		if cfg.ServerConfig != nil {
			slow = *cfg.ServerConfig
		}
		slow.Disk.BandwidthCapacity *= factor
		slow.Disk.IOPSCapacity *= factor
		slow.CPU.FreqHz *= factor
		slow.Mem.FreqHz *= factor
		slow.Mem.BandwidthCapacity *= factor
		tb.CM.ProvisionServersWith(cfg.SlowServers, slow)
	}

	var names []string
	for s := 0; s < cfg.Servers; s++ {
		for w := 0; w < cfg.WorkersPerServer; w++ {
			id := fmt.Sprintf("worker-%02d-%02d", s, w)
			vm, err := tb.CM.Boot(cloud.VMSpec{
				Name:     id,
				Priority: cluster.HighPriority,
				AppID:    "hadoop",
				ServerID: fmt.Sprintf("server-%d", s),
			})
			if err != nil {
				panic(err)
			}
			tb.Pool = append(tb.Pool, exec.NewExecutor(vm, cfg.SlotsPerWorker))
			names = append(names, id)
		}
	}
	dfsCfg := dfs.DefaultConfig()
	if cfg.BlockBytes > 0 {
		dfsCfg.BlockBytes = cfg.BlockBytes
	}
	tb.FS = dfs.New(dfsCfg, names, sim.NewSeededRand(cfg.Seed+101))
	tb.JT = mapreduce.NewJobTracker(tb.Pool, tb.FS, cfg.Speculator)
	tb.Driver = spark.NewDriver(tb.Pool, cfg.Speculator)
	tb.Dolly = straggler.NewDolly()
	tb.Eng.RegisterPriority(tb.JT, -1)
	tb.Eng.RegisterPriority(tb.Driver, -1)
	tb.Eng.RegisterPriority(tb.Clus, 0)
	tb.Eng.RegisterPriority(tb.Dolly, 1)
	if h := healthRef(); h != nil {
		// Engine self-profiling (wall-clock, never in sim outputs): the
		// cluster's phase timers attach here; the node managers pick the
		// layer up through their config unless one was set explicitly.
		tb.Clus.SetHealth(h)
		if cfg.PerfCloud != nil && cfg.PerfCloud.Health == nil {
			pc := *cfg.PerfCloud
			pc.Health = h
			cfg.PerfCloud = &pc
		}
	}
	if cfg.PerfCloud != nil {
		tb.Sys = core.Attach(tb.Eng, tb.Clus, tb.CM, *cfg.PerfCloud)
	}
	trackCluster(tb.Clus)
	if cfg.Tracer != nil {
		tb.AttachTracer(cfg.Tracer)
	}
	return tb
}

// Stepper returns an event-driven stepper over the testbed's engine: each
// Step runs one engine tick, then elides upcoming ticks through the
// testbed's Strider while every framework is provably idle (DESIGN.md
// §5.6). With striding disabled (cluster.SetDefaultStride(false) or
// Clus.SetStride(false)) the stepper degrades to per-tick stepping; both
// modes are bit-for-bit identical.
func (tb *Testbed) Stepper() *sim.Stepper {
	return &sim.Stepper{Eng: tb.Eng, Str: tb}
}

// Stride implements sim.Strider: it elides up to max upcoming ticks when
// every cluster-external event source is provably silent for them. The
// event sources and their owners:
//
//   - framework scheduling (launch, harvest, state transitions) — the
//     JobTracker/Driver/Dolly StrideQuiet predicates prove the next tick
//     is a no-op, and it stays one until an attempt completes, which the
//     stop callback detects (a completion frees an executor slot) and
//     ends the stride at that exact tick;
//   - control intervals — System.StrideBound caps the stride below every
//     node manager's next sample time;
//   - demand changes (workload phase flips, task tapering) — owned by the
//     cluster pipeline itself, which detects and rebuilds them natively
//     inside the stride (no bound needed);
//   - driver-level events (job arrivals, observation intervals, run
//     predicates) — owned by the caller via the Stepper bound callback.
//
// When any predicate cannot prove quietness the stride is 0 and the
// engine steps per tick — the always-correct fallback.
func (tb *Testbed) Stride(clk *sim.Clock, max int64) int64 {
	if !tb.Clus.StrideEnabled() {
		return 0
	}
	if !tb.JT.StrideQuiet() || !tb.Driver.StrideQuiet() || !tb.Dolly.StrideQuiet() {
		return 0
	}
	if tb.Sys != nil {
		max = tb.Sys.StrideBound(clk, max)
		if max <= 0 {
			return 0
		}
	}
	free := tb.Pool.FreeSlots()
	return tb.Clus.Stride(clk, max, tb.syncPool,
		func() bool { return tb.Pool.FreeSlots() != free })
}

// syncPool replays the executor clock sync the frameworks' elided ticks
// would have performed, with the exact timestamp each tick would have
// seen — completion times are stamped from these clocks, so they must be
// bit-identical to per-tick stepping.
func (tb *Testbed) syncPool(nowSec float64) {
	for _, e := range tb.Pool {
		e.SyncClock(nowSec)
	}
}

// AttachTracer wires a span tracer into every executor and both
// frameworks. Call before submitting work (NewTestbed does this when
// TestbedConfig.Tracer is set).
func (tb *Testbed) AttachTracer(tr *trace.Tracer) {
	for _, e := range tb.Pool {
		e.SetTracer(tr)
	}
	tb.JT.SetTracer(tr)
	tb.Driver.SetTracer(tr)
}

// AddAntagonist boots a low-priority VM on the given server index and
// attaches the benchmark. The VM is named after the benchmark (with a
// disambiguating counter when needed).
func (tb *Testbed) AddAntagonist(server int, w *workloads.Benchmark) *cluster.VM {
	name := w.Name()
	if _, taken := tb.Benchmarks[name]; taken {
		tb.nAnt++
		name = fmt.Sprintf("%s-%d", w.Name(), tb.nAnt)
	}
	vm, err := tb.CM.Boot(cloud.VMSpec{
		Name:     name,
		Priority: cluster.LowPriority,
		ServerID: fmt.Sprintf("server-%d", server),
	})
	if err != nil {
		panic(err)
	}
	vm.SetWorkload(w)
	tb.Benchmarks[name] = w
	p := w.Pattern()
	tb.Truth.Add(obs.TruthVM{
		VM:       name,
		Server:   fmt.Sprintf("server-%d", server),
		Channel:  w.HarmChannel(),
		StartSec: p.StartOffset.Seconds(),
		OnSec:    p.On.Seconds(),
		OffSec:   p.Off.Seconds(),
	})
	return vm
}

// MustInput creates a DFS input file, panicking on error (experiment
// construction is programmer-controlled).
func (tb *Testbed) MustInput(name string, bytes float64) {
	if _, err := tb.FS.Create(name, bytes); err != nil {
		panic(err)
	}
}

// RunMR submits a MapReduce job and runs the simulation until it
// finishes (or the limit elapses, which panics: an experiment that
// cannot finish is a configuration bug worth failing loudly on).
func (tb *Testbed) RunMR(cfg mapreduce.JobConfig, limit time.Duration) *mapreduce.Job {
	j, err := tb.JT.Submit(cfg, tb.Eng.Clock().Seconds())
	if err != nil {
		panic(err)
	}
	if !tb.Stepper().RunUntil(j.Done, limit) {
		panic(fmt.Sprintf("experiments: job %s stuck in state %v", j.ID(), j.State()))
	}
	return j
}

// RunSpark submits a Spark application and runs until it finishes.
func (tb *Testbed) RunSpark(cfg spark.AppConfig, limit time.Duration) *spark.App {
	a, err := tb.Driver.Submit(cfg, tb.Eng.Clock().Seconds())
	if err != nil {
		panic(err)
	}
	if !tb.Stepper().RunUntil(a.Done, limit) {
		panic(fmt.Sprintf("experiments: app %s stuck at stage %d", a.ID(), a.StageIndex()))
	}
	return a
}

// CapAntagonistIOPS applies a static blkio IOPS cap to a named
// antagonist VM (the paper's static-capping baseline); frac is relative
// to the given solo rate.
func (tb *Testbed) CapAntagonistIOPS(name string, frac, soloIOPS float64) {
	vm := tb.Clus.FindVM(name)
	if vm == nil {
		panic(fmt.Sprintf("experiments: no antagonist %q", name))
	}
	vm.Cgroup().SetReadIOPS(frac * soloIOPS)
	vm.Server().MarkDirty()
}

// CapAntagonistCPU applies a static CPU quota, frac relative to the
// VM's vcpus.
func (tb *Testbed) CapAntagonistCPU(name string, frac float64) {
	vm := tb.Clus.FindVM(name)
	if vm == nil {
		panic(fmt.Sprintf("experiments: no antagonist %q", name))
	}
	vm.Cgroup().SetCPUCores(frac * vm.VCPUs())
	vm.Server().MarkDirty()
}

// ObserverConfig returns a PerfCloud config that records the detection
// signals without ever throttling — the instrumented "default system".
func ObserverConfig() *core.Config {
	cfg := core.DefaultConfig()
	cfg.ObserveOnly = true
	return &cfg
}

// ControllerConfig returns the standard active PerfCloud configuration.
func ControllerConfig() *core.Config {
	cfg := core.DefaultConfig()
	return &cfg
}

// FioSoloIOPS is fio's demand rate, its throughput when running alone on
// an idle device (verified by TestFioSoloRate).
const FioSoloIOPS = 8000
