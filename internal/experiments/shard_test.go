package experiments

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"perfcloud/internal/cluster"
	"perfcloud/internal/mapreduce"
	"perfcloud/internal/obs"
	"perfcloud/internal/trace"
	"perfcloud/internal/workloads"
)

// setShards forces a package-wide shard setting for the duration of a
// test: n >= 0 shards the cluster tick, -1 restores the flat pre-shard
// path.
func setShards(t *testing.T, n int) {
	t.Helper()
	prev := cluster.SetDefaultShards(n)
	t.Cleanup(func() { cluster.SetDefaultShards(prev) })
}

// TestShardingMatchesFlat is the whole-experiment determinism contract
// of sharded ticking (DESIGN.md §5.7): partitioning the fleet into
// independently ticking shards with O(active) bookkeeping must leave
// every figure of the paper bit-for-bit unchanged against the flat
// path — across frameworks, antagonists, Dolly cloning, the PerfCloud
// control loop and event-driven strides.
func TestShardingMatchesFlat(t *testing.T) {
	mix := smallMix()
	mix.NumMR, mix.NumSpark = 4, 4

	cases := []struct {
		name string
		run  func() any
	}{
		{"Fig3", func() any { return Fig3(seed) }},
		{"Fig11", func() any { return Fig11With(mix, []Scheme{SchemeLATE(), SchemeDolly(2), SchemePerfCloud()}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			setShards(t, -1)
			flat := tc.run()
			for _, n := range []int{0, 3} {
				setShards(t, n)
				if sharded := tc.run(); !reflect.DeepEqual(flat, sharded) {
					t.Errorf("shards=%d result differs from flat reference:\nflat:    %+v\nsharded: %+v", n, flat, sharded)
				}
			}
		})
	}
}

// TestShardTracingByteIdentical extends the tracing invariant to the
// sharded tick path: a traced run must emit Perfetto JSON byte-identical
// to the flat run — every span boundary, phase attribution and
// control-plane instant on the same timestamps.
func TestShardTracingByteIdentical(t *testing.T) {
	run := func() []byte {
		pc := ControllerConfig()
		col := obs.NewCollector()
		pc.Events = col
		tr := trace.NewTracer()
		tb := NewTestbed(TestbedConfig{
			Seed:      7,
			Servers:   3,
			PerfCloud: pc,
			Tracer:    tr,
		})
		tb.MustInput("input", 512<<20)
		tb.AddAntagonist(0, workloads.NewFioRandRead(workloads.AlwaysOn))
		tb.RunMR(mapreduce.Terasort("input", 4), 30*time.Minute)
		var b bytes.Buffer
		if err := tr.WritePerfetto(&b, col.Events()); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}

	setShards(t, -1)
	flat := run()
	setShards(t, 2)
	if sharded := run(); !bytes.Equal(flat, sharded) {
		t.Error("sharded run produced different trace bytes than the flat reference")
	}
}
