package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"perfcloud/internal/cloud"
	"perfcloud/internal/cluster"
	"perfcloud/internal/obs"
	"perfcloud/internal/sim"
)

// TestFleetMetricsBoundedByZonesPlusShards is the acceptance bound for
// fleet telemetry: on a 10k-server fleet the /metrics exposition and
// the series registry must scale with zones + shards, never servers.
func TestFleetMetricsBoundedByZonesPlusShards(t *testing.T) {
	const servers = 10000
	clus := cluster.New()
	clus.SetShards(0) // automatic partition, independent of other tests
	eng := sim.NewEngine(100*time.Millisecond, 1)
	cm := cloud.NewManager(clus, eng.RNG())
	cm.ProvisionServers(servers)
	for i := 0; i < 300; i++ {
		if _, err := cm.Boot(cloud.VMSpec{Name: fmt.Sprintf("tenant-%04d", i)}); err != nil {
			t.Fatal(err)
		}
	}

	reg := obs.NewRegistry()
	sr := obs.NewSeriesRegistry(64)
	ft := NewFleetTelemetry(clus, cm, reg, sr)
	ft.Sample(0)
	ft.Sample(5)

	zones := len(cm.Zones())
	shards := clus.ShardCount()
	if zones == 0 || shards == 0 {
		t.Fatalf("fixture degenerate: %d zones, %d shards", zones, shards)
	}

	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := 0
	for _, line := range strings.Split(b.String(), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			samples++
		}
	}
	// The exposition holds 2 fleet gauges, one gauge per shard and two
	// per zone — allow a constant factor of headroom, nothing more.
	budget := 3*(zones+shards) + 16
	if samples > budget {
		t.Fatalf("/metrics has %d samples for %d zones + %d shards (budget %d)", samples, zones, shards, budget)
	}
	if samples >= servers/10 {
		t.Fatalf("/metrics has %d samples — scaling with servers (%d), not zones+shards", samples, servers)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.Contains(line, `server="`) {
			t.Fatalf("fleet telemetry emitted a per-server series: %s", line)
		}
	}

	// The series registry obeys the same bound.
	keys := sr.Keys()
	if len(keys) > budget {
		t.Fatalf("series registry holds %d series (budget %d)", len(keys), budget)
	}
	// And every series carries both samples with exact timestamps.
	pts := sr.Series("fleet_active_servers").Points()
	if len(pts) != 2 || pts[0].T != 0 || pts[1].T != 5 {
		t.Fatalf("fleet series points = %v", pts)
	}
}

// TestFleetTelemetryLocator checks the rollup locate function maps a
// server onto its shard and zone keys.
func TestFleetTelemetryLocator(t *testing.T) {
	clus := cluster.New()
	clus.SetShards(4)
	eng := sim.NewEngine(100*time.Millisecond, 1)
	cm := cloud.NewManager(clus, eng.RNG())
	srvs := cm.ProvisionServers(100)
	ft := NewFleetTelemetry(clus, cm, obs.NewRegistry(), obs.NewSeriesRegistry(8))
	loc := ft.Locator()

	shard, zone, ok := loc(srvs[0].ID())
	if !ok || shard != "0" || zone != "zone-0" {
		t.Fatalf("locate(first) = %q %q %v", shard, zone, ok)
	}
	last := srvs[len(srvs)-1]
	shard, zone, ok = loc(last.ID())
	if !ok || shard != "3" {
		t.Fatalf("locate(last) = %q %q %v", shard, zone, ok)
	}
	if _, _, ok := loc("no-such-server"); ok {
		t.Fatal("locate of unknown server succeeded")
	}

	// The locator feeds rollups whose cardinality stays hierarchical.
	sr := obs.NewSeriesRegistry(8)
	sink := obs.NewRollupSink(sr, loc)
	for i, s := range srvs {
		sink.Emit(obs.Event{T: 10, Type: obs.EventSample, Server: s.ID(), IowaitDev: float64(i)})
	}
	// dev_iowait + dev_cpi, each with cluster + 4 shards + 1 zone.
	if got := len(sr.Keys()); got > 2*(1+4+1) {
		t.Fatalf("rollup created %d series for 100 servers: %v", got, sr.Keys())
	}
}
