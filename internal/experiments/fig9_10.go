package experiments

import (
	"time"

	"perfcloud/internal/core"
	"perfcloud/internal/spark"
	"perfcloud/internal/stats"
	"perfcloud/internal/trace"
	"perfcloud/internal/workloads"
)

// Fig9Arm is one scheme's outcome in the dynamic-resource-control
// experiment (§IV-B): a Spark logistic regression on a 12-node virtual
// cluster colocated with fio, STREAM, sysbench oltp and sysbench cpu.
type Fig9Arm struct {
	Scheme     string
	JCT        float64
	Iowait     *stats.TimeSeries // victim iowait-ratio deviation over time
	CPI        *stats.TimeSeries // victim CPI deviation over time
	FioIOPS    float64           // fio's achieved IOPS over its active time
	StreamSecs float64           // when STREAM finished its work (0 = never)
	Trace      []core.TraceEntry
}

// Fig9Result holds the three arms: default (no capping), static (20%
// caps, hand-tuned) and PerfCloud (dynamic control).
type Fig9Result struct {
	Arms []Fig9Arm
}

const (
	fig9Workers    = 12
	fig9Tasks      = 40
	fig9Iters      = 20
	fig9InputBytes = 40 * (64 << 20)
	fig9Limit      = time.Hour
	// streamWork is sized so STREAM finishes partway through the run when
	// unthrottled (Fig. 10 notes it "finishes at different times under
	// different schemes").
	streamWork = 2.5e11
)

// fig9Run executes one arm.
func fig9Run(seed int64, scheme string) Fig9Arm {
	var pc *core.Config
	switch scheme {
	case "perfcloud":
		pc = ControllerConfig()
	default:
		pc = ObserverConfig()
	}
	tb := NewTestbed(TestbedConfig{Seed: seed, WorkersPerServer: fig9Workers, PerfCloud: pc})

	// Antagonists start after the victim is established (the paper's
	// timeline has throttling begin around t=15 s) — identification
	// correlates each suspect's onset with the deviation it causes.
	fio := workloads.NewFioRandRead(workloads.BurstPattern{
		StartOffset: 15 * time.Second, On: 25 * time.Second, Off: 15 * time.Second})
	stream := workloads.NewStreamWithWork(workloads.BurstPattern{
		StartOffset: 20 * time.Second}, streamWork)
	tb.AddAntagonist(0, fio)
	tb.AddAntagonist(0, stream)
	tb.AddAntagonist(0, workloads.NewSysbenchOLTP(workloads.AlwaysOn))
	tb.AddAntagonist(0, workloads.NewSysbenchCPU(workloads.AlwaysOn))
	if scheme == "static" {
		tb.CapAntagonistIOPS("fio-randread", 0.2, FioSoloIOPS)
		tb.CapAntagonistCPU("stream", 0.2)
	}

	app := tb.RunSpark(fig9App(), fig9Limit)

	arm := Fig9Arm{
		Scheme:  scheme,
		JCT:     app.JCT(),
		Iowait:  stats.NewTimeSeries(),
		CPI:     stats.NewTimeSeries(),
		FioIOPS: fio.AchievedIOPS(),
	}
	if stream.Done() {
		arm.StreamSecs = stream.Elapsed().Seconds()
	}
	nm := tb.Sys.Managers()[0]
	arm.Trace = nm.Trace()
	for _, e := range arm.Trace {
		arm.Iowait.Append(e.TimeSec, e.IowaitDev)
		arm.CPI.Append(e.TimeSec, e.CPIDev)
	}
	return arm
}

// fig9App is the victim application: logistic regression with
// disk-backed shuffle spills. Each iteration reads a modest amount per
// task, so the victim has ongoing block-I/O activity for the iowait
// channel to observe (as the paper's Spark deployment does), while
// staying memory-bandwidth dominated.
func fig9App() spark.AppConfig {
	appCfg := spark.LogisticRegression(fig9Tasks, fig9Iters, fig9InputBytes)
	for i := 1; i < len(appCfg.Stages); i++ {
		appCfg.Stages[i].IOBytesPer = 8 << 20
	}
	return appCfg
}

// Fig9 runs all three arms.
func Fig9(seed int64) Fig9Result {
	return Fig9Result{Arms: []Fig9Arm{
		fig9Run(seed, "default"),
		fig9Run(seed, "static"),
		fig9Run(seed, "perfcloud"),
	}}
}

// Arm returns the named arm.
func (r Fig9Result) Arm(scheme string) Fig9Arm {
	for _, a := range r.Arms {
		if a.Scheme == scheme {
			return a
		}
	}
	return Fig9Arm{}
}

// Table renders the Figure 9 summary: deviation peaks (a, b) and the
// normalized JCT comparison (c).
func (r Fig9Result) Table() *trace.Table {
	def := r.Arm("default").JCT
	t := trace.New("Fig 9: dynamic resource control — Spark logreg, 12-node cluster + fio/STREAM/oltp/cpu",
		"scheme", "JCT (s)", "norm JCT", "peak iowait dev", "peak CPI dev", "fio IOPS", "stream done (s)")
	for _, a := range r.Arms {
		t.Addf(a.Scheme, a.JCT, a.JCT/def, a.Iowait.Max(), a.CPI.Max(), a.FioIOPS, a.StreamSecs)
	}
	return t
}

// Fig10Result extracts the per-antagonist cap timelines from the
// PerfCloud arm: the throttle / growth / probe / re-throttle trajectory
// of Figure 10.
type Fig10Result struct {
	FioCap    *stats.TimeSeries // applied IOPS cap over time (NaN = uncapped)
	StreamCap *stats.TimeSeries // applied CPU cap (cores) over time
}

// Fig10 derives the cap timelines from a Fig9 PerfCloud arm.
func Fig10(arm Fig9Arm) Fig10Result {
	res := Fig10Result{FioCap: stats.NewTimeSeries(), StreamCap: stats.NewTimeSeries()}
	for _, e := range arm.Trace {
		if c, ok := e.IOCaps["fio-randread"]; ok {
			res.FioCap.Append(e.TimeSec, c)
		} else {
			res.FioCap.AppendMissing(e.TimeSec)
		}
		if c, ok := e.CPUCaps["stream"]; ok {
			res.StreamCap.Append(e.TimeSec, c)
		} else {
			res.StreamCap.AppendMissing(e.TimeSec)
		}
	}
	return res
}

// ThrottleEpisodes counts contiguous capped periods in a cap series —
// Fig. 10 shows fio being throttled, released, and re-throttled later.
func ThrottleEpisodes(ts *stats.TimeSeries) int {
	episodes := 0
	inEpisode := false
	for _, v := range ts.Values() {
		capped := !isNaN(v)
		if capped && !inEpisode {
			episodes++
		}
		inEpisode = capped
	}
	return episodes
}

func isNaN(v float64) bool { return v != v }

// Table renders the Figure 10 cap timelines.
func (r Fig10Result) Table() *trace.Table {
	t := trace.New("Fig 10: PerfCloud cap timelines (blank = uncapped)",
		"antagonist", "episodes", "min cap", "series")
	t.Addf("fio (IOPS)", ThrottleEpisodes(r.FioCap), minNonMissing(r.FioCap), r.FioCap.Sparkline(40))
	t.Addf("stream (cores)", ThrottleEpisodes(r.StreamCap), minNonMissing(r.StreamCap), r.StreamCap.Sparkline(40))
	return t
}

func minNonMissing(ts *stats.TimeSeries) float64 {
	min := 0.0
	seen := false
	for _, v := range ts.Values() {
		if isNaN(v) {
			continue
		}
		if !seen || v < min {
			min, seen = v, true
		}
	}
	return min
}
