package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"perfcloud/internal/obs"
	"perfcloud/internal/trace"
)

// Alert-rule and health-layer gates for experiment runs. Like the
// scorecard and trace gates, both default to off, and with them off runs
// are bit-identical to a build without this file: no engine is built, no
// collector attached, no timer sampled (TestAlertsDoNotChangeResults).
//
// Alerts are deterministic — rules are evaluated on sim time against the
// seed-determined telemetry, so same-seed runs emit byte-identical alert
// streams. The health layer is the opposite by design: wall-clock
// self-profiling of the simulator, never folded into results.

var (
	alertMu       sync.Mutex
	alertRuleList []obs.Rule
)

// SetAlertRules installs the rule pack every subsequent experiment run
// that deploys PerfCloud evaluates (a copy is taken; nil or empty
// disables alerting). Returns the previously installed rules.
func SetAlertRules(rules []obs.Rule) []obs.Rule {
	alertMu.Lock()
	defer alertMu.Unlock()
	prev := alertRuleList
	alertRuleList = append([]obs.Rule(nil), rules...)
	return prev
}

// alertRules returns the installed rule pack (a copy, so concurrent runs
// share nothing mutable).
func alertRules() []obs.Rule {
	alertMu.Lock()
	defer alertMu.Unlock()
	return append([]obs.Rule(nil), alertRuleList...)
}

// healthLayer is the optional process-wide engine self-profiling layer.
var healthLayer atomic.Pointer[obs.Health]

// SetHealth installs (or, with nil, removes) the health layer attached
// to every subsequent testbed: cluster grant/advance/stride timers, the
// node managers' monitor timer and the telemetry sampling timer.
func SetHealth(h *obs.Health) { healthLayer.Store(h) }

// healthRef returns the installed health layer (nil when off).
func healthRef() *obs.Health { return healthLayer.Load() }

// alertSummaryFor snapshots an engine's lifetime activity (nil in, nil
// out — schemes without a control plane have no engine).
func alertSummaryFor(eng *obs.AlertEngine) *obs.AlertSummary {
	if eng == nil {
		return nil
	}
	s := eng.Summary()
	return &s
}

// alertTable renders per-scheme alert summaries as one table, skipping
// schemes that ran without rules.
func alertTable(title string, schemes []string, sums []*obs.AlertSummary) *trace.Table {
	t := trace.New(title, "scheme", "firings", "resolved", "still active", "rules fired")
	for i, s := range sums {
		if s == nil {
			continue
		}
		active := ""
		if len(s.Active) > 0 {
			active = fmt.Sprintf("%v", s.Active)
		}
		fired := ""
		for _, r := range s.Rules {
			if r.Firings == 0 {
				continue
			}
			if fired != "" {
				fired += " "
			}
			fired += fmt.Sprintf("%s:%d", r.Rule, r.Firings)
		}
		t.Addf(schemes[i], s.Firings, s.Resolved, active, fired)
	}
	return t
}
