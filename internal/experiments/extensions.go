package experiments

import (
	"fmt"
	"time"

	"perfcloud/internal/cloud"
	"perfcloud/internal/cluster"
	"perfcloud/internal/core"
	"perfcloud/internal/dfs"
	"perfcloud/internal/exec"
	"perfcloud/internal/mapreduce"
	"perfcloud/internal/sim"
	"perfcloud/internal/straggler"
	"perfcloud/internal/trace"
	"perfcloud/internal/workloads"
)

// This file implements the paper's §IV-D2 future-work directions as
// working extensions: (a) heterogeneous server fleets, where PerfCloud's
// decentralized design is blind to slow machines and application-level
// speculation complements it; (b) escalation to VM migration when
// multiple high-priority applications collide on one server.

// SchemeHybrid combines PerfCloud with LATE speculative execution — the
// complementary deployment the paper proposes for heterogeneous fleets.
func SchemeHybrid() Scheme {
	return Scheme{Name: "PerfCloud+LATE", Speculator: straggler.NewLATE(), Clones: 1, PerfCloud: true}
}

// HeteroRow is one scheme's outcome on the heterogeneous fleet.
type HeteroRow struct {
	Scheme  string
	MeanJCT float64
}

// HeteroResult compares default, LATE, PerfCloud and the hybrid on a
// fleet where a third of the servers run at half speed, with a fio
// antagonist on one fast server. PerfCloud throttles the antagonist but
// cannot fix the slow hardware; LATE rescues slow-server stragglers but
// not the antagonized ones efficiently; the hybrid addresses both.
type HeteroResult struct {
	Rows []HeteroRow
}

// Heterogeneous runs repeated terasort jobs on a 6-server fleet (2 slow)
// under each scheme. The four schemes are independent testbeds, so they
// run concurrently (bounded by MaxParallelRuns), each writing its own row.
func Heterogeneous(seed int64) HeteroResult {
	schemes := []Scheme{SchemeDefault(), SchemeLATE(), SchemePerfCloud(), SchemeHybrid()}
	rows := make([]HeteroRow, len(schemes))
	forEachRun(len(schemes), func(si int) {
		sch := schemes[si]
		var pc *core.Config
		if sch.PerfCloud {
			pc = ControllerConfig()
		}
		tb := NewTestbed(TestbedConfig{
			Seed:             seed,
			Servers:          6,
			SlowServers:      2,
			SlowFactor:       0.35,
			WorkersPerServer: 6,
			Speculator:       sch.Speculator,
			PerfCloud:        pc,
		})
		tb.MustInput("input", 40*(64<<20)) // 40 maps over 72 slots
		tb.AddAntagonist(0, workloads.NewFioRandRead(
			workloads.BurstPattern{StartOffset: 10 * time.Second, On: 25 * time.Second, Off: 10 * time.Second}))

		// Terasort jobs back-to-back for four minutes; average the JCTs.
		var jcts []float64
		job, err := tb.JT.Submit(mapreduce.Terasort("input", 12), 0)
		if err != nil {
			panic(err)
		}
		for tb.Eng.Clock().Seconds() < 240 {
			tb.Eng.Step()
			if job.Done() {
				jcts = append(jcts, job.JCT())
				job, err = tb.JT.Submit(mapreduce.Terasort("input", 12), tb.Eng.Clock().Seconds())
				if err != nil {
					panic(err)
				}
			}
		}
		var sum float64
		for _, v := range jcts {
			sum += v
		}
		rows[si] = HeteroRow{Scheme: sch.Name, MeanJCT: sum / float64(len(jcts))}
	})
	return HeteroResult{Rows: rows}
}

// Row returns the named scheme's row.
func (r HeteroResult) Row(name string) HeteroRow {
	for _, row := range r.Rows {
		if row.Scheme == name {
			return row
		}
	}
	return HeteroRow{}
}

// Table renders the heterogeneous-fleet comparison.
func (r HeteroResult) Table() *trace.Table {
	base := r.Row("default").MeanJCT
	t := trace.New("Extension (§IV-D2): heterogeneous fleet (2 of 6 servers at half speed) + fio antagonist",
		"scheme", "mean JCT (s)", "norm JCT")
	for _, row := range r.Rows {
		t.Addf(row.Scheme, row.MeanJCT, row.MeanJCT/base)
	}
	return t
}

// MigrationResult reports the two-colliding-apps experiment.
type MigrationResult struct {
	JCTWithout  float64 // mean JCT, migration disabled
	JCTWith     float64 // mean JCT, migration enabled
	Migrations  int     // VM moves performed by the cloud manager
	FinalSpread int     // servers hosting app VMs at the end (with migration)
}

// Migration colocates two high-priority MapReduce applications on one
// server of a two-server cloud. Their mutual disk contention raises the
// deviation signal, but there is no low-priority VM to throttle — the
// node manager escalates and the cloud manager migrates VMs of one app
// to the idle server (§III-D2's complementary solution).
func Migration(seed int64) MigrationResult {
	run := func(enable bool) (float64, int, int) {
		eng := sim.NewEngine(100*time.Millisecond, seed)
		clus := cluster.New()
		cm := cloud.NewManager(clus, eng.RNG())
		cm.ProvisionServers(2)

		var poolA, poolB exec.Pool
		var namesA, namesB []string
		for i := 0; i < 4; i++ {
			a, err := cm.Boot(cloud.VMSpec{Name: fmt.Sprintf("a-%d", i), ServerID: "server-0",
				Priority: cluster.HighPriority, AppID: "app-a"})
			if err != nil {
				panic(err)
			}
			poolA = append(poolA, exec.NewExecutor(a, 2))
			namesA = append(namesA, a.ID())
			bvm, err := cm.Boot(cloud.VMSpec{Name: fmt.Sprintf("b-%d", i), ServerID: "server-0",
				Priority: cluster.HighPriority, AppID: "app-b"})
			if err != nil {
				panic(err)
			}
			poolB = append(poolB, exec.NewExecutor(bvm, 2))
			namesB = append(namesB, bvm.ID())
		}
		fsA := dfs.New(dfs.DefaultConfig(), namesA, sim.NewSeededRand(seed+1))
		fsB := dfs.New(dfs.DefaultConfig(), namesB, sim.NewSeededRand(seed+2))
		fsA.Create("input", 8*(64<<20))
		fsB.Create("input", 8*(64<<20))
		jtA := mapreduce.NewJobTracker(poolA, fsA, nil)
		jtB := mapreduce.NewJobTracker(poolB, fsB, nil)
		eng.RegisterPriority(jtA, -1)
		eng.RegisterPriority(jtB, -1)
		eng.RegisterPriority(clus, 0)
		cfg := core.DefaultConfig()
		cfg.EnableMigration = enable
		sys := core.Attach(eng, clus, cm, cfg)

		// Both apps run shuffle-heavy terasorts: reduce-side fetches are
		// many small segments (random I/O), so the colliding apps disturb
		// each other's iowait deviation — the signal that makes the node
		// manager escalate when it finds no low-priority VM to throttle.
		jobCfg := mapreduce.Terasort("input", 4)
		jobCfg.ReduceShape.OpBytes = 32 << 10

		var jcts []float64
		jobA, _ := jtA.Submit(jobCfg, 0)
		jobB, _ := jtB.Submit(jobCfg, 0)
		for eng.Clock().Seconds() < 180 {
			eng.Step()
			now := eng.Clock().Seconds()
			if jobA.Done() {
				jcts = append(jcts, jobA.JCT())
				jobA, _ = jtA.Submit(jobCfg, now)
			}
			if jobB.Done() {
				jcts = append(jcts, jobB.JCT())
				jobB, _ = jtB.Submit(jobCfg, now)
			}
		}
		moves := 0
		sys.EachManager(func(nm *core.NodeManager) {
			moves += len(nm.Migrations())
		})
		spread := map[string]bool{}
		for _, id := range append(append([]string(nil), namesA...), namesB...) {
			spread[clus.FindVM(id).Server().ID()] = true
		}
		var sum float64
		for _, v := range jcts {
			sum += v
		}
		return sum / float64(len(jcts)), moves, len(spread)
	}
	// The two arms are independent engines; run them concurrently.
	type arm struct {
		jct    float64
		moves  int
		spread int
	}
	arms := make([]arm, 2)
	forEachRun(len(arms), func(i int) {
		a := &arms[i]
		a.jct, a.moves, a.spread = run(i == 1)
	})
	return MigrationResult{
		JCTWithout:  arms[0].jct,
		JCTWith:     arms[1].jct,
		Migrations:  arms[1].moves,
		FinalSpread: arms[1].spread,
	}
}

// Table renders the migration experiment.
func (r MigrationResult) Table() *trace.Table {
	t := trace.New("Extension (§III-D2): two colliding high-priority apps, migration escalation",
		"migration", "mean JCT (s)", "migrations", "servers used")
	t.Addf("disabled", r.JCTWithout, 0, 1)
	t.Addf("enabled", r.JCTWith, r.Migrations, r.FinalSpread)
	return t
}
