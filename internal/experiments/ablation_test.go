package experiments

import (
	"strings"
	"testing"

	"perfcloud/internal/core"
)

func TestAblationControlStability(t *testing.T) {
	r := AblationControl(seed)
	cubic := r.Row("cubic")
	aimd := r.Row("aimd")
	static := r.Row("static")
	if cubic.JCT == 0 || aimd.JCT == 0 || static.JCT == 0 {
		t.Fatalf("missing rows: %+v", r)
	}
	// Both dynamic policies must actually throttle.
	if cubic.Decreases == 0 || aimd.Decreases == 0 {
		t.Errorf("decreases: cubic=%d aimd=%d, want > 0", cubic.Decreases, aimd.Decreases)
	}
	// AIMD's sawtooth re-enters contention repeatedly: it should show at
	// least as many decrease events as CUBIC, whose plateau holds the cap
	// near the last known-good value.
	if aimd.Decreases < cubic.Decreases {
		t.Errorf("AIMD decreases %d < CUBIC %d; expected sawtooth oscillation",
			aimd.Decreases, cubic.Decreases)
	}
	if !strings.Contains(r.Table().String(), "cubic") {
		t.Error("table rendering")
	}
}

func TestAblationPearsonRule(t *testing.T) {
	r := AblationPearson(seed)
	// The classical rule over-emphasises the three coincidentally aligned
	// samples and flags the decoy; the paper's rule does not.
	if r.OmitMissing < r.Threshold {
		t.Errorf("omit-missing r = %v, expected the decoy to be (wrongly) flagged", r.OmitMissing)
	}
	if r.MissingAsZero >= r.Threshold {
		t.Errorf("missing-as-zero r = %v, expected below threshold %v", r.MissingAsZero, r.Threshold)
	}
	if !strings.Contains(r.Table().String(), "missing-as-zero") {
		t.Error("table rendering")
	}
}

func TestAblationDetectorFalsePositives(t *testing.T) {
	r := AblationDetector(seed)
	// Deviation detection: quiet alone and next to the benign neighbour,
	// loud with fio.
	if r.DevAlone > 0.1 {
		t.Errorf("deviation detector flags alone = %v", r.DevAlone)
	}
	if r.DevFio < 0.3 {
		t.Errorf("deviation detector hit rate with fio = %v, want substantial", r.DevFio)
	}
	// The absolute detector flags the harmless oltp neighbour (any load
	// raises the mean), which would trigger unwarranted throttling; the
	// deviation detector stays far quieter there.
	if r.AbsOLTP < r.DevOLTP+0.2 {
		t.Errorf("absolute detector on benign oltp = %v vs deviation %v; expected heavy false positives",
			r.AbsOLTP, r.DevOLTP)
	}
	if r.AbsFio < 0.3 {
		t.Errorf("absolute detector with fio = %v, should also fire", r.AbsFio)
	}
	if !strings.Contains(r.Table().String(), "deviation") {
		t.Error("table rendering")
	}
}

func TestAIMDPolicy(t *testing.T) {
	a := core.NewAIMD(0.5, 0.1, 1)
	a.MinCap = 0.1
	a.MaxCap = 2
	if got := a.Update(1, true); got != 0.5 {
		t.Errorf("decrease = %v, want 0.5", got)
	}
	if got := a.Update(2, false); got != 0.6 {
		t.Errorf("increase = %v, want 0.6", got)
	}
	for i := int64(3); i < 40; i++ {
		a.Update(i, false)
	}
	if a.Cap() != 2 {
		t.Errorf("cap = %v, want clamped at MaxCap 2", a.Cap())
	}
	for i := int64(40); i < 60; i++ {
		a.Update(i, true)
	}
	if a.Cap() != 0.1 {
		t.Errorf("cap = %v, want floored at MinCap 0.1", a.Cap())
	}
}

func TestAIMDPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { core.NewAIMD(0, 0.1, 1) },
		func() { core.NewAIMD(1, 0.1, 1) },
		func() { core.NewAIMD(0.5, 0, 1) },
		func() { core.NewAIMD(0.5, 0.1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAblationEWMA(t *testing.T) {
	r := AblationEWMA(seed)
	// Raw deltas are noisier: their alone peak sits closer to (or past)
	// the threshold than the smoothed signal's.
	if r.RawAlonePeak <= r.SmoothedAlonePeak {
		t.Errorf("raw alone peak %v should exceed smoothed %v", r.RawAlonePeak, r.SmoothedAlonePeak)
	}
	if r.SmoothedAlonePeak > r.Threshold {
		t.Errorf("smoothed alone peak %v above threshold", r.SmoothedAlonePeak)
	}
	// Both must still catch fio.
	if r.SmoothedFioFlag < 0.3 || r.RawFioFlag < 0.3 {
		t.Errorf("coverage smoothed=%v raw=%v", r.SmoothedFioFlag, r.RawFioFlag)
	}
	if !strings.Contains(r.Table().String(), "EWMA") {
		t.Error("table rendering")
	}
}
