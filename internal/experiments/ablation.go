package experiments

import (
	"math"
	"time"

	"perfcloud/internal/core"
	"perfcloud/internal/obs"
	"perfcloud/internal/stats"
	"perfcloud/internal/trace"
	"perfcloud/internal/workloads"
)

// This file implements the ablation studies of DESIGN.md §4: each design
// decision in PerfCloud is compared against its obvious alternative on
// the scenario where the difference matters.

// AblationControlRow is one control policy's outcome on the Fig 9
// scenario.
type AblationControlRow struct {
	Policy     string
	JCT        float64
	Decreases  int     // cap-decrease events on the fio controller
	CapStdDev  float64 // std-dev of the applied fio cap while throttled
	FioIOPS    float64
	PeakIowait float64
	// Score grades the policy's cap decisions against ground truth; nil
	// unless scorecards are enabled (SetScorecards).
	Score *obs.Scorecard
}

// AblationControlResult compares CUBIC (the paper's Eq. 1), AIMD and the
// hand-tuned static cap on the dynamic-control scenario — design
// decision D3. The paper's argument: CUBIC's plateau region avoids the
// oscillation AIMD exhibits around the contention boundary.
type AblationControlResult struct {
	Rows []AblationControlRow
}

// AblationControl runs the three policies, each an independent testbed,
// concurrently (bounded by MaxParallelRuns).
func AblationControl(seed int64) AblationControlResult {
	policies := []string{"cubic", "aimd", "static"}
	rows := make([]AblationControlRow, len(policies))
	forEachRun(len(policies), func(i int) {
		rows[i] = ablationControlRun(seed, policies[i])
	})
	return AblationControlResult{Rows: rows}
}

func ablationControlRun(seed int64, policy string) AblationControlRow {
	pc := ControllerConfig()
	switch policy {
	case "aimd":
		pc.NewPolicy = func() core.CapPolicy {
			a := core.NewAIMD(0.8, 0.25, 1)
			a.MinCap = pc.MinCapFraction
			a.MaxCap = pc.ReleaseFactor
			return a
		}
	case "static":
		pc = ObserverConfig()
	}
	scoring := scorecardsOn()
	var col *obs.Collector
	if scoring {
		col = obs.NewCollector()
		pc.Events = col
	}
	tb := NewTestbed(TestbedConfig{Seed: seed, WorkersPerServer: fig9Workers, PerfCloud: pc})
	fio := workloads.NewFioRandRead(workloads.BurstPattern{
		StartOffset: 15 * time.Second, On: 60 * time.Second, Off: 15 * time.Second})
	tb.AddAntagonist(0, fio)
	if policy == "static" {
		tb.CapAntagonistIOPS("fio-randread", 0.2, FioSoloIOPS)
	}
	appCfg := fig9App()
	app := tb.RunSpark(appCfg, fig9Limit)

	row := AblationControlRow{Policy: policy, JCT: app.JCT(), FioIOPS: fio.AchievedIOPS()}
	var caps []float64
	prev := math.Inf(1)
	for _, e := range tb.Sys.Managers()[0].Trace() {
		if e.IowaitDev > row.PeakIowait {
			row.PeakIowait = e.IowaitDev
		}
		if c, ok := e.IOCaps["fio-randread"]; ok {
			caps = append(caps, c)
			if c < prev {
				row.Decreases++
			}
			prev = c
		} else {
			prev = math.Inf(1)
		}
	}
	row.CapStdDev = stats.StdDev(caps)
	if scoring {
		row.Score = scoreRun(tb, col, policy, tb.Eng.Clock().Seconds())
	}
	return row
}

// Table renders the control-policy ablation.
func (r AblationControlResult) Table() *trace.Table {
	t := trace.New("Ablation D3: cap-control policy on the dynamic-control scenario",
		"policy", "JCT (s)", "cap decreases", "cap stddev", "fio IOPS", "peak iowait dev")
	for _, row := range r.Rows {
		t.Addf(row.Policy, row.JCT, row.Decreases, row.CapStdDev, row.FioIOPS, row.PeakIowait)
	}
	return t
}

// ScorecardTable renders the per-policy detection scorecards (empty
// unless the run had SetScorecards enabled).
func (r AblationControlResult) ScorecardTable() *trace.Table {
	var cards []*obs.Scorecard
	for _, row := range r.Rows {
		cards = append(cards, row.Score)
	}
	return scorecardTable("Ablation D3 scorecards: cap decisions vs ground truth", cards)
}

// Row returns the named policy's row.
func (r AblationControlResult) Row(policy string) AblationControlRow {
	for _, row := range r.Rows {
		if row.Policy == policy {
			return row
		}
	}
	return AblationControlRow{}
}

// AblationPearsonResult compares the paper's missing-as-zero Pearson
// rule against classical pair omission — design decision D2 — on a
// sparse suspect trace: a decoy active in only a few intervals that
// coincidentally align with victim deviation.
type AblationPearsonResult struct {
	MissingAsZero float64 // correlation assigned to the sparse decoy
	OmitMissing   float64
	Threshold     float64
}

// AblationPearson constructs the §III-B situation directly: a decoy
// reports measurements in only 3 of 12 intervals. Within those three its
// values happen to track the victim's — but its activity does not align
// with the victim's actual deviation spikes (it is idle during them).
// Omission computes the correlation over just the three aligned pairs
// and over-emphasises the similarity; the paper's rule counts the idle
// intervals as zero and correctly rejects the decoy.
func AblationPearson(int64) AblationPearsonResult {
	nan := math.NaN()
	victim := []float64{10, 2, 8, 25, 3, 9, 2, 30, 2, 28, 3, 2}
	decoy := []float64{9e6, nan, 7.5e6, nan, nan, 8.5e6, nan, nan, nan, nan, nan, nan}
	mz, err1 := stats.PearsonMissingAsZero(victim, decoy)
	om, err2 := stats.PearsonOmitMissing(victim, decoy)
	if err1 != nil || err2 != nil {
		panic("experiments: ablation pearson inputs invalid")
	}
	return AblationPearsonResult{
		MissingAsZero: mz,
		OmitMissing:   om,
		Threshold:     core.DefaultConfig().CorrThreshold,
	}
}

// Table renders the Pearson-rule ablation.
func (r AblationPearsonResult) Table() *trace.Table {
	t := trace.New("Ablation D2: Pearson missing-value handling on a mostly-idle decoy",
		"rule", "correlation", "flagged?")
	t.Addf("missing-as-zero (paper)", r.MissingAsZero, r.MissingAsZero >= r.Threshold)
	t.Addf("omit-missing (classical)", r.OmitMissing, r.OmitMissing >= r.Threshold)
	return t
}

// AblationDetectorResult compares deviation-based detection (D1) against
// an absolute-threshold detector (flag when the mean iowait ratio
// exceeds a calibrated level) on three scenarios: the application alone,
// with a benign moderate-I/O neighbour (sysbench oltp — it shares the
// disk but causes no meaningful harm), and with the fio antagonist.
// Both detectors are calibrated the same way the paper calibrates H:
// 1.3x the peak value observed with no colocated VM.
type AblationDetectorResult struct {
	// Fractions of victim-active intervals flagged per scenario.
	DevAlone, DevOLTP, DevFio float64
	AbsAlone, AbsOLTP, AbsFio float64
	DevThreshold              float64
	AbsThreshold              float64
}

// AblationDetector runs the three scenarios. The expected outcome: the
// deviation detector ignores the benign neighbour (even work spread
// means even waits), while the absolute detector — whose signal rises
// with any extra load on the device — flags it, forcing unwarranted
// throttling.
func AblationDetector(seed int64) AblationDetectorResult {
	run := func(neighbour string) []core.TraceEntry {
		cfg := TestbedConfig{Seed: seed, PerfCloud: ObserverConfig()}
		tb := smallTestbed(seed, &cfg)
		switch neighbour {
		case "oltp":
			tb.AddAntagonist(0, workloads.NewSysbenchOLTP(workloads.AlwaysOn))
		case "fio":
			tb.AddAntagonist(0, workloads.NewFioRandRead(
				workloads.BurstPattern{StartOffset: 10 * time.Second, On: 20 * time.Second, Off: 10 * time.Second}))
		}
		runBackToBack(tb, Bench{Name: "terasort"}, 2*time.Minute)
		return tb.Sys.Managers()[0].Trace()
	}
	alone := run("none")
	oltp := run("oltp")
	fio := run("fio")

	var res AblationDetectorResult
	var peakDev, peakMean float64
	for _, e := range alone {
		peakDev = math.Max(peakDev, e.IowaitDev)
		peakMean = math.Max(peakMean, e.MeanIowait)
	}
	res.DevThreshold = 1.3 * peakDev
	res.AbsThreshold = 1.3 * peakMean

	frac := func(trace []core.TraceEntry, abs bool) float64 {
		n, hits := 0, 0
		for _, e := range trace {
			if e.MeanIowait == 0 {
				continue // no victim I/O this interval
			}
			n++
			if abs && e.MeanIowait > res.AbsThreshold {
				hits++
			}
			if !abs && e.IowaitDev > res.DevThreshold {
				hits++
			}
		}
		if n == 0 {
			return 0
		}
		return float64(hits) / float64(n)
	}
	res.DevAlone, res.AbsAlone = frac(alone, false), frac(alone, true)
	res.DevOLTP, res.AbsOLTP = frac(oltp, false), frac(oltp, true)
	res.DevFio, res.AbsFio = frac(fio, false), frac(fio, true)
	return res
}

// Table renders the detector ablation.
func (r AblationDetectorResult) Table() *trace.Table {
	t := trace.New("Ablation D1: deviation vs absolute-mean detection (fraction of active intervals flagged; thresholds calibrated at 1.3x alone-peak)",
		"detector", "alone", "benign oltp", "fio antagonist")
	t.Addf("cross-VM deviation (paper)", trace.Pct(r.DevAlone), trace.Pct(r.DevOLTP), trace.Pct(r.DevFio))
	t.Addf("absolute mean threshold", trace.Pct(r.AbsAlone), trace.Pct(r.AbsOLTP), trace.Pct(r.AbsFio))
	return t
}

// AblationEWMAResult compares EWMA-smoothed detection signals (D4, the
// paper's §III-D1 monitor design) against raw 5-second deltas, on the
// terasort scenario alone and with fio.
type AblationEWMAResult struct {
	// Peak iowait deviation when running alone (false-positive risk) and
	// fraction of victim-active intervals flagged with fio (coverage).
	SmoothedAlonePeak float64
	RawAlonePeak      float64
	SmoothedFioFlag   float64
	RawFioFlag        float64
	Threshold         float64
}

// AblationEWMA runs both monitor configurations on both scenarios.
func AblationEWMA(seed int64) AblationEWMAResult {
	run := func(alpha float64, withFio bool) (peak, flagged float64) {
		pcfg := core.DefaultConfig()
		pcfg.ObserveOnly = true
		pcfg.EWMAAlpha = alpha
		cfg := TestbedConfig{Seed: seed, PerfCloud: &pcfg}
		tb := smallTestbed(seed, &cfg)
		if withFio {
			tb.AddAntagonist(0, workloads.NewFioRandRead(
				workloads.BurstPattern{StartOffset: 10 * time.Second, On: 20 * time.Second, Off: 10 * time.Second}))
		}
		runBackToBack(tb, Bench{Name: "terasort"}, 2*time.Minute)
		n, hits := 0, 0
		for _, e := range tb.Sys.Managers()[0].Trace() {
			peak = math.Max(peak, e.IowaitDev)
			if e.MeanIowait > 0 {
				n++
				if e.IOContention {
					hits++
				}
			}
		}
		if n > 0 {
			flagged = float64(hits) / float64(n)
		}
		return peak, flagged
	}
	var res AblationEWMAResult
	res.Threshold = core.DefaultThresholds().Iowait
	res.SmoothedAlonePeak, _ = run(core.DefaultConfig().EWMAAlpha, false)
	res.RawAlonePeak, _ = run(1.0, false)
	_, res.SmoothedFioFlag = run(core.DefaultConfig().EWMAAlpha, true)
	_, res.RawFioFlag = run(1.0, true)
	return res
}

// Table renders the EWMA ablation.
func (r AblationEWMAResult) Table() *trace.Table {
	t := trace.New("Ablation D4: EWMA smoothing of the detection signals (threshold 10)",
		"monitor", "alone peak dev", "fio intervals flagged")
	t.Addf("EWMA-smoothed (paper)", r.SmoothedAlonePeak, trace.Pct(r.SmoothedFioFlag))
	t.Addf("raw 5s deltas", r.RawAlonePeak, trace.Pct(r.RawFioFlag))
	return t
}
