package experiments

import (
	"reflect"
	"testing"
	"time"

	"perfcloud/internal/cluster"
)

// setQuiescence forces the quiescence fast path on or off for the
// duration of a test.
func setQuiescence(t *testing.T, enabled bool) {
	t.Helper()
	prev := cluster.SetDefaultQuiescence(enabled)
	t.Cleanup(func() { cluster.SetDefaultQuiescence(prev) })
}

// TestQuiescenceMatchesFullPipeline is the determinism contract of the
// quiescence fast path: skipping the grant phase of servers whose VMs
// are all idle must produce results bit-for-bit identical to ticking
// every server every tick. The scenarios below all contain idle
// stretches — servers waiting for task waves, antagonists between
// bursts, finished frameworks draining — so both the skip and the
// wake-up catch-up paths are exercised.
func TestQuiescenceMatchesFullPipeline(t *testing.T) {
	const s = seed

	smallVariability := VariabilityConfig{
		Seed:             s,
		Servers:          3,
		WorkersPerServer: 6,
		Runs:             3,
		Fio:              2,
		Streams:          2,
		Tasks:            18,
		Limit:            time.Hour,
	}
	mix := smallMix()
	mix.NumMR, mix.NumSpark = 4, 4

	cases := []struct {
		name string
		run  func() any
	}{
		{"Fig3", func() any { return Fig3(s) }},
		{"Fig11", func() any { return Fig11With(mix, []Scheme{SchemeLATE()}) }},
		{"Fig12", func() any { return Fig12With(smallVariability, []Scheme{SchemeLATE(), SchemePerfCloud()}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			setQuiescence(t, false)
			full := tc.run()

			setQuiescence(t, true)
			skipping := tc.run()

			if !reflect.DeepEqual(full, skipping) {
				t.Errorf("quiescence-skipping result differs from full pipeline:\nfull: %+v\nskip: %+v", full, skipping)
			}
		})
	}
}
