package experiments

import (
	"time"

	"perfcloud/internal/mapreduce"
	"perfcloud/internal/spark"
)

// Bench names one of the paper's six application benchmarks: terasort,
// wordcount and inverted-index from PUMA; pagerank, logistic regression
// and svm from SparkBench (§IV-A).
type Bench struct {
	Name  string
	Spark bool
}

// Benches lists all six in the paper's order.
func Benches() []Bench {
	return []Bench{
		{Name: "terasort"},
		{Name: "wordcount"},
		{Name: "inverted-index"},
		{Name: "spark-pagerank", Spark: true},
		{Name: "spark-logreg", Spark: true},
		{Name: "spark-svm", Spark: true},
	}
}

// standardInputBytes is the small-scale input: ten 64 MB blocks, giving
// the "10 map tasks" jobs of §III-A.
const standardInputBytes = 640 << 20

// runLimit bounds any single small-scale job (simulated time).
const runLimit = 30 * time.Minute

// RunBench runs one canonical small-scale instance of the named
// benchmark on the testbed and returns its completion time in seconds.
// The testbed must have an input file named "input" for MapReduce jobs.
func RunBench(tb *Testbed, b Bench) float64 {
	if b.Spark {
		return tb.RunSpark(sparkConfig(b.Name), runLimit).JCT()
	}
	return tb.RunMR(mrConfig(b.Name), runLimit).JCT()
}

// mrConfig maps a benchmark name to its canonical job configuration.
func mrConfig(name string) mapreduce.JobConfig {
	switch name {
	case "terasort":
		return mapreduce.Terasort("input", 10)
	case "wordcount":
		return mapreduce.Wordcount("input", 10)
	case "inverted-index":
		return mapreduce.InvertedIndex("input", 10)
	}
	panic("experiments: unknown MapReduce benchmark " + name)
}

// sparkConfig maps a benchmark name to its canonical app configuration.
func sparkConfig(name string) spark.AppConfig {
	switch name {
	case "spark-pagerank":
		return spark.PageRank(10, 3, standardInputBytes)
	case "spark-logreg":
		return spark.LogisticRegression(10, 4, standardInputBytes)
	case "spark-svm":
		return spark.SVM(10, 3, standardInputBytes)
	case "spark-logreg-mem":
		// Long-running variant used by the §III-B identification case
		// study: a short load followed by enough memory-resident passes to
		// span the whole measurement window, so the victim signal is not
		// modulated by job restarts and disk-load phases.
		return spark.LogisticRegression(10, 60, 128<<20)
	}
	panic("experiments: unknown Spark benchmark " + name)
}

// smallTestbed builds the canonical 6-VM single-server testbed with the
// standard input file.
func smallTestbed(seed int64, pc *TestbedConfig) *Testbed {
	cfg := TestbedConfig{Seed: seed}
	if pc != nil {
		cfg = *pc
		cfg.Seed = seed
	}
	tb := NewTestbed(cfg)
	tb.MustInput("input", standardInputBytes)
	return tb
}
