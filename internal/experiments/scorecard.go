package experiments

import (
	"fmt"
	"sync/atomic"

	"perfcloud/internal/obs"
	"perfcloud/internal/trace"
)

// Detection-quality scorecards: when enabled, every experiment run that
// deploys PerfCloud attaches an event collector and, after the run,
// grades the audit-event stream against the testbed's ground-truth
// registry — precision, recall, false-cap rate, time-to-detect, cap
// dwell. Off by default: with the gate off no collector is attached, no
// events are retained, and runs are bit-identical to a build without
// this file (the PR-5 invariant; TestScorecardsDoNotChangeResults).
var scorecardsEnabled atomic.Bool

// SetScorecards toggles scorecard collection and returns the previous
// setting.
func SetScorecards(on bool) bool { return scorecardsEnabled.Swap(on) }

// scorecardsOn reports whether scorecards are being collected.
func scorecardsOn() bool { return scorecardsEnabled.Load() }

// scoreRun grades one finished run. col may be nil (a scheme with no
// control plane — LATE, Dolly): the card then reports zero detections
// against the full ground-truth denominator, which is exactly right for
// a scheme that never detects anything. endSec is the run horizon used
// to close cap episodes still open at the end.
func scoreRun(tb *Testbed, col *obs.Collector, scheme string, endSec float64) *obs.Scorecard {
	var events []obs.Event
	if col != nil {
		events = col.Events()
	}
	sc := obs.Score(events, tb.Truth, endSec)
	sc.Scheme = scheme
	return &sc
}

// scorecardTable renders a set of cards as one table, skipping nils.
func scorecardTable(title string, cards []*obs.Scorecard) *trace.Table {
	t := trace.New(title,
		"scheme", "antagonists", "detected", "capped VMs", "precision", "recall",
		"false-cap rate", "mean TTD", "cap dwell", "false dwell", "JCT recovery")
	for _, sc := range cards {
		if sc == nil {
			continue
		}
		recovery := ""
		if sc.JCTRecovery > 0 {
			recovery = fmt.Sprintf("%.3f", sc.JCTRecovery)
		}
		t.Addf(sc.Scheme,
			sc.TotalAntagonists,
			sc.DetectedAntagonists,
			sc.CappedVMs,
			fmt.Sprintf("%.3f", sc.Precision),
			fmt.Sprintf("%.3f", sc.Recall),
			fmt.Sprintf("%.3f", sc.FalseCapRate),
			fmt.Sprintf("%.1fs", sc.MeanTimeToDetectSec),
			fmt.Sprintf("%.1fs", sc.CapDwellSec),
			fmt.Sprintf("%.1fs", sc.FalseCapDwellSec),
			recovery)
	}
	return t
}
