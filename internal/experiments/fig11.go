package experiments

import (
	"fmt"
	"time"

	"perfcloud/internal/core"
	"perfcloud/internal/exec"
	"perfcloud/internal/mapreduce"
	"perfcloud/internal/obs"
	"perfcloud/internal/sim"
	"perfcloud/internal/spark"
	"perfcloud/internal/stats"
	"perfcloud/internal/straggler"
	"perfcloud/internal/trace"
	"perfcloud/internal/workloads"
)

// Scheme is one straggler-mitigation / isolation policy under test.
type Scheme struct {
	Name       string
	Speculator exec.Speculator
	Clones     int // >1 enables Dolly-style job cloning
	PerfCloud  bool
	// CloneTaskThreshold bounds which jobs Dolly clones: Dolly is a
	// small-job technique (the paper: "full cloning of small jobs"), so
	// only jobs with at most this many tasks get clones. 0 means the
	// Dolly default of 10.
	CloneTaskThreshold int
}

// cloneThreshold resolves the small-job cutoff.
func (s Scheme) cloneThreshold() int {
	if s.CloneTaskThreshold == 0 {
		return 10
	}
	return s.CloneTaskThreshold
}

// SchemeDefault is the unmitigated system.
func SchemeDefault() Scheme { return Scheme{Name: "default", Clones: 1} }

// SchemeLATE applies LATE speculative execution.
func SchemeLATE() Scheme { return Scheme{Name: "LATE", Speculator: straggler.NewLATE(), Clones: 1} }

// SchemeDolly clones every job n times and takes the first finisher.
func SchemeDolly(n int) Scheme { return Scheme{Name: fmt.Sprintf("Dolly-%d", n), Clones: n} }

// SchemePerfCloud deploys the paper's system.
func SchemePerfCloud() Scheme { return Scheme{Name: "PerfCloud", Clones: 1, PerfCloud: true} }

// LargeScaleConfig sizes the Figure 11 experiment.
type LargeScaleConfig struct {
	Seed             int64
	Servers          int
	WorkersPerServer int
	NumMR            int
	NumSpark         int
	Fio              int // fio antagonist VMs, randomly placed
	Streams          int // STREAM antagonist VMs, randomly placed
	InterarrivalSec  float64
	Limit            time.Duration
}

// DefaultLargeScaleConfig mirrors the paper's 152-node / 15-server setup
// with its 100 MapReduce + 100 Spark workload mixes (80% small jobs).
func DefaultLargeScaleConfig() LargeScaleConfig {
	return LargeScaleConfig{
		Seed:             1,
		Servers:          15,
		WorkersPerServer: 10,
		NumMR:            100,
		NumSpark:         100,
		Fio:              6,
		Streams:          6,
		InterarrivalSec:  5,
		Limit:            4 * time.Hour,
	}
}

// jobSpec is one logical job of the mix.
type jobSpec struct {
	idx       int
	spark     bool
	bench     int // index into the framework's benchmark triple
	tasks     int
	arriveSec float64
}

// generateMix derives the deterministic workload mix: 80% of jobs have
// fewer than 10 tasks, 20% have 10-50 (§IV-C).
func generateMix(cfg LargeScaleConfig) []jobSpec {
	rng := sim.NewSeededRand(cfg.Seed + 7)
	var specs []jobSpec
	add := func(n int, spark bool) {
		for i := 0; i < n; i++ {
			tasks := 2 + rng.Intn(8) // 2..9
			if rng.Float64() < 0.2 {
				tasks = 10 + rng.Intn(41) // 10..50
			}
			specs = append(specs, jobSpec{spark: spark, bench: rng.Intn(3), tasks: tasks})
		}
	}
	add(cfg.NumMR, false)
	add(cfg.NumSpark, true)
	rng.Shuffle(len(specs), func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })
	for i := range specs {
		specs[i].idx = i
		specs[i].arriveSec = float64(i) * cfg.InterarrivalSec
	}
	return specs
}

// Mix jobs use large (256 MB) blocks and a compute multiplier for Spark
// iterations so small jobs run tens of seconds, as the paper's real
// Hadoop/Spark jobs do, rather than the few seconds a bare fluid model
// would take. Without realistic durations no scheme — speculation,
// cloning or throttling at a 5-second control interval — has time to act
// within a job's lifetime.
const (
	mixBlockBytes = 256 << 20
	mixWorkScale  = 4
)

// mrFor builds the MapReduce config for a spec (input file per size).
func mrFor(s jobSpec) mapreduce.JobConfig {
	input := fmt.Sprintf("mix-input-%02d", s.tasks)
	reduces := s.tasks / 2
	if reduces < 1 {
		reduces = 1
	}
	switch s.bench {
	case 0:
		return mapreduce.Terasort(input, reduces)
	case 1:
		return mapreduce.Wordcount(input, reduces)
	default:
		return mapreduce.InvertedIndex(input, reduces)
	}
}

// sparkFor builds the Spark config for a spec. The load stage carries a
// per-logical-job input key so clone re-reads hit the page cache.
func sparkFor(s jobSpec) spark.AppConfig {
	bytes := float64(s.tasks) * mixBlockBytes
	var cfg spark.AppConfig
	switch s.bench {
	case 0:
		cfg = spark.LogisticRegression(s.tasks, 2, bytes)
	case 1:
		cfg = spark.PageRank(s.tasks, 2, bytes)
	default:
		cfg = spark.SVM(s.tasks, 2, bytes)
	}
	cfg.Stages[0].InputKeyPrefix = fmt.Sprintf("mix-%03d", s.idx)
	for i := range cfg.Stages {
		cfg.Stages[i].InstrPerTask *= mixWorkScale
	}
	return cfg
}

// logicalJob tracks one mix entry's clones at runtime.
type logicalJob struct {
	spec  jobSpec
	group *straggler.CloneGroup
	mr    *mapreduce.Job
	app   *spark.App
}

func (l *logicalJob) done() bool {
	if l.group != nil {
		return l.group.Done()
	}
	if l.mr != nil {
		return l.mr.Done()
	}
	return l.app.Done()
}

func (l *logicalJob) jct() float64 {
	if l.group != nil {
		return l.group.JCT()
	}
	if l.mr != nil {
		return l.mr.JCT()
	}
	return l.app.JCT()
}

func (l *logicalJob) account(now float64) exec.Accounting {
	if l.group != nil {
		return l.group.Account(now)
	}
	if l.mr != nil {
		return l.mr.Account(now)
	}
	return l.app.Account(now)
}

// MixOutcome is one scheme's run over the mix.
type MixOutcome struct {
	Scheme     string
	JCTs       []float64 // per logical job, in mix order
	Efficiency float64
	// Phases aggregates per-attempt phase attribution for the run; zero
	// unless a trace directory is set (SetTraceDir).
	Phases trace.PhaseTotals
	// Score grades the run's cap decisions against ground truth; nil
	// unless scorecards are enabled (SetScorecards).
	Score *obs.Scorecard
	// Alerts summarises the run's alert-rule activity; nil unless rules
	// are installed (SetAlertRules) and the scheme deploys PerfCloud.
	Alerts *obs.AlertSummary
}

// runMix executes the mix under one scheme, optionally with antagonists.
func runMix(cfg LargeScaleConfig, sch Scheme, withAntagonists bool) MixOutcome {
	var pc *core.Config
	if sch.PerfCloud {
		pc = ControllerConfig()
	}
	tr := newRunTracer()
	scoring := scorecardsOn()
	rules := alertRules()
	var col *obs.Collector
	if pc != nil && (tr != nil || scoring || len(rules) > 0) {
		col = obs.NewCollector()
		pc.Events = col
	}
	var alerts *obs.AlertEngine
	if pc != nil && len(rules) > 0 {
		alerts = obs.NewAlertEngine(rules, col)
		pc.Alerts = alerts
	}
	tb := NewTestbed(TestbedConfig{
		Seed:             cfg.Seed,
		Servers:          cfg.Servers,
		WorkersPerServer: cfg.WorkersPerServer, BlockBytes: mixBlockBytes,
		Speculator: sch.Speculator,
		PerfCloud:  pc,
		Tracer:     tr,
	})
	alerts.SetGroundTruth(tb.Truth)
	specs := generateMix(cfg)
	// One input file per distinct map count keeps DFS setup cheap.
	sizes := map[int]bool{}
	for _, s := range specs {
		if !s.spark && !sizes[s.tasks] {
			sizes[s.tasks] = true
			tb.MustInput(fmt.Sprintf("mix-input-%02d", s.tasks), float64(s.tasks)*mixBlockBytes)
		}
	}
	if withAntagonists {
		placeAntagonists(tb, cfg)
	}

	jobs := make([]*logicalJob, len(specs))
	next := 0
	ticks := int64(cfg.Limit / tb.Eng.Clock().TickSize())
	st := tb.Stepper()
	for i := int64(0); i < ticks; {
		now := tb.Eng.Clock().Seconds()
		for next < len(specs) && specs[next].arriveSec <= now {
			jobs[next] = submitLogical(tb, specs[next], sch)
			next++
		}
		i += st.Step(func(clk *sim.Clock) int64 {
			// Strides stop short of the next arrival (its submission tick
			// must execute) and never start once the mix has drained.
			b := ticks - i - 1
			if next < len(specs) {
				if nb := clk.TicksBefore(specs[next].arriveSec, b); nb < b {
					b = nb
				}
			} else if allDone(jobs) {
				return 0
			}
			return b
		})
		if next == len(specs) && allDone(jobs) {
			break
		}
	}
	if !allDone(jobs) {
		panic(fmt.Sprintf("experiments: mix under %s did not drain within %v", sch.Name, cfg.Limit))
	}
	now := tb.Eng.Clock().Seconds()
	out := MixOutcome{Scheme: sch.Name}
	var acc exec.Accounting
	for _, j := range jobs {
		out.JCTs = append(out.JCTs, j.jct())
		a := j.account(now)
		acc.SuccessfulSeconds += a.SuccessfulSeconds
		acc.TotalSeconds += a.TotalSeconds
	}
	out.Efficiency = acc.Efficiency()
	if scoring && withAntagonists {
		out.Score = scoreRun(tb, col, sch.Name, now)
	}
	out.Alerts = alertSummaryFor(alerts)
	if tr != nil {
		out.Phases = tr.Totals()
		name := "fig11-" + sch.Name
		if !withAntagonists {
			name += "-baseline"
		}
		var events []obs.Event
		if col != nil {
			events = col.Events()
		}
		writeRunTrace(name, tr, events)
	}
	return out
}

// submitLogical submits one mix entry (n clones under Dolly).
func submitLogical(tb *Testbed, s jobSpec, sch Scheme) *logicalJob {
	now := tb.Eng.Clock().Seconds()
	lj := &logicalJob{spec: s}
	if sch.Clones <= 1 || s.tasks > sch.cloneThreshold() {
		if s.spark {
			a, err := tb.Driver.Submit(sparkFor(s), now)
			if err != nil {
				panic(err)
			}
			lj.app = a
		} else {
			j, err := tb.JT.Submit(mrFor(s), now)
			if err != nil {
				panic(err)
			}
			lj.mr = j
		}
		return lj
	}
	clones := make([]straggler.Clone, 0, sch.Clones)
	for c := 0; c < sch.Clones; c++ {
		if s.spark {
			a, err := tb.Driver.Submit(sparkFor(s), now)
			if err != nil {
				panic(err)
			}
			clones = append(clones, a)
		} else {
			j, err := tb.JT.Submit(mrFor(s), now)
			if err != nil {
				panic(err)
			}
			clones = append(clones, j)
		}
	}
	lj.group = tb.Dolly.Watch(fmt.Sprintf("job-%03d", s.idx), clones...)
	return lj
}

func allDone(jobs []*logicalJob) bool {
	for _, j := range jobs {
		if j == nil || !j.done() {
			return false
		}
	}
	return true
}

// placeAntagonists boots the fio and STREAM VMs on randomly chosen
// servers with randomized burst phases (the paper randomly distributes
// antagonists across the 15 physical servers).
func placeAntagonists(tb *Testbed, cfg LargeScaleConfig) {
	// Each antagonist is a sequence of minutes-long benchmark runs with
	// pauses in between, like the fio/STREAM processes the paper launches
	// repeatedly during a mix. Episodic activity also gives the
	// identification channel the onsets it correlates on.
	rng := sim.NewSeededRand(cfg.Seed + 31)
	for i := 0; i < cfg.Fio; i++ {
		pat := workloads.BurstPattern{
			StartOffset: time.Duration(rng.Intn(60)) * time.Second,
			On:          time.Duration(60+rng.Intn(60)) * time.Second,
			Off:         time.Duration(15+rng.Intn(20)) * time.Second,
		}
		tb.AddAntagonist(rng.Intn(cfg.Servers), workloads.NewFioRandRead(pat))
	}
	// STREAM VMs land in pairs on a server: one alone does not
	// oversubscribe a host's memory bandwidth — the paper's "group of
	// antagonists that individually do not have much effect" (§III-B).
	for i := 0; i < cfg.Streams; i += 2 {
		srv := rng.Intn(cfg.Servers)
		pat := workloads.BurstPattern{
			StartOffset: time.Duration(rng.Intn(60)) * time.Second,
			On:          time.Duration(60+rng.Intn(60)) * time.Second,
			Off:         time.Duration(15+rng.Intn(20)) * time.Second,
		}
		tb.AddAntagonist(srv, workloads.NewStream(pat))
		if i+1 < cfg.Streams {
			tb.AddAntagonist(srv, workloads.NewStream(pat))
		}
	}
}

// fig11Bounds are the degradation buckets of the paper's breakdown bars.
var fig11Bounds = []float64{0.10, 0.20, 0.30, 0.50}

// Fig11Row is one scheme's summary for one framework ("all" aggregates).
type Fig11Row struct {
	Scheme       string
	Framework    string // "all", "mapreduce" or "spark"
	Buckets      *stats.Histogram
	FracUnder10  float64 // jobs degraded < 10%
	FracUnder30  float64 // jobs degraded < 30%
	MeanDegraded float64 // mean degradation across jobs
	Efficiency   float64 // only populated on the "all" row
	// Phases carries the run's phase-attribution totals (only on the
	// "all" row, and only when a trace directory is set).
	Phases trace.PhaseTotals
	// Score is the scheme's detection scorecard (only on the "all" row,
	// and only when scorecards are enabled via SetScorecards).
	Score *obs.Scorecard
	// Alerts is the scheme's alert-rule summary (only on the "all" row,
	// and only when rules are installed via SetAlertRules).
	Alerts *obs.AlertSummary
}

// Fig11Result reproduces Figure 11: the per-framework job-performance
// breakdowns of Figs. 11(a) and 11(b) and the resource-utilization
// efficiency of Fig. 11(c), under LATE, Dolly-n and PerfCloud.
type Fig11Result struct {
	Rows []Fig11Row
}

// Fig11 runs the full paper-size experiment.
func Fig11(seed int64) Fig11Result {
	cfg := DefaultLargeScaleConfig()
	cfg.Seed = seed
	return Fig11With(cfg, []Scheme{
		SchemeLATE(), SchemeDolly(2), SchemeDolly(4), SchemeDolly(6), SchemePerfCloud(),
	})
}

// Fig11With runs a custom mix size and scheme list (tests shrink it).
// The interference-free baseline and the per-scheme mixes are independent
// engines, so they run concurrently (bounded by MaxParallelRuns), each
// writing its own slot; rows are then assembled in scheme order.
func Fig11With(cfg LargeScaleConfig, schemes []Scheme) Fig11Result {
	outs := make([]MixOutcome, len(schemes)+1)
	forEachRun(len(outs), func(i int) {
		if i == 0 {
			outs[i] = runMix(cfg, SchemeDefault(), false)
		} else {
			outs[i] = runMix(cfg, schemes[i-1], true)
		}
	})
	baseline := outs[0]
	specs := generateMix(cfg)
	var res Fig11Result
	for si, sch := range schemes {
		out := outs[si+1]
		rows := map[string]*Fig11Row{}
		for _, fw := range []string{"all", "mapreduce", "spark"} {
			rows[fw] = &Fig11Row{
				Scheme:    sch.Name,
				Framework: fw,
				Buckets:   stats.NewHistogram(fig11Bounds...),
			}
		}
		counts := map[string]int{}
		for i, jct := range out.JCTs {
			base := baseline.JCTs[i]
			if base <= 0 {
				continue
			}
			deg := jct/base - 1
			if deg < 0 {
				deg = 0
			}
			fw := "mapreduce"
			if specs[i].spark {
				fw = "spark"
			}
			for _, key := range []string{"all", fw} {
				row := rows[key]
				row.Buckets.Add(deg)
				row.MeanDegraded += deg
				counts[key]++
			}
		}
		for _, fw := range []string{"all", "mapreduce", "spark"} {
			row := rows[fw]
			if n := counts[fw]; n > 0 {
				row.MeanDegraded /= float64(n)
				row.FracUnder10 = row.Buckets.CumulativeFrac(0.10)
				row.FracUnder30 = row.Buckets.CumulativeFrac(0.30)
			}
			if fw == "all" {
				row.Efficiency = out.Efficiency
				row.Phases = out.Phases
				if out.Score != nil {
					sc := *out.Score
					// JCT recovery: total interference-free JCT over
					// this scheme's total — 1.0 means the scheme fully
					// recovered the baseline completion times.
					var sumBase, sumScheme float64
					for i, jct := range out.JCTs {
						sumBase += baseline.JCTs[i]
						sumScheme += jct
					}
					if sumScheme > 0 {
						sc.JCTRecovery = sumBase / sumScheme
					}
					row.Score = &sc
				}
				row.Alerts = out.Alerts
			}
			res.Rows = append(res.Rows, *row)
		}
	}
	return res
}

// Table renders the Figure 11 summary: one section per framework (the
// paper's 11a and 11b bars) plus the aggregate with efficiency (11c).
func (r Fig11Result) Table() *trace.Table {
	t := trace.New("Fig 11: large-scale mix — degradation breakdown (a: MapReduce, b: Spark) and efficiency (c)",
		"scheme", "jobs", "<10%", "<20%", "<30%", "<50%", "mean degradation", "efficiency")
	for _, fw := range []string{"mapreduce", "spark", "all"} {
		for _, row := range r.Rows {
			if row.Framework != fw {
				continue
			}
			eff := ""
			if fw == "all" {
				eff = trace.Pct(row.Efficiency)
			}
			t.Addf(row.Scheme+" ("+fw+")",
				row.Buckets.Total(),
				trace.Pct(row.Buckets.CumulativeFrac(0.10)),
				trace.Pct(row.Buckets.CumulativeFrac(0.20)),
				trace.Pct(row.Buckets.CumulativeFrac(0.30)),
				trace.Pct(row.Buckets.CumulativeFrac(0.50)),
				trace.Pct(row.MeanDegraded),
				eff)
		}
	}
	return t
}

// ScorecardTable renders the per-scheme detection scorecards (empty
// unless the run had SetScorecards enabled).
func (r Fig11Result) ScorecardTable() *trace.Table {
	var cards []*obs.Scorecard
	for _, row := range r.Rows {
		if row.Framework == "all" {
			cards = append(cards, row.Score)
		}
	}
	return scorecardTable("Fig 11 scorecards: cap decisions vs ground truth", cards)
}

// AlertTable renders the per-scheme alert summaries (empty unless the
// run had rules installed via SetAlertRules).
func (r Fig11Result) AlertTable() *trace.Table {
	var schemes []string
	var sums []*obs.AlertSummary
	for _, row := range r.Rows {
		if row.Framework == "all" {
			schemes = append(schemes, row.Scheme)
			sums = append(sums, row.Alerts)
		}
	}
	return alertTable("Fig 11 alerts: rule firings per scheme", schemes, sums)
}

// Row returns the named scheme's aggregate ("all") row.
func (r Fig11Result) Row(scheme string) Fig11Row { return r.RowFor(scheme, "all") }

// RowFor returns the row for a scheme and framework ("all", "mapreduce"
// or "spark").
func (r Fig11Result) RowFor(scheme, framework string) Fig11Row {
	for _, row := range r.Rows {
		if row.Scheme == scheme && row.Framework == framework {
			return row
		}
	}
	return Fig11Row{}
}
