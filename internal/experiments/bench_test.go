package experiments

import "testing"

// BenchmarkFigSuite times one full pass of the Fig 3-12 evaluation
// suite at paper scale — the same figure set and configurations that
// `perfbench -suite` runs. One iteration takes a few seconds, so `make
// bench-suite` runs it with -benchtime=1x and merges the result into
// BENCH_suite.json alongside perfbench's per-figure timings.
func BenchmarkFigSuite(b *testing.B) {
	const seed = 42
	for i := 0; i < b.N; i++ {
		Fig3(seed)
		Fig4(seed)
		Fig5(seed)
		Fig6(seed)
		Fig7()
		r9 := Fig9(seed)
		Fig10(r9.Arm("perfcloud"))
		cfg11 := DefaultLargeScaleConfig()
		cfg11.Seed = seed
		Fig11With(cfg11, []Scheme{
			SchemeLATE(),
			SchemeDolly(2),
			SchemeDolly(4),
			SchemeDolly(6),
			SchemePerfCloud(),
		})
		cfg12 := DefaultVariabilityConfig()
		cfg12.Seed = seed
		Fig12With(cfg12, []Scheme{
			SchemeLATE(),
			SchemeDolly(2),
			SchemePerfCloud(),
		})
	}
}
