package experiments

import (
	"reflect"
	"testing"
	"time"
)

// scoreTestMix is a small Fig 11 mix with enough antagonist pressure
// that the PerfCloud control loop actually caps something.
func scoreTestMix() LargeScaleConfig {
	return LargeScaleConfig{
		Seed:             3,
		Servers:          2,
		WorkersPerServer: 4,
		NumMR:            3,
		NumSpark:         3,
		Fio:              1,
		Streams:          2,
		InterarrivalSec:  2,
		Limit:            30 * time.Minute,
	}
}

// TestScorecardsDoNotChangeResults is the PR-5 invariant for the
// scorecard layer: the same seeded mix with scorecards off and on must
// produce bit-identical JCTs and efficiency — scoring is a pure
// observer of the audit-event stream.
func TestScorecardsDoNotChangeResults(t *testing.T) {
	cfg := scoreTestMix()
	schemes := []Scheme{SchemeLATE(), SchemePerfCloud()}
	off := Fig11With(cfg, schemes)

	prev := SetScorecards(true)
	defer SetScorecards(prev)
	on := Fig11With(cfg, schemes)

	// Strip the scorecards; everything else must match exactly.
	stripped := on
	stripped.Rows = append([]Fig11Row(nil), on.Rows...)
	for i := range stripped.Rows {
		stripped.Rows[i].Score = nil
	}
	if !reflect.DeepEqual(off, stripped) {
		t.Fatalf("scorecards changed experiment results:\noff: %+v\non:  %+v", off, stripped)
	}
	// And the "on" run actually produced cards for every scheme's
	// aggregate row.
	for _, sch := range []string{"LATE", "PerfCloud"} {
		if on.Row(sch).Score == nil {
			t.Fatalf("scheme %s has no scorecard", sch)
		}
	}
}

// TestScorecardsDeterministic: same seed, same config ⇒ identical
// scorecards, including the rendered string form the CI smoke job
// byte-compares.
func TestScorecardsDeterministic(t *testing.T) {
	prev := SetScorecards(true)
	defer SetScorecards(prev)
	cfg := scoreTestMix()
	schemes := []Scheme{SchemePerfCloud()}
	a := Fig11With(cfg, schemes)
	b := Fig11With(cfg, schemes)
	sa, sb := a.Row("PerfCloud").Score, b.Row("PerfCloud").Score
	if sa == nil || sb == nil {
		t.Fatal("missing scorecards")
	}
	if !reflect.DeepEqual(*sa, *sb) {
		t.Fatalf("scorecards differ across same-seed runs:\n%+v\nvs\n%+v", *sa, *sb)
	}
	if sa.String() != sb.String() {
		t.Fatalf("rendered scorecards differ:\n%s\nvs\n%s", sa, sb)
	}
	if at, bt := a.ScorecardTable().String(), b.ScorecardTable().String(); at != bt {
		t.Fatalf("scorecard tables differ:\n%s\nvs\n%s", at, bt)
	}
}

// TestScorecardGradesSchemes checks the semantic content: PerfCloud
// detects and caps real antagonists while a scheme with no control
// plane (LATE) scores zero detections against the same denominator.
// The mix is the larger smallMix-sized one — the 2-server scoreTestMix
// is too light to push any deviation signal over its threshold.
func TestScorecardGradesSchemes(t *testing.T) {
	prev := SetScorecards(true)
	defer SetScorecards(prev)
	cfg := LargeScaleConfig{
		Seed:             1,
		Servers:          3,
		WorkersPerServer: 6,
		NumMR:            8,
		NumSpark:         8,
		Fio:              2,
		Streams:          2,
		InterarrivalSec:  4,
		Limit:            2 * time.Hour,
	}
	r := Fig11With(cfg, []Scheme{SchemeLATE(), SchemePerfCloud()})

	wantAnts := cfg.Fio + cfg.Streams
	pc := r.Row("PerfCloud").Score
	if pc.TotalAntagonists != wantAnts {
		t.Fatalf("PerfCloud TotalAntagonists = %d, want %d", pc.TotalAntagonists, wantAnts)
	}
	if pc.DetectedAntagonists == 0 || pc.Recall == 0 {
		t.Fatalf("PerfCloud detected nothing: %+v", *pc)
	}
	if pc.CappedVMs == 0 || pc.CapDwellSec <= 0 {
		t.Fatalf("PerfCloud capped nothing: %+v", *pc)
	}
	if pc.MeanTimeToDetectSec <= 0 {
		t.Fatalf("PerfCloud mean TTD = %v, want > 0", pc.MeanTimeToDetectSec)
	}
	if pc.JCTRecovery <= 0 {
		t.Fatalf("PerfCloud JCT recovery = %v, want > 0", pc.JCTRecovery)
	}

	late := r.Row("LATE").Score
	if late.TotalAntagonists != wantAnts {
		t.Fatalf("LATE TotalAntagonists = %d, want %d", late.TotalAntagonists, wantAnts)
	}
	if late.DetectedAntagonists != 0 || late.CappedVMs != 0 || late.Recall != 0 {
		t.Fatalf("LATE (no control plane) scored detections: %+v", *late)
	}
	if late.JCTRecovery <= 0 {
		t.Fatalf("LATE JCT recovery = %v, want > 0", late.JCTRecovery)
	}
}

// TestFig12Scorecards checks the merged per-row cards of the repetition
// experiment.
func TestFig12Scorecards(t *testing.T) {
	prev := SetScorecards(true)
	defer SetScorecards(prev)
	cfg := VariabilityConfig{
		Seed:             3,
		Servers:          2,
		WorkersPerServer: 4,
		Runs:             2,
		Fio:              2,
		Streams:          2,
		Tasks:            10,
		Limit:            time.Hour,
	}
	r := Fig12With(cfg, []Scheme{SchemePerfCloud()})
	row := r.Row("terasort", "PerfCloud")
	if row.Score == nil {
		t.Fatal("fig12 row has no scorecard")
	}
	if want := cfg.Runs * (cfg.Fio + cfg.Streams); row.Score.TotalAntagonists != want {
		t.Fatalf("merged TotalAntagonists = %d, want %d (runs x antagonists)", row.Score.TotalAntagonists, want)
	}
	if row.Score.Scheme != "terasort/PerfCloud" {
		t.Fatalf("merged scheme label = %q", row.Score.Scheme)
	}
	if row.Score.JCTRecovery <= 0 {
		t.Fatalf("merged JCT recovery = %v", row.Score.JCTRecovery)
	}
	if got := r.ScorecardTable().String(); got == "" {
		t.Fatal("empty scorecard table")
	}
}

// TestGroundTruthRegistration checks the testbed records what
// AddAntagonist booted: name disambiguation, server, harm channel and
// burst schedule.
func TestGroundTruthRegistration(t *testing.T) {
	cfg := scoreTestMix()
	tb := NewTestbed(TestbedConfig{Seed: cfg.Seed, Servers: cfg.Servers, WorkersPerServer: 2})
	placeAntagonists(tb, cfg)
	vms := tb.Truth.VMs()
	if want := cfg.Fio + cfg.Streams; len(vms) != want {
		t.Fatalf("truth records = %d, want %d", len(vms), want)
	}
	if got := tb.Truth.NumAntagonists(); got != cfg.Fio+cfg.Streams {
		t.Fatalf("NumAntagonists = %d", got)
	}
	channels := map[string]int{}
	for _, v := range vms {
		channels[v.Channel]++
		if v.Server == "" || v.OnSec <= 0 {
			t.Fatalf("truth record incomplete: %+v", v)
		}
		if _, ok := tb.Benchmarks[v.VM]; !ok {
			t.Fatalf("truth VM %q not in Benchmarks", v.VM)
		}
	}
	if channels["io"] != cfg.Fio || channels["cpu"] != cfg.Streams {
		t.Fatalf("harm channels = %v", channels)
	}
}
