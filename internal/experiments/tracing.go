package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"perfcloud/internal/obs"
	"perfcloud/internal/trace"
)

// Per-repetition trace export: when a trace directory is set, every
// experiment repetition (each an independent engine) records a full span
// tree and writes one Perfetto JSON file into the directory. Off by
// default — tracing a paper-size Fig. 11 mix records hundreds of
// thousands of spans per repetition.
var (
	trMu  sync.Mutex
	trDir string
)

// SetTraceDir enables per-repetition trace export into dir ("" disables).
// The caller is responsible for the directory existing.
func SetTraceDir(dir string) {
	trMu.Lock()
	defer trMu.Unlock()
	trDir = dir
}

// traceDir returns the current trace directory ("" when tracing is off).
func traceDir() string {
	trMu.Lock()
	defer trMu.Unlock()
	return trDir
}

// newRunTracer returns a tracer for one repetition, or nil when tracing
// is off. Repetitions run concurrently but each gets its own tracer.
func newRunTracer() *trace.Tracer {
	if traceDir() == "" {
		return nil
	}
	return trace.NewTracer()
}

// writeRunTrace exports one repetition's trace as <dir>/<name>.json.
// No-op when tracing is off. Like the rest of the experiment harness it
// panics on failure: a misconfigured output path is a setup bug.
func writeRunTrace(name string, tr *trace.Tracer, events []obs.Event) {
	dir := traceDir()
	if dir == "" || tr == nil {
		return
	}
	f, err := os.Create(filepath.Join(dir, name+".json"))
	if err != nil {
		panic(fmt.Sprintf("experiments: create trace: %v", err))
	}
	if err := tr.WritePerfetto(f, events); err != nil {
		f.Close()
		panic(fmt.Sprintf("experiments: write trace: %v", err))
	}
	if err := f.Close(); err != nil {
		panic(fmt.Sprintf("experiments: close trace: %v", err))
	}
}
