package experiments

import (
	"sync"

	"perfcloud/internal/cluster"
	"perfcloud/internal/obs"
)

// Fast-path tracking: when enabled, every cluster built by NewTestbed is
// remembered so FastPathTotals can sum the simulation's fast-path
// accounting across a whole perfbench run. Off by default — tracking
// would otherwise retain every testbed's cluster for the process
// lifetime.
var (
	fpMu       sync.Mutex
	fpTrack    bool
	fpClusters []*cluster.Cluster
)

// SetTrackFastPaths enables (or disables) cluster tracking, resetting
// any clusters recorded so far.
func SetTrackFastPaths(on bool) {
	fpMu.Lock()
	defer fpMu.Unlock()
	fpTrack = on
	fpClusters = nil
}

// trackCluster records a testbed's cluster if tracking is on.
func trackCluster(c *cluster.Cluster) {
	fpMu.Lock()
	defer fpMu.Unlock()
	if fpTrack {
		fpClusters = append(fpClusters, c)
	}
}

// FastPathTotals sums the fast-path counters of every tracked cluster.
// Call it only after the experiments using those clusters have finished
// ticking (the counters are owned by the tick goroutines).
func FastPathTotals() obs.FastPathSnapshot {
	fpMu.Lock()
	defer fpMu.Unlock()
	var total obs.FastPathSnapshot
	for _, c := range fpClusters {
		total.Add(c.FastPathStats())
	}
	return total
}
