package experiments

import (
	"strings"
	"testing"
	"time"

	"perfcloud/internal/workloads"
)

const seed = 42

func TestFioSoloRate(t *testing.T) {
	// Pin the constant the static-cap arms rely on: fio alone achieves
	// its full demand rate on an idle device.
	tb := NewTestbed(TestbedConfig{Seed: seed})
	fio := workloads.NewFioRandRead(workloads.AlwaysOn)
	tb.AddAntagonist(0, fio)
	tb.Eng.RunFor(30 * time.Second)
	if got := fio.AchievedIOPS(); got < FioSoloIOPS*0.99 || got > FioSoloIOPS*1.01 {
		t.Errorf("fio solo IOPS = %v, want ~%v", got, FioSoloIOPS)
	}
}

func TestFig1TerasortShape(t *testing.T) {
	r := fig1Sweep(seed, []Bench{{Name: "terasort"}}, []float64{0, 0.5, 0.2})
	uncapped := r.Rows[0]
	cap50 := r.Rows[1]
	cap20 := r.Rows[2]
	// Paper: fio degrades terasort substantially (72% on their testbed).
	if uncapped.NormJCT < 1.4 {
		t.Errorf("uncapped degradation = %v, want >= 1.4x", uncapped.NormJCT)
	}
	// Tightening the cap monotonically restores the victim.
	if !(cap20.NormJCT < cap50.NormJCT && cap50.NormJCT < uncapped.NormJCT) {
		t.Errorf("degradation not monotone in cap: %v / %v / %v",
			uncapped.NormJCT, cap50.NormJCT, cap20.NormJCT)
	}
	// And costs fio throughput.
	if cap20.FioNormIOPS >= cap50.FioNormIOPS {
		t.Errorf("fio IOPS should fall with its cap: %v vs %v",
			cap20.FioNormIOPS, cap50.FioNormIOPS)
	}
	if r.Degradation("terasort") != uncapped.NormJCT {
		t.Error("Degradation accessor mismatch")
	}
	if !strings.Contains(r.Table().String(), "terasort") {
		t.Error("table rendering")
	}
}

func TestFig1SparkInsensitiveToDeepIOCaps(t *testing.T) {
	// Paper Fig 1b: below a ~20% cap, further fio throttling buys Spark
	// little — disk stops being its bottleneck.
	r := fig1Sweep(seed, []Bench{{Name: "spark-logreg", Spark: true}}, []float64{0, 0.2, 0.05})
	cap20 := r.Rows[1].NormJCT
	cap05 := r.Rows[2].NormJCT
	if gain := cap20 - cap05; gain > 0.15 {
		t.Errorf("tightening 20%%->5%% gained %v in norm JCT; Spark should be insensitive", gain)
	}
}

func TestFig2SparkSuffersMoreThanMR(t *testing.T) {
	r := fig2Sweep(seed, []Bench{{Name: "terasort"}, {Name: "spark-logreg", Spark: true}})
	mr := r.Rows[0].NormJCT
	sp := r.Rows[1].NormJCT
	if sp < 1.15 {
		t.Errorf("spark degradation under STREAM = %v, want noticeable", sp)
	}
	if sp <= mr {
		t.Errorf("spark (%v) should degrade more than terasort (%v) under STREAM", sp, mr)
	}
	if r.MeanNormJCT(true) != sp || r.MeanNormJCT(false) != mr {
		t.Error("MeanNormJCT accessors")
	}
}

func TestFig3DeviationSeparation(t *testing.T) {
	r := Fig3(seed)
	if r.Alone.PeakIowait() > r.Threshold {
		t.Errorf("alone peak %v exceeds threshold %v (false positive)",
			r.Alone.PeakIowait(), r.Threshold)
	}
	if r.WithFio.PeakIowait() < 2*r.Threshold {
		t.Errorf("contended peak %v should clearly exceed threshold %v",
			r.WithFio.PeakIowait(), r.Threshold)
	}
	// Paper reports a ~8.2x peak increase; require a strong separation.
	if r.PeakRatio() < 3 {
		t.Errorf("peak ratio = %v, want >= 3", r.PeakRatio())
	}
	if !strings.Contains(r.Table().String(), "peak ratio") {
		t.Error("table rendering")
	}
}

func TestFig4CPIDeviationSeparation(t *testing.T) {
	r := fig4For(seed, []Bench{{Name: "terasort"}, {Name: "spark-logreg", Spark: true}})
	for _, row := range r.Rows {
		if row.PeakAlone > r.Threshold {
			t.Errorf("%s alone peak CPI dev %v exceeds threshold", row.Bench, row.PeakAlone)
		}
		if row.PeakStream < r.Threshold {
			t.Errorf("%s contended peak CPI dev %v under threshold", row.Bench, row.PeakStream)
		}
	}
}

func TestFig5IdentifiesFioOnly(t *testing.T) {
	r := Fig5(seed)
	if !r.Identified("fio-randread", 3) {
		t.Errorf("fio not identified at n=3: %+v", r.Rows)
	}
	for _, decoy := range []string{"sysbench-oltp", "sysbench-cpu"} {
		for _, n := range r.Windows {
			if r.Identified(decoy, n) {
				t.Errorf("decoy %s misidentified at n=%d: %+v", decoy, n, r.Rows)
			}
		}
	}
	if !strings.Contains(r.Table().String(), "fio") {
		t.Error("table rendering")
	}
}

func TestFig6IdentifiesStreamsOnly(t *testing.T) {
	r := Fig6(seed)
	okAt := func(s string) bool {
		for _, n := range []int{4, 5, 6, 8, 10} {
			if r.Identified(s, n) {
				return true
			}
		}
		return false
	}
	if !okAt("stream") || !okAt("stream-1") {
		t.Errorf("STREAM VMs not identified: %+v", r.Rows)
	}
	for _, decoy := range []string{"sysbench-oltp", "sysbench-cpu"} {
		for _, n := range r.Windows {
			if r.Identified(decoy, n) {
				t.Errorf("decoy %s misidentified at n=%d: %+v", decoy, n, r.Rows)
			}
		}
	}
}

func TestFig7Regions(t *testing.T) {
	r := Fig7()
	vals := r.Caps.Values()
	if len(vals) != 60 {
		t.Fatalf("len = %d", len(vals))
	}
	// K = cbrt(1*0.8/0.005) ~ 5.43 intervals for normalized caps.
	if r.K < 5 || r.K > 6 {
		t.Errorf("K = %v, want ~5.43", r.K)
	}
	// Initial growth is steep: the first interval already recovers more
	// than half the decrease.
	if vals[0] < 0.3 || vals[0] > 0.75 {
		t.Errorf("first growth value = %v, want steep recovery", vals[0])
	}
	k := int(r.K)
	if vals[k-1] < 0.9 || vals[k-1] > 1.1 {
		t.Errorf("cap at K = %v, want ~1 (plateau around Cmax)", vals[k-1])
	}
	if vals[11] < 1.2 {
		t.Errorf("probing cap at 2K = %v, want well above Cmax", vals[11])
	}
	seen := map[string]bool{}
	for _, reg := range r.Regions {
		seen[reg] = true
	}
	if !seen["growth"] || !seen["plateau"] || !seen["probing"] {
		t.Errorf("regions = %v", seen)
	}
	if !strings.Contains(r.Table().String(), "plateau") {
		t.Error("table rendering")
	}
}
