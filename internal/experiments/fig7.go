package experiments

import (
	"perfcloud/internal/core"
	"perfcloud/internal/stats"
	"perfcloud/internal/trace"
)

// Fig7Result reproduces Figure 7: the CUBIC cap-growth trajectory after
// a single decrease, annotated with its three regions.
type Fig7Result struct {
	Caps    *stats.TimeSeries // cap (fraction of Cmax) per interval
	Regions []string
	K       float64
}

// Fig7 evaluates Equation 1's growth curve with the paper's constants
// (beta = 0.8, gamma = 0.005) from Cmax = 1 over 60 intervals.
func Fig7() Fig7Result {
	c := core.NewCubic(core.DefaultCubicConfig(), 1)
	c.Update(0, true) // the decrease that anchors the curve
	res := Fig7Result{Caps: stats.NewTimeSeries(), K: c.K()}
	for i := int64(1); i <= 60; i++ {
		cap := c.Update(i, false)
		res.Caps.Append(float64(i), cap)
		res.Regions = append(res.Regions, c.Region(i))
	}
	return res
}

// Table renders a compact view of the curve.
func (r Fig7Result) Table() *trace.Table {
	t := trace.New("Fig 7: CUBIC cap growth after a decrease (Cmax=1, beta=0.8, gamma=0.005)",
		"interval", "cap", "region")
	vals := r.Caps.Values()
	for i := 0; i < len(vals); i += 5 {
		t.Addf(i+1, vals[i], r.Regions[i])
	}
	t.Addf("K", r.K, "")
	return t
}
