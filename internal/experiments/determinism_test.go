package experiments

import (
	"reflect"
	"testing"
	"time"

	"perfcloud/internal/cluster"
)

// setParallel forces both parallelism knobs for the duration of a test:
// tick workers inside each cluster and concurrent experiment repetitions.
// Explicit counts matter — on a single-core host GOMAXPROCS-based
// defaults resolve to 1 worker, which would not exercise the concurrent
// paths at all.
func setParallel(t *testing.T, tickWorkers, runs int) {
	t.Helper()
	prevTick := cluster.SetDefaultTickWorkers(tickWorkers)
	prevRuns := SetMaxParallelRuns(runs)
	t.Cleanup(func() {
		cluster.SetDefaultTickWorkers(prevTick)
		SetMaxParallelRuns(prevRuns)
	})
}

// TestParallelMatchesSequential is the determinism contract of the
// parallel simulation core: for the same seed, the concurrent tick phase
// and concurrent experiment repetitions must produce results bit-for-bit
// identical to the sequential mode. Run with -race to also exercise the
// data-race freedom of the grant phase and the run fan-out.
func TestParallelMatchesSequential(t *testing.T) {
	const s = seed

	smallVariability := VariabilityConfig{
		Seed:             s,
		Servers:          3,
		WorkersPerServer: 6,
		Runs:             3,
		Fio:              2,
		Streams:          2,
		Tasks:            18,
		Limit:            time.Hour,
	}
	mix := smallMix()
	mix.NumMR, mix.NumSpark = 4, 4

	cases := []struct {
		name string
		run  func() any
	}{
		{"Fig3", func() any { return Fig3(s) }},
		{"Fig9", func() any { return Fig9(s) }},
		{"Fig12", func() any { return Fig12With(smallVariability, []Scheme{SchemeLATE(), SchemePerfCloud()}) }},
		{"Fig11", func() any { return Fig11With(mix, []Scheme{SchemeLATE()}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			setParallel(t, 1, 1)
			sequential := tc.run()

			setParallel(t, 4, 4)
			parallel := tc.run()

			if !reflect.DeepEqual(sequential, parallel) {
				t.Errorf("parallel result differs from sequential:\nseq: %+v\npar: %+v", sequential, parallel)
			}
		})
	}
}
