package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFig9SchemesOrdering(t *testing.T) {
	r := Fig9(seed)
	def := r.Arm("default")
	static := r.Arm("static")
	pc := r.Arm("perfcloud")
	if def.JCT == 0 || static.JCT == 0 || pc.JCT == 0 {
		t.Fatalf("missing arms: %+v", r)
	}
	// Both mitigation schemes beat the default system (paper: 31%, 33%).
	if pc.JCT >= def.JCT*0.95 {
		t.Errorf("perfcloud %v should clearly beat default %v", pc.JCT, def.JCT)
	}
	if static.JCT >= def.JCT*0.95 {
		t.Errorf("static %v should clearly beat default %v", static.JCT, def.JCT)
	}
	// PerfCloud suppresses the deviation signals relative to default
	// (Fig. 9a/9b).
	if pc.Iowait.Max() >= def.Iowait.Max() {
		t.Errorf("perfcloud peak iowait dev %v should be below default %v",
			pc.Iowait.Max(), def.Iowait.Max())
	}
	if !strings.Contains(r.Table().String(), "perfcloud") {
		t.Error("table rendering")
	}
}

func TestFig10CapTimelines(t *testing.T) {
	r9 := Fig9(seed)
	r := Fig10(r9.Arm("perfcloud"))
	if ThrottleEpisodes(r.FioCap) < 1 {
		t.Error("fio was never throttled")
	}
	if ThrottleEpisodes(r.StreamCap) < 1 {
		t.Error("stream was never throttled")
	}
	// The throttle actually bit: the minimum cap sits well below fio's
	// solo rate / stream's 2 vcpus.
	if min := minNonMissing(r.FioCap); min <= 0 || min > 4000 {
		t.Errorf("fio min cap = %v", min)
	}
	if min := minNonMissing(r.StreamCap); min <= 0 || min > 1.5 {
		t.Errorf("stream min cap = %v cores", min)
	}
	if !strings.Contains(r.Table().String(), "fio") {
		t.Error("table rendering")
	}
}

// smallMix is a scaled-down Fig 11 configuration for unit tests.
func smallMix() LargeScaleConfig {
	return LargeScaleConfig{
		Seed:             seed,
		Servers:          3,
		WorkersPerServer: 6,
		NumMR:            8,
		NumSpark:         8,
		Fio:              2,
		Streams:          2,
		InterarrivalSec:  4,
		Limit:            2 * time.Hour,
	}
}

func TestFig11SmallMix(t *testing.T) {
	r := Fig11With(smallMix(), []Scheme{
		SchemeLATE(), SchemeDolly(2), SchemeDolly(4), SchemePerfCloud(),
	})
	if len(r.Rows) != 12 { // 4 schemes x {all, mapreduce, spark}
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Per-framework rows partition the aggregate.
	for _, sch := range []string{"LATE", "PerfCloud"} {
		all := r.Row(sch).Buckets.Total()
		mr := r.RowFor(sch, "mapreduce").Buckets.Total()
		sp := r.RowFor(sch, "spark").Buckets.Total()
		if mr+sp != all || mr == 0 || sp == 0 {
			t.Errorf("%s: framework split %d+%d != %d", sch, mr, sp, all)
		}
	}
	pc := r.Row("PerfCloud")
	late := r.Row("LATE")
	d2 := r.Row("Dolly-2")
	d4 := r.Row("Dolly-4")

	// PerfCloud attacks the root cause without extra resources: best or
	// tied-best efficiency, and at least as many lightly-degraded jobs as
	// LATE (paper Fig. 11).
	if pc.Efficiency < 0.99 {
		t.Errorf("PerfCloud efficiency = %v, want ~1 (no duplicate work)", pc.Efficiency)
	}
	if d2.Efficiency >= 0.95 {
		t.Errorf("Dolly-2 efficiency = %v, want meaningful waste", d2.Efficiency)
	}
	if d4.Efficiency >= d2.Efficiency {
		t.Errorf("efficiency should fall with clones: Dolly-4 %v vs Dolly-2 %v",
			d4.Efficiency, d2.Efficiency)
	}
	if pc.FracUnder30 < late.FracUnder30 {
		t.Errorf("PerfCloud <30%% frac %v should be >= LATE %v", pc.FracUnder30, late.FracUnder30)
	}
	if !strings.Contains(r.Table().String(), "Dolly-2") {
		t.Error("table rendering")
	}
}

func TestFig12SmallVariability(t *testing.T) {
	cfg := VariabilityConfig{
		Seed:             seed,
		Servers:          3,
		WorkersPerServer: 6,
		Runs:             5,
		Fio:              2,
		Streams:          2,
		Tasks:            18,
		Limit:            time.Hour,
	}
	r := Fig12With(cfg, []Scheme{SchemeLATE(), SchemePerfCloud()})
	if len(r.Rows) != 4 { // 2 workloads x 2 schemes
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, workload := range []string{"terasort", "spark-logreg"} {
		pc := r.Row(workload, "PerfCloud").Summary
		late := r.Row(workload, "LATE").Summary
		if pc.N != cfg.Runs || late.N != cfg.Runs {
			t.Fatalf("%s: summaries incomplete: %+v %+v", workload, pc, late)
		}
		// Paper Fig. 12: PerfCloud's median and spread are smaller.
		if pc.Median > late.Median {
			t.Errorf("%s: PerfCloud median %v should be <= LATE %v", workload, pc.Median, late.Median)
		}
	}
	if !strings.Contains(r.Table().String(), "terasort") {
		t.Error("table rendering")
	}
}
