package experiments

import (
	"testing"
	"time"

	"perfcloud/internal/workloads"
)

// The calibration claims the paper's detection properties hold, not just
// at one lucky seed. These tests sweep seeds over the two core detection
// separations and the end-to-end mitigation win.

func TestSeedRobustnessIowaitDetection(t *testing.T) {
	for _, s := range []int64{7, 101, 9001} {
		r := fig3For(s, Bench{Name: "terasort"})
		if r.Alone.PeakIowait() > r.Threshold {
			t.Errorf("seed %d: alone peak %v above threshold (false positive)", s, r.Alone.PeakIowait())
		}
		if r.WithFio.PeakIowait() < 2*r.Threshold {
			t.Errorf("seed %d: contended peak %v too low", s, r.WithFio.PeakIowait())
		}
	}
}

func TestSeedRobustnessCPIDetection(t *testing.T) {
	for _, s := range []int64{7, 101, 9001} {
		r := fig4For(s, []Bench{{Name: "spark-logreg", Spark: true}})
		row := r.Rows[0]
		if row.PeakAlone > r.Threshold {
			t.Errorf("seed %d: alone CPI dev %v above threshold", s, row.PeakAlone)
		}
		if row.PeakStream < r.Threshold {
			t.Errorf("seed %d: contended CPI dev %v below threshold", s, row.PeakStream)
		}
	}
}

func TestSeedRobustnessIdentification(t *testing.T) {
	for _, s := range []int64{7, 101, 9001} {
		r := Fig5(s)
		identifiedSomewhere := false
		for _, n := range r.Windows {
			if r.Identified("fio-randread", n) {
				identifiedSomewhere = true
			}
			for _, decoy := range []string{"sysbench-oltp", "sysbench-cpu"} {
				if r.Identified(decoy, n) {
					t.Errorf("seed %d: decoy %s flagged at n=%d", s, decoy, n)
				}
			}
		}
		if !identifiedSomewhere {
			t.Errorf("seed %d: fio never identified", s)
		}
	}
}

func TestSeedRobustnessMitigation(t *testing.T) {
	// PerfCloud must beat the default system on the terasort+fio scenario
	// at every seed, not just the benchmark seed.
	run := func(s int64, pc bool) float64 {
		var cfg TestbedConfig
		if pc {
			cfg.PerfCloud = ControllerConfig()
		}
		tb := smallTestbed(s, &cfg)
		tb.AddAntagonist(0, workloads.NewFioRandRead(
			workloads.BurstPattern{StartOffset: 10 * time.Second, On: 20 * time.Second, Off: 10 * time.Second}))
		var jcts []float64
		j, err := tb.JT.Submit(mrConfig("terasort"), 0)
		if err != nil {
			t.Fatal(err)
		}
		for tb.Eng.Clock().Seconds() < 180 {
			tb.Eng.Step()
			if j.Done() {
				jcts = append(jcts, j.JCT())
				j, _ = tb.JT.Submit(mrConfig("terasort"), tb.Eng.Clock().Seconds())
			}
		}
		// Mean of the second half: PerfCloud has identified fio by then.
		var sum float64
		half := jcts[len(jcts)/2:]
		for _, v := range half {
			sum += v
		}
		return sum / float64(len(half))
	}
	for _, s := range []int64{7, 101} {
		off := run(s, false)
		on := run(s, true)
		if on >= off {
			t.Errorf("seed %d: PerfCloud JCT %v should beat default %v", s, on, off)
		}
	}
}

// The paper's headline detection claim (§III-A1): interference is
// identified "within a few seconds", in sharp contrast to speculative
// execution which must first watch tasks run. We assert the first
// contention flag lands within three 5-second intervals of fio's onset.
func TestDetectionLatencyWithinSeconds(t *testing.T) {
	const onset = 20.0 // seconds
	cfg := TestbedConfig{Seed: seed, PerfCloud: ObserverConfig()}
	tb := smallTestbed(seed, &cfg)
	tb.AddAntagonist(0, workloads.NewFioRandRead(
		workloads.BurstPattern{StartOffset: onset * 1e9}))
	runBackToBack(tb, Bench{Name: "terasort"}, time.Minute)

	first := -1.0
	for _, e := range tb.Sys.Managers()[0].Trace() {
		if e.TimeSec > onset && e.IOContention {
			first = e.TimeSec
			break
		}
	}
	if first < 0 {
		t.Fatal("contention never detected")
	}
	if latency := first - onset; latency > 15 {
		t.Errorf("detection latency = %vs, want within three intervals", latency)
	}
}

// Determinism regression: identical seeds must reproduce identical
// results bit-for-bit — the property the per-component RNG streams exist
// to protect.
func TestDeterminismSameSeedSameResults(t *testing.T) {
	run := func() []float64 {
		r := fig1Sweep(77, []Bench{{Name: "terasort"}}, []float64{0, 0.2})
		out := []float64{}
		for _, row := range r.Rows {
			out = append(out, row.NormJCT, row.FioNormIOPS)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Identification is behavioural, not benchmark-specific: a database VM
// hammering the disk with small random reads is an antagonist no matter
// what it is called, while the same workload at moderate intensity is
// left alone (the D1 ablation's benign neighbour).
func TestAggressiveOLTPIdentifiedAsAntagonist(t *testing.T) {
	cfg := TestbedConfig{Seed: seed, PerfCloud: ControllerConfig()}
	tb := smallTestbed(seed, &cfg)
	aggressive := workloads.NewBenchmark("oltp-heavy", workloads.Profile{
		CPUCores:        2,
		IOPS:            6000,
		OpBytes:         16384,
		CoreCPI:         1.1,
		LLCRefsPerInstr: 0.02,
		BytesPerInstr:   0.4,
		WorkingSetBytes: 50 << 20,
	}, workloads.BurstPattern{StartOffset: 10 * time.Second, On: 25 * time.Second, Off: 10 * time.Second},
		workloads.Limits{})
	tb.AddAntagonist(0, aggressive)
	runBackToBack(tb, Bench{Name: "terasort"}, 3*time.Minute)

	identified, capped := false, false
	for _, e := range tb.Sys.Managers()[0].Trace() {
		for _, id := range e.IOAntagonists {
			if id == "oltp-heavy" {
				identified = true
			}
		}
		if _, ok := e.IOCaps["oltp-heavy"]; ok {
			capped = true
		}
	}
	if !identified || !capped {
		t.Errorf("aggressive OLTP identified=%v capped=%v, want both", identified, capped)
	}
}

// Known limitation, kept as a pinned negative test: a constant-rate
// antagonist that has been running since before the victim (no onset
// inside the correlation window, never previously identified) produces a
// flat activity series, and Pearson correlation against the victim's
// deviation cannot accuse it. The paper's identification shares this
// blind spot; PerfCloud relies on antagonists having starts, stops or
// bursts. EXPERIMENTS.md documents the consequence.
func TestLimitationConstantAntagonistInvisible(t *testing.T) {
	cfg := TestbedConfig{Seed: seed, PerfCloud: ControllerConfig()}
	tb := smallTestbed(seed, &cfg)
	tb.AddAntagonist(0, workloads.NewFioRandRead(workloads.AlwaysOn)) // on from t=0, forever
	runBackToBack(tb, Bench{Name: "terasort"}, 2*time.Minute)

	contended, identified := 0, 0
	for _, e := range tb.Sys.Managers()[0].Trace() {
		if e.IOContention {
			contended++
		}
		identified += len(e.IOAntagonists)
	}
	if contended == 0 {
		t.Fatal("contention should still be detected")
	}
	if identified > 2 {
		// If this starts passing identification reliably, the blind spot
		// has been engineered away — update EXPERIMENTS.md accordingly.
		t.Errorf("constant antagonist identified %d times; expected the documented blind spot", identified)
	}
}
