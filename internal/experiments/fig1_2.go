package experiments

import (
	"perfcloud/internal/trace"
	"perfcloud/internal/workloads"
)

// Fig1Row is one (benchmark, fio-cap) measurement of Figure 1: the
// benchmark's job completion time and fio's throughput, both normalized
// against running alone.
type Fig1Row struct {
	Bench        string
	CapFrac      float64 // fio's static IOPS cap as fraction of solo (0 = uncapped)
	NormJCT      float64 // JCT / JCT-alone
	FioNormIOPS  float64 // fio achieved IOPS / solo IOPS
	JCTSeconds   float64
	AloneSeconds float64
}

// Fig1Result reproduces Figure 1: performance degradation under a
// colocated fio random-read antagonist, swept over static I/O caps.
type Fig1Result struct {
	Rows []Fig1Row
}

// Fig1 runs the sweep for all six benchmarks with fio uncapped, capped
// at 50% and capped at 20% of its solo throughput.
func Fig1(seed int64) Fig1Result {
	return fig1Sweep(seed, Benches(), []float64{0, 0.5, 0.2})
}

// fig1Sweep is Fig1 over a chosen benchmark subset (tests use one
// benchmark to stay fast).
func fig1Sweep(seed int64, benches []Bench, caps []float64) Fig1Result {
	var res Fig1Result
	for _, b := range benches {
		alone := RunBench(smallTestbed(seed, nil), b)
		for _, capFrac := range caps {
			tb := smallTestbed(seed, nil)
			fio := workloads.NewFioRandRead(workloads.AlwaysOn)
			tb.AddAntagonist(0, fio)
			if capFrac > 0 {
				tb.CapAntagonistIOPS("fio-randread", capFrac, FioSoloIOPS)
			}
			jct := RunBench(tb, b)
			res.Rows = append(res.Rows, Fig1Row{
				Bench:        b.Name,
				CapFrac:      capFrac,
				NormJCT:      jct / alone,
				FioNormIOPS:  fio.AchievedIOPS() / FioSoloIOPS,
				JCTSeconds:   jct,
				AloneSeconds: alone,
			})
		}
	}
	return res
}

// Table renders the Figure 1 sweep.
func (r Fig1Result) Table() *trace.Table {
	t := trace.New("Fig 1: degradation under colocated fio random read (JCT and fio IOPS normalized to running alone)",
		"benchmark", "fio cap", "norm JCT", "fio norm IOPS", "JCT (s)", "alone (s)")
	for _, row := range r.Rows {
		cap := "none"
		if row.CapFrac > 0 {
			cap = trace.Pct(row.CapFrac)
		}
		t.Addf(row.Bench, cap, row.NormJCT, row.FioNormIOPS, row.JCTSeconds, row.AloneSeconds)
	}
	return t
}

// Degradation returns the uncapped normalized JCT for a benchmark
// (Fig. 1c's headline numbers: terasort 1.72x, spark-logreg 1.44x).
func (r Fig1Result) Degradation(bench string) float64 {
	for _, row := range r.Rows {
		if row.Bench == bench && row.CapFrac == 0 {
			return row.NormJCT
		}
	}
	return 0
}

// Fig2Row is one benchmark's degradation under the STREAM antagonists.
type Fig2Row struct {
	Bench   string
	NormJCT float64
}

// Fig2Result reproduces Figure 2: performance degradation due to a
// colocated memory-intensive workload. The paper's observation is that
// Spark benchmarks suffer more than MapReduce ones.
type Fig2Result struct {
	Rows []Fig2Row
}

// Fig2 measures all six benchmarks against two colocated STREAM VMs
// (the paper's group-of-antagonists setting from §III-B).
func Fig2(seed int64) Fig2Result {
	return fig2Sweep(seed, Benches())
}

func fig2Sweep(seed int64, benches []Bench) Fig2Result {
	var res Fig2Result
	for _, b := range benches {
		alone := RunBench(smallTestbed(seed, nil), b)
		tb := smallTestbed(seed, nil)
		tb.AddAntagonist(0, workloads.NewStream(workloads.AlwaysOn))
		tb.AddAntagonist(0, workloads.NewStream(workloads.AlwaysOn))
		jct := RunBench(tb, b)
		res.Rows = append(res.Rows, Fig2Row{Bench: b.Name, NormJCT: jct / alone})
	}
	return res
}

// Table renders the Figure 2 result.
func (r Fig2Result) Table() *trace.Table {
	t := trace.New("Fig 2: degradation under colocated STREAM (JCT normalized to running alone)",
		"benchmark", "norm JCT")
	for _, row := range r.Rows {
		t.Addf(row.Bench, row.NormJCT)
	}
	return t
}

// MeanNormJCT averages normalized JCT over the given benchmarks.
func (r Fig2Result) MeanNormJCT(sparkOnly bool) float64 {
	var sum float64
	n := 0
	for _, row := range r.Rows {
		isSpark := len(row.Bench) > 5 && row.Bench[:5] == "spark"
		if isSpark != sparkOnly {
			continue
		}
		sum += row.NormJCT
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
