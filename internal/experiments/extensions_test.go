package experiments

import (
	"strings"
	"testing"
)

func TestHeterogeneousHybridComplementsPerfCloud(t *testing.T) {
	r := Heterogeneous(seed)
	def := r.Row("default").MeanJCT
	late := r.Row("LATE").MeanJCT
	pc := r.Row("PerfCloud").MeanJCT
	hybrid := r.Row("PerfCloud+LATE").MeanJCT
	if def == 0 || late == 0 || pc == 0 || hybrid == 0 {
		t.Fatalf("missing rows: %+v", r)
	}
	// PerfCloud helps (it throttles the antagonist) but cannot fix slow
	// hardware; the hybrid should be the best of the four — the paper's
	// §IV-D2 claim that speculation complements PerfCloud.
	if pc >= def {
		t.Errorf("PerfCloud %v should beat default %v", pc, def)
	}
	if hybrid >= def || hybrid > pc*1.02 {
		t.Errorf("hybrid %v should be at least as good as PerfCloud %v and beat default %v",
			hybrid, pc, def)
	}
	if hybrid > late*1.02 {
		t.Errorf("hybrid %v should be at least as good as LATE %v", hybrid, late)
	}
	if !strings.Contains(r.Table().String(), "PerfCloud+LATE") {
		t.Error("table rendering")
	}
}

func TestMigrationResolvesHighPriorityCollision(t *testing.T) {
	r := Migration(seed)
	if r.Migrations == 0 {
		t.Fatal("node manager never escalated to migration")
	}
	if r.FinalSpread < 2 {
		t.Errorf("apps still packed on %d server(s)", r.FinalSpread)
	}
	if r.JCTWith >= r.JCTWithout {
		t.Errorf("migration JCT %v should beat colocated %v", r.JCTWith, r.JCTWithout)
	}
	if !strings.Contains(r.Table().String(), "enabled") {
		t.Error("table rendering")
	}
}
