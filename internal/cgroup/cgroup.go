// Package cgroup emulates the slice of the Linux control-group interface
// that PerfCloud observes and actuates: the blkio subsystem's cumulative
// I/O accounting (io_serviced, io_service_bytes, io_wait_time) and
// throttling knobs (IOPS and bytes-per-second caps), the cpuacct usage
// counter with the CFS quota knob, and the perf_event counters (cycles,
// instructions, LLC references/misses) that the paper samples in counting
// mode per cgroup.
//
// Exactly one cgroup exists per VM, mirroring the paper's setup where each
// KVM domain is mapped to a cgroup. Counters are cumulative from "boot";
// consumers compute deltas between measurement intervals, as the paper's
// performance monitor does (§III-D1).
package cgroup

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// BlkioCounters are the cumulative block-I/O statistics for one cgroup,
// mirroring blkio.io_serviced, blkio.io_service_bytes and
// blkio.io_wait_time. WaitTimeMs is kept in milliseconds: the detector's
// iowait-ratio threshold (H_io = 10) is expressed in ms per operation.
type BlkioCounters struct {
	IoServiced     float64 // operations completed
	IoServiceBytes float64 // bytes transferred
	IoWaitTimeMs   float64 // total time ops spent waiting for service, ms
}

// CPUCounters are the cumulative cpuacct statistics for one cgroup.
type CPUCounters struct {
	UsageSeconds float64 // core-seconds consumed
}

// PerfCounters are the cumulative hardware-counter readings attributed to
// one cgroup, as perf_event reports in per-cgroup counting mode.
type PerfCounters struct {
	Cycles        float64
	Instructions  float64
	LLCReferences float64
	LLCMisses     float64
}

// CPI returns cycles per instruction over the whole counter lifetime,
// or 0 when no instructions have retired.
func (p PerfCounters) CPI() float64 {
	if p.Instructions == 0 {
		return 0
	}
	return p.Cycles / p.Instructions
}

// Throttle holds the resource caps applied to a cgroup. Zero means
// "no cap" for each knob, matching the kernel's unlimited default.
type Throttle struct {
	ReadIOPS float64 // blkio.throttle.read_iops_device, ops/sec
	ReadBPS  float64 // blkio.throttle.read_bps_device, bytes/sec
	CPUCores float64 // CFS quota expressed in cores (quota/period)
}

// Active reports whether any limit is in force (a zero value on every
// knob means unthrottled, cgroup convention).
func (t Throttle) Active() bool {
	return t.ReadIOPS > 0 || t.ReadBPS > 0 || t.CPUCores > 0
}

// Counters is a point-in-time snapshot of all cumulative counters.
type Counters struct {
	Blkio BlkioCounters
	CPU   CPUCounters
	Perf  PerfCounters
}

// Cgroup is one control group. All methods are safe for concurrent use:
// the resource models write from the simulation tick while monitors may
// snapshot from test code.
type Cgroup struct {
	name string

	mu       sync.Mutex
	counters Counters
	throttle Throttle

	// throttleSeq counts SetThrottle calls. Loading it is a single atomic
	// read, so per-tick code can detect "caps unchanged since my snapshot"
	// without taking the mutex.
	throttleSeq atomic.Uint64
}

// New creates an empty cgroup with the given name (conventionally the VM id).
func New(name string) *Cgroup {
	return &Cgroup{name: name}
}

// Name returns the cgroup's name.
func (c *Cgroup) Name() string { return c.name }

// AddBlkio accumulates one tick's worth of block-I/O activity.
func (c *Cgroup) AddBlkio(ops, bytes, waitMs float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counters.Blkio.IoServiced += ops
	c.counters.Blkio.IoServiceBytes += bytes
	c.counters.Blkio.IoWaitTimeMs += waitMs
}

// AddCPU accumulates consumed core-seconds.
func (c *Cgroup) AddCPU(coreSeconds float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counters.CPU.UsageSeconds += coreSeconds
}

// AddPerf accumulates hardware-counter readings.
func (c *Cgroup) AddPerf(cycles, instructions, llcRefs, llcMisses float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counters.Perf.Cycles += cycles
	c.counters.Perf.Instructions += instructions
	c.counters.Perf.LLCReferences += llcRefs
	c.counters.Perf.LLCMisses += llcMisses
}

// AddTick accumulates one tick's worth of everything — blkio, cpuacct
// and perf — under a single lock round-trip. Equivalent to AddBlkio +
// AddCPU + AddPerf; the cluster's per-tick accounting uses it so each VM
// costs one mutex acquisition per tick instead of three.
func (c *Cgroup) AddTick(ops, bytes, waitMs, coreSeconds, cycles, instructions, llcRefs, llcMisses float64) {
	if ops == 0 && bytes == 0 && waitMs == 0 && coreSeconds == 0 &&
		cycles == 0 && instructions == 0 && llcRefs == 0 && llcMisses == 0 {
		// A tick that delivered nothing leaves every counter bit-identical:
		// the counters are sums of nonnegative values (so never -0), and
		// adding zero to such a float is exact. Skipping the lock round-trip
		// makes idle-VM ticks on busy servers free.
		return
	}
	c.mu.Lock()
	c.counters.Blkio.IoServiced += ops
	c.counters.Blkio.IoServiceBytes += bytes
	c.counters.Blkio.IoWaitTimeMs += waitMs
	c.counters.CPU.UsageSeconds += coreSeconds
	c.counters.Perf.Cycles += cycles
	c.counters.Perf.Instructions += instructions
	c.counters.Perf.LLCReferences += llcRefs
	c.counters.Perf.LLCMisses += llcMisses
	c.mu.Unlock()
}

// Snapshot returns a copy of all cumulative counters.
func (c *Cgroup) Snapshot() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters
}

// Throttle returns the currently applied caps.
func (c *Cgroup) Throttle() Throttle {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.throttle
}

// SetThrottle replaces all caps at once.
func (c *Cgroup) SetThrottle(t Throttle) {
	if t.ReadIOPS < 0 || t.ReadBPS < 0 || t.CPUCores < 0 {
		panic(fmt.Sprintf("cgroup %s: negative throttle %+v", c.name, t))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.throttle = t
	c.throttleSeq.Add(1)
}

// ThrottleSeq returns a counter that advances on every SetThrottle call.
// A caller that snapshotted the caps may later compare sequence numbers
// to learn — without taking the cgroup lock — that they are still in
// force.
func (c *Cgroup) ThrottleSeq() uint64 { return c.throttleSeq.Load() }

// SetReadIOPS sets the IOPS cap (0 = unlimited).
func (c *Cgroup) SetReadIOPS(v float64) {
	t := c.Throttle()
	t.ReadIOPS = v
	c.SetThrottle(t)
}

// SetReadBPS sets the bytes-per-second cap (0 = unlimited).
func (c *Cgroup) SetReadBPS(v float64) {
	t := c.Throttle()
	t.ReadBPS = v
	c.SetThrottle(t)
}

// SetCPUCores sets the CFS quota in cores (0 = unlimited).
func (c *Cgroup) SetCPUCores(v float64) {
	t := c.Throttle()
	t.CPUCores = v
	c.SetThrottle(t)
}

// Delta computes the counter difference now - prev, used by monitors that
// sample cumulative counters at fixed intervals.
func Delta(now, prev Counters) Counters {
	return Counters{
		Blkio: BlkioCounters{
			IoServiced:     now.Blkio.IoServiced - prev.Blkio.IoServiced,
			IoServiceBytes: now.Blkio.IoServiceBytes - prev.Blkio.IoServiceBytes,
			IoWaitTimeMs:   now.Blkio.IoWaitTimeMs - prev.Blkio.IoWaitTimeMs,
		},
		CPU: CPUCounters{
			UsageSeconds: now.CPU.UsageSeconds - prev.CPU.UsageSeconds,
		},
		Perf: PerfCounters{
			Cycles:        now.Perf.Cycles - prev.Perf.Cycles,
			Instructions:  now.Perf.Instructions - prev.Perf.Instructions,
			LLCReferences: now.Perf.LLCReferences - prev.Perf.LLCReferences,
			LLCMisses:     now.Perf.LLCMisses - prev.Perf.LLCMisses,
		},
	}
}

// IowaitRatio returns the average queueing delay per I/O operation
// (ms/op) over a delta interval — the paper's block-iowait ratio,
// blkio.io_wait_time / blkio.io_serviced. Intervals with no completed
// operations report 0: an idle VM contributes no deviation signal.
func (c Counters) IowaitRatio() float64 {
	if c.Blkio.IoServiced == 0 {
		return 0
	}
	return c.Blkio.IoWaitTimeMs / c.Blkio.IoServiced
}
