package cgroup

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAccumulationAndSnapshot(t *testing.T) {
	c := New("vm-0")
	if c.Name() != "vm-0" {
		t.Errorf("name = %q", c.Name())
	}
	c.AddBlkio(10, 4096, 5)
	c.AddBlkio(5, 2048, 2.5)
	c.AddCPU(0.2)
	c.AddPerf(2e9, 1e9, 1e6, 5e5)
	s := c.Snapshot()
	if s.Blkio.IoServiced != 15 || s.Blkio.IoServiceBytes != 6144 || s.Blkio.IoWaitTimeMs != 7.5 {
		t.Errorf("blkio = %+v", s.Blkio)
	}
	if s.CPU.UsageSeconds != 0.2 {
		t.Errorf("cpu = %+v", s.CPU)
	}
	if s.Perf.Cycles != 2e9 || s.Perf.Instructions != 1e9 {
		t.Errorf("perf = %+v", s.Perf)
	}
	if got := s.Perf.CPI(); got != 2 {
		t.Errorf("CPI = %v, want 2", got)
	}
}

func TestCPIZeroInstructions(t *testing.T) {
	var p PerfCounters
	if p.CPI() != 0 {
		t.Error("CPI with zero instructions should be 0")
	}
}

func TestDelta(t *testing.T) {
	c := New("vm-0")
	c.AddBlkio(10, 1000, 4)
	prev := c.Snapshot()
	c.AddBlkio(20, 3000, 16)
	c.AddCPU(0.5)
	c.AddPerf(100, 50, 10, 5)
	d := Delta(c.Snapshot(), prev)
	if d.Blkio.IoServiced != 20 || d.Blkio.IoServiceBytes != 3000 || d.Blkio.IoWaitTimeMs != 16 {
		t.Errorf("blkio delta = %+v", d.Blkio)
	}
	if d.CPU.UsageSeconds != 0.5 {
		t.Errorf("cpu delta = %+v", d.CPU)
	}
	if d.Perf.Cycles != 100 || d.Perf.LLCMisses != 5 {
		t.Errorf("perf delta = %+v", d.Perf)
	}
}

func TestIowaitRatio(t *testing.T) {
	d := Counters{Blkio: BlkioCounters{IoServiced: 4, IoWaitTimeMs: 20}}
	if got := d.IowaitRatio(); got != 5 {
		t.Errorf("ratio = %v, want 5", got)
	}
	idle := Counters{}
	if idle.IowaitRatio() != 0 {
		t.Error("idle interval ratio should be 0")
	}
}

func TestThrottleKnobs(t *testing.T) {
	c := New("vm-0")
	if th := c.Throttle(); th.ReadIOPS != 0 || th.ReadBPS != 0 || th.CPUCores != 0 {
		t.Errorf("default throttle should be unlimited: %+v", th)
	}
	c.SetReadIOPS(500)
	c.SetReadBPS(1 << 20)
	c.SetCPUCores(1.5)
	th := c.Throttle()
	if th.ReadIOPS != 500 || th.ReadBPS != 1<<20 || th.CPUCores != 1.5 {
		t.Errorf("throttle = %+v", th)
	}
	// Individual setters must not clobber other knobs.
	c.SetReadIOPS(100)
	th = c.Throttle()
	if th.ReadBPS != 1<<20 || th.CPUCores != 1.5 {
		t.Errorf("setter clobbered other knobs: %+v", th)
	}
}

func TestNegativeThrottlePanics(t *testing.T) {
	c := New("vm-0")
	defer func() {
		if recover() == nil {
			t.Error("want panic for negative throttle")
		}
	}()
	c.SetThrottle(Throttle{ReadIOPS: -1})
}

func TestConcurrentAccess(t *testing.T) {
	c := New("vm-0")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AddBlkio(1, 10, 0.5)
				c.AddCPU(0.001)
				_ = c.Snapshot()
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Blkio.IoServiced != 8000 {
		t.Errorf("IoServiced = %v, want 8000", s.Blkio.IoServiced)
	}
}

// Property: counters are monotonically nondecreasing under Add operations,
// and Delta of successive snapshots is always nonnegative.
func TestPropertyMonotoneCounters(t *testing.T) {
	f := func(ops, bytes, wait []uint16) bool {
		c := New("p")
		prev := c.Snapshot()
		n := len(ops)
		if len(bytes) < n {
			n = len(bytes)
		}
		if len(wait) < n {
			n = len(wait)
		}
		for i := 0; i < n; i++ {
			c.AddBlkio(float64(ops[i]), float64(bytes[i]), float64(wait[i]))
			now := c.Snapshot()
			d := Delta(now, prev)
			if d.Blkio.IoServiced < 0 || d.Blkio.IoServiceBytes < 0 || d.Blkio.IoWaitTimeMs < 0 {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
