package hypervisor

import (
	"errors"
	"testing"
	"time"

	"perfcloud/internal/cluster"
	"perfcloud/internal/sim"
)

func setup(t *testing.T) (*sim.Engine, *cluster.Cluster, *Hypervisor) {
	t.Helper()
	eng := sim.NewEngine(100*time.Millisecond, 1)
	c := cluster.New()
	srv := c.AddServer("s0", cluster.DefaultServerConfig(), eng.RNG())
	c.AddVM(srv, "vm-a", 2, 8<<30, cluster.HighPriority, "app")
	c.AddVM(srv, "vm-b", 2, 8<<30, cluster.LowPriority, "")
	eng.Register(c)
	return eng, c, New(srv)
}

func TestListDomains(t *testing.T) {
	_, _, h := setup(t)
	doms := h.ListDomains()
	if len(doms) != 2 || doms[0] != "vm-a" || doms[1] != "vm-b" {
		t.Errorf("domains = %v", doms)
	}
	if h.ServerID() != "s0" {
		t.Errorf("server id = %q", h.ServerID())
	}
}

func TestDomainStats(t *testing.T) {
	_, c, h := setup(t)
	c.FindVM("vm-a").Cgroup().AddBlkio(10, 4096, 5)
	s, err := h.DomainStats("vm-a")
	if err != nil {
		t.Fatal(err)
	}
	if s.Blkio.IoServiced != 10 {
		t.Errorf("stats = %+v", s.Blkio)
	}
	_, err = h.DomainStats("nope")
	var nd ErrNoDomain
	if !errors.As(err, &nd) || nd.ID != "nope" {
		t.Errorf("err = %v, want ErrNoDomain{nope}", err)
	}
}

func TestApplyAndClearCaps(t *testing.T) {
	_, c, h := setup(t)
	if err := h.SetVCPUQuota("vm-b", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := h.SetBlkioThrottleIOPS("vm-b", 2000); err != nil {
		t.Fatal(err)
	}
	if err := h.SetBlkioThrottleBPS("vm-b", 1<<20); err != nil {
		t.Fatal(err)
	}
	th := c.FindVM("vm-b").Cgroup().Throttle()
	if th.CPUCores != 0.5 || th.ReadIOPS != 2000 || th.ReadBPS != 1<<20 {
		t.Errorf("throttle = %+v", th)
	}
	got, err := h.Throttle("vm-b")
	if err != nil || got != th {
		t.Errorf("Throttle() = %+v, %v", got, err)
	}
	if err := h.ClearThrottle("vm-b"); err != nil {
		t.Fatal(err)
	}
	if th := c.FindVM("vm-b").Cgroup().Throttle(); th.CPUCores != 0 || th.ReadIOPS != 0 {
		t.Errorf("after clear: %+v", th)
	}
}

func TestUnknownDomainErrors(t *testing.T) {
	_, _, h := setup(t)
	if err := h.SetVCPUQuota("nope", 1); err == nil {
		t.Error("SetVCPUQuota: want error")
	}
	if err := h.SetBlkioThrottleIOPS("nope", 1); err == nil {
		t.Error("SetBlkioThrottleIOPS: want error")
	}
	if err := h.SetBlkioThrottleBPS("nope", 1); err == nil {
		t.Error("SetBlkioThrottleBPS: want error")
	}
	if err := h.ClearThrottle("nope"); err == nil {
		t.Error("ClearThrottle: want error")
	}
	if _, err := h.Throttle("nope"); err == nil {
		t.Error("Throttle: want error")
	}
}

func TestNegativeCapsRejected(t *testing.T) {
	_, _, h := setup(t)
	if err := h.SetVCPUQuota("vm-b", -1); err == nil {
		t.Error("negative quota: want error")
	}
	if err := h.SetBlkioThrottleIOPS("vm-b", -1); err == nil {
		t.Error("negative iops: want error")
	}
	if err := h.SetBlkioThrottleBPS("vm-b", -1); err == nil {
		t.Error("negative bps: want error")
	}
}
