// Package hypervisor is the libvirt-like facade PerfCloud's node manager
// uses on each physical server: listing domains (VMs), reading per-domain
// block-I/O, CPU and hardware-counter statistics, and applying resource
// caps — the CPU cap through vcpu_quota and the I/O caps through the
// blkio subsystem's throttling policy (§III-D2).
//
// The facade deliberately exposes only what the paper's agent consumes,
// keeping the VM a black box: no workload state, no application metrics.
package hypervisor

import (
	"fmt"

	"perfcloud/internal/cgroup"
	"perfcloud/internal/cluster"
)

// ErrNoDomain is returned for operations on unknown domain ids.
type ErrNoDomain struct{ ID string }

func (e ErrNoDomain) Error() string { return fmt.Sprintf("hypervisor: no domain %q", e.ID) }

// Hypervisor wraps one physical server.
type Hypervisor struct {
	server *cluster.Server
}

// New creates a facade over a server.
func New(s *cluster.Server) *Hypervisor { return &Hypervisor{server: s} }

// ServerID returns the id of the wrapped server.
func (h *Hypervisor) ServerID() string { return h.server.ID() }

// PlacementEpoch returns the server's placement-change counter. While it
// is unchanged, EachDomainStats reports the same domains in the same
// order, so samplers may reuse slice-indexed per-domain state instead of
// re-resolving domain ids every interval.
func (h *Hypervisor) PlacementEpoch() uint64 { return h.server.PlacementEpoch() }

// ListDomains returns the ids of all VMs on the server.
func (h *Hypervisor) ListDomains() []string {
	out := make([]string, 0, h.server.NumVMs())
	h.EachDomain(func(id string) { out = append(out, id) })
	return out
}

// EachDomain calls fn once per domain id in placement order — the
// non-allocating ListDomains for callers that run every interval.
func (h *Hypervisor) EachDomain(fn func(id string)) {
	h.server.EachVM(func(v *cluster.VM) {
		fn(v.ID())
	})
}

// EachDomainStats calls fn once per domain, in placement order, with the
// domain id and its cumulative cgroup counters. It is the allocation-lean
// path samplers use instead of ListDomains + per-id DomainStats lookups.
func (h *Hypervisor) EachDomainStats(fn func(id string, c cgroup.Counters)) {
	h.server.EachVM(func(v *cluster.VM) {
		fn(v.ID(), v.Cgroup().Snapshot())
	})
}

func (h *Hypervisor) domain(id string) (*cluster.VM, error) {
	if v := h.server.FindVM(id); v != nil {
		return v, nil
	}
	return nil, ErrNoDomain{ID: id}
}

// DomainStats returns the cumulative cgroup counters for a domain:
// blkio.io_serviced / io_service_bytes / io_wait_time, cpuacct usage and
// the perf_event counters, all as libvirt + perf would report them.
func (h *Hypervisor) DomainStats(id string) (cgroup.Counters, error) {
	v, err := h.domain(id)
	if err != nil {
		return cgroup.Counters{}, err
	}
	return v.Cgroup().Snapshot(), nil
}

// SetVCPUQuota applies a CPU hard cap in cores (0 clears the cap).
func (h *Hypervisor) SetVCPUQuota(id string, cores float64) error {
	v, err := h.domain(id)
	if err != nil {
		return err
	}
	if cores < 0 {
		return fmt.Errorf("hypervisor: negative vcpu quota %v for %q", cores, id)
	}
	v.Cgroup().SetCPUCores(cores)
	v.Server().MarkDirty()
	return nil
}

// SetBlkioThrottleIOPS applies a read-IOPS cap (0 clears the cap).
func (h *Hypervisor) SetBlkioThrottleIOPS(id string, iops float64) error {
	v, err := h.domain(id)
	if err != nil {
		return err
	}
	if iops < 0 {
		return fmt.Errorf("hypervisor: negative iops cap %v for %q", iops, id)
	}
	v.Cgroup().SetReadIOPS(iops)
	v.Server().MarkDirty()
	return nil
}

// SetBlkioThrottleBPS applies a read bytes-per-second cap (0 clears it).
func (h *Hypervisor) SetBlkioThrottleBPS(id string, bps float64) error {
	v, err := h.domain(id)
	if err != nil {
		return err
	}
	if bps < 0 {
		return fmt.Errorf("hypervisor: negative bps cap %v for %q", bps, id)
	}
	v.Cgroup().SetReadBPS(bps)
	v.Server().MarkDirty()
	return nil
}

// Throttle returns the caps currently applied to a domain.
func (h *Hypervisor) Throttle(id string) (cgroup.Throttle, error) {
	v, err := h.domain(id)
	if err != nil {
		return cgroup.Throttle{}, err
	}
	return v.Cgroup().Throttle(), nil
}

// ClearThrottle removes all caps from a domain.
func (h *Hypervisor) ClearThrottle(id string) error {
	v, err := h.domain(id)
	if err != nil {
		return err
	}
	v.Cgroup().SetThrottle(cgroup.Throttle{})
	v.Server().MarkDirty()
	return nil
}
