package workloads

import (
	"testing"
	"time"

	"perfcloud/internal/cluster"
)

const tick = 0.1

// drain simulates granting the full demand each tick for n ticks.
func drain(w *Benchmark, n int) {
	for i := 0; i < n && !w.Done(); i++ {
		d := w.Demand(tick)
		g := cluster.Grant{
			CPUSeconds:   d.CPUSeconds,
			IOOps:        d.IOOps,
			IOBytes:      d.IOBytes,
			Instructions: d.CPUSeconds * 2.3e9, // CPI 1 equivalent
			CPI:          1,
			MemBytes:     d.CPUSeconds * 2.3e9 * d.BytesPerInstr,
		}
		w.Advance(tick, g)
	}
}

func TestAlwaysOnDemand(t *testing.T) {
	w := NewFioRandRead(AlwaysOn)
	d := w.Demand(tick)
	if d.IOOps != 800 { // 8000 IOPS * 0.1 s
		t.Errorf("IOOps = %v, want 800", d.IOOps)
	}
	if d.IOBytes != 800*4096 {
		t.Errorf("IOBytes = %v", d.IOBytes)
	}
	if d.CPUSeconds <= 0 {
		t.Errorf("CPUSeconds = %v", d.CPUSeconds)
	}
	if !w.Active() {
		t.Error("always-on should be active")
	}
}

func TestBurstPattern(t *testing.T) {
	b := BurstPattern{On: 2 * time.Second, Off: time.Second}
	cases := []struct {
		t      time.Duration
		active bool
	}{
		{0, true},
		{1900 * time.Millisecond, true},
		{2100 * time.Millisecond, false},
		{2900 * time.Millisecond, false},
		{3 * time.Second, true},
		{5 * time.Second, false},
	}
	for _, c := range cases {
		if got := b.active(c.t); got != c.active {
			t.Errorf("active(%v) = %v, want %v", c.t, got, c.active)
		}
	}
}

func TestBurstStartOffset(t *testing.T) {
	b := BurstPattern{On: time.Second, Off: time.Second, StartOffset: 5 * time.Second}
	if b.active(4 * time.Second) {
		t.Error("should be idle before offset")
	}
	if !b.active(5 * time.Second) {
		t.Error("should be active right at offset")
	}
}

func TestOffPhaseZeroDemand(t *testing.T) {
	w := NewFioRandRead(BurstPattern{On: time.Second, Off: time.Second})
	drain(w, 10) // first second on
	// Now at t=1.0s: off phase.
	d := w.Demand(tick)
	if d.IOOps != 0 || d.CPUSeconds != 0 {
		t.Errorf("off-phase demand = %+v", d)
	}
}

func TestAchievedIOPSCountsActiveTimeOnly(t *testing.T) {
	w := NewFioRandRead(BurstPattern{On: time.Second, Off: time.Second})
	drain(w, 20) // 1 s on, 1 s off
	// 10 active ticks * 800 ops = 8000 ops over 1 active second.
	if got := w.AchievedIOPS(); got < 7900 || got > 8100 {
		t.Errorf("AchievedIOPS = %v, want ~8000", got)
	}
	if w.Elapsed() != 2*time.Second {
		t.Errorf("Elapsed = %v", w.Elapsed())
	}
}

func TestZeroActiveTimeMetrics(t *testing.T) {
	w := NewFioRandRead(BurstPattern{StartOffset: time.Hour, On: time.Second, Off: time.Second})
	if w.AchievedIOPS() != 0 || w.MemThroughput() != 0 || w.InstrRate() != 0 {
		t.Error("metrics before any activity should be 0")
	}
}

func TestLimitsTerminate(t *testing.T) {
	w := NewBenchmark("x", Profile{CPUCores: 1, IOPS: 100, OpBytes: 512, CoreCPI: 1},
		AlwaysOn, Limits{Ops: 50})
	drain(w, 100)
	if !w.Done() {
		t.Fatal("should be done after ops limit")
	}
	if w.TotalOps() < 50 {
		t.Errorf("TotalOps = %v", w.TotalOps())
	}
	// Once done, Active is false and demand is zero.
	if w.Active() {
		t.Error("done workload should be inactive")
	}
	if d := w.Demand(tick); d.IOOps != 0 {
		t.Errorf("done demand = %+v", d)
	}
}

func TestStreamWithWorkCompletes(t *testing.T) {
	w := NewStreamWithWork(AlwaysOn, 1e9)
	drain(w, 1000)
	if !w.Done() {
		t.Fatalf("stream should finish its work; moved %v bytes", w.TotalMemBytes())
	}
}

func TestStreamProfileSaturatesBandwidth(t *testing.T) {
	w := NewStream(AlwaysOn)
	d := w.Demand(tick)
	if d.BytesPerInstr < 4 {
		t.Errorf("STREAM BytesPerInstr = %v, want high", d.BytesPerInstr)
	}
	if d.WorkingSetBytes < 1<<30 {
		t.Errorf("STREAM working set = %v, want >> LLC", d.WorkingSetBytes)
	}
	if d.IOOps != 0 {
		t.Errorf("STREAM should not do disk I/O, got %v ops", d.IOOps)
	}
}

func TestDecoyProfilesAreModerate(t *testing.T) {
	oltp := NewSysbenchOLTP(AlwaysOn).Demand(tick)
	if oltp.IOOps <= 0 || oltp.IOOps > 100 {
		t.Errorf("oltp IOOps per tick = %v, want moderate", oltp.IOOps)
	}
	cpu := NewSysbenchCPU(AlwaysOn).Demand(tick)
	if cpu.IOOps != 0 {
		t.Errorf("sysbench cpu should not do I/O")
	}
	if cpu.WorkingSetBytes > 8<<20 {
		t.Errorf("sysbench cpu working set = %v, want tiny", cpu.WorkingSetBytes)
	}
}

func TestMemThroughputAndInstrRate(t *testing.T) {
	w := NewStream(AlwaysOn)
	drain(w, 10)
	if w.MemThroughput() <= 0 || w.InstrRate() <= 0 {
		t.Errorf("throughput = %v, instr rate = %v", w.MemThroughput(), w.InstrRate())
	}
}

func TestNegativeProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewBenchmark("bad", Profile{CPUCores: -1}, AlwaysOn, Limits{})
}
