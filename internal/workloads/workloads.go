// Package workloads implements the antagonist and decoy benchmarks the
// paper colocates with the data-intensive applications: the fio random
// read I/O stressor, the STREAM memory-bandwidth stressor, and the
// sysbench oltp / sysbench cpu decoys (§II, §III-B).
//
// Every benchmark is a cluster.Workload built from a steady-state demand
// Profile and an on/off BurstPattern. Bursts matter for two reasons drawn
// from the paper's methodology: antagonist identification correlates the
// victim's deviation signal with each suspect's activity over time (a
// perfectly constant suspect carries no correlation signal), and idle
// phases produce the missing measurement intervals that exercise the
// missing-as-zero Pearson rule of §III-B.
package workloads

import (
	"fmt"
	"time"

	"perfcloud/internal/cluster"
)

// Profile is a benchmark's steady-state demand while in an "on" phase,
// expressed per second of wall time.
type Profile struct {
	CPUCores float64 // cores of CPU demand
	IOPS     float64 // block I/O operations per second
	OpBytes  float64 // bytes per operation

	// Memory behaviour (see memsys.Request).
	CoreCPI         float64
	LLCRefsPerInstr float64
	BytesPerInstr   float64
	WorkingSetBytes float64
}

// BurstPattern alternates on and off phases. A zero Off means always on.
type BurstPattern struct {
	On          time.Duration // length of an active phase
	Off         time.Duration // length of an idle phase (0 = always on)
	StartOffset time.Duration // delay before the first active phase
}

// AlwaysOn is the degenerate burst pattern with no idle phases.
var AlwaysOn = BurstPattern{}

// active reports whether the pattern is in an "on" phase at elapsed t.
func (b BurstPattern) active(t time.Duration) bool {
	if t < b.StartOffset {
		return false
	}
	if b.Off <= 0 || b.On <= 0 {
		return true
	}
	period := b.On + b.Off
	return (t-b.StartOffset)%period < b.On
}

// Limits terminate a benchmark once any nonzero threshold is reached;
// all-zero limits mean the benchmark runs until the scenario ends.
type Limits struct {
	Ops          float64 // total I/O operations
	MemBytes     float64 // total memory traffic (STREAM's work metric)
	Instructions float64 // total instructions retired
}

// Benchmark is a synthetic workload driven by a Profile and BurstPattern.
// It implements cluster.Workload.
type Benchmark struct {
	name    string
	profile Profile
	pattern BurstPattern
	limits  Limits
	harm    string // resource channel this benchmark genuinely pressures

	elapsed    time.Duration // simulated wall time observed via Advance
	activeSecs float64       // seconds spent in "on" phases

	// epoch implements cluster.DemandEpocher: it advances whenever the
	// next Demand call could return something different. A benchmark's
	// demand is its constant profile gated by Active(), so the epoch moves
	// exactly on burst-phase flips, on completion (a limit reached) and on
	// SetLimits; between flips a server may reuse its cached request
	// vectors.
	epoch uint64

	totalOps      float64
	totalBytes    float64
	totalInstr    float64
	totalMemBytes float64
	totalCPUSecs  float64
	totalWaitMs   float64
}

var _ cluster.Workload = (*Benchmark)(nil)

// NewBenchmark builds a benchmark from its parts.
func NewBenchmark(name string, p Profile, b BurstPattern, l Limits) *Benchmark {
	if p.CPUCores < 0 || p.IOPS < 0 {
		panic(fmt.Sprintf("workloads: negative profile %+v", p))
	}
	return &Benchmark{name: name, profile: p, pattern: b, limits: l}
}

// Name returns the benchmark's name.
func (w *Benchmark) Name() string { return w.name }

// SetLimits replaces the benchmark's termination limits (e.g. to give an
// endless antagonist a finite amount of work mid-experiment).
//
// Done is terminal as far as the cluster's quiescence machinery is
// concerned: once every workload on a server reports Done the server may
// be parked out of the active set and stop ticking. Widening the limits
// of a finished benchmark to re-arm it therefore also requires
// cluster.Server.MarkDirty on the hosting server, so the server rejoins
// the active set and observes the revived demand.
func (w *Benchmark) SetLimits(l Limits) {
	w.limits = l
	w.epoch++ // may flip Done and hence Active
}

// DemandEpoch implements cluster.DemandEpocher.
func (w *Benchmark) DemandEpoch() uint64 { return w.epoch }

// Pattern returns the benchmark's burst schedule — the testbed's
// ground-truth registry records it so detection scorecards can compute
// when an antagonist was genuinely active.
func (w *Benchmark) Pattern() BurstPattern { return w.pattern }

// HarmChannel names the resource channel the benchmark saturates when
// active — "io" (fio), "cpu" (STREAM's bandwidth pressure surfaces as
// CPI inflation) or "" for decoys that never harm colocated tenants.
// It is ground truth for scoring, invisible to the detector itself.
func (w *Benchmark) HarmChannel() string { return w.harm }

// SetHarmChannel tags a custom benchmark as a genuine antagonist on the
// given channel; the stock constructors tag themselves.
func (w *Benchmark) SetHarmChannel(ch string) { w.harm = ch }

// Active reports whether the benchmark is currently in an "on" phase.
func (w *Benchmark) Active() bool { return w.pattern.active(w.elapsed) && !w.Done() }

// Demand implements cluster.Workload.
func (w *Benchmark) Demand(tickSec float64) cluster.Demand {
	if !w.Active() {
		return cluster.Demand{}
	}
	p := w.profile
	return cluster.Demand{
		CPUSeconds:      p.CPUCores * tickSec,
		IOOps:           p.IOPS * tickSec,
		IOBytes:         p.IOPS * p.OpBytes * tickSec,
		CoreCPI:         p.CoreCPI,
		LLCRefsPerInstr: p.LLCRefsPerInstr,
		BytesPerInstr:   p.BytesPerInstr,
		WorkingSetBytes: p.WorkingSetBytes,
	}
}

// Advance implements cluster.Workload.
func (w *Benchmark) Advance(tickSec float64, g cluster.Grant) {
	wasActive := w.Active()
	if wasActive {
		w.activeSecs += tickSec
	}
	w.elapsed += time.Duration(tickSec * float64(time.Second))
	w.totalOps += g.IOOps
	w.totalBytes += g.IOBytes
	w.totalInstr += g.Instructions
	w.totalMemBytes += g.MemBytes
	w.totalCPUSecs += g.CPUSeconds
	w.totalWaitMs += g.IOWaitMs
	if w.Active() != wasActive {
		w.epoch++ // burst-phase flip or a limit reached: demand changed
	}
}

// Done implements cluster.Workload.
func (w *Benchmark) Done() bool {
	if w.limits.Ops > 0 && w.totalOps >= w.limits.Ops {
		return true
	}
	if w.limits.MemBytes > 0 && w.totalMemBytes >= w.limits.MemBytes {
		return true
	}
	if w.limits.Instructions > 0 && w.totalInstr >= w.limits.Instructions {
		return true
	}
	return false
}

// AchievedIOPS is the benchmark's average I/O rate over its active time —
// the metric the paper reports for fio (normalized against running alone).
func (w *Benchmark) AchievedIOPS() float64 {
	if w.activeSecs == 0 {
		return 0
	}
	return w.totalOps / w.activeSecs
}

// MemThroughput is the average memory traffic over active time (bytes/s)
// — STREAM's figure of merit.
func (w *Benchmark) MemThroughput() float64 {
	if w.activeSecs == 0 {
		return 0
	}
	return w.totalMemBytes / w.activeSecs
}

// InstrRate is the average instruction rate over active time.
func (w *Benchmark) InstrRate() float64 {
	if w.activeSecs == 0 {
		return 0
	}
	return w.totalInstr / w.activeSecs
}

// TotalOps returns cumulative completed I/O operations.
func (w *Benchmark) TotalOps() float64 { return w.totalOps }

// TotalMemBytes returns cumulative memory traffic.
func (w *Benchmark) TotalMemBytes() float64 { return w.totalMemBytes }

// Elapsed returns total simulated wall time observed by the benchmark.
func (w *Benchmark) Elapsed() time.Duration { return w.elapsed }

// NewFioRandRead builds the fio 4 KiB random-read stressor: a saturating
// small-op read load with negligible cache footprint. With default device
// capacity (10k IOPS) its 8k IOPS demand makes any colocated I/O-bound
// application contend heavily, reproducing Fig. 1's degradations.
func NewFioRandRead(pattern BurstPattern) *Benchmark {
	b := NewBenchmark("fio-randread", Profile{
		CPUCores:        0.4,
		IOPS:            8000,
		OpBytes:         4096,
		CoreCPI:         1.2,
		LLCRefsPerInstr: 0.005,
		BytesPerInstr:   0.05,
		WorkingSetBytes: 4 << 20,
	}, pattern, Limits{})
	b.harm = "io"
	return b
}

// NewStream builds the STREAM memory-bandwidth stressor: the paper runs
// it with eight threads over a two-billion-element array, i.e. a working
// set that dwarfs the LLC and a saturating bandwidth demand. Inside a
// 2-vcpu VM its CPU demand clamps at the vcpus; two such VMs together
// oversubscribe the default 60 GB/s host (the paper's "group of
// antagonists that individually do not have much effect", §III-B).
func NewStream(pattern BurstPattern) *Benchmark {
	b := NewBenchmark("stream", Profile{
		CPUCores:        8, // 8 threads; the VM's vcpus clamp applies
		IOPS:            0,
		CoreCPI:         0.7,
		LLCRefsPerInstr: 0.15,
		BytesPerInstr:   8,
		WorkingSetBytes: 16 << 30,
	}, pattern, Limits{})
	b.harm = "cpu"
	return b
}

// NewStreamWithWork is NewStream with a finite amount of memory traffic to
// move, after which the benchmark completes (Fig. 10's STREAM "finishes at
// different times under different schemes").
func NewStreamWithWork(pattern BurstPattern, totalBytes float64) *Benchmark {
	b := NewStream(pattern)
	b.limits.MemBytes = totalBytes
	return b
}

// NewSysbenchOLTP builds the sysbench read-only MySQL decoy: eight worker
// threads against a 10M-row table — moderate mixed I/O and CPU, far from
// saturating either resource.
func NewSysbenchOLTP(pattern BurstPattern) *Benchmark {
	return NewBenchmark("sysbench-oltp", Profile{
		CPUCores:        1.0,
		IOPS:            400,
		OpBytes:         16384,
		CoreCPI:         1.1,
		LLCRefsPerInstr: 0.02,
		BytesPerInstr:   0.4,
		WorkingSetBytes: 50 << 20,
	}, pattern, Limits{})
}

// NewSysbenchCPU builds the sysbench prime-computation decoy: four
// compute-bound threads with a tiny working set and no I/O.
func NewSysbenchCPU(pattern BurstPattern) *Benchmark {
	return NewBenchmark("sysbench-cpu", Profile{
		CPUCores:        4,
		IOPS:            0,
		CoreCPI:         0.6,
		LLCRefsPerInstr: 0.001,
		BytesPerInstr:   0.01,
		WorkingSetBytes: 1 << 20,
	}, pattern, Limits{})
}
