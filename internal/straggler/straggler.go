// Package straggler implements the application-level straggler-mitigation
// baselines the paper compares PerfCloud against (§IV-C):
//
//   - LATE [Zaharia et al., OSDI'08]: speculative execution that ranks
//     running tasks by estimated time to end and backs up the slowest
//     ones, capped at a fraction of slots;
//   - a naive progress-gap speculator (Hadoop's default heuristic),
//     kept as an ablation point;
//   - Dolly [Ananthanarayanan et al., NSDI'13]: proactive job-level
//     cloning — launch n identical clones, take the first finisher, kill
//     the rest. The paper uses job-level cloning (not task-level) since
//     the latter would require framework modification.
//
// LATE and the naive speculator plug into exec.TaskSet as Speculators;
// Dolly watches clone groups from outside the frameworks, exactly as a
// user-level tool would.
package straggler

import (
	"sort"

	"perfcloud/internal/exec"
	"perfcloud/internal/sim"
	"perfcloud/internal/stats"
)

// LATE is the Longest-Approximate-Time-to-End speculator.
type LATE struct {
	// SpeculativeCap bounds concurrently running speculative attempts to
	// this fraction of the set's tasks (LATE's 10% of slots).
	SpeculativeCap float64
	// SlowTaskPercentile: only tasks with a progress rate below this
	// percentile of all running tasks' rates are considered (LATE's 25th).
	SlowTaskPercentile float64
	// MinRuntimeSec avoids speculating tasks that just launched — the
	// "wait" part of wait-and-speculate the paper criticises.
	MinRuntimeSec float64

	// Per-call scratch, reused across ticks (Candidates runs on the
	// single simulation goroutine) so a speculation round allocates only
	// its small result slice.
	rates   []float64
	running []*exec.Attempt
	cands   []lateCand
}

type lateCand struct {
	task *exec.Task
	ete  float64 // estimated time to end
}

// NewLATE returns a LATE speculator with the paper's defaults.
func NewLATE() *LATE {
	return &LATE{SpeculativeCap: 0.1, SlowTaskPercentile: 25, MinRuntimeSec: 3}
}

var _ exec.Speculator = (*LATE)(nil)

// Candidates implements exec.Speculator.
func (l *LATE) Candidates(ts *exec.TaskSet, nowSec float64) []*exec.Task {
	rates := l.rates[:0]
	running := l.running[:0]
	speculating := 0
	// Iterate the live structures directly (tasks are created in id
	// order, so this matches the sorted order RunningAttempts would
	// give) instead of allocating a sorted copy every tick.
	ts.EachTask(func(t *exec.Task) {
		t.EachAttempt(func(a *exec.Attempt) {
			if a.State() != exec.AttemptRunning {
				return
			}
			if a.Speculative() {
				speculating++
				return
			}
			running = append(running, a)
			rates = append(rates, a.ProgressRate(nowSec))
		})
	})
	l.rates, l.running = rates, running
	if len(running) == 0 {
		return nil
	}
	allowed := int(l.SpeculativeCap*float64(ts.NumTasks()) + 0.5)
	if allowed < 1 {
		allowed = 1
	}
	budget := allowed - speculating
	if budget <= 0 {
		return nil
	}
	threshold := stats.Percentile(rates, l.SlowTaskPercentile)
	cands := l.cands[:0]
	for _, a := range running {
		if a.Runtime(nowSec) < l.MinRuntimeSec {
			continue
		}
		if runningCount(a.Task()) > 1 {
			continue // already has a backup
		}
		rate := a.ProgressRate(nowSec)
		if rate > threshold || rate <= 0 {
			continue
		}
		cands = append(cands, lateCand{task: a.Task(), ete: (1 - a.Progress()) / rate})
	}
	l.cands = cands
	// Longest estimated time to end first.
	sort.Slice(cands, func(i, j int) bool { return cands[i].ete > cands[j].ete })
	if len(cands) > budget {
		cands = cands[:budget]
	}
	out := make([]*exec.Task, len(cands))
	for i, c := range cands {
		out[i] = c.task
	}
	return out
}

// runningCount counts a task's running attempts without allocating the
// slice Task.Running builds.
func runningCount(t *exec.Task) int {
	n := 0
	t.EachAttempt(func(a *exec.Attempt) {
		if a.State() == exec.AttemptRunning {
			n++
		}
	})
	return n
}

// Naive is Hadoop's default progress-gap speculator: back up any task
// whose progress trails the running average by Gap after MinRuntimeSec.
type Naive struct {
	Gap           float64
	MinRuntimeSec float64
}

// NewNaive returns the classical 0.2-progress-gap speculator.
func NewNaive() *Naive { return &Naive{Gap: 0.2, MinRuntimeSec: 3} }

var _ exec.Speculator = (*Naive)(nil)

// Candidates implements exec.Speculator.
func (n *Naive) Candidates(ts *exec.TaskSet, nowSec float64) []*exec.Task {
	var progress []float64
	var running []*exec.Attempt
	ts.EachTask(func(t *exec.Task) {
		t.EachAttempt(func(a *exec.Attempt) {
			if a.State() != exec.AttemptRunning || a.Speculative() {
				return
			}
			running = append(running, a)
			progress = append(progress, a.Progress())
		})
	})
	if len(running) == 0 {
		return nil
	}
	avg := stats.Mean(progress)
	var out []*exec.Task
	for _, a := range running {
		if a.Runtime(nowSec) < n.MinRuntimeSec {
			continue
		}
		if runningCount(a.Task()) > 1 {
			continue
		}
		if a.Progress() < avg-n.Gap {
			out = append(out, a.Task())
		}
	}
	return out
}

// Clone is the framework-job surface Dolly needs: both mapreduce.Job and
// spark.App satisfy it.
type Clone interface {
	// Done reports whether the clone finished or was killed.
	Done() bool
	// Completed reports whether the clone finished successfully.
	Completed() bool
	// Kill terminates the clone at nowSec.
	Kill(nowSec float64)
	// JCT returns the clone's completion time (0 until done).
	JCT() float64
	// SubmitSec returns the clone's submission time.
	SubmitSec() float64
	// Account returns the clone's attempt-time accounting as of nowSec.
	Account(nowSec float64) exec.Accounting
}

// CloneGroup tracks the n clones of one logical job.
type CloneGroup struct {
	name   string
	clones []Clone
	winner Clone
}

// Name returns the group's logical-job name.
func (g *CloneGroup) Name() string { return g.name }

// Clones returns the clones being raced.
func (g *CloneGroup) Clones() []Clone { return append([]Clone(nil), g.clones...) }

// Winner returns the first clone to finish, or nil.
func (g *CloneGroup) Winner() Clone { return g.winner }

// Done reports whether the race has been decided.
func (g *CloneGroup) Done() bool { return g.winner != nil }

// Account returns the group's resource accounting: all clones' attempt
// time counts toward the total, but only the winner's completed work is
// useful — a losing clone's output is discarded even if it happened to
// finish in the same instant as the winner (Fig. 11c's metric).
func (g *CloneGroup) Account(nowSec float64) exec.Accounting {
	var acc exec.Accounting
	for _, cl := range g.clones {
		acc.TotalSeconds += cl.Account(nowSec).TotalSeconds
	}
	if g.winner != nil {
		acc.SuccessfulSeconds = g.winner.Account(nowSec).SuccessfulSeconds
	}
	return acc
}

// JCT returns the logical job's completion time: the winner's JCT.
func (g *CloneGroup) JCT() float64 {
	if g.winner == nil {
		return 0
	}
	return g.winner.JCT()
}

// Dolly watches clone groups, settling each race as soon as one clone
// completes by killing the losers. It implements sim.Tickable; register
// it after the frameworks so completions are observed promptly.
type Dolly struct {
	groups []*CloneGroup
}

// NewDolly creates an empty watcher.
func NewDolly() *Dolly { return &Dolly{} }

// Watch registers a group of clones of one logical job. The clones must
// already be submitted to their frameworks.
func (d *Dolly) Watch(name string, clones ...Clone) *CloneGroup {
	if len(clones) == 0 {
		panic("straggler: clone group needs at least one clone")
	}
	g := &CloneGroup{name: name, clones: clones}
	d.groups = append(d.groups, g)
	return g
}

// Groups returns all watched groups.
func (d *Dolly) Groups() []*CloneGroup { return append([]*CloneGroup(nil), d.groups...) }

// StrideQuiet reports whether the watcher's next Tick is provably a
// no-op: every race is already settled or has no completed clone yet.
// Clones complete only on engine ticks (their framework's harvest), so
// the answer stays valid across a stride (DESIGN.md §5.6).
func (d *Dolly) StrideQuiet() bool {
	for _, g := range d.groups {
		if g.winner != nil {
			continue
		}
		for _, cl := range g.clones {
			if cl.Completed() {
				return false
			}
		}
	}
	return true
}

// Tick implements sim.Tickable.
func (d *Dolly) Tick(c *sim.Clock) {
	now := c.Seconds()
	for _, g := range d.groups {
		if g.winner != nil {
			continue
		}
		for _, cl := range g.clones {
			if cl.Completed() {
				g.winner = cl
				break
			}
		}
		if g.winner == nil {
			continue
		}
		for _, cl := range g.clones {
			if cl != g.winner {
				cl.Kill(now)
			}
		}
	}
}
