package straggler

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"perfcloud/internal/cluster"
	"perfcloud/internal/dfs"
	"perfcloud/internal/exec"
	"perfcloud/internal/mapreduce"
	"perfcloud/internal/sim"
	"perfcloud/internal/spark"
	"perfcloud/internal/workloads"
)

// mrHarness builds a two-server setup: worker VMs spread across both,
// with an optional fio antagonist on server 0 creating a slow node.
type mrHarness struct {
	eng  *sim.Engine
	clus *cluster.Cluster
	pool exec.Pool
	fs   *dfs.FileSystem
	jt   *mapreduce.JobTracker
}

func newMRHarness(t *testing.T, spec exec.Speculator, withAntagonist bool) *mrHarness {
	t.Helper()
	h := &mrHarness{}
	h.eng = sim.NewEngine(100*time.Millisecond, 21)
	h.clus = cluster.New()
	s0 := h.clus.AddServer("s0", cluster.DefaultServerConfig(), h.eng.RNG())
	s1 := h.clus.AddServer("s1", cluster.DefaultServerConfig(), h.eng.RNG())
	var names []string
	for i := 0; i < 6; i++ {
		srv := s0
		if i >= 3 {
			srv = s1
		}
		id := fmt.Sprintf("hadoop-%d", i)
		vm := h.clus.AddVM(srv, id, 2, 8<<30, cluster.HighPriority, "hadoop")
		h.pool = append(h.pool, exec.NewExecutor(vm, 2))
		names = append(names, id)
	}
	if withAntagonist {
		vm := h.clus.AddVM(s0, "fio", 2, 8<<30, cluster.LowPriority, "")
		vm.SetWorkload(workloads.NewFioRandRead(workloads.AlwaysOn))
	}
	h.fs = dfs.New(dfs.DefaultConfig(), names, rand.New(rand.NewSource(5)))
	h.fs.Create("input", 640<<20)
	h.jt = mapreduce.NewJobTracker(h.pool, h.fs, spec)
	h.eng.RegisterPriority(h.jt, -1)
	h.eng.RegisterPriority(h.clus, 0)
	return h
}

func runJob(t *testing.T, h *mrHarness, cfg mapreduce.JobConfig) *mapreduce.Job {
	t.Helper()
	j, err := h.jt.Submit(cfg, h.eng.Clock().Seconds())
	if err != nil {
		t.Fatal(err)
	}
	if !h.eng.RunUntil(j.Done, time.Hour) {
		t.Fatalf("job stuck in %v", j.State())
	}
	return j
}

func TestLATESpeculatesUnderInterference(t *testing.T) {
	h := newMRHarness(t, NewLATE(), true)
	j := runJob(t, h, mapreduce.Terasort("input", 6))
	if !j.Completed() {
		t.Fatalf("state = %v", j.State())
	}
	spec := 0
	for _, ts := range j.TaskSets() {
		for _, task := range ts.Tasks() {
			for _, a := range task.Attempts() {
				if a.Speculative() {
					spec++
				}
			}
		}
	}
	if spec == 0 {
		t.Error("LATE launched no speculative attempts under interference")
	}
	// Speculation costs efficiency.
	if eff := j.Account(h.eng.Clock().Seconds()).Efficiency(); eff >= 1 {
		t.Errorf("efficiency = %v, want < 1 with speculation", eff)
	}
}

func TestLATEImprovesJCTUnderAsymmetricInterference(t *testing.T) {
	// The default 10% budget backs up one straggler at a time — often too
	// slow to move JCT when half the cluster is antagonized (exactly the
	// wait-and-speculate weakness the paper criticises). An aggressive
	// configuration shows the mechanism itself works: backups land on the
	// clean server and beat the originals.
	aggressive := &LATE{SpeculativeCap: 0.5, SlowTaskPercentile: 30, MinRuntimeSec: 1}
	none := runJob(t, newMRHarness(t, nil, true), mapreduce.Terasort("input", 6))
	late := runJob(t, newMRHarness(t, aggressive, true), mapreduce.Terasort("input", 6))
	if late.JCT() >= none.JCT() {
		t.Errorf("LATE JCT %v should beat no-mitigation %v with a slow node", late.JCT(), none.JCT())
	}
}

func TestLATEQuietWithoutInterference(t *testing.T) {
	h := newMRHarness(t, NewLATE(), false)
	j := runJob(t, h, mapreduce.Terasort("input", 6))
	spec := 0
	for _, ts := range j.TaskSets() {
		for _, task := range ts.Tasks() {
			for _, a := range task.Attempts() {
				if a.Speculative() {
					spec++
				}
			}
		}
	}
	// LATE's percentile rule always finds a "slowest" task, so a few
	// backups are expected even alone — but far fewer than task count.
	if spec > 6 {
		t.Errorf("speculative attempts alone = %d, want few", spec)
	}
}

func TestLATEBudgetRespected(t *testing.T) {
	h := newMRHarness(t, &LATE{SpeculativeCap: 0.1, SlowTaskPercentile: 25, MinRuntimeSec: 1}, true)
	j, _ := h.jt.Submit(mapreduce.Terasort("input", 6), 0)
	for i := 0; i < 3000 && !j.Done(); i++ {
		h.eng.Step()
		for _, ts := range j.TaskSets() {
			running := 0
			for _, a := range ts.RunningAttempts() {
				if a.Speculative() {
					running++
				}
			}
			// cap = max(1, 0.1*10 tasks) = 1 concurrent backup.
			if running > 1 {
				t.Fatalf("running speculative = %d, budget is 1", running)
			}
		}
	}
}

func TestNaiveSpeculator(t *testing.T) {
	h := newMRHarness(t, NewNaive(), true)
	j := runJob(t, h, mapreduce.Terasort("input", 6))
	if !j.Completed() {
		t.Fatalf("state = %v", j.State())
	}
}

func TestCandidatesEmptySets(t *testing.T) {
	ts := exec.NewTaskSet("empty", nil, nil)
	if got := NewLATE().Candidates(ts, 10); got != nil {
		t.Errorf("LATE on empty set = %v", got)
	}
	if got := NewNaive().Candidates(ts, 10); got != nil {
		t.Errorf("Naive on empty set = %v", got)
	}
}

func TestDollyPicksFirstFinisherAndKillsRest(t *testing.T) {
	h := newMRHarness(t, nil, true)
	d := NewDolly()
	h.eng.RegisterPriority(d, 1)

	now := h.eng.Clock().Seconds()
	var clones []Clone
	for i := 0; i < 3; i++ {
		j, err := h.jt.Submit(mapreduce.Terasort("input", 6), now)
		if err != nil {
			t.Fatal(err)
		}
		clones = append(clones, j)
	}
	g := d.Watch("terasort", clones...)
	if !h.eng.RunUntil(g.Done, time.Hour) {
		t.Fatal("race not decided")
	}
	if g.Winner() == nil || !g.Winner().Completed() {
		t.Fatal("no completed winner")
	}
	if g.JCT() != g.Winner().JCT() {
		t.Errorf("group JCT %v != winner JCT %v", g.JCT(), g.Winner().JCT())
	}
	losers := 0
	for _, cl := range g.Clones() {
		if cl != g.Winner() {
			if !cl.Done() || cl.Completed() {
				t.Error("loser should be killed")
			}
			losers++
		}
	}
	if losers != 2 {
		t.Errorf("losers = %d", losers)
	}
	if len(d.Groups()) != 1 {
		t.Errorf("groups = %d", len(d.Groups()))
	}
}

func TestDollyEfficiencyDropsWithClones(t *testing.T) {
	// Small I/O-heavy Spark jobs (3 tasks, no locality pinning) on a
	// 12-slot pool: clones run truly in parallel, as in the paper's
	// large-cluster setting. One clone's tasks land entirely on the
	// antagonized server, the next clone's on the clean one — the clean
	// clone wins and the losers are pure waste.
	stage := spark.AppConfig{Name: "smalljob", Stages: []spark.StageConfig{{
		Name: "load", NumTasks: 3, IOBytesPer: 64 << 20, InstrPerTask: 5e8,
		Shape: spark.StageConfig{}.Shape, // zero shape; CoreCPI defaults in exec
	}}}
	stage.Stages[0].Shape.CoreCPI = 0.9
	efficiency := func(n int) float64 {
		h := newMRHarness(t, nil, true)
		drv := spark.NewDriver(h.pool, nil)
		h.eng.RegisterPriority(drv, -1)
		d := NewDolly()
		h.eng.RegisterPriority(d, 1)
		var clones []Clone

		for i := 0; i < n; i++ {
			a, err := drv.Submit(stage, 0)
			if err != nil {
				t.Fatal(err)
			}
			clones = append(clones, a)

		}
		g := d.Watch("ts", clones...)
		if !h.eng.RunUntil(g.Done, time.Hour) {
			t.Fatal("race not decided")
		}
		h.eng.Run(1) // let the kill settle

		return g.Account(h.eng.Clock().Seconds()).Efficiency()
	}
	e2 := efficiency(2)
	e6 := efficiency(6)
	if e6 >= e2 {
		t.Errorf("Dolly-6 efficiency %v should be below Dolly-2 %v", e6, e2)
	}
	if e2 > 0.9 {
		t.Errorf("Dolly-2 efficiency = %v, want meaningful waste", e2)
	}
}

func TestDollyWatchPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewDolly().Watch("x")
}
