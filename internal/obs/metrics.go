// Package obs is the control plane's observability substrate: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms) with atomic hot-path updates, a typed decision-event log
// with deterministic JSONL encoding, and Prometheus-text exposition.
//
// Observability is opt-in and free when off: every constructor is
// nil-safe, so a component handed a nil *Registry receives nil
// instruments whose methods are single-branch no-ops — no allocation,
// no atomic traffic, no lock. The simulation's hot loops therefore pay
// nothing unless a registry is actually attached (DESIGN.md §5.4).
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, rendered as key="value" in the
// Prometheus exposition. Instruments with the same name but different
// label sets are distinct series of one family.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing count. The nil Counter is a
// valid no-op instrument.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on the nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down, stored as float64 bits. The
// nil Gauge is a valid no-op instrument.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by v (atomically, via CAS).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on the nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (cumulative at
// render time, as Prometheus expects). The nil Histogram is a valid
// no-op instrument.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64
	sum    Gauge
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 on the nil Histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on the nil Histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// metric family types, matching the Prometheus TYPE line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labelled instrument inside a family. Exactly one of the
// instrument pointers is set, matching the family type.
type series struct {
	labels  string // rendered sorted label set: `k1="v1",k2="v2"` or ""
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups every series registered under one metric name.
type family struct {
	name   string
	help   string
	typ    string
	bounds []float64 // histogram families only

	series []*series
	byKey  map[string]*series
}

// Registry holds instrument families and renders them as Prometheus
// text. The nil Registry is valid: every constructor returns the nil
// instrument, making observability free when off. Registration takes a
// lock; instrument updates are lock-free atomics.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter returns (registering on first use) the counter series with
// the given name and labels. Repeated calls with the same name and
// labels return the same instrument.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, typeCounter, nil, labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns (registering on first use) the gauge series with the
// given name and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, typeGauge, nil, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns (registering on first use) the histogram series
// with the given name, bucket upper bounds (ascending; the +Inf bucket
// is implicit) and labels. Buckets are fixed at first registration;
// later calls for the same family reuse them.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram buckets must be strictly ascending")
		}
	}
	s := r.lookup(name, help, typeHistogram, buckets, labels)
	if s.hist == nil {
		f := r.family(name)
		s.hist = &Histogram{
			bounds: f.bounds,
			counts: make([]atomic.Uint64, len(f.bounds)+1),
		}
	}
	return s.hist
}

// Value reads the current value of a registered instrument without
// creating it: counters and gauges report their value, histograms their
// observation count. The second return is false when the family or the
// labelled series does not exist (or the registry is nil) — how the
// alert engine evaluates metric rules without mutating the registry.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	if r == nil {
		return 0, false
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		return 0, false
	}
	s, ok := f.byKey[key]
	if !ok {
		return 0, false
	}
	switch {
	case s.counter != nil:
		return float64(s.counter.Value()), true
	case s.gauge != nil:
		return s.gauge.Value(), true
	case s.hist != nil:
		return float64(s.hist.Count()), true
	}
	return 0, false
}

// family returns the registered family (registry lock must be held by
// the caller chain; used only right after lookup, which registers it).
func (r *Registry) family(name string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byName[name]
}

// lookup finds or registers the family and series for one instrument.
// A name reused with a different type panics — it is a programming
// error that would render invalid exposition text.
func (r *Registry) lookup(name, help, typ string, buckets []float64, labels []Label) *series {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[string]*series)}
		if typ == typeHistogram {
			f.bounds = append([]float64(nil), buckets...)
		}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic("obs: metric " + name + " registered as " + f.typ + " and " + typ)
	}
	s, ok := f.byKey[key]
	if !ok {
		s = &series{labels: key}
		f.byKey[key] = s
		f.series = append(f.series, s)
	}
	return s
}

// renderLabels renders a sorted, escaped label set (without braces).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes backslash, double quote and newline, per the
// Prometheus text format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
