package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "help")
	g := r.Gauge("g", "help")
	h := r.Histogram("h", "help", []float64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must return nil instruments, got %v %v %v", c, g, h)
	}
	// All operations on nil instruments are no-ops.
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry must render nothing, got %q err %v", b.String(), err)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests served")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	g := r.Gauge("temp", "temperature")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
	h := r.Histogram("lat", "latency", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 106.5 {
		t.Fatalf("histogram count=%d sum=%v, want 4, 106.5", h.Count(), h.Sum())
	}
}

func TestSameNameReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "h", Label{"server", "s0"})
	b := r.Counter("c", "h", Label{"server", "s0"})
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := r.Counter("c", "h", Label{"server", "s1"})
	if a == other {
		t.Fatal("different labels must return distinct series")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m", "h")
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "count of b", Label{"server", "s1"}).Add(7)
	r.Counter("b_total", "count of b", Label{"server", "s0"}).Inc()
	r.Gauge("a_gauge", "a value").Set(2.5)
	h := r.Histogram("h_dist", "a distribution", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_gauge a value
# TYPE a_gauge gauge
a_gauge 2.5
# HELP b_total count of b
# TYPE b_total counter
b_total{server="s0"} 1
b_total{server="s1"} 7
# HELP h_dist a distribution
# TYPE h_dist histogram
h_dist_bucket{le="1"} 1
h_dist_bucket{le="10"} 2
h_dist_bucket{le="+Inf"} 3
h_dist_sum 55.5
h_dist_count 3
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h", Label{"path", `a"b\c` + "\n"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `c_total{path="a\"b\\c\n"} 1`) {
		t.Fatalf("label not escaped: %q", b.String())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("hist", "h", []float64{10, 100})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
