package obs

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the deterministic alert engine (DESIGN.md §5.9): declared
// rules watched against the run's own telemetry, evaluated on simulation
// time with a Prometheus-style pending→firing→resolved lifecycle. Every
// input the engine reads — the audit-event stream, the ground-truth
// registry, metric and series registries fed by the control plane — is a
// deterministic function of the seed, every aggregation it computes is
// order-independent (maxes and counts over maps, never float sums in map
// order), and transitions are emitted in declared rule order, so two
// same-seed runs produce byte-identical alert event streams. Wall-clock
// engine health lives in health.go and is explicitly excluded from this
// contract.

// Cmp is a rule's comparison operator.
type Cmp string

// The comparison operators a rule may use against its threshold.
const (
	CmpGT Cmp = ">"
	CmpGE Cmp = ">="
	CmpLT Cmp = "<"
	CmpLE Cmp = "<="
)

// compare applies the operator ("" defaults to >).
func (c Cmp) compare(v, threshold float64) bool {
	switch c {
	case CmpGE:
		return v >= threshold
	case CmpLT:
		return v < threshold
	case CmpLE:
		return v <= threshold
	default:
		return v > threshold
	}
}

// Alert lifecycle states, as emitted on EventAlert records.
const (
	StateInactive = "inactive"
	StatePending  = "pending"
	StateFiring   = "firing"
	StateResolved = "resolved"
)

// Rule is one declared condition over the run's telemetry: a value
// source, a comparison against Threshold, and a `for` duration (ForSec)
// the condition must hold before the alert fires — the hysteresis that
// keeps one spiky interval from paging.
//
// Exactly one source should be set, checked in this order:
//
//   - Signal: a built-in signal the engine derives from the audit-event
//     stream it consumes (see the Signal* constants);
//   - Metric (+ MetricLabels): a read-only lookup in the attached metric
//     Registry (counters and gauges by value, histograms by count);
//   - Series (+ SeriesLabels): the newest point of a series in the
//     attached SeriesRegistry;
//   - Value: an arbitrary function of simulation time. The function must
//     be a pure observer of deterministic simulation state for the
//     byte-identical-stream contract to hold.
//
// A rule whose source yields no value this interval (unknown metric,
// empty series, Value ok=false) is treated as condition-false.
type Rule struct {
	Name string

	Signal       string
	Metric       string
	MetricLabels []Label
	Series       string
	SeriesLabels []Label
	Value        func(nowSec float64) (float64, bool)

	Cmp       Cmp
	Threshold float64
	ForSec    float64
}

// Built-in signals, derived from the audit events the engine consumes as
// a Sink. All are instantaneous reads of engine state at Eval time.
const (
	// SignalDevIowaitMax / SignalDevCPIMax: the maximum deviation signal
	// across servers, from each server's latest sample event.
	SignalDevIowaitMax = "dev_iowait_max"
	SignalDevCPIMax    = "dev_cpi_max"
	// SignalCappedVMs counts distinct VMs with any cap episode open.
	SignalCappedVMs = "capped_vms"
	// SignalCapDwellMax is the longest currently-open cap episode's age
	// in simulation seconds.
	SignalCapDwellMax = "cap_dwell_max"
	// SignalFalseCappedVMs counts currently-capped VMs that ground truth
	// knows to be innocent. Yields no value until SetGroundTruth.
	SignalFalseCappedVMs = "false_capped_vms"
	// SignalSampleGapMax is the longest gap between now and any server's
	// last sample event — a starved control loop shows up here.
	SignalSampleGapMax = "sample_gap_max"
)

// ruleState is one rule's lifecycle position.
type ruleState struct {
	state    string
	since    float64 // when the condition first became true (pending entry)
	value    float64 // last evaluated value
	pendings int     // lifetime transitions into pending
	firings  int     // lifetime transitions into firing
	resolved int     // lifetime transitions into resolved
}

// capEpisode keys one open cap by VM and resource channel, mirroring the
// episode tracking Score uses.
type capEpisode struct{ vm, res string }

// AlertEngine evaluates a fixed rule list against the run's telemetry.
// It consumes the audit-event stream as a Sink (wire it into the same
// MultiSink as the other sinks, or let core.Attach do it), and emits
// EventAlert records for every lifecycle transition into its output sink.
// The nil *AlertEngine is a valid no-op: Emit, Eval and SetGroundTruth
// all return immediately, so wiring code needs no guards.
//
// The engine is not internally synchronized beyond what Sink requires:
// Eval must be called from the goroutine stepping the simulation (the
// core alert ticker does), between ticks.
type AlertEngine struct {
	rules []Rule
	out   Sink
	reg   *Registry
	sr    *SeriesRegistry
	truth *GroundTruth

	states []ruleState

	// Event-derived state. All reads over these maps at Eval time are
	// maxes or counts, so map iteration order cannot leak into output.
	lastSample map[string]float64 // server -> last sample event time
	devIO      map[string]float64 // server -> latest iowait deviation
	devCPI     map[string]float64 // server -> latest CPI deviation
	openCaps   map[capEpisode]float64
}

// NewAlertEngine creates an engine over the given rules, emitting alert
// events into out (nil discards them). Rules are copied.
func NewAlertEngine(rules []Rule, out Sink) *AlertEngine {
	e := &AlertEngine{
		rules:      append([]Rule(nil), rules...),
		out:        out,
		states:     make([]ruleState, len(rules)),
		lastSample: make(map[string]float64),
		devIO:      make(map[string]float64),
		devCPI:     make(map[string]float64),
		openCaps:   make(map[capEpisode]float64),
	}
	for i := range e.states {
		e.states[i].state = StateInactive
	}
	return e
}

// SetRegistry attaches the metric registry Metric rules read from.
func (e *AlertEngine) SetRegistry(r *Registry) {
	if e != nil {
		e.reg = r
	}
}

// SetSeries attaches the series registry Series rules read from.
func (e *AlertEngine) SetSeries(sr *SeriesRegistry) {
	if e != nil {
		e.sr = sr
	}
}

// SetGroundTruth attaches the run's truth registry, enabling the
// false-cap watchdog signal. Nil-safe on both sides.
func (e *AlertEngine) SetGroundTruth(g *GroundTruth) {
	if e != nil {
		e.truth = g
	}
}

// Emit implements Sink: the engine folds the audit stream into the state
// its built-in signals read. Alert events are ignored so an engine wired
// into the same MultiSink it emits into cannot feed back on itself.
func (e *AlertEngine) Emit(ev Event) {
	if e == nil {
		return
	}
	switch ev.Type {
	case EventSample:
		e.lastSample[ev.Server] = ev.T
		e.devIO[ev.Server] = ev.IowaitDev
		e.devCPI[ev.Server] = ev.CPIDev
	case EventCap:
		k := capEpisode{ev.VM, ev.Res}
		if _, live := e.openCaps[k]; !live {
			e.openCaps[k] = ev.T
		}
	case EventRelease:
		delete(e.openCaps, capEpisode{ev.VM, ev.Res})
	}
}

// signal evaluates a built-in signal at simulation time now.
func (e *AlertEngine) signal(name string, now float64) (float64, bool) {
	switch name {
	case SignalDevIowaitMax:
		return maxValue(e.devIO), true
	case SignalDevCPIMax:
		return maxValue(e.devCPI), true
	case SignalCappedVMs:
		vms := make(map[string]bool, len(e.openCaps))
		for k := range e.openCaps {
			vms[k.vm] = true
		}
		return float64(len(vms)), true
	case SignalCapDwellMax:
		var dwell float64
		for _, since := range e.openCaps {
			if d := now - since; d > dwell {
				dwell = d
			}
		}
		return dwell, true
	case SignalFalseCappedVMs:
		if e.truth == nil {
			return 0, false
		}
		innocents := make(map[string]bool)
		for k := range e.openCaps {
			if v, ok := e.truth.Lookup(k.vm); !ok || !v.Antagonist() {
				innocents[k.vm] = true
			}
		}
		return float64(len(innocents)), true
	case SignalSampleGapMax:
		var gap float64
		for _, t := range e.lastSample {
			if g := now - t; g > gap {
				gap = g
			}
		}
		return gap, true
	}
	return 0, false
}

func maxValue(m map[string]float64) float64 {
	var out float64
	for _, v := range m {
		if v > out {
			out = v
		}
	}
	return out
}

// value resolves one rule's source.
func (e *AlertEngine) value(r *Rule, now float64) (float64, bool) {
	switch {
	case r.Signal != "":
		return e.signal(r.Signal, now)
	case r.Metric != "":
		return e.reg.Value(r.Metric, r.MetricLabels...)
	case r.Series != "":
		p, ok := e.sr.Lookup(r.Series, r.SeriesLabels...).Last()
		return p.V, ok
	case r.Value != nil:
		return r.Value(now)
	}
	return 0, false
}

// Eval evaluates every rule at simulation time now, walking rules in
// declared order and emitting one EventAlert per lifecycle transition:
//
//	inactive --cond--> pending  (emitted; firing immediately if ForSec==0)
//	pending  --cond held ForSec--> firing   (emitted)
//	pending  --!cond--> inactive            (silent: never fired)
//	firing   --!cond--> resolved -> inactive (emitted)
func (e *AlertEngine) Eval(now float64) {
	if e == nil {
		return
	}
	for i := range e.rules {
		r := &e.rules[i]
		st := &e.states[i]
		v, ok := e.value(r, now)
		cond := ok && r.Cmp.compare(v, r.Threshold)
		st.value = v
		switch st.state {
		case StateInactive:
			if !cond {
				continue
			}
			st.since = now
			if r.ForSec <= 0 {
				st.state = StateFiring
				st.firings++
				e.emit(r, st, StateFiring, now, v)
				continue
			}
			st.state = StatePending
			st.pendings++
			e.emit(r, st, StatePending, now, v)
		case StatePending:
			if !cond {
				st.state = StateInactive
				continue
			}
			if now-st.since >= r.ForSec {
				st.state = StateFiring
				st.firings++
				e.emit(r, st, StateFiring, now, v)
			}
		case StateFiring:
			if cond {
				continue
			}
			st.resolved++
			e.emit(r, st, StateResolved, now, v)
			st.state = StateInactive
		}
	}
}

func (e *AlertEngine) emit(r *Rule, st *ruleState, state string, now, v float64) {
	if e.out == nil {
		return
	}
	e.out.Emit(Event{
		T: now, Type: EventAlert,
		Rule: r.Name, State: state,
		Value: v, Threshold: r.Threshold, ActiveSince: st.since,
	})
}

// AlertStatus is one rule's live status, for /debug/alerts.
type AlertStatus struct {
	Rule        string  `json:"rule"`
	State       string  `json:"state"`
	Value       float64 `json:"value"`
	Threshold   float64 `json:"threshold"`
	ActiveSince float64 `json:"active_since,omitempty"`
	Firings     int     `json:"firings"`
	Resolved    int     `json:"resolved"`
}

// Statuses returns every rule's status in declared order.
func (e *AlertEngine) Statuses() []AlertStatus {
	if e == nil {
		return nil
	}
	out := make([]AlertStatus, len(e.rules))
	for i := range e.rules {
		st := &e.states[i]
		out[i] = AlertStatus{
			Rule: e.rules[i].Name, State: st.state,
			Value: st.value, Threshold: e.rules[i].Threshold,
			Firings: st.firings, Resolved: st.resolved,
		}
		if st.state != StateInactive {
			out[i].ActiveSince = st.since
		}
	}
	return out
}

// RuleSummary is one rule's lifetime transition counts.
type RuleSummary struct {
	Rule     string `json:"rule"`
	Pendings int    `json:"pendings"`
	Firings  int    `json:"firings"`
	Resolved int    `json:"resolved"`
}

// AlertSummary aggregates an engine's activity for result rows and CLI
// output. Merge combines summaries from independent runs (Fig 12's
// repetitions); String renders a stable single line suitable for
// byte-comparison across same-seed runs.
type AlertSummary struct {
	Rules    []RuleSummary `json:"rules"`
	Firings  int           `json:"firings"`
	Resolved int           `json:"resolved"`
	// Active lists the rules still firing when the run ended, sorted.
	Active []string `json:"active,omitempty"`
}

// Summary snapshots the engine's lifetime activity. Nil-safe (returns
// the zero summary).
func (e *AlertEngine) Summary() AlertSummary {
	var s AlertSummary
	if e == nil {
		return s
	}
	for i := range e.rules {
		st := &e.states[i]
		s.Rules = append(s.Rules, RuleSummary{
			Rule: e.rules[i].Name, Pendings: st.pendings,
			Firings: st.firings, Resolved: st.resolved,
		})
		s.Firings += st.firings
		s.Resolved += st.resolved
		if st.state == StateFiring {
			s.Active = append(s.Active, e.rules[i].Name)
		}
	}
	sort.Strings(s.Active)
	return s
}

// Merge folds another summary into s, aligning rules by name (rule order
// is preserved; unseen rules append).
func (s *AlertSummary) Merge(o AlertSummary) {
	byName := make(map[string]int, len(s.Rules))
	for i, r := range s.Rules {
		byName[r.Rule] = i
	}
	for _, r := range o.Rules {
		if i, ok := byName[r.Rule]; ok {
			s.Rules[i].Pendings += r.Pendings
			s.Rules[i].Firings += r.Firings
			s.Rules[i].Resolved += r.Resolved
		} else {
			byName[r.Rule] = len(s.Rules)
			s.Rules = append(s.Rules, r)
		}
	}
	s.Firings += o.Firings
	s.Resolved += o.Resolved
	active := make(map[string]bool, len(s.Active)+len(o.Active))
	for _, a := range s.Active {
		active[a] = true
	}
	for _, a := range o.Active {
		active[a] = true
	}
	s.Active = s.Active[:0]
	for a := range active {
		s.Active = append(s.Active, a)
	}
	sort.Strings(s.Active)
}

// String renders the summary as one stable line: totals, then each rule
// that ever left inactive, in rule order.
func (s AlertSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "firings %d resolved %d", s.Firings, s.Resolved)
	if len(s.Active) > 0 {
		fmt.Fprintf(&b, " active [%s]", strings.Join(s.Active, " "))
	}
	for _, r := range s.Rules {
		if r.Pendings == 0 && r.Firings == 0 {
			continue
		}
		fmt.Fprintf(&b, " %s(fired %d)", r.Rule, r.Firings)
	}
	return b.String()
}

// DefaultRulesConfig parameterises the default rule pack. Zero values
// select the paper-aligned defaults noted per field.
type DefaultRulesConfig struct {
	// IntervalSec is the control interval the rules pace against (0 = 5,
	// the paper's monitoring period).
	IntervalSec float64
	// Iowait / CPI are the sustained-deviation thresholds (0 = the
	// paper's detection thresholds: iowait 10, CPI 1).
	Iowait float64
	CPI    float64
	// SustainSec is the `for` duration of the deviation rules (0 = 15 —
	// three control intervals of unmitigated victim pain).
	SustainSec float64
	// MaxCapDwellSec flags a cap episode held longer than this (0 = 120).
	MaxCapDwellSec float64
	// FastPaths, when non-nil, enables the fast-path collapse rule over
	// the grant-phase hit rate (quiescent skips + steady reuses over all
	// grant-phase ticks); MinFastPathHitRate is its floor (0 = 0.2).
	FastPaths          func() FastPathSnapshot
	MinFastPathHitRate float64
	// ShardImbalance, when non-nil, enables the shard-imbalance rule: it
	// returns the max/mean active-server ratio across tick shards (ok
	// false while unavailable); MaxShardImbalance is its ceiling (0 = 4).
	ShardImbalance    func() (float64, bool)
	MaxShardImbalance float64
}

// DefaultRules builds the default rule pack: sustained victim deviation
// on both channels, cap dwell, the false-cap watchdog (armed only once
// ground truth is attached), monitor-interval overrun, and — when the
// optional probes are wired — fast-path hit-rate collapse and shard load
// imbalance.
func DefaultRules(cfg DefaultRulesConfig) []Rule {
	if cfg.IntervalSec <= 0 {
		cfg.IntervalSec = 5
	}
	if cfg.Iowait <= 0 {
		cfg.Iowait = 10
	}
	if cfg.CPI <= 0 {
		cfg.CPI = 1
	}
	if cfg.SustainSec <= 0 {
		cfg.SustainSec = 15
	}
	if cfg.MaxCapDwellSec <= 0 {
		cfg.MaxCapDwellSec = 120
	}
	if cfg.MinFastPathHitRate <= 0 {
		cfg.MinFastPathHitRate = 0.2
	}
	if cfg.MaxShardImbalance <= 0 {
		cfg.MaxShardImbalance = 4
	}
	rules := []Rule{
		{
			Name: "victim-iowait-deviation-sustained", Signal: SignalDevIowaitMax,
			Cmp: CmpGT, Threshold: cfg.Iowait, ForSec: cfg.SustainSec,
		},
		{
			Name: "victim-cpi-deviation-sustained", Signal: SignalDevCPIMax,
			Cmp: CmpGT, Threshold: cfg.CPI, ForSec: cfg.SustainSec,
		},
		{
			Name: "cap-dwell-too-long", Signal: SignalCapDwellMax,
			Cmp: CmpGT, Threshold: cfg.MaxCapDwellSec,
		},
		{
			Name: "false-cap-watchdog", Signal: SignalFalseCappedVMs,
			Cmp: CmpGT, Threshold: 0,
		},
		{
			Name: "monitor-interval-overrun", Signal: SignalSampleGapMax,
			Cmp: CmpGT, Threshold: 1.5 * cfg.IntervalSec,
		},
	}
	if fp := cfg.FastPaths; fp != nil {
		rules = append(rules, Rule{
			Name: "fastpath-hit-rate-collapse",
			Value: func(float64) (float64, bool) {
				s := fp()
				total := s.QuiescentSkips + s.SteadyReuses + s.Rebuilds
				if total == 0 {
					return 0, false
				}
				return float64(s.QuiescentSkips+s.SteadyReuses) / float64(total), true
			},
			Cmp: CmpLT, Threshold: cfg.MinFastPathHitRate, ForSec: cfg.SustainSec,
		})
	}
	if im := cfg.ShardImbalance; im != nil {
		rules = append(rules, Rule{
			Name:  "shard-load-imbalance",
			Value: func(float64) (float64, bool) { return im() },
			Cmp:   CmpGT, Threshold: cfg.MaxShardImbalance, ForSec: cfg.SustainSec,
		})
	}
	return rules
}
