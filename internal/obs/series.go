package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// This file is the fleet-scale time-series layer (DESIGN.md §5.8). Two
// scale pressures shape it. Event-driven striding (PR 6) means wall
// ticks are not a clock: consecutive samples can be minutes of simulated
// time apart, so every point carries its exact simulation timestamp —
// producers stamp points with the stride-aware time (Clock.PeekSeconds /
// trace TimeSec), never a tick count. Fleet sharding (PR 7) means
// per-server series are untenable at 10k servers; the Rollup folds
// per-server observations into the topology hierarchy (shard, zone,
// cluster) so retained cardinality is O(zones + shards), not O(servers).
// Like every obs instrument, all types are nil-safe no-ops so telemetry
// can be compiled out of a run by simply not wiring a registry.

// SeriesPoint is one sample: exact simulation time (seconds) and value.
type SeriesPoint struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// Series is a fixed-capacity ring of time-ordered points. Appends past
// capacity overwrite the oldest points; Total still counts them, so a
// scraper can tell when it has missed data. Safe for concurrent use; a
// nil *Series ignores appends and reads as empty.
type Series struct {
	mu    sync.Mutex
	buf   []SeriesPoint
	next  int
	full  bool
	total uint64
}

// NewSeries creates a series retaining up to capacity points.
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		panic("obs: series capacity must be positive")
	}
	return &Series{buf: make([]SeriesPoint, capacity)}
}

// Append records a point. Timestamps must be non-decreasing — series
// carry simulation time, which only moves forward.
func (s *Series) Append(t, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if last, ok := s.lastLocked(); ok && t < last.T {
		panic("obs: series timestamps must be non-decreasing")
	}
	s.appendLocked(SeriesPoint{T: t, V: v})
}

// merge records a point, folding it into the newest retained point when
// the timestamps match — how a Rollup combines many servers' samples
// from the same interval into one aggregate point.
func (s *Series) merge(t, v float64, fold func(old, new float64) float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if last, ok := s.lastLocked(); ok {
		if t < last.T {
			panic("obs: series timestamps must be non-decreasing")
		}
		if t == last.T {
			i := s.next - 1
			if i < 0 {
				i = len(s.buf) - 1
			}
			s.buf[i].V = fold(last.V, v)
			return
		}
	}
	s.appendLocked(SeriesPoint{T: t, V: v})
}

func (s *Series) appendLocked(p SeriesPoint) {
	s.buf[s.next] = p
	s.next++
	if s.next == len(s.buf) {
		s.next, s.full = 0, true
	}
	s.total++
}

func (s *Series) lastLocked() (SeriesPoint, bool) {
	if s.total == 0 {
		return SeriesPoint{}, false
	}
	i := s.next - 1
	if i < 0 {
		i = len(s.buf) - 1
	}
	return s.buf[i], true
}

// Last returns the newest retained point, or false on an empty (or nil)
// series — the read primitive alert rules evaluate series against.
func (s *Series) Last() (SeriesPoint, bool) {
	if s == nil {
		return SeriesPoint{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastLocked()
}

// Points returns the retained points, oldest first.
func (s *Series) Points() []SeriesPoint {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		return append([]SeriesPoint(nil), s.buf[:s.next]...)
	}
	out := make([]SeriesPoint, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	return append(out, s.buf[:s.next]...)
}

// Since returns the retained points with T strictly after t, oldest
// first — the delta-scrape primitive: a scraper remembers the last
// timestamp it saw and asks only for what is newer. Timestamps are
// simulation time, so the contract survives stride elision unchanged.
func (s *Series) Since(t float64) []SeriesPoint {
	pts := s.Points()
	// Points are time-ordered; binary-search the first one after t.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].T > t })
	return pts[i:]
}

// Len returns the number of retained points.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.full {
		return len(s.buf)
	}
	return s.next
}

// Total returns how many points were ever appended (retained or not).
func (s *Series) Total() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Downsample returns at most n points summarizing the retained window:
// points are split into n contiguous buckets and each bucket reports its
// maximum (deviation spikes are the signal of interest; a mean would
// smooth away exactly the excursions the detector fires on), stamped
// with the bucket's last timestamp.
func (s *Series) Downsample(n int) []SeriesPoint {
	pts := s.Points()
	if n <= 0 || len(pts) <= n {
		return pts
	}
	out := make([]SeriesPoint, 0, n)
	for b := 0; b < n; b++ {
		lo, hi := b*len(pts)/n, (b+1)*len(pts)/n
		if lo >= hi {
			continue
		}
		p := pts[lo]
		for _, q := range pts[lo+1 : hi] {
			if q.V > p.V {
				p.V = q.V
			}
			p.T = q.T
		}
		out = append(out, p)
	}
	return out
}

// SeriesRegistry names and owns a set of Series, mirroring the metric
// Registry: Series() is get-or-create keyed by name plus sorted labels,
// and a nil registry hands back nil series so instrumented code needs no
// guards. perCap bounds each series' retained points.
type SeriesRegistry struct {
	mu     sync.Mutex
	perCap int
	byKey  map[string]*Series
}

// DefaultSeriesCapacity is the per-series retention used when
// NewSeriesRegistry is given a non-positive capacity.
const DefaultSeriesCapacity = 1024

// NewSeriesRegistry creates a registry whose series each retain up to
// perSeriesCap points (<= 0 selects DefaultSeriesCapacity).
func NewSeriesRegistry(perSeriesCap int) *SeriesRegistry {
	if perSeriesCap <= 0 {
		perSeriesCap = DefaultSeriesCapacity
	}
	return &SeriesRegistry{perCap: perSeriesCap, byKey: make(map[string]*Series)}
}

// Series returns the series for name+labels, creating it on first use.
func (r *SeriesRegistry) Series(name string, labels ...Label) *Series {
	if r == nil {
		return nil
	}
	key := name
	if ls := renderLabels(labels); ls != "" {
		key += "{" + ls + "}"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.byKey[key]
	if s == nil {
		s = NewSeries(r.perCap)
		r.byKey[key] = s
	}
	return s
}

// Lookup returns the series for name+labels without creating it, or nil
// when it was never registered — how read-only consumers (alert rules)
// probe the registry without growing it.
func (r *SeriesRegistry) Lookup(name string, labels ...Label) *Series {
	if r == nil {
		return nil
	}
	key := name
	if ls := renderLabels(labels); ls != "" {
		key += "{" + ls + "}"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byKey[key]
}

// Keys returns the registered series keys (name{labels}), sorted.
func (r *SeriesRegistry) Keys() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.byKey))
	for k := range r.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// seriesJSON is the wire shape of one series in WriteJSON output.
type seriesJSON struct {
	Series string        `json:"series"`
	Total  uint64        `json:"total"`
	Points []SeriesPoint `json:"points"`
}

// WriteJSON renders every registered series as JSON, sorted by key for
// deterministic output. sinceSec > 0 restricts each series to points
// strictly after that simulation time (delta scrape); maxPoints > 0
// downsamples what remains to at most that many points per series.
func (r *SeriesRegistry) WriteJSON(w io.Writer, sinceSec float64, maxPoints int) error {
	out := struct {
		Series []seriesJSON `json:"series"`
	}{Series: []seriesJSON{}}
	for _, key := range r.Keys() {
		r.mu.Lock()
		s := r.byKey[key]
		r.mu.Unlock()
		pts := s.Points()
		if sinceSec > 0 {
			pts = s.Since(sinceSec)
		}
		if maxPoints > 0 && len(pts) > maxPoints {
			tmp := NewSeries(len(pts))
			for _, p := range pts {
				tmp.Append(p.T, p.V)
			}
			pts = tmp.Downsample(maxPoints)
		}
		out.Series = append(out.Series, seriesJSON{Series: key, Total: s.Total(), Points: pts})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Rollup folds per-server observations into the placement hierarchy:
// one series per shard, one per zone, one for the whole cluster —
// never one per server. Observations from different servers in the same
// sampling interval share a timestamp and are merged (max by default:
// the fleet-level question is "what is the worst deviation anywhere in
// this shard/zone right now", and a mean over mostly-idle servers would
// bury it). A nil Rollup ignores observations.
type Rollup struct {
	sr     *SeriesRegistry
	name   string
	locate func(server string) (shard, zone string, ok bool)
	fold   func(old, new float64) float64

	mu      sync.Mutex
	cluster *Series
	shards  map[string]*Series
	zones   map[string]*Series
}

// MaxFold keeps the larger value — the default Rollup merge.
func MaxFold(old, new float64) float64 {
	if new > old {
		return new
	}
	return old
}

// SumFold adds values — for rolling up additive quantities (counts).
func SumFold(old, new float64) float64 { return old + new }

// NewRollup creates a rollup writing into sr under the given series
// name. locate maps a server id to its shard and zone keys; servers it
// cannot place still fold into the cluster series. fold nil = MaxFold.
func NewRollup(sr *SeriesRegistry, name string, locate func(server string) (shard, zone string, ok bool), fold func(old, new float64) float64) *Rollup {
	if sr == nil {
		return nil
	}
	if fold == nil {
		fold = MaxFold
	}
	return &Rollup{
		sr: sr, name: name, locate: locate, fold: fold,
		cluster: sr.Series(name),
		shards:  make(map[string]*Series),
		zones:   make(map[string]*Series),
	}
}

// Observe folds one server's sample at simulation time t into the
// cluster, shard and zone series.
func (r *Rollup) Observe(server string, t, v float64) {
	if r == nil {
		return
	}
	r.cluster.merge(t, v, r.fold)
	if r.locate == nil {
		return
	}
	shard, zone, ok := r.locate(server)
	if !ok {
		return
	}
	r.level(r.shards, "shard", shard).merge(t, v, r.fold)
	r.level(r.zones, "zone", zone).merge(t, v, r.fold)
}

func (r *Rollup) level(cache map[string]*Series, label, key string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := cache[key]
	if s == nil {
		s = r.sr.Series(r.name, Label{Key: label, Value: key})
		cache[key] = s
	}
	return s
}

// RollupSink adapts the event stream to rollups: each sample event's
// deviation signals fold into per-channel hierarchies. Wire it into a
// MultiSink next to the JSONL/ring sinks; non-sample events pass
// through untouched. A nil sink ignores everything.
type RollupSink struct {
	IO  *Rollup // iowait deviation, max-merged
	CPU *Rollup // CPI deviation, max-merged
}

// NewRollupSink builds the two standard deviation rollups
// (dev_iowait, dev_cpi) over the given locator.
func NewRollupSink(sr *SeriesRegistry, locate func(server string) (shard, zone string, ok bool)) *RollupSink {
	if sr == nil {
		return nil
	}
	return &RollupSink{
		IO:  NewRollup(sr, "dev_iowait", locate, MaxFold),
		CPU: NewRollup(sr, "dev_cpi", locate, MaxFold),
	}
}

// Emit implements Sink.
func (s *RollupSink) Emit(e Event) {
	if s == nil || e.Type != EventSample {
		return
	}
	s.IO.Observe(e.Server, e.T, e.IowaitDev)
	s.CPU.Observe(e.Server, e.T, e.CPIDev)
}
