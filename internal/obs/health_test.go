package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestPhaseTimerSampling(t *testing.T) {
	tm := &PhaseTimer{}
	const calls = 10 * phaseSampleEvery
	for i := 0; i < calls; i++ {
		start := tm.Begin()
		if start != 0 {
			time.Sleep(time.Microsecond)
		}
		tm.End(start)
	}
	s := tm.stats("p")
	if s.Calls != calls {
		t.Errorf("Calls = %d, want %d", s.Calls, calls)
	}
	if s.Sampled != calls/phaseSampleEvery {
		t.Errorf("Sampled = %d, want %d (1-in-%d sampling)", s.Sampled, calls/phaseSampleEvery, phaseSampleEvery)
	}
	if s.TotalNs <= 0 || s.MaxNs <= 0 || s.MeanNs <= 0 {
		t.Errorf("sampled timings empty: %+v", s)
	}
	if s.MaxNs < s.MeanNs {
		t.Errorf("max %d < mean %d", s.MaxNs, s.MeanNs)
	}
}

func TestPhaseTimerNilSafety(t *testing.T) {
	var tm *PhaseTimer
	tm.End(tm.Begin()) // must not panic
	// End with a zero token (unsampled Begin) records nothing.
	tm2 := &PhaseTimer{}
	tm2.End(0)
	if s := tm2.stats("p"); s.Sampled != 0 || s.TotalNs != 0 {
		t.Errorf("zero-token End recorded a sample: %+v", s)
	}
}

func TestHealthNilSafety(t *testing.T) {
	var h *Health
	if h.Timer("x") != nil {
		t.Error("nil Health returned a non-nil timer")
	}
	h.SetPoolStats(func() PoolHealth { return PoolHealth{} })
	h.ObserveShardImbalance(2)
	h.SampleRuntime()
	if _, ok := h.Imbalance(); ok {
		t.Error("nil Health reported an imbalance observation")
	}
	if snap := h.Snapshot(); len(snap.Phases) != 0 || snap.Pool != nil {
		t.Errorf("nil Health snapshot not empty: %+v", snap)
	}
}

func TestHealthSnapshotAndWriteJSON(t *testing.T) {
	h := NewHealth(nil)
	// Same name returns the same timer; snapshot sorts by name.
	tb := h.Timer("b.phase")
	if h.Timer("b.phase") != tb {
		t.Fatal("Timer(name) not idempotent")
	}
	ta := h.Timer("a.phase")
	for i := 0; i < phaseSampleEvery; i++ {
		ta.End(ta.Begin())
		tb.End(tb.Begin())
	}
	h.SetPoolStats(func() PoolHealth {
		return PoolHealth{Capacity: 4, Peak: 3, TryAcquires: 10, Denied: 2, GrantedSlots: 8}
	})
	h.ObserveShardImbalance(1.5)

	snap := h.Snapshot()
	if len(snap.Phases) != 2 || snap.Phases[0].Phase != "a.phase" || snap.Phases[1].Phase != "b.phase" {
		t.Fatalf("phases not sorted by name: %+v", snap.Phases)
	}
	if snap.Phases[0].Calls != phaseSampleEvery || snap.Phases[0].Sampled != 1 {
		t.Errorf("phase stats wrong: %+v", snap.Phases[0])
	}
	if snap.Pool == nil || snap.Pool.Denied != 2 {
		t.Errorf("pool stats missing: %+v", snap.Pool)
	}
	if snap.ShardImbalance == nil || *snap.ShardImbalance != 1.5 {
		t.Errorf("imbalance missing: %v", snap.ShardImbalance)
	}
	if v, ok := h.Imbalance(); !ok || v != 1.5 {
		t.Errorf("Imbalance() = (%v, %v), want (1.5, true)", v, ok)
	}

	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded HealthSnapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(decoded.Phases) != 2 {
		t.Errorf("round-tripped snapshot lost phases: %+v", decoded)
	}

	sum := h.Summary()
	for _, want := range []string{"a.phase", "b.phase", "pool: capacity 4", "shard imbalance: 1.50"} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary missing %q:\n%s", want, sum)
		}
	}
}

// TestHealthRuntimeBridge checks the fixed runtime/metrics set lands in
// the registry as perfcloud_health_* gauges with sane values.
func TestHealthRuntimeBridge(t *testing.T) {
	reg := NewRegistry()
	h := NewHealth(reg)
	h.SampleRuntime()
	if v, ok := reg.Value("perfcloud_health_goroutines"); !ok || v < 1 {
		t.Errorf("goroutines gauge = (%v, %v), want >= 1", v, ok)
	}
	if v, ok := reg.Value("perfcloud_health_heap_objects_bytes"); !ok || v <= 0 {
		t.Errorf("heap gauge = (%v, %v), want > 0", v, ok)
	}
	for _, name := range []string{"perfcloud_health_gc_cycles_total", "perfcloud_health_gc_cpu_seconds_total"} {
		if _, ok := reg.Value(name); !ok {
			t.Errorf("gauge %q not registered", name)
		}
	}
}

// TestHealthImbalanceProbeShape: Health.Imbalance satisfies the
// DefaultRulesConfig.ShardImbalance probe contract — no value until
// first observation.
func TestHealthImbalanceProbeShape(t *testing.T) {
	h := NewHealth(nil)
	rules := DefaultRules(DefaultRulesConfig{ShardImbalance: h.Imbalance, SustainSec: 1})
	eng := NewAlertEngine(rules, nil)
	eng.Eval(0)
	for _, st := range eng.Statuses() {
		if st.Rule == "shard-load-imbalance" && st.State != StateInactive {
			t.Fatalf("imbalance rule active before any observation: %+v", st)
		}
	}
	h.ObserveShardImbalance(9)
	eng.Eval(5)
	eng.Eval(10)
	for _, st := range eng.Statuses() {
		if st.Rule == "shard-load-imbalance" && st.State != StateFiring {
			t.Fatalf("imbalance rule = %q after observing 9 > 4", st.State)
		}
	}
}
