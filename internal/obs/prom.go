package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the HTTP Content-Type for the Prometheus text
// exposition format WritePrometheus emits. Scrapers content-negotiate on
// the version parameter; handlers serving WritePrometheus output should
// set exactly this value.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4): a # HELP and # TYPE line per
// family followed by its series, families sorted by name and series by
// label set, so the output is deterministic. Safe to call concurrently
// with instrument updates. A nil Registry renders nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		r.mu.Lock()
		ss := append([]*series(nil), f.series...)
		r.mu.Unlock()
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		for _, s := range ss {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one series: a single sample for counters and
// gauges, the buckets/sum/count triplet for histograms.
func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.typ {
	case typeCounter:
		_, err := fmt.Fprintf(w, "%s %s\n", sampleName(f.name, s.labels), formatValue(float64(s.counter.Value())))
		return err
	case typeGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", sampleName(f.name, s.labels), formatValue(s.gauge.Value()))
		return err
	case typeHistogram:
		var cum uint64
		for i, bound := range s.hist.bounds {
			cum += s.hist.counts[i].Load()
			le := Label{Key: "le", Value: formatValue(bound)}
			name := sampleName(f.name+"_bucket", joinLabels(s.labels, le))
			if _, err := fmt.Fprintf(w, "%s %d\n", name, cum); err != nil {
				return err
			}
		}
		cum += s.hist.counts[len(s.hist.bounds)].Load()
		inf := Label{Key: "le", Value: "+Inf"}
		if _, err := fmt.Fprintf(w, "%s %d\n", sampleName(f.name+"_bucket", joinLabels(s.labels, inf)), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", sampleName(f.name+"_sum", s.labels), formatValue(s.hist.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", sampleName(f.name+"_count", s.labels), s.hist.Count())
		return err
	}
	return fmt.Errorf("obs: unknown metric type %q", f.typ)
}

// sampleName renders name{labels} (or the bare name without labels).
func sampleName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// joinLabels appends one label to an already-rendered label set.
func joinLabels(labels string, l Label) string {
	extra := l.Key + `="` + escapeLabelValue(l.Value) + `"`
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// formatValue renders a float the way Prometheus clients do: shortest
// round-trip representation, with the special values spelt out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}
