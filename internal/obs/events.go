package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// EventType names one kind of control-plane decision event.
type EventType string

// The event taxonomy (DESIGN.md §5.4). One event per decision, emitted
// in simulation-time order: the engine ticks node managers sequentially
// and each manager applies its cap decisions in sorted VM order, so two
// runs with the same seed produce byte-identical event streams.
const (
	// EventSample is one monitoring interval: domains measured plus the
	// deviation signals computed from the sample.
	EventSample EventType = "sample"
	// EventDetect fires when a deviation signal crossed its threshold
	// (I(t) > H) on either channel.
	EventDetect EventType = "detect"
	// EventIdentify carries the per-suspect Pearson coefficients and the
	// confirmed antagonist lists for a contended interval.
	EventIdentify EventType = "identify"
	// EventCap is one CUBIC (or ablation-policy) cap decision: the old
	// and new absolute cap plus the controller's epoch state.
	EventCap EventType = "cap"
	// EventRelease removes a controller once contention is gone and the
	// probing cap exceeded the release factor.
	EventRelease EventType = "release"
	// EventMigrate is a node manager's escalation to the cloud manager.
	EventMigrate EventType = "migrate"
	// EventFastPaths is a periodic snapshot of the simulation's
	// fast-path accounting (quiescence, demand reuse, allocator memos).
	EventFastPaths EventType = "fastpaths"
	// EventAlert is one alert-rule lifecycle transition (pending, firing
	// or resolved) from the deterministic rule engine (DESIGN.md §5.9).
	EventAlert EventType = "alert"
)

// SuspectCorr is one suspect's Pearson coefficients against the victim
// deviation signals, recorded on identify events.
type SuspectCorr struct {
	VM  string  `json:"vm"`
	IO  float64 `json:"io"`
	CPU float64 `json:"cpu"`
}

// FastPathSnapshot is cumulative fast-path accounting for a server or a
// whole cluster: how many grant-phase ticks each fast path absorbed.
// The zero value is a valid empty snapshot.
type FastPathSnapshot struct {
	// QuiescentSkips counts grant-phase ticks elided outright because
	// the server was quiescent; Rebuilds and SteadyReuses partition the
	// grant phases that did run by whether the demand/request vectors
	// were rebuilt or reused.
	QuiescentSkips uint64 `json:"quiescent_skips"`
	SteadyReuses   uint64 `json:"steady_reuses"`
	Rebuilds       uint64 `json:"rebuilds"`
	// StrideSkips counts whole engine ticks elided by event-driven
	// stepping (every framework provably idle, pipeline replayed in a
	// stride); HorizonRecomputes counts how often a stride horizon was
	// computed.
	StrideSkips       uint64 `json:"stride_skips"`
	HorizonRecomputes uint64 `json:"horizon_recomputes"`
	// ShardSkips counts whole shards skipped by the sharded tick path —
	// one per tick per shard whose every server sat in the inactive set.
	// Always encoded (no omitempty): /debug/fastpaths consumers pin the
	// field name and a zero is itself informative (sharding inactive).
	ShardSkips uint64 `json:"shard_skips"`
	// Per-resource allocator input-memo accounting.
	CPUMemoHits    uint64 `json:"cpu_memo_hits"`
	CPUMemoMisses  uint64 `json:"cpu_memo_misses"`
	MemMemoHits    uint64 `json:"mem_memo_hits"`
	MemMemoMisses  uint64 `json:"mem_memo_misses"`
	DiskMemoHits   uint64 `json:"disk_memo_hits"`
	DiskMemoMisses uint64 `json:"disk_memo_misses"`
}

// Add accumulates another snapshot into s.
func (s *FastPathSnapshot) Add(o FastPathSnapshot) {
	s.QuiescentSkips += o.QuiescentSkips
	s.SteadyReuses += o.SteadyReuses
	s.Rebuilds += o.Rebuilds
	s.StrideSkips += o.StrideSkips
	s.HorizonRecomputes += o.HorizonRecomputes
	s.ShardSkips += o.ShardSkips
	s.CPUMemoHits += o.CPUMemoHits
	s.CPUMemoMisses += o.CPUMemoMisses
	s.MemMemoHits += o.MemMemoHits
	s.MemMemoMisses += o.MemMemoMisses
	s.DiskMemoHits += o.DiskMemoHits
	s.DiskMemoMisses += o.DiskMemoMisses
}

// Sub subtracts another snapshot from s. With o a past reading of the
// same monotone counters, the result is the delta accumulated since —
// how incremental aggregators (the cluster's per-shard stats) fold a
// server's fresh counters into a running total.
func (s *FastPathSnapshot) Sub(o FastPathSnapshot) {
	s.QuiescentSkips -= o.QuiescentSkips
	s.SteadyReuses -= o.SteadyReuses
	s.Rebuilds -= o.Rebuilds
	s.StrideSkips -= o.StrideSkips
	s.HorizonRecomputes -= o.HorizonRecomputes
	s.ShardSkips -= o.ShardSkips
	s.CPUMemoHits -= o.CPUMemoHits
	s.CPUMemoMisses -= o.CPUMemoMisses
	s.MemMemoHits -= o.MemMemoHits
	s.MemMemoMisses -= o.MemMemoMisses
	s.DiskMemoHits -= o.DiskMemoHits
	s.DiskMemoMisses -= o.DiskMemoMisses
}

// Event is one typed control-plane record. It is a flat union: fields
// irrelevant to an event's type stay at their zero value and are omitted
// from the JSON encoding, so a JSONL stream stays compact and — because
// encoding/json renders structs deterministically — byte-stable across
// same-seed runs.
type Event struct {
	// T is the simulation time in seconds.
	T    float64   `json:"t"`
	Type EventType `json:"type"`
	// Server is the emitting node manager's server id.
	Server string `json:"server,omitempty"`
	// VM and Res scope cap/release/migrate events to one controller
	// (Res is "io" or "cpu").
	VM  string `json:"vm,omitempty"`
	Res string `json:"res,omitempty"`

	// Sample / detect payload.
	Domains       int     `json:"domains,omitempty"`
	IowaitDev     float64 `json:"iowait_dev,omitempty"`
	CPIDev        float64 `json:"cpi_dev,omitempty"`
	MeanIowait    float64 `json:"mean_iowait,omitempty"`
	MeanCPI       float64 `json:"mean_cpi,omitempty"`
	IOContention  bool    `json:"io_contention,omitempty"`
	CPUContention bool    `json:"cpu_contention,omitempty"`

	// Identify payload.
	Corr           []SuspectCorr `json:"corr,omitempty"`
	IOAntagonists  []string      `json:"io_antagonists,omitempty"`
	CPUAntagonists []string      `json:"cpu_antagonists,omitempty"`

	// Cap / release payload: absolute caps (IOPS or cores) plus the
	// CUBIC epoch state — the growth-curve region and the number of
	// intervals since the last multiplicative decrease (0 = decreased
	// this interval, omitted from the encoding like every zero field).
	OldCap        float64 `json:"old_cap,omitempty"`
	NewCap        float64 `json:"new_cap,omitempty"`
	Region        string  `json:"region,omitempty"`
	SinceDecrease int64   `json:"since_decrease,omitempty"`

	// FastPaths payload.
	Fast *FastPathSnapshot `json:"fastpaths,omitempty"`

	// Alert payload: the rule name, the lifecycle state entered
	// ("pending", "firing" or "resolved"), the evaluated value against
	// its threshold, and when the condition first became true.
	Rule        string  `json:"rule,omitempty"`
	State       string  `json:"state,omitempty"`
	Value       float64 `json:"value,omitempty"`
	Threshold   float64 `json:"threshold,omitempty"`
	ActiveSince float64 `json:"active_since,omitempty"`
}

// Sink consumes events. Implementations must tolerate being called from
// the simulation loop; none of the provided sinks block.
type Sink interface {
	Emit(Event)
}

// MultiSink fans one event out to several sinks in order.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// JSONLSink encodes events as one JSON object per line. Encoding is
// deterministic (struct field order, shortest float representation), so
// same-seed runs produce byte-identical streams — the property
// TestSameSeedEventStreams locks in. Writes are buffered; call Flush
// before reading the destination. The first write error is sticky and
// reported by Flush.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink creates a sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
}

// Flush drains the buffer and returns the first error encountered.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Collector retains every emitted event in order, for post-run export —
// the trace exporter renders cap/release/migrate events as instant
// markers on the Perfetto timeline. Safe for concurrent Emit.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// NewCollector creates an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Emit implements Sink.
func (c *Collector) Emit(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

// Events returns the collected events in emission order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Ring keeps the most recent events in a fixed-size buffer, for a live
// /debug/events endpoint. Safe for concurrent Emit and Events.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	total uint64
}

// NewRing creates a ring holding up to n events.
func NewRing(n int) *Ring {
	if n <= 0 {
		panic("obs: ring size must be positive")
	}
	return &Ring{buf: make([]Event, n)}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.total++
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Total returns how many events have been emitted over the ring's
// lifetime (retained or not).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
