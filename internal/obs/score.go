package obs

import (
	"fmt"
	"sort"
	"strings"
)

// This file scores the control plane against ground truth. The simulator
// is in the rare position of knowing exactly which VMs are antagonists
// and when they are active — the testbed registers every AddAntagonist
// call in a GroundTruth — so the audit-event stream (DESIGN.md §5.4) can
// be graded exactly: which caps landed on real antagonists, which hit
// innocent tenants, and how long detection took after an antagonist
// first turned on. Real deployments can only estimate these numbers;
// here they are a deterministic function of (events, truth), so two
// same-seed runs produce byte-identical scorecards.

// TruthVM is one ground-truth record: a VM the testbed booted as an
// antagonist (or a benign decoy), with its burst schedule expressed in
// simulation seconds. The periodic on/off pattern mirrors
// workloads.BurstPattern, so activity at any instant is computable
// without storing per-interval state.
type TruthVM struct {
	VM     string `json:"vm"`
	Server string `json:"server"`
	// Channel is the resource the VM genuinely harms: "io" (fio), "cpu"
	// (STREAM's memory-bandwidth pressure surfaces on the CPU channel),
	// or "" for benign decoys that should never be capped.
	Channel string `json:"channel,omitempty"`
	// StartSec/OnSec/OffSec encode the burst schedule: first activity at
	// StartSec, then OnSec active / OffSec idle repeating. OffSec==0
	// means always on after StartSec.
	StartSec float64 `json:"start_sec"`
	OnSec    float64 `json:"on_sec,omitempty"`
	OffSec   float64 `json:"off_sec,omitempty"`
}

// Antagonist reports whether the VM is a genuine antagonist (has a harm
// channel) as opposed to a benign decoy.
func (v TruthVM) Antagonist() bool { return v.Channel != "" }

// ActiveAt reports whether the VM's burst schedule is in an "on" phase
// at simulation time t (seconds).
func (v TruthVM) ActiveAt(t float64) bool {
	if t < v.StartSec {
		return false
	}
	if v.OffSec <= 0 || v.OnSec <= 0 {
		return true
	}
	period := v.OnSec + v.OffSec
	phase := t - v.StartSec
	return phase-float64(int(phase/period))*period < v.OnSec
}

// GroundTruth is the registry of truth records for one run, in
// registration order. The zero value is unusable; call NewGroundTruth.
type GroundTruth struct {
	vms  []TruthVM
	byVM map[string]int
}

// NewGroundTruth creates an empty registry.
func NewGroundTruth() *GroundTruth {
	return &GroundTruth{byVM: make(map[string]int)}
}

// Add registers a truth record. Later records for the same VM name
// replace earlier ones (testbeds never reuse names; replacement keeps
// the registry well-defined anyway). Nil-safe no-op.
func (g *GroundTruth) Add(v TruthVM) {
	if g == nil {
		return
	}
	if i, ok := g.byVM[v.VM]; ok {
		g.vms[i] = v
		return
	}
	g.byVM[v.VM] = len(g.vms)
	g.vms = append(g.vms, v)
}

// VMs returns the truth records in registration order (a copy).
func (g *GroundTruth) VMs() []TruthVM {
	if g == nil {
		return nil
	}
	return append([]TruthVM(nil), g.vms...)
}

// Lookup returns the truth record for a VM name.
func (g *GroundTruth) Lookup(vm string) (TruthVM, bool) {
	if g == nil {
		return TruthVM{}, false
	}
	i, ok := g.byVM[vm]
	if !ok {
		return TruthVM{}, false
	}
	return g.vms[i], true
}

// NumAntagonists counts registered genuine antagonists.
func (g *GroundTruth) NumAntagonists() int {
	if g == nil {
		return 0
	}
	n := 0
	for _, v := range g.vms {
		if v.Antagonist() {
			n++
		}
	}
	return n
}

// Scorecard grades one scheme's detection and capping decisions against
// ground truth. All fields are exact counts or exact sums over the
// audit-event stream; derived rates are recomputed by finish() so Merge
// can combine cards from independent runs.
type Scorecard struct {
	// Scheme labels the card (e.g. "PerfCloud" or "terasort/CUBIC").
	Scheme string `json:"scheme,omitempty"`

	// Ground-truth denominators.
	TotalAntagonists int `json:"total_antagonists"`
	// DetectedAntagonists counts antagonists that appeared in an
	// identify event's antagonist lists or received a cap.
	DetectedAntagonists int `json:"detected_antagonists"`

	// Cap accounting. CappedVMs/AntagonistCappedVMs count distinct VMs;
	// TrueCaps/FalseCaps count individual cap events.
	CappedVMs           int `json:"capped_vms"`
	AntagonistCappedVMs int `json:"antagonist_capped_vms"`
	TrueCaps            int `json:"true_caps"`
	FalseCaps           int `json:"false_caps"`
	Migrations          int `json:"migrations"`

	// Derived rates (recomputed from the counts above).
	// Precision = antagonist capped VMs / capped VMs.
	Precision float64 `json:"precision"`
	// Recall = detected antagonists / total antagonists.
	Recall float64 `json:"recall"`
	// FalseCapRate = false cap events / total cap events.
	FalseCapRate float64 `json:"false_cap_rate"`

	// Latency: per detected antagonist, the gap between its first
	// ground-truth activity and the first identify/cap naming it.
	// TimeToDetectSum is the exact sum; MeanTimeToDetectSec the mean.
	TimeToDetectSum     float64 `json:"time_to_detect_sum_sec"`
	MeanTimeToDetectSec float64 `json:"mean_time_to_detect_sec"`

	// Dwell: total simulated seconds VMs spent under a cap, per
	// (VM, resource) episode from cap engagement to release (episodes
	// still open at the end of the run are closed at the run horizon).
	// FalseCapDwellSec is the share of that spent on innocent VMs.
	CapDwellSec      float64 `json:"cap_dwell_sec"`
	FalseCapDwellSec float64 `json:"false_cap_dwell_sec"`

	// JCTRecovery compares the scheme's victim completion times against
	// the interference-free baseline: total baseline JCT over total
	// scheme JCT (1.0 = fully recovered, smaller = residual slowdown).
	// Filled by the experiment drivers, which own the baseline runs.
	JCTRecovery float64 `json:"jct_recovery,omitempty"`
}

// finish recomputes the derived rates from the raw counts.
func (s *Scorecard) finish() {
	s.Precision, s.Recall, s.FalseCapRate, s.MeanTimeToDetectSec = 0, 0, 0, 0
	if s.CappedVMs > 0 {
		s.Precision = float64(s.AntagonistCappedVMs) / float64(s.CappedVMs)
	}
	if s.TotalAntagonists > 0 {
		s.Recall = float64(s.DetectedAntagonists) / float64(s.TotalAntagonists)
	}
	if caps := s.TrueCaps + s.FalseCaps; caps > 0 {
		s.FalseCapRate = float64(s.FalseCaps) / float64(caps)
	}
	if s.DetectedAntagonists > 0 {
		s.MeanTimeToDetectSec = s.TimeToDetectSum / float64(s.DetectedAntagonists)
	}
}

// Merge folds another card (an independent run of the same scheme) into
// s and recomputes the derived rates. JCT recovery is averaged over the
// cards that reported one.
func (s *Scorecard) Merge(o Scorecard) {
	if s.JCTRecovery > 0 && o.JCTRecovery > 0 {
		s.JCTRecovery = (s.JCTRecovery + o.JCTRecovery) / 2
	} else if o.JCTRecovery > 0 {
		s.JCTRecovery = o.JCTRecovery
	}
	s.TotalAntagonists += o.TotalAntagonists
	s.DetectedAntagonists += o.DetectedAntagonists
	s.CappedVMs += o.CappedVMs
	s.AntagonistCappedVMs += o.AntagonistCappedVMs
	s.TrueCaps += o.TrueCaps
	s.FalseCaps += o.FalseCaps
	s.Migrations += o.Migrations
	s.TimeToDetectSum += o.TimeToDetectSum
	s.CapDwellSec += o.CapDwellSec
	s.FalseCapDwellSec += o.FalseCapDwellSec
	s.finish()
}

// String renders the card as a stable single-line summary, suitable for
// byte-comparison across same-seed runs.
func (s Scorecard) String() string {
	var b strings.Builder
	if s.Scheme != "" {
		fmt.Fprintf(&b, "%s: ", s.Scheme)
	}
	fmt.Fprintf(&b, "precision %.3f recall %.3f false-cap-rate %.3f", s.Precision, s.Recall, s.FalseCapRate)
	fmt.Fprintf(&b, " ttd %.1fs dwell %.1fs (false %.1fs)", s.MeanTimeToDetectSec, s.CapDwellSec, s.FalseCapDwellSec)
	fmt.Fprintf(&b, " antagonists %d/%d capped-vms %d caps %d/%d migrations %d",
		s.DetectedAntagonists, s.TotalAntagonists, s.CappedVMs, s.TrueCaps, s.FalseCaps, s.Migrations)
	if s.JCTRecovery > 0 {
		fmt.Fprintf(&b, " jct-recovery %.3f", s.JCTRecovery)
	}
	return b.String()
}

// Score grades an audit-event stream against ground truth. endSec is the
// run horizon used to close cap episodes still open when the run ended.
// The result is a pure function of its inputs: events arrive in
// simulation order (the engine ticks managers sequentially and caps are
// applied in sorted VM order), and the only map iterations are over
// sorted keys, so same-seed runs score byte-identically.
func Score(events []Event, truth *GroundTruth, endSec float64) Scorecard {
	var sc Scorecard
	sc.TotalAntagonists = truth.NumAntagonists()
	isAntagonist := func(vm string) bool {
		v, ok := truth.Lookup(vm)
		return ok && v.Antagonist()
	}

	type episode struct{ vm, res string }
	open := make(map[episode]float64)     // cap engagement time per live episode
	firstSeen := make(map[string]float64) // first identify/cap naming the VM
	capped := make(map[string]bool)
	note := func(vm string, t float64) {
		if _, ok := firstSeen[vm]; !ok {
			firstSeen[vm] = t
		}
	}

	for _, e := range events {
		switch e.Type {
		case EventIdentify:
			for _, vm := range e.IOAntagonists {
				note(vm, e.T)
			}
			for _, vm := range e.CPUAntagonists {
				note(vm, e.T)
			}
		case EventCap:
			note(e.VM, e.T)
			if isAntagonist(e.VM) {
				sc.TrueCaps++
			} else {
				sc.FalseCaps++
			}
			if !capped[e.VM] {
				capped[e.VM] = true
				sc.CappedVMs++
				if isAntagonist(e.VM) {
					sc.AntagonistCappedVMs++
				}
			}
			k := episode{e.VM, e.Res}
			if _, live := open[k]; !live {
				open[k] = e.T
			}
		case EventRelease:
			k := episode{e.VM, e.Res}
			if t0, live := open[k]; live {
				sc.addDwell(e.VM, e.T-t0, isAntagonist)
				delete(open, k)
			}
		case EventMigrate:
			sc.Migrations++
		}
	}

	// Close episodes that were still capped at the run horizon, in
	// sorted order so the float sums are reproducible.
	stillOpen := make([]episode, 0, len(open))
	for k := range open {
		stillOpen = append(stillOpen, k)
	}
	sort.Slice(stillOpen, func(i, j int) bool {
		if stillOpen[i].vm != stillOpen[j].vm {
			return stillOpen[i].vm < stillOpen[j].vm
		}
		return stillOpen[i].res < stillOpen[j].res
	})
	for _, k := range stillOpen {
		if d := endSec - open[k]; d > 0 {
			sc.addDwell(k.vm, d, isAntagonist)
		}
	}

	// Detection latency per antagonist, in registration order.
	for _, v := range truth.VMs() {
		if !v.Antagonist() {
			continue
		}
		t, ok := firstSeen[v.VM]
		if !ok {
			continue
		}
		sc.DetectedAntagonists++
		if d := t - v.StartSec; d > 0 {
			sc.TimeToDetectSum += d
		}
	}

	sc.finish()
	return sc
}

func (s *Scorecard) addDwell(vm string, d float64, isAntagonist func(string) bool) {
	s.CapDwellSec += d
	if !isAntagonist(vm) {
		s.FalseCapDwellSec += d
	}
}
