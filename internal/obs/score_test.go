package obs

import (
	"reflect"
	"testing"
)

// truthFixture: two genuine antagonists (fio on io, stream on cpu) and
// one benign decoy that must never count toward recall.
func truthFixture() *GroundTruth {
	g := NewGroundTruth()
	g.Add(TruthVM{VM: "fio", Server: "s0", Channel: "io", StartSec: 10, OnSec: 60, OffSec: 30})
	g.Add(TruthVM{VM: "stream", Server: "s1", Channel: "cpu", StartSec: 40})
	g.Add(TruthVM{VM: "sysbench-oltp", Server: "s0", StartSec: 0})
	return g
}

func scoreFixtureEvents() []Event {
	return []Event{
		{T: 30, Type: EventSample, Server: "s0", IowaitDev: 5},
		{T: 35, Type: EventIdentify, Server: "s0", IOAntagonists: []string{"fio"}},
		{T: 40, Type: EventCap, Server: "s0", VM: "fio", Res: "io", OldCap: 8000, NewCap: 1600},
		{T: 55, Type: EventCap, Server: "s0", VM: "fio", Res: "io", OldCap: 1600, NewCap: 2000},
		// An innocent tenant capped by mistake, released quickly.
		{T: 60, Type: EventCap, Server: "s0", VM: "sysbench-oltp", Res: "io", OldCap: 400, NewCap: 200},
		{T: 80, Type: EventRelease, Server: "s0", VM: "sysbench-oltp", Res: "io"},
		{T: 100, Type: EventRelease, Server: "s0", VM: "fio", Res: "io"},
		// The cpu antagonist is identified late and still capped at the
		// horizon; its episode closes at endSec.
		{T: 150, Type: EventIdentify, Server: "s1", CPUAntagonists: []string{"stream"}},
		{T: 160, Type: EventCap, Server: "s1", VM: "stream", Res: "cpu", OldCap: 8, NewCap: 2},
		{T: 170, Type: EventMigrate, Server: "s1", VM: "stream"},
	}
}

func TestScoreCountsAndRates(t *testing.T) {
	sc := Score(scoreFixtureEvents(), truthFixture(), 200)

	if sc.TotalAntagonists != 2 {
		t.Fatalf("TotalAntagonists = %d, want 2", sc.TotalAntagonists)
	}
	if sc.DetectedAntagonists != 2 {
		t.Fatalf("DetectedAntagonists = %d, want 2", sc.DetectedAntagonists)
	}
	if sc.Recall != 1 {
		t.Fatalf("Recall = %v, want 1", sc.Recall)
	}
	// 3 distinct capped VMs, 2 of them antagonists.
	if sc.CappedVMs != 3 || sc.AntagonistCappedVMs != 2 {
		t.Fatalf("CappedVMs = %d AntagonistCappedVMs = %d, want 3/2", sc.CappedVMs, sc.AntagonistCappedVMs)
	}
	if want := 2.0 / 3.0; sc.Precision != want {
		t.Fatalf("Precision = %v, want %v", sc.Precision, want)
	}
	// 4 caps total, 1 on the innocent decoy.
	if sc.TrueCaps != 3 || sc.FalseCaps != 1 {
		t.Fatalf("caps = %d/%d, want 3 true / 1 false", sc.TrueCaps, sc.FalseCaps)
	}
	if want := 0.25; sc.FalseCapRate != want {
		t.Fatalf("FalseCapRate = %v, want %v", sc.FalseCapRate, want)
	}
	// fio: first active at 10, first named at 35 → 25s.
	// stream: first active at 40, first named at 150 → 110s.
	if want := (25.0 + 110.0) / 2; sc.MeanTimeToDetectSec != want {
		t.Fatalf("MeanTimeToDetectSec = %v, want %v", sc.MeanTimeToDetectSec, want)
	}
	// Dwell: fio 40→100 = 60s; oltp 60→80 = 20s (false); stream
	// 160→horizon 200 = 40s. Consecutive caps extend one episode.
	if want := 60.0 + 20.0 + 40.0; sc.CapDwellSec != want {
		t.Fatalf("CapDwellSec = %v, want %v", sc.CapDwellSec, want)
	}
	if want := 20.0; sc.FalseCapDwellSec != want {
		t.Fatalf("FalseCapDwellSec = %v, want %v", sc.FalseCapDwellSec, want)
	}
	if sc.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", sc.Migrations)
	}
}

func TestScoreDeterministic(t *testing.T) {
	a := Score(scoreFixtureEvents(), truthFixture(), 200)
	b := Score(scoreFixtureEvents(), truthFixture(), 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Score not deterministic:\n%+v\nvs\n%+v", a, b)
	}
	if a.String() != b.String() {
		t.Fatalf("String not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestScoreEmptyInputs(t *testing.T) {
	// No events at all (a scheme with no controller, e.g. LATE): rates
	// are zero, denominators still reflect the truth registry.
	sc := Score(nil, truthFixture(), 200)
	if sc.TotalAntagonists != 2 || sc.Recall != 0 || sc.Precision != 0 || sc.FalseCapRate != 0 {
		t.Fatalf("empty-event scorecard = %+v", sc)
	}
	// Nil truth: every cap is false.
	sc = Score(scoreFixtureEvents(), nil, 200)
	if sc.TrueCaps != 0 || sc.FalseCaps != 4 || sc.FalseCapRate != 1 {
		t.Fatalf("nil-truth scorecard = %+v", sc)
	}
}

func TestScorecardMerge(t *testing.T) {
	a := Score(scoreFixtureEvents(), truthFixture(), 200)
	b := a
	b.Merge(a)
	// Doubling every count leaves the rates fixed.
	if b.Precision != a.Precision || b.Recall != a.Recall || b.FalseCapRate != a.FalseCapRate {
		t.Fatalf("merge changed rates: %+v vs %+v", b, a)
	}
	if b.TotalAntagonists != 2*a.TotalAntagonists || b.CapDwellSec != 2*a.CapDwellSec {
		t.Fatalf("merge did not sum counts: %+v", b)
	}
	if b.MeanTimeToDetectSec != a.MeanTimeToDetectSec {
		t.Fatalf("merge changed mean TTD: %v vs %v", b.MeanTimeToDetectSec, a.MeanTimeToDetectSec)
	}
}

func TestTruthVMActiveAt(t *testing.T) {
	v := TruthVM{VM: "fio", Channel: "io", StartSec: 10, OnSec: 60, OffSec: 30}
	cases := []struct {
		t    float64
		want bool
	}{
		{0, false}, {9.9, false}, {10, true}, {69, true},
		{70, false}, {99, false}, {100, true}, {159, true}, {160, false},
	}
	for _, c := range cases {
		if got := v.ActiveAt(c.t); got != c.want {
			t.Fatalf("ActiveAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	always := TruthVM{VM: "stream", Channel: "cpu", StartSec: 40}
	if always.ActiveAt(39) || !always.ActiveAt(40) || !always.ActiveAt(1e6) {
		t.Fatal("always-on pattern mis-evaluated")
	}
}
