package obs

import (
	"bytes"
	"reflect"
	"testing"
)

// evalRule builds a one-rule engine over a Value source driven by vals
// and returns the emitted alert events after evaluating at times ts.
func evalRule(t *testing.T, r Rule, ts []float64, vals map[float64]float64) []Event {
	t.Helper()
	if r.Signal == "" && r.Metric == "" && r.Series == "" && r.Value == nil {
		r.Value = func(now float64) (float64, bool) {
			v, ok := vals[now]
			return v, ok
		}
	}
	col := NewCollector()
	eng := NewAlertEngine([]Rule{r}, col)
	for _, now := range ts {
		eng.Eval(now)
	}
	return col.Events()
}

func states(events []Event) []string {
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = e.State
	}
	return out
}

func TestAlertLifecyclePendingFiringResolved(t *testing.T) {
	events := evalRule(t,
		Rule{Name: "r", Cmp: CmpGT, Threshold: 10, ForSec: 10},
		[]float64{0, 5, 10, 15, 20},
		map[float64]float64{0: 5, 5: 20, 10: 20, 15: 20, 20: 5},
	)
	// t=5 condition true -> pending; t=15 held 10s -> firing; t=20
	// condition false -> resolved.
	if got, want := states(events), []string{StatePending, StateFiring, StateResolved}; !reflect.DeepEqual(got, want) {
		t.Fatalf("lifecycle = %v, want %v (events %+v)", got, want, events)
	}
	if events[0].T != 5 || events[1].T != 15 || events[2].T != 20 {
		t.Errorf("transition times = %v %v %v, want 5 15 20", events[0].T, events[1].T, events[2].T)
	}
	for _, e := range events[:2] {
		if e.ActiveSince != 5 {
			t.Errorf("ActiveSince = %v, want 5 (%+v)", e.ActiveSince, e)
		}
	}
	if events[0].Type != EventAlert || events[0].Rule != "r" || events[0].Threshold != 10 {
		t.Errorf("malformed alert event: %+v", events[0])
	}
}

func TestAlertForZeroFiresImmediately(t *testing.T) {
	events := evalRule(t,
		Rule{Name: "r", Cmp: CmpGT, Threshold: 1},
		[]float64{0, 5},
		map[float64]float64{0: 2, 5: 0},
	)
	if got, want := states(events), []string{StateFiring, StateResolved}; !reflect.DeepEqual(got, want) {
		t.Fatalf("lifecycle = %v, want %v", got, want)
	}
}

// A blip shorter than ForSec goes pending and back to inactive without
// ever firing — and the retreat is silent (no resolved event for an
// alert that never fired).
func TestAlertHysteresisSwallowsBlips(t *testing.T) {
	events := evalRule(t,
		Rule{Name: "r", Cmp: CmpGT, Threshold: 10, ForSec: 30},
		[]float64{0, 5, 10, 15},
		map[float64]float64{0: 5, 5: 20, 10: 5, 15: 5},
	)
	if got, want := states(events), []string{StatePending}; !reflect.DeepEqual(got, want) {
		t.Fatalf("lifecycle = %v, want %v", got, want)
	}
}

// A source that yields no value is condition-false: it can't fire, and
// it resolves a firing alert.
func TestAlertMissingValueIsConditionFalse(t *testing.T) {
	events := evalRule(t,
		Rule{Name: "r", Cmp: CmpGT, Threshold: 1},
		[]float64{0, 5, 10},
		map[float64]float64{5: 2}, // t=0 and t=10 missing
	)
	if got, want := states(events), []string{StateFiring, StateResolved}; !reflect.DeepEqual(got, want) {
		t.Fatalf("lifecycle = %v, want %v", got, want)
	}
}

func TestCmpOperators(t *testing.T) {
	cases := []struct {
		cmp  Cmp
		v    float64
		want bool
	}{
		{CmpGT, 11, true}, {CmpGT, 10, false},
		{CmpGE, 10, true}, {CmpGE, 9, false},
		{CmpLT, 9, true}, {CmpLT, 10, false},
		{CmpLE, 10, true}, {CmpLE, 11, false},
		{"", 11, true}, {"", 10, false}, // "" defaults to >
	}
	for _, c := range cases {
		if got := c.cmp.compare(c.v, 10); got != c.want {
			t.Errorf("Cmp(%q).compare(%v, 10) = %v, want %v", c.cmp, c.v, got, c.want)
		}
	}
}

// TestBuiltinSignals drives a synthetic audit stream through the engine
// and checks every built-in signal reads the expected value.
func TestBuiltinSignals(t *testing.T) {
	eng := NewAlertEngine(nil, nil)
	eng.Emit(Event{T: 5, Type: EventSample, Server: "s0", IowaitDev: 12, CPIDev: 0.4})
	eng.Emit(Event{T: 10, Type: EventSample, Server: "s1", IowaitDev: 3, CPIDev: 1.8})
	eng.Emit(Event{T: 10, Type: EventCap, VM: "vm-a", Res: "io"})
	eng.Emit(Event{T: 15, Type: EventCap, VM: "vm-a", Res: "cpu"})
	eng.Emit(Event{T: 20, Type: EventCap, VM: "vm-b", Res: "io"})
	eng.Emit(Event{T: 25, Type: EventRelease, VM: "vm-b", Res: "io"})
	// Re-capping an open episode must not reset its start time.
	eng.Emit(Event{T: 30, Type: EventCap, VM: "vm-a", Res: "io"})

	now := 40.0
	checks := []struct {
		signal string
		want   float64
	}{
		{SignalDevIowaitMax, 12},
		{SignalDevCPIMax, 1.8},
		{SignalCappedVMs, 1},     // vm-a (two channels), vm-b released
		{SignalCapDwellMax, 30},  // vm-a io open since t=10
		{SignalSampleGapMax, 35}, // s0 last sampled at t=5
	}
	for _, c := range checks {
		v, ok := eng.signal(c.signal, now)
		if !ok || v != c.want {
			t.Errorf("signal %q = (%v, %v), want (%v, true)", c.signal, v, ok, c.want)
		}
	}

	// The false-cap watchdog yields no value until ground truth attaches,
	// then counts capped innocents.
	if _, ok := eng.signal(SignalFalseCappedVMs, now); ok {
		t.Error("false_capped_vms yielded a value without ground truth")
	}
	truth := NewGroundTruth()
	truth.Add(TruthVM{VM: "vm-a", Server: "s0", Channel: "io"})
	eng.SetGroundTruth(truth)
	if v, ok := eng.signal(SignalFalseCappedVMs, now); !ok || v != 0 {
		t.Errorf("false_capped_vms = (%v, %v) with only the antagonist capped", v, ok)
	}
	eng.Emit(Event{T: 41, Type: EventCap, VM: "vm-c", Res: "io"}) // unknown VM = innocent
	if v, ok := eng.signal(SignalFalseCappedVMs, now); !ok || v != 1 {
		t.Errorf("false_capped_vms = (%v, %v) after capping an innocent, want (1, true)", v, ok)
	}
}

// TestAlertEngineIgnoresItsOwnEvents: an engine wired into the same
// MultiSink it emits into must not feed back on itself.
func TestAlertEngineIgnoresItsOwnEvents(t *testing.T) {
	var out MultiSink
	eng := NewAlertEngine([]Rule{
		{Name: "r", Signal: SignalDevIowaitMax, Cmp: CmpGT, Threshold: 1},
	}, &out)
	col := NewCollector()
	out = MultiSink{eng, col}
	eng.Emit(Event{T: 0, Type: EventSample, Server: "s0", IowaitDev: 5})
	eng.Eval(0)
	eng.Eval(5)
	if n := len(col.Events()); n != 1 {
		t.Fatalf("%d alert events, want 1 (feedback loop?)", n)
	}
}

func TestAlertMetricAndSeriesSources(t *testing.T) {
	reg := NewRegistry()
	sr := NewSeriesRegistry(0)
	eng := NewAlertEngine([]Rule{
		{Name: "m", Metric: "queue_depth", Cmp: CmpGT, Threshold: 3},
		{Name: "s", Series: "latency", SeriesLabels: []Label{{Key: "srv", Value: "a"}}, Cmp: CmpGE, Threshold: 100},
	}, nil)
	eng.SetRegistry(reg)
	eng.SetSeries(sr)

	// Both sources missing: condition-false, everything inactive.
	eng.Eval(0)
	for _, st := range eng.Statuses() {
		if st.State != StateInactive {
			t.Fatalf("rule %q active with missing sources: %+v", st.Rule, st)
		}
	}

	reg.Gauge("queue_depth", "").Set(7)
	sr.Series("latency", Label{Key: "srv", Value: "a"}).Append(1, 250)
	eng.Eval(5)
	for _, st := range eng.Statuses() {
		if st.State != StateFiring {
			t.Errorf("rule %q = %q after sources exceeded thresholds", st.Rule, st.State)
		}
	}
	if sts := eng.Statuses(); sts[0].Value != 7 || sts[1].Value != 250 {
		t.Errorf("statuses carry wrong values: %+v", sts)
	}
}

func TestAlertEngineNilSafety(t *testing.T) {
	var eng *AlertEngine
	eng.Emit(Event{Type: EventSample})
	eng.Eval(0)
	eng.SetRegistry(nil)
	eng.SetSeries(nil)
	eng.SetGroundTruth(nil)
	if got := eng.Statuses(); got != nil {
		t.Errorf("nil engine Statuses() = %v", got)
	}
	if s := eng.Summary(); len(s.Rules) != 0 || s.Firings != 0 {
		t.Errorf("nil engine Summary() = %+v", s)
	}
}

func TestAlertSummaryMergeAndString(t *testing.T) {
	a := AlertSummary{
		Rules:   []RuleSummary{{Rule: "x", Pendings: 1, Firings: 1}, {Rule: "y"}},
		Firings: 1, Active: []string{"x"},
	}
	b := AlertSummary{
		Rules:    []RuleSummary{{Rule: "y", Pendings: 2, Firings: 1, Resolved: 1}, {Rule: "z", Firings: 1}},
		Firings:  2,
		Resolved: 1,
		Active:   []string{"z", "x"},
	}
	a.Merge(b)
	want := AlertSummary{
		Rules: []RuleSummary{
			{Rule: "x", Pendings: 1, Firings: 1},
			{Rule: "y", Pendings: 2, Firings: 1, Resolved: 1},
			{Rule: "z", Firings: 1},
		},
		Firings: 3, Resolved: 1, Active: []string{"x", "z"},
	}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("Merge = %+v, want %+v", a, want)
	}
	const str = "firings 3 resolved 1 active [x z] x(fired 1) y(fired 1) z(fired 1)"
	if got := a.String(); got != str {
		t.Fatalf("String() = %q, want %q", got, str)
	}
}

// TestDefaultRulesDeterministicStream drives the same synthetic event
// stream through two engines over the default pack and requires
// byte-identical JSONL output.
func TestDefaultRulesDeterministicStream(t *testing.T) {
	runOnce := func() []byte {
		var buf bytes.Buffer
		sink := NewJSONLSink(&buf)
		truth := NewGroundTruth()
		truth.Add(TruthVM{VM: "ant", Server: "s0", Channel: "io"})
		eng := NewAlertEngine(DefaultRules(DefaultRulesConfig{}), sink)
		eng.SetGroundTruth(truth)
		for now := 5.0; now <= 300; now += 5 {
			eng.Emit(Event{T: now, Type: EventSample, Server: "s0", IowaitDev: 25, CPIDev: 2})
			if now == 30 {
				eng.Emit(Event{T: now, Type: EventCap, VM: "ant", Res: "io"})
				eng.Emit(Event{T: now, Type: EventCap, VM: "decoy", Res: "io"})
			}
			eng.Eval(now)
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := runOnce(), runOnce()
	if len(a) == 0 {
		t.Fatal("default rules emitted nothing on a stream above every threshold")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same-stream alert output differs:\n%s\nvs\n%s", a, b)
	}
}

// TestDefaultRulesCoverage: the synthetic stream above must trip the
// deviation rules, the cap-dwell rule and the false-cap watchdog.
func TestDefaultRulesCoverage(t *testing.T) {
	truth := NewGroundTruth()
	truth.Add(TruthVM{VM: "ant", Server: "s0", Channel: "io"})
	eng := NewAlertEngine(DefaultRules(DefaultRulesConfig{}), nil)
	eng.SetGroundTruth(truth)
	for now := 5.0; now <= 300; now += 5 {
		eng.Emit(Event{T: now, Type: EventSample, Server: "s0", IowaitDev: 25, CPIDev: 2})
		if now == 30 {
			eng.Emit(Event{T: now, Type: EventCap, VM: "ant", Res: "io"})
			eng.Emit(Event{T: now, Type: EventCap, VM: "decoy", Res: "io"})
		}
		eng.Eval(now)
	}
	sum := eng.Summary()
	fired := map[string]int{}
	for _, r := range sum.Rules {
		fired[r.Rule] = r.Firings
	}
	for _, rule := range []string{
		"victim-iowait-deviation-sustained",
		"victim-cpi-deviation-sustained",
		"cap-dwell-too-long",
		"false-cap-watchdog",
	} {
		if fired[rule] == 0 {
			t.Errorf("rule %q never fired (summary %+v)", rule, sum)
		}
	}
	// The control loop never starved, so the overrun rule stays quiet.
	if fired["monitor-interval-overrun"] != 0 {
		t.Errorf("monitor-interval-overrun fired spuriously (summary %+v)", sum)
	}
}

// TestDefaultRulesOptionalProbes: the fast-path and shard-imbalance
// rules only exist when their probes are wired, and read through them.
func TestDefaultRulesOptionalProbes(t *testing.T) {
	base := DefaultRules(DefaultRulesConfig{})
	for _, r := range base {
		if r.Name == "fastpath-hit-rate-collapse" || r.Name == "shard-load-imbalance" {
			t.Fatalf("probe rule %q present without its probe", r.Name)
		}
	}
	full := DefaultRules(DefaultRulesConfig{
		SustainSec: 1,
		FastPaths: func() FastPathSnapshot {
			return FastPathSnapshot{QuiescentSkips: 1, Rebuilds: 99}
		},
		ShardImbalance: func() (float64, bool) { return 8, true },
	})
	eng := NewAlertEngine(full, nil)
	eng.Eval(0)
	eng.Eval(5)
	st := map[string]AlertStatus{}
	for _, s := range eng.Statuses() {
		st[s.Rule] = s
	}
	if s := st["fastpath-hit-rate-collapse"]; s.State != StateFiring {
		t.Errorf("fastpath rule = %+v, want firing (hit rate 0.01 < 0.2)", s)
	}
	if s := st["shard-load-imbalance"]; s.State != StateFiring {
		t.Errorf("imbalance rule = %+v, want firing (8 > 4)", s)
	}
}
