package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestSeriesRingRetention(t *testing.T) {
	s := NewSeries(3)
	if got := s.Points(); len(got) != 0 {
		t.Fatalf("empty series returned %v", got)
	}
	for i := 1; i <= 5; i++ {
		s.Append(float64(i*10), float64(i))
	}
	got := s.Points()
	if len(got) != 3 {
		t.Fatalf("retained %d points, want 3", len(got))
	}
	for i, p := range got {
		if want := float64(i + 3); p.V != want || p.T != want*10 {
			t.Fatalf("point %d = %+v, want T=%v V=%v", i, p, want*10, want)
		}
	}
	if s.Total() != 5 || s.Len() != 3 {
		t.Fatalf("total/len = %d/%d, want 5/3", s.Total(), s.Len())
	}
}

func TestSeriesNilSafe(t *testing.T) {
	var s *Series
	s.Append(1, 2) // must not panic
	if s.Points() != nil || s.Len() != 0 || s.Total() != 0 || len(s.Since(0)) != 0 {
		t.Fatal("nil series not empty")
	}
}

func TestSeriesMonotoneTimestamps(t *testing.T) {
	s := NewSeries(4)
	s.Append(10, 1)
	s.Append(10, 2) // equal is fine — distinct servers, same interval
	defer func() {
		if recover() == nil {
			t.Fatal("decreasing timestamp did not panic")
		}
	}()
	s.Append(9, 3)
}

func TestSeriesSince(t *testing.T) {
	s := NewSeries(8)
	for _, ti := range []float64{10, 20, 30, 40} {
		s.Append(ti, ti)
	}
	if got := s.Since(0); len(got) != 4 {
		t.Fatalf("Since(0) returned %d points, want 4", len(got))
	}
	got := s.Since(20)
	if len(got) != 2 || got[0].T != 30 || got[1].T != 40 {
		t.Fatalf("Since(20) = %v, want [30 40]", got)
	}
	if got := s.Since(40); len(got) != 0 {
		t.Fatalf("Since(40) = %v, want empty (strictly after)", got)
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := NewSeries(100)
	for i := 0; i < 100; i++ {
		v := float64(i % 10)
		if i == 37 {
			v = 99 // a spike the downsample must preserve
		}
		s.Append(float64(i), v)
	}
	got := s.Downsample(4)
	if len(got) != 4 {
		t.Fatalf("downsampled to %d points, want 4", len(got))
	}
	spike := false
	for i, p := range got {
		if i > 0 && p.T <= got[i-1].T {
			t.Fatalf("downsampled timestamps not increasing: %v", got)
		}
		if p.V == 99 {
			spike = true
		}
	}
	if !spike {
		t.Fatalf("max-downsample lost the spike: %v", got)
	}
	// No-op cases.
	if got := s.Downsample(0); len(got) != 100 {
		t.Fatalf("Downsample(0) dropped points: %d", len(got))
	}
	if got := s.Downsample(1000); len(got) != 100 {
		t.Fatalf("Downsample(n>len) changed points: %d", len(got))
	}
}

func TestSeriesRegistry(t *testing.T) {
	r := NewSeriesRegistry(4)
	a := r.Series("dev_iowait")
	b := r.Series("dev_iowait", Label{Key: "zone", Value: "zone-0"})
	if a == b {
		t.Fatal("label sets did not produce distinct series")
	}
	if again := r.Series("dev_iowait"); again != a {
		t.Fatal("registry did not return the same series for the same key")
	}
	a.Append(1, 10)
	b.Append(1, 20)
	keys := r.Keys()
	want := []string{"dev_iowait", `dev_iowait{zone="zone-0"}`}
	if len(keys) != 2 || keys[0] != want[0] || keys[1] != want[1] {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}

	var nilReg *SeriesRegistry
	if nilReg.Series("x") != nil || nilReg.Keys() != nil {
		t.Fatal("nil registry not inert")
	}
}

func TestSeriesRegistryWriteJSON(t *testing.T) {
	r := NewSeriesRegistry(8)
	s := r.Series("fleet_active_servers")
	for _, ti := range []float64{10, 20, 30} {
		s.Append(ti, ti/10)
	}
	render := func(since float64, max int) string {
		var b bytes.Buffer
		if err := r.WriteJSON(&b, since, max); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	full := render(0, 0)
	if full != render(0, 0) {
		t.Fatal("WriteJSON not deterministic")
	}
	var out struct {
		Series []struct {
			Series string        `json:"series"`
			Total  uint64        `json:"total"`
			Points []SeriesPoint `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(full), &out); err != nil {
		t.Fatalf("WriteJSON output invalid: %v\n%s", err, full)
	}
	if len(out.Series) != 1 || out.Series[0].Total != 3 || len(out.Series[0].Points) != 3 {
		t.Fatalf("unexpected payload: %s", full)
	}
	// Delta scrape: only points strictly after since.
	if err := json.Unmarshal([]byte(render(20, 0)), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Series[0].Points) != 1 || out.Series[0].Points[0].T != 30 {
		t.Fatalf("since=20 scrape returned %+v", out.Series[0].Points)
	}
	// maxPoints caps the per-series payload.
	if err := json.Unmarshal([]byte(render(0, 2)), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Series[0].Points) > 2 {
		t.Fatalf("maxPoints=2 returned %d points", len(out.Series[0].Points))
	}
}

func TestRollupHierarchy(t *testing.T) {
	r := NewSeriesRegistry(16)
	locate := func(server string) (string, string, bool) {
		switch server {
		case "s0", "s1":
			return "0", "zone-0", true
		case "s2":
			return "1", "zone-1", true
		}
		return "", "", false
	}
	ru := NewRollup(r, "dev_iowait", locate, MaxFold)
	// Same interval (t=10), three servers: max must win at each level.
	ru.Observe("s0", 10, 1)
	ru.Observe("s1", 10, 5)
	ru.Observe("s2", 10, 3)
	ru.Observe("unknown", 10, 9) // unlocatable: cluster only
	ru.Observe("s0", 20, 2)

	get := func(key string) []SeriesPoint {
		switch key {
		case "cluster":
			return r.Series("dev_iowait").Points()
		case "shard0":
			return r.Series("dev_iowait", Label{Key: "shard", Value: "0"}).Points()
		case "zone0":
			return r.Series("dev_iowait", Label{Key: "zone", Value: "zone-0"}).Points()
		case "zone1":
			return r.Series("dev_iowait", Label{Key: "zone", Value: "zone-1"}).Points()
		}
		return nil
	}
	cl := get("cluster")
	if len(cl) != 2 || cl[0] != (SeriesPoint{T: 10, V: 9}) || cl[1] != (SeriesPoint{T: 20, V: 2}) {
		t.Fatalf("cluster series = %v", cl)
	}
	if sh := get("shard0"); len(sh) != 2 || sh[0].V != 5 {
		t.Fatalf("shard 0 series = %v", sh)
	}
	if z := get("zone0"); len(z) != 2 || z[0].V != 5 || z[1].V != 2 {
		t.Fatalf("zone-0 series = %v", z)
	}
	if z := get("zone1"); len(z) != 1 || z[0].V != 3 {
		t.Fatalf("zone-1 series = %v", z)
	}
	// Cardinality is levels, not servers: cluster + 2 shards + 2 zones.
	if got := len(r.Keys()); got != 5 {
		t.Fatalf("rollup created %d series, want 5: %v", got, r.Keys())
	}

	var nilRu *Rollup
	nilRu.Observe("s0", 1, 1) // must not panic
}

func TestRollupSink(t *testing.T) {
	r := NewSeriesRegistry(8)
	sink := NewRollupSink(r, func(string) (string, string, bool) { return "0", "zone-0", true })
	sink.Emit(Event{T: 10, Type: EventSample, Server: "s0", IowaitDev: 4, CPIDev: 0.5})
	sink.Emit(Event{T: 10, Type: EventCap, Server: "s0", VM: "fio"}) // ignored
	io := r.Series("dev_iowait").Points()
	cpu := r.Series("dev_cpi").Points()
	if len(io) != 1 || io[0].V != 4 || len(cpu) != 1 || cpu[0].V != 0.5 {
		t.Fatalf("rollup sink recorded io=%v cpu=%v", io, cpu)
	}
	for _, k := range r.Keys() {
		if strings.Contains(k, `server=`) {
			t.Fatalf("rollup sink created a per-server series: %v", r.Keys())
		}
	}
}

// TestSeriesWrappedRingReads pins Since and Downsample behaviour after
// the ring has wrapped: reads must see the retained window in time
// order, not the raw buffer order.
func TestSeriesWrappedRingReads(t *testing.T) {
	s := NewSeries(4)
	for i := 0; i < 10; i++ { // retains t=6..9, buffer physically rotated
		s.Append(float64(i), float64(i*10))
	}
	pts := s.Points()
	if len(pts) != 4 || pts[0].T != 6 || pts[3].T != 9 {
		t.Fatalf("wrapped Points() = %v", pts)
	}

	// Since on the wrapped window: strictly-after semantics hold across
	// the physical seam.
	if got := s.Since(7); len(got) != 2 || got[0].T != 8 || got[1].T != 9 {
		t.Fatalf("Since(7) on wrapped ring = %v", got)
	}
	// A cutoff older than the retained window returns everything...
	if got := s.Since(2); len(got) != 4 {
		t.Fatalf("Since(2) = %v, want all 4 retained points", got)
	}
	// ...and one at-or-past the newest point returns nothing (strictly
	// after).
	if got := s.Since(9); len(got) != 0 {
		t.Fatalf("Since(9) = %v, want empty", got)
	}

	// Downsample on the wrapped window: 2 buckets of 2, each reporting
	// its max value and last timestamp.
	ds := s.Downsample(2)
	want := []SeriesPoint{{T: 7, V: 70}, {T: 9, V: 90}}
	if !reflect.DeepEqual(ds, want) {
		t.Fatalf("Downsample(2) on wrapped ring = %v, want %v", ds, want)
	}
}

// TestSeriesDownsampleDegenerateN: n <= 0 and n >= len both return the
// points unchanged rather than panicking or truncating.
func TestSeriesDownsampleDegenerateN(t *testing.T) {
	s := NewSeries(8)
	for i := 0; i < 5; i++ {
		s.Append(float64(i), float64(i))
	}
	all := s.Points()
	for _, n := range []int{0, -1, -100, 5, 6, 1000} {
		if got := s.Downsample(n); !reflect.DeepEqual(got, all) {
			t.Errorf("Downsample(%d) = %v, want all %d points unchanged", n, got, len(all))
		}
	}
}

// TestSeriesEmptyReads: every read primitive is well-defined on a
// freshly created (never appended) series.
func TestSeriesEmptyReads(t *testing.T) {
	s := NewSeries(4)
	if _, ok := s.Last(); ok {
		t.Error("Last() ok on empty series")
	}
	if got := s.Points(); len(got) != 0 {
		t.Errorf("Points() = %v on empty series", got)
	}
	if got := s.Since(0); len(got) != 0 {
		t.Errorf("Since(0) = %v on empty series", got)
	}
	if got := s.Downsample(3); len(got) != 0 {
		t.Errorf("Downsample(3) = %v on empty series", got)
	}
	if s.Len() != 0 || s.Total() != 0 {
		t.Errorf("Len/Total = %d/%d on empty series", s.Len(), s.Total())
	}
}

// TestSeriesTotalCountsLoss: after wraparound, Total keeps counting
// evicted points so a scraper can detect it has missed data.
func TestSeriesTotalCountsLoss(t *testing.T) {
	s := NewSeries(3)
	for i := 0; i < 7; i++ {
		s.Append(float64(i), 0)
	}
	if s.Total() != 7 {
		t.Fatalf("Total = %d, want 7", s.Total())
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if lost := s.Total() - uint64(s.Len()); lost != 4 {
		t.Fatalf("computed loss = %d, want 4", lost)
	}
}
