package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusZeroObservationHistogram locks in the exposition of
// a histogram that never saw a sample: every bucket (including +Inf),
// the sum and the count must render as zero rather than being omitted.
func TestWritePrometheusZeroObservationHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("idle_seconds", "Never observed.", []float64{0.1, 1})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`idle_seconds_bucket{le="0.1"} 0`,
		`idle_seconds_bucket{le="1"} 0`,
		`idle_seconds_bucket{le="+Inf"} 0`,
		`idle_seconds_sum 0`,
		`idle_seconds_count 0`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, out)
		}
	}
}

// TestWritePrometheusInfBucketCumulative checks the +Inf bucket equals
// the total count even when samples exceed every finite bound.
func TestWritePrometheusInfBucketCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="10"} 2`,
		`lat_bucket{le="+Inf"} 4`,
		`lat_count 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, out)
		}
	}
}

// TestWritePrometheusLabelValueEscaping covers backslash, quote and
// newline in label values — they must be escaped per the text format so
// one hostile value cannot corrupt the whole exposition.
func TestWritePrometheusLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "", Label{Key: "path", Value: "a\"b\\c\nd"}).Add(1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `c{path="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want+"\n") {
		t.Errorf("missing escaped series %q in:\n%s", want, b.String())
	}
}

// TestWritePrometheusNilRegistry: a nil registry renders nothing.
func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("nil registry wrote %q", b.String())
	}
}
