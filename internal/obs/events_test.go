package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// sampleEvents is a stream exercising every event type and payload kind.
func sampleEvents() []Event {
	return []Event{
		{T: 5, Type: EventSample, Server: "s0", Domains: 9, IowaitDev: 0.3, CPIDev: 0.01},
		{T: 35, Type: EventDetect, Server: "s0", IowaitDev: 42.5, CPIDev: 0.2, IOContention: true},
		{T: 35, Type: EventIdentify, Server: "s0",
			Corr:          []SuspectCorr{{VM: "fio", IO: 0.97, CPU: 0.1}},
			IOAntagonists: []string{"fio"}},
		{T: 40, Type: EventCap, Server: "s0", VM: "fio", Res: "io",
			OldCap: 8000, NewCap: 1600, Region: "growth", SinceDecrease: 0},
		{T: 120, Type: EventRelease, Server: "s0", VM: "fio", Res: "io", OldCap: 32000},
		{T: 200, Type: EventFastPaths, Fast: &FastPathSnapshot{QuiescentSkips: 10, SteadyReuses: 5, Rebuilds: 2}},
	}
}

func TestJSONLSinkDeterministic(t *testing.T) {
	render := func() string {
		var b bytes.Buffer
		s := NewJSONLSink(&b)
		for _, e := range sampleEvents() {
			s.Emit(e)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("JSONL encoding not deterministic:\n%s\nvs\n%s", a, b)
	}
	lines := strings.Split(strings.TrimRight(a, "\n"), "\n")
	if len(lines) != len(sampleEvents()) {
		t.Fatalf("got %d lines, want %d", len(lines), len(sampleEvents()))
	}
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", line, err)
		}
	}
}

func TestEventZeroFieldsOmitted(t *testing.T) {
	var b bytes.Buffer
	s := NewJSONLSink(&b)
	s.Emit(Event{T: 5, Type: EventSample, Server: "s0", Domains: 3})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(b.String())
	want := `{"t":5,"type":"sample","server":"s0","domains":3}`
	if got != want {
		t.Fatalf("encoding = %s, want %s", got, want)
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	if got := r.Events(); len(got) != 0 {
		t.Fatalf("empty ring returned %v", got)
	}
	for i := 1; i <= 5; i++ {
		r.Emit(Event{T: float64(i)})
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("ring kept %d events, want 3", len(got))
	}
	for i, e := range got {
		if want := float64(i + 3); e.T != want {
			t.Fatalf("event %d has T=%v, want %v (oldest first)", i, e.T, want)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
}

func TestMultiSink(t *testing.T) {
	a, b := NewRing(4), NewRing(4)
	m := MultiSink{a, b}
	m.Emit(Event{T: 1, Type: EventSample})
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatalf("multisink did not fan out: %d, %d", a.Total(), b.Total())
	}
}

// failWriter errors on every write — used to wedge a JSONLSink mid-chain.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) {
	return 0, errors.New("disk full")
}

// TestMultiSinkPartialFailureOrdering checks that one failing sink in
// the middle of a MultiSink neither stops the fan-out nor reorders it:
// every later sink still receives the full stream in emission order,
// and the failing sink reports its sticky error without panicking.
func TestMultiSinkPartialFailureOrdering(t *testing.T) {
	before := NewCollector()
	// A JSONLSink over a tiny buffer so the first flushed write fails;
	// its error must stay contained to Flush.
	broken := NewJSONLSink(failWriter{})
	after := NewCollector()
	m := MultiSink{before, broken, after}

	events := sampleEvents()
	for _, e := range events {
		m.Emit(e)
	}
	for _, c := range []*Collector{before, after} {
		got := c.Events()
		if !reflect.DeepEqual(got, events) {
			t.Fatalf("sink around the failing one saw %v, want %v in order", got, events)
		}
	}
	if err := broken.Flush(); err == nil {
		t.Fatal("failing sink reported no error from Flush")
	}
	// The error is sticky: further emits are dropped silently, and the
	// sinks around it keep receiving.
	m.Emit(Event{T: 999, Type: EventSample})
	if got := len(after.Events()); got != len(events)+1 {
		t.Fatalf("later sink saw %d events after failure, want %d", got, len(events)+1)
	}
}

// TestRingWraparound pins the boundary behaviour the happy-path TestRing
// skips: capacity 1, exactly-full (no wrap yet), and multiple complete
// wraps all report the newest events oldest-first with exact totals.
func TestRingWraparound(t *testing.T) {
	emitN := func(r *Ring, n int) {
		for i := 1; i <= n; i++ {
			r.Emit(Event{T: float64(i)})
		}
	}
	check := func(t *testing.T, r *Ring, wantT []float64, wantTotal uint64) {
		t.Helper()
		got := r.Events()
		if len(got) != len(wantT) {
			t.Fatalf("retained %d events, want %d", len(got), len(wantT))
		}
		for i, e := range got {
			if e.T != wantT[i] {
				t.Fatalf("event %d has T=%v, want %v", i, e.T, wantT[i])
			}
		}
		if r.Total() != wantTotal {
			t.Fatalf("total = %d, want %d", r.Total(), wantTotal)
		}
	}

	t.Run("capacity one", func(t *testing.T) {
		r := NewRing(1)
		emitN(r, 7)
		check(t, r, []float64{7}, 7)
	})
	t.Run("exactly full", func(t *testing.T) {
		r := NewRing(4)
		emitN(r, 4)
		check(t, r, []float64{1, 2, 3, 4}, 4)
	})
	t.Run("one past full", func(t *testing.T) {
		r := NewRing(4)
		emitN(r, 5)
		check(t, r, []float64{2, 3, 4, 5}, 5)
	})
	t.Run("multiple wraps", func(t *testing.T) {
		r := NewRing(3)
		emitN(r, 11)
		check(t, r, []float64{9, 10, 11}, 11)
	})
	t.Run("invalid size", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("NewRing(0) did not panic")
			}
		}()
		NewRing(0)
	})
}

// TestFastPathSnapshotSub checks Sub is Add's exact inverse over every
// field — the contract incremental aggregators (the cluster's per-shard
// stats) rely on when folding counter deltas — using reflection so a
// future counter missing from either method fails loudly.
func TestFastPathSnapshotSub(t *testing.T) {
	var a, b FastPathSnapshot
	va := reflect.ValueOf(&a).Elem()
	vb := reflect.ValueOf(&b).Elem()
	for i := 0; i < va.NumField(); i++ {
		va.Field(i).SetUint(uint64(100 * (i + 1)))
		vb.Field(i).SetUint(uint64(i + 1))
	}
	sum := a
	sum.Add(b)
	sum.Sub(b)
	if sum != a {
		t.Fatalf("Add then Sub is not the identity: %+v vs %+v", sum, a)
	}
	d := a
	d.Sub(b)
	vd := reflect.ValueOf(d)
	for i := 0; i < vd.NumField(); i++ {
		if got, want := vd.Field(i).Uint(), uint64(99*(i+1)); got != want {
			t.Fatalf("field %s delta = %d, want %d", vd.Type().Field(i).Name, got, want)
		}
	}
}

func TestFastPathSnapshotAdd(t *testing.T) {
	a := FastPathSnapshot{QuiescentSkips: 1, SteadyReuses: 2, Rebuilds: 3, CPUMemoHits: 4, DiskMemoMisses: 5}
	a.Add(FastPathSnapshot{QuiescentSkips: 10, SteadyReuses: 20, Rebuilds: 30, CPUMemoHits: 40, MemMemoHits: 7, DiskMemoMisses: 50})
	want := FastPathSnapshot{QuiescentSkips: 11, SteadyReuses: 22, Rebuilds: 33, CPUMemoHits: 44, MemMemoHits: 7, DiskMemoMisses: 55}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}
