package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the engine self-profiling layer: sampled wall-clock phase
// timers, slot-pool contention counters, shard load-imbalance gauges and
// a runtime/metrics bridge. It is explicitly NON-deterministic by design
// — it measures the simulator's own execution, not the simulation — and
// is therefore kept strictly out of sim outputs: nothing here feeds the
// audit-event stream, result rows, traces or scorecards, and the alert
// engine's determinism contract (alert.go) never reads wall-clock state.
// Like the rest of the package it is free when off: the nil *Health and
// nil *PhaseTimer are valid no-ops, so instrumented hot loops pay one
// branch when no health layer is attached.

// phaseSampleEvery is the sampling stride: one in this many Begin calls
// actually reads the clock. A power of two keeps the modulo a mask.
const phaseSampleEvery = 64

// PhaseTimer measures one engine phase with sampled wall-clock timings.
// Begin returns a start token (zero for unsampled calls); End records
// the elapsed time when the token is non-zero. Both are safe for
// concurrent use and no-ops on the nil timer.
type PhaseTimer struct {
	calls   atomic.Uint64
	sampled atomic.Uint64
	totalNs atomic.Int64
	maxNs   atomic.Int64
}

// Begin starts a sample if this call is selected, returning the start
// token to hand to End (0 = unsampled, End ignores it).
func (t *PhaseTimer) Begin() int64 {
	if t == nil {
		return 0
	}
	if t.calls.Add(1)%phaseSampleEvery != 1 {
		return 0
	}
	return time.Now().UnixNano()
}

// End completes a sample started by Begin.
func (t *PhaseTimer) End(start int64) {
	if t == nil || start == 0 {
		return
	}
	d := time.Now().UnixNano() - start
	if d < 0 {
		return
	}
	t.sampled.Add(1)
	t.totalNs.Add(d)
	for {
		old := t.maxNs.Load()
		if d <= old || t.maxNs.CompareAndSwap(old, d) {
			return
		}
	}
}

// PhaseStats is one timer's snapshot.
type PhaseStats struct {
	Phase   string `json:"phase"`
	Calls   uint64 `json:"calls"`
	Sampled uint64 `json:"sampled"`
	TotalNs int64  `json:"total_ns"`
	MaxNs   int64  `json:"max_ns"`
	// MeanNs is TotalNs over Sampled (0 when nothing sampled yet).
	MeanNs int64 `json:"mean_ns"`
}

func (t *PhaseTimer) stats(name string) PhaseStats {
	s := PhaseStats{
		Phase:   name,
		Calls:   t.calls.Load(),
		Sampled: t.sampled.Load(),
		TotalNs: t.totalNs.Load(),
		MaxNs:   t.maxNs.Load(),
	}
	if s.Sampled > 0 {
		s.MeanNs = s.TotalNs / int64(s.Sampled)
	}
	return s
}

// PoolHealth is a snapshot of a worker slot pool's contention state,
// mirrored here so obs does not import sim (sim.SlotPool.Stats converts
// into it).
type PoolHealth struct {
	Capacity     int    `json:"capacity"`
	InUse        int    `json:"in_use"`
	Peak         int    `json:"peak"`
	TryAcquires  uint64 `json:"try_acquires"`
	Denied       uint64 `json:"denied"`
	GrantedSlots uint64 `json:"granted_slots"`
}

// runtimeSamples is the fixed runtime/metrics set the bridge reads. A
// fixed list (rather than metrics.All) keeps the gauge names stable
// across Go releases.
var runtimeSamples = []struct {
	path  string
	gauge string
	help  string
}{
	{"/sched/goroutines:goroutines", "perfcloud_health_goroutines", "Live goroutine count."},
	{"/memory/classes/heap/objects:bytes", "perfcloud_health_heap_objects_bytes", "Bytes of live heap objects."},
	{"/gc/cycles/total:gc-cycles", "perfcloud_health_gc_cycles_total", "Completed GC cycles."},
	{"/cpu/classes/gc/total:cpu-seconds", "perfcloud_health_gc_cpu_seconds_total", "Estimated CPU time spent in the GC."},
}

// Health is the root of the self-profiling layer: named phase timers, an
// optional pool-stats probe, the shard-imbalance gauge, and the
// runtime/metrics bridge. All methods are safe on the nil *Health, so a
// component holds a plain field and wires timers unconditionally.
type Health struct {
	reg *Registry

	mu     sync.Mutex
	timers map[string]*PhaseTimer
	order  []string
	pool   func() PoolHealth

	// Shard load imbalance, as observed by whoever samples shard stats
	// (bits-encoded max/mean ratio; set flag keeps "never observed"
	// distinct from a ratio of 0).
	imbalanceBits atomic.Uint64
	imbalanceSet  atomic.Bool
}

// NewHealth creates a health layer. reg may be nil: timers and probes
// still work, only the runtime/metrics bridge has nowhere to write.
func NewHealth(reg *Registry) *Health {
	return &Health{reg: reg, timers: make(map[string]*PhaseTimer)}
}

// Timer returns (registering on first use) the named phase timer, or nil
// on the nil Health — callers store the result and use it unguarded.
func (h *Health) Timer(name string) *PhaseTimer {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	t, ok := h.timers[name]
	if !ok {
		t = &PhaseTimer{}
		h.timers[name] = t
		h.order = append(h.order, name)
	}
	return t
}

// SetPoolStats installs the probe the snapshot calls for slot-pool
// contention (typically wrapping sim.SharedPool().Stats()).
func (h *Health) SetPoolStats(probe func() PoolHealth) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.pool = probe
}

// ObserveShardImbalance records the latest max/mean active-server ratio
// across tick shards.
func (h *Health) ObserveShardImbalance(ratio float64) {
	if h == nil {
		return
	}
	h.imbalanceBits.Store(math.Float64bits(ratio))
	h.imbalanceSet.Store(true)
	if h.reg != nil {
		h.reg.Gauge("perfcloud_health_shard_imbalance",
			"Max/mean active-server ratio across tick shards.").Set(ratio)
	}
}

// Imbalance returns the last observed shard imbalance ratio (ok false
// until first observed, and always on the nil Health) — the probe shape
// DefaultRulesConfig.ShardImbalance wants.
func (h *Health) Imbalance() (float64, bool) {
	if h == nil || !h.imbalanceSet.Load() {
		return 0, false
	}
	return math.Float64frombits(h.imbalanceBits.Load()), true
}

// SampleRuntime reads the fixed runtime/metrics set into the attached
// registry's health gauges. Call it at observation points (daemon
// intervals, end of a bench run); it is not worth calling per tick.
func (h *Health) SampleRuntime() {
	if h == nil || h.reg == nil {
		return
	}
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i := range runtimeSamples {
		samples[i].Name = runtimeSamples[i].path
	}
	metrics.Read(samples)
	for i, s := range samples {
		var v float64
		switch s.Value.Kind() {
		case metrics.KindUint64:
			v = float64(s.Value.Uint64())
		case metrics.KindFloat64:
			v = s.Value.Float64()
		default:
			continue
		}
		h.reg.Gauge(runtimeSamples[i].gauge, runtimeSamples[i].help).Set(v)
	}
}

// HealthSnapshot is the JSON shape of /debug/health.
type HealthSnapshot struct {
	Phases []PhaseStats `json:"phases"`
	Pool   *PoolHealth  `json:"pool,omitempty"`
	// ShardImbalance is the last observed max/mean ratio (absent until
	// first observed).
	ShardImbalance *float64 `json:"shard_imbalance,omitempty"`
}

// Snapshot captures the current health state (phases sorted by name).
func (h *Health) Snapshot() HealthSnapshot {
	var snap HealthSnapshot
	if h == nil {
		return snap
	}
	h.mu.Lock()
	names := append([]string(nil), h.order...)
	pool := h.pool
	h.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		snap.Phases = append(snap.Phases, h.Timer(name).stats(name))
	}
	if pool != nil {
		p := pool()
		snap.Pool = &p
	}
	if v, ok := h.Imbalance(); ok {
		snap.ShardImbalance = &v
	}
	return snap
}

// WriteJSON renders the snapshot as indented JSON (for /debug/health).
func (h *Health) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h.Snapshot())
}

// Summary renders the snapshot as aligned text for CLI output (perfbench
// -health). Empty string when nothing was recorded.
func (h *Health) Summary() string {
	snap := h.Snapshot()
	var b strings.Builder
	if len(snap.Phases) > 0 {
		fmt.Fprintf(&b, "%-22s %12s %9s %12s %12s\n", "phase", "calls", "sampled", "mean", "max")
		for _, p := range snap.Phases {
			fmt.Fprintf(&b, "%-22s %12d %9d %12s %12s\n", p.Phase, p.Calls, p.Sampled,
				time.Duration(p.MeanNs), time.Duration(p.MaxNs))
		}
	}
	if p := snap.Pool; p != nil {
		fmt.Fprintf(&b, "pool: capacity %d in-use %d peak %d acquires %d denied %d granted %d\n",
			p.Capacity, p.InUse, p.Peak, p.TryAcquires, p.Denied, p.GrantedSlots)
	}
	if r := snap.ShardImbalance; r != nil {
		fmt.Fprintf(&b, "shard imbalance: %.2f (max/mean active servers)\n", *r)
	}
	return b.String()
}
