package memsys

import (
	"math/rand"
	"testing"
	"testing/quick"

	"perfcloud/internal/stats"
)

const tick = 0.1

func newSys() *System {
	return New(DefaultConfig(), rand.New(rand.NewSource(1)))
}

// sparkReq models one Spark worker VM: 2 vcpus busy, memory-hungry.
func sparkReq(id string) Request {
	return Request{
		ClientID:        id,
		CPUSeconds:      0.2,
		CoreCPI:         0.8,
		LLCRefsPerInstr: 0.04,
		BytesPerInstr:   0.8,
		WorkingSetBytes: 400 << 20,
	}
}

// streamReq models a STREAM antagonist VM: saturating memory traffic.
func streamReq(id string) Request {
	return Request{
		ClientID:        id,
		CPUSeconds:      0.2,
		CoreCPI:         0.7,
		LLCRefsPerInstr: 0.15,
		BytesPerInstr:   8,
		WorkingSetBytes: 16 << 30,
	}
}

func TestIdleClientZeroResult(t *testing.T) {
	s := newSys()
	res := s.Compute(tick, []Request{{ClientID: "idle"}})
	r := res[0]
	if r.Instructions != 0 || r.Cycles != 0 || r.CPI != 0 || r.LLCMisses != 0 {
		t.Errorf("idle result = %+v", r)
	}
}

func TestCPIAtLeastCoreCPI(t *testing.T) {
	s := newSys()
	res := s.Compute(tick, []Request{sparkReq("a")})
	if res[0].CPI < 0.8 {
		t.Errorf("CPI = %v below core CPI", res[0].CPI)
	}
	if res[0].Instructions <= 0 || res[0].Cycles <= 0 {
		t.Errorf("result = %+v", res[0])
	}
}

func TestCyclesEqualGrantedCPUTimesFreq(t *testing.T) {
	s := newSys()
	res := s.Compute(tick, []Request{sparkReq("a")})
	want := 0.2 * DefaultConfig().FreqHz
	if res[0].Cycles != want {
		t.Errorf("cycles = %v, want %v", res[0].Cycles, want)
	}
	// Instructions * CPI == cycles (self-consistency of the counters).
	if got := res[0].Instructions * res[0].CPI; got < want*0.999 || got > want*1.001 {
		t.Errorf("instr*CPI = %v, want %v", got, want)
	}
}

func TestStreamSaturatesBandwidth(t *testing.T) {
	s := newSys()
	reqs := []Request{streamReq("s1"), streamReq("s2")}
	for i := 0; i < 10; i++ {
		reqs = append(reqs, sparkReq(string(rune('a'+i))))
	}
	s.Compute(tick, reqs)
	if s.Pressure() <= 1 {
		t.Errorf("pressure = %v, want > 1 with two STREAMs plus Spark", s.Pressure())
	}
}

func TestContentionInflatesVictimCPI(t *testing.T) {
	meanCPI := func(withStream bool) float64 {
		s := New(DefaultConfig(), rand.New(rand.NewSource(2)))
		var acc float64
		n := 0
		for i := 0; i < 100; i++ {
			reqs := []Request{}
			for k := 0; k < 10; k++ {
				reqs = append(reqs, sparkReq(string(rune('a'+k))))
			}
			if withStream {
				reqs = append(reqs, streamReq("s1"), streamReq("s2"))
			}
			res := s.Compute(tick, reqs)
			for k := 0; k < 10; k++ {
				acc += res[k].CPI
				n++
			}
		}
		return acc / float64(n)
	}
	alone := meanCPI(false)
	contended := meanCPI(true)
	if contended < alone*1.3 {
		t.Errorf("victim CPI alone=%v contended=%v, want >= 1.3x inflation", alone, contended)
	}
}

// The core detection property: CPI std-dev across a scale-out app's VMs
// stays well below the paper's threshold of 1 when running alone, and
// exceeds it under STREAM colocations, surviving 5-second averaging.
func TestCPISpreadDetectable(t *testing.T) {
	spread := func(withStream bool) float64 {
		s := New(DefaultConfig(), rand.New(rand.NewSource(3)))
		var sds []float64
		for w := 0; w < 20; w++ { // 20 windows of 50 ticks = 5 s each
			cycles := make([]float64, 10)
			instr := make([]float64, 10)
			for i := 0; i < 50; i++ {
				reqs := []Request{}
				for k := 0; k < 10; k++ {
					reqs = append(reqs, sparkReq(string(rune('a'+k))))
				}
				if withStream {
					reqs = append(reqs, streamReq("s1"), streamReq("s2"))
				}
				res := s.Compute(tick, reqs)
				for k := 0; k < 10; k++ {
					cycles[k] += res[k].Cycles
					instr[k] += res[k].Instructions
				}
			}
			cpis := make([]float64, 10)
			for k := range cpis {
				cpis[k] = cycles[k] / instr[k]
			}
			sds = append(sds, stats.StdDev(cpis))
		}
		return stats.Mean(sds)
	}
	alone := spread(false)
	contended := spread(true)
	if alone > 0.5 {
		t.Errorf("alone CPI spread = %v, want well under threshold 1", alone)
	}
	if contended < 1.0 {
		t.Errorf("contended CPI spread = %v, want above threshold 1", contended)
	}
}

func TestStreamHasHighMissRateAndMisses(t *testing.T) {
	s := newSys()
	res := s.Compute(tick, []Request{
		streamReq("stream"),
		{ClientID: "sysbench-cpu", CPUSeconds: 0.2, CoreCPI: 0.6,
			LLCRefsPerInstr: 0.001, BytesPerInstr: 0.01, WorkingSetBytes: 1 << 20},
	})
	if res[0].MissRate < 0.9 {
		t.Errorf("STREAM miss rate = %v, want ~1", res[0].MissRate)
	}
	if res[1].MissRate > 0.5 {
		t.Errorf("sysbench-cpu miss rate = %v, want low", res[1].MissRate)
	}
	if res[0].LLCMisses < 100*res[1].LLCMisses {
		t.Errorf("STREAM misses %v should dwarf sysbench-cpu misses %v", res[0].LLCMisses, res[1].LLCMisses)
	}
}

func TestCPUCapReducesPressure(t *testing.T) {
	s := newSys()
	full := []Request{streamReq("s1"), streamReq("s2")}
	s.Compute(tick, full)
	pFull := s.Pressure()
	capped := []Request{streamReq("s1"), streamReq("s2")}
	capped[0].CPUSeconds = 0.04 // hard cap to 20% of 2 vcpus
	capped[1].CPUSeconds = 0.04
	s.Compute(tick, capped)
	pCapped := s.Pressure()
	if pCapped > pFull/2 {
		t.Errorf("pressure full=%v capped=%v, want capped <= half", pFull, pCapped)
	}
}

func TestMissRateFunction(t *testing.T) {
	if got := missRate(0, 1<<20); got != 0.02 {
		t.Errorf("zero working set miss rate = %v", got)
	}
	if got := missRate(1<<20, 2<<20); got != 0.02 {
		t.Errorf("fitting working set miss rate = %v", got)
	}
	big := missRate(1<<30, 1<<20)
	if big < 0.9 {
		t.Errorf("streaming working set miss rate = %v, want ~1", big)
	}
	mid := missRate(2<<20, 1<<20)
	if mid <= 0.02 || mid >= big {
		t.Errorf("mid miss rate = %v, want between cold and streaming", mid)
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { New(Config{LLCBytes: 0, BandwidthCapacity: 1, FreqHz: 1}, rand.New(rand.NewSource(1))) },
		func() { newSys().Compute(0, nil) },
		func() { newSys().Compute(tick, []Request{{ClientID: "x", CPUSeconds: -1}}) },
		func() { newSys().Compute(tick, []Request{{ClientID: "x", CPUSeconds: 1, CoreCPI: 0}}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: counters are internally consistent and nonnegative for
// arbitrary loads: misses <= refs, instr*CPI ~= cycles.
func TestPropertyCounterConsistency(t *testing.T) {
	s := New(DefaultConfig(), rand.New(rand.NewSource(11)))
	f := func(cpuPct, refsPct, wsMB []uint8) bool {
		n := len(cpuPct)
		if n == 0 {
			return true
		}
		if n > 10 {
			n = 10
		}
		reqs := make([]Request, n)
		for i := 0; i < n; i++ {
			refs := 0.001
			if i < len(refsPct) {
				refs = float64(refsPct[i]%20) / 100
			}
			ws := float64(1 << 20)
			if i < len(wsMB) {
				ws = float64(int(wsMB[i])+1) * (1 << 20)
			}
			reqs[i] = Request{
				ClientID:        string(rune('a' + i)),
				CPUSeconds:      float64(cpuPct[i]%20) / 100,
				CoreCPI:         0.8,
				LLCRefsPerInstr: refs,
				BytesPerInstr:   1,
				WorkingSetBytes: ws,
			}
		}
		for _, r := range s.Compute(tick, reqs) {
			if r.LLCMisses < 0 || r.LLCRefs < 0 || r.Instructions < 0 {
				return false
			}
			if r.LLCMisses > r.LLCRefs+1e-9 {
				return false
			}
			if r.Instructions > 0 {
				cyc := r.Instructions * r.CPI
				if cyc < r.Cycles*0.999 || cyc > r.Cycles*1.001 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
