// Package memsys models the shared processor resources of a physical
// server that the paper's second detection channel targets: the last
// level cache (LLC) and memory bandwidth (§II-C, §III-A2).
//
// Each tick, every VM's memory behaviour is summarised by its granted CPU
// time, its core CPI (cycles per instruction absent memory stalls), its
// LLC access intensity, and its working-set size. The model then:
//
//   - partitions LLC capacity between VMs in proportion to their access
//     rates (an occupancy model of a shared, non-partitioned cache), which
//     yields each VM's LLC miss *rate*;
//   - compares aggregate memory-bandwidth demand against the machine's
//     capacity; oversubscription inflates the per-miss stall penalty, with
//     a slowly varying per-VM luck factor (AR(1)) so that contention also
//     raises the *spread* of CPI across the VMs of a scale-out application
//     — the signal behind the paper's CPI-deviation detector (Fig. 4);
//   - reports effective CPI, instructions retired, cycles, LLC references
//     and misses — the quantities perf_event exposes per cgroup.
//
// A VM like STREAM (huge working set, high access intensity) both suffers
// a high miss rate and, more importantly, saturates bandwidth, degrading
// colocated VMs. Hard-capping its CPU quota reduces its granted CPU time
// and hence its bandwidth demand — the mechanism PerfCloud exploits.
package memsys

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"perfcloud/internal/sim"
)

// Config describes the shared memory system.
type Config struct {
	LLCBytes          float64 // shared last-level cache capacity
	BandwidthCapacity float64 // memory bandwidth, bytes/second
	FreqHz            float64 // core frequency, cycles/second

	// MissPenaltyCPI is the CPI added per (LLC miss per instruction) on an
	// uncontended machine — i.e. effective stall cycles per miss.
	MissPenaltyCPI float64
	// CongestionScale controls how much bandwidth oversubscription
	// (demand/capacity - 1) inflates the miss penalty.
	CongestionScale float64
	// JitterStdDev / JitterCorr parameterise the per-VM AR(1) luck factor
	// applied to the congestion part of the penalty.
	JitterStdDev float64
	JitterCorr   float64
}

// DefaultConfig mirrors a two-socket Xeon host: 30 MiB LLC, ~60 GB/s of
// memory bandwidth, 2.3 GHz cores, and a 40-cycle effective miss penalty.
func DefaultConfig() Config {
	return Config{
		LLCBytes:          30 << 20,
		BandwidthCapacity: 60e9,
		FreqHz:            2.3e9,
		MissPenaltyCPI:    40,
		CongestionScale:   3.0,
		JitterStdDev:      0.7,
		// A ~40 s correlation time: which VM wins the memory-controller
		// arbitration is sticky, so the cross-VM CPI spread the detector
		// needs persists through 5 s sampling windows while each VM's own
		// time series stays stable within an identification window.
		JitterCorr: 0.9975,
	}
}

// Request is one VM's memory behaviour for a tick.
type Request struct {
	ClientID string
	// CPUSeconds is the CPU time granted to the VM this tick.
	CPUSeconds float64
	// CoreCPI is the VM's CPI with an infinite cache (no memory stalls).
	CoreCPI float64
	// LLCRefsPerInstr is the fraction of instructions referencing the LLC.
	LLCRefsPerInstr float64
	// BytesPerInstr is memory traffic intensity (bytes moved per instr).
	BytesPerInstr float64
	// WorkingSetBytes is the VM's active working set.
	WorkingSetBytes float64
}

// Result is the memory system's answer for one VM for one tick.
type Result struct {
	ClientID     string
	CPI          float64 // effective cycles per instruction
	Instructions float64 // instructions retired this tick
	Cycles       float64 // cycles consumed this tick
	LLCRefs      float64
	LLCMisses    float64
	MissRate     float64 // misses / references
	MemBytes     float64 // memory traffic generated this tick
}

// System is the shared LLC + bandwidth model. Not safe for concurrent
// use; the cluster steps it once per tick.
type System struct {
	cfg    Config
	jitter *sim.AR1

	lastPressure  float64
	lastQuiescent bool

	// Reused per-Compute scratch (one system serves one server, ticked by
	// a single goroutine, so plain fields suffice).
	nominalInstr []float64
	keep         map[string]bool
	shares       []float64
	weights      []float64
	wants        []float64

	// Input memo: everything upstream of the per-VM AR(1) luck draw —
	// nominal instruction rates, bandwidth pressure, LLC shares and miss
	// rates — is a pure function of (tickSec, reqs), so a tick repeating
	// last tick's inputs skips the solve. With pressure at or below
	// capacity the luck factors multiply a zero congestion term and the
	// cached results are returned wholesale (replaying the draws to keep
	// the seeded stream position identical). Under congestion the luck
	// factors feed the results, so the hit replays, per active client,
	// only the short draw-dependent tail of the arithmetic from the
	// cached draw-independent inputs in memoActive.
	memoValid    bool
	memoTick     float64
	memoPressure float64
	memoOver     float64 // clipped congestion term of the memoized tick
	memoReqs     []Request
	memoResults  []Result
	memoActive   []memoReplay // per stepped client, in draw order

	// Resolved jitter slots for memoActive, rebuilt lazily after each memo
	// save (and after any AR(1) GC compaction, tracked by the generation),
	// so the fused steady path draws without per-client map lookups.
	memoSlots    []sim.Slot
	memoSlotsOK  bool
	memoSlotsGen uint64

	// Memo accounting (plain fields: one system serves one server's
	// ticking goroutine; read between ticks via MemoStats).
	memoHits   uint64
	memoMisses uint64
}

// memoReplay caches one active client's draw-independent inputs so a
// congested memo hit can recompute the client's results from this tick's
// luck draw alone, with the exact operand order of the full solve.
type memoReplay struct {
	id       string
	resIdx   int // index into memoResults / the returned slice
	coreCPI  float64
	refs     float64 // LLCRefsPerInstr
	bytesPI  float64 // BytesPerInstr
	missRate float64
	cycles   float64
}

// MemoStats returns how many ComputeInto calls were served from the
// input memo (hits) versus fully solved (misses) over the system's
// lifetime. Read it between ticks — the counters are owned by the
// goroutine ticking the server.
func (s *System) MemoStats() (hits, misses uint64) { return s.memoHits, s.memoMisses }

// memoizeOff disables the input memo package-wide when set; the zero
// value (enabled) is the normal operating mode. Atomic so tests can flip
// modes without racing live systems.
var memoizeOff atomic.Bool

// SetDefaultMemoize toggles the package-wide input memo and returns the
// previous setting. Both settings produce bit-for-bit identical results
// and leave the seeded jitter stream in the identical position — the
// toggle exists only for equivalence tests and benchmarking the
// unmemoized path.
func SetDefaultMemoize(enabled bool) bool {
	return !memoizeOff.Swap(!enabled)
}

// requestsEqual reports element-wise equality of two request vectors.
func requestsEqual(a, b []Request) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// New creates a memory system with the given config and random stream.
func New(cfg Config, rng *rand.Rand) *System {
	if cfg.LLCBytes <= 0 || cfg.BandwidthCapacity <= 0 || cfg.FreqHz <= 0 {
		panic(fmt.Sprintf("memsys: nonpositive config %+v", cfg))
	}
	return &System{cfg: cfg, jitter: sim.NewAR1(cfg.JitterCorr, cfg.JitterStdDev, rng)}
}

// Config returns the memory system configuration.
func (s *System) Config() Config { return s.cfg }

// Pressure returns the bandwidth demand-to-capacity ratio observed on the
// most recent Compute call (may exceed 1 under oversubscription).
func (s *System) Pressure() float64 { return s.lastPressure }

// Quiescent reports whether the most recent Compute call carried zero
// granted CPU time. A quiescent computation is a strict no-op on model
// state — no AR(1) jitter is stepped and no RNG is consumed — which is
// what lets the cluster skip idle servers' grant phases without
// perturbing determinism.
func (s *System) Quiescent() bool { return s.lastQuiescent }

// Compute resolves one tick of shared-cache and bandwidth behaviour.
// Results are returned in request order.
func (s *System) Compute(tickSec float64, reqs []Request) []Result {
	return s.ComputeInto(nil, tickSec, reqs)
}

// ComputeInto is Compute appending into dst (usually dst[:0] of a
// caller-owned buffer), so the per-tick hot path allocates nothing once
// the buffers reach steady-state size.
func (s *System) ComputeInto(dst []Result, tickSec float64, reqs []Request) []Result {
	if tickSec <= 0 {
		panic("memsys: nonpositive tick")
	}
	if s.memoValid && !memoizeOff.Load() && tickSec == s.memoTick && requestsEqual(reqs, s.memoReqs) {
		// Steady state: everything upstream of the luck draws is cached.
		// The draws the full path would have consumed are still replayed —
		// the stream position is part of the model's observable state — and
		// the keep-set GC is skipped, a no-op after an unchanged tick.
		s.memoHits++
		base := len(dst)
		dst = append(dst, s.memoResults...)
		if s.memoOver == 0 {
			// Uncongested: the luck factors multiply a zero congestion
			// term, so the cached results are already exact.
			for i := range s.memoActive {
				s.jitter.Step(s.memoActive[i].id)
			}
			return dst
		}
		// Congested: replay the draw-dependent tail per active client,
		// mirroring the full solve's expressions operand for operand.
		out := dst[base:]
		for i := range s.memoActive {
			m := &s.memoActive[i]
			luck := 1 + s.jitter.Step(m.id)
			if luck < 0 {
				luck = 0
			}
			penalty := s.cfg.MissPenaltyCPI * (1 + s.cfg.CongestionScale*s.memoOver*luck)
			r := &out[m.resIdx]
			r.CPI = m.coreCPI + m.refs*m.missRate*penalty
			r.Instructions = m.cycles / r.CPI
			r.LLCRefs = r.Instructions * m.refs
			r.LLCMisses = r.LLCRefs * m.missRate
			r.MemBytes = r.Instructions * m.bytesPI
		}
		return dst
	}
	s.memoMisses++

	// Nominal instruction rate (at core CPI) determines both LLC occupancy
	// weight and bandwidth demand. Using the stall-free rate here keeps the
	// computation a single pass; the resulting demand overestimate under
	// heavy contention is absorbed by the clip in the congestion term.
	s.nominalInstr = s.nominalInstr[:0]
	var totalRefRate, totalDemand float64
	for _, r := range reqs {
		if r.CPUSeconds < 0 || r.CoreCPI <= 0 && r.CPUSeconds > 0 {
			panic(fmt.Sprintf("memsys: bad request %+v", r))
		}
		var nominal float64
		if r.CPUSeconds > 0 {
			nominal = r.CPUSeconds * s.cfg.FreqHz / r.CoreCPI
			totalRefRate += nominal * r.LLCRefsPerInstr
			totalDemand += nominal * r.BytesPerInstr
		}
		s.nominalInstr = append(s.nominalInstr, nominal)
	}
	nominalInstr := s.nominalInstr
	_ = totalRefRate

	// Quiescent fast path: no VM ran, so every result is zero and the
	// cache/bandwidth model has nothing to resolve. Like the disk's idle
	// path, this consumes no randomness, keeping an all-idle tick a strict
	// no-op that the cluster's quiescence optimization may skip.
	var anyActive bool
	for _, nominal := range nominalInstr {
		if nominal > 0 {
			anyActive = true
			break
		}
	}
	s.lastQuiescent = !anyActive
	base := len(dst)
	if !anyActive {
		s.lastPressure = 0
		if s.keep == nil {
			s.keep = make(map[string]bool, len(reqs))
		}
		clear(s.keep)
		for _, r := range reqs {
			s.keep[r.ClientID] = true
			dst = append(dst, Result{ClientID: r.ClientID})
		}
		s.jitter.GC(s.keep)
		s.memoActive = s.memoActive[:0]
		s.memoOver = 0
		s.saveMemo(tickSec, reqs, dst[base:])
		return dst
	}

	// Bandwidth pressure and congestion-driven penalty inflation.
	pressure := totalDemand / (s.cfg.BandwidthCapacity * tickSec)
	s.lastPressure = pressure
	over := math.Max(0, pressure-1)
	if over > 3 {
		over = 3 // saturate: queues cannot grow without bound in a tick
	}

	shares := s.llcShares(s.cfg.LLCBytes, reqs, nominalInstr)

	if s.keep == nil {
		s.keep = make(map[string]bool, len(reqs))
	}
	clear(s.keep)
	s.memoActive = s.memoActive[:0]
	s.memoOver = over
	for i, r := range reqs {
		s.keep[r.ClientID] = true
		res := Result{ClientID: r.ClientID}
		if r.CPUSeconds == 0 || nominalInstr[i] == 0 {
			dst = append(dst, res)
			continue
		}
		res.MissRate = missRate(r.WorkingSetBytes, shares[i])

		j := s.jitter.Step(r.ClientID)
		luck := 1 + j
		if luck < 0 {
			luck = 0
		}
		penalty := s.cfg.MissPenaltyCPI * (1 + s.cfg.CongestionScale*over*luck)
		res.CPI = r.CoreCPI + r.LLCRefsPerInstr*res.MissRate*penalty

		res.Cycles = r.CPUSeconds * s.cfg.FreqHz
		res.Instructions = res.Cycles / res.CPI
		res.LLCRefs = res.Instructions * r.LLCRefsPerInstr
		res.LLCMisses = res.LLCRefs * res.MissRate
		res.MemBytes = res.Instructions * r.BytesPerInstr
		s.memoActive = append(s.memoActive, memoReplay{
			id: r.ClientID, resIdx: i,
			coreCPI: r.CoreCPI, refs: r.LLCRefsPerInstr, bytesPI: r.BytesPerInstr,
			missRate: res.MissRate, cycles: res.Cycles,
		})
		dst = append(dst, res)
	}
	s.jitter.GC(s.keep)
	s.saveMemo(tickSec, reqs, dst[base:])
	return dst
}

// saveMemo snapshots the inputs and results of a fully computed tick
// (the caller has already recorded the per-client replay inputs in
// memoActive) so an identical next tick can skip the solve.
func (s *System) saveMemo(tickSec float64, reqs []Request, results []Result) {
	s.memoTick = tickSec
	s.memoPressure = s.lastPressure
	s.memoReqs = append(s.memoReqs[:0], reqs...)
	s.memoResults = append(s.memoResults[:0], results...)
	s.memoValid = true
	s.memoSlotsOK = false
}

// SteadyReady reports whether the input memo would serve a tick of length
// tickSec whose request vector the caller guarantees is unchanged since
// the memo was saved (proven via demand epochs on the fused steady path).
func (s *System) SteadyReady(tickSec float64) bool {
	return s.memoValid && !memoizeOff.Load() && tickSec == s.memoTick
}

// ReplaySteadyInPlace serves one guaranteed-hit tick directly in the
// caller's result buffer, which already holds this memo's results from
// the previous tick: only the per-client luck draws — and, under
// congestion, the short draw-dependent tail of the arithmetic — are
// evaluated, operand for operand as ComputeInto's memo-hit path would.
// Call only after SteadyReady with len(results) == len(memoResults).
func (s *System) ReplaySteadyInPlace(results []Result) {
	s.memoHits++
	if !s.memoSlotsOK || s.memoSlotsGen != s.jitter.Gen() {
		s.memoSlots = s.memoSlots[:0]
		for i := range s.memoActive {
			s.memoSlots = append(s.memoSlots, s.jitter.Slot(s.memoActive[i].id))
		}
		s.memoSlotsGen = s.jitter.Gen()
		s.memoSlotsOK = true
	}
	if s.memoOver == 0 {
		// Uncongested: the luck factors multiply a zero congestion term,
		// so the buffered results are already exact; only the seeded
		// stream position advances.
		for _, sl := range s.memoSlots {
			s.jitter.StepSlot(sl)
		}
		return
	}
	for i := range s.memoActive {
		m := &s.memoActive[i]
		luck := 1 + s.jitter.StepSlot(s.memoSlots[i])
		if luck < 0 {
			luck = 0
		}
		penalty := s.cfg.MissPenaltyCPI * (1 + s.cfg.CongestionScale*s.memoOver*luck)
		r := &results[m.resIdx]
		r.CPI = m.coreCPI + m.refs*m.missRate*penalty
		r.Instructions = m.cycles / r.CPI
		r.LLCRefs = r.Instructions * m.refs
		r.LLCMisses = r.LLCRefs * m.missRate
		r.MemBytes = r.Instructions * m.bytesPI
	}
}

// llcShares partitions the cache between clients by water-filling on
// occupancy weight (reference rate): a client whose entire working set
// fits within its proportional share occupies only the working set, and
// the freed capacity is redistributed among the cache-hungry clients.
// This keeps a small-footprint VM (e.g. sysbench cpu) effectively fully
// cached even next to a streaming antagonist, as real LRU-like shared
// caches do for hot small sets. The returned slice is scratch owned by the
// system, valid until the next call.
func (s *System) llcShares(llc float64, reqs []Request, nominalInstr []float64) []float64 {
	n := len(reqs)
	shares, weights, wants := growZeroed(&s.shares, n), growZeroed(&s.weights, n), growZeroed(&s.wants, n)
	// wants[i] tracks how much more cache the client could still use.
	nActive := 0
	for i, r := range reqs {
		weights[i] = nominalInstr[i] * r.LLCRefsPerInstr
		if weights[i] > 0 {
			nActive++
			wants[i] = r.WorkingSetBytes
		}
	}
	if nActive == 0 {
		return shares
	}
	// Protected floor: a re-referenced hot set survives streaming pressure
	// (real replacement policies approximate this), so every active client
	// keeps up to half an equal split, capped at its working set.
	remaining := llc
	floor := 0.5 * llc / float64(nActive)
	for i := range reqs {
		if weights[i] == 0 {
			continue
		}
		shares[i] = math.Min(wants[i], floor)
		wants[i] -= shares[i]
		remaining -= shares[i]
	}
	// Water-fill the rest by occupancy weight, capping at the working set.
	for iter := 0; iter <= n && remaining > 1e-9; iter++ {
		var wsum float64
		for i := range reqs {
			if wants[i] > 0 {
				wsum += weights[i]
			}
		}
		if wsum == 0 {
			break
		}
		settled := false
		for i := range reqs {
			if wants[i] <= 0 || weights[i] == 0 {
				continue
			}
			prop := remaining * weights[i] / wsum
			if wants[i] <= prop {
				shares[i] += wants[i]
				remaining -= wants[i]
				wants[i] = 0
				settled = true
			}
		}
		if !settled {
			for i := range reqs {
				if wants[i] > 0 {
					grant := remaining * weights[i] / wsum
					shares[i] += grant
					wants[i] -= grant
				}
			}
			break
		}
	}
	return shares
}

// growZeroed resizes *buf to n elements, reusing capacity, and returns it
// zeroed.
func growZeroed(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	out := *buf
	for i := range out {
		out[i] = 0
	}
	return out
}

// missRate maps a working set against a cache share: a working set that
// fits in its share barely misses; beyond that, misses approach the
// streaming limit as share/ws shrinks.
func missRate(workingSet, share float64) float64 {
	const coldMiss = 0.02
	if workingSet <= 0 {
		return coldMiss
	}
	if share >= workingSet {
		return coldMiss
	}
	return coldMiss + (1-coldMiss)*(1-share/workingSet)
}
