package memsys

import (
	"math/rand"
	"reflect"
	"testing"
)

// setMemoize flips the package memo default and restores it on cleanup.
func setMemoize(t *testing.T, enabled bool) {
	t.Helper()
	prev := SetDefaultMemoize(enabled)
	t.Cleanup(func() { SetDefaultMemoize(prev) })
}

// memoTickSeq drives one system through uncongested steady ticks (memo
// hits), an input change, a congested stretch (the memo must decline),
// and a quiescent stretch, recording every result. The post-change ticks
// double as a jitter-stream-position check: if the memoized path consumed
// a different number of draws, every later luck factor diverges.
func memoTickSeq(s *System) [][]Result {
	reqs := []Request{
		{ClientID: "a", CPUSeconds: 0.1, CoreCPI: 1.0, LLCRefsPerInstr: 0.01, BytesPerInstr: 0.5, WorkingSetBytes: 8 << 20},
		{ClientID: "b", CPUSeconds: 0.2, CoreCPI: 0.8, LLCRefsPerInstr: 0.05, BytesPerInstr: 1.0, WorkingSetBytes: 64 << 20},
		{ClientID: "idle", CPUSeconds: 0},
	}
	var out [][]Result
	record := func() {
		out = append(out, append([]Result(nil), s.Compute(0.1, reqs)...))
	}
	for i := 0; i < 6; i++ {
		record()
	}
	reqs[0].CPUSeconds = 0.15
	for i := 0; i < 4; i++ {
		record()
	}
	// Saturate bandwidth: pressure > 1 makes results luck-dependent, so
	// the memo must fall through to the full solve every tick.
	reqs[1].BytesPerInstr = 50
	reqs[1].CPUSeconds = 0.8
	for i := 0; i < 4; i++ {
		record()
	}
	// Back below saturation, then fully quiescent.
	reqs[1].BytesPerInstr = 1.0
	for i := 0; i < 3; i++ {
		record()
	}
	for i := range reqs {
		reqs[i].CPUSeconds = 0
	}
	for i := 0; i < 3; i++ {
		record()
	}
	return out
}

func TestMemoizationMatchesFullCompute(t *testing.T) {
	setMemoize(t, true)
	memo := memoTickSeq(New(DefaultConfig(), rand.New(rand.NewSource(11))))

	setMemoize(t, false)
	full := memoTickSeq(New(DefaultConfig(), rand.New(rand.NewSource(11))))

	if !reflect.DeepEqual(memo, full) {
		t.Fatalf("memoized results diverge from full compute:\nmemo: %v\nfull: %v", memo, full)
	}
}

func TestMemoDeclinesUnderCongestion(t *testing.T) {
	setMemoize(t, true)
	s := New(DefaultConfig(), rand.New(rand.NewSource(12)))
	reqs := []Request{
		{ClientID: "hog", CPUSeconds: 0.8, CoreCPI: 0.7, LLCRefsPerInstr: 0.15, BytesPerInstr: 50, WorkingSetBytes: 16 << 30},
	}
	first := s.Compute(0.1, reqs)
	if s.Pressure() <= 1 {
		t.Fatalf("want congestion, pressure = %v", s.Pressure())
	}
	second := s.Compute(0.1, reqs)
	if first[0].CPI == second[0].CPI {
		t.Fatal("congested repeat tick returned identical CPI: memo served a luck-dependent result")
	}
}
