package core

import (
	"math"
	"sort"

	"perfcloud/internal/cloud"
	"perfcloud/internal/cluster"
	"perfcloud/internal/hypervisor"
	"perfcloud/internal/obs"
	"perfcloud/internal/sim"
)

// Config parameterises a node manager. Defaults mirror §III-C/D.
type Config struct {
	// IntervalSec is the monitoring/control period (the paper's 5 s).
	IntervalSec float64
	// EWMAAlpha smooths the per-VM detection signals.
	EWMAAlpha float64
	// Thresholds are the contention thresholds H.
	Thresholds Thresholds
	// CorrWindow / CorrThreshold configure antagonist identification.
	CorrWindow    int
	CorrThreshold float64
	// Cubic configures the cap controllers.
	Cubic CubicConfig
	// MinCapFraction floors a controller's cap at this fraction of the
	// antagonist's initially observed usage, so persistent contention
	// penalises but never fully starves a low-priority VM.
	MinCapFraction float64
	// ReleaseFactor removes the throttle (and forgets the controller)
	// once the probing cap exceeds this multiple of the initial usage.
	ReleaseFactor float64
	// ObserveOnly makes the agent monitor, detect and identify without
	// ever applying caps — the "default system" arm of the paper's
	// evaluation, instrumented with the same signals.
	ObserveOnly bool
	// NewPolicy overrides the cap-control policy factory (the D3
	// ablation); nil selects the paper's CUBIC controller. Policies
	// operate in normalized units with the cap starting at 1.
	NewPolicy func() CapPolicy
	// EnableMigration lets the node manager escalate to the cloud manager
	// when multiple high-priority applications collide on its server and
	// throttling low-priority VMs cannot help — the complementary
	// VM-migration path of §III-D2 / §IV-D2. MigrationAfterIntervals is
	// how many consecutive unresolvable contended intervals trigger it
	// (0 = 3).
	EnableMigration         bool
	MigrationAfterIntervals int
	// Metrics, when non-nil, receives the agent's counters, gauges and
	// deviation histograms (one series per server). Events, when non-nil,
	// receives the typed decision audit log: one event per sample,
	// detection, identification, cap change, release and migration, in
	// simulation-time order. Both default to off; the control loop spends
	// only nil checks when they are.
	Metrics *obs.Registry
	Events  obs.Sink
	// Alerts, when non-nil, is the deterministic rule engine Attach wires
	// in: it consumes the same audit-event stream the Events sink sees and
	// is evaluated on sim time by a dedicated ticker registered after the
	// managers, so same-seed runs emit byte-identical alert streams. Nil —
	// the default — costs nothing.
	Alerts *obs.AlertEngine
	// Health, when non-nil, attaches the wall-clock self-profiling layer
	// (sampled phase timers; explicitly non-deterministic and kept out of
	// sim outputs). Nil costs one branch per control interval.
	Health *obs.Health
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		IntervalSec:    5,
		EWMAAlpha:      0.7,
		Thresholds:     DefaultThresholds(),
		CorrWindow:     4,
		CorrThreshold:  0.8,
		Cubic:          DefaultCubicConfig(),
		MinCapFraction: 0.02,
		ReleaseFactor:  4,
	}
}

// TraceEntry records one control interval for analysis and the paper's
// timeline figures (Figs. 9 and 10).
type TraceEntry struct {
	TimeSec        float64
	IowaitDev      float64
	CPIDev         float64
	MeanIowait     float64
	MeanCPI        float64
	IOContention   bool
	CPUContention  bool
	IOAntagonists  []string
	CPUAntagonists []string
	// IOCaps are the IOPS caps in force after this interval, per VM.
	IOCaps map[string]float64
	// CPUCaps are the core caps in force after this interval, per VM.
	CPUCaps map[string]float64
}

// capController pairs a Cubic with the context needed to apply its cap.
// The Cubic operates in normalized units — the cap as a fraction of the
// antagonist's initially observed usage (so C = 1 at t = 1, as Eq. 1
// initialises it). Normalization keeps K = cbrt(Cmax*beta/gamma) in the
// few-interval range of the paper's Fig. 10 timeline regardless of the
// resource's absolute magnitude.
type capController struct {
	policy  CapPolicy
	initial float64 // observed usage at initialization (IOPS or cores)
	opSize  float64 // bytes per op at initialization (I/O controllers)
}

// NodeManager is PerfCloud's per-server agent (Algorithm 1): each
// interval it fetches VM metadata from the cloud manager, samples the
// performance monitor, computes the deviation signals for the server's
// high-priority applications, identifies antagonists by correlation, and
// drives the Cubic controllers that cap antagonist CPU and I/O through
// the hypervisor.
type NodeManager struct {
	cfg  Config
	cm   *cloud.Manager
	hv   *hypervisor.Hypervisor
	mon  *Monitor
	corr *Correlator

	io  map[string]*capController
	cpu map[string]*capController

	// Repeat-offender memory: VMs once identified as antagonists on a
	// channel. When contention reappears with no controller in force,
	// active prior offenders are re-engaged immediately instead of
	// waiting out a fresh correlation window — identification is
	// periodic, its conclusions persist (Algorithm 1).
	ioOffenders  map[string]bool
	cpuOffenders map[string]bool

	// prevIOAnt / prevCPUAnt hold the previous interval's identification
	// results: a *new* antagonist is engaged only when identified in two
	// consecutive intervals, filtering one-off correlation flukes without
	// meaningfully delaying real antagonists (whose correlation persists).
	prevIOAnt  map[string]bool
	prevCPUAnt map[string]bool

	interval   int64
	nextSample float64
	trace      []TraceEntry

	// Per-interval scratch for the placement query, reused across
	// intervals so the steady state allocates nothing: apps maps app id →
	// high-priority VM ids (values truncated, not deleted, each interval;
	// a key whose app left the server keeps an empty slice), lowPri and
	// appIDs are the low-priority VM ids and the sorted non-empty app ids.
	apps   map[string][]string
	lowPri []string
	appIDs []string

	// unresolvable counts consecutive contended intervals with no
	// low-priority antagonist to throttle; migrations records escalations.
	unresolvable int
	migrations   []string

	// Observability: the decision audit log sink (nil = off), the
	// registered instruments (nil instruments no-op when metrics are off),
	// and a reused scratch slice that keeps controller application in
	// sorted VM order so the event stream is deterministic.
	events obs.Sink
	inst   nmInstruments
	capIDs []string

	// tMonitor is the control interval's wall-clock phase timer (nil — a
	// single branch per interval — without a health layer).
	tMonitor *obs.PhaseTimer
}

// nmInstruments holds one node manager's registered metrics. The zero
// value (all nil) is fully usable: every instrument method no-ops on a
// nil receiver, so an uninstrumented agent pays one branch per update.
type nmInstruments struct {
	intervals  *obs.Counter
	detects    [2]*obs.Counter // indexed by resIO/resCPU
	identified [2]*obs.Counter
	capUpdates [2]*obs.Counter
	released   [2]*obs.Counter
	migrations *obs.Counter
	domains    *obs.Gauge
	realigns   *obs.Gauge
	ctls       [2]*obs.Gauge
	iowaitDev  *obs.Histogram
	cpiDev     *obs.Histogram
}

// Resource-channel indices and their wire names ("io", "cpu") for
// instrument labels and event Res fields.
const (
	resIO = iota
	resCPU
)

var resNames = [2]string{"io", "cpu"}

// register creates the agent's instruments on reg (nil reg → all-nil
// instruments), labelled by server so a multi-server system exposes one
// series per agent.
func (ni *nmInstruments) register(reg *obs.Registry, server string) {
	srv := obs.Label{Key: "server", Value: server}
	ni.intervals = reg.Counter("perfcloud_intervals_total",
		"Control intervals executed by the node manager.", srv)
	ni.migrations = reg.Counter("perfcloud_migrations_total",
		"Escalations to the cloud manager that moved a VM.", srv)
	ni.domains = reg.Gauge("perfcloud_monitor_domains",
		"Domains measured in the last monitoring interval.", srv)
	ni.realigns = reg.Gauge("perfcloud_monitor_realigns",
		"Cumulative placement-epoch rebuilds of the monitor state.", srv)
	ni.iowaitDev = reg.Histogram("perfcloud_iowait_dev",
		"Victim iowait-ratio deviation signal per interval.",
		[]float64{1, 2, 5, 10, 20, 50, 100, 200}, srv)
	ni.cpiDev = reg.Histogram("perfcloud_cpi_dev",
		"Victim CPI deviation signal per interval.",
		[]float64{0.1, 0.2, 0.5, 1, 2, 5, 10}, srv)
	for r, name := range resNames {
		res := obs.Label{Key: "res", Value: name}
		ni.detects[r] = reg.Counter("perfcloud_detections_total",
			"Intervals whose deviation signal crossed its threshold.", srv, res)
		ni.identified[r] = reg.Counter("perfcloud_identified_total",
			"Antagonist identifications confirmed by the correlator.", srv, res)
		ni.capUpdates[r] = reg.Counter("perfcloud_cap_updates_total",
			"Cap controller decisions that changed the applied cap.", srv, res)
		ni.released[r] = reg.Counter("perfcloud_cap_releases_total",
			"Controllers released after probing past the release factor.", srv, res)
		ni.ctls[r] = reg.Gauge("perfcloud_controllers",
			"Cap controllers currently in force.", srv, res)
	}
}

// NewNodeManager creates the agent for one server.
func NewNodeManager(cfg Config, cm *cloud.Manager, hv *hypervisor.Hypervisor) *NodeManager {
	if cfg.IntervalSec <= 0 {
		panic("core: nonpositive control interval")
	}
	nm := &NodeManager{
		cfg:          cfg,
		cm:           cm,
		hv:           hv,
		mon:          NewMonitor(hv, cfg.EWMAAlpha),
		corr:         NewCorrelator(cfg.CorrWindow, cfg.CorrThreshold),
		io:           make(map[string]*capController),
		cpu:          make(map[string]*capController),
		ioOffenders:  make(map[string]bool),
		cpuOffenders: make(map[string]bool),
		prevIOAnt:    make(map[string]bool),
		prevCPUAnt:   make(map[string]bool),
		apps:         make(map[string][]string),
		events:       cfg.Events,
	}
	nm.inst.register(cfg.Metrics, hv.ServerID())
	nm.tMonitor = cfg.Health.Timer("core.monitor")
	return nm
}

// ServerID returns the id of the managed server.
func (nm *NodeManager) ServerID() string { return nm.hv.ServerID() }

// Trace returns the recorded control history.
func (nm *NodeManager) Trace() []TraceEntry { return append([]TraceEntry(nil), nm.trace...) }

// Correlator exposes the identification state (for tests and traces).
func (nm *NodeManager) Correlator() *Correlator { return nm.corr }

// Migrations returns the VM ids this agent asked the cloud manager to
// move off its server (empty unless EnableMigration).
func (nm *NodeManager) Migrations() []string { return append([]string(nil), nm.migrations...) }

// NextSampleSec returns the simulated time at which the agent next acts;
// a Tick whose time is strictly below it is a no-op. The event-driven
// stepper bounds strides by it so no control interval is ever elided
// (DESIGN.md §5.6).
func (nm *NodeManager) NextSampleSec() float64 { return nm.nextSample }

// Tick implements sim.Tickable; the agent acts every IntervalSec of
// simulated time. Register it after the cluster (priority +1) so it
// observes completed intervals.
func (nm *NodeManager) Tick(c *sim.Clock) {
	now := c.Seconds()
	if now < nm.nextSample {
		return
	}
	nm.nextSample = now + nm.cfg.IntervalSec
	tm := nm.tMonitor.Begin()
	nm.runInterval(now)
	nm.tMonitor.End(tm)
}

// runInterval executes one round of Algorithm 1.
func (nm *NodeManager) runInterval(now float64) {
	nm.interval++
	// Step 1: fetch VM roles from the cloud manager (placement may have
	// changed through arrivals, terminations or migration). A single
	// streaming pass over the placement fills the reused scratch maps and
	// slices — the same grouping HighPriorityApps and LowPriorityVMs
	// produce, without rebuilding their slices every interval.
	for id, vms := range nm.apps {
		nm.apps[id] = vms[:0]
	}
	nm.lowPri = nm.lowPri[:0]
	err := nm.cm.EachVMOnServer(nm.ServerID(), func(in cloud.VMInfo) {
		switch {
		case in.Priority == cluster.HighPriority && in.AppID != "":
			nm.apps[in.AppID] = append(nm.apps[in.AppID], in.ID)
		case in.Priority == cluster.LowPriority:
			nm.lowPri = append(nm.lowPri, in.ID)
		}
	})
	if err != nil {
		return
	}
	nm.appIDs = nm.appIDs[:0]
	for id, vms := range nm.apps {
		if len(vms) > 0 {
			sort.Strings(vms)
			nm.appIDs = append(nm.appIDs, id)
		}
	}
	sort.Strings(nm.appIDs)
	sort.Strings(nm.lowPri)
	apps, lowPri := nm.apps, nm.lowPri

	// Step 2: sample the performance monitor.
	s := nm.mon.Sample(now, nm.cfg.IntervalSec)

	// Step 3: deviation signals — the maximum across the server's
	// high-priority applications (usually there is exactly one).
	var det Detection
	for _, id := range nm.appIDs {
		d := Detect(s, apps[id], nm.cfg.Thresholds)
		det.IowaitDev = math.Max(det.IowaitDev, d.IowaitDev)
		det.CPIDev = math.Max(det.CPIDev, d.CPIDev)
		det.MeanIowait = math.Max(det.MeanIowait, d.MeanIowait)
		det.MeanCPI = math.Max(det.MeanCPI, d.MeanCPI)
		det.IOContention = det.IOContention || d.IOContention
		det.CPUContention = det.CPUContention || d.CPUContention
	}

	nm.inst.intervals.Inc()
	nm.inst.domains.Set(float64(s.Len()))
	nm.inst.realigns.Set(float64(nm.mon.Realigns()))
	nm.inst.iowaitDev.Observe(det.IowaitDev)
	nm.inst.cpiDev.Observe(det.CPIDev)
	if det.IOContention {
		nm.inst.detects[resIO].Inc()
	}
	if det.CPUContention {
		nm.inst.detects[resCPU].Inc()
	}
	if nm.events != nil {
		nm.events.Emit(obs.Event{
			T: now, Type: obs.EventSample, Server: nm.ServerID(),
			Domains: s.Len(), IowaitDev: det.IowaitDev, CPIDev: det.CPIDev,
			MeanIowait: det.MeanIowait, MeanCPI: det.MeanCPI,
		})
		if det.Contention() {
			nm.events.Emit(obs.Event{
				T: now, Type: obs.EventDetect, Server: nm.ServerID(),
				IowaitDev: det.IowaitDev, CPIDev: det.CPIDev,
				IOContention: det.IOContention, CPUContention: det.CPUContention,
			})
		}
	}

	// Step 4: update correlation state and identify antagonists. A VM is
	// engaged once it is identified (or is a known offender) in two
	// consecutive contended intervals.
	nm.corr.Record(now, det, s, lowPri)
	var ioAnt, cpuAnt []string
	if det.IOContention {
		ioAnt = nm.confirm(nm.corr.IOAntagonists(), nm.prevIOAnt, nm.ioOffenders)
	} else {
		nm.prevIOAnt = make(map[string]bool)
	}
	if det.CPUContention {
		cpuAnt = nm.confirm(nm.corr.CPUAntagonists(), nm.prevCPUAnt, nm.cpuOffenders)
	} else {
		nm.prevCPUAnt = make(map[string]bool)
	}
	nm.inst.identified[resIO].Add(uint64(len(ioAnt)))
	nm.inst.identified[resCPU].Add(uint64(len(cpuAnt)))
	if nm.events != nil && det.Contention() {
		// Correlations() is cached for this interval (Record just ran), so
		// copying it into the audit record costs one slice allocation.
		corrs := nm.corr.Correlations()
		ev := obs.Event{
			T: now, Type: obs.EventIdentify, Server: nm.ServerID(),
			IOAntagonists: ioAnt, CPUAntagonists: cpuAnt,
		}
		for _, r := range corrs {
			ev.Corr = append(ev.Corr, obs.SuspectCorr{VM: r.VMID, IO: r.IO, CPU: r.CPU})
		}
		nm.events.Emit(ev)
	}

	// Step 5: drive the controllers and apply caps.
	if !nm.cfg.ObserveOnly {
		nm.controlIO(now, det.IOContention, ioAnt, s)
		nm.controlCPU(now, det.CPUContention, cpuAnt, s)
	}
	nm.inst.ctls[resIO].Set(float64(len(nm.io)))
	nm.inst.ctls[resCPU].Set(float64(len(nm.cpu)))

	// Step 6 (extension, §IV-D2): when contention persists with no
	// low-priority VM to throttle — i.e. high-priority applications are
	// interfering with each other — escalate to the cloud manager, which
	// may migrate one of the colliding apps' VMs off this server.
	if nm.cfg.EnableMigration {
		if det.Contention() && len(nm.io) == 0 && len(nm.cpu) == 0 && len(nm.appIDs) >= 2 {
			nm.unresolvable++
			limit := nm.cfg.MigrationAfterIntervals
			if limit == 0 {
				limit = 3
			}
			if nm.unresolvable >= limit {
				if moved, err := nm.cm.RebalanceHighPriority(nm.ServerID()); err == nil && moved != "" {
					nm.migrations = append(nm.migrations, moved)
					nm.inst.migrations.Inc()
					if nm.events != nil {
						nm.events.Emit(obs.Event{
							T: now, Type: obs.EventMigrate,
							Server: nm.ServerID(), VM: moved,
						})
					}
				}
				nm.unresolvable = 0
			}
		} else {
			nm.unresolvable = 0
		}
	}

	entry := TraceEntry{
		TimeSec:        now,
		IowaitDev:      det.IowaitDev,
		CPIDev:         det.CPIDev,
		MeanIowait:     det.MeanIowait,
		MeanCPI:        det.MeanCPI,
		IOContention:   det.IOContention,
		CPUContention:  det.CPUContention,
		IOAntagonists:  ioAnt,
		CPUAntagonists: cpuAnt,
		IOCaps:         make(map[string]float64, len(nm.io)),
		CPUCaps:        make(map[string]float64, len(nm.cpu)),
	}
	for id, ctl := range nm.io {
		entry.IOCaps[id] = ctl.policy.Cap() * ctl.initial
	}
	for id, ctl := range nm.cpu {
		entry.CPUCaps[id] = ctl.policy.Cap() * ctl.initial
	}
	nm.trace = append(nm.trace, entry)
}

// confirm filters an identification list: identified VMs that were also
// identified last interval (or are known offenders) pass; the rest are
// remembered for next interval. The map is updated to this interval's
// raw identifications.
func (nm *NodeManager) confirm(identified []string, prev map[string]bool, offenders map[string]bool) []string {
	var out []string
	next := make(map[string]bool, len(identified))
	for _, id := range identified {
		next[id] = true
		if prev[id] || offenders[id] {
			out = append(out, id)
		}
	}
	// Replace the channel's previous-identification set in place.
	for id := range prev {
		delete(prev, id)
	}
	for id := range next {
		prev[id] = true
	}
	return out
}

// controlIO updates the I/O cap controllers. Per Equation 1, the
// antagonist set is sticky: newly identified antagonists get controllers,
// and while I/O contention persists (I(t) > H) *every* controlled VM
// keeps decreasing — identification is periodic, not per-interval, so a
// constant-rate antagonist that throttling has rendered uncorrelatable
// stays managed. Controllers release once contention is gone and the
// probing cap exceeds ReleaseFactor times the VM's original usage.
func (nm *NodeManager) controlIO(now float64, contention bool, antagonists []string, s Sample) {
	for _, id := range antagonists {
		nm.ioOffenders[id] = true
	}
	// Re-engage active prior offenders during contention: identification
	// conclusions persist, so a known antagonist that wakes up again is
	// throttled immediately instead of waiting out a fresh correlation
	// window.
	if contention {
		for id := range nm.ioOffenders {
			if vs, ok := s.Get(id); ok && vs.IOPS > 0 {
				antagonists = append(antagonists, id)
			}
		}
	}
	for _, id := range antagonists {
		if _, ok := nm.io[id]; !ok {
			vs, _ := s.Get(id)
			init := vs.IOPS
			if init <= 0 {
				continue // nothing observed to base a cap on yet
			}
			opSize := 4096.0
			if vs.IOPS > 0 && vs.IOThroughputBps > 0 {
				opSize = vs.IOThroughputBps / vs.IOPS
			}
			nm.io[id] = &capController{policy: nm.newPolicy(), initial: init, opSize: opSize}
		}
	}
	for _, id := range nm.sortedCtlIDs(nm.io) {
		ctl := nm.io[id]
		old := ctl.policy.Cap()
		frac := ctl.policy.Update(nm.interval, contention)
		if !contention && frac >= nm.cfg.ReleaseFactor {
			nm.hv.SetBlkioThrottleIOPS(id, 0)
			nm.hv.SetBlkioThrottleBPS(id, 0)
			delete(nm.io, id)
			nm.inst.released[resIO].Inc()
			nm.emitRelease(now, resIO, id, ctl, old)
			continue
		}
		if err := nm.hv.SetBlkioThrottleIOPS(id, frac*ctl.initial); err != nil {
			delete(nm.io, id) // domain gone (terminated or migrated)
			continue
		}
		nm.hv.SetBlkioThrottleBPS(id, frac*ctl.initial*ctl.opSize)
		if frac != old {
			nm.inst.capUpdates[resIO].Inc()
			nm.emitCap(now, resIO, id, ctl, old, frac)
		}
	}
}

// controlCPU mirrors controlIO for the vcpu-quota hard cap.
func (nm *NodeManager) controlCPU(now float64, contention bool, antagonists []string, s Sample) {
	for _, id := range antagonists {
		nm.cpuOffenders[id] = true
	}
	if contention {
		for id := range nm.cpuOffenders {
			if vs, ok := s.Get(id); ok && vs.CPUUsageCores > 0 {
				antagonists = append(antagonists, id)
			}
		}
	}
	for _, id := range antagonists {
		if _, ok := nm.cpu[id]; !ok {
			vs, _ := s.Get(id)
			init := vs.CPUUsageCores
			if init <= 0 {
				continue
			}
			nm.cpu[id] = &capController{policy: nm.newPolicy(), initial: init}
		}
	}
	for _, id := range nm.sortedCtlIDs(nm.cpu) {
		ctl := nm.cpu[id]
		old := ctl.policy.Cap()
		frac := ctl.policy.Update(nm.interval, contention)
		if !contention && frac >= nm.cfg.ReleaseFactor {
			nm.hv.SetVCPUQuota(id, 0)
			delete(nm.cpu, id)
			nm.inst.released[resCPU].Inc()
			nm.emitRelease(now, resCPU, id, ctl, old)
			continue
		}
		if err := nm.hv.SetVCPUQuota(id, frac*ctl.initial); err != nil {
			delete(nm.cpu, id)
			continue
		}
		if frac != old {
			nm.inst.capUpdates[resCPU].Inc()
			nm.emitCap(now, resCPU, id, ctl, old, frac)
		}
	}
}

// sortedCtlIDs fills the reused capIDs scratch with a controller map's
// keys in sorted order. Map iteration order is random per run; applying
// caps in sorted VM order keeps hypervisor calls and the audit log
// deterministic across same-seed runs.
func (nm *NodeManager) sortedCtlIDs(ctls map[string]*capController) []string {
	nm.capIDs = nm.capIDs[:0]
	for id := range ctls {
		nm.capIDs = append(nm.capIDs, id)
	}
	sort.Strings(nm.capIDs)
	return nm.capIDs
}

// emitCap records one applied cap change on the audit log: the absolute
// old and new caps plus, when the policy is the paper's CUBIC, the
// growth-curve region and intervals since the last decrease.
func (nm *NodeManager) emitCap(now float64, res int, id string, ctl *capController, oldFrac, newFrac float64) {
	if nm.events == nil {
		return
	}
	ev := obs.Event{
		T: now, Type: obs.EventCap, Server: nm.ServerID(), VM: id,
		Res:    resNames[res],
		OldCap: oldFrac * ctl.initial, NewCap: newFrac * ctl.initial,
	}
	if cb, ok := ctl.policy.(*Cubic); ok {
		ev.Region = cb.Region(nm.interval)
		ev.SinceDecrease = nm.interval - cb.LastDecrease()
	}
	nm.events.Emit(ev)
}

// emitRelease records a controller removal (cap lifted entirely).
func (nm *NodeManager) emitRelease(now float64, res int, id string, ctl *capController, oldFrac float64) {
	if nm.events == nil {
		return
	}
	nm.events.Emit(obs.Event{
		T: now, Type: obs.EventRelease, Server: nm.ServerID(), VM: id,
		Res: resNames[res], OldCap: oldFrac * ctl.initial,
	})
}

// newPolicy builds a normalized cap controller: C starts at 1 (the VM's
// observed usage), floored at MinCapFraction and with probing bounded at
// ReleaseFactor so a re-throttle bites immediately. The default is the
// paper's CUBIC (Eq. 1); Config.NewPolicy substitutes an alternative for
// the control-policy ablation.
func (nm *NodeManager) newPolicy() CapPolicy {
	if nm.cfg.NewPolicy != nil {
		return nm.cfg.NewPolicy()
	}
	cfg := nm.cfg.Cubic
	cfg.MinCap = nm.cfg.MinCapFraction
	cfg.MaxCap = nm.cfg.ReleaseFactor
	return NewCubic(cfg, 1)
}
