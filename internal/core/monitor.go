package core

import (
	"math"
	"sort"

	"perfcloud/internal/cgroup"
	"perfcloud/internal/hypervisor"
	"perfcloud/internal/stats"
)

// VMSample is the per-VM measurement for one 5-second interval, computed
// from cumulative counter deltas as the paper's performance monitor does
// (§III-D1).
type VMSample struct {
	// IowaitRatio is blkio.io_wait_time / blkio.io_serviced over the
	// interval (ms per op), EWMA-smoothed; 0 when the VM did no I/O.
	IowaitRatio float64
	// IOActive reports whether the VM completed any I/O this interval.
	IOActive bool
	// CPI is delta cycles / delta instructions, EWMA-smoothed; NaN when
	// the VM retired no instructions (a missing measurement).
	CPI float64
	// IOPS and IOThroughputBps are the VM's observed I/O rates — the
	// suspect signal for I/O antagonist identification and the Cubic
	// controllers' initial caps.
	IOPS            float64
	IOThroughputBps float64
	// LLCMissRate is LLC misses per second — the suspect signal for
	// processor-resource antagonist identification. NaN when the VM ran
	// no instructions (the paper's "not counted when not running").
	LLCMissRate float64
	// CPUUsageCores is the VM's observed CPU usage in cores.
	CPUUsageCores float64
}

// Sample is one monitoring interval across all domains of a server. The
// backing storage belongs to the Monitor that produced it and is reused:
// a Sample is valid until the Monitor's next Sample call. Consumers that
// need to keep per-VM measurements across intervals copy the VMSample
// values they care about (they are small value types).
type Sample struct {
	TimeSec float64

	ids  []string
	vms  []VMSample
	byID map[string]int
}

// MakeSample builds a Sample from a map of per-VM measurements, with
// domains in sorted-id order — for tests, examples and offline tooling.
// The Monitor's hot path builds samples directly in placement order.
func MakeSample(nowSec float64, vms map[string]VMSample) Sample {
	s := Sample{TimeSec: nowSec, byID: make(map[string]int, len(vms))}
	for id := range vms {
		s.ids = append(s.ids, id)
	}
	sort.Strings(s.ids)
	s.vms = make([]VMSample, len(s.ids))
	for i, id := range s.ids {
		s.vms[i] = vms[id]
		s.byID[id] = i
	}
	return s
}

// Len returns the number of domains measured this interval.
func (s Sample) Len() int { return len(s.ids) }

// Get returns the measurement for one domain, reporting whether the
// domain was measured this interval.
func (s Sample) Get(id string) (VMSample, bool) {
	i, ok := s.byID[id]
	if !ok {
		return VMSample{}, false
	}
	return s.vms[i], true
}

// Each calls fn for every measured domain in placement order.
func (s Sample) Each(fn func(id string, vs VMSample)) {
	for i, id := range s.ids {
		fn(id, s.vms[i])
	}
}

// domainState is the Monitor's per-domain accumulator: the previous
// counter snapshot, the previous emitted sample, and the five EWMA
// filters — held by value in a placement-ordered slice so the per-
// interval pass is a linear walk with no map lookups or per-filter heap
// objects.
type domainState struct {
	id      string
	prev    cgroup.Counters
	hasPrev bool
	last    VMSample
	hasLast bool

	ewmaIowait stats.EWMA
	ewmaCPI    stats.EWMA
	ewmaLLC    stats.EWMA
	ewmaIOBps  stats.EWMA
	ewmaIOPS   stats.EWMA
}

// Monitor periodically reads every domain's cumulative counters through
// the hypervisor, computes interval deltas and applies EWMA smoothing.
// Per-domain state is kept in placement order and revalidated only when
// the server's placement epoch moves, so a steady-state interval is one
// linear pass over the domains with no allocation.
type Monitor struct {
	hv    *hypervisor.Hypervisor
	alpha float64

	epoch    uint64
	epochOK  bool
	domains  []domainState
	index    map[string]int // id -> slot in domains
	realigns uint64         // placement-epoch rebuilds, for observability

	// Reused output buffers backing the returned Sample.
	outIDs  []string
	outVMs  []VMSample
	outByID map[string]int
	scratch []domainState
}

// NewMonitor creates a monitor over one server's hypervisor. alpha is
// the EWMA smoothing factor for the detection signals.
func NewMonitor(hv *hypervisor.Hypervisor, alpha float64) *Monitor {
	return &Monitor{
		hv:      hv,
		alpha:   alpha,
		index:   make(map[string]int),
		outByID: make(map[string]int),
	}
}

// realign rebuilds the placement-ordered domain slice when the server's
// placement epoch has moved (VM added, removed or migrated), carrying
// over state for surviving domains and dropping state for departed ones.
// While the epoch is unchanged this is a single comparison.
func (m *Monitor) realign() {
	epoch := m.hv.PlacementEpoch()
	if m.epochOK && epoch == m.epoch {
		return
	}
	m.realigns++
	next := m.scratch[:0]
	m.hv.EachDomainStats(func(id string, _ cgroup.Counters) {
		if j, ok := m.index[id]; ok {
			next = append(next, m.domains[j])
		} else {
			next = append(next, domainState{
				id:         id,
				ewmaIowait: stats.MakeEWMA(m.alpha),
				ewmaCPI:    stats.MakeEWMA(m.alpha),
				ewmaLLC:    stats.MakeEWMA(m.alpha),
				ewmaIOBps:  stats.MakeEWMA(m.alpha),
				ewmaIOPS:   stats.MakeEWMA(m.alpha),
			})
		}
	})
	m.scratch = m.domains[:0]
	m.domains = next
	clear(m.index)
	for i := range m.domains {
		m.index[m.domains[i].id] = i
	}
	m.epoch, m.epochOK = epoch, true
}

// Realigns returns how many times the monitor rebuilt its per-domain
// state because the server's placement epoch moved — the coverage
// signal for the slice-indexed fast path (a steadily climbing value
// means placement churn is defeating it).
func (m *Monitor) Realigns() uint64 { return m.realigns }

// Sample reads all domains, returning per-VM interval measurements.
// intervalSec is the elapsed time since the previous call. A call with
// intervalSec <= 0 carries no new information (no time has passed), so
// it replays each domain's previous measurements without disturbing the
// counter baselines or EWMA filters — the next positive interval still
// computes its delta over the full elapsed time.
func (m *Monitor) Sample(nowSec, intervalSec float64) Sample {
	m.realign()
	m.outIDs = m.outIDs[:0]
	m.outVMs = m.outVMs[:0]
	clear(m.outByID)
	if intervalSec <= 0 {
		for i := range m.domains {
			d := &m.domains[i]
			if d.hasLast {
				m.emit(d.id, d.last)
			}
		}
		return m.sample(nowSec)
	}
	i := 0
	m.hv.EachDomainStats(func(id string, now cgroup.Counters) {
		// realign just ran under the same epoch, so the i'th domain
		// reported here is the i'th entry of m.domains.
		d := &m.domains[i]
		i++
		prevCounters, had := d.prev, d.hasPrev
		d.prev, d.hasPrev = now, true
		if !had {
			// First observation of this domain: no delta yet.
			return
		}
		delta := cgroup.Delta(now, prevCounters)
		vs := VMSample{
			IOActive:        delta.Blkio.IoServiced > 0,
			IOPS:            d.ewmaIOPS.Update(delta.Blkio.IoServiced / intervalSec),
			IOThroughputBps: d.ewmaIOBps.Update(delta.Blkio.IoServiceBytes / intervalSec),
			CPUUsageCores:   delta.CPU.UsageSeconds / intervalSec,
		}
		vs.IowaitRatio = d.ewmaIowait.Update(delta.IowaitRatio())
		if delta.Perf.Instructions > 0 {
			vs.CPI = d.ewmaCPI.Update(delta.Perf.Cycles / delta.Perf.Instructions)
			vs.LLCMissRate = d.ewmaLLC.Update(delta.Perf.LLCMisses / intervalSec)
		} else {
			// No instructions retired: CPI does not exist for this
			// interval. The LLC-miss signal instead decays through the
			// same filter as the victim signals (so the correlator
			// compares like-filtered series) — but it stays a missing
			// measurement (NaN) until the VM has ever run, which is what
			// the paper's missing-as-zero Pearson rule handles.
			vs.CPI = math.NaN()
			if d.ewmaLLC.Primed() {
				vs.LLCMissRate = d.ewmaLLC.Update(0)
			} else {
				vs.LLCMissRate = math.NaN()
			}
		}
		d.last, d.hasLast = vs, true
		m.emit(id, vs)
	})
	return m.sample(nowSec)
}

// emit appends one domain's measurement to the reused output buffers.
func (m *Monitor) emit(id string, vs VMSample) {
	m.outByID[id] = len(m.outIDs)
	m.outIDs = append(m.outIDs, id)
	m.outVMs = append(m.outVMs, vs)
}

// sample wraps the output buffers as this interval's Sample.
func (m *Monitor) sample(nowSec float64) Sample {
	return Sample{TimeSec: nowSec, ids: m.outIDs, vms: m.outVMs, byID: m.outByID}
}
