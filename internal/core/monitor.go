package core

import (
	"math"

	"perfcloud/internal/cgroup"
	"perfcloud/internal/hypervisor"
	"perfcloud/internal/stats"
)

// VMSample is the per-VM measurement for one 5-second interval, computed
// from cumulative counter deltas as the paper's performance monitor does
// (§III-D1).
type VMSample struct {
	// IowaitRatio is blkio.io_wait_time / blkio.io_serviced over the
	// interval (ms per op), EWMA-smoothed; 0 when the VM did no I/O.
	IowaitRatio float64
	// IOActive reports whether the VM completed any I/O this interval.
	IOActive bool
	// CPI is delta cycles / delta instructions, EWMA-smoothed; NaN when
	// the VM retired no instructions (a missing measurement).
	CPI float64
	// IOPS and IOThroughputBps are the VM's observed I/O rates — the
	// suspect signal for I/O antagonist identification and the Cubic
	// controllers' initial caps.
	IOPS            float64
	IOThroughputBps float64
	// LLCMissRate is LLC misses per second — the suspect signal for
	// processor-resource antagonist identification. NaN when the VM ran
	// no instructions (the paper's "not counted when not running").
	LLCMissRate float64
	// CPUUsageCores is the VM's observed CPU usage in cores.
	CPUUsageCores float64
}

// Sample is one monitoring interval across all domains of a server.
type Sample struct {
	TimeSec float64
	VMs     map[string]VMSample
}

// Monitor periodically reads every domain's cumulative counters through
// the hypervisor, computes interval deltas and applies EWMA smoothing.
type Monitor struct {
	hv    *hypervisor.Hypervisor
	alpha float64

	prev       map[string]cgroup.Counters
	ewmaIowait map[string]*stats.EWMA
	ewmaCPI    map[string]*stats.EWMA
	ewmaLLC    map[string]*stats.EWMA
	ewmaIOBps  map[string]*stats.EWMA
	ewmaIOPS   map[string]*stats.EWMA

	seen map[string]bool // reused per-Sample scratch
}

// NewMonitor creates a monitor over one server's hypervisor. alpha is
// the EWMA smoothing factor for the detection signals.
func NewMonitor(hv *hypervisor.Hypervisor, alpha float64) *Monitor {
	return &Monitor{
		hv:         hv,
		alpha:      alpha,
		prev:       make(map[string]cgroup.Counters),
		ewmaIowait: make(map[string]*stats.EWMA),
		ewmaCPI:    make(map[string]*stats.EWMA),
		ewmaLLC:    make(map[string]*stats.EWMA),
		ewmaIOBps:  make(map[string]*stats.EWMA),
		ewmaIOPS:   make(map[string]*stats.EWMA),
	}
}

// Sample reads all domains, returning per-VM interval measurements.
// intervalSec is the elapsed time since the previous call.
func (m *Monitor) Sample(nowSec, intervalSec float64) Sample {
	out := Sample{TimeSec: nowSec, VMs: make(map[string]VMSample)}
	if intervalSec <= 0 {
		intervalSec = 1
	}
	if m.seen == nil {
		m.seen = make(map[string]bool)
	}
	clear(m.seen)
	seen := m.seen
	// A single pass over the hypervisor's domains in placement order — the
	// same order ListDomains reports — without the per-id domain lookup.
	m.hv.EachDomainStats(func(id string, now cgroup.Counters) {
		seen[id] = true
		prev, had := m.prev[id]
		m.prev[id] = now
		if !had {
			// First observation of this domain: no delta yet.
			return
		}
		d := cgroup.Delta(now, prev)
		vs := VMSample{
			IOActive:        d.Blkio.IoServiced > 0,
			IOPS:            m.smooth(m.ewmaIOPS, id, d.Blkio.IoServiced/intervalSec),
			IOThroughputBps: m.smooth(m.ewmaIOBps, id, d.Blkio.IoServiceBytes/intervalSec),
			CPUUsageCores:   d.CPU.UsageSeconds / intervalSec,
		}
		vs.IowaitRatio = m.smooth(m.ewmaIowait, id, d.IowaitRatio())
		if d.Perf.Instructions > 0 {
			vs.CPI = m.smooth(m.ewmaCPI, id, d.Perf.Cycles/d.Perf.Instructions)
			vs.LLCMissRate = m.smooth(m.ewmaLLC, id, d.Perf.LLCMisses/intervalSec)
		} else {
			// No instructions retired: CPI does not exist for this
			// interval. The LLC-miss signal instead decays through the
			// same filter as the victim signals (so the correlator
			// compares like-filtered series) — but it stays a missing
			// measurement (NaN) until the VM has ever run, which is what
			// the paper's missing-as-zero Pearson rule handles.
			vs.CPI = math.NaN()
			if e, ok := m.ewmaLLC[id]; ok && e.Primed() {
				vs.LLCMissRate = e.Update(0)
			} else {
				vs.LLCMissRate = math.NaN()
			}
		}
		out.VMs[id] = vs
	})
	// Drop state for domains that disappeared (terminated or migrated).
	for id := range m.prev {
		if !seen[id] {
			delete(m.prev, id)
			delete(m.ewmaIowait, id)
			delete(m.ewmaCPI, id)
			delete(m.ewmaLLC, id)
			delete(m.ewmaIOBps, id)
			delete(m.ewmaIOPS, id)
		}
	}
	return out
}

// smooth folds a raw interval value into the named VM's EWMA.
func (m *Monitor) smooth(set map[string]*stats.EWMA, id string, v float64) float64 {
	e, ok := set[id]
	if !ok {
		e = stats.NewEWMA(m.alpha)
		set[id] = e
	}
	return e.Update(v)
}
