package core

import (
	"math"
	"testing"
	"time"

	"perfcloud/internal/cluster"
	"perfcloud/internal/hypervisor"
	"perfcloud/internal/sim"
)

func monitorFixture(t *testing.T) (*cluster.Cluster, *cluster.Server, *Monitor) {
	t.Helper()
	eng := sim.NewEngine(100*time.Millisecond, 3)
	cl := cluster.New()
	srv := cl.AddServer("s0", cluster.DefaultServerConfig(), eng.RNG())
	cl.AddVM(srv, "vm-a", 2, 8<<30, cluster.HighPriority, "app")
	cl.AddVM(srv, "vm-b", 2, 8<<30, cluster.LowPriority, "")
	return cl, srv, NewMonitor(hypervisor.New(srv), 0.5)
}

func TestMonitorFirstSampleHasNoDeltas(t *testing.T) {
	_, _, m := monitorFixture(t)
	s := m.Sample(0, 5)
	if s.Len() != 0 {
		t.Errorf("first sample should be empty, got %d domains", s.Len())
	}
}

func TestMonitorDeltasAndRates(t *testing.T) {
	cl, _, m := monitorFixture(t)
	m.Sample(0, 5) // prime
	a := cl.FindVM("vm-a").Cgroup()
	a.AddBlkio(500, 500*4096, 1000) // 100 IOPS over 5 s, 2 ms/op
	a.AddCPU(5)                     // 1 core
	a.AddPerf(2e9, 1e9, 1e7, 5e6)   // CPI 2
	s := m.Sample(5, 5)
	vs, ok := s.Get("vm-a")
	if !ok {
		t.Fatal("vm-a missing")
	}
	if !vs.IOActive || vs.IOPS != 100 || vs.IOThroughputBps != 100*4096 {
		t.Errorf("io = %+v", vs)
	}
	if vs.IowaitRatio != 2 {
		t.Errorf("iowait ratio = %v, want 2", vs.IowaitRatio)
	}
	if vs.CPI != 2 || vs.CPUUsageCores != 1 {
		t.Errorf("cpi=%v cpu=%v", vs.CPI, vs.CPUUsageCores)
	}
	if vs.LLCMissRate != 1e6 {
		t.Errorf("llc rate = %v", vs.LLCMissRate)
	}
}

func TestMonitorMissingValuesWhenIdle(t *testing.T) {
	cl, _, m := monitorFixture(t)
	m.Sample(0, 5)
	// vm-b stays completely idle.
	cl.FindVM("vm-a").Cgroup().AddCPU(1)
	s := m.Sample(5, 5)
	vs, _ := s.Get("vm-b")
	if !math.IsNaN(vs.CPI) || !math.IsNaN(vs.LLCMissRate) {
		t.Errorf("idle VM should have missing CPI/LLC: %+v", vs)
	}
	if vs.IOActive || vs.IowaitRatio != 0 {
		t.Errorf("idle VM io = %+v", vs)
	}
}

func TestMonitorEWMASmoothing(t *testing.T) {
	cl, _, m := monitorFixture(t)
	m.Sample(0, 5)
	a := cl.FindVM("vm-a").Cgroup()
	a.AddBlkio(100, 0, 1000) // 10 ms/op
	s1 := m.Sample(5, 5)
	// A Sample is valid until the next Sample call: copy what we assert on.
	v1, _ := s1.Get("vm-a")
	a.AddBlkio(100, 0, 0) // 0 ms/op raw
	s2 := m.Sample(10, 5)
	if v1.IowaitRatio != 10 {
		t.Errorf("first ratio = %v", v1.IowaitRatio)
	}
	if v2, _ := s2.Get("vm-a"); v2.IowaitRatio != 5 { // 0.5*0 + 0.5*10
		t.Errorf("smoothed ratio = %v, want 5", v2.IowaitRatio)
	}
}

func TestMonitorForgetsRemovedDomains(t *testing.T) {
	cl, _, m := monitorFixture(t)
	m.Sample(0, 5)
	cl.RemoveVM("vm-b")
	s := m.Sample(5, 5)
	if _, ok := s.Get("vm-b"); ok {
		t.Error("removed VM should not be sampled")
	}
	if len(m.domains) != 1 || len(m.index) != 1 {
		t.Errorf("domain state = %d/%d entries, want 1/1", len(m.domains), len(m.index))
	}
}

func TestMonitorZeroIntervalReplaysPreviousRates(t *testing.T) {
	cl, _, m := monitorFixture(t)
	m.Sample(0, 5) // prime
	a := cl.FindVM("vm-a").Cgroup()
	a.AddBlkio(500, 500*4096, 1000)
	a.AddCPU(5)
	s1 := m.Sample(5, 5)
	v1, _ := s1.Get("vm-a")
	if v1.IOPS != 100 || v1.CPUUsageCores != 1 {
		t.Fatalf("setup sample = %+v", v1)
	}
	// More counters accumulate but no time passes. The monitor must not
	// fabricate rates from a zero-length interval (it used to divide by a
	// silently substituted 1 s): it replays the previous measurements and
	// leaves the counter baselines and EWMA filters untouched.
	a.AddBlkio(500, 500*4096, 1000)
	a.AddCPU(5)
	s2 := m.Sample(5, 0)
	v2, ok := s2.Get("vm-a")
	if !ok {
		t.Fatal("vm-a missing from zero-interval sample")
	}
	if v2.IOPS != v1.IOPS || v2.IOThroughputBps != v1.IOThroughputBps ||
		v2.CPUUsageCores != v1.CPUUsageCores || v2.IowaitRatio != v1.IowaitRatio {
		t.Errorf("zero interval fabricated rates: %+v, want replay of %+v", v2, v1)
	}
	// The next real interval absorbs the counters accumulated across the
	// zero-length call: 500 ops over 5 s = 100 IOPS raw, EWMA-steady.
	s3 := m.Sample(10, 5)
	if v3, _ := s3.Get("vm-a"); v3.IOPS != 100 || v3.CPUUsageCores != 1 {
		t.Errorf("post-zero-interval sample = %+v", v3)
	}
}

func TestDetectActiveOnly(t *testing.T) {
	th := DefaultThresholds()
	s := MakeSample(0, map[string]VMSample{
		"a": {IOActive: true, IowaitRatio: 50, CPI: 1.5},
		"b": {IOActive: true, IowaitRatio: 10, CPI: 1.4},
		"c": {IOActive: false, IowaitRatio: 0, CPI: math.NaN()}, // idle worker
	})
	d := Detect(s, []string{"a", "b", "c"}, th)
	// Only a and b count: stddev of {50,10} = 20 > 10.
	if math.Abs(d.IowaitDev-20) > 1e-9 || !d.IOContention {
		t.Errorf("iowait dev = %v contention=%v", d.IowaitDev, d.IOContention)
	}
	// CPI stddev of {1.5,1.4} = 0.05 < 1.
	if d.CPUContention {
		t.Errorf("cpu contention = true, dev = %v", d.CPIDev)
	}
	if !d.Contention() {
		t.Error("overall contention should be true")
	}
}

func TestDetectIgnoresUnknownVMs(t *testing.T) {
	s := MakeSample(0, nil)
	d := Detect(s, []string{"ghost1", "ghost2"}, DefaultThresholds())
	if d.Contention() || d.IowaitDev != 0 || d.CPIDev != 0 {
		t.Errorf("detection over ghosts = %+v", d)
	}
}

func TestDetectSingleActiveVMNoSignal(t *testing.T) {
	s := MakeSample(0, map[string]VMSample{
		"a": {IOActive: true, IowaitRatio: 500, CPI: 9},
	})
	d := Detect(s, []string{"a"}, DefaultThresholds())
	if d.Contention() {
		t.Error("one VM carries no deviation signal")
	}
}
