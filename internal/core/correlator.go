package core

import (
	"sort"

	"perfcloud/internal/stats"
)

// Correlator performs the paper's online cross-correlation analysis
// (§III-B): it maintains a time series of the victim application's
// deviation signals and, per low-priority suspect VM, time series of the
// suspect's I/O throughput and LLC miss rate. A suspect whose activity
// correlates with the victim's deviation at or above the threshold is an
// antagonist. Missing suspect measurements (idle intervals) are treated
// as zero, per the paper's rule, so similarity is never inferred from a
// handful of present samples.
//
// Identification runs every control interval, so the Pearson
// coefficients are maintained incrementally: each suspect carries two
// RollingPearson accumulators (victim deviation vs suspect signal) that
// absorb one pair per Record, making Correlations O(suspects) instead of
// O(suspects × window) with per-call window materialisation. The full
// per-suspect time series are still recorded — they feed the paper's
// timeline figures and offline analysis, not the hot loop.
type Correlator struct {
	window    int
	threshold float64
	intervals int // Record calls so far == length of every series

	victimIO  *stats.TimeSeries
	victimCPI *stats.TimeSeries

	// Trailing window of the victim signals, kept to backfill the rolling
	// state of suspects that appear mid-run (their series are zero for
	// every interval before arrival).
	vioWin  *stats.RollingWindow
	vcpiWin *stats.RollingWindow

	suspects map[string]*suspectSeries
	gen      uint64 // bumped each Record; stale suspects are evicted

	backfill []float64     // reused scratch for vioWin/vcpiWin values
	corrs    []Correlation // reused output of Correlations
	corrAt   int           // intervals count when corrs was computed
}

type suspectSeries struct {
	io  *stats.TimeSeries // I/O throughput, bytes/sec
	llc *stats.TimeSeries // LLC miss rate, misses/sec (NaN = missing)

	rio  *stats.RollingPearson // victim iowait dev × suspect I/O
	rcpu *stats.RollingPearson // victim CPI dev × suspect LLC misses

	gen uint64 // last Record generation that listed this suspect
}

// NewCorrelator creates a correlator. window is the number of recent
// intervals correlated (the paper identifies antagonists with as few as
// three); threshold is the Pearson coefficient cut-off (0.8).
func NewCorrelator(window int, threshold float64) *Correlator {
	if window < 2 {
		panic("core: correlation window must be >= 2")
	}
	return &Correlator{
		window:    window,
		threshold: threshold,
		victimIO:  stats.NewTimeSeries(),
		victimCPI: stats.NewTimeSeries(),
		vioWin:    stats.NewRollingWindow(window),
		vcpiWin:   stats.NewRollingWindow(window),
		suspects:  make(map[string]*suspectSeries),
	}
}

// Record appends one interval: the victim application's deviation signals
// and each suspect's activity from the sample.
func (c *Correlator) Record(nowSec float64, det Detection, s Sample, suspectIDs []string) {
	c.victimIO.Append(nowSec, det.IowaitDev)
	c.victimCPI.Append(nowSec, det.CPIDev)
	c.vioWin.Push(det.IowaitDev)
	c.vcpiWin.Push(det.CPIDev)
	c.intervals++
	c.gen++
	for _, id := range suspectIDs {
		ss, ok := c.suspects[id]
		if !ok {
			ss = c.newSuspect(nowSec)
			c.suspects[id] = ss
		}
		ss.gen = c.gen
		vs, present := s.Get(id)
		if !present {
			ss.io.Append(nowSec, 0)
			ss.llc.AppendMissing(nowSec)
			ss.rio.Push(det.IowaitDev, 0)
			ss.rcpu.Push(det.CPIDev, 0)
			continue
		}
		ss.io.Append(nowSec, vs.IOThroughputBps)
		ss.llc.Append(nowSec, vs.LLCMissRate) // NaN when the VM was idle
		ss.rio.Push(det.IowaitDev, vs.IOThroughputBps)
		ss.rcpu.Push(det.CPIDev, vs.LLCMissRate)
	}
	// Suspects that left the server stop accumulating; drop their state.
	for id, ss := range c.suspects {
		if ss.gen != c.gen {
			delete(c.suspects, id)
		}
	}
}

// newSuspect builds the series for a suspect first seen this interval,
// backfilled with zeros so it stays aligned with the victim's history:
// the full time series all the way back, the rolling correlations over
// the trailing window only (older pairs would have been evicted anyway).
// The victim windows already contain this interval's values, so the
// current pair — which depends on the sample — is excluded and pushed by
// the caller.
func (c *Correlator) newSuspect(nowSec float64) *suspectSeries {
	ss := &suspectSeries{
		io:   stats.NewTimeSeries(),
		llc:  stats.NewTimeSeries(),
		rio:  stats.NewRollingPearson(c.window),
		rcpu: stats.NewRollingPearson(c.window),
	}
	for ss.io.Len() < c.victimIO.Len()-1 {
		ss.io.Append(nowSec, 0)
		ss.llc.AppendMissing(nowSec)
	}
	c.backfill = c.vioWin.Values(c.backfill[:0])
	for _, v := range c.backfill[:len(c.backfill)-1] {
		ss.rio.Push(v, 0)
	}
	c.backfill = c.vcpiWin.Values(c.backfill[:0])
	for _, v := range c.backfill[:len(c.backfill)-1] {
		ss.rcpu.Push(v, 0)
	}
	return ss
}

// Correlation holds one suspect's Pearson coefficients against the
// victim's deviation signals.
type Correlation struct {
	VMID string
	IO   float64 // corr(victim iowait deviation, suspect I/O throughput)
	CPU  float64 // corr(victim CPI deviation, suspect LLC miss rate)
}

// Correlations returns each suspect's coefficients over the trailing
// window, sorted by VM id. Suspects with insufficient history are
// omitted. The result is computed once per interval and the backing
// slice is reused, so it is only valid until the next Record call —
// identification consumes it immediately, so nothing in the control
// loop retains it.
func (c *Correlator) Correlations() []Correlation {
	if c.intervals < c.window {
		return nil
	}
	if c.corrAt == c.intervals {
		return c.corrs
	}
	c.corrs = c.corrs[:0]
	for id, ss := range c.suspects {
		rio, err1 := ss.rio.Corr()
		rcpu, err2 := ss.rcpu.Corr()
		if err1 != nil || err2 != nil {
			continue
		}
		c.corrs = append(c.corrs, Correlation{VMID: id, IO: rio, CPU: rcpu})
	}
	sort.Slice(c.corrs, func(i, j int) bool { return c.corrs[i].VMID < c.corrs[j].VMID })
	c.corrAt = c.intervals
	return c.corrs
}

// IOAntagonists returns suspects whose I/O correlation meets the
// threshold, sorted by VM id.
func (c *Correlator) IOAntagonists() []string {
	var out []string
	for _, r := range c.Correlations() {
		if r.IO >= c.threshold {
			out = append(out, r.VMID)
		}
	}
	return out
}

// CPUAntagonists returns suspects whose LLC-miss correlation meets the
// threshold, sorted by VM id.
func (c *Correlator) CPUAntagonists() []string {
	var out []string
	for _, r := range c.Correlations() {
		if r.CPU >= c.threshold {
			out = append(out, r.VMID)
		}
	}
	return out
}

// SuspectIOSeries returns the named suspect's I/O-throughput series, or
// nil if the suspect is unknown (for traces and offline analysis).
func (c *Correlator) SuspectIOSeries(id string) *stats.TimeSeries {
	if ss, ok := c.suspects[id]; ok {
		return ss.io
	}
	return nil
}

// SuspectLLCSeries returns the named suspect's LLC-miss-rate series
// (NaN marks idle intervals), or nil if the suspect is unknown.
func (c *Correlator) SuspectLLCSeries(id string) *stats.TimeSeries {
	if ss, ok := c.suspects[id]; ok {
		return ss.llc
	}
	return nil
}

// VictimIOSeries exposes the victim iowait-deviation series (for traces).
func (c *Correlator) VictimIOSeries() *stats.TimeSeries { return c.victimIO }

// VictimCPISeries exposes the victim CPI-deviation series (for traces).
func (c *Correlator) VictimCPISeries() *stats.TimeSeries { return c.victimCPI }
