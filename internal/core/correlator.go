package core

import (
	"sort"

	"perfcloud/internal/stats"
)

// Correlator performs the paper's online cross-correlation analysis
// (§III-B): it maintains a time series of the victim application's
// deviation signals and, per low-priority suspect VM, time series of the
// suspect's I/O throughput and LLC miss rate. A suspect whose activity
// correlates with the victim's deviation at or above the threshold is an
// antagonist. Missing suspect measurements (idle intervals) are treated
// as zero, per the paper's rule, so similarity is never inferred from a
// handful of present samples.
type Correlator struct {
	window    int
	threshold float64

	victimIO  *stats.TimeSeries
	victimCPI *stats.TimeSeries
	suspects  map[string]*suspectSeries
}

type suspectSeries struct {
	io  *stats.TimeSeries // I/O throughput, bytes/sec
	llc *stats.TimeSeries // LLC miss rate, misses/sec (NaN = missing)
}

// NewCorrelator creates a correlator. window is the number of recent
// intervals correlated (the paper identifies antagonists with as few as
// three); threshold is the Pearson coefficient cut-off (0.8).
func NewCorrelator(window int, threshold float64) *Correlator {
	if window < 2 {
		panic("core: correlation window must be >= 2")
	}
	return &Correlator{
		window:    window,
		threshold: threshold,
		victimIO:  stats.NewTimeSeries(),
		victimCPI: stats.NewTimeSeries(),
		suspects:  make(map[string]*suspectSeries),
	}
}

// Record appends one interval: the victim application's deviation signals
// and each suspect's activity from the sample.
func (c *Correlator) Record(nowSec float64, det Detection, s Sample, suspectIDs []string) {
	c.victimIO.Append(nowSec, det.IowaitDev)
	c.victimCPI.Append(nowSec, det.CPIDev)
	seen := make(map[string]bool, len(suspectIDs))
	for _, id := range suspectIDs {
		seen[id] = true
		ss, ok := c.suspects[id]
		if !ok {
			ss = &suspectSeries{io: stats.NewTimeSeries(), llc: stats.NewTimeSeries()}
			c.suspects[id] = ss
			// Backfill zeros so all series stay aligned with the victim's.
			for ss.io.Len() < c.victimIO.Len()-1 {
				ss.io.Append(nowSec, 0)
				ss.llc.AppendMissing(nowSec)
			}
		}
		vs, present := s.VMs[id]
		if !present {
			ss.io.Append(nowSec, 0)
			ss.llc.AppendMissing(nowSec)
			continue
		}
		ss.io.Append(nowSec, vs.IOThroughputBps)
		ss.llc.Append(nowSec, vs.LLCMissRate) // NaN when the VM was idle
	}
	// Suspects that left the server stop accumulating; drop their state.
	for id := range c.suspects {
		if !seen[id] {
			delete(c.suspects, id)
		}
	}
}

// Correlation holds one suspect's Pearson coefficients against the
// victim's deviation signals.
type Correlation struct {
	VMID string
	IO   float64 // corr(victim iowait deviation, suspect I/O throughput)
	CPU  float64 // corr(victim CPI deviation, suspect LLC miss rate)
}

// Correlations returns each suspect's coefficients over the trailing
// window, sorted by VM id. Suspects with insufficient history are
// omitted.
func (c *Correlator) Correlations() []Correlation {
	var out []Correlation
	for id, ss := range c.suspects {
		w, ok := stats.AlignedWindows(c.window, c.victimIO, c.victimCPI, ss.io, ss.llc)
		if !ok {
			continue
		}
		rio, err1 := stats.PearsonMissingAsZero(w[0], w[2])
		rcpu, err2 := stats.PearsonMissingAsZero(w[1], w[3])
		if err1 != nil || err2 != nil {
			continue
		}
		out = append(out, Correlation{VMID: id, IO: rio, CPU: rcpu})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VMID < out[j].VMID })
	return out
}

// IOAntagonists returns suspects whose I/O correlation meets the
// threshold, sorted by VM id.
func (c *Correlator) IOAntagonists() []string {
	var out []string
	for _, r := range c.Correlations() {
		if r.IO >= c.threshold {
			out = append(out, r.VMID)
		}
	}
	return out
}

// CPUAntagonists returns suspects whose LLC-miss correlation meets the
// threshold, sorted by VM id.
func (c *Correlator) CPUAntagonists() []string {
	var out []string
	for _, r := range c.Correlations() {
		if r.CPU >= c.threshold {
			out = append(out, r.VMID)
		}
	}
	return out
}

// SuspectIOSeries returns the named suspect's I/O-throughput series, or
// nil if the suspect is unknown (for traces and offline analysis).
func (c *Correlator) SuspectIOSeries(id string) *stats.TimeSeries {
	if ss, ok := c.suspects[id]; ok {
		return ss.io
	}
	return nil
}

// SuspectLLCSeries returns the named suspect's LLC-miss-rate series
// (NaN marks idle intervals), or nil if the suspect is unknown.
func (c *Correlator) SuspectLLCSeries(id string) *stats.TimeSeries {
	if ss, ok := c.suspects[id]; ok {
		return ss.llc
	}
	return nil
}

// VictimIOSeries exposes the victim iowait-deviation series (for traces).
func (c *Correlator) VictimIOSeries() *stats.TimeSeries { return c.victimIO }

// VictimCPISeries exposes the victim CPI-deviation series (for traces).
func (c *Correlator) VictimCPISeries() *stats.TimeSeries { return c.victimCPI }
