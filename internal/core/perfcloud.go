package core

import (
	"perfcloud/internal/cloud"
	"perfcloud/internal/cluster"
	"perfcloud/internal/hypervisor"
	"perfcloud/internal/obs"
	"perfcloud/internal/sim"
)

// System is PerfCloud deployed across a cluster: one decentralized node
// manager per physical server, each acting only on its own machine
// (§III-D, Fig. 8). There is no central controller — the managers share
// nothing but the cloud manager's read-only VM metadata.
type System struct {
	managers []*NodeManager

	// alerts is the rule-engine ticker (nil without cfg.Alerts). It acts
	// on the same sim-time cadence discipline as the managers, so its
	// next-eval time folds into the stride bound below.
	alerts *alertTicker

	// Cached minimum of the managers' NextSampleSec, for StrideBound.
	// A manager's next-interval time only moves when its Tick fires, and
	// that only happens on a tick at or past the minimum — so the cached
	// value stays exact for every tick strictly before it.
	boundValid bool
	nextAct    float64
}

// alertTicker evaluates the alert engine every IntervalSec of simulated
// time, registered at priority +2 so every manager's control interval —
// and the events it emits — lands before the rules are checked.
type alertTicker struct {
	eng      *obs.AlertEngine
	interval float64
	next     float64
}

// Tick implements sim.Tickable.
func (a *alertTicker) Tick(c *sim.Clock) {
	now := c.Seconds()
	if now < a.next {
		return
	}
	a.next = now + a.interval
	a.eng.Eval(now)
}

// NextEvalSec returns the simulated time of the next rule evaluation,
// for stride bounding.
func (a *alertTicker) NextEvalSec() float64 { return a.next }

// Attach deploys PerfCloud on every server of the cluster and registers
// the agents with the engine at priority +1, after the resource pipeline,
// so each control interval observes completed measurements.
func Attach(eng *sim.Engine, cl *cluster.Cluster, cm *cloud.Manager, cfg Config) *System {
	sys := &System{}
	if cfg.Alerts != nil {
		// The rule engine consumes the same audit stream the Events sink
		// sees; fan the managers' emissions out to both. The engine's own
		// alert events go to whatever output sink it was constructed with
		// (and it ignores EventAlert on input, so sharing a sink is safe).
		if cfg.Events != nil {
			cfg.Events = obs.MultiSink{cfg.Events, cfg.Alerts}
		} else {
			cfg.Events = cfg.Alerts
		}
	}
	if cfg.Health != nil {
		cl.SetHealth(cfg.Health)
	}
	cl.EachServer(func(srv *cluster.Server) {
		nm := NewNodeManager(cfg, cm, hypervisor.New(srv))
		sys.managers = append(sys.managers, nm)
		eng.RegisterPriority(nm, 1)
	})
	if cfg.Alerts != nil {
		sys.alerts = &alertTicker{eng: cfg.Alerts, interval: cfg.IntervalSec}
		eng.RegisterPriority(sys.alerts, 2)
	}
	return sys
}

// Managers returns a copy of the per-server agents in server order.
func (s *System) Managers() []*NodeManager { return append([]*NodeManager(nil), s.managers...) }

// EachManager calls fn for every agent in server order without copying
// the manager slice — the per-interval alternative to Managers() for
// exposition and status paths (matching the EachDomain/EachVMOnServer
// convention). fn must not attach or detach managers.
func (s *System) EachManager(fn func(*NodeManager)) {
	for _, nm := range s.managers {
		fn(nm)
	}
}

// StrideBound caps max to the number of upcoming ticks — starting with
// the next tick to execute on clk — that fall strictly before every
// agent's next control interval, so event-driven strides never elide a
// tick on which some node manager would act. TicksBefore is monotone in
// its target, so the per-manager minimum equals TicksBefore of the
// earliest next interval — which is cached across calls and recomputed
// only once the clock reaches it, making the per-stride cost O(1)
// instead of O(managers) on a planet-scale fleet.
func (s *System) StrideBound(clk *sim.Clock, max int64) int64 {
	if len(s.managers) == 0 && s.alerts == nil {
		return max
	}
	if max <= 0 {
		return 0
	}
	if len(s.managers) == 0 {
		return clk.TicksBefore(s.alerts.NextEvalSec(), max)
	}
	if !s.boundValid || !(clk.PeekSeconds(0) < s.nextAct) {
		s.nextAct = s.managers[0].NextSampleSec()
		for _, nm := range s.managers[1:] {
			if t := nm.NextSampleSec(); t < s.nextAct {
				s.nextAct = t
			}
		}
		if s.alerts != nil && s.alerts.NextEvalSec() < s.nextAct {
			s.nextAct = s.alerts.NextEvalSec()
		}
		s.boundValid = true
	}
	return clk.TicksBefore(s.nextAct, max)
}

// Manager returns the agent for the given server id, or nil.
func (s *System) Manager(serverID string) *NodeManager {
	for _, nm := range s.managers {
		if nm.ServerID() == serverID {
			return nm
		}
	}
	return nil
}
