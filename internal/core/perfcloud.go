package core

import (
	"perfcloud/internal/cloud"
	"perfcloud/internal/cluster"
	"perfcloud/internal/hypervisor"
	"perfcloud/internal/sim"
)

// System is PerfCloud deployed across a cluster: one decentralized node
// manager per physical server, each acting only on its own machine
// (§III-D, Fig. 8). There is no central controller — the managers share
// nothing but the cloud manager's read-only VM metadata.
type System struct {
	managers []*NodeManager

	// Cached minimum of the managers' NextSampleSec, for StrideBound.
	// A manager's next-interval time only moves when its Tick fires, and
	// that only happens on a tick at or past the minimum — so the cached
	// value stays exact for every tick strictly before it.
	boundValid bool
	nextAct    float64
}

// Attach deploys PerfCloud on every server of the cluster and registers
// the agents with the engine at priority +1, after the resource pipeline,
// so each control interval observes completed measurements.
func Attach(eng *sim.Engine, cl *cluster.Cluster, cm *cloud.Manager, cfg Config) *System {
	sys := &System{}
	cl.EachServer(func(srv *cluster.Server) {
		nm := NewNodeManager(cfg, cm, hypervisor.New(srv))
		sys.managers = append(sys.managers, nm)
		eng.RegisterPriority(nm, 1)
	})
	return sys
}

// Managers returns a copy of the per-server agents in server order.
func (s *System) Managers() []*NodeManager { return append([]*NodeManager(nil), s.managers...) }

// EachManager calls fn for every agent in server order without copying
// the manager slice — the per-interval alternative to Managers() for
// exposition and status paths (matching the EachDomain/EachVMOnServer
// convention). fn must not attach or detach managers.
func (s *System) EachManager(fn func(*NodeManager)) {
	for _, nm := range s.managers {
		fn(nm)
	}
}

// StrideBound caps max to the number of upcoming ticks — starting with
// the next tick to execute on clk — that fall strictly before every
// agent's next control interval, so event-driven strides never elide a
// tick on which some node manager would act. TicksBefore is monotone in
// its target, so the per-manager minimum equals TicksBefore of the
// earliest next interval — which is cached across calls and recomputed
// only once the clock reaches it, making the per-stride cost O(1)
// instead of O(managers) on a planet-scale fleet.
func (s *System) StrideBound(clk *sim.Clock, max int64) int64 {
	if len(s.managers) == 0 {
		return max
	}
	if max <= 0 {
		return 0
	}
	if !s.boundValid || !(clk.PeekSeconds(0) < s.nextAct) {
		s.nextAct = s.managers[0].NextSampleSec()
		for _, nm := range s.managers[1:] {
			if t := nm.NextSampleSec(); t < s.nextAct {
				s.nextAct = t
			}
		}
		s.boundValid = true
	}
	return clk.TicksBefore(s.nextAct, max)
}

// Manager returns the agent for the given server id, or nil.
func (s *System) Manager(serverID string) *NodeManager {
	for _, nm := range s.managers {
		if nm.ServerID() == serverID {
			return nm
		}
	}
	return nil
}
