package core

import (
	"perfcloud/internal/cloud"
	"perfcloud/internal/cluster"
	"perfcloud/internal/hypervisor"
	"perfcloud/internal/sim"
)

// System is PerfCloud deployed across a cluster: one decentralized node
// manager per physical server, each acting only on its own machine
// (§III-D, Fig. 8). There is no central controller — the managers share
// nothing but the cloud manager's read-only VM metadata.
type System struct {
	managers []*NodeManager
}

// Attach deploys PerfCloud on every server of the cluster and registers
// the agents with the engine at priority +1, after the resource pipeline,
// so each control interval observes completed measurements.
func Attach(eng *sim.Engine, cl *cluster.Cluster, cm *cloud.Manager, cfg Config) *System {
	sys := &System{}
	for _, srv := range cl.Servers() {
		nm := NewNodeManager(cfg, cm, hypervisor.New(srv))
		sys.managers = append(sys.managers, nm)
		eng.RegisterPriority(nm, 1)
	}
	return sys
}

// Managers returns a copy of the per-server agents in server order.
func (s *System) Managers() []*NodeManager { return append([]*NodeManager(nil), s.managers...) }

// EachManager calls fn for every agent in server order without copying
// the manager slice — the per-interval alternative to Managers() for
// exposition and status paths (matching the EachDomain/EachVMOnServer
// convention). fn must not attach or detach managers.
func (s *System) EachManager(fn func(*NodeManager)) {
	for _, nm := range s.managers {
		fn(nm)
	}
}

// StrideBound caps max to the number of upcoming ticks — starting with
// the next tick to execute on clk — that fall strictly before every
// agent's next control interval, so event-driven strides never elide a
// tick on which some node manager would act.
func (s *System) StrideBound(clk *sim.Clock, max int64) int64 {
	for _, nm := range s.managers {
		if max <= 0 {
			return 0
		}
		if b := clk.TicksBefore(nm.NextSampleSec(), max); b < max {
			max = b
		}
	}
	return max
}

// Manager returns the agent for the given server id, or nil.
func (s *System) Manager(serverID string) *NodeManager {
	for _, nm := range s.managers {
		if nm.ServerID() == serverID {
			return nm
		}
	}
	return nil
}
