package core

import "fmt"

// CapPolicy is the per-antagonist cap-control strategy driven by the
// node manager each interval: contention reports I(t) > H. The paper's
// policy is Cubic (Eq. 1); AIMD is the classical alternative kept for
// the D3 ablation in DESIGN.md (control stability: cap oscillation,
// victim JCT, antagonist throughput).
type CapPolicy interface {
	// Update advances one control interval and returns the new cap.
	Update(interval int64, contention bool) float64
	// Cap returns the current cap without advancing.
	Cap() float64
}

var _ CapPolicy = (*Cubic)(nil)

// AIMD is the additive-increase / multiplicative-decrease policy:
// on contention the cap is cut to (1-Beta)*cap; otherwise it grows by a
// fixed Step per interval. Compared to CUBIC it lacks the plateau around
// the last-known-good cap, so after recovering it immediately re-enters
// the contention region and oscillates — the instability §III-C cites
// as the reason for choosing CUBIC.
type AIMD struct {
	Beta   float64 // multiplicative decrease factor, in (0,1)
	Step   float64 // additive increase per interval
	MinCap float64
	MaxCap float64 // 0 = unbounded

	cap float64
}

// NewAIMD creates an AIMD controller starting at the observed usage.
func NewAIMD(beta, step, initialCap float64) *AIMD {
	if beta <= 0 || beta >= 1 {
		panic(fmt.Sprintf("core: AIMD beta %v out of (0,1)", beta))
	}
	if step <= 0 {
		panic("core: AIMD step must be positive")
	}
	if initialCap <= 0 {
		panic("core: AIMD initial cap must be positive")
	}
	return &AIMD{Beta: beta, Step: step, cap: initialCap}
}

// Cap implements CapPolicy.
func (a *AIMD) Cap() float64 { return a.cap }

// Update implements CapPolicy.
func (a *AIMD) Update(interval int64, contention bool) float64 {
	if contention {
		a.cap *= 1 - a.Beta
		if a.cap < a.MinCap {
			a.cap = a.MinCap
		}
		return a.cap
	}
	a.cap += a.Step
	if a.MaxCap > 0 && a.cap > a.MaxCap {
		a.cap = a.MaxCap
	}
	return a.cap
}
