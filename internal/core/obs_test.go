package core

import (
	"bytes"
	"testing"
	"time"

	"perfcloud/internal/obs"
)

// captureSink records emitted events in order.
type captureSink struct{ events []obs.Event }

func (c *captureSink) Emit(e obs.Event) { c.events = append(c.events, e) }

// runObservedScenario runs the fio-antagonist scenario with the audit
// log and metrics attached, returning the captured events and registry.
func runObservedScenario(t *testing.T) ([]obs.Event, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	sink := &captureSink{}
	o := defaultOpts()
	o.perfcloud = true
	o.fio = true
	o.burstyFio = true
	o.cfg.Metrics = reg
	o.cfg.Events = sink
	sc := newScenario(t, o)
	sc.runTerasortStream(t, 4*time.Minute)
	return sink.events, reg
}

func TestNodeManagerAuditLog(t *testing.T) {
	events, reg := runObservedScenario(t)

	byType := map[obs.EventType][]obs.Event{}
	for i, e := range events {
		if e.Server != "server-0" {
			t.Fatalf("event %d from server %q", i, e.Server)
		}
		if i > 0 && e.T < events[i-1].T {
			t.Fatalf("event %d out of time order: %v after %v", i, e.T, events[i-1].T)
		}
		byType[e.Type] = append(byType[e.Type], e)
	}

	samples := byType[obs.EventSample]
	if len(samples) == 0 {
		t.Fatal("no sample events")
	}
	if got := reg.Counter("perfcloud_intervals_total",
		"Control intervals executed by the node manager.",
		obs.Label{Key: "server", Value: "server-0"}).Value(); got != uint64(len(samples)) {
		t.Errorf("intervals counter = %d, want %d sample events", got, len(samples))
	}
	// The first interval has no counter deltas (no domains measured yet);
	// after that every sample covers the six hadoop VMs plus fio.
	full := 0
	for _, e := range samples {
		if e.Domains >= 7 {
			full++
		}
	}
	if full < len(samples)-1 {
		t.Errorf("%d of %d sample events measured all domains", full, len(samples))
	}

	if len(byType[obs.EventDetect]) == 0 {
		t.Fatal("no detect events despite a bursty fio antagonist")
	}
	for _, e := range byType[obs.EventDetect] {
		if !e.IOContention && !e.CPUContention {
			t.Fatalf("detect event with no contention flag: %+v", e)
		}
	}

	// Identify events carry the per-suspect Pearson coefficients and
	// eventually name fio.
	idents := byType[obs.EventIdentify]
	if len(idents) == 0 {
		t.Fatal("no identify events")
	}
	fioIdentified, fioCorr := false, false
	for _, e := range idents {
		for _, a := range e.IOAntagonists {
			if a == "fio" {
				fioIdentified = true
			}
		}
		for _, c := range e.Corr {
			if c.VM == "fio" && c.IO > 0.8 {
				fioCorr = true
			}
		}
	}
	if !fioIdentified || !fioCorr {
		t.Errorf("fio identified=%v, strong corr recorded=%v", fioIdentified, fioCorr)
	}

	// Cap decisions name the VM and resource, move the cap, and record
	// the controller's epoch state.
	caps := byType[obs.EventCap]
	if len(caps) == 0 {
		t.Fatal("no cap events")
	}
	sawDecrease := false
	for _, e := range caps {
		if e.VM != "fio" || e.Res != "io" {
			t.Fatalf("unexpected cap target: %+v", e)
		}
		if e.NewCap == e.OldCap || e.NewCap <= 0 {
			t.Fatalf("cap event did not move the cap: %+v", e)
		}
		if e.Region == "" {
			t.Fatalf("cap event missing CUBIC region: %+v", e)
		}
		if e.NewCap < e.OldCap {
			sawDecrease = true
			// SinceDecrease == 0 on the decrease interval itself.
			if e.SinceDecrease != 0 {
				t.Fatalf("decrease with SinceDecrease=%d: %+v", e.SinceDecrease, e)
			}
		}
	}
	if !sawDecrease {
		t.Error("no multiplicative decrease recorded")
	}

	if got := reg.Counter("perfcloud_cap_updates_total",
		"Cap controller decisions that changed the applied cap.",
		obs.Label{Key: "server", Value: "server-0"},
		obs.Label{Key: "res", Value: "io"}).Value(); got != uint64(len(caps)) {
		t.Errorf("cap-updates counter = %d, want %d cap events", got, len(caps))
	}
}

func TestNodeManagerEventStreamDeterministic(t *testing.T) {
	run := func() []byte {
		events, _ := runObservedScenario(t)
		var buf bytes.Buffer
		sink := obs.NewJSONLSink(&buf)
		for _, e := range events {
			sink.Emit(e)
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed runs produced different event streams")
	}
	if len(a) == 0 {
		t.Fatal("empty event stream")
	}
}

func TestMetricsOffEmitsNothing(t *testing.T) {
	// A nil registry and sink must not change behaviour: the scenario
	// runs identically (covered by every other test) and exposes no
	// instruments. This exercises the nil fast paths under real load.
	o := defaultOpts()
	o.perfcloud = true
	o.fio = true
	sc := newScenario(t, o)
	sc.runTerasortStream(t, 30*time.Second)
	var buf bytes.Buffer
	var reg *obs.Registry
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry rendered %q", buf.String())
	}
}
