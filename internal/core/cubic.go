// Package core implements PerfCloud, the paper's contribution: a
// decentralized node-manager agent per physical server that detects
// performance interference from system-level metrics (blkio counters and
// CPI from hardware performance counters), identifies antagonistic VMs by
// online Pearson cross-correlation, and throttles them with a dynamic
// resource-control algorithm whose cap trajectory follows the CUBIC
// congestion-control function (§III).
package core

import (
	"fmt"
	"math"
)

// CubicConfig parameterises Equation 1.
type CubicConfig struct {
	// Beta is the multiplicative-decrease factor: on contention the cap
	// shrinks to (1-Beta)*cap. The paper sets 0.8 (cut to 20%).
	Beta float64
	// Gamma scales the cubic growth term; the paper sets 0.005. Smaller
	// gamma lengthens the plateau region.
	Gamma float64
	// MinCap floors the cap so repeated decreases cannot starve an
	// antagonist to zero (the paper penalises, it does not kill).
	MinCap float64
	// MaxCap bounds probing growth (0 = unbounded). Bounding matters for
	// control: a later decrease from an unbounded probed value would take
	// many intervals to bite, while the paper's Fig. 10 re-throttle drops
	// the cap immediately.
	MaxCap float64
}

// DefaultCubicConfig returns the paper's empirically tuned constants.
func DefaultCubicConfig() CubicConfig {
	return CubicConfig{Beta: 0.8, Gamma: 0.005, MinCap: 0}
}

// Cubic is the per-antagonist, per-resource cap controller implementing
// Equation 1:
//
//	C(t+1) = (1-beta) * C(t)                    if I(t) > H
//	C(t+1) = gamma*(T - K)^3 + Cmax, K = cbrt(Cmax*beta/gamma)   otherwise
//
// where T is the number of intervals since the last cap decrease and Cmax
// the cap at that moment. The growth curve passes exactly through the
// reduced cap at T=0 and exhibits CUBIC's three regions: fast initial
// growth toward Cmax, a plateau around it, and aggressive probing beyond
// it (Fig. 7).
type Cubic struct {
	cfg CubicConfig

	cap          float64
	capMax       float64
	lastDecrease int64
	decreased    bool
}

// NewCubic creates a controller with the cap initialised to the
// antagonist's observed resource usage (Eq. 1's C_i at t=1).
func NewCubic(cfg CubicConfig, initialCap float64) *Cubic {
	if cfg.Beta <= 0 || cfg.Beta >= 1 {
		panic(fmt.Sprintf("core: cubic beta %v out of (0,1)", cfg.Beta))
	}
	if cfg.Gamma <= 0 {
		panic(fmt.Sprintf("core: cubic gamma %v must be positive", cfg.Gamma))
	}
	if initialCap <= 0 {
		panic("core: cubic initial cap must be positive")
	}
	return &Cubic{cfg: cfg, cap: initialCap, capMax: initialCap}
}

// Cap returns the current cap value.
func (c *Cubic) Cap() float64 { return c.cap }

// CapMax returns the cap at the moment of the last decrease.
func (c *Cubic) CapMax() float64 { return c.capMax }

// Decreased reports whether the controller has ever throttled.
func (c *Cubic) Decreased() bool { return c.decreased }

// LastDecrease returns the control interval of the most recent
// multiplicative decrease (0 if none yet) — with Region, the epoch
// state the decision audit log records per cap event.
func (c *Cubic) LastDecrease() int64 { return c.lastDecrease }

// K returns the plateau midpoint: intervals after a decrease at which the
// cubic regains Cmax.
func (c *Cubic) K() float64 {
	return math.Cbrt(c.capMax * c.cfg.Beta / c.cfg.Gamma)
}

// Update advances one control interval. contention reports whether the
// victim's deviation signal exceeded its threshold (I(t) > H). It returns
// the new cap.
func (c *Cubic) Update(interval int64, contention bool) float64 {
	if contention {
		c.capMax = c.cap
		c.cap = (1 - c.cfg.Beta) * c.cap
		if c.cap < c.cfg.MinCap {
			c.cap = c.cfg.MinCap
		}
		c.lastDecrease = interval
		c.decreased = true
		return c.cap
	}
	t := float64(interval - c.lastDecrease)
	grown := c.cfg.Gamma*math.Pow(t-c.K(), 3) + c.capMax
	// The cubic is the *growth* trajectory after a decrease: never let it
	// pull the cap below its current value (t just after a decrease sits
	// below the curve's start only if intervals were skipped).
	if grown > c.cap {
		c.cap = grown
	}
	if c.cfg.MaxCap > 0 && c.cap > c.cfg.MaxCap {
		c.cap = c.cfg.MaxCap
	}
	return c.cap
}

// Region names the part of the growth curve the controller is in at the
// given interval — useful for traces and the Fig. 7 reproduction.
func (c *Cubic) Region(interval int64) string {
	if !c.decreased {
		return "probing"
	}
	t := float64(interval - c.lastDecrease)
	k := c.K()
	switch {
	case t < 0.7*k:
		return "growth"
	case t <= 1.3*k:
		return "plateau"
	default:
		return "probing"
	}
}
