package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"perfcloud/internal/cloud"
	"perfcloud/internal/cluster"
	"perfcloud/internal/dfs"
	"perfcloud/internal/exec"
	"perfcloud/internal/mapreduce"
	"perfcloud/internal/sim"
	"perfcloud/internal/spark"
	"perfcloud/internal/workloads"
)

// scenario is a one-server testbed: six Hadoop VMs running back-to-back
// high-priority work, plus configurable low-priority antagonists/decoys.
type scenario struct {
	eng    *sim.Engine
	clus   *cluster.Cluster
	cm     *cloud.Manager
	pool   exec.Pool
	fs     *dfs.FileSystem
	jt     *mapreduce.JobTracker
	driver *spark.Driver
	sys    *System

	benchmarks map[string]*workloads.Benchmark
}

type scenarioOpts struct {
	perfcloud  bool
	fio        bool
	streams    int
	decoys     bool
	burstyFio  bool
	cfg        Config
	seed       int64
	tickMillis int
}

func defaultOpts() scenarioOpts {
	return scenarioOpts{cfg: DefaultConfig(), seed: 42, tickMillis: 100}
}

func newScenario(t *testing.T, o scenarioOpts) *scenario {
	t.Helper()
	sc := &scenario{benchmarks: make(map[string]*workloads.Benchmark)}
	sc.eng = sim.NewEngine(time.Duration(o.tickMillis)*time.Millisecond, o.seed)
	sc.clus = cluster.New()
	sc.cm = cloud.NewManager(sc.clus, sc.eng.RNG())
	sc.cm.ProvisionServers(1)

	var names []string
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("hadoop-%d", i)
		vm, err := sc.cm.Boot(cloud.VMSpec{Name: id, Priority: cluster.HighPriority, AppID: "hadoop"})
		if err != nil {
			t.Fatal(err)
		}
		sc.pool = append(sc.pool, exec.NewExecutor(vm, 2))
		names = append(names, id)
	}
	boot := func(name string, w *workloads.Benchmark) {
		vm, err := sc.cm.Boot(cloud.VMSpec{Name: name, Priority: cluster.LowPriority})
		if err != nil {
			t.Fatal(err)
		}
		vm.SetWorkload(w)
		sc.benchmarks[name] = w
	}
	if o.fio {
		pat := workloads.AlwaysOn
		if o.burstyFio {
			pat = workloads.BurstPattern{On: 20 * time.Second, Off: 10 * time.Second}
		}
		boot("fio", workloads.NewFioRandRead(pat))
	}
	for i := 0; i < o.streams; i++ {
		pat := workloads.BurstPattern{On: 25 * time.Second, Off: 10 * time.Second}
		boot(fmt.Sprintf("stream-%d", i), workloads.NewStream(pat))
	}
	if o.decoys {
		boot("oltp", workloads.NewSysbenchOLTP(workloads.AlwaysOn))
		boot("sysbench-cpu", workloads.NewSysbenchCPU(workloads.AlwaysOn))
	}

	sc.fs = dfs.New(dfs.DefaultConfig(), names, rand.New(rand.NewSource(o.seed+1)))
	sc.fs.Create("input", 640<<20)
	sc.jt = mapreduce.NewJobTracker(sc.pool, sc.fs, nil)
	sc.driver = spark.NewDriver(sc.pool, nil)
	sc.eng.RegisterPriority(sc.jt, -1)
	sc.eng.RegisterPriority(sc.driver, -1)
	sc.eng.RegisterPriority(sc.clus, 0)
	if o.perfcloud {
		sc.sys = Attach(sc.eng, sc.clus, sc.cm, o.cfg)
	}
	return sc
}

// runTerasortStream keeps a terasort job running back-to-back for the
// given duration, returning the completed JCTs.
func (sc *scenario) runTerasortStream(t *testing.T, d time.Duration) []float64 {
	t.Helper()
	var jcts []float64
	var cur *mapreduce.Job
	submit := func() {
		j, err := sc.jt.Submit(mapreduce.Terasort("input", 6), sc.eng.Clock().Seconds())
		if err != nil {
			t.Fatal(err)
		}
		cur = j
	}
	submit()
	ticks := int64(d / sc.eng.Clock().TickSize())
	for i := int64(0); i < ticks; i++ {
		sc.eng.Step()
		if cur.Done() {
			jcts = append(jcts, cur.JCT())
			submit()
		}
	}
	return jcts
}

// runLogregStream is runTerasortStream for Spark logistic regression.
func (sc *scenario) runLogregStream(t *testing.T, d time.Duration) []float64 {
	t.Helper()
	var jcts []float64
	var cur *spark.App
	submit := func() {
		a, err := sc.driver.Submit(spark.LogisticRegression(10, 4, 640<<20), sc.eng.Clock().Seconds())
		if err != nil {
			t.Fatal(err)
		}
		cur = a
	}
	submit()
	ticks := int64(d / sc.eng.Clock().TickSize())
	for i := int64(0); i < ticks; i++ {
		sc.eng.Step()
		if cur.Done() {
			jcts = append(jcts, cur.JCT())
			submit()
		}
	}
	return jcts
}

func (sc *scenario) manager() *NodeManager { return sc.sys.Managers()[0] }

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestDetectsIOContentionOnlyWithAntagonist(t *testing.T) {
	// Alone: no interval may cross the iowait threshold. With fio: many do.
	count := func(fio bool) (contended, total int) {
		o := defaultOpts()
		o.perfcloud = true
		// Observation only: disable throttling by making identification
		// impossible (threshold above 1).
		o.cfg.CorrThreshold = 1.1
		o.fio = fio
		o.burstyFio = true
		sc := newScenario(t, o)
		sc.runTerasortStream(t, 3*time.Minute)
		for _, e := range sc.manager().Trace() {
			total++
			if e.IOContention {
				contended++
			}
		}
		return
	}
	alone, totalAlone := count(false)
	contended, _ := count(true)
	if alone > totalAlone/10 {
		t.Errorf("false positives alone: %d of %d intervals", alone, totalAlone)
	}
	if contended < 5 {
		t.Errorf("contended intervals with fio = %d, want many", contended)
	}
}

func TestIdentifiesAndThrottlesFioNotDecoys(t *testing.T) {
	o := defaultOpts()
	o.perfcloud = true
	o.fio = true
	o.burstyFio = true
	o.decoys = true
	sc := newScenario(t, o)
	sc.runTerasortStream(t, 4*time.Minute)

	identified := map[string]bool{}
	capped := map[string]bool{}
	for _, e := range sc.manager().Trace() {
		for _, id := range e.IOAntagonists {
			identified[id] = true
		}
		for id := range e.IOCaps {
			capped[id] = true
		}
	}
	if !identified["fio"] {
		t.Error("fio never identified as I/O antagonist")
	}
	if identified["oltp"] || identified["sysbench-cpu"] {
		t.Errorf("decoys misidentified: %v", identified)
	}
	if !capped["fio"] {
		t.Error("fio never throttled")
	}
	if capped["oltp"] || capped["sysbench-cpu"] {
		t.Errorf("decoys throttled: %v", capped)
	}
	// The actual blkio throttle reached the hypervisor at some point.
	foundCapBelow := false
	for _, e := range sc.manager().Trace() {
		if c, ok := e.IOCaps["fio"]; ok && c < 4000 {
			foundCapBelow = true
		}
	}
	if !foundCapBelow {
		t.Error("fio cap never dropped below half its solo rate")
	}
}

func TestPerfCloudImprovesTerasortJCT(t *testing.T) {
	run := func(pc bool) float64 {
		o := defaultOpts()
		o.perfcloud = pc
		o.fio = true
		o.burstyFio = true
		sc := newScenario(t, o)
		jcts := sc.runTerasortStream(t, 4*time.Minute)
		if len(jcts) == 0 {
			t.Fatal("no jobs completed")
		}
		return mean(jcts)
	}
	off := run(false)
	on := run(true)
	if on >= off*0.95 {
		t.Errorf("PerfCloud JCT %v should clearly beat default %v", on, off)
	}
}

func TestDetectsAndMitigatesMemoryContention(t *testing.T) {
	run := func(pc bool) (jct float64, trace []TraceEntry) {
		o := defaultOpts()
		o.perfcloud = true
		o.streams = 2
		if !pc {
			o.cfg.CorrThreshold = 1.1 // observe only
		}
		sc := newScenario(t, o)
		jcts := sc.runLogregStream(t, 4*time.Minute)
		if len(jcts) == 0 {
			t.Fatal("no apps completed")
		}
		return mean(jcts), sc.manager().Trace()
	}
	off, offTrace := run(false)
	on, onTrace := run(true)

	cpuContended := 0
	for _, e := range offTrace {
		if e.CPUContention {
			cpuContended++
		}
	}
	if cpuContended < 3 {
		t.Errorf("CPU contention detected in %d intervals, want several", cpuContended)
	}
	identified := map[string]bool{}
	for _, e := range onTrace {
		for _, id := range e.CPUAntagonists {
			identified[id] = true
		}
	}
	if !identified["stream-0"] && !identified["stream-1"] {
		t.Error("no STREAM VM identified as CPU antagonist")
	}
	if on >= off*0.97 {
		t.Errorf("PerfCloud logreg JCT %v should beat default %v", on, off)
	}
}

func TestCapsRecoverAfterAntagonistStops(t *testing.T) {
	o := defaultOpts()
	o.perfcloud = true
	o.fio = true
	o.burstyFio = true
	sc := newScenario(t, o)
	// Limit fio to a finite amount of work so it stops partway.
	sc.benchmarks["fio"].SetLimits(workloads.Limits{Ops: 200000})
	sc.runTerasortStream(t, 10*time.Minute)

	trace := sc.manager().Trace()
	var minCap float64 = 1e18
	capAtEnd := -1.0 // -1 = released
	for _, e := range trace {
		if c, ok := e.IOCaps["fio"]; ok {
			if c < minCap {
				minCap = c
			}
			capAtEnd = c
		} else {
			capAtEnd = -1
		}
	}
	if minCap > 4000 {
		t.Errorf("min cap = %v, fio was never meaningfully throttled", minCap)
	}
	if capAtEnd != -1 {
		t.Errorf("cap still in force at end (%v); probing should have released it", capAtEnd)
	}
	// And the blkio throttle was actually cleared.
	vm := sc.clus.FindVM("fio")
	if th := vm.Cgroup().Throttle(); th.ReadIOPS != 0 {
		t.Errorf("lingering throttle: %+v", th)
	}
}

func TestDecentralizedOneManagerPerServer(t *testing.T) {
	eng := sim.NewEngine(100*time.Millisecond, 1)
	clus := cluster.New()
	cm := cloud.NewManager(clus, eng.RNG())
	cm.ProvisionServers(3)
	sys := Attach(eng, clus, cm, DefaultConfig())
	if len(sys.Managers()) != 3 {
		t.Fatalf("managers = %d", len(sys.Managers()))
	}
	if sys.Manager("server-1") == nil || sys.Manager("nope") != nil {
		t.Error("Manager lookup")
	}
	// Ticking with empty servers must be safe.
	eng.RunFor(20 * time.Second)
}

func TestNodeManagerPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.IntervalSec = 0
	NewNodeManager(cfg, nil, nil)
}
