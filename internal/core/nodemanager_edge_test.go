package core

import (
	"testing"
	"time"

	"perfcloud/internal/cgroup"
)

// TestAntagonistTerminationMidThrottle exercises the controller's
// domain-gone path: the fio VM is terminated while capped; the node
// manager must drop its controller instead of erroring forever.
func TestAntagonistTerminationMidThrottle(t *testing.T) {
	o := defaultOpts()
	o.perfcloud = true
	o.fio = true
	o.burstyFio = true
	sc := newScenario(t, o)

	// Run until fio is actually throttled.
	throttled := func() bool {
		for _, e := range sc.manager().Trace() {
			if _, ok := e.IOCaps["fio"]; ok {
				return true
			}
		}
		return false
	}
	sc.runTerasortStream(t, 90*time.Second)
	if !throttled() {
		t.Fatal("fio never throttled in warmup phase")
	}

	// Terminate the antagonist while its controller is live.
	sc.cm.Terminate("fio")
	sc.runTerasortStream(t, 60*time.Second)

	// The manager keeps operating; the trace keeps growing and no entry
	// after termination carries a fio cap anymore (controller dropped on
	// the hypervisor error).
	trace := sc.manager().Trace()
	if len(trace) < 20 {
		t.Fatalf("trace stalled: %d entries", len(trace))
	}
	for _, e := range trace[len(trace)-5:] {
		if _, ok := e.IOCaps["fio"]; ok {
			t.Error("terminated VM still has a live controller")
		}
	}
}

// TestIdleAntagonistNotEngaged: identification of a VM with zero observed
// I/O must not create a controller (there is nothing to base a cap on).
func TestIdleAntagonistNotEngaged(t *testing.T) {
	o := defaultOpts()
	o.perfcloud = true
	o.fio = true
	o.burstyFio = true
	o.decoys = true
	sc := newScenario(t, o)
	// sysbench-cpu does no I/O at all: even if it were ever accused, it
	// must never be I/O-capped. (Covered more broadly by the decoy test;
	// this pins the zero-observation guard specifically.)
	sc.runTerasortStream(t, 2*time.Minute)
	for _, e := range sc.manager().Trace() {
		if _, ok := e.IOCaps["sysbench-cpu"]; ok {
			t.Fatal("I/O controller created for a VM with no observed I/O")
		}
	}
}

// TestObserveOnlyNeverTouchesThrottles pins the default-system arm:
// detection and identification run, caps never move.
func TestObserveOnlyNeverTouchesThrottles(t *testing.T) {
	o := defaultOpts()
	o.perfcloud = true
	o.cfg.ObserveOnly = true
	o.fio = true
	o.burstyFio = true
	sc := newScenario(t, o)
	sc.runTerasortStream(t, 2*time.Minute)
	contended := 0
	for _, e := range sc.manager().Trace() {
		if e.IOContention {
			contended++
		}
		if len(e.IOCaps)+len(e.CPUCaps) != 0 {
			t.Fatal("observe-only manager applied caps")
		}
	}
	if contended == 0 {
		t.Error("observe-only manager should still detect contention")
	}
	if th := sc.clus.FindVM("fio").Cgroup().Throttle(); th != (cgroup.Throttle{}) {
		t.Errorf("fio throttle changed: %+v", th)
	}
}
