package core

import (
	"math"
	"testing"
)

// record feeds the correlator n intervals where the victim deviation and
// each suspect's activity follow the given generator functions.
func record(c *Correlator, n int, dev func(i int) float64, suspects map[string]func(i int) (io, llc float64)) {
	ids := make([]string, 0, len(suspects))
	for id := range suspects {
		ids = append(ids, id)
	}
	for i := 0; i < n; i++ {
		vms := make(map[string]VMSample, len(suspects))
		for id, gen := range suspects {
			io, llc := gen(i)
			vms[id] = VMSample{IOThroughputBps: io, LLCMissRate: llc}
		}
		det := Detection{IowaitDev: dev(i), CPIDev: dev(i)}
		c.Record(float64(i*5), det, MakeSample(float64(i*5), vms), ids)
	}
}

func TestIdentifiesBurstyIOAntagonist(t *testing.T) {
	c := NewCorrelator(6, 0.8)
	// fio bursts on even intervals; the victim's deviation tracks it.
	// oltp is constant; cpu does no I/O at all.
	burst := func(i int) float64 {
		if i%2 == 0 {
			return 1
		}
		return 0
	}
	record(c, 8, func(i int) float64 { return 40*burst(i) + 2 },
		map[string]func(int) (float64, float64){
			"fio":  func(i int) (float64, float64) { return 3e7 * burst(i), math.NaN() },
			"oltp": func(i int) (float64, float64) { return 6e6, 1e5 },
			"cpu":  func(i int) (float64, float64) { return 0, 1e4 },
		})
	ants := c.IOAntagonists()
	if len(ants) != 1 || ants[0] != "fio" {
		t.Errorf("IO antagonists = %v, want [fio]; correlations: %+v", ants, c.Correlations())
	}
}

func TestIdentifiesLLCAntagonistWithMissingAsZero(t *testing.T) {
	c := NewCorrelator(6, 0.8)
	burst := func(i int) float64 {
		if i%3 != 0 {
			return 1
		}
		return 0
	}
	// STREAM's LLC miss rate is missing (NaN) while idle — the paper's
	// missing-as-zero rule must still find the correlation.
	record(c, 9, func(i int) float64 { return 2*burst(i) + 0.2 },
		map[string]func(int) (float64, float64){
			"stream": func(i int) (float64, float64) {
				if burst(i) == 1 {
					return 0, 1e8
				}
				return 0, math.NaN()
			},
			"cpu": func(i int) (float64, float64) { return 0, 1e4 },
		})
	ants := c.CPUAntagonists()
	if len(ants) != 1 || ants[0] != "stream" {
		t.Errorf("CPU antagonists = %v; correlations: %+v", ants, c.Correlations())
	}
}

func TestNoAntagonistsBeforeWindowFills(t *testing.T) {
	c := NewCorrelator(6, 0.8)
	record(c, 3, func(i int) float64 { return float64(i) },
		map[string]func(int) (float64, float64){
			"x": func(i int) (float64, float64) { return float64(i), float64(i) },
		})
	if got := c.Correlations(); got != nil {
		t.Errorf("correlations with short history = %v", got)
	}
	if c.IOAntagonists() != nil || c.CPUAntagonists() != nil {
		t.Error("no antagonists should be identified before the window fills")
	}
}

func TestSmallWindowIdentifiesQuickly(t *testing.T) {
	// The paper identifies an antagonist with as few as three samples.
	c := NewCorrelator(3, 0.8)
	record(c, 3, func(i int) float64 { return []float64{30, 2, 45}[i] },
		map[string]func(int) (float64, float64){
			"fio": func(i int) (float64, float64) { return []float64{2.8e7, 1e5, 3.2e7}[i], math.NaN() },
		})
	if ants := c.IOAntagonists(); len(ants) != 1 || ants[0] != "fio" {
		t.Errorf("antagonists after 3 samples = %v", ants)
	}
}

func TestLateArrivingSuspectBackfilled(t *testing.T) {
	c := NewCorrelator(4, 0.8)
	// Two intervals without the suspect, then it appears and correlates.
	for i := 0; i < 2; i++ {
		c.Record(float64(i*5), Detection{IowaitDev: 1, CPIDev: 0}, MakeSample(float64(i*5), nil), nil)
	}
	for i := 2; i < 8; i++ {
		v := float64(i % 2)
		s := MakeSample(float64(i*5), map[string]VMSample{
			"late": {IOThroughputBps: 1e7 * v, LLCMissRate: math.NaN()},
		})
		c.Record(float64(i*5), Detection{IowaitDev: 30*v + 1}, s, []string{"late"})
	}
	if ants := c.IOAntagonists(); len(ants) != 1 {
		t.Errorf("late suspect not identified: %v (%+v)", ants, c.Correlations())
	}
}

func TestDepartedSuspectDropped(t *testing.T) {
	c := NewCorrelator(3, 0.8)
	record(c, 4, func(i int) float64 { return float64(i % 2) },
		map[string]func(int) (float64, float64){
			"x": func(i int) (float64, float64) { return float64(i % 2), math.NaN() },
		})
	// Now record intervals without x in the suspect list.
	c.Record(100, Detection{}, MakeSample(100, nil), nil)
	if len(c.suspects) != 0 {
		t.Error("departed suspect should be dropped")
	}
}

func TestConstantSuspectNotFlagged(t *testing.T) {
	c := NewCorrelator(5, 0.8)
	record(c, 8, func(i int) float64 { return float64(i % 2 * 50) },
		map[string]func(int) (float64, float64){
			"steady": func(i int) (float64, float64) { return 5e6, 1e5 },
		})
	if ants := c.IOAntagonists(); len(ants) != 0 {
		t.Errorf("constant suspect flagged: %v", ants)
	}
}

func TestCorrelatorPanicsOnTinyWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewCorrelator(1, 0.8)
}

func TestVictimSeriesExposed(t *testing.T) {
	c := NewCorrelator(3, 0.8)
	c.Record(0, Detection{IowaitDev: 7, CPIDev: 3}, MakeSample(0, nil), nil)
	if c.VictimIOSeries().Last().Value != 7 || c.VictimCPISeries().Last().Value != 3 {
		t.Error("victim series not recorded")
	}
}
