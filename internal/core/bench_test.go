package core

import (
	"fmt"
	"testing"
	"time"

	"perfcloud/internal/cluster"
	"perfcloud/internal/hypervisor"
	"perfcloud/internal/sim"
)

// benchServer builds one server hosting n VMs with live counters, the
// shape of the monitoring hot loop on a loaded host.
func benchServer(b *testing.B, n int) (*cluster.Cluster, *cluster.Server, []*cluster.VM) {
	b.Helper()
	eng := sim.NewEngine(100*time.Millisecond, 3)
	cl := cluster.New()
	srv := cl.AddServer("s0", cluster.DefaultServerConfig(), eng.RNG())
	vms := make([]*cluster.VM, 0, n)
	for i := 0; i < n; i++ {
		prio, app := cluster.LowPriority, ""
		if i%2 == 0 {
			prio, app = cluster.HighPriority, "app"
		}
		vms = append(vms, cl.AddVM(srv, fmt.Sprintf("vm-%02d", i), 2, 8<<30, prio, app))
	}
	return cl, srv, vms
}

// advanceCounters simulates one interval of activity on every VM so each
// Sample call computes fresh deltas and folds them into the EWMAs.
func advanceCounters(vms []*cluster.VM) {
	for _, v := range vms {
		cg := v.Cgroup()
		cg.AddBlkio(500, 500*4096, 1000)
		cg.AddCPU(5)
		cg.AddPerf(2e9, 1e9, 1e7, 5e6)
	}
}

// BenchmarkMonitorSample measures one monitoring interval over a
// 32-domain server: reading every domain's counters, computing deltas and
// smoothing the five detection signals.
func BenchmarkMonitorSample(b *testing.B) {
	_, srv, vms := benchServer(b, 32)
	m := NewMonitor(hypervisor.New(srv), 0.7)
	advanceCounters(vms)
	m.Sample(0, 5) // prime previous counters
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		advanceCounters(vms)
		m.Sample(float64(i+1)*5, 5)
	}
}

// BenchmarkCorrelatorIdentify measures one identification round over 32
// suspects: recording the interval's sample into the correlation state and
// identifying the I/O and CPU antagonists over the trailing window.
func BenchmarkCorrelatorIdentify(b *testing.B) {
	const suspects = 32
	c := NewCorrelator(4, 0.8)
	ids := make([]string, 0, suspects)
	for i := 0; i < suspects; i++ {
		ids = append(ids, fmt.Sprintf("vm-%02d", i))
	}
	vms := make(map[string]VMSample, suspects)
	for i, id := range ids {
		vms[id] = VMSample{
			IOActive:        true,
			IOPS:            100 + float64(i),
			IOThroughputBps: (100 + float64(i)) * 4096,
			LLCMissRate:     1e6 + float64(i),
			CPI:             1.2,
			CPUUsageCores:   1,
		}
	}
	s := MakeSample(0, vms)
	// Warm up past the correlation window so every round identifies.
	for i := 0; i < 8; i++ {
		c.Record(float64(i)*5, Detection{IowaitDev: float64(i % 7), CPIDev: float64(i % 3)}, s, ids)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := float64(i+8) * 5
		c.Record(t, Detection{IowaitDev: float64(i % 7), CPIDev: float64(i % 3)}, s, ids)
		if got := len(c.IOAntagonists()) + len(c.CPUAntagonists()); got < 0 {
			b.Fatal("impossible")
		}
	}
}
