package core_test

import (
	"fmt"

	"perfcloud/internal/core"
)

// Equation 1's trajectory: a contention event cuts the cap to (1-beta);
// the cubic then recovers steeply, plateaus around the pre-decrease cap
// at T = K, and probes beyond it.
func ExampleCubic() {
	c := core.NewCubic(core.DefaultCubicConfig(), 1.0)
	c.Update(0, true) // I(t) > H: multiplicative decrease
	fmt.Printf("after decrease: %.2f (K = %.1f intervals)\n", c.Cap(), c.K())
	for t := int64(1); t <= 9; t += 4 {
		fmt.Printf("T=%d: cap %.2f (%s)\n", t, c.Update(t, false), c.Region(t))
	}
	// Output:
	// after decrease: 0.20 (K = 5.4 intervals)
	// T=1: cap 0.57 (growth)
	// T=5: cap 1.00 (plateau)
	// T=9: cap 1.23 (probing)
}

// The detector works on any Sample; here two worker VMs wait very
// differently for the disk while a third is idle — classic external
// interference.
func ExampleDetect() {
	s := core.MakeSample(0, map[string]core.VMSample{
		"worker-0": {IOActive: true, IowaitRatio: 80, CPI: 1.1},
		"worker-1": {IOActive: true, IowaitRatio: 8, CPI: 1.2},
		"worker-2": {IOActive: false},
	})
	d := core.Detect(s, []string{"worker-0", "worker-1", "worker-2"}, core.DefaultThresholds())
	fmt.Printf("iowait deviation %.0f ms/op, I/O contention: %v\n", d.IowaitDev, d.IOContention)
	// Output: iowait deviation 36 ms/op, I/O contention: true
}
