package core

import (
	"math"
	"testing"
	"testing/quick"
)

func newTestCubic(initial float64) *Cubic {
	return NewCubic(DefaultCubicConfig(), initial)
}

func TestInitialCapIsObservedUsage(t *testing.T) {
	c := newTestCubic(100)
	if c.Cap() != 100 || c.Decreased() {
		t.Errorf("cap = %v, decreased = %v", c.Cap(), c.Decreased())
	}
}

func TestMultiplicativeDecrease(t *testing.T) {
	c := newTestCubic(100)
	got := c.Update(1, true)
	if math.Abs(got-20) > 1e-9 { // (1-0.8)*100
		t.Errorf("cap after decrease = %v, want 20", got)
	}
	if c.CapMax() != 100 {
		t.Errorf("capMax = %v, want 100", c.CapMax())
	}
	if !c.Decreased() {
		t.Error("Decreased should be true")
	}
}

func TestGrowthCurvePassesThroughReducedCap(t *testing.T) {
	// At T=0 the cubic evaluates to gamma*(-K)^3 + Cmax = -beta*Cmax + Cmax
	// = (1-beta)*Cmax: exactly the reduced cap. The first growth interval
	// (T=1) must therefore sit just above it.
	c := newTestCubic(100)
	c.Update(10, true)
	after := c.Update(11, false)
	if after <= 20 || after > 30 {
		t.Errorf("first growth step = %v, want slightly above 20", after)
	}
}

func TestThreeRegions(t *testing.T) {
	c := newTestCubic(100)
	c.Update(0, true)
	k := c.K() // cbrt(100*0.8/0.005) = cbrt(16000) ~ 25.2 intervals
	if math.Abs(k-math.Cbrt(16000)) > 1e-9 {
		t.Fatalf("K = %v", k)
	}
	var caps []float64
	for i := int64(1); i <= 60; i++ {
		caps = append(caps, c.Update(i, false))
	}
	// Growth region: steep early increase.
	earlyGain := caps[4] - 20
	// Plateau: around T=K the curve is flat near Cmax.
	mid := int(k)
	plateauGain := caps[mid+2] - caps[mid-2]
	// Probing: far beyond K it accelerates past Cmax.
	lateGain := caps[55] - caps[50]
	if earlyGain < 5 {
		t.Errorf("early growth = %v, want steep", earlyGain)
	}
	if plateauGain > earlyGain/2 {
		t.Errorf("plateau gain %v should be much flatter than early %v", plateauGain, earlyGain)
	}
	if lateGain < plateauGain*3 {
		t.Errorf("probing gain %v should dwarf plateau %v", lateGain, plateauGain)
	}
	// Around T=K the cap is close to Cmax.
	if math.Abs(caps[mid-1]-100) > 10 {
		t.Errorf("cap at K = %v, want ~100", caps[mid-1])
	}
	// Region labels.
	c2 := newTestCubic(100)
	if c2.Region(5) != "probing" {
		t.Errorf("undecreased controller region = %v", c2.Region(5))
	}
	c2.Update(0, true)
	if got := c2.Region(2); got != "growth" {
		t.Errorf("region at T=2 = %v", got)
	}
	if got := c2.Region(int64(k)); got != "plateau" {
		t.Errorf("region at T=K = %v", got)
	}
	if got := c2.Region(60); got != "probing" {
		t.Errorf("region at T=60 = %v", got)
	}
}

func TestRepeatedContentionKeepsDecreasing(t *testing.T) {
	c := newTestCubic(100)
	c.Update(1, true)
	c.Update(2, true)
	if math.Abs(c.Cap()-4) > 1e-9 { // 100 * 0.2 * 0.2
		t.Errorf("cap = %v, want 4", c.Cap())
	}
	if math.Abs(c.CapMax()-20) > 1e-9 {
		t.Errorf("capMax = %v, want 20 (cap before last decrease)", c.CapMax())
	}
}

func TestMinCapFloor(t *testing.T) {
	cfg := DefaultCubicConfig()
	cfg.MinCap = 10
	c := NewCubic(cfg, 100)
	for i := int64(0); i < 20; i++ {
		c.Update(i, true)
	}
	if c.Cap() != 10 {
		t.Errorf("cap = %v, want floored at 10", c.Cap())
	}
}

func TestGrowthNeverShrinksCap(t *testing.T) {
	c := newTestCubic(100)
	c.Update(0, true)
	prev := c.Cap()
	for i := int64(1); i < 100; i++ {
		got := c.Update(i, false)
		if got < prev-1e-9 {
			t.Fatalf("cap shrank during growth: %v -> %v at %d", prev, got, i)
		}
		prev = got
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	cases := []func(){
		func() { NewCubic(CubicConfig{Beta: 0, Gamma: 0.005}, 1) },
		func() { NewCubic(CubicConfig{Beta: 1, Gamma: 0.005}, 1) },
		func() { NewCubic(CubicConfig{Beta: 0.8, Gamma: 0}, 1) },
		func() { NewCubic(DefaultCubicConfig(), 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: the cap is always positive, and a decrease always cuts to
// (1-beta) of the current value (down to the floor).
func TestPropertyCapPositiveAndDecreaseExact(t *testing.T) {
	f := func(initial uint16, pattern []bool) bool {
		init := float64(initial%1000) + 1
		c := newTestCubic(init)
		for i, contention := range pattern {
			before := c.Cap()
			got := c.Update(int64(i), contention)
			if got <= 0 {
				return false
			}
			if contention && math.Abs(got-0.2*before) > 1e-9 && got != c.cfg.MinCap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: during sustained growth the curve is monotone nondecreasing.
func TestPropertyGrowthMonotone(t *testing.T) {
	f := func(initial uint16, steps uint8) bool {
		c := newTestCubic(float64(initial%500) + 1)
		c.Update(0, true)
		prev := c.Cap()
		for i := int64(1); i < int64(steps); i++ {
			got := c.Update(i, false)
			if got < prev-1e-9 {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
