package core

import (
	"math"

	"perfcloud/internal/stats"
)

// Thresholds are the detection thresholds H from §III-C, set from the
// peak deviations observed with no resource contention: 10 (ms/op) for
// the block-iowait ratio and 1 for CPI.
type Thresholds struct {
	Iowait float64
	CPI    float64
}

// DefaultThresholds returns the paper's values.
func DefaultThresholds() Thresholds { return Thresholds{Iowait: 10, CPI: 1} }

// Detection is the detector's verdict for one high-priority application
// on one server for one interval.
type Detection struct {
	// IowaitDev is the standard deviation of the (smoothed) block-iowait
	// ratio across the application's active VMs — I(t) for I/O.
	IowaitDev float64
	// CPIDev is the standard deviation of CPI across the application's
	// VMs that retired instructions — I(t) for processor resources.
	CPIDev float64
	// MeanIowait and MeanCPI are the corresponding means, recorded for
	// the D1 ablation (absolute-threshold detection) and for traces; the
	// paper's detector never consults them.
	MeanIowait float64
	MeanCPI    float64
	// IOContention and CPUContention report I(t) > H per channel.
	IOContention  bool
	CPUContention bool
}

// Contention reports whether either channel fired.
func (d Detection) Contention() bool { return d.IOContention || d.CPUContention }

// Detect computes the deviation signals for one application's VMs from a
// sample. Only VMs with activity in the relevant dimension contribute:
// scale-out frameworks spread work evenly across workers (§III-A), so
// active workers are comparable — while a worker idle between task waves
// carries no signal and would otherwise fake a deviation.
func Detect(s Sample, appVMs []string, th Thresholds) Detection {
	// One-pass Welford moments instead of collected slices: Detect runs in
	// the monitoring hot loop, once per high-priority app per interval.
	var ratios, cpis stats.Moments
	for _, id := range appVMs {
		vs, ok := s.Get(id)
		if !ok {
			continue
		}
		if vs.IOActive {
			ratios.Add(vs.IowaitRatio)
		}
		if !math.IsNaN(vs.CPI) {
			cpis.Add(vs.CPI)
		}
	}
	d := Detection{
		IowaitDev:  ratios.StdDev(),
		CPIDev:     cpis.StdDev(),
		MeanIowait: ratios.Mean(),
		MeanCPI:    cpis.Mean(),
	}
	d.IOContention = d.IowaitDev > th.Iowait
	d.CPUContention = d.CPIDev > th.CPI
	return d
}
