// Package benchfmt is the shared schema for the repo's benchmark JSON
// artifacts (BENCH_hotloop.json, BENCH_suite.json): parsing of
// `go test -bench` result lines, stable name-keyed merging so repeated
// runs refresh rather than clobber a file, and delta formatting for
// comparing a run against a committed baseline.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement. NsPerOp is always set; BytesPerOp
// and AllocsPerOp only when the run used -benchmem. Wall-clock suite
// timings reuse the same shape with Count = 1 and NsPerOp = elapsed
// nanoseconds.
type Result struct {
	Name        string  `json:"name"`
	Count       int64   `json:"count"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// ParseLine parses one benchmark result line of the form
//
//	BenchmarkName-8   12345   987.6 ns/op   512 B/op   7 allocs/op
//
// and reports whether the line was a benchmark result at all. The
// trailing -N GOMAXPROCS suffix is stripped from the name so results
// compare against baselines recorded on machines with different core
// counts.
func ParseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	count, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: stripProcs(fields[0]), Count: count}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	return r, true
}

// stripProcs removes a trailing -N GOMAXPROCS suffix from a benchmark
// name ("BenchmarkFoo-8" -> "BenchmarkFoo"); sub-benchmark slashes and
// interior dashes are untouched.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Merge folds updates into base by benchmark name: an update replaces the
// base entry of the same name in place (keeping the file's order stable
// across runs, so diffs stay readable), and names new to base append in
// their given order.
func Merge(base, updates []Result) []Result {
	index := make(map[string]int, len(base))
	merged := make([]Result, len(base))
	copy(merged, base)
	for i, r := range merged {
		index[r.Name] = i
	}
	for _, r := range updates {
		if i, ok := index[r.Name]; ok {
			merged[i] = r
			continue
		}
		index[r.Name] = len(merged)
		merged = append(merged, r)
	}
	return merged
}

// ReadFile loads a benchmark JSON array. A missing file is not an error:
// it returns (nil, nil) so callers can treat it as an empty baseline.
func ReadFile(path string) ([]Result, error) {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(buf, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return results, nil
}

// WriteFile writes the results as an indented JSON array.
func WriteFile(path string, results []Result) error {
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Regressions compares cur against base and returns one message per
// benchmark that regressed: ns/op more than maxPct percent above the
// baseline, or an allocs/op increase (allocation regressions are never
// within tolerance — the hot loops are supposed to be zero- or
// fixed-alloc). Benchmarks absent from the baseline are ignored.
func Regressions(base, cur []Result, maxPct float64) []string {
	byName := make(map[string]Result, len(base))
	for _, r := range base {
		byName[r.Name] = r
	}
	var out []string
	for _, r := range cur {
		b, ok := byName[r.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 {
			pct := (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
			if pct > maxPct {
				out = append(out, fmt.Sprintf("%s: %.6g ns/op is %+.1f%% vs baseline %.6g (max %+.1f%%)",
					r.Name, r.NsPerOp, pct, b.NsPerOp, maxPct))
			}
		}
		if r.AllocsPerOp > b.AllocsPerOp {
			out = append(out, fmt.Sprintf("%s: %d allocs/op vs baseline %d",
				r.Name, r.AllocsPerOp, b.AllocsPerOp))
		}
	}
	return out
}

// Ratio returns ns/op(num) / ns/op(den), locating each operand as the
// first result whose name contains the given substring. It backs
// scaling gates of the form "the 10x-larger configuration may cost at
// most Kx per op": the two operands come from the same run, so the
// check is machine-independent in a way absolute-baseline gates are
// not. Errors name the missing operand or a zero denominator.
func Ratio(results []Result, num, den string) (float64, error) {
	find := func(sub string) (Result, error) {
		for _, r := range results {
			if strings.Contains(r.Name, sub) {
				return r, nil
			}
		}
		return Result{}, fmt.Errorf("no benchmark matching %q", sub)
	}
	n, err := find(num)
	if err != nil {
		return 0, err
	}
	d, err := find(den)
	if err != nil {
		return 0, err
	}
	if d.NsPerOp <= 0 {
		return 0, fmt.Errorf("%s: non-positive ns/op %g as denominator", d.Name, d.NsPerOp)
	}
	return n.NsPerOp / d.NsPerOp, nil
}

// FormatDelta renders a one-line comparison of cur against base, e.g.
//
//	BenchmarkFoo-8  1234 ns/op  (baseline 2468, -50.0%)  7 allocs/op (=)
//
// Positive percentages mean cur is slower than the baseline.
func FormatDelta(base, cur Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  %.6g ns/op", cur.Name, cur.NsPerOp)
	if base.NsPerOp > 0 {
		pct := (cur.NsPerOp - base.NsPerOp) / base.NsPerOp * 100
		fmt.Fprintf(&b, "  (baseline %.6g, %+.1f%%)", base.NsPerOp, pct)
	} else {
		b.WriteString("  (no baseline)")
	}
	if cur.AllocsPerOp == base.AllocsPerOp {
		fmt.Fprintf(&b, "  %d allocs/op (=)", cur.AllocsPerOp)
	} else {
		fmt.Fprintf(&b, "  %d allocs/op (baseline %d)", cur.AllocsPerOp, base.AllocsPerOp)
	}
	return b.String()
}
