package benchfmt

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := ParseLine("BenchmarkMonitorSample-8   12345   987.6 ns/op   512 B/op   7 allocs/op")
	if !ok {
		t.Fatal("result line not recognized")
	}
	want := Result{Name: "BenchmarkMonitorSample", Count: 12345, NsPerOp: 987.6, BytesPerOp: 512, AllocsPerOp: 7}
	if r != want {
		t.Fatalf("parsed %+v, want %+v", r, want)
	}
	// The GOMAXPROCS suffix is stripped, interior dashes are not.
	if r, _ := ParseLine("BenchmarkFoo/sub-case-16 10 5 ns/op 0 B/op 0 allocs/op"); r.Name != "BenchmarkFoo/sub-case" {
		t.Errorf("suffix strip: got %q", r.Name)
	}
	if r, _ := ParseLine("BenchmarkBare 10 5 ns/op 0 B/op 0 allocs/op"); r.Name != "BenchmarkBare" {
		t.Errorf("bare name mangled: got %q", r.Name)
	}
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tperfcloud/internal/core\t0.1s",
		"Benchmark only name",
	} {
		if _, ok := ParseLine(line); ok {
			t.Errorf("non-result line parsed as a result: %q", line)
		}
	}
}

func TestMergeKeepsOrderAndReplacesByName(t *testing.T) {
	base := []Result{{Name: "A", NsPerOp: 1}, {Name: "B", NsPerOp: 2}, {Name: "C", NsPerOp: 3}}
	updates := []Result{{Name: "C", NsPerOp: 30}, {Name: "A", NsPerOp: 10}, {Name: "D", NsPerOp: 4}}
	got := Merge(base, updates)
	want := []Result{{Name: "A", NsPerOp: 10}, {Name: "B", NsPerOp: 2}, {Name: "C", NsPerOp: 30}, {Name: "D", NsPerOp: 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged %+v, want %+v", got, want)
	}
}

func TestReadFileMissingIsEmpty(t *testing.T) {
	got, err := ReadFile(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || got != nil {
		t.Fatalf("missing file: got %v, %v; want nil, nil", got, err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	in := []Result{{Name: "A", Count: 5, NsPerOp: 1.5, BytesPerOp: 8, AllocsPerOp: 1}}
	if err := WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(path)
	if err != nil || !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: got %+v, %v", out, err)
	}
}

func TestRegressions(t *testing.T) {
	base := []Result{
		{Name: "A", NsPerOp: 1000, AllocsPerOp: 0},
		{Name: "B", NsPerOp: 2000, AllocsPerOp: 3},
		{Name: "C", NsPerOp: 500, AllocsPerOp: 1},
	}
	cur := []Result{
		{Name: "A", NsPerOp: 1040, AllocsPerOp: 0}, // +4%: within tolerance
		{Name: "B", NsPerOp: 2300, AllocsPerOp: 3}, // +15%: over
		{Name: "C", NsPerOp: 490, AllocsPerOp: 2},  // faster but allocs grew
		{Name: "D", NsPerOp: 9999, AllocsPerOp: 9}, // no baseline: ignored
	}
	got := Regressions(base, cur, 5)
	if len(got) != 2 {
		t.Fatalf("Regressions = %v, want 2 messages", got)
	}
	if !strings.Contains(got[0], "B:") || !strings.Contains(got[0], "+15.0%") {
		t.Errorf("ns/op regression message = %q", got[0])
	}
	if !strings.Contains(got[1], "C:") || !strings.Contains(got[1], "2 allocs/op") {
		t.Errorf("allocs regression message = %q", got[1])
	}
	if msgs := Regressions(base, cur[:1], 5); len(msgs) != 0 {
		t.Errorf("clean run flagged: %v", msgs)
	}
}

func TestRatio(t *testing.T) {
	results := []Result{
		{Name: "BenchmarkShardScale/servers=1024", NsPerOp: 1000},
		{Name: "BenchmarkShardScale/servers=10240", NsPerOp: 1500},
		{Name: "BenchmarkOther", NsPerOp: 0},
	}
	v, err := Ratio(results, "servers=10240", "servers=1024")
	if err != nil || v != 1.5 {
		t.Fatalf("Ratio = %v, %v, want 1.5", v, err)
	}
	// Substring match takes the first hit: "servers=1024" matches the
	// 1024 row because it precedes the 10240 row.
	if v, _ := Ratio(results, "servers=1024", "servers=1024"); v != 1 {
		t.Errorf("self ratio = %v, want 1", v)
	}
	if _, err := Ratio(results, "nope", "servers=1024"); err == nil {
		t.Error("missing numerator: want error")
	}
	if _, err := Ratio(results, "servers=10240", "nope"); err == nil {
		t.Error("missing denominator: want error")
	}
	if _, err := Ratio(results, "servers=10240", "Other"); err == nil {
		t.Error("zero denominator: want error")
	}
}
