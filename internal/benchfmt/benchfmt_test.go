package benchfmt

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := ParseLine("BenchmarkMonitorSample-8   12345   987.6 ns/op   512 B/op   7 allocs/op")
	if !ok {
		t.Fatal("result line not recognized")
	}
	want := Result{Name: "BenchmarkMonitorSample-8", Count: 12345, NsPerOp: 987.6, BytesPerOp: 512, AllocsPerOp: 7}
	if r != want {
		t.Fatalf("parsed %+v, want %+v", r, want)
	}
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tperfcloud/internal/core\t0.1s",
		"Benchmark only name",
	} {
		if _, ok := ParseLine(line); ok {
			t.Errorf("non-result line parsed as a result: %q", line)
		}
	}
}

func TestMergeKeepsOrderAndReplacesByName(t *testing.T) {
	base := []Result{{Name: "A", NsPerOp: 1}, {Name: "B", NsPerOp: 2}, {Name: "C", NsPerOp: 3}}
	updates := []Result{{Name: "C", NsPerOp: 30}, {Name: "A", NsPerOp: 10}, {Name: "D", NsPerOp: 4}}
	got := Merge(base, updates)
	want := []Result{{Name: "A", NsPerOp: 10}, {Name: "B", NsPerOp: 2}, {Name: "C", NsPerOp: 30}, {Name: "D", NsPerOp: 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged %+v, want %+v", got, want)
	}
}

func TestReadFileMissingIsEmpty(t *testing.T) {
	got, err := ReadFile(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || got != nil {
		t.Fatalf("missing file: got %v, %v; want nil, nil", got, err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	in := []Result{{Name: "A", Count: 5, NsPerOp: 1.5, BytesPerOp: 8, AllocsPerOp: 1}}
	if err := WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(path)
	if err != nil || !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: got %+v, %v", out, err)
	}
}
