package exec

import (
	"fmt"
	"testing"
	"time"
)

// ioHeavySpec is a disk-dominated task reading shared content.
func ioHeavySpec(id, key string) TaskSpec {
	return TaskSpec{
		ID:           id,
		IOBytes:      128 << 20,
		Instructions: 1e8,
		CoreCPI:      0.9,
		InputKey:     key,
	}
}

func TestSecondReaderServedFromCache(t *testing.T) {
	h := newHarness(t, 1, 2)
	// First reader cold; second launched after completion hits the cache.
	ts1 := NewTaskSet("first", []TaskSpec{ioHeavySpec("a", "input/b0")}, nil)
	h.sets = append(h.sets, ts1)
	h.runUntilDone(t, ts1, time.Minute)
	coldRT := ts1.Tasks()[0].Completed().Runtime(0)

	ts2 := NewTaskSet("second", []TaskSpec{ioHeavySpec("b", "input/b0")}, nil)
	h.sets = append(h.sets, ts2)
	h.runUntilDone(t, ts2, time.Minute)
	a2 := ts2.Tasks()[0].Completed()
	if !a2.CachedInput() {
		t.Fatal("second reader should be cache-served")
	}
	if a2.Runtime(0) >= coldRT {
		t.Errorf("cached runtime %v should beat cold %v", a2.Runtime(0), coldRT)
	}
	// Cached reads do not touch the disk: blkio counters unchanged during
	// the second run is hard to isolate here, but the attempt must not
	// have demanded I/O — its progress came entirely from the cache path.
	if a2.Progress() < 0.999 {
		t.Errorf("progress = %v", a2.Progress())
	}
}

func TestConcurrentReadersCoalesce(t *testing.T) {
	h := newHarness(t, 1, 2)
	ts := NewTaskSet("pair", []TaskSpec{
		ioHeavySpec("a", "input/b1"),
		ioHeavySpec("b", "input/b1"),
	}, nil)
	h.sets = append(h.sets, ts)
	h.eng.Run(1)
	attempts := ts.RunningAttempts()
	if len(attempts) != 2 {
		t.Fatalf("running = %d", len(attempts))
	}
	cached := 0
	for _, a := range attempts {
		if a.CachedInput() {
			cached++
		}
	}
	if cached != 1 {
		t.Errorf("cached readers = %d, want exactly the second of the pair", cached)
	}
	h.runUntilDone(t, ts, time.Minute)
}

func TestNoKeyNoCaching(t *testing.T) {
	h := newHarness(t, 1, 2)
	spec := ioHeavySpec("a", "")
	ts1 := NewTaskSet("first", []TaskSpec{spec}, nil)
	h.sets = append(h.sets, ts1)
	h.runUntilDone(t, ts1, time.Minute)
	spec.ID = "b"
	ts2 := NewTaskSet("second", []TaskSpec{spec}, nil)
	h.sets = append(h.sets, ts2)
	h.runUntilDone(t, ts2, time.Minute)
	if ts2.Tasks()[0].Completed().CachedInput() {
		t.Error("keyless tasks must not be cache-served")
	}
}

func TestCacheIsPerServer(t *testing.T) {
	// A read on one server must not warm another server's cache.
	h := newHarnessServers(t, 2, 1, 2)
	key := "input/bX"
	servers := h.clus.Servers()
	servers[0].Cache().Put(key, 1000, 0)
	if !servers[0].Cache().Has(key, 1) {
		t.Fatal("own cache should hit")
	}
	if servers[1].Cache().Has(key, 1) {
		t.Fatal("other server's cache must miss")
	}
}

func TestSpreadAcrossServers(t *testing.T) {
	// Pool spanning 3 servers, 2 VMs each: six fresh tasks must land one
	// per VM with server counts balanced 2/2/2.
	h := newHarnessServers(t, 3, 2, 2)
	specs := make([]TaskSpec, 6)
	for i := range specs {
		specs[i] = smallSpec(fmt.Sprintf("t%d", i))
	}
	ts := NewTaskSet("spread", specs, nil)
	h.sets = append(h.sets, ts)
	h.eng.Run(1)
	perServer := map[string]int{}
	for _, a := range ts.RunningAttempts() {
		perServer[a.Executor().VM().Server().ID()]++
	}
	for srv, n := range perServer {
		if n != 2 {
			t.Errorf("server %s runs %d attempts, want 2 (spread)", srv, n)
		}
	}
	if len(perServer) != 3 {
		t.Errorf("attempts on %d servers, want 3", len(perServer))
	}
}
