package exec

import (
	"fmt"
	"testing"
	"time"

	"perfcloud/internal/cluster"
	"perfcloud/internal/sim"
)

// harness wires an engine, a cluster with one server, n executor VMs and
// a task-set driver registered before the resource pipeline.
type harness struct {
	eng  *sim.Engine
	clus *cluster.Cluster
	pool Pool
	sets []*TaskSet
}

func newHarness(t *testing.T, nVMs, slots int) *harness {
	return newHarnessServers(t, 1, nVMs, slots)
}

// newHarnessServers builds a harness with VMs spread over several servers.
func newHarnessServers(t *testing.T, nServers, vmsPerServer, slots int) *harness {
	t.Helper()
	h := &harness{}
	h.eng = sim.NewEngine(100*time.Millisecond, 42)
	h.clus = cluster.New()
	for s := 0; s < nServers; s++ {
		srv := h.clus.AddServer(fmt.Sprintf("s%d", s), cluster.DefaultServerConfig(), h.eng.RNG())
		for i := 0; i < vmsPerServer; i++ {
			vm := h.clus.AddVM(srv, fmt.Sprintf("vm-%d-%d", s, i), 2, 8<<30, cluster.HighPriority, "app")
			h.pool = append(h.pool, NewExecutor(vm, slots))
		}
	}
	h.eng.RegisterPriority(sim.TickFunc(func(c *sim.Clock) {
		now := c.Seconds()
		for _, e := range h.pool {
			e.SyncClock(now)
		}
		for _, ts := range h.sets {
			ts.Tick(now, h.pool)
		}
	}), -1)
	h.eng.RegisterPriority(h.clus, 0)
	return h
}

func (h *harness) runUntilDone(t *testing.T, ts *TaskSet, limit time.Duration) {
	t.Helper()
	if !h.eng.RunUntil(ts.Done, limit) {
		t.Fatalf("task set %q did not finish within %v", ts.Name(), limit)
	}
}

// smallSpec is a task with modest IO and compute: ~64 MiB read and
// ~2.3e9 instructions (1 core-second at CPI 1).
func smallSpec(id string) TaskSpec {
	return TaskSpec{
		ID:              id,
		IOBytes:         64 << 20,
		Instructions:    2.3e9,
		CoreCPI:         0.9,
		LLCRefsPerInstr: 0.02,
		BytesPerInstr:   0.3,
		WorkingSetBytes: 100 << 20,
	}
}

func TestSingleTaskCompletes(t *testing.T) {
	h := newHarness(t, 1, 2)
	ts := NewTaskSet("maps", []TaskSpec{smallSpec("t0")}, nil)
	h.sets = append(h.sets, ts)
	h.runUntilDone(t, ts, time.Minute)

	task := ts.Tasks()[0]
	if !task.Done() || task.Completed() == nil {
		t.Fatal("task should be done with a winning attempt")
	}
	a := task.Completed()
	if a.State() != AttemptCompleted || a.Progress() < 0.999 {
		t.Errorf("attempt state=%v progress=%v", a.State(), a.Progress())
	}
	if a.Runtime(0) <= 0 {
		t.Errorf("runtime = %v", a.Runtime(0))
	}
	// IO-bound lower bound: 64 MiB at 150 MB/s is ~0.45 s minimum.
	if rt := a.Runtime(0); rt < 0.4 {
		t.Errorf("runtime = %v, implausibly fast", rt)
	}
}

func TestPureComputeAndEmptyTasks(t *testing.T) {
	h := newHarness(t, 1, 2)
	ts := NewTaskSet("mixed", []TaskSpec{
		{ID: "compute", Instructions: 2.3e9, CoreCPI: 1},
		{ID: "empty"},
	}, nil)
	h.sets = append(h.sets, ts)
	h.runUntilDone(t, ts, time.Minute)
	for _, task := range ts.Tasks() {
		if !task.Done() {
			t.Errorf("task %s not done", task.Spec().ID)
		}
	}
}

func TestSlotsBoundConcurrency(t *testing.T) {
	h := newHarness(t, 1, 2)
	specs := make([]TaskSpec, 6)
	for i := range specs {
		specs[i] = smallSpec(fmt.Sprintf("t%d", i))
	}
	ts := NewTaskSet("maps", specs, nil)
	h.sets = append(h.sets, ts)
	h.eng.Run(3)
	if got := len(ts.RunningAttempts()); got != 2 {
		t.Errorf("running = %d, want 2 (slot bound)", got)
	}
	h.runUntilDone(t, ts, 5*time.Minute)
}

func TestLocalityPreference(t *testing.T) {
	h := newHarness(t, 4, 2)
	spec := smallSpec("t0")
	spec.PreferredVMs = []string{"vm-0-2"}
	ts := NewTaskSet("maps", []TaskSpec{spec}, nil)
	h.sets = append(h.sets, ts)
	h.eng.Run(2)
	run := ts.RunningAttempts()
	if len(run) != 1 || run[0].Executor().VM().ID() != "vm-0-2" {
		t.Errorf("attempt placed on %v, want vm-2", run[0].Executor().VM().ID())
	}
}

func TestWorkSpreadsAcrossExecutors(t *testing.T) {
	h := newHarness(t, 3, 2)
	specs := make([]TaskSpec, 6)
	for i := range specs {
		specs[i] = smallSpec(fmt.Sprintf("t%d", i))
	}
	ts := NewTaskSet("maps", specs, nil)
	h.sets = append(h.sets, ts)
	h.eng.Run(2)
	for _, e := range h.pool {
		if len(e.Running()) != 2 {
			t.Errorf("executor %s runs %d, want even spread of 2", e.Name(), len(e.Running()))
		}
	}
}

// fixedSpeculator always proposes the given tasks.
type fixedSpeculator struct{ tasks []*Task }

func (f *fixedSpeculator) Candidates(ts *TaskSet, now float64) []*Task { return f.tasks }

func TestSpeculativeCopyAndSiblingKill(t *testing.T) {
	h := newHarness(t, 2, 2)
	spec := &fixedSpeculator{}
	ts := NewTaskSet("maps", []TaskSpec{smallSpec("t0")}, spec)
	h.sets = append(h.sets, ts)
	h.eng.Run(2)
	task := ts.Tasks()[0]
	spec.tasks = []*Task{task}
	h.eng.Run(2)

	attempts := task.Attempts()
	if len(attempts) != 2 {
		t.Fatalf("attempts = %d, want original + speculative", len(attempts))
	}
	if !attempts[1].Speculative() {
		t.Error("second attempt should be speculative")
	}
	// The copy must land on the other executor.
	if attempts[0].Executor() == attempts[1].Executor() {
		t.Error("speculative copy placed on same executor")
	}
	h.runUntilDone(t, ts, time.Minute)
	// One attempt wins; the other is killed.
	winner := task.Completed()
	var killed int
	for _, a := range task.Attempts() {
		if a != winner && a.State() == AttemptKilled {
			killed++
		}
	}
	if winner == nil || killed != 1 {
		t.Errorf("winner=%v killed=%d", winner, killed)
	}
	acc := ts.Account(h.eng.Clock().Seconds())
	if acc.Efficiency() >= 1 {
		t.Errorf("efficiency = %v, want < 1 with a killed attempt", acc.Efficiency())
	}
	if acc.SuccessfulSeconds <= 0 || acc.TotalSeconds <= acc.SuccessfulSeconds {
		t.Errorf("accounting = %+v", acc)
	}
}

func TestKillTaskSet(t *testing.T) {
	h := newHarness(t, 1, 2)
	ts := NewTaskSet("maps", []TaskSpec{smallSpec("a"), smallSpec("b"), smallSpec("c")}, nil)
	h.sets = append(h.sets, ts)
	h.eng.Run(3)
	ts.Kill(h.eng.Clock().Seconds())
	if !ts.Done() || !ts.Killed() {
		t.Fatal("killed set should be done")
	}
	if n := len(ts.RunningAttempts()); n != 0 {
		t.Errorf("running after kill = %d", n)
	}
	for _, e := range h.pool {
		if e.FreeSlots() != 2 {
			t.Errorf("slots not freed: %d", e.FreeSlots())
		}
	}
	// Killing twice is safe; ticking a killed set is a no-op.
	ts.Kill(99)
	ts.Tick(100, h.pool)
}

func TestProgressAndRate(t *testing.T) {
	h := newHarness(t, 1, 1)
	ts := NewTaskSet("maps", []TaskSpec{smallSpec("t0")}, nil)
	h.sets = append(h.sets, ts)
	h.eng.Run(1)
	a := ts.Tasks()[0].Attempts()[0]
	if p := a.Progress(); p <= 0 || p >= 1 {
		t.Errorf("early progress = %v, want in (0,1)", p)
	}
	if r := a.ProgressRate(0.5); r != 0 {
		t.Errorf("rate before 1s = %v, want 0", r)
	}
	h.eng.RunFor(2 * time.Second)
	if r := a.ProgressRate(h.eng.Clock().Seconds()); r <= 0 {
		t.Errorf("rate = %v, want > 0", r)
	}
}

func TestInstructionProgressGatedByIO(t *testing.T) {
	h := newHarness(t, 1, 1)
	// Huge IO, tiny compute: even though CPU is plentiful, instructions
	// cannot finish before the input is read.
	spec := TaskSpec{ID: "t0", IOBytes: 150e6, Instructions: 1e6, CoreCPI: 1, MaxIORate: 150e6}
	ts := NewTaskSet("maps", []TaskSpec{spec}, nil)
	h.sets = append(h.sets, ts)
	h.eng.Run(3) // 0.3 s: at most ~30% of input read
	a := ts.Tasks()[0].Attempts()[0]
	if a.instrDone >= spec.Instructions {
		t.Error("instructions finished before input was read")
	}
	h.runUntilDone(t, ts, time.Minute)
}

func TestExecutorPanicsWithoutSlots(t *testing.T) {
	h := newHarness(t, 1, 1)
	ts := NewTaskSet("maps", []TaskSpec{smallSpec("a")}, nil)
	h.sets = append(h.sets, ts)
	h.eng.Run(1)
	defer func() {
		if recover() == nil {
			t.Error("want panic launching on full executor")
		}
	}()
	h.pool[0].launch(NewTask(smallSpec("b")), 0, false)
}

func TestNewExecutorPanicsOnZeroSlots(t *testing.T) {
	h := newHarness(t, 1, 1)
	vm := h.clus.AddVM(h.clus.Servers()[0], "extra", 2, 1<<30, cluster.LowPriority, "")
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewExecutor(vm, 0)
}

func TestAccountingEmptySet(t *testing.T) {
	ts := NewTaskSet("empty", nil, nil)
	if !ts.Done() {
		t.Error("empty set should be done")
	}
	if eff := ts.Account(0).Efficiency(); eff != 1 {
		t.Errorf("empty efficiency = %v, want 1", eff)
	}
}

func TestContentionSlowsTask(t *testing.T) {
	runtime := func(withHog bool) float64 {
		eng := sim.NewEngine(100*time.Millisecond, 42)
		clus := cluster.New()
		srv := clus.AddServer("s0", cluster.DefaultServerConfig(), eng.RNG())
		vm := clus.AddVM(srv, "worker", 2, 8<<30, cluster.HighPriority, "app")
		e := NewExecutor(vm, 2)
		pool := Pool{e}
		// I/O-bound task: ~150 MB to read, negligible compute.
		ioSpec := TaskSpec{ID: "t0", IOBytes: 150e6, Instructions: 2.3e8,
			CoreCPI: 0.9, LLCRefsPerInstr: 0.02, BytesPerInstr: 0.3, WorkingSetBytes: 100 << 20}
		ts := NewTaskSet("maps", []TaskSpec{ioSpec}, nil)
		if withHog {
			hogVM := clus.AddVM(srv, "hog", 2, 8<<30, cluster.LowPriority, "")
			hogVM.SetWorkload(&hogWorkload{})
		}
		eng.RegisterPriority(sim.TickFunc(func(c *sim.Clock) {
			e.SyncClock(c.Seconds())
			ts.Tick(c.Seconds(), pool)
		}), -1)
		eng.Register(clus)
		if !eng.RunUntil(ts.Done, 10*time.Minute) {
			panic("did not finish")
		}
		return ts.Tasks()[0].Completed().Runtime(0)
	}
	alone := runtime(false)
	contended := runtime(true)
	if contended < alone*1.5 {
		t.Errorf("alone=%v contended=%v, want >= 1.5x slowdown", alone, contended)
	}
}

// hogWorkload saturates the disk.
type hogWorkload struct{}

func (h *hogWorkload) Name() string { return "hog" }
func (h *hogWorkload) Demand(tickSec float64) cluster.Demand {
	return cluster.Demand{
		CPUSeconds: 0.4 * tickSec, IOOps: 8000 * tickSec, IOBytes: 8000 * 4096 * tickSec,
		CoreCPI: 1.2, LLCRefsPerInstr: 0.005, BytesPerInstr: 0.05, WorkingSetBytes: 4 << 20,
	}
}
func (h *hogWorkload) Advance(tickSec float64, g cluster.Grant) {}
func (h *hogWorkload) Done() bool                               { return false }
