// Package exec is the task-execution substrate shared by the MapReduce
// and Spark framework simulators: fluid-model tasks, attempts, per-VM
// executors (cluster.Workloads that turn granted resources into task
// progress), and TaskSets — groups of tasks scheduled onto a pool of
// executors with locality preference, straggler re-execution hooks and
// the kill accounting the paper's resource-efficiency metric needs.
//
// A task is modelled as two coupled amounts of work: bytes of block I/O
// and instructions to retire. Instruction progress is gated by I/O
// progress (a map task cannot process records it has not read), so disk
// contention slows I/O-bound tasks while memory contention (via inflated
// CPI reducing instructions per granted cycle) slows compute-bound ones —
// the two interference channels PerfCloud detects.
package exec

import (
	"fmt"
	"math"
	"sort"

	"perfcloud/internal/cluster"
	"perfcloud/internal/trace"
)

// TaskSpec is the immutable description of one task's work and shape.
type TaskSpec struct {
	ID           string
	IOBytes      float64 // block input (or shuffle) bytes to read
	OpBytes      float64 // I/O granularity; 0 defaults to 256 KiB
	Instructions float64 // instructions to retire
	MaxIORate    float64 // single-stream read rate limit, bytes/s; 0 = 150 MB/s

	// InputKey identifies the task's input content (e.g. "file/b007").
	// Attempts launched on a server whose page cache holds the key read
	// from memory instead of the shared disk; completing a cold read
	// warms the cache. Empty disables caching (shuffle and spill data is
	// attempt-private).
	InputKey string

	// Memory behaviour while executing (see memsys.Request).
	CoreCPI         float64
	LLCRefsPerInstr float64
	BytesPerInstr   float64
	WorkingSetBytes float64

	// PreferredVMs lists VM ids holding a local replica of the input;
	// the scheduler prefers them (HDFS locality).
	PreferredVMs []string
}

const (
	defaultOpBytes   = 256 << 10
	defaultMaxIORate = 150e6
	workEpsilon      = 1e-6
)

// AttemptState tracks an attempt's lifecycle.
type AttemptState int

const (
	// AttemptRunning means the attempt occupies an executor slot.
	AttemptRunning AttemptState = iota
	// AttemptCompleted means the attempt finished all its work.
	AttemptCompleted
	// AttemptKilled means the attempt was terminated (sibling finished
	// first, or its job was killed); its runtime counts as waste.
	AttemptKilled
)

// Attempt is one execution of a task on one executor.
type Attempt struct {
	task *Task
	// spec is a copy of task.spec, taken at launch. Task specs are
	// immutable once built, and the progress loops read spec fields next
	// to bytesDone/instrDone every tick — the copy keeps those reads in
	// the attempt's own allocation instead of chasing the task pointer.
	spec        TaskSpec
	executor    *Executor
	speculative bool
	state       AttemptState

	startSec float64
	endSec   float64

	bytesDone   float64
	instrDone   float64
	cachedInput bool

	// span is the attempt's trace span (trace.NoSpan when tracing is
	// off); slot is the executor slot index it occupies, tracked only
	// while a tracer is attached (slot names are Perfetto tracks).
	span trace.SpanID
	slot int
}

// CachedInput reports whether the attempt's input was served from the
// host page cache rather than the shared disk.
func (a *Attempt) CachedInput() bool { return a.cachedInput }

// Task returns the attempt's logical task.
func (a *Attempt) Task() *Task { return a.task }

// Executor returns the executor running (or that ran) the attempt.
func (a *Attempt) Executor() *Executor { return a.executor }

// Speculative reports whether this is a speculative (backup) copy.
func (a *Attempt) Speculative() bool { return a.speculative }

// State returns the attempt's lifecycle state.
func (a *Attempt) State() AttemptState { return a.state }

// Progress returns completion in [0, 1]: the average of the I/O and
// compute fractions over the dimensions the task actually has.
func (a *Attempt) Progress() float64 {
	s := &a.spec
	var sum, n float64
	if s.IOBytes > 0 {
		sum += math.Min(1, a.bytesDone/s.IOBytes)
		n++
	}
	if s.Instructions > 0 {
		sum += math.Min(1, a.instrDone/s.Instructions)
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / n
}

// ProgressRate returns progress per second since launch — the quantity
// LATE ranks stragglers by. It is 0 in the attempt's launch second.
func (a *Attempt) ProgressRate(nowSec float64) float64 {
	el := nowSec - a.startSec
	if el < 1 {
		return 0
	}
	return a.Progress() / el
}

// Runtime returns the attempt's elapsed runtime in seconds; for running
// attempts it is measured up to nowSec.
func (a *Attempt) Runtime(nowSec float64) float64 {
	if a.state == AttemptRunning {
		return nowSec - a.startSec
	}
	return a.endSec - a.startSec
}

// StartSec returns the attempt's launch time.
func (a *Attempt) StartSec() float64 { return a.startSec }

// done reports whether both work dimensions are exhausted.
func (a *Attempt) done() bool {
	s := &a.spec
	return a.bytesDone >= s.IOBytes-workEpsilon && a.instrDone >= s.Instructions-workEpsilon
}

// Span returns the attempt's trace span id (trace.NoSpan when tracing
// is off).
func (a *Attempt) Span() trace.SpanID { return a.span }

// Task is a logical unit of work; it completes when any attempt does.
type Task struct {
	spec      TaskSpec
	attempts  []*Attempt
	completed *Attempt
	span      trace.SpanID
}

// NewTask creates a task from a spec.
func NewTask(spec TaskSpec) *Task { return &Task{spec: spec, span: trace.NoSpan} }

// Spec returns the task's specification.
func (t *Task) Spec() TaskSpec { return t.spec }

// Attempts returns all attempts launched for the task. It copies; use
// EachAttempt on per-tick paths.
func (t *Task) Attempts() []*Attempt { return append([]*Attempt(nil), t.attempts...) }

// EachAttempt calls fn for every attempt of the task in launch order,
// without copying the backing slice — the iteration per-tick callers
// (speculators, accounting) should use.
func (t *Task) EachAttempt(fn func(*Attempt)) {
	for _, a := range t.attempts {
		fn(a)
	}
}

// Completed returns the winning attempt, or nil while unfinished.
func (t *Task) Completed() *Attempt { return t.completed }

// Done reports whether some attempt completed the task.
func (t *Task) Done() bool { return t.completed != nil }

// Running returns the task's currently running attempts.
func (t *Task) Running() []*Attempt {
	var out []*Attempt
	for _, a := range t.attempts {
		if a.state == AttemptRunning {
			out = append(out, a)
		}
	}
	return out
}

// Executor runs task attempts inside one VM; it implements
// cluster.Workload. Slots bound concurrent attempts (the paper's VMs run
// two task slots on their two vcpus).
type Executor struct {
	vm      *cluster.VM
	slots   int
	running []*Attempt

	// lastNow tracks elapsed simulated time as observed through Advance,
	// so attempt end times can be stamped without threading the clock
	// through cluster.Workload.
	lastNow float64

	// epoch implements cluster.DemandEpocher: it advances whenever the
	// next Demand call could return something different — an attempt
	// launched, removed or retired, or a surviving attempt whose per-tick
	// demand components moved (I/O taper near completion, the instruction
	// gate opening or closing). While it holds still, a fluid-model task
	// mix demands at constant rates and the server may reuse its cached
	// request vectors.
	epoch uint64

	// Reused per-Advance scratch; an executor is advanced by exactly one
	// goroutine per tick, so plain fields suffice. While demandValid holds
	// and the epoch and tick length are unchanged, ios/cpus and their sums
	// still describe the running set (the end-of-Advance drift check proved
	// it), so the next Advance skips recomputing them.
	ios         []float64
	cpus        []float64
	totIO       float64
	totCPU      float64
	demandValid bool
	demandEpoch uint64
	demandTick  float64

	// Data-plane tracing (nil = off, the hot-path default: Advance then
	// pays a single pointer comparison). perSlot/tracks are slot-indexed
	// occupancy and precomputed Perfetto track names, maintained only
	// while a tracer is attached.
	tracer  *trace.Tracer
	perSlot []*Attempt
	tracks  []string
}

var _ cluster.Workload = (*Executor)(nil)

// NewExecutor creates an executor bound to a VM and attaches it as the
// VM's workload.
func NewExecutor(vm *cluster.VM, slots int) *Executor {
	if slots <= 0 {
		panic("exec: executor needs at least one slot")
	}
	e := &Executor{vm: vm, slots: slots}
	vm.SetWorkload(e)
	return e
}

// VM returns the executor's VM.
func (e *Executor) VM() *cluster.VM { return e.vm }

// SyncClock aligns the executor's internal time with the engine clock.
// Frameworks call it every tick before scheduling, so attempt end times
// stamped inside Advance agree with engine time even for executors
// created mid-simulation.
func (e *Executor) SyncClock(nowSec float64) { e.lastNow = nowSec }

// Name implements cluster.Workload.
func (e *Executor) Name() string { return "executor/" + e.vm.ID() }

// DemandEpoch implements cluster.DemandEpocher.
func (e *Executor) DemandEpoch() uint64 { return e.epoch }

// FreeSlots returns the number of unoccupied task slots.
func (e *Executor) FreeSlots() int { return e.slots - len(e.running) }

// Running returns the attempts currently occupying slots. It copies;
// use EachRunning on per-tick paths.
func (e *Executor) Running() []*Attempt { return append([]*Attempt(nil), e.running...) }

// EachRunning calls fn for every running attempt in launch order,
// without copying the backing slice.
func (e *Executor) EachRunning(fn func(*Attempt)) {
	for _, a := range e.running {
		fn(a)
	}
}

// SetTracer attaches (or, with nil, detaches) a data-plane span tracer.
// Attach before the first launch: attempts already running are not
// retrofitted with slots or spans. With a tracer attached, Advance
// attributes every attempt-tick to a trace.Phase and launches open
// attempt spans on per-slot tracks named "<vm-id>/slot<i>".
func (e *Executor) SetTracer(tr *trace.Tracer) {
	e.tracer = tr
	e.perSlot = nil
	e.tracks = nil
	if tr == nil {
		return
	}
	e.perSlot = make([]*Attempt, e.slots)
	e.tracks = make([]string, e.slots)
	for i := range e.tracks {
		e.tracks[i] = fmt.Sprintf("%s/slot%d", e.vm.ID(), i)
	}
}

// Tracer returns the attached tracer (nil when tracing is off).
func (e *Executor) Tracer() *trace.Tracer { return e.tracer }

// RunsTask reports whether some running attempt belongs to the task.
func (e *Executor) RunsTask(t *Task) bool {
	for _, a := range e.running {
		if a.task == t {
			return true
		}
	}
	return false
}

// launch places a new attempt of t on this executor.
func (e *Executor) launch(t *Task, nowSec float64, speculative bool) *Attempt {
	if e.FreeSlots() <= 0 {
		panic(fmt.Sprintf("exec: no free slot on %s", e.Name()))
	}
	a := &Attempt{task: t, spec: t.spec, executor: e, speculative: speculative, startSec: nowSec, span: trace.NoSpan}
	if key := t.spec.InputKey; key != "" {
		cache := e.vm.Server().Cache()
		if cache.Has(key, nowSec) {
			a.cachedInput = true
		} else {
			// Register the in-flight read: a concurrent or later reader of
			// the same content on this host coalesces with it (page-cache
			// readahead serves the second reader as pages arrive).
			cache.Put(key, t.spec.IOBytes, nowSec)
		}
	}
	t.attempts = append(t.attempts, a)
	e.running = append(e.running, a)
	e.epoch++
	if tr := e.tracer; tr != nil {
		for i, occ := range e.perSlot {
			if occ == nil {
				a.slot = i
				e.perSlot[i] = a
				break
			}
		}
		tr.FirstLaunch(t.span, nowSec)
		a.span = tr.Start(trace.KindAttempt, t.spec.ID, e.tracks[a.slot], t.span, nowSec)
		if speculative {
			tr.MarkSpeculative(a.span)
		}
		if a.cachedInput {
			// The cache hit saved roughly a full disk stream of the input.
			rate := t.spec.MaxIORate
			if rate == 0 {
				rate = defaultMaxIORate
			}
			tr.MarkCachedInput(a.span, t.spec.IOBytes/rate)
		}
	}
	return a
}

// remove drops an attempt from the running list.
func (e *Executor) remove(a *Attempt) {
	for i, r := range e.running {
		if r == a {
			e.running = append(e.running[:i], e.running[i+1:]...)
			e.epoch++
			if e.perSlot != nil {
				e.perSlot[a.slot] = nil
			}
			return
		}
	}
}

// cacheReadRate is the rate at which a page-cache-resident input is
// consumed (memory copy, far above disk streaming speed).
const cacheReadRate = 1e9

// attemptDemand returns one attempt's per-tick demand components. A
// cache-served input places no demand on the shared disk.
func attemptDemand(a *Attempt, tickSec float64) (ioBytes, cpuSec float64) {
	s := &a.spec
	if !a.cachedInput {
		rate := s.MaxIORate
		if rate == 0 {
			rate = defaultMaxIORate
		}
		// Inlined min(max(0, remaining), rate*tickSec): branches are
		// measurably cheaper than math.Min/Max on this hot path and agree
		// with them for every non-NaN input that reaches here.
		ioBytes = s.IOBytes - a.bytesDone
		if ioBytes <= 0 {
			ioBytes = 0
		} else if cap := rate * tickSec; ioBytes > cap {
			ioBytes = cap
		}
	}
	if s.Instructions-a.instrDone > workEpsilon {
		cpuSec = tickSec // one core per slot
	}
	return ioBytes, cpuSec
}

// Demand implements cluster.Workload: the sum of the running attempts'
// demands, with demand-weighted memory behaviour.
func (e *Executor) Demand(tickSec float64) cluster.Demand {
	var d cluster.Demand
	var wsum float64
	for _, a := range e.running {
		s := &a.spec
		ioBytes, cpuSec := attemptDemand(a, tickSec)
		op := s.OpBytes
		if op == 0 {
			op = defaultOpBytes
		}
		d.IOBytes += ioBytes
		d.IOOps += ioBytes / op
		d.CPUSeconds += cpuSec
		w := cpuSec + ioBytes/defaultMaxIORate // rough weight
		if w == 0 {
			continue
		}
		d.CoreCPI += w * s.CoreCPI
		d.LLCRefsPerInstr += w * s.LLCRefsPerInstr
		d.BytesPerInstr += w * s.BytesPerInstr
		d.WorkingSetBytes += w * s.WorkingSetBytes
		wsum += w
	}
	if wsum > 0 {
		d.CoreCPI /= wsum
		d.LLCRefsPerInstr /= wsum
		d.BytesPerInstr /= wsum
		d.WorkingSetBytes /= wsum
	}
	if d.CPUSeconds > 0 && d.CoreCPI == 0 {
		d.CoreCPI = 1
	}
	return d
}

// Advance implements cluster.Workload: split the VM's grant across the
// running attempts in proportion to their demands, gate instruction
// progress on I/O progress, and retire finished attempts.
func (e *Executor) Advance(tickSec float64, g cluster.Grant) {
	if len(e.running) == 0 && e.tracer == nil {
		// No attempts: demand is identically zero, nothing can progress or
		// retire, so the tick reduces to clock and cache bookkeeping. (The
		// general path below reaches the same state; this skips its loop
		// setup for the common idle-executor case.)
		e.lastNow += tickSec
		if !e.demandValid || e.demandEpoch != e.epoch || e.demandTick != tickSec {
			e.ios, e.cpus = e.ios[:0], e.cpus[:0]
			e.totIO, e.totCPU = 0, 0
			e.demandValid, e.demandEpoch, e.demandTick = true, e.epoch, tickSec
		}
		return
	}
	epochAtEntry := e.epoch
	if !e.demandValid || e.demandEpoch != e.epoch || e.demandTick != tickSec {
		var totIO, totCPU float64
		e.ios = e.ios[:0]
		e.cpus = e.cpus[:0]
		for _, a := range e.running {
			io, cpu := attemptDemand(a, tickSec)
			e.ios = append(e.ios, io)
			e.cpus = append(e.cpus, cpu)
			totIO += io
			totCPU += cpu
		}
		e.totIO, e.totCPU = totIO, totCPU
	}
	ios, cpus := e.ios, e.cpus
	totIO, totCPU := e.totIO, e.totCPU
	// Tracing: read the cgroup throttle state once per tick (not per
	// attempt); a VM-wide blkio cap reclassifies disk wait as
	// control-plane-induced.
	tr := e.tracer
	ioCapped := false
	if tr != nil {
		th := e.vm.Cgroup().Throttle()
		ioCapped = th.ReadIOPS > 0 || th.ReadBPS > 0
	}
	for i, a := range e.running {
		s := &a.spec
		if tr != nil {
			e.attribute(tr, a, i, tickSec, g, totCPU, ioCapped)
		}
		if a.cachedInput {
			read := s.IOBytes - a.bytesDone
			if read <= 0 {
				read = 0
			} else if cap := cacheReadRate * tickSec; read > cap {
				read = cap
			}
			a.bytesDone += read
		} else if totIO > 0 {
			a.bytesDone += g.IOBytes * ios[i] / totIO
		}
		if totCPU > 0 && s.Instructions > 0 {
			instr := g.Instructions * cpus[i] / totCPU
			// Instruction progress cannot outrun the fraction of input read.
			allowed := s.Instructions - a.instrDone
			if s.IOBytes > 0 {
				frac := a.bytesDone / s.IOBytes
				if frac > 1 {
					frac = 1
				}
				if gated := s.Instructions*frac - a.instrDone; gated < allowed {
					allowed = gated
				}
			}
			if allowed < 0 {
				allowed = 0
			}
			if instr > allowed {
				instr = allowed
			}
			a.instrDone += instr
		}
	}
	// Retire completed attempts after the whole tick is applied, filtering
	// in place to keep the backing array. The same pass re-derives each
	// survivor's demand: the next tick's demand differs from this one's
	// when the running set shrank or a survivor's components moved off the
	// values captured before progress was applied (ios/cpus stay
	// index-aligned with survivors while nothing has retired, which is the
	// only case where the drift comparison is consulted).
	nRan := len(e.running)
	endSec := e.lastNow + tickSec
	retired := 0
	drift := false
	for i, a := range e.running {
		if a.done() {
			a.state = AttemptCompleted
			a.endSec = endSec
			if tr != nil {
				tr.End(a.span, endSec)
				e.perSlot[a.slot] = nil
			}
			retired++
			continue
		}
		if retired > 0 {
			// Shift survivors left over the retired slots; until the first
			// retirement the slice is untouched, so the steady case does no
			// pointer writes (and takes no GC write barriers).
			e.running[i-retired] = a
		} else if !drift {
			io, cpu := attemptDemand(a, tickSec)
			drift = io != ios[i] || cpu != cpus[i]
		}
	}
	if retired > 0 {
		for i := nRan - retired; i < nRan; i++ {
			e.running[i] = nil // drop references so completed attempts can be GC'd
		}
		e.running = e.running[:nRan-retired]
	}
	e.lastNow = endSec

	if retired > 0 || drift {
		e.epoch++
		e.demandValid = false
		return
	}
	// Nothing retired and no component drifted: next tick's demand loop
	// would recompute exactly ios/cpus, so mark them reusable. Any launch
	// or kill in between moves the epoch and invalidates the claim.
	e.demandValid = e.epoch == epochAtEntry
	e.demandEpoch = e.epoch
	e.demandTick = tickSec
}

// attribute splits one attempt's tick across the trace phases, reading
// only pre-progress state (the captured demand vectors and the byte
// counter before this tick's update), so attribution never perturbs the
// simulation. The buckets partition tickSec exactly: on-core time at the
// baseline CPI is PhaseCPU, the CPI-inflation remainder is
// PhaseCPIStall, and off-core time is disk wait (split by cgroup cap
// state), cache streaming, or idle.
func (e *Executor) attribute(tr *trace.Tracer, a *Attempt, i int, tickSec float64, g cluster.Grant, totCPU float64, ioCapped bool) {
	s := &a.spec
	var cpuSec float64
	if totCPU > 0 && e.cpus[i] > 0 {
		cpuSec = g.CPUSeconds * e.cpus[i] / totCPU
		if cpuSec > tickSec {
			cpuSec = tickSec
		}
	}
	base := cpuSec
	if bc := s.CoreCPI; bc > 0 && g.CPI > bc {
		// Of the granted core time, only the CoreCPI/CPI fraction retires
		// instructions at the solo rate; the rest is interference stall.
		base = cpuSec * bc / g.CPI
	}
	tr.AddPhase(a.span, trace.PhaseCPU, base)
	tr.AddPhase(a.span, trace.PhaseCPIStall, cpuSec-base)
	rem := tickSec - cpuSec
	if rem <= 0 {
		return
	}
	switch {
	case e.ios[i] > 0 && ioCapped:
		tr.AddPhase(a.span, trace.PhaseDiskThrottled, rem)
	case e.ios[i] > 0:
		tr.AddPhase(a.span, trace.PhaseDiskWait, rem)
	case a.cachedInput && s.IOBytes-a.bytesDone > workEpsilon:
		tr.AddPhase(a.span, trace.PhaseCacheRead, rem)
	default:
		tr.AddPhase(a.span, trace.PhaseIdle, rem)
	}
}

// Done implements cluster.Workload; executors are persistent services.
func (e *Executor) Done() bool { return false }

// Pool is an ordered set of executors used by a TaskSet scheduler.
type Pool []*Executor

// FreeSlots returns the total free slots across the pool.
func (p Pool) FreeSlots() int {
	n := 0
	for _, e := range p {
		n += e.FreeSlots()
	}
	return n
}

// byID returns the executor whose VM has the given id, or nil.
func (p Pool) byID(id string) *Executor {
	for _, e := range p {
		if e.vm.ID() == id {
			return e
		}
	}
	return nil
}

// Speculator decides which tasks deserve a speculative (backup) attempt.
// Implementations live in the straggler package (LATE and a naive
// threshold speculator); a nil Speculator disables speculation.
type Speculator interface {
	// Candidates returns tasks worth backing up, most urgent first.
	Candidates(ts *TaskSet, nowSec float64) []*Task
}

// TaskSet is a schedulable group of tasks (a map wave, a reduce wave, or
// a Spark stage). It launches pending tasks onto free slots with locality
// preference, collects completions, kills redundant sibling attempts, and
// consults an optional Speculator for straggler mitigation.
type TaskSet struct {
	name    string
	tasks   []*Task
	pending []*Task
	spec    Speculator

	killed bool

	// loads is a scratch per-server running-attempt count, rebuilt lazily
	// once per Tick (loadsValid gates it) instead of once per pending
	// task, and kept current by incrementing the chosen server on every
	// launch — which is exactly the delta a recount would observe.
	loads      map[*cluster.Server]int
	loadsValid bool

	tr   *trace.Tracer
	span trace.SpanID
}

// NewTaskSet builds a set from specs. The speculator may be nil.
func NewTaskSet(name string, specs []TaskSpec, spec Speculator) *TaskSet {
	ts := &TaskSet{name: name, spec: spec, span: trace.NoSpan}
	for _, s := range specs {
		t := NewTask(s)
		ts.tasks = append(ts.tasks, t)
		ts.pending = append(ts.pending, t)
	}
	return ts
}

// Trace opens the set's span (and one span per task, queue wait measured
// from nowSec) under the given parent. Call right after NewTaskSet,
// before the first Tick; a nil tracer leaves tracing off. The set closes
// its spans as tasks complete or are killed.
func (ts *TaskSet) Trace(tr *trace.Tracer, parent trace.SpanID, nowSec float64) {
	if tr == nil {
		return
	}
	ts.tr = tr
	ts.span = tr.Start(trace.KindTaskSet, ts.name, "", parent, nowSec)
	for _, t := range ts.tasks {
		t.span = tr.Start(trace.KindTask, t.spec.ID, "", ts.span, nowSec)
	}
}

// Span returns the set's trace span id (trace.NoSpan when tracing is
// off).
func (ts *TaskSet) Span() trace.SpanID { return ts.span }

// Name returns the set's name.
func (ts *TaskSet) Name() string { return ts.name }

// Tasks returns all tasks in the set. It copies; use EachTask on
// per-tick paths.
func (ts *TaskSet) Tasks() []*Task { return append([]*Task(nil), ts.tasks...) }

// NumTasks returns the number of tasks in the set without copying.
func (ts *TaskSet) NumTasks() int { return len(ts.tasks) }

// EachTask calls fn for every task in creation order, without copying
// the backing slice.
func (ts *TaskSet) EachTask(fn func(*Task)) {
	for _, t := range ts.tasks {
		fn(t)
	}
}

// Done reports whether every task has completed (or the set was killed).
func (ts *TaskSet) Done() bool {
	if ts.killed {
		return true
	}
	for _, t := range ts.tasks {
		if !t.Done() {
			return false
		}
	}
	return true
}

// Killed reports whether the set was killed before completing.
func (ts *TaskSet) Killed() bool { return ts.killed }

// Tick runs one scheduling round against the pool: harvest completions,
// kill redundant siblings, launch pending tasks (locality first), then
// let the speculator spend leftover slots.
func (ts *TaskSet) Tick(nowSec float64, pool Pool) {
	if ts.killed {
		return
	}
	// Harvest completions; kill sibling attempts of completed tasks.
	for _, t := range ts.tasks {
		if t.completed != nil {
			ts.killSiblings(t, nowSec)
			continue
		}
		for _, a := range t.attempts {
			if a.state == AttemptCompleted {
				t.completed = a
				ts.tr.End(t.span, a.endSec)
				ts.killSiblings(t, nowSec)
				break
			}
		}
	}
	// Close the set span once the last task has (End is open-guarded, so
	// later Ticks are no-ops); nothing below could act anyway.
	if ts.tr != nil && ts.Done() {
		ts.tr.End(ts.span, nowSec)
		return
	}
	// Launch pending tasks. With zero free slots pool-wide every pick
	// would come back nil, so the scan is skipped outright — the common
	// shape of a saturated cluster. The filter reuses ts.pending's backing
	// array (writes trail reads, so the in-place append is safe) to avoid
	// an allocation per scheduling round.
	if len(ts.pending) > 0 && pool.FreeSlots() > 0 {
		ts.loadsValid = false
		pending := ts.pending[:0]
		for _, t := range ts.pending {
			e := ts.pickExecutor(t, pool)
			if e == nil {
				pending = append(pending, t)
				continue
			}
			e.launch(t, nowSec, false)
			if ts.loadsValid {
				ts.loads[e.vm.Server()]++
			}
		}
		ts.pending = pending
	}

	// Speculation with leftover slots.
	if ts.spec == nil || len(ts.pending) > 0 || pool.FreeSlots() == 0 {
		return
	}
	for _, t := range ts.spec.Candidates(ts, nowSec) {
		if t.Done() {
			continue
		}
		e := ts.pickSpeculativeExecutor(t, pool, nowSec)
		if e == nil {
			continue
		}
		e.launch(t, nowSec, true)
		if pool.FreeSlots() == 0 {
			return
		}
	}
}

// StrideQuiet reports whether the set's next Tick is provably a no-op —
// no completion to harvest, no sibling to kill, no launch possible, no
// speculation round armed — and will remain one until some attempt's state
// changes, which only happens on engine ticks (launch, kill) or stops the
// stride at the tick it occurs (completion frees a slot). The event-driven
// stepper elides engine ticks only while every task set is quiet
// (DESIGN.md §5.6). Speculation is the conservative case: Candidates is
// time-dependent (progress rates shift as now advances), so an armed
// speculator with free slots and nothing pending blocks striding outright.
func (ts *TaskSet) StrideQuiet(pool Pool) bool {
	if ts.killed {
		return true
	}
	done := true
	for _, t := range ts.tasks {
		if t.completed == nil {
			done = false
			for _, a := range t.attempts {
				if a.state == AttemptCompleted {
					return false // harvest pending
				}
			}
			continue
		}
		for _, a := range t.attempts {
			if a.state == AttemptRunning && a != t.completed {
				return false // sibling kill pending
			}
		}
	}
	if done {
		return true
	}
	if len(ts.pending) > 0 && pool.FreeSlots() > 0 {
		return false // a launch would happen
	}
	if ts.spec != nil && len(ts.pending) == 0 && pool.FreeSlots() > 0 {
		return false // a speculation round would run
	}
	return true
}

// killSiblings terminates still-running attempts of a completed task.
func (ts *TaskSet) killSiblings(t *Task, nowSec float64) {
	for _, a := range t.attempts {
		if a.state == AttemptRunning && a != t.completed {
			a.state = AttemptKilled
			a.endSec = nowSec
			a.executor.remove(a)
			ts.tr.MarkKilled(a.span)
			ts.tr.End(a.span, nowSec)
		}
	}
}

// Kill terminates the whole set: running attempts are killed and pending
// tasks dropped (Dolly kills the loser clones of a job).
func (ts *TaskSet) Kill(nowSec float64) {
	if ts.killed {
		return
	}
	ts.killed = true
	ts.pending = nil
	for _, t := range ts.tasks {
		for _, a := range t.attempts {
			if a.state == AttemptRunning {
				a.state = AttemptKilled
				a.endSec = nowSec
				a.executor.remove(a)
				ts.tr.MarkKilled(a.span)
				ts.tr.End(a.span, nowSec)
			}
		}
		// Close task spans (open-guarded: completed tasks keep their end).
		ts.tr.End(t.span, nowSec)
	}
	ts.tr.MarkKilled(ts.span)
	ts.tr.End(ts.span, nowSec)
}

// pickExecutor chooses a free slot for a fresh attempt: the least-loaded
// preferred (replica-local) VM if one has room — so concurrent readers of
// the same block spread across its replicas — else the free executor on
// the least-busy physical server (ties broken by most free slots, then
// pool order). Server-level spreading is what real cluster schedulers
// do, and it is what gives cloned jobs placement diversity: each clone
// lands on a different set of machines, so at least one copy tends to
// escape the antagonized servers.
func (ts *TaskSet) pickExecutor(t *Task, pool Pool) *Executor {
	var pref *Executor
	for _, id := range t.spec.PreferredVMs {
		e := pool.byID(id)
		if e == nil || e.FreeSlots() <= 0 {
			continue
		}
		if pref == nil || e.FreeSlots() > pref.FreeSlots() {
			pref = e
		}
	}
	if pref != nil {
		return pref
	}
	if !ts.loadsValid {
		if ts.loads == nil {
			// Sized for servers, not executors: many executors share one
			// physical server, so a len(pool) hint would overshoot badly.
			ts.loads = make(map[*cluster.Server]int, 16)
		}
		clear(ts.loads)
		for _, e := range pool {
			ts.loads[e.vm.Server()] += len(e.running)
		}
		ts.loadsValid = true
	}
	load := ts.loads
	var best *Executor
	bestLoad := 0
	// Pools list a server's executors contiguously, so one cached lookup
	// usually covers a whole server's stretch of the scan.
	var lastSrv *cluster.Server
	lastLoad := 0
	for _, e := range pool {
		if e.FreeSlots() <= 0 {
			continue
		}
		if srv := e.vm.Server(); srv != lastSrv {
			lastSrv, lastLoad = srv, load[srv]
		}
		l := lastLoad
		if best == nil || l < bestLoad ||
			(l == bestLoad && e.FreeSlots() > best.FreeSlots()) {
			best, bestLoad = e, l
		}
	}
	return best
}

// pickSpeculativeExecutor avoids executors already running the task (a
// backup on the same contended VM would be pointless) and prefers fast
// executors — those whose current attempts show the highest progress
// rates — implementing LATE's rule of not launching backups on slow
// nodes. Idle executors are assumed fast.
func (ts *TaskSet) pickSpeculativeExecutor(t *Task, pool Pool, nowSec float64) *Executor {
	var best *Executor
	bestScore := math.Inf(-1)
	for _, e := range pool {
		if e.FreeSlots() <= 0 || e.RunsTask(t) {
			continue
		}
		score := e.speedScore(nowSec)
		if best == nil || score > bestScore ||
			(score == bestScore && e.FreeSlots() > best.FreeSlots()) {
			best, bestScore = e, score
		}
	}
	return best
}

// speedScore estimates how fast this executor's VM currently is: the
// mean progress rate of its running attempts, or +Inf when idle.
func (e *Executor) speedScore(nowSec float64) float64 {
	var sum float64
	n := 0
	for _, a := range e.running {
		if r := a.ProgressRate(nowSec); r > 0 {
			sum += r
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}

// RunningAttempts returns all currently running attempts in the set,
// sorted by task id for determinism.
func (ts *TaskSet) RunningAttempts() []*Attempt {
	var out []*Attempt
	for _, t := range ts.tasks {
		out = append(out, t.Running()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].task.spec.ID < out[j].task.spec.ID })
	return out
}

// Accounting tallies the paper's resource-utilization-efficiency inputs.
type Accounting struct {
	SuccessfulSeconds float64 // runtime of winning attempts
	TotalSeconds      float64 // runtime of all attempts, incl. killed
}

// Efficiency returns successful/total, guarding the division: an empty
// or all-killed set that accumulated no (or, through float cancellation,
// non-positive) total work wasted nothing, so it scores 1.
func (a Accounting) Efficiency() float64 {
	if a.TotalSeconds <= 0 {
		return 1
	}
	return a.SuccessfulSeconds / a.TotalSeconds
}

// Account sums attempt runtimes for the set as of nowSec. A killed set
// contributes no successful time: the output of a killed job clone is
// discarded, so even its completed tasks are waste (the paper's Fig. 11c
// resource-utilization-efficiency accounting).
func (ts *TaskSet) Account(nowSec float64) Accounting {
	var acc Accounting
	ts.EachTask(func(t *Task) {
		t.EachAttempt(func(a *Attempt) {
			rt := a.Runtime(nowSec)
			acc.TotalSeconds += rt
			if t.completed == a && !ts.killed {
				acc.SuccessfulSeconds += rt
			}
		})
	})
	return acc
}
