package exec

import (
	"fmt"
	"math"
	"testing"
	"time"

	"perfcloud/internal/trace"
)

// attachTracer wires a tracer to every executor in the harness pool and
// opens spans for the task set. Must run before the first launch.
func attachTracer(h *harness, ts *TaskSet) *trace.Tracer {
	tr := trace.NewTracer()
	for _, e := range h.pool {
		e.SetTracer(tr)
	}
	ts.Trace(tr, trace.NoSpan, 0)
	return tr
}

// TestTracePhasesSumToWall is the tentpole invariant: for every closed
// attempt span, the per-phase seconds partition the attempt's wall time.
func TestTracePhasesSumToWall(t *testing.T) {
	h := newHarness(t, 2, 2)
	specs := make([]TaskSpec, 6)
	for i := range specs {
		specs[i] = smallSpec(fmt.Sprintf("t%d", i))
		// Two tasks share an input so one of them reads from page cache.
		specs[i].InputKey = fmt.Sprintf("part-%d", i/2)
	}
	ts := NewTaskSet("maps", specs, nil)
	tr := attachTracer(h, ts)
	h.sets = append(h.sets, ts)
	h.runUntilDone(t, ts, time.Minute)

	attempts, cached := 0, 0
	for _, s := range tr.Spans() {
		if s.Kind != trace.KindAttempt {
			continue
		}
		if s.Open {
			t.Errorf("attempt span %q still open after set completion", s.Name)
			continue
		}
		attempts++
		if s.CachedInput {
			cached++
		}
		if diff := math.Abs(s.PhaseSum() - s.WallSec()); diff > 1e-6 {
			t.Errorf("attempt %q: phases sum to %v, wall %v (diff %v)",
				s.Name, s.PhaseSum(), s.WallSec(), diff)
		}
	}
	if attempts < len(specs) {
		t.Errorf("attempt spans = %d, want >= %d", attempts, len(specs))
	}
	if cached == 0 {
		t.Error("expected at least one cached-input attempt span")
	}
	pt := tr.Totals()
	if pt.WallSec <= 0 || pt.Phases[trace.PhaseCPU] <= 0 {
		t.Errorf("totals look empty: %+v", pt)
	}
	if math.Abs(pt.PhaseSum()-pt.WallSec) > 1e-6 {
		t.Errorf("aggregate phases %v != wall %v", pt.PhaseSum(), pt.WallSec)
	}
	if pt.CacheSavedSec <= 0 {
		t.Error("cached attempts should report cache savings")
	}
}

// TestTraceQueueWaitRecorded checks that tasks which could not launch
// immediately (more tasks than slots) carry queue wait on their spans.
func TestTraceQueueWaitRecorded(t *testing.T) {
	h := newHarness(t, 1, 2)
	specs := make([]TaskSpec, 6)
	for i := range specs {
		specs[i] = smallSpec(fmt.Sprintf("t%d", i))
	}
	ts := NewTaskSet("maps", specs, nil)
	tr := attachTracer(h, ts)
	h.sets = append(h.sets, ts)
	h.runUntilDone(t, ts, time.Minute)

	var waited int
	for _, s := range tr.Spans() {
		if s.Kind == trace.KindTask && s.QueueWaitSec > 0 {
			waited++
		}
	}
	// 6 tasks over 2 slots: at least the third wave queued.
	if waited < 2 {
		t.Errorf("tasks with queue wait = %d, want >= 2", waited)
	}
}

// TestTraceKillClosesSpans checks that killing a set marks and closes
// every open span, so killed work is attributable as waste.
func TestTraceKillClosesSpans(t *testing.T) {
	h := newHarness(t, 1, 2)
	ts := NewTaskSet("maps", []TaskSpec{smallSpec("t0"), smallSpec("t1")}, nil)
	tr := attachTracer(h, ts)
	h.sets = append(h.sets, ts)
	h.eng.Run(5) // a few ticks of real work, then kill mid-flight
	ts.Kill(h.eng.Clock().Seconds())

	for _, s := range tr.Spans() {
		if s.Open {
			t.Errorf("span %q (%v) still open after Kill", s.Name, s.Kind)
		}
	}
	pt := tr.Totals()
	if pt.KilledWasteSec <= 0 {
		t.Errorf("killed waste = %v, want > 0", pt.KilledWasteSec)
	}
}

// TestTracingDoesNotChangeOutcome runs the same seeded workload with and
// without a tracer attached and requires bit-identical completion times.
func TestTracingDoesNotChangeOutcome(t *testing.T) {
	run := func(withTracer bool) []float64 {
		h := newHarness(t, 2, 2)
		specs := make([]TaskSpec, 5)
		for i := range specs {
			specs[i] = smallSpec(fmt.Sprintf("t%d", i))
		}
		ts := NewTaskSet("maps", specs, nil)
		if withTracer {
			attachTracer(h, ts)
		}
		h.sets = append(h.sets, ts)
		h.runUntilDone(t, ts, time.Minute)
		var ends []float64
		ts.EachTask(func(task *Task) {
			ends = append(ends, task.Completed().Runtime(0))
		})
		return ends
	}
	off, on := run(false), run(true)
	for i := range off {
		if off[i] != on[i] {
			t.Errorf("task %d runtime: off=%v on=%v (must be bit-identical)", i, off[i], on[i])
		}
	}
}

// TestEfficiencyZeroGuard covers the degenerate accountings: no recorded
// time at all (empty set, or killed before any launch) must not divide
// by zero and reports perfect efficiency by convention.
func TestEfficiencyZeroGuard(t *testing.T) {
	if got := (Accounting{}).Efficiency(); got != 1 {
		t.Errorf("empty accounting efficiency = %v, want 1", got)
	}

	empty := NewTaskSet("empty", nil, nil)
	if got := empty.Account(0).Efficiency(); got != 1 {
		t.Errorf("empty set efficiency = %v, want 1", got)
	}

	killed := NewTaskSet("killed", []TaskSpec{smallSpec("t0")}, nil)
	killed.Kill(0) // killed before any attempt launched: zero total time
	if got := killed.Account(0).Efficiency(); got != 1 {
		t.Errorf("pre-launch-killed set efficiency = %v, want 1", got)
	}

	// An all-killed set with real runtime has zero useful work.
	h := newHarness(t, 1, 2)
	ts := NewTaskSet("maps", []TaskSpec{smallSpec("t0")}, nil)
	h.sets = append(h.sets, ts)
	h.eng.Run(2)
	now := h.eng.Clock().Seconds()
	ts.Kill(now)
	if got := ts.Account(now).Efficiency(); got != 0 {
		t.Errorf("all-killed set efficiency = %v, want 0", got)
	}
}
