package cluster

// ContentCache models the host page cache's effect on repeated block
// reads: when a task reads a block that a colocated task recently read,
// the data comes from memory, not the shared disk. This is the mechanism
// that makes Dolly-style job cloning affordable in practice — a clone's
// input re-reads mostly hit the cache of the replica holder — and it is
// why the paper's fio experiments explicitly disable host caching to get
// stable interference (§II).
//
// The cache is keyed by opaque content ids (e.g. "file/b007"), tracks
// bytes for capacity-based LRU eviction, and expires entries after a TTL
// (dirty/cold pages get recycled on a busy host).
type ContentCache struct {
	capacity float64
	ttl      float64
	used     float64
	entries  map[string]*cacheEntry
}

type cacheEntry struct {
	bytes    float64
	lastUsed float64
}

// NewContentCache creates a cache with the given capacity (bytes) and
// entry TTL (seconds).
func NewContentCache(capacity, ttl float64) *ContentCache {
	if capacity <= 0 || ttl <= 0 {
		panic("cluster: cache needs positive capacity and ttl")
	}
	return &ContentCache{capacity: capacity, ttl: ttl, entries: make(map[string]*cacheEntry)}
}

// Has reports whether key is cached and fresh at nowSec, refreshing its
// recency on a hit.
func (c *ContentCache) Has(key string, nowSec float64) bool {
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	if nowSec-e.lastUsed > c.ttl {
		c.used -= e.bytes
		delete(c.entries, key)
		return false
	}
	e.lastUsed = nowSec
	return true
}

// Put inserts (or refreshes) a key, evicting least-recently-used entries
// until the new entry fits. Entries larger than the whole cache are
// not admitted.
func (c *ContentCache) Put(key string, bytes, nowSec float64) {
	if bytes > c.capacity {
		return
	}
	if e, ok := c.entries[key]; ok {
		c.used -= e.bytes
		delete(c.entries, key)
	}
	for c.used+bytes > c.capacity {
		c.evictLRU()
	}
	c.entries[key] = &cacheEntry{bytes: bytes, lastUsed: nowSec}
	c.used += bytes
}

// Len returns the number of cached entries.
func (c *ContentCache) Len() int { return len(c.entries) }

// UsedBytes returns the cached byte volume.
func (c *ContentCache) UsedBytes() float64 { return c.used }

// evictLRU removes the least-recently-used entry (deterministically
// tie-broken by key).
func (c *ContentCache) evictLRU() {
	// One pass over the map picks the same victim the old sort-then-scan
	// did: the smallest key among entries with the minimum lastUsed.
	var victim string
	oldest := 0.0
	first := true
	for k, e := range c.entries {
		if first || e.lastUsed < oldest || (e.lastUsed == oldest && k < victim) {
			victim, oldest, first = k, e.lastUsed, false
		}
	}
	if victim == "" {
		return
	}
	c.used -= c.entries[victim].bytes
	delete(c.entries, victim)
}
