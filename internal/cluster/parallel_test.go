package cluster

import (
	"reflect"
	"testing"
	"time"

	"perfcloud/internal/sim"
)

// buildParallelCluster populates a multi-server cluster with a busy VM mix
// so a tick has real work in every server's grant phase.
func buildParallelCluster(servers, vmsPerServer int) (*sim.Engine, *Cluster, []*fakeWorkload) {
	eng := sim.NewEngine(100*time.Millisecond, 42)
	c := New()
	var loads []*fakeWorkload
	for si := 0; si < servers; si++ {
		srv := c.AddServer(srvID(si), DefaultServerConfig(), eng.RNG())
		for vi := 0; vi < vmsPerServer; vi++ {
			vm := c.AddVM(srv, srvID(si)+"-vm-"+string(rune('a'+vi)), 2, 8<<30, HighPriority, "app")
			w := &fakeWorkload{name: vm.ID(), demand: busyDemand()}
			if vi%2 == 1 {
				// Alternate a disk-heavy profile so servers contend internally.
				w.demand.IOOps, w.demand.IOBytes = 2000, 2000*4096
			}
			vm.SetWorkload(w)
			loads = append(loads, w)
		}
	}
	eng.Register(c)
	return eng, c, loads
}

func srvID(i int) string { return "server-" + string(rune('0'+i)) }

// TestParallelTickMatchesSequential runs the same cluster with 1 and 4 tick
// workers and requires identical grant histories — the grant phase must be
// deterministic under any goroutine interleaving. With -race this test also
// exercises the concurrent per-server pipeline for data races (explicit
// worker counts matter: on a single-core host GOMAXPROCS is 1).
func TestParallelTickMatchesSequential(t *testing.T) {
	run := func(workers int) [][]Grant {
		eng, c, loads := buildParallelCluster(5, 4)
		c.SetTickWorkers(workers)
		eng.Run(50)
		out := make([][]Grant, len(loads))
		for i, w := range loads {
			out[i] = w.grants
		}
		return out
	}
	sequential := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(sequential, parallel) {
		t.Fatal("parallel tick grants differ from sequential")
	}
}

// TestDefaultTickWorkers covers the package-level default and its
// precedence against the per-cluster setting.
func TestDefaultTickWorkers(t *testing.T) {
	prev := SetDefaultTickWorkers(3)
	defer SetDefaultTickWorkers(prev)

	c := New()
	if got := c.TickWorkers(); got != 3 {
		t.Errorf("TickWorkers = %d, want package default 3", got)
	}
	c.SetTickWorkers(2)
	if got := c.TickWorkers(); got != 2 {
		t.Errorf("TickWorkers = %d, want per-cluster 2", got)
	}
	c.SetTickWorkers(0)
	if got := c.TickWorkers(); got != 3 {
		t.Errorf("TickWorkers = %d, want fallback to package default 3", got)
	}
	if got := SetDefaultTickWorkers(0); got != 3 {
		t.Errorf("SetDefaultTickWorkers returned %d, want previous 3", got)
	}
	SetDefaultTickWorkers(3) // restore for the deferred swap-back
}
