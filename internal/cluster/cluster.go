// Package cluster assembles the simulated testbed: physical servers
// (each owning a shared disk, CPU scheduler and memory system), the VMs
// placed on them (each owning a cgroup), and the per-tick resource
// pipeline that turns workload demand into granted resources and
// cumulative cgroup/perf counters.
//
// The pipeline per server per tick is:
//
//  1. every VM's workload declares Demand;
//  2. the CPU scheduler grants core-seconds (honouring CFS quota caps
//     from the cgroup — PerfCloud's CPU hard-capping knob);
//  3. the memory system converts granted CPU into instructions retired,
//     effective CPI and LLC traffic under shared-cache and bandwidth
//     contention;
//  4. the disk grants IOPS/bytes (honouring blkio throttle caps) and
//     charges queueing delay;
//  5. cgroup counters accumulate; the workload consumes the Grant.
//
// Everything above the pipeline (frameworks, antagonist benchmarks,
// PerfCloud itself) interacts only through Workload, the cgroup counters
// and the hypervisor facade, mirroring the black-box VM boundary the
// paper works within.
package cluster

import (
	"fmt"

	"perfcloud/internal/cgroup"
	"perfcloud/internal/cpu"
	"perfcloud/internal/disk"
	"perfcloud/internal/memsys"
	"perfcloud/internal/sim"
)

// Priority mirrors the paper's two-level VM priority assigned by the
// cloud administrator (§I): PerfCloud protects high-priority applications
// by throttling low-priority antagonists.
type Priority int

const (
	// LowPriority VMs may be throttled to protect high-priority ones.
	LowPriority Priority = iota
	// HighPriority VMs host the data-intensive scale-out applications.
	HighPriority
)

// String returns "high" or "low".
func (p Priority) String() string {
	if p == HighPriority {
		return "high"
	}
	return "low"
}

// Demand is a workload's resource request for one tick.
type Demand struct {
	CPUSeconds float64 // core-seconds wanted
	IOOps      float64 // block I/O operations wanted
	IOBytes    float64 // block I/O bytes wanted

	// Memory behaviour while executing (see memsys.Request).
	CoreCPI         float64
	LLCRefsPerInstr float64
	BytesPerInstr   float64
	WorkingSetBytes float64
}

// Grant is what the pipeline actually delivered for one tick.
type Grant struct {
	CPUSeconds   float64
	Instructions float64
	CPI          float64
	IOOps        float64
	IOBytes      float64
	IOWaitMs     float64
	MemBytes     float64
}

// Workload is implemented by everything that runs inside a VM: antagonist
// benchmarks and framework task executors. Demand is called once per tick
// followed by Advance with the granted resources.
type Workload interface {
	// Name identifies the workload for logs and traces.
	Name() string
	// Demand returns the workload's resource request for a tick of the
	// given length in seconds.
	Demand(tickSec float64) Demand
	// Advance consumes one tick's grant.
	Advance(tickSec float64, g Grant)
	// Done reports whether the workload has finished all its work.
	Done() bool
}

// VM is one virtual machine: a cgroup, a placement, and (optionally) a
// running workload. VMs appear as black boxes to PerfCloud, which sees
// only the cgroup counters and throttle knobs.
type VM struct {
	id       string
	vcpus    float64
	memBytes float64
	priority Priority
	appID    string
	cg       *cgroup.Cgroup
	server   *Server
	workload Workload

	lastGrant Grant
}

// ID returns the VM's unique identifier.
func (v *VM) ID() string { return v.id }

// VCPUs returns the VM's virtual CPU count.
func (v *VM) VCPUs() float64 { return v.vcpus }

// MemBytes returns the VM's memory size.
func (v *VM) MemBytes() float64 { return v.memBytes }

// Priority returns the VM's administrator-assigned priority.
func (v *VM) Priority() Priority { return v.priority }

// AppID returns the identifier of the application this VM belongs to
// ("" when the VM is standalone). All VMs of one scale-out application
// share an AppID; the node manager groups them by it.
func (v *VM) AppID() string { return v.appID }

// Cgroup returns the VM's control group (counters + throttle knobs).
func (v *VM) Cgroup() *cgroup.Cgroup { return v.cg }

// Server returns the physical server hosting the VM.
func (v *VM) Server() *Server { return v.server }

// Workload returns the currently attached workload (nil if idle).
func (v *VM) Workload() Workload { return v.workload }

// SetWorkload attaches (or, with nil, detaches) the VM's workload.
func (v *VM) SetWorkload(w Workload) { v.workload = w }

// Idle reports whether the VM has no runnable workload this tick.
func (v *VM) Idle() bool { return v.workload == nil || v.workload.Done() }

// LastGrant returns the resources delivered on the most recent tick,
// used by tests and the trace recorder (PerfCloud itself never reads it —
// it observes cgroup counters only).
func (v *VM) LastGrant() Grant { return v.lastGrant }

// ServerConfig bundles the per-server resource model configurations.
type ServerConfig struct {
	Disk disk.Config
	CPU  cpu.Config
	Mem  memsys.Config
}

// DefaultServerConfig mirrors the paper's Dell PowerEdge R630 hosts.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		Disk: disk.DefaultConfig(),
		CPU:  cpu.DefaultConfig(),
		Mem:  memsys.DefaultConfig(),
	}
}

// Server is one physical machine.
type Server struct {
	id    string
	cfg   ServerConfig
	disk  *disk.Disk
	cpu   *cpu.Scheduler
	mem   *memsys.System
	cache *ContentCache
	vms   []*VM
}

// Cache returns the server's page-cache model.
func (s *Server) Cache() *ContentCache { return s.cache }

// ID returns the server's identifier.
func (s *Server) ID() string { return s.id }

// VMs returns the VMs currently placed on the server (live slice copy).
func (s *Server) VMs() []*VM { return append([]*VM(nil), s.vms...) }

// Disk returns the server's disk model (for tests and traces).
func (s *Server) Disk() *disk.Disk { return s.disk }

// Mem returns the server's memory-system model (for tests and traces).
func (s *Server) Mem() *memsys.System { return s.mem }

// CPUConfig returns the server's CPU configuration.
func (s *Server) CPUConfig() cpu.Config { return s.cfg.CPU }

// FindVM returns the VM with the given id hosted on this server, or nil.
func (s *Server) FindVM(id string) *VM {
	for _, v := range s.vms {
		if v.id == id {
			return v
		}
	}
	return nil
}

// tick runs the resource pipeline for one tick.
func (s *Server) tick(tickSec float64) {
	n := len(s.vms)
	if n == 0 {
		return
	}
	demands := make([]Demand, n)
	for i, v := range s.vms {
		if !v.Idle() {
			demands[i] = v.workload.Demand(tickSec)
		}
	}

	// CPU.
	cpuReqs := make([]cpu.Request, n)
	for i, v := range s.vms {
		cpuReqs[i] = cpu.Request{
			ClientID: v.id,
			Seconds:  demands[i].CPUSeconds,
			VCPUs:    v.vcpus,
			CapCores: v.cg.Throttle().CPUCores,
		}
	}
	cpuGrants := s.cpu.Allocate(tickSec, cpuReqs)

	// Memory system.
	memReqs := make([]memsys.Request, n)
	for i, v := range s.vms {
		memReqs[i] = memsys.Request{
			ClientID:        v.id,
			CPUSeconds:      cpuGrants[i].Seconds,
			CoreCPI:         demands[i].CoreCPI,
			LLCRefsPerInstr: demands[i].LLCRefsPerInstr,
			BytesPerInstr:   demands[i].BytesPerInstr,
			WorkingSetBytes: demands[i].WorkingSetBytes,
		}
	}
	memRes := s.mem.Compute(tickSec, memReqs)

	// Disk.
	diskReqs := make([]disk.Request, n)
	for i, v := range s.vms {
		th := v.cg.Throttle()
		diskReqs[i] = disk.Request{
			ClientID: v.id,
			Ops:      demands[i].IOOps,
			Bytes:    demands[i].IOBytes,
			CapIOPS:  th.ReadIOPS,
			CapBPS:   th.ReadBPS,
		}
	}
	diskGrants := s.disk.Allocate(tickSec, diskReqs)

	// Account and advance.
	for i, v := range s.vms {
		g := Grant{
			CPUSeconds:   cpuGrants[i].Seconds,
			Instructions: memRes[i].Instructions,
			CPI:          memRes[i].CPI,
			IOOps:        diskGrants[i].Ops,
			IOBytes:      diskGrants[i].Bytes,
			IOWaitMs:     diskGrants[i].WaitMs,
			MemBytes:     memRes[i].MemBytes,
		}
		v.lastGrant = g
		v.cg.AddCPU(g.CPUSeconds)
		v.cg.AddBlkio(g.IOOps, g.IOBytes, g.IOWaitMs)
		v.cg.AddPerf(memRes[i].Cycles, memRes[i].Instructions, memRes[i].LLCRefs, memRes[i].LLCMisses)
		if !v.Idle() {
			v.workload.Advance(tickSec, g)
		}
	}
}

// Cluster is the set of servers plus a VM registry. It implements
// sim.Tickable; register it with the engine at the resource-pipeline
// priority (after frameworks schedule, before controllers observe).
type Cluster struct {
	servers []*Server
	vmsByID map[string]*VM
}

// New creates an empty cluster.
func New() *Cluster {
	return &Cluster{vmsByID: make(map[string]*VM)}
}

// AddServer creates a server with the given id and configuration.
// The rng factory seeds the server's stochastic resource models.
func (c *Cluster) AddServer(id string, cfg ServerConfig, rng *sim.RNG) *Server {
	if c.FindServer(id) != nil {
		panic(fmt.Sprintf("cluster: duplicate server %q", id))
	}
	s := &Server{
		id:    id,
		cfg:   cfg,
		disk:  disk.New(cfg.Disk, rng.Streamf("disk/%s", id)),
		cpu:   cpu.New(cfg.CPU),
		mem:   memsys.New(cfg.Mem, rng.Streamf("memsys/%s", id)),
		cache: NewContentCache(16<<30, 120),
	}
	c.servers = append(c.servers, s)
	return s
}

// AddVM creates a VM on the given server.
func (c *Cluster) AddVM(server *Server, id string, vcpus, memBytes float64, prio Priority, appID string) *VM {
	if _, dup := c.vmsByID[id]; dup {
		panic(fmt.Sprintf("cluster: duplicate VM %q", id))
	}
	v := &VM{
		id:       id,
		vcpus:    vcpus,
		memBytes: memBytes,
		priority: prio,
		appID:    appID,
		cg:       cgroup.New(id),
		server:   server,
	}
	server.vms = append(server.vms, v)
	c.vmsByID[id] = v
	return v
}

// MoveVM live-migrates a VM to another server, preserving the VM object
// (and thus its cgroup, workload and any references frameworks hold to
// it). Returns an error for unknown ids; moving to the current server is
// a no-op.
func (c *Cluster) MoveVM(vmID, serverID string) error {
	v, ok := c.vmsByID[vmID]
	if !ok {
		return fmt.Errorf("cluster: no VM %q", vmID)
	}
	dst := c.FindServer(serverID)
	if dst == nil {
		return fmt.Errorf("cluster: no server %q", serverID)
	}
	if v.server == dst {
		return nil
	}
	src := v.server
	for i, u := range src.vms {
		if u == v {
			src.vms = append(src.vms[:i], src.vms[i+1:]...)
			break
		}
	}
	dst.vms = append(dst.vms, v)
	v.server = dst
	return nil
}

// RemoveVM detaches a VM from its server and the registry (used by the
// cloud manager for termination/migration). Removing an unknown VM is a
// no-op.
func (c *Cluster) RemoveVM(id string) {
	v, ok := c.vmsByID[id]
	if !ok {
		return
	}
	delete(c.vmsByID, id)
	srv := v.server
	for i, u := range srv.vms {
		if u == v {
			srv.vms = append(srv.vms[:i], srv.vms[i+1:]...)
			break
		}
	}
}

// Servers returns all servers in creation order.
func (c *Cluster) Servers() []*Server { return append([]*Server(nil), c.servers...) }

// FindServer returns the server with the given id, or nil.
func (c *Cluster) FindServer(id string) *Server {
	for _, s := range c.servers {
		if s.id == id {
			return s
		}
	}
	return nil
}

// FindVM returns the VM with the given id, or nil.
func (c *Cluster) FindVM(id string) *VM { return c.vmsByID[id] }

// VMs returns all VMs across all servers in placement order.
func (c *Cluster) VMs() []*VM {
	var out []*VM
	for _, s := range c.servers {
		out = append(out, s.vms...)
	}
	return out
}

// AppVMs returns the VMs belonging to the given application id, across
// all servers.
func (c *Cluster) AppVMs(appID string) []*VM {
	var out []*VM
	for _, v := range c.VMs() {
		if v.appID == appID {
			out = append(out, v)
		}
	}
	return out
}

// Tick advances every server's resource pipeline by one tick.
func (c *Cluster) Tick(clk *sim.Clock) {
	for _, s := range c.servers {
		s.tick(clk.TickSeconds())
	}
}
