// Package cluster assembles the simulated testbed: physical servers
// (each owning a shared disk, CPU scheduler and memory system), the VMs
// placed on them (each owning a cgroup), and the per-tick resource
// pipeline that turns workload demand into granted resources and
// cumulative cgroup/perf counters.
//
// The pipeline per server per tick is:
//
//  1. every VM's workload declares Demand;
//  2. the CPU scheduler grants core-seconds (honouring CFS quota caps
//     from the cgroup — PerfCloud's CPU hard-capping knob);
//  3. the memory system converts granted CPU into instructions retired,
//     effective CPI and LLC traffic under shared-cache and bandwidth
//     contention;
//  4. the disk grants IOPS/bytes (honouring blkio throttle caps) and
//     charges queueing delay;
//  5. cgroup counters accumulate; the workload consumes the Grant.
//
// Everything above the pipeline (frameworks, antagonist benchmarks,
// PerfCloud itself) interacts only through Workload, the cgroup counters
// and the hypervisor facade, mirroring the black-box VM boundary the
// paper works within.
package cluster

import (
	"fmt"
	"sync/atomic"

	"perfcloud/internal/cgroup"
	"perfcloud/internal/cpu"
	"perfcloud/internal/disk"
	"perfcloud/internal/memsys"
	"perfcloud/internal/obs"
	"perfcloud/internal/sim"
)

// Priority mirrors the paper's two-level VM priority assigned by the
// cloud administrator (§I): PerfCloud protects high-priority applications
// by throttling low-priority antagonists.
type Priority int

const (
	// LowPriority VMs may be throttled to protect high-priority ones.
	LowPriority Priority = iota
	// HighPriority VMs host the data-intensive scale-out applications.
	HighPriority
)

// String returns "high" or "low".
func (p Priority) String() string {
	if p == HighPriority {
		return "high"
	}
	return "low"
}

// Demand is a workload's resource request for one tick.
type Demand struct {
	CPUSeconds float64 // core-seconds wanted
	IOOps      float64 // block I/O operations wanted
	IOBytes    float64 // block I/O bytes wanted

	// Memory behaviour while executing (see memsys.Request).
	CoreCPI         float64
	LLCRefsPerInstr float64
	BytesPerInstr   float64
	WorkingSetBytes float64
}

// Grant is what the pipeline actually delivered for one tick.
type Grant struct {
	CPUSeconds   float64
	Instructions float64
	CPI          float64
	IOOps        float64
	IOBytes      float64
	IOWaitMs     float64
	MemBytes     float64
}

// Workload is implemented by everything that runs inside a VM: antagonist
// benchmarks and framework task executors. Demand is called once per tick
// followed by Advance with the granted resources.
type Workload interface {
	// Name identifies the workload for logs and traces.
	Name() string
	// Demand returns the workload's resource request for a tick of the
	// given length in seconds.
	Demand(tickSec float64) Demand
	// Advance consumes one tick's grant.
	Advance(tickSec float64, g Grant)
	// Done reports whether the workload has finished all its work.
	//
	// Done is treated as terminal by the quiescence machinery: once a
	// workload reports true while its server is idle, the server may stop
	// being visited at all (DESIGN.md §5.7), so a transition back to false
	// is only observed after something calls Server.MarkDirty (as the
	// cap setters and placement changes do). Implementations that can
	// re-arm a finished workload must dirty the server themselves.
	Done() bool
}

// DemandEpocher is optionally implemented by Workloads whose demand is
// piecewise constant between discrete events — the fluid-model norm.
// DemandEpoch returns a counter that must advance before any call on
// which a subsequent Demand or Done result could differ from the last
// tick's (for the same tick length); while every VM on a server reports
// an unchanged epoch, the server reuses last tick's demand and request
// vectors instead of rebuilding them (DESIGN.md §5.3). Implementations
// must also keep Demand free of side effects, since reused ticks skip
// the call entirely. Workloads that do not implement the interface opt
// their server out of reuse; correctness is unaffected.
type DemandEpocher interface {
	DemandEpoch() uint64
}

// VM is one virtual machine: a cgroup, a placement, and (optionally) a
// running workload. VMs appear as black boxes to PerfCloud, which sees
// only the cgroup counters and throttle knobs.
type VM struct {
	id       string
	vcpus    float64
	memBytes float64
	priority Priority
	appID    string
	cg       *cgroup.Cgroup
	server   *Server
	workload Workload
	epocher  DemandEpocher // workload's demand-epoch view; nil if unsupported

	lastGrant Grant

	// thrCache memoises cg.Throttle() keyed by the cgroup's lock-free
	// ThrottleSeq, so rebuild ticks read the caps without a mutex
	// round-trip per VM. Valid only while thrSeq matches; see throttle().
	thrCache cgroup.Throttle
	thrSeq   uint64
	thrValid bool
}

// throttle returns the VM's current cgroup caps, serving repeats from a
// seq-validated cache. SetThrottle bumps the cgroup's atomic sequence
// counter, so a matching sequence proves the cached copy is bit-identical
// to what Throttle() would return.
func (v *VM) throttle() cgroup.Throttle {
	seq := v.cg.ThrottleSeq()
	if !v.thrValid || seq != v.thrSeq {
		v.thrCache = v.cg.Throttle()
		v.thrSeq = seq
		v.thrValid = true
	}
	return v.thrCache
}

// ID returns the VM's unique identifier.
func (v *VM) ID() string { return v.id }

// VCPUs returns the VM's virtual CPU count.
func (v *VM) VCPUs() float64 { return v.vcpus }

// MemBytes returns the VM's memory size.
func (v *VM) MemBytes() float64 { return v.memBytes }

// Priority returns the VM's administrator-assigned priority.
func (v *VM) Priority() Priority { return v.priority }

// AppID returns the identifier of the application this VM belongs to
// ("" when the VM is standalone). All VMs of one scale-out application
// share an AppID; the node manager groups them by it.
func (v *VM) AppID() string { return v.appID }

// Cgroup returns the VM's control group (counters + throttle knobs).
func (v *VM) Cgroup() *cgroup.Cgroup { return v.cg }

// Server returns the physical server hosting the VM.
func (v *VM) Server() *Server { return v.server }

// Workload returns the currently attached workload (nil if idle).
func (v *VM) Workload() Workload { return v.workload }

// SetWorkload attaches (or, with nil, detaches) the VM's workload.
func (v *VM) SetWorkload(w Workload) {
	v.workload = w
	v.epocher, _ = w.(DemandEpocher)
	v.server.MarkDirty()
}

// demandEpoch returns the VM's current demand epoch and whether the VM
// supports epoch-based reuse at all. A workload-less VM demands nothing
// until SetWorkload dirties the server, so it is trivially stable.
func (v *VM) demandEpoch() (uint64, bool) {
	if v.workload == nil {
		return 0, true
	}
	if v.epocher == nil {
		return 0, false
	}
	return v.epocher.DemandEpoch(), true
}

// Idle reports whether the VM has no runnable workload this tick.
func (v *VM) Idle() bool { return v.workload == nil || v.workload.Done() }

// LastGrant returns the resources delivered on the most recent tick,
// used by tests and the trace recorder (PerfCloud itself never reads it —
// it observes cgroup counters only).
func (v *VM) LastGrant() Grant { return v.lastGrant }

// ServerConfig bundles the per-server resource model configurations.
type ServerConfig struct {
	Disk disk.Config
	CPU  cpu.Config
	Mem  memsys.Config
}

// DefaultServerConfig mirrors the paper's Dell PowerEdge R630 hosts.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		Disk: disk.DefaultConfig(),
		CPU:  cpu.DefaultConfig(),
		Mem:  memsys.DefaultConfig(),
	}
}

// Server is one physical machine.
type Server struct {
	id    string
	cfg   ServerConfig
	disk  *disk.Disk
	cpu   *cpu.Scheduler
	mem   *memsys.System
	cache *ContentCache
	vms   []*VM

	// clus and index tie the server back to its cluster and its stable
	// position in the creation-order server slice; the sharded tick path
	// keys its active bitset and shard ranges on index.
	clus  *Cluster
	index int

	// active records membership in the cluster's active set. Inactive
	// servers are provably quiescent and are not visited at all by the
	// sharded tick path — the O(active) contract of DESIGN.md §5.7.
	// wakePending marks servers already queued for reactivation so a
	// burst of dirtying events enqueues them once.
	active      bool
	wakePending bool

	// skipFrom is the cluster tick count at deactivation; the wake path
	// derives the number of elided grant-phase ticks from it instead of
	// counting them one by one.
	skipFrom uint64

	// pulled is the portion of this server's fast-path counters already
	// folded into its shard's aggregate; see shard.pull.
	pulled obs.FastPathSnapshot

	// epoch counts placement changes (VM add/remove/migrate). Samplers key
	// slice-indexed per-domain state on it: while the epoch is unchanged,
	// EachVM reports the same domains in the same order, so a cached index
	// stays valid and per-id lookups can be skipped entirely.
	epoch uint64

	// quiescent records that the last fully processed tick found every VM
	// idle, meaning the grant phase granted nothing and left no trace
	// beyond the disk's idle jitter draws (see DESIGN.md §5.2). While it
	// holds and no dirtying event intervenes, the grant phase may be
	// skipped outright; catchUp replays the elided jitter draws before
	// the next full tick, keeping results bit-for-bit identical. Any
	// mutation that could change a tick's outcome (workload attach,
	// placement change, cap change) clears it via MarkDirty, forcing one
	// full re-evaluation.
	quiescent bool

	// skipped counts grant-phase ticks elided while quiescent; skipIDs
	// snapshots the VM ids present during those ticks (placement changes
	// dirty the server, so the set is constant across a skipped stretch
	// even if it changes before the server next processes a full tick).
	skipped int
	skipIDs []string

	// Steady-state demand reuse (DESIGN.md §5.3). After a fully rebuilt
	// tick whose VMs all support DemandEpocher, epochs snapshots their
	// demand epochs and steadyValid arms the fast path: while every epoch
	// (and every cgroup throttle, and the tick length) is unchanged, the
	// demand/request vectors below still describe the current tick, so
	// the pipeline skips the Demand calls and vector rebuilds and goes
	// straight to the (input-memoized) allocators. MarkDirty and
	// placement changes disarm it.
	steadyValid  bool
	lastTickSec  float64
	epochs       []uint64
	throttleSeqs []uint64

	// fused arms the fused steady tick: set after a non-idle grant phase
	// leaves every allocator's input memo primed for the unchanged request
	// vectors, so the next steady tick can skip the idle scan, the memo
	// equality re-checks and the grant/result buffer copies, replaying only
	// the per-tick draws in place (see grantPhase). Guarded per tick by
	// steadyUsable plus each model's SteadyReady, so it degrades to the
	// ordinary paths the moment anything moves.
	fused bool

	// idleFlags caches each VM's idleness as observed by the most recent
	// grant-phase idle scan, index-aligned with vms. advancePhase reads it
	// instead of re-asking every workload: on fused ticks the scan is
	// skipped precisely because idleness provably cannot have changed
	// (Done is covered by the demand-epoch contract), and on every other
	// tick the scan has just refreshed the flags.
	idleFlags []bool

	// Cumulative fast-path accounting: grant-phase ticks elided by
	// quiescence, grant phases served by demand reuse, and grant phases
	// that rebuilt the demand/request vectors. Owned by the goroutine
	// ticking the server (plain fields, no hot-path atomics); read
	// between ticks via FastPathStats.
	statSkipped  uint64
	statSteady   uint64
	statRebuilds uint64

	// Per-tick scratch buffers, reused across ticks so the steady-state
	// resource pipeline allocates nothing. They are owned exclusively by
	// the goroutine ticking this server (servers never share scratch).
	demands    []Demand
	cpuReqs    []cpu.Request
	cpuGrants  []cpu.Grant
	memReqs    []memsys.Request
	memResults []memsys.Result
	diskReqs   []disk.Request
	diskGrants []disk.Grant
}

// Cache returns the server's page-cache model.
func (s *Server) Cache() *ContentCache { return s.cache }

// PlacementEpoch returns a counter that increments whenever the server's
// VM list changes (add, remove, migrate in or out). Samplers cache
// placement-ordered per-domain state and revalidate it only when the
// epoch moves.
func (s *Server) PlacementEpoch() uint64 { return s.epoch }

// Quiescent reports whether the server's last processed tick was a
// no-op (every VM idle) and no dirtying event has occurred since — i.e.
// whether the grant phase is currently being skipped.
func (s *Server) Quiescent() bool { return s.quiescent }

// MarkDirty clears the server's quiescent and steady-reuse state, forcing
// the next tick to run the full grant phase with freshly built request
// vectors. Actuators outside the cluster package (the hypervisor's cap
// setters) call it when they change state that the pipeline consumes;
// placement and workload changes call it internally.
func (s *Server) MarkDirty() {
	s.quiescent = false
	s.steadyValid = false
	s.activate()
}

// FastPathStats returns the server's cumulative fast-path accounting:
// how many grant-phase ticks quiescence elided, how many grant phases
// demand reuse served without rebuilding the request vectors, how many
// rebuilt, and each allocator's input-memo hit/miss counts. The counters
// are owned by the goroutine ticking the server, so read them between
// ticks (the monitoring/exposition cadence, not the tick hot path).
func (s *Server) FastPathStats() obs.FastPathSnapshot {
	fp := s.fastPathRaw()
	// An inactive server has pending elided ticks that its own counters
	// will only record on wake; fold them in so between-tick observers see
	// the same totals the flat per-tick accounting would report.
	if !s.active && s.clus != nil {
		fp.QuiescentSkips += s.clus.ticks - s.skipFrom
	}
	return fp
}

// fastPathRaw returns the counters the server itself has recorded, with
// no adjustment for ticks elided while inactive.
func (s *Server) fastPathRaw() obs.FastPathSnapshot {
	fp := obs.FastPathSnapshot{
		QuiescentSkips: s.statSkipped,
		SteadyReuses:   s.statSteady,
		Rebuilds:       s.statRebuilds,
	}
	fp.CPUMemoHits, fp.CPUMemoMisses = s.cpu.MemoStats()
	fp.MemMemoHits, fp.MemMemoMisses = s.mem.MemoStats()
	fp.DiskMemoHits, fp.DiskMemoMisses = s.disk.MemoStats()
	return fp
}

// bumpEpoch records a placement change and re-dirties the pipeline.
func (s *Server) bumpEpoch() {
	s.epoch++
	s.quiescent = false
	s.steadyValid = false
	s.activate()
}

// activate queues an inactive server for reactivation at the start of
// the next sharded tick. Dirtying events arrive from sequential phases
// only (framework ticks, workload Advance, controller actuation, test
// setup) — never from the parallel grant fan-out — so the queue needs no
// synchronization. Draining at the tick boundary keeps mid-sweep wakes
// from mutating the active bitset while it is being iterated.
func (s *Server) activate() {
	c := s.clus
	if c == nil || s.active || s.wakePending {
		return
	}
	s.wakePending = true
	c.wakes = append(c.wakes, s)
}

// ID returns the server's identifier.
func (s *Server) ID() string { return s.id }

// VMs returns the VMs currently placed on the server (live slice copy).
func (s *Server) VMs() []*VM { return append([]*VM(nil), s.vms...) }

// EachVM calls fn for every VM on the server in placement order without
// copying the VM slice — the hot-path alternative to VMs() for per-tick
// and per-interval iteration (monitoring, placement queries). fn must not
// add or remove VMs on this server.
func (s *Server) EachVM(fn func(*VM)) {
	for _, v := range s.vms {
		fn(v)
	}
}

// NumVMs returns the number of VMs placed on the server.
func (s *Server) NumVMs() int { return len(s.vms) }

// Disk returns the server's disk model (for tests and traces).
func (s *Server) Disk() *disk.Disk { return s.disk }

// Mem returns the server's memory-system model (for tests and traces).
func (s *Server) Mem() *memsys.System { return s.mem }

// CPUConfig returns the server's CPU configuration.
func (s *Server) CPUConfig() cpu.Config { return s.cfg.CPU }

// FindVM returns the VM with the given id hosted on this server, or nil.
func (s *Server) FindVM(id string) *VM {
	for _, v := range s.vms {
		if v.id == id {
			return v
		}
	}
	return nil
}

// grantPhase runs the server-local half of the resource pipeline for one
// tick: collect demands, grant CPU/memory/disk, accumulate cgroup counters
// and stamp each VM's lastGrant. It touches only state owned by this
// server (its resource models, their per-server RNG streams, its VMs'
// cgroups) plus each workload's Demand method, so the cluster may run the
// grant phase of different servers concurrently. Workload.Advance — which
// may mutate state shared across servers, such as a framework's task set —
// is deferred to advancePhase.
func (s *Server) grantPhase(tickSec float64, quiesce, reuse bool) {
	n := len(s.vms)
	if n == 0 {
		// A server with no VMs is trivially quiescent: the pipeline has
		// nothing to do and no draws to replay. Mark it so the sharded
		// tick path can deactivate it, and account elided ticks the same
		// way populated quiescent servers do (with an empty replay set).
		if s.quiescent && quiesce {
			if s.skipped == 0 {
				s.skipIDs = s.skipIDs[:0]
			}
			s.skipped++
			s.statSkipped++
			return
		}
		s.catchUp()
		s.quiescent = true
		return
	}
	// Fused steady tick: armed only after a non-idle tick primed every
	// allocator's memo for the current request vectors. While the demand
	// epochs, throttles and tick length hold (steadyUsable) the vectors are
	// provably unchanged, so each memo is a guaranteed hit and the reused
	// grant/result buffers already carry last tick's values — the tick
	// reduces to the per-client draws, the handful of draw-dependent
	// fields, and the cgroup accumulation, bit-for-bit what the ordinary
	// steady path below produces. Idle states cannot have changed either
	// (Done is covered by the demand-epoch contract), so the idle scan and
	// the quiescent check are skipped: the server was non-idle at arm time
	// and still is.
	if reuse && s.fused && s.steadyUsable(tickSec, n) &&
		s.cpu.SteadyReady(tickSec) && s.mem.SteadyReady(tickSec) && s.disk.SteadyReady(tickSec) {
		s.statSteady++
		s.cpu.ReplaySteady()
		s.mem.ReplaySteadyInPlace(s.memResults)
		s.disk.ReplaySteadyInPlace(s.diskGrants)
		for i, v := range s.vms {
			mr := &s.memResults[i]
			dg := &s.diskGrants[i]
			v.lastGrant.Instructions = mr.Instructions
			v.lastGrant.CPI = mr.CPI
			v.lastGrant.IOWaitMs = dg.WaitMs
			v.lastGrant.MemBytes = mr.MemBytes
			v.cg.AddTick(dg.Ops, dg.Bytes, dg.WaitMs, s.cpuGrants[i].Seconds,
				mr.Cycles, mr.Instructions, mr.LLCRefs, mr.LLCMisses)
		}
		return
	}
	s.fused = false
	// Quiescence fast path: when every VM is idle the full pipeline below
	// grants nothing — zero demands produce zero grants and cgroup
	// counters accumulate zeros. Its only lasting effect is the disk's
	// per-client idle jitter draws, which catchUp can replay later. The
	// first idle tick still runs the pipeline (it zeroes lastGrant and
	// settles the models' keep/GC state); every subsequent idle tick is
	// skipped until a workload wakes up or MarkDirty reports an external
	// change. Skipping is bit-for-bit invisible: enabling or disabling it
	// cannot change any simulation output (see DESIGN.md §5.2 and
	// TestQuiescenceMatchesFullPipeline).
	idle := true
	if cap(s.idleFlags) < n {
		s.idleFlags = make([]bool, n)
	}
	s.idleFlags = s.idleFlags[:n]
	for i, v := range s.vms {
		vi := v.Idle()
		s.idleFlags[i] = vi
		if !vi {
			idle = false
		}
	}
	if idle && s.quiescent && quiesce {
		if s.skipped == 0 {
			s.skipIDs = s.skipIDs[:0]
			for _, v := range s.vms {
				s.skipIDs = append(s.skipIDs, v.id)
			}
		}
		s.skipped++
		s.statSkipped++
		return
	}
	s.catchUp()

	// Steady-state reuse: when every VM's demand epoch (and throttle, and
	// the tick length) matches the snapshot taken after the last full
	// rebuild, the demand and request vectors below already describe this
	// tick, so the Demand calls and the three rebuild loops are skipped.
	// The allocators still run — the disk draws fresh queueing-delay
	// jitter every tick — but on identical inputs the CPU and memory
	// allocators return their cached grants and the disk reuses its solved
	// shares. Like quiescence, reuse is bit-for-bit invisible (see
	// TestMemoizationMatchesFullPipeline).
	steady := reuse && s.steadyUsable(tickSec, n)
	if steady {
		s.statSteady++
	} else {
		s.statRebuilds++
		s.demands = s.demands[:0]
		for _, v := range s.vms {
			var d Demand
			if !v.Idle() {
				d = v.workload.Demand(tickSec)
			}
			s.demands = append(s.demands, d)
		}

		// CPU.
		s.cpuReqs = s.cpuReqs[:0]
		for i, v := range s.vms {
			s.cpuReqs = append(s.cpuReqs, cpu.Request{
				ClientID: v.id,
				Seconds:  s.demands[i].CPUSeconds,
				VCPUs:    v.vcpus,
				CapCores: v.throttle().CPUCores,
			})
		}
	}
	s.cpuGrants = s.cpu.AllocateInto(s.cpuGrants[:0], tickSec, s.cpuReqs)

	// Memory system.
	if !steady {
		s.memReqs = s.memReqs[:0]
		for i, v := range s.vms {
			s.memReqs = append(s.memReqs, memsys.Request{
				ClientID:        v.id,
				CPUSeconds:      s.cpuGrants[i].Seconds,
				CoreCPI:         s.demands[i].CoreCPI,
				LLCRefsPerInstr: s.demands[i].LLCRefsPerInstr,
				BytesPerInstr:   s.demands[i].BytesPerInstr,
				WorkingSetBytes: s.demands[i].WorkingSetBytes,
			})
		}
	}
	s.memResults = s.mem.ComputeInto(s.memResults[:0], tickSec, s.memReqs)

	// Disk.
	if !steady {
		s.diskReqs = s.diskReqs[:0]
		for i, v := range s.vms {
			th := v.throttle()
			s.diskReqs = append(s.diskReqs, disk.Request{
				ClientID: v.id,
				Ops:      s.demands[i].IOOps,
				Bytes:    s.demands[i].IOBytes,
				CapIOPS:  th.ReadIOPS,
				CapBPS:   th.ReadBPS,
			})
		}
	}
	s.diskGrants = s.disk.AllocateInto(s.diskGrants[:0], tickSec, s.diskReqs)

	// Account.
	for i, v := range s.vms {
		g := Grant{
			CPUSeconds:   s.cpuGrants[i].Seconds,
			Instructions: s.memResults[i].Instructions,
			CPI:          s.memResults[i].CPI,
			IOOps:        s.diskGrants[i].Ops,
			IOBytes:      s.diskGrants[i].Bytes,
			IOWaitMs:     s.diskGrants[i].WaitMs,
			MemBytes:     s.memResults[i].MemBytes,
		}
		v.lastGrant = g
		v.cg.AddTick(g.IOOps, g.IOBytes, g.IOWaitMs, g.CPUSeconds,
			s.memResults[i].Cycles, s.memResults[i].Instructions,
			s.memResults[i].LLCRefs, s.memResults[i].LLCMisses)
	}

	// A fully processed all-idle tick proves the next one is skippable.
	s.quiescent = idle
	// After a rebuild, snapshot each VM's demand epoch to arm reuse for
	// the next tick; a reused tick leaves the snapshot untouched (it
	// matched by definition).
	if !steady {
		s.snapshotEpochs(tickSec)
	}
	// Arm the fused steady tick for the next round: the server is busy,
	// reuse is armed, and every allocator just primed (or re-hit) its memo
	// for the request vectors now in the buffers. Idle servers arm the
	// quiescence path instead — the two fast paths are mutually exclusive.
	s.fused = !idle && s.steadyValid &&
		s.cpu.SteadyReady(tickSec) && s.mem.SteadyReady(tickSec) && s.disk.SteadyReady(tickSec)
}

// steadyUsable reports whether the request vectors cached from the last
// full rebuild still describe a tick of length tickSec: the reuse state
// is armed, every VM's demand epoch matches the snapshot, and every
// cgroup's throttle sequence is unchanged — the caps baked into the
// cached requests are still in force. The throttle check makes reuse
// self-validating against cap changes applied directly through a Cgroup
// without a MarkDirty call, at the cost of one atomic load per VM.
func (s *Server) steadyUsable(tickSec float64, n int) bool {
	if !s.steadyValid || tickSec != s.lastTickSec ||
		len(s.epochs) != n || len(s.throttleSeqs) != n ||
		len(s.cpuReqs) != n || len(s.memReqs) != n || len(s.diskReqs) != n {
		return false
	}
	for i, v := range s.vms {
		ep, ok := v.demandEpoch()
		if !ok || ep != s.epochs[i] || v.cg.ThrottleSeq() != s.throttleSeqs[i] {
			return false
		}
	}
	return true
}

// snapshotEpochs records the demand epochs and throttle sequences backing
// the just-rebuilt request vectors. A VM whose workload does not report
// epochs disarms reuse for the whole server — its demand could change
// silently.
func (s *Server) snapshotEpochs(tickSec float64) {
	s.lastTickSec = tickSec
	s.epochs = s.epochs[:0]
	s.throttleSeqs = s.throttleSeqs[:0]
	for _, v := range s.vms {
		ep, ok := v.demandEpoch()
		if !ok {
			s.steadyValid = false
			return
		}
		s.epochs = append(s.epochs, ep)
		s.throttleSeqs = append(s.throttleSeqs, v.cg.ThrottleSeq())
	}
	s.steadyValid = true
}

// catchUp replays the random draws of any skipped idle ticks before a
// full grant phase runs, so the disk's seeded stream sits exactly where
// a non-skipping run would have left it. It uses the VM set snapshotted
// when the skipped stretch began: placement changes dirty the server and
// end the stretch, so the snapshot is the set present throughout it.
func (s *Server) catchUp() {
	if s.skipped == 0 {
		return
	}
	s.disk.AdvanceIdle(s.skipped, s.skipIDs)
	s.skipped = 0
}

// advancePhase hands every VM its granted resources. Run sequentially in
// placement order across all servers after every grant phase finished, so
// Advance implementations may mutate cross-server state (a task shared
// between executors, a framework's bookkeeping) without synchronization
// and with a deterministic ordering.
func (s *Server) advancePhase(tickSec float64) {
	if len(s.idleFlags) != len(s.vms) {
		// No grant phase has classified this VM set yet (placement changed
		// with ticks suppressed); fall back to asking each workload.
		for _, v := range s.vms {
			if !v.Idle() {
				v.workload.Advance(tickSec, v.lastGrant)
			}
		}
		return
	}
	for i, v := range s.vms {
		if !s.idleFlags[i] {
			v.workload.Advance(tickSec, v.lastGrant)
		}
	}
}

// Cluster is the set of servers plus a VM registry. It implements
// sim.Tickable; register it with the engine at the resource-pipeline
// priority (after frameworks schedule, before controllers observe).
type Cluster struct {
	servers []*Server
	srvByID map[string]*Server
	vmsByID map[string]*VM

	// placeSeq counts placement mutations (server add, VM add/remove/
	// migrate). External indexes over the cluster (the cloud manager's
	// load heap) revalidate against it instead of rescanning.
	placeSeq uint64

	// workers bounds the goroutines used for the parallel grant phase:
	// 1 forces the sequential mode, 0 defers to the package default.
	workers int

	// ticks counts Tick invocations on the sharded path. It is the time
	// base for O(1) elided-tick accounting: a server deactivated at tick
	// k and woken while the counter reads w missed exactly w-1-k grant
	// phases. Stride replays ticks without advancing the engine clock, so
	// this cluster-owned counter — not sim.Clock — is the only correct
	// base.
	ticks uint64

	// Sharded-tick state (DESIGN.md §5.7): the shard partition over the
	// server slice, the active bitset it indexes, the wake queue drained
	// at each tick boundary, and the cluster-wide inactive count.
	shards      []shard
	activeBits  []uint64
	shardBits   []uint64 // bit per shard, set while the shard has active servers
	wakes       []*Server
	inactive    int
	liveShards  []int // per-tick scratch: indices of shards with active servers
	partServers int   // len(servers) at the last partition build
	partSetting int   // shard setting at the last partition build
	shardBase   int   // partition arithmetic: base shard size ...
	shardRem    int   // ... and how many leading shards hold one extra

	// shardsVal/shardsSet are the per-cluster shard-count override:
	// unset defers to the package default (see SetDefaultShards).
	shardsVal int
	shardsSet bool

	// quiesce selects the quiescence fast path for this cluster:
	// 0 defers to the package default, 1 forces it on, 2 forces it off.
	quiesce int8

	// reuse selects the steady-state demand-reuse fast path, with the
	// same encoding as quiesce.
	reuse int8

	// stride selects event-driven stepping (Stride fast-forwarding runs of
	// event-free ticks), with the same encoding as quiesce.
	stride int8

	// Cumulative stride accounting: engine ticks elided by Stride and how
	// many times a stride horizon was computed (i.e. Stride invocations).
	// Owned by the goroutine stepping the engine; read between ticks via
	// FastPathStats.
	statStrideSkips       uint64
	statHorizonRecomputes uint64

	// statShardSkips counts shards skipped wholesale — per tick, per
	// shard whose every server was inactive.
	statShardSkips uint64

	// Engine self-profiling (wall-clock, non-deterministic, never in sim
	// outputs): sampled phase timers for the grant fan-out, the advance
	// sweep and stride replay. Nil — one branch per phase — until
	// SetHealth attaches a health layer.
	health   *obs.Health
	tGrant   *obs.PhaseTimer
	tAdvance *obs.PhaseTimer
	tStride  *obs.PhaseTimer
}

// defaultTickWorkers is the package-wide worker default for clusters that
// never called SetTickWorkers; 0 means GOMAXPROCS. It is atomic so tests
// and tools can flip modes without racing live clusters.
var defaultTickWorkers atomic.Int64

// SetDefaultTickWorkers sets the package-wide default worker count for
// Cluster.Tick and returns the previous setting. n == 1 makes every
// cluster tick sequentially, n <= 0 restores the automatic (GOMAXPROCS)
// default. Per-cluster SetTickWorkers overrides it.
func SetDefaultTickWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(defaultTickWorkers.Swap(int64(n)))
}

// defaultQuiescenceOff disables the quiescence fast path package-wide
// when set; the zero value (enabled) is the normal operating mode. It is
// atomic so tests can flip modes without racing live clusters.
var defaultQuiescenceOff atomic.Bool

// SetDefaultQuiescence toggles the package-wide default for the
// quiescence fast path (skipping the grant phase of servers whose VMs
// are all idle) and returns the previous setting. The fast path is
// enabled by default; both settings produce bit-for-bit identical
// simulations — the toggle exists so tests can prove exactly that.
// Per-cluster SetQuiescence overrides it.
func SetDefaultQuiescence(enabled bool) bool {
	return !defaultQuiescenceOff.Swap(!enabled)
}

// defaultDemandReuseOff disables the steady-state demand-reuse fast path
// package-wide when set; the zero value (enabled) is the normal
// operating mode. It is atomic so tests can flip modes without racing
// live clusters.
var defaultDemandReuseOff atomic.Bool

// SetDefaultDemandReuse toggles the package-wide default for the
// steady-state demand-reuse fast path (reusing a server's demand and
// request vectors while no VM's demand epoch moved) and returns the
// previous setting. The fast path is enabled by default; both settings
// produce bit-for-bit identical simulations — the toggle exists so tests
// can prove exactly that. Per-cluster SetDemandReuse overrides it.
func SetDefaultDemandReuse(enabled bool) bool {
	return !defaultDemandReuseOff.Swap(!enabled)
}

// defaultStrideOff disables event-driven stepping package-wide when set;
// the zero value (enabled) is the normal operating mode. It is atomic so
// tests can flip modes without racing live clusters.
var defaultStrideOff atomic.Bool

// SetDefaultStride toggles the package-wide default for event-driven
// stepping (Stride eliding runs of event-free engine ticks) and returns
// the previous setting. Striding is enabled by default; both settings
// produce bit-for-bit identical simulations — every elided tick's grant
// pipeline, random draws and counter arithmetic are replayed exactly, only
// the engine dispatch and provably idle framework scans are skipped (see
// DESIGN.md §5.6 and TestStrideMatchesPerTick). Per-cluster SetStride
// overrides it.
func SetDefaultStride(enabled bool) bool {
	return !defaultStrideOff.Swap(!enabled)
}

// New creates an empty cluster.
func New() *Cluster {
	return &Cluster{
		srvByID: make(map[string]*Server),
		vmsByID: make(map[string]*VM),
	}
}

// SetTickWorkers bounds the worker pool used to run the per-server grant
// phase: 1 selects the deterministic sequential mode, 0 (the default)
// defers to SetDefaultTickWorkers / GOMAXPROCS. Both modes produce
// bit-for-bit identical simulations; see DESIGN.md §5.1.
func (c *Cluster) SetTickWorkers(n int) {
	if n < 0 {
		n = 0
	}
	c.workers = n
}

// TickWorkers returns the effective worker bound for this cluster's tick.
func (c *Cluster) TickWorkers() int {
	w := c.workers
	if w == 0 {
		w = int(defaultTickWorkers.Load())
	}
	return sim.Workers(w)
}

// SetQuiescence overrides the package-wide quiescence default for this
// cluster (see SetDefaultQuiescence).
func (c *Cluster) SetQuiescence(enabled bool) {
	if enabled {
		c.quiesce = 1
	} else {
		c.quiesce = 2
	}
}

// QuiescenceEnabled returns the effective quiescence setting for this
// cluster's tick.
func (c *Cluster) QuiescenceEnabled() bool {
	switch c.quiesce {
	case 1:
		return true
	case 2:
		return false
	}
	return !defaultQuiescenceOff.Load()
}

// SetDemandReuse overrides the package-wide demand-reuse default for
// this cluster (see SetDefaultDemandReuse).
func (c *Cluster) SetDemandReuse(enabled bool) {
	if enabled {
		c.reuse = 1
	} else {
		c.reuse = 2
	}
}

// DemandReuseEnabled returns the effective demand-reuse setting for this
// cluster's tick.
func (c *Cluster) DemandReuseEnabled() bool {
	switch c.reuse {
	case 1:
		return true
	case 2:
		return false
	}
	return !defaultDemandReuseOff.Load()
}

// SetStride overrides the package-wide event-driven stepping default for
// this cluster (see SetDefaultStride).
func (c *Cluster) SetStride(enabled bool) {
	if enabled {
		c.stride = 1
	} else {
		c.stride = 2
	}
}

// StrideEnabled returns the effective event-driven stepping setting for
// this cluster.
func (c *Cluster) StrideEnabled() bool {
	switch c.stride {
	case 1:
		return true
	case 2:
		return false
	}
	return !defaultStrideOff.Load()
}

// SetHealth attaches an engine self-profiling layer: sampled wall-clock
// timers around the grant fan-out, the advance sweep and stride replay.
// The timers measure the simulator's own execution — they never touch
// simulation state or outputs — and nil detaches them, restoring the
// single-branch no-op fast path.
func (c *Cluster) SetHealth(h *obs.Health) {
	c.health = h
	c.tGrant = h.Timer("cluster.grant")
	c.tAdvance = h.Timer("cluster.advance")
	c.tStride = h.Timer("cluster.stride")
}

// AddServer creates a server with the given id and configuration.
// The rng factory seeds the server's stochastic resource models.
func (c *Cluster) AddServer(id string, cfg ServerConfig, rng *sim.RNG) *Server {
	if c.FindServer(id) != nil {
		panic(fmt.Sprintf("cluster: duplicate server %q", id))
	}
	// The per-server RNG streams are named by server id alone, so they
	// depend only on (master seed, id) — never on which shard the server
	// lands in or how many shards exist. Any repartition of the cluster
	// therefore sees bit-identical random sequences.
	s := &Server{
		id:     id,
		cfg:    cfg,
		disk:   disk.New(cfg.Disk, rng.Streamf("disk/%s", id)),
		cpu:    cpu.New(cfg.CPU),
		mem:    memsys.New(cfg.Mem, rng.Streamf("memsys/%s", id)),
		cache:  NewContentCache(16<<30, 120),
		clus:   c,
		index:  len(c.servers),
		active: true,
	}
	c.servers = append(c.servers, s)
	c.srvByID[id] = s
	c.placeSeq++
	return s
}

// AddVM creates a VM on the given server.
func (c *Cluster) AddVM(server *Server, id string, vcpus, memBytes float64, prio Priority, appID string) *VM {
	if _, dup := c.vmsByID[id]; dup {
		panic(fmt.Sprintf("cluster: duplicate VM %q", id))
	}
	v := &VM{
		id:       id,
		vcpus:    vcpus,
		memBytes: memBytes,
		priority: prio,
		appID:    appID,
		cg:       cgroup.New(id),
		server:   server,
	}
	server.vms = append(server.vms, v)
	server.bumpEpoch()
	c.vmsByID[id] = v
	c.placeSeq++
	return v
}

// MoveVM live-migrates a VM to another server, preserving the VM object
// (and thus its cgroup, workload and any references frameworks hold to
// it). Returns an error for unknown ids; moving to the current server is
// a no-op.
func (c *Cluster) MoveVM(vmID, serverID string) error {
	v, ok := c.vmsByID[vmID]
	if !ok {
		return fmt.Errorf("cluster: no VM %q", vmID)
	}
	dst := c.FindServer(serverID)
	if dst == nil {
		return fmt.Errorf("cluster: no server %q", serverID)
	}
	if v.server == dst {
		return nil
	}
	src := v.server
	for i, u := range src.vms {
		if u == v {
			src.vms = append(src.vms[:i], src.vms[i+1:]...)
			break
		}
	}
	dst.vms = append(dst.vms, v)
	v.server = dst
	src.bumpEpoch()
	dst.bumpEpoch()
	c.placeSeq++
	return nil
}

// RemoveVM detaches a VM from its server and the registry (used by the
// cloud manager for termination/migration). Removing an unknown VM is a
// no-op.
func (c *Cluster) RemoveVM(id string) {
	v, ok := c.vmsByID[id]
	if !ok {
		return
	}
	delete(c.vmsByID, id)
	srv := v.server
	for i, u := range srv.vms {
		if u == v {
			srv.vms = append(srv.vms[:i], srv.vms[i+1:]...)
			break
		}
	}
	srv.bumpEpoch()
	c.placeSeq++
}

// PlacementSeq returns a counter that increments on every placement
// mutation: server provisioning and VM add, remove or migrate. External
// indexes built over the cluster (the cloud manager's load heap) compare
// it against the value at their last sync to detect out-of-band changes.
func (c *Cluster) PlacementSeq() uint64 { return c.placeSeq }

// FastPathStats sums the fast-path accounting of every server in the
// cluster and adds the cluster-level stride and shard counters. Call it
// between ticks (see Server.FastPathStats). With a current shard
// partition the sum is assembled in O(active servers + shards) from the
// per-shard aggregates; otherwise it falls back to the full sweep.
func (c *Cluster) FastPathStats() obs.FastPathSnapshot {
	fp := obs.FastPathSnapshot{
		StrideSkips:       c.statStrideSkips,
		HorizonRecomputes: c.statHorizonRecomputes,
		ShardSkips:        c.statShardSkips,
	}
	if !c.partitionCurrent() {
		for _, s := range c.servers {
			fp.Add(s.FastPathStats())
		}
		return fp
	}
	// Pull the still-active servers' fresh counter deltas into their
	// shards (inactive servers were pulled when they deactivated), then
	// sum the shard aggregates plus each shard's pending elided ticks.
	c.eachActive(func(s *Server) { c.shards[c.shardIndex(s.index)].pull(s) })
	for i := range c.shards {
		sh := &c.shards[i]
		fp.Add(sh.agg)
		fp.QuiescentSkips += uint64(sh.inactive)*c.ticks - sh.sumSkipFrom
	}
	return fp
}

// Servers returns all servers in creation order (a copy). Iteration-only
// callers should prefer EachServer, which does not allocate.
func (c *Cluster) Servers() []*Server { return append([]*Server(nil), c.servers...) }

// EachServer calls fn for every server in creation order without copying
// the server slice. fn must not add servers.
func (c *Cluster) EachServer(fn func(*Server)) {
	for _, s := range c.servers {
		fn(s)
	}
}

// NumServers returns the number of servers in the cluster.
func (c *Cluster) NumServers() int { return len(c.servers) }

// NumVMs returns the number of VMs across all servers.
func (c *Cluster) NumVMs() int { return len(c.vmsByID) }

// ActiveServers returns how many servers are currently in the active set
// (visited by the sharded tick path). With sharding disabled every server
// counts as active.
func (c *Cluster) ActiveServers() int { return len(c.servers) - c.inactive }

// FindServer returns the server with the given id, or nil.
func (c *Cluster) FindServer(id string) *Server { return c.srvByID[id] }

// FindVM returns the VM with the given id, or nil.
func (c *Cluster) FindVM(id string) *VM { return c.vmsByID[id] }

// VMs returns all VMs across all servers in placement order.
func (c *Cluster) VMs() []*VM {
	var out []*VM
	for _, s := range c.servers {
		out = append(out, s.vms...)
	}
	return out
}

// EachVM calls fn for every VM across all servers in placement order
// without building the copy VMs() returns. fn must not add, remove or
// migrate VMs.
func (c *Cluster) EachVM(fn func(*VM)) {
	for _, s := range c.servers {
		for _, v := range s.vms {
			fn(v)
		}
	}
}

// AppVMs returns the VMs belonging to the given application id, across
// all servers.
func (c *Cluster) AppVMs(appID string) []*VM {
	var out []*VM
	c.EachAppVM(appID, func(v *VM) { out = append(out, v) })
	return out
}

// EachAppVM calls fn for every VM of the given application in placement
// order, without copying. fn must not add, remove or migrate VMs.
func (c *Cluster) EachAppVM(appID string, fn func(*VM)) {
	for _, s := range c.servers {
		for _, v := range s.vms {
			if v.appID == appID {
				fn(v)
			}
		}
	}
}

// Tick advances every server's resource pipeline by one tick: the
// server-local grant phases fan out across workers drawn from the
// process-wide shared slot pool (every server's state — resource models,
// RNG streams, cgroups — is goroutine-private, so any interleaving yields
// the same result), then the advance phase hands grants to workloads
// sequentially in placement order, because framework executors may mutate
// task state shared across servers (speculative and cloned attempts of
// one task run on several machines). Drawing from the shared pool keeps
// nested fan-outs — concurrent experiment repetitions each ticking their
// own cluster — from oversubscribing GOMAXPROCS.
func (c *Cluster) Tick(clk *sim.Clock) {
	tickSec := clk.TickSeconds()
	quiesce := c.QuiescenceEnabled()
	reuse := c.DemandReuseEnabled()
	if c.ShardSetting() < 0 {
		c.flatTick(tickSec, quiesce, reuse)
		return
	}
	c.shardedTick(tickSec, quiesce, reuse)
}

// flatTick is the pre-shard tick path: every server is visited every
// tick. Kept verbatim behind SetDefaultShards(-1)/SetShards(-1) so the
// equivalence tests can compare the sharded path against it.
func (c *Cluster) flatTick(tickSec float64, quiesce, reuse bool) {
	if c.inactive > 0 {
		// Sharding was just disabled with servers still parked in the
		// inactive set; settle their pending elided ticks so the flat
		// sweep below sees ordinary quiescent servers.
		c.wakeAll(c.ticks)
	}
	tg := c.tGrant.Begin()
	sim.ForEachShared(len(c.servers), c.TickWorkers(), func(i int) {
		c.servers[i].grantPhase(tickSec, quiesce, reuse)
	})
	c.tGrant.End(tg)
	ta := c.tAdvance.Begin()
	for _, s := range c.servers {
		s.advancePhase(tickSec)
	}
	c.tAdvance.End(ta)
}

// Stride fast-forwards the cluster through up to max upcoming ticks whose
// engine dispatch the caller has proven redundant — every framework's tick
// would be a no-op and no controller interval is due — replaying each
// elided tick's full resource pipeline so results stay bit-for-bit
// identical to per-tick stepping (the AdvanceTo path of DESIGN.md §5.6).
// The caller owns all cluster-external event sources; Stride itself only
// has to stop when the pipeline produces an event the frameworks must see,
// which the stop callback detects after each replayed tick (in practice: a
// task attempt retiring, observable as a freed executor slot). sync is
// invoked before each replayed tick with that tick's exact simulated time
// and must perform the per-tick clock synchronization the elided framework
// ticks would have (executor SyncClock), so completion timestamps come out
// identical. Returns the number of ticks elided, 0 <= n <= max.
//
// Demand-epoch changes during the stride — a workload finishing, a burst
// antagonist flipping phase, a task attempt tapering off — do not stop it:
// grantPhase natively detects them and rebuilds, exactly as it does under
// per-tick stepping.
func (c *Cluster) Stride(clk *sim.Clock, max int64, sync func(nowSec float64), stop func() bool) int64 {
	if max <= 0 || !c.StrideEnabled() {
		return 0
	}
	c.statHorizonRecomputes++
	ts := c.tStride.Begin()
	var n int64
	for n < max {
		sync(clk.PeekSeconds(n))
		c.Tick(clk)
		n++
		c.statStrideSkips++
		if stop() {
			break
		}
	}
	c.tStride.End(ts)
	return n
}
