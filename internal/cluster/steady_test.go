package cluster

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"perfcloud/internal/sim"
)

// epochWorkload is a fakeWorkload that reports demand epochs, as the
// exec and workloads packages do: the epoch moves exactly when the next
// Demand call could return something different.
type epochWorkload struct {
	fakeWorkload
	epoch uint64
}

func (f *epochWorkload) DemandEpoch() uint64 { return f.epoch }

func (f *epochWorkload) setDemand(d Demand) {
	f.demand = d
	f.epoch++
}

// setDemandReuse flips the package demand-reuse default and restores it
// on cleanup.
func setDemandReuse(t *testing.T, enabled bool) {
	t.Helper()
	prev := SetDefaultDemandReuse(enabled)
	t.Cleanup(func() { SetDefaultDemandReuse(prev) })
}

// steadyScenario builds a 2-server cluster of epoch-reporting workloads,
// runs it with mid-run demand changes and a mid-run throttle change, and
// returns every grant every workload observed.
func steadyScenario(seed int64) [][]Grant {
	eng := sim.NewEngine(100*time.Millisecond, seed)
	c := New()
	c.SetTickWorkers(1)
	var ws []*epochWorkload
	for s := 0; s < 2; s++ {
		srv := c.AddServer(fmt.Sprintf("s%d", s), DefaultServerConfig(), eng.RNG())
		for i := 0; i < 3; i++ {
			vm := c.AddVM(srv, fmt.Sprintf("s%d-vm%d", s, i), 2, 8<<30, LowPriority, "")
			w := &epochWorkload{fakeWorkload: fakeWorkload{name: vm.ID(), demand: busyDemand()}}
			vm.SetWorkload(w)
			ws = append(ws, w)
		}
	}
	eng.Register(c)
	eng.Run(20)
	halved := busyDemand()
	halved.CPUSeconds /= 2
	halved.IOOps /= 2
	ws[1].setDemand(halved) // epoch bump mid-run
	eng.Run(10)
	// A throttle change without MarkDirty: steadyUsable must notice via
	// the cgroup's live caps (the paper's static-capping baseline applies
	// caps exactly this way).
	c.FindVM("s1-vm0").Cgroup().SetCPUCores(0.5)
	eng.Run(10)
	ws[4].setDemand(Demand{}) // a VM goes fully idle
	eng.Run(10)
	var out [][]Grant
	for _, w := range ws {
		out = append(out, w.grants)
	}
	return out
}

func TestDemandReuseMatchesFullRebuild(t *testing.T) {
	setDemandReuse(t, true)
	fast := steadyScenario(7)
	setDemandReuse(t, false)
	slow := steadyScenario(7)
	if !reflect.DeepEqual(fast, slow) {
		t.Fatal("steady-state reuse changed the granted resources")
	}
}

func TestDemandReuseSkipsDemandCalls(t *testing.T) {
	setDemandReuse(t, true)
	eng := sim.NewEngine(100*time.Millisecond, 3)
	c := New()
	c.SetTickWorkers(1)
	srv := c.AddServer("s0", DefaultServerConfig(), eng.RNG())
	vm := c.AddVM(srv, "vm0", 2, 8<<30, LowPriority, "")
	w := &countingEpochWorkload{}
	w.demand = busyDemand()
	vm.SetWorkload(w)
	eng.Register(c)

	eng.Run(1) // full rebuild: snapshots the epoch
	if w.demandCalls != 1 {
		t.Fatalf("first tick made %d Demand calls, want 1", w.demandCalls)
	}
	eng.Run(10) // steady: the server reuses its request vectors
	if w.demandCalls != 1 {
		t.Fatalf("steady ticks re-polled Demand (%d calls); fast path did not engage", w.demandCalls)
	}
	if !srv.steadyValid {
		t.Fatal("server dropped its steady snapshot")
	}

	w.epoch++ // demand may change now
	eng.Run(1)
	if w.demandCalls != 2 {
		t.Fatalf("epoch bump did not force a rebuild (%d calls)", w.demandCalls)
	}
}

// countingEpochWorkload counts Demand calls to observe the fast path.
type countingEpochWorkload struct {
	epochWorkload
	demandCalls int
}

func (f *countingEpochWorkload) Demand(tickSec float64) Demand {
	f.demandCalls++
	return f.demand
}

func TestNonEpochWorkloadDisarmsReuse(t *testing.T) {
	setDemandReuse(t, true)
	eng := sim.NewEngine(100*time.Millisecond, 3)
	c := New()
	c.SetTickWorkers(1)
	srv := c.AddServer("s0", DefaultServerConfig(), eng.RNG())
	vm := c.AddVM(srv, "vm0", 2, 8<<30, LowPriority, "")
	vm.SetWorkload(&fakeWorkload{name: "plain", demand: busyDemand()})
	eng.Register(c)
	eng.Run(5)
	if srv.steadyValid {
		t.Fatal("server armed steady reuse over a workload that cannot report demand epochs")
	}
}
