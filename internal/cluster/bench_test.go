package cluster

import (
	"fmt"
	"testing"
	"time"

	"perfcloud/internal/sim"
)

// BenchmarkQuiescentCluster ticks a 16-server, 128-VM cluster in which
// every VM is idle (no workload attached). This is the shape of the
// large-scale mixes between task waves: most servers host only VMs that
// currently place zero demand, yet the seed pipeline paid the full grant
// phase (CPU, memory and disk allocation plus cgroup accounting) on every
// one of them every tick.
func BenchmarkQuiescentCluster(b *testing.B) {
	eng := sim.NewEngine(100*time.Millisecond, 3)
	cl := New()
	cl.SetTickWorkers(1) // isolate the per-server cost from fan-out noise
	for s := 0; s < 16; s++ {
		srv := cl.AddServer(fmt.Sprintf("s%02d", s), DefaultServerConfig(), eng.RNG())
		for i := 0; i < 8; i++ {
			cl.AddVM(srv, fmt.Sprintf("s%02d-vm%d", s, i), 2, 8<<30, LowPriority, "")
		}
	}
	clk := eng.Clock()
	cl.Tick(clk) // settle scratch buffers and quiescence state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Tick(clk)
	}
}
