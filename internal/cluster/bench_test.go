package cluster

import (
	"fmt"
	"testing"
	"time"

	"perfcloud/internal/cpu"
	"perfcloud/internal/disk"
	"perfcloud/internal/memsys"
	"perfcloud/internal/sim"
)

// BenchmarkQuiescentCluster ticks a 16-server, 128-VM cluster in which
// every VM is idle (no workload attached). This is the shape of the
// large-scale mixes between task waves: most servers host only VMs that
// currently place zero demand, yet the seed pipeline paid the full grant
// phase (CPU, memory and disk allocation plus cgroup accounting) on every
// one of them every tick.
func BenchmarkQuiescentCluster(b *testing.B) {
	eng := sim.NewEngine(100*time.Millisecond, 3)
	cl := New()
	cl.SetTickWorkers(1) // isolate the per-server cost from fan-out noise
	for s := 0; s < 16; s++ {
		srv := cl.AddServer(fmt.Sprintf("s%02d", s), DefaultServerConfig(), eng.RNG())
		for i := 0; i < 8; i++ {
			cl.AddVM(srv, fmt.Sprintf("s%02d-vm%d", s, i), 2, 8<<30, LowPriority, "")
		}
	}
	clk := eng.Clock()
	cl.Tick(clk) // settle scratch buffers and quiescence state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Tick(clk)
	}
}

// steadyBench is a minimal epoch-reporting workload with constant demand
// and no bookkeeping, so the benchmark measures only the pipeline.
type steadyBench struct{ demand Demand }

func (w *steadyBench) Name() string                     { return "steady" }
func (w *steadyBench) Demand(tickSec float64) Demand    { return w.demand }
func (w *steadyBench) Advance(tickSec float64, g Grant) {}
func (w *steadyBench) Done() bool                       { return false }
func (w *steadyBench) DemandEpoch() uint64              { return 0 }

// activeCluster builds a 16-server, 128-VM cluster in which every VM runs
// an epoch-reporting workload with constant demand — the steady state of
// a busy mix mid-wave, where quiescence never applies and the demand
// vectors repeat tick after tick.
func activeCluster(eng *sim.Engine) *Cluster {
	cl := New()
	cl.SetTickWorkers(1) // isolate the per-server cost from fan-out noise
	for s := 0; s < 16; s++ {
		srv := cl.AddServer(fmt.Sprintf("s%02d", s), DefaultServerConfig(), eng.RNG())
		for i := 0; i < 8; i++ {
			vm := cl.AddVM(srv, fmt.Sprintf("s%02d-vm%d", s, i), 2, 8<<30, LowPriority, "")
			vm.SetWorkload(&steadyBench{demand: busyDemand()})
		}
	}
	return cl
}

// setAllFastPaths flips demand reuse and all three allocator memos at
// once, returning a restore function.
func setAllFastPaths(enabled bool) func() {
	prevReuse := SetDefaultDemandReuse(enabled)
	prevCPU := cpu.SetDefaultMemoize(enabled)
	prevMem := memsys.SetDefaultMemoize(enabled)
	prevDisk := disk.SetDefaultMemoize(enabled)
	return func() {
		SetDefaultDemandReuse(prevReuse)
		cpu.SetDefaultMemoize(prevCPU)
		memsys.SetDefaultMemoize(prevMem)
		disk.SetDefaultMemoize(prevDisk)
	}
}

// BenchmarkActiveServerTick measures the steady-state cost of ticking
// busy servers with the demand-epoch reuse and allocator memos on (the
// shipped configuration). Compare against BenchmarkActiveServerTickNoReuse
// for the win.
func BenchmarkActiveServerTick(b *testing.B) {
	defer setAllFastPaths(true)()
	benchActiveTick(b)
}

// BenchmarkActiveServerTickNoReuse is the same workload with every
// steady-state fast path disabled — the pre-optimization pipeline.
func BenchmarkActiveServerTickNoReuse(b *testing.B) {
	defer setAllFastPaths(false)()
	benchActiveTick(b)
}

// churnBench bumps its demand epoch on every grant — demand reuse never
// applies, so every tick of its server is a full rebuild.
type churnBench struct {
	demand Demand
	epoch  uint64
}

func (w *churnBench) Name() string                     { return "churn" }
func (w *churnBench) Demand(tickSec float64) Demand    { return w.demand }
func (w *churnBench) Advance(tickSec float64, g Grant) { w.epoch++ }
func (w *churnBench) Done() bool                       { return false }
func (w *churnBench) DemandEpoch() uint64              { return w.epoch }

// BenchmarkStrideAdvance measures Cluster.Stride over a mixed cluster —
// the shape event-driven stepping actually sees mid-experiment: some
// servers all-idle (quiescence skip), some steady (fused replay), some
// churning demand every tick (full rebuild). One op is a 16-tick stride.
func BenchmarkStrideAdvance(b *testing.B) {
	defer setAllFastPaths(true)()
	eng := sim.NewEngine(100*time.Millisecond, 3)
	cl := New()
	cl.SetTickWorkers(1)
	for s := 0; s < 16; s++ {
		srv := cl.AddServer(fmt.Sprintf("s%02d", s), DefaultServerConfig(), eng.RNG())
		for i := 0; i < 8; i++ {
			vm := cl.AddVM(srv, fmt.Sprintf("s%02d-vm%d", s, i), 2, 8<<30, LowPriority, "")
			switch s % 3 {
			case 0: // quiescent: no workload attached
			case 1:
				vm.SetWorkload(&steadyBench{demand: busyDemand()})
			case 2:
				vm.SetWorkload(&churnBench{demand: busyDemand()})
			}
		}
	}
	clk := eng.Clock()
	cl.Tick(clk) // settle scratch buffers, arm memos and quiescence
	sync := func(nowSec float64) {}
	stop := func() bool { return false }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := cl.Stride(clk, 16, sync, stop); n != 16 {
			b.Fatalf("stride elided %d ticks, want 16", n)
		}
	}
}

// BenchmarkShardScale pins the sharded tick path's O(active + shards)
// contract: the same fixed set of busy servers (8 steady workloads)
// inside fleets of different total size. Growing the fleet 10x grows
// only the shard count (total/64 one-comparison skips per tick), so
// ns/tick between the sub-benchmarks should stay well inside 2x — the
// ratio `make bench-scale` gates on. A flat O(total) tick would scale
// the cost 10x.
func BenchmarkShardScale(b *testing.B) {
	defer setAllFastPaths(true)()
	for _, total := range []int{1024, 10240} {
		b.Run(fmt.Sprintf("servers=%d", total), func(b *testing.B) {
			eng := sim.NewEngine(100*time.Millisecond, 3)
			cl := New()
			cl.SetTickWorkers(1) // isolate the per-tick cost from fan-out noise
			cl.SetShards(0)
			const busy = 8
			for s := 0; s < total; s++ {
				srv := cl.AddServer(fmt.Sprintf("s%05d", s), DefaultServerConfig(), eng.RNG())
				vm := cl.AddVM(srv, fmt.Sprintf("s%05d-vm", s), 2, 8<<30, LowPriority, "")
				if s < busy {
					vm.SetWorkload(&steadyBench{demand: busyDemand()})
				}
			}
			clk := eng.Clock()
			cl.Tick(clk) // first tick parks every idle server
			cl.Tick(clk) // second settles scratch buffers and arms the memos
			if got := cl.ActiveServers(); got != busy {
				b.Fatalf("active servers = %d, want %d", got, busy)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cl.Tick(clk)
			}
		})
	}
}

func benchActiveTick(b *testing.B) {
	eng := sim.NewEngine(100*time.Millisecond, 3)
	cl := activeCluster(eng)
	clk := eng.Clock()
	cl.Tick(clk) // settle scratch buffers and arm the memos
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Tick(clk)
	}
}
