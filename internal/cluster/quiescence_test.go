package cluster

import (
	"testing"
	"time"

	"perfcloud/internal/sim"
)

// quiesceFixture builds one server with two VMs and forces the
// quiescence fast path on regardless of the package default.
func quiesceFixture(t *testing.T) (*sim.Engine, *Cluster, *Server, *VM) {
	t.Helper()
	eng := sim.NewEngine(100*time.Millisecond, 42)
	c := New()
	c.SetTickWorkers(1)
	c.SetQuiescence(true)
	eng.Register(c)
	srv := c.AddServer("server-0", DefaultServerConfig(), eng.RNG())
	v := c.AddVM(srv, "vm-0", 2, 8<<30, HighPriority, "app")
	c.AddVM(srv, "vm-1", 2, 8<<30, LowPriority, "")
	return eng, c, srv, v
}

func TestServerBecomesQuiescentWhenIdle(t *testing.T) {
	eng, _, srv, v := quiesceFixture(t)
	w := &fakeWorkload{name: "w", demand: busyDemand(), maxWork: 0.3}
	v.SetWorkload(w)
	if srv.Quiescent() {
		t.Fatal("fresh server should not be quiescent before a processed tick")
	}
	for i := 0; i < 40 && !srv.Quiescent(); i++ {
		eng.Step()
	}
	if !w.Done() {
		t.Fatal("workload never finished")
	}
	if !srv.Quiescent() {
		t.Error("server with only done/idle VMs should turn quiescent")
	}
	// Skipped ticks must not disturb cgroup counters or last grants.
	before := v.Cgroup().Snapshot()
	eng.Run(5)
	if v.Cgroup().Snapshot() != before {
		t.Error("skipped ticks changed cgroup counters")
	}
	if g := v.LastGrant(); g != (Grant{}) {
		t.Errorf("idle VM last grant = %+v, want zero", g)
	}
}

func TestWorkloadAttachDirtiesServer(t *testing.T) {
	eng, _, srv, v := quiesceFixture(t)
	eng.Step() // both VMs idle: first processed tick proves quiescence
	if !srv.Quiescent() {
		t.Fatal("all-idle server should be quiescent after one tick")
	}
	v.SetWorkload(&fakeWorkload{name: "w", demand: busyDemand()})
	if srv.Quiescent() {
		t.Error("attaching a workload must dirty the server")
	}
	eng.Step()
	if v.LastGrant().CPUSeconds == 0 {
		t.Error("woken workload received no grant")
	}
}

func TestPlacementChangeDirtiesServer(t *testing.T) {
	eng, c, srv, _ := quiesceFixture(t)
	eng.Step()
	if !srv.Quiescent() {
		t.Fatal("all-idle server should be quiescent")
	}
	epoch := srv.PlacementEpoch()
	c.AddVM(srv, "vm-2", 2, 8<<30, LowPriority, "")
	if srv.Quiescent() {
		t.Error("AddVM must dirty the server")
	}
	if srv.PlacementEpoch() == epoch {
		t.Error("AddVM must move the placement epoch")
	}
	eng.Step()
	epoch = srv.PlacementEpoch()
	c.RemoveVM("vm-2")
	if srv.Quiescent() || srv.PlacementEpoch() == epoch {
		t.Error("RemoveVM must dirty the server and move the epoch")
	}
}

func TestMoveVMDirtiesBothServers(t *testing.T) {
	eng, c, src, _ := quiesceFixture(t)
	dst := c.AddServer("server-1", DefaultServerConfig(), eng.RNG())
	c.AddVM(dst, "vm-d", 2, 8<<30, LowPriority, "")
	eng.Step()
	if !src.Quiescent() || !dst.Quiescent() {
		t.Fatal("both idle servers should be quiescent")
	}
	se, de := src.PlacementEpoch(), dst.PlacementEpoch()
	if err := c.MoveVM("vm-1", "server-1"); err != nil {
		t.Fatal(err)
	}
	if src.Quiescent() || dst.Quiescent() {
		t.Error("migration must dirty source and destination")
	}
	if src.PlacementEpoch() == se || dst.PlacementEpoch() == de {
		t.Error("migration must move both placement epochs")
	}
}

// TestQuiescenceToggleBitForBit runs the same bursty scenario — a
// workload that finishes, a long all-idle stretch, then a second
// workload waking the server — with the fast path on and off, and
// demands identical cgroup counters. The idle stretch makes the skip
// path elide ticks; the wake-up must replay the disk's idle jitter
// draws so the post-wake grants match exactly.
func TestQuiescenceToggleBitForBit(t *testing.T) {
	run := func(enabled bool) (a, b any) {
		eng := sim.NewEngine(100*time.Millisecond, 42)
		c := New()
		c.SetTickWorkers(1)
		c.SetQuiescence(enabled)
		eng.Register(c)
		srv := c.AddServer("server-0", DefaultServerConfig(), eng.RNG())
		v0 := c.AddVM(srv, "vm-0", 2, 8<<30, HighPriority, "app")
		v1 := c.AddVM(srv, "vm-1", 2, 8<<30, LowPriority, "")
		v0.SetWorkload(&fakeWorkload{name: "w0", demand: busyDemand(), maxWork: 0.3})
		eng.Run(30)
		v1.SetWorkload(&fakeWorkload{name: "w1", demand: busyDemand(), maxWork: 0.5})
		eng.Run(30)
		return v0.Cgroup().Snapshot(), v1.Cgroup().Snapshot()
	}
	a0, a1 := run(false)
	b0, b1 := run(true)
	if a0 != b0 || a1 != b1 {
		t.Errorf("counters diverge with quiescence on:\noff: %+v / %+v\non:  %+v / %+v", a0, a1, b0, b1)
	}
}
