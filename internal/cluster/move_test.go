package cluster

import (
	"testing"
	"time"

	"perfcloud/internal/sim"
)

func twoServerCluster(t *testing.T) (*sim.Engine, *Cluster, *Server, *Server) {
	t.Helper()
	eng := sim.NewEngine(100*time.Millisecond, 5)
	c := New()
	s0 := c.AddServer("s0", DefaultServerConfig(), eng.RNG())
	s1 := c.AddServer("s1", DefaultServerConfig(), eng.RNG())
	eng.Register(c)
	return eng, c, s0, s1
}

func TestMoveVMRelinksEverything(t *testing.T) {
	eng, c, s0, s1 := twoServerCluster(t)
	vm := c.AddVM(s0, "x", 2, 8<<30, HighPriority, "app")
	vm.Cgroup().SetReadIOPS(777)
	w := &fakeWorkload{name: "w", demand: busyDemand()}
	vm.SetWorkload(w)
	eng.Run(3)
	beforeOps := vm.Cgroup().Snapshot().Blkio.IoServiced

	if err := c.MoveVM("x", "s1"); err != nil {
		t.Fatal(err)
	}
	if vm.Server() != s1 {
		t.Fatal("VM not relinked to destination")
	}
	if s0.FindVM("x") != nil || s1.FindVM("x") != vm {
		t.Fatal("server VM lists not updated")
	}
	if c.FindVM("x") != vm {
		t.Fatal("registry must keep the same VM object")
	}
	if vm.Cgroup().Throttle().ReadIOPS != 777 {
		t.Error("caps lost across migration")
	}
	// The workload keeps running on the new server.
	eng.Run(3)
	if after := vm.Cgroup().Snapshot().Blkio.IoServiced; after <= beforeOps {
		t.Errorf("no progress after migration: %v -> %v", beforeOps, after)
	}
}

func TestMoveVMErrorsAndNoop(t *testing.T) {
	_, c, s0, _ := twoServerCluster(t)
	c.AddVM(s0, "x", 2, 8<<30, LowPriority, "")
	if err := c.MoveVM("nope", "s1"); err == nil {
		t.Error("unknown VM: want error")
	}
	if err := c.MoveVM("x", "nope"); err == nil {
		t.Error("unknown server: want error")
	}
	if err := c.MoveVM("x", "s0"); err != nil {
		t.Errorf("same-server move should be a no-op: %v", err)
	}
	if len(s0.VMs()) != 1 {
		t.Error("no-op move must not duplicate the VM")
	}
}

func TestServerAccessors(t *testing.T) {
	_, c, s0, _ := twoServerCluster(t)
	vm := c.AddVM(s0, "x", 2, 8<<30, LowPriority, "")
	if s0.ID() != "s0" || s0.Disk() == nil || s0.Mem() == nil || s0.Cache() == nil {
		t.Error("server accessors")
	}
	if s0.CPUConfig().Cores != DefaultServerConfig().CPU.Cores {
		t.Error("CPUConfig")
	}
	if vm.Workload() != nil {
		t.Error("fresh VM workload should be nil")
	}
	w := &fakeWorkload{name: "w"}
	vm.SetWorkload(w)
	if vm.Workload() != w {
		t.Error("Workload accessor")
	}
}
