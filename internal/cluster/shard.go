package cluster

import (
	"math/bits"
	"sync/atomic"

	"perfcloud/internal/obs"
	"perfcloud/internal/sim"
)

// Sharded ticking (DESIGN.md §5.7). The server slice is partitioned into
// contiguous, near-equal shards; an active bitset over the slice records
// which servers still need per-tick visits. Servers whose last processed
// tick proved quiescent leave the active set entirely — the tick loop
// never touches them — and the cluster tick counter plus the PR 2 replay
// machinery (Disk.AdvanceIdle via catchUp) settles the elided ticks in
// O(1) bookkeeping when a dirtying event wakes them. A shard none of
// whose servers are active is skipped wholesale, so Tick and Stride cost
// O(active servers + shards), not O(total servers).
//
// Determinism: per-server RNG streams are derived from (master seed,
// server id) alone, so the partition cannot perturb any random sequence;
// the grant fan-out remains an unordered iteration over goroutine-private
// server state; and the advance/deactivation sweep walks the bitset in
// ascending server index — creation order, exactly the flat path's order
// with the provably-no-op servers removed. Both paths are bit-for-bit
// identical (TestShardedMatchesFlat, TestShardingMatchesFlat).

// autoShardSize is the target servers-per-shard for the automatic
// partition: small clusters collapse to one shard (whose grant fan-out
// then equals the flat path's), planet-scale ones get total/64 shards so
// a fully quiescent shard is skipped with one comparison.
const autoShardSize = 64

// shard is one contiguous server range plus its active-set bookkeeping.
type shard struct {
	start, end int // server index range [start, end)

	active   int // servers in range currently in the active set
	inactive int // == (end-start) - active, maintained for stats

	// sumSkipFrom accumulates the deactivation ticks of the range's
	// inactive servers, so the shard's pending elided-tick total is
	// inactive*cluster.ticks - sumSkipFrom without visiting any of them.
	sumSkipFrom uint64

	// agg is the sum of the range's servers' pulled fast-path counters;
	// invariant: agg == Σ server.pulled over the range.
	agg obs.FastPathSnapshot

	scratch []int // per-tick gather of active server indices
}

// pull folds a server's fresh counter deltas into the shard aggregate.
// Called between ticks (stats reads) and at deactivation, never from the
// parallel grant fan-out.
func (sh *shard) pull(s *Server) {
	cur := s.fastPathRaw()
	d := cur
	d.Sub(s.pulled)
	sh.agg.Add(d)
	s.pulled = cur
}

// defaultShards is the package-wide shard setting for clusters that never
// called SetShards: 0 selects the automatic partition, n > 0 forces n
// shards, negative disables sharding (the flat pre-shard tick path). It
// is atomic so tests and tools can flip modes without racing live
// clusters.
var defaultShards atomic.Int64

// SetDefaultShards sets the package-wide default shard setting and
// returns the previous one. 0 (the initial default) partitions
// automatically at ~64 servers per shard, n > 0 forces n shards, and any
// negative value disables sharding entirely, restoring the pre-shard
// flat tick path. All settings produce bit-for-bit identical simulations
// — the toggle exists so tests can prove exactly that. Per-cluster
// SetShards overrides it.
func SetDefaultShards(n int) int {
	if n < 0 {
		n = -1
	}
	return int(defaultShards.Swap(int64(n)))
}

// SetShards overrides the package-wide shard setting for this cluster
// (see SetDefaultShards): 0 automatic, n > 0 forces n shards, negative
// disables sharding.
func (c *Cluster) SetShards(n int) {
	if n < 0 {
		n = -1
	}
	c.shardsVal, c.shardsSet = n, true
}

// ShardSetting returns the effective shard setting for this cluster:
// 0 automatic, positive an explicit shard count, negative disabled.
func (c *Cluster) ShardSetting() int {
	if c.shardsSet {
		return c.shardsVal
	}
	return int(defaultShards.Load())
}

// ShardingEnabled reports whether the sharded tick path is in effect.
func (c *Cluster) ShardingEnabled() bool { return c.ShardSetting() >= 0 }

// ShardCount returns the number of shards the current partition holds
// (building it if needed), or 0 with sharding disabled.
func (c *Cluster) ShardCount() int {
	if !c.ShardingEnabled() || len(c.servers) == 0 {
		return 0
	}
	c.ensureShards()
	return len(c.shards)
}

// partitionCurrent reports whether the shard partition matches the
// current server count and shard setting.
func (c *Cluster) partitionCurrent() bool {
	return c.shards != nil && c.partServers == len(c.servers) &&
		c.partSetting == c.ShardSetting() && c.ShardingEnabled()
}

// ensureShards (re)builds the partition after topology or setting
// changes: shard ranges, the active bitset (from the per-server active
// flags, the single source of truth), and the per-shard bookkeeping.
// O(total servers), paid once per change, not per tick.
func (c *Cluster) ensureShards() {
	if c.partitionCurrent() {
		return
	}
	want := c.ShardSetting() // >= 0 on this path
	n := len(c.servers)
	ns := want
	if ns == 0 {
		ns = (n + autoShardSize - 1) / autoShardSize
	}
	if ns > n {
		ns = n
	}
	if ns < 1 && n > 0 {
		ns = 1
	}
	c.shards = make([]shard, ns)
	c.shardBase, c.shardRem = 0, 0
	if ns > 0 {
		c.shardBase, c.shardRem = n/ns, n%ns
	}
	start := 0
	for i := range c.shards {
		size := c.shardBase
		if i < c.shardRem {
			size++
		}
		c.shards[i] = shard{start: start, end: start + size}
		start += size
	}
	words := (n + 63) / 64
	if cap(c.activeBits) < words {
		c.activeBits = make([]uint64, words)
	}
	c.activeBits = c.activeBits[:words]
	for i := range c.activeBits {
		c.activeBits[i] = 0
	}
	swords := (ns + 63) / 64
	if cap(c.shardBits) < swords {
		c.shardBits = make([]uint64, swords)
	}
	c.shardBits = c.shardBits[:swords]
	for i := range c.shardBits {
		c.shardBits[i] = 0
	}
	c.inactive = 0
	for i, s := range c.servers {
		si := c.shardIndex(i)
		sh := &c.shards[si]
		sh.agg.Add(s.pulled)
		if s.active {
			c.activeBits[i>>6] |= 1 << uint(i&63)
			sh.active++
			c.shardBits[si>>6] |= 1 << uint(si&63)
		} else {
			sh.inactive++
			sh.sumSkipFrom += s.skipFrom
			c.inactive++
		}
	}
	c.partServers, c.partSetting = n, want
}

// ShardStats is one shard's telemetry rollup key and occupancy — the
// granularity at which fleet-scale exporters aggregate, so a 10k-server
// cluster exposes ~160 shard series instead of 10k server series.
type ShardStats struct {
	Index   int // shard index, stable for a given partition
	Servers int // servers in the shard's range
	Active  int // of those, currently in the active set
}

// EachShardStats calls fn once per shard in index order, building the
// partition if needed. O(shards) per call; a no-op with sharding
// disabled or an empty cluster. Call between ticks, like FastPathStats.
func (c *Cluster) EachShardStats(fn func(ShardStats)) {
	if !c.ShardingEnabled() || len(c.servers) == 0 {
		return
	}
	c.ensureShards()
	for i := range c.shards {
		sh := &c.shards[i]
		fn(ShardStats{Index: i, Servers: sh.end - sh.start, Active: sh.active})
	}
}

// ShardOf returns the shard index hosting the given server id, or -1 if
// the server is unknown or sharding is disabled — the locate primitive
// hierarchical telemetry rollups key on.
func (c *Cluster) ShardOf(serverID string) int {
	if !c.ShardingEnabled() || len(c.servers) == 0 {
		return -1
	}
	s, ok := c.srvByID[serverID]
	if !ok {
		return -1
	}
	c.ensureShards()
	return c.shardIndex(s.index)
}

// shardIndex maps a server index to its shard: the first shardRem shards
// hold shardBase+1 servers, the rest shardBase.
func (c *Cluster) shardIndex(i int) int {
	big := c.shardRem * (c.shardBase + 1)
	if i < big {
		return i / (c.shardBase + 1)
	}
	return c.shardRem + (i-big)/c.shardBase
}

// eachActive calls fn for every active server in ascending index
// (creation) order.
func (c *Cluster) eachActive(fn func(*Server)) {
	for w, word := range c.activeBits {
		base := w << 6
		for word != 0 {
			i := base + bits.TrailingZeros64(word)
			word &= word - 1
			fn(c.servers[i])
		}
	}
}

// wake returns a server to the active set. completed is the number of
// fully processed cluster ticks the server did not participate in since
// deactivating; the difference to its deactivation tick is exactly the
// elided grant phases, credited to the same skipped/skipIDs state the
// flat path accumulates one tick at a time — catchUp replays them
// identically on the server's next grant phase.
func (c *Cluster) wake(s *Server, completed uint64) {
	if n := completed - s.skipFrom; n > 0 {
		s.skipped += int(n)
		s.statSkipped += n
	}
	s.active = true
	c.inactive--
	if c.partitionCurrent() {
		c.activeBits[s.index>>6] |= 1 << uint(s.index&63)
		si := c.shardIndex(s.index)
		sh := &c.shards[si]
		sh.active++
		sh.inactive--
		sh.sumSkipFrom -= s.skipFrom
		if sh.active == 1 {
			c.shardBits[si>>6] |= 1 << uint(si&63)
		}
	}
}

// wakeAll returns every server to the active set (sharding turned off,
// or the quiescence fast path disabled mid-run).
func (c *Cluster) wakeAll(completed uint64) {
	for _, s := range c.servers {
		if !s.active {
			c.wake(s, completed)
		}
		s.wakePending = false
	}
	c.wakes = c.wakes[:0]
}

// deactivate removes a freshly quiescent server from the active set at
// the end of the advance sweep: snapshot the VM ids present through the
// upcoming skipped stretch (placement changes wake the server, so the
// set is constant across it), record the deactivation tick, and pull the
// server's counters into its shard so stats reads need not visit it.
func (c *Cluster) deactivate(s *Server) {
	s.active = false
	c.inactive++
	c.activeBits[s.index>>6] &^= 1 << uint(s.index&63)
	s.skipFrom = c.ticks
	s.skipIDs = s.skipIDs[:0]
	for _, v := range s.vms {
		s.skipIDs = append(s.skipIDs, v.id)
	}
	si := c.shardIndex(s.index)
	sh := &c.shards[si]
	sh.active--
	sh.inactive++
	sh.sumSkipFrom += s.skipFrom
	sh.pull(s)
	if sh.active == 0 {
		c.shardBits[si>>6] &^= 1 << uint(si&63)
	}
}

// drainWakes processes the reactivation queue at the tick boundary.
// c.ticks has already advanced for the current tick, so the woken server
// missed exactly ticks-1 completed ticks minus its deactivation tick.
func (c *Cluster) drainWakes() {
	if len(c.wakes) == 0 {
		return
	}
	for _, s := range c.wakes {
		s.wakePending = false
		if !s.active {
			c.wake(s, c.ticks-1)
		}
	}
	c.wakes = c.wakes[:0]
}

// shardedTick is the O(active + shards) tick path. The grant fan-out is
// two-level: shards with any active server fan out across the shared
// slot pool, and each shard fans its own active servers out again (its
// per-shard slot-pool workers) — so a one-shard cluster keeps exactly
// the flat path's per-server parallelism, and a 10k-server cluster with
// three busy shards parallelizes across and within them. The advance
// sweep then walks active servers in creation order — the flat sweep
// minus the servers for which it would provably no-op — and retires
// freshly quiescent servers from the active set.
func (c *Cluster) shardedTick(tickSec float64, quiesce, reuse bool) {
	c.ticks++
	c.ensureShards()
	c.drainWakes()
	if !quiesce && c.inactive > 0 {
		// Quiescence switched off mid-run: the flat path would visit
		// every server again, so the active set must too.
		c.wakeAll(c.ticks - 1)
	}
	c.liveShards = c.liveShards[:0]
	for w, word := range c.shardBits {
		base := w << 6
		for word != 0 {
			c.liveShards = append(c.liveShards, base+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	c.statShardSkips += uint64(len(c.shards) - len(c.liveShards))
	workers := c.TickWorkers()
	live := c.liveShards
	tg := c.tGrant.Begin()
	sim.ForEachShared(len(live), workers, func(k int) {
		c.grantShard(&c.shards[live[k]], tickSec, quiesce, reuse, workers)
	})
	c.tGrant.End(tg)
	// The advance sweep revisits exactly the servers the grant fan-out
	// gathered (wakes only queue until the next tick boundary), so it
	// walks the live shards' scratch lists — ascending shard and server
	// index, i.e. creation order — instead of rescanning the bitset.
	ta := c.tAdvance.Begin()
	for _, si := range live {
		for _, i := range c.shards[si].scratch {
			s := c.servers[i]
			s.advancePhase(tickSec)
			if quiesce && s.quiescent {
				c.deactivate(s)
			}
		}
	}
	c.tAdvance.End(ta)
}

// grantShard gathers the shard's active servers from the bitset and runs
// their grant phases, fanning out across whatever slots the shared pool
// has left (inline when none — the nested-fan-out contract of
// sim.ForEachShared). The bitset is read-only during the parallel grant
// phase, and the scratch slice is shard-owned, so concurrent shards
// never share mutable state.
func (c *Cluster) grantShard(sh *shard, tickSec float64, quiesce, reuse bool, workers int) {
	sc := sh.scratch[:0]
	lo, hi := sh.start, sh.end
	for w := lo >> 6; w < (hi+63)>>6; w++ {
		word := c.activeBits[w]
		base := w << 6
		if lo > base {
			word &= ^uint64(0) << uint(lo-base)
		}
		if hi < base+64 {
			word &= (uint64(1) << uint(hi-base)) - 1
		}
		for word != 0 {
			i := base + bits.TrailingZeros64(word)
			word &= word - 1
			sc = append(sc, i)
		}
	}
	sh.scratch = sc
	if len(sc) == 1 {
		c.servers[sc[0]].grantPhase(tickSec, quiesce, reuse)
		return
	}
	sim.ForEachShared(len(sc), workers, func(k int) {
		c.servers[sc[k]].grantPhase(tickSec, quiesce, reuse)
	})
}
