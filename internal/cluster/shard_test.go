package cluster

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"perfcloud/internal/obs"
	"perfcloud/internal/sim"
)

// TestShardPartition checks the partition arithmetic: contiguous ranges
// covering every server, near-equal sizes, and the setting semantics
// (0 auto, n forced, clamped to the server count).
func TestShardPartition(t *testing.T) {
	build := func(servers, setting int) *Cluster {
		eng := sim.NewEngine(100*time.Millisecond, 1)
		c := New()
		c.SetShards(setting)
		for i := 0; i < servers; i++ {
			c.AddServer(fmt.Sprintf("s%03d", i), DefaultServerConfig(), eng.RNG())
		}
		return c
	}
	cases := []struct {
		servers, setting, wantShards int
	}{
		{6, 0, 1},     // auto: small cluster collapses to one shard
		{64, 0, 1},    // auto: exactly one full shard
		{130, 0, 3},   // auto: ceil(130/64)
		{10, 3, 3},    // forced
		{10, 200, 10}, // forced beyond server count: clamped
	}
	for _, tc := range cases {
		c := build(tc.servers, tc.setting)
		if got := c.ShardCount(); got != tc.wantShards {
			t.Errorf("servers=%d setting=%d: ShardCount = %d, want %d",
				tc.servers, tc.setting, got, tc.wantShards)
			continue
		}
		// Ranges must tile [0, servers) in order, sizes within 1.
		next, min, max := 0, tc.servers, 0
		for i := range c.shards {
			sh := &c.shards[i]
			if sh.start != next || sh.end <= sh.start {
				t.Errorf("servers=%d setting=%d: shard %d range [%d,%d) after %d",
					tc.servers, tc.setting, i, sh.start, sh.end, next)
			}
			next = sh.end
			if sz := sh.end - sh.start; sz < min {
				min = sz
			} else if sz > max {
				max = sz
			}
			// Every index in range must map back to this shard.
			for j := sh.start; j < sh.end; j++ {
				if c.shardIndex(j) != i {
					t.Fatalf("shardIndex(%d) = %d, want %d", j, c.shardIndex(j), i)
				}
			}
		}
		if next != tc.servers {
			t.Errorf("servers=%d setting=%d: shards cover [0,%d), want [0,%d)",
				tc.servers, tc.setting, next, tc.servers)
		}
		if max-min > 1 {
			t.Errorf("servers=%d setting=%d: shard sizes range %d..%d, want near-equal",
				tc.servers, tc.setting, min, max)
		}
	}
	// Negative disables sharding entirely.
	c := build(10, -1)
	if c.ShardingEnabled() || c.ShardCount() != 0 {
		t.Error("SetShards(-1) must disable sharding")
	}
}

// shardScenario drives one cluster through the life cycle the sharded
// path must get right — busy servers finishing into quiescence, a long
// parked stretch, cross-shard migration off a parked server, wake-ups, a
// mid-run server addition forcing a repartition, and an always-empty
// server — and returns every observable output: cgroup counters, last
// grants, and the fast-path totals (minus the shard-only counter).
func shardScenario(shardSetting int) (snaps []any, fp obs.FastPathSnapshot) {
	eng := sim.NewEngine(100*time.Millisecond, 42)
	c := New()
	c.SetTickWorkers(1)
	c.SetShards(shardSetting)
	eng.Register(c)
	var vms []*VM
	for s := 0; s < 10; s++ {
		srv := c.AddServer(fmt.Sprintf("server-%d", s), DefaultServerConfig(), eng.RNG())
		if s == 9 {
			continue // server-9 stays empty for the whole run
		}
		for i := 0; i < 2; i++ {
			vms = append(vms, c.AddVM(srv, fmt.Sprintf("vm-%d-%d", s, i), 2, 8<<30, LowPriority, ""))
		}
	}
	// Wave 1: even servers run finite workloads, then everything idles.
	for s := 0; s < 9; s += 2 {
		c.FindVM(fmt.Sprintf("vm-%d-0", s)).SetWorkload(
			&fakeWorkload{name: "w1", demand: busyDemand(), maxWork: 0.5})
	}
	eng.Run(30)
	// Cross-shard migration off a parked server, then wave 2 on both the
	// migrated VM and a never-woken server.
	if err := c.MoveVM("vm-3-1", "server-7"); err != nil {
		panic(err)
	}
	c.FindVM("vm-3-1").SetWorkload(&fakeWorkload{name: "w2", demand: busyDemand(), maxWork: 0.4})
	c.FindVM("vm-1-0").SetWorkload(&fakeWorkload{name: "w3", demand: busyDemand(), maxWork: 0.4})
	eng.Run(30)
	// Mid-run provisioning repartitions the cluster.
	srv := c.AddServer("server-10", DefaultServerConfig(), eng.RNG())
	nv := c.AddVM(srv, "vm-10-0", 2, 8<<30, LowPriority, "")
	nv.SetWorkload(&fakeWorkload{name: "w4", demand: busyDemand(), maxWork: 0.3})
	vms = append(vms, nv)
	eng.Run(20)
	for _, v := range vms {
		snaps = append(snaps, v.Cgroup().Snapshot(), v.LastGrant())
	}
	fp = c.FastPathStats()
	fp.ShardSkips = 0 // the only counter that legitimately differs by mode
	return snaps, fp
}

// TestShardedMatchesFlat is the cluster-level bit-for-bit equivalence
// check: the same scenario under the flat path, one shard, three shards
// and the automatic partition must produce identical cgroup counters,
// grants and fast-path totals.
func TestShardedMatchesFlat(t *testing.T) {
	wantSnaps, wantFP := shardScenario(-1)
	for _, setting := range []int{0, 1, 3, 7} {
		snaps, fp := shardScenario(setting)
		if !reflect.DeepEqual(snaps, wantSnaps) {
			t.Errorf("shards=%d: outputs diverge from flat path", setting)
		}
		if fp != wantFP {
			t.Errorf("shards=%d: fast-path stats diverge:\nflat:  %+v\nshard: %+v", setting, wantFP, fp)
		}
	}
}

// TestShardActiveSetBookkeeping checks the O(active) contract directly:
// parked servers leave the active set, wholly inactive shards are
// skipped, and dirtying events restore exactly the touched servers.
func TestShardActiveSetBookkeeping(t *testing.T) {
	eng := sim.NewEngine(100*time.Millisecond, 7)
	c := New()
	c.SetTickWorkers(1)
	c.SetShards(3)
	eng.Register(c)
	var vms []*VM
	for s := 0; s < 9; s++ {
		srv := c.AddServer(fmt.Sprintf("server-%d", s), DefaultServerConfig(), eng.RNG())
		vms = append(vms, c.AddVM(srv, fmt.Sprintf("vm-%d", s), 2, 8<<30, LowPriority, ""))
	}
	if got := c.ActiveServers(); got != 9 {
		t.Fatalf("fresh cluster ActiveServers = %d, want 9", got)
	}
	eng.Run(3) // all idle: every server parks after its first processed tick
	if got := c.ActiveServers(); got != 0 {
		t.Fatalf("all-idle cluster ActiveServers = %d, want 0", got)
	}
	skipsBefore := c.FastPathStats().ShardSkips
	eng.Run(4)
	if got := c.FastPathStats().ShardSkips - skipsBefore; got != 12 {
		t.Errorf("4 parked ticks skipped %d shards, want 12 (3 shards x 4 ticks)", got)
	}
	// Wake one server; only it returns to the active set.
	vms[4].SetWorkload(&fakeWorkload{name: "w", demand: busyDemand(), maxWork: 1e9})
	eng.Step()
	if got := c.ActiveServers(); got != 1 {
		t.Errorf("after one wake ActiveServers = %d, want 1", got)
	}
	if vms[4].LastGrant().CPUSeconds == 0 {
		t.Error("woken workload received no grant")
	}
	// Quiescence off forces the whole fleet back to per-tick visits.
	c.SetQuiescence(false)
	eng.Step()
	if got := c.ActiveServers(); got != 9 {
		t.Errorf("with quiescence off ActiveServers = %d, want 9", got)
	}
}

// TestShardFlatToggleMidRun flips the cluster between sharded and flat
// mid-run, with servers parked at the switch, and checks the outputs
// against an all-flat run: pending elided ticks must settle on the
// first flat tick.
func TestShardFlatToggleMidRun(t *testing.T) {
	run := func(toggle bool) []any {
		eng := sim.NewEngine(100*time.Millisecond, 11)
		c := New()
		c.SetTickWorkers(1)
		c.SetShards(-1)
		if toggle {
			c.SetShards(2)
		}
		eng.Register(c)
		var vms []*VM
		for s := 0; s < 4; s++ {
			srv := c.AddServer(fmt.Sprintf("server-%d", s), DefaultServerConfig(), eng.RNG())
			vms = append(vms, c.AddVM(srv, fmt.Sprintf("vm-%d", s), 2, 8<<30, LowPriority, ""))
		}
		vms[0].SetWorkload(&fakeWorkload{name: "w", demand: busyDemand(), maxWork: 0.3})
		eng.Run(20) // everything parks (sharded) or idles (flat)
		if toggle {
			c.SetShards(-1) // back to flat with servers still parked
		}
		eng.Run(5)
		vms[2].SetWorkload(&fakeWorkload{name: "w2", demand: busyDemand(), maxWork: 0.3})
		eng.Run(15)
		var out []any
		for _, v := range vms {
			out = append(out, v.Cgroup().Snapshot(), v.LastGrant())
		}
		return out
	}
	if !reflect.DeepEqual(run(true), run(false)) {
		t.Error("toggling shards mid-run changed simulation outputs")
	}
}
