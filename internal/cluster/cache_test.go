package cluster

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestCacheHitAndMiss(t *testing.T) {
	c := NewContentCache(1<<20, 60)
	if c.Has("a", 0) {
		t.Error("empty cache should miss")
	}
	c.Put("a", 1000, 0)
	if !c.Has("a", 1) {
		t.Error("want hit")
	}
	if c.Len() != 1 || c.UsedBytes() != 1000 {
		t.Errorf("len=%d used=%v", c.Len(), c.UsedBytes())
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := NewContentCache(1<<20, 10)
	c.Put("a", 100, 0)
	if !c.Has("a", 9) {
		t.Error("should still be fresh at t=9")
	}
	// The t=9 hit refreshed recency; expires 10s after that.
	if !c.Has("a", 18) {
		t.Error("recency refresh should keep it alive")
	}
	if c.Has("a", 40) {
		t.Error("should have expired")
	}
	if c.Len() != 0 {
		t.Errorf("expired entry should be evicted, len=%d", c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewContentCache(300, 1000)
	c.Put("a", 100, 0)
	c.Put("b", 100, 1)
	c.Put("c", 100, 2)
	c.Has("a", 3) // refresh a; b is now LRU
	c.Put("d", 100, 4)
	if c.Has("b", 5) {
		t.Error("b should have been evicted as LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if !c.Has(k, 5) {
			t.Errorf("%s should remain", k)
		}
	}
}

func TestCacheOversizedEntryRejected(t *testing.T) {
	c := NewContentCache(100, 10)
	c.Put("big", 1000, 0)
	if c.Has("big", 1) || c.Len() != 0 {
		t.Error("entry larger than capacity must not be admitted")
	}
}

func TestCacheReplaceRefreshesSize(t *testing.T) {
	c := NewContentCache(1000, 100)
	c.Put("a", 600, 0)
	c.Put("a", 200, 1) // replace with smaller
	if c.UsedBytes() != 200 {
		t.Errorf("used = %v, want 200", c.UsedBytes())
	}
	c.Put("b", 700, 2) // fits alongside the replacement
	if !c.Has("a", 3) || !c.Has("b", 3) {
		t.Error("both entries should fit after replacement")
	}
}

func TestCachePanicsOnBadConfig(t *testing.T) {
	for i, fn := range []func(){
		func() { NewContentCache(0, 1) },
		func() { NewContentCache(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: used bytes never exceed capacity and always equal the sum of
// the live entries.
func TestCachePropertyCapacityInvariant(t *testing.T) {
	f := func(sizes []uint16) bool {
		c := NewContentCache(10000, 1000)
		for i, sz := range sizes {
			c.Put(fmt.Sprintf("k%d", i%8), float64(sz), float64(i))
			if c.UsedBytes() > 10000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
