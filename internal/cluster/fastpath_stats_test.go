package cluster

import (
	"testing"
	"time"

	"perfcloud/internal/obs"
	"perfcloud/internal/sim"
)

// TestFastPathStatsAccounting runs one busy and one idle server through
// a mix of reused, rebuilt and skipped ticks and checks that the
// counters partition the grant phases the way the fast paths actually
// ran them.
func TestFastPathStatsAccounting(t *testing.T) {
	setDemandReuse(t, true)
	prevQ := SetDefaultQuiescence(true)
	t.Cleanup(func() { SetDefaultQuiescence(prevQ) })

	eng := sim.NewEngine(100*time.Millisecond, 7)
	c := New()
	c.SetTickWorkers(1)
	busy := c.AddServer("busy", DefaultServerConfig(), eng.RNG())
	idle := c.AddServer("idle", DefaultServerConfig(), eng.RNG())
	vm := c.AddVM(busy, "vm-busy", 2, 8<<30, LowPriority, "")
	c.AddVM(idle, "vm-idle", 2, 8<<30, LowPriority, "")
	w := &epochWorkload{fakeWorkload: fakeWorkload{name: "vm-busy", demand: busyDemand()}}
	vm.SetWorkload(w)
	eng.Register(c)

	const ticks = 20
	eng.Run(ticks)

	bfp := busy.FastPathStats()
	if bfp.QuiescentSkips != 0 {
		t.Fatalf("busy server skipped %d ticks, want 0", bfp.QuiescentSkips)
	}
	if got := bfp.SteadyReuses + bfp.Rebuilds; got != ticks {
		t.Fatalf("busy server ran %d grant phases, want %d", got, ticks)
	}
	// Constant demand: the first tick rebuilds, every later one reuses.
	if bfp.Rebuilds != 1 || bfp.SteadyReuses != ticks-1 {
		t.Fatalf("busy server rebuilds=%d steady=%d, want 1, %d", bfp.Rebuilds, bfp.SteadyReuses, ticks-1)
	}
	// Reused ticks still run the (memoized) allocators.
	if bfp.CPUMemoHits == 0 || bfp.DiskMemoHits == 0 || bfp.MemMemoHits == 0 {
		t.Fatalf("busy server recorded no allocator memo hits: %+v", bfp)
	}

	ifp := idle.FastPathStats()
	// The idle server runs one full settling tick, then skips the rest.
	if ifp.Rebuilds != 1 || ifp.QuiescentSkips != ticks-1 {
		t.Fatalf("idle server rebuilds=%d skips=%d, want 1, %d", ifp.Rebuilds, ifp.QuiescentSkips, ticks-1)
	}

	// The cluster total is the per-server sum.
	var want obs.FastPathSnapshot
	want.Add(bfp)
	want.Add(ifp)
	if got := c.FastPathStats(); got != want {
		t.Fatalf("cluster stats = %+v, want %+v", got, want)
	}

	// A demand-epoch bump forces exactly one more rebuild.
	w.setDemand(Demand{CPUSeconds: 0.05, CoreCPI: 1})
	eng.Run(2)
	bfp2 := busy.FastPathStats()
	if bfp2.Rebuilds != bfp.Rebuilds+1 || bfp2.SteadyReuses != bfp.SteadyReuses+1 {
		t.Fatalf("after epoch bump rebuilds=%d steady=%d, want %d, %d",
			bfp2.Rebuilds, bfp2.SteadyReuses, bfp.Rebuilds+1, bfp.SteadyReuses+1)
	}
}
