package cluster

import (
	"testing"
	"time"

	"perfcloud/internal/sim"
)

// fakeWorkload demands a constant profile and records grants.
type fakeWorkload struct {
	name    string
	demand  Demand
	grants  []Grant
	maxWork float64 // total CPU-seconds to consume; 0 = endless
	usedCPU float64
}

func (f *fakeWorkload) Name() string { return f.name }

func (f *fakeWorkload) Demand(tickSec float64) Demand { return f.demand }

func (f *fakeWorkload) Advance(tickSec float64, g Grant) {
	f.grants = append(f.grants, g)
	f.usedCPU += g.CPUSeconds
}

func (f *fakeWorkload) Done() bool { return f.maxWork > 0 && f.usedCPU >= f.maxWork }

func busyDemand() Demand {
	return Demand{
		CPUSeconds:      0.2,
		IOOps:           50,
		IOBytes:         50 * 4096,
		CoreCPI:         0.9,
		LLCRefsPerInstr: 0.02,
		BytesPerInstr:   0.3,
		WorkingSetBytes: 100 << 20,
	}
}

func newTestCluster(t *testing.T) (*sim.Engine, *Cluster, *Server) {
	t.Helper()
	eng := sim.NewEngine(100*time.Millisecond, 42)
	c := New()
	srv := c.AddServer("server-0", DefaultServerConfig(), eng.RNG())
	eng.Register(c)
	return eng, c, srv
}

func TestVMAccessors(t *testing.T) {
	_, c, srv := newTestCluster(t)
	vm := c.AddVM(srv, "vm-0", 2, 8<<30, HighPriority, "hadoop")
	if vm.ID() != "vm-0" || vm.VCPUs() != 2 || vm.MemBytes() != 8<<30 {
		t.Errorf("vm = %+v", vm)
	}
	if vm.Priority() != HighPriority || vm.AppID() != "hadoop" {
		t.Errorf("priority/app = %v/%v", vm.Priority(), vm.AppID())
	}
	if vm.Server() != srv || vm.Cgroup() == nil {
		t.Error("server/cgroup wiring")
	}
	if !vm.Idle() {
		t.Error("fresh VM should be idle")
	}
	if HighPriority.String() != "high" || LowPriority.String() != "low" {
		t.Error("priority strings")
	}
}

func TestTickDrivesPipelineAndCounters(t *testing.T) {
	eng, c, srv := newTestCluster(t)
	vm := c.AddVM(srv, "vm-0", 2, 8<<30, HighPriority, "app")
	w := &fakeWorkload{name: "w", demand: busyDemand()}
	vm.SetWorkload(w)
	eng.Run(10)

	if len(w.grants) != 10 {
		t.Fatalf("grants = %d, want 10", len(w.grants))
	}
	g := w.grants[0]
	if g.CPUSeconds <= 0 || g.Instructions <= 0 || g.IOOps <= 0 || g.CPI <= 0 {
		t.Errorf("grant = %+v", g)
	}
	s := vm.Cgroup().Snapshot()
	if s.CPU.UsageSeconds <= 0 || s.Blkio.IoServiced <= 0 || s.Perf.Instructions <= 0 {
		t.Errorf("counters = %+v", s)
	}
	// Uncontended: full demand served.
	if g.CPUSeconds != 0.2 || g.IOOps != 50 {
		t.Errorf("uncontended grant = %+v", g)
	}
	if vm.LastGrant() != w.grants[9] {
		t.Error("LastGrant should match final grant")
	}
}

func TestIdleVMGetsNothing(t *testing.T) {
	eng, c, srv := newTestCluster(t)
	vm := c.AddVM(srv, "vm-0", 2, 8<<30, LowPriority, "")
	eng.Run(5)
	s := vm.Cgroup().Snapshot()
	if s.CPU.UsageSeconds != 0 || s.Blkio.IoServiced != 0 {
		t.Errorf("idle VM accumulated counters: %+v", s)
	}
}

func TestDoneWorkloadStopsConsuming(t *testing.T) {
	eng, c, srv := newTestCluster(t)
	vm := c.AddVM(srv, "vm-0", 2, 8<<30, LowPriority, "")
	w := &fakeWorkload{name: "w", demand: busyDemand(), maxWork: 0.4} // 2 ticks
	vm.SetWorkload(w)
	eng.Run(10)
	if !w.Done() {
		t.Fatal("workload should be done")
	}
	if len(w.grants) != 2 {
		t.Errorf("grants = %d, want 2", len(w.grants))
	}
	if !vm.Idle() {
		t.Error("VM with done workload should be idle")
	}
}

func TestThrottleCapsFlowThroughPipeline(t *testing.T) {
	eng, c, srv := newTestCluster(t)
	vm := c.AddVM(srv, "vm-0", 2, 8<<30, LowPriority, "")
	w := &fakeWorkload{name: "w", demand: busyDemand()}
	vm.SetWorkload(w)
	vm.Cgroup().SetReadIOPS(100) // 10 ops per 0.1 s tick
	vm.Cgroup().SetCPUCores(0.5) // 0.05 core-seconds per tick
	eng.Run(3)
	g := w.grants[len(w.grants)-1]
	if g.IOOps > 10.01 {
		t.Errorf("IOOps = %v, want <= 10 under cap", g.IOOps)
	}
	if g.CPUSeconds > 0.0501 {
		t.Errorf("CPUSeconds = %v, want <= 0.05 under cap", g.CPUSeconds)
	}
}

func TestClusterRegistryAndLookup(t *testing.T) {
	eng, c, srv := newTestCluster(t)
	srv2 := c.AddServer("server-1", DefaultServerConfig(), eng.RNG())
	a := c.AddVM(srv, "a", 2, 1<<30, HighPriority, "app1")
	b := c.AddVM(srv2, "b", 2, 1<<30, HighPriority, "app1")
	c.AddVM(srv2, "x", 2, 1<<30, LowPriority, "")

	if len(c.Servers()) != 2 {
		t.Errorf("servers = %d", len(c.Servers()))
	}
	if c.FindServer("server-1") != srv2 || c.FindServer("zzz") != nil {
		t.Error("FindServer")
	}
	if c.FindVM("a") != a || c.FindVM("zzz") != nil {
		t.Error("FindVM")
	}
	if srv.FindVM("a") != a || srv.FindVM("b") != nil {
		t.Error("Server.FindVM")
	}
	if got := len(c.VMs()); got != 3 {
		t.Errorf("VMs = %d", got)
	}
	app := c.AppVMs("app1")
	if len(app) != 2 || app[0] != a || app[1] != b {
		t.Errorf("AppVMs = %v", app)
	}
}

func TestRemoveVM(t *testing.T) {
	_, c, srv := newTestCluster(t)
	c.AddVM(srv, "a", 2, 1<<30, LowPriority, "")
	c.AddVM(srv, "b", 2, 1<<30, LowPriority, "")
	c.RemoveVM("a")
	if c.FindVM("a") != nil || srv.FindVM("a") != nil {
		t.Error("a should be gone")
	}
	if c.FindVM("b") == nil || len(srv.VMs()) != 1 {
		t.Error("b should remain")
	}
	c.RemoveVM("nonexistent") // no-op, no panic
}

func TestDuplicateIDsPanic(t *testing.T) {
	eng, c, srv := newTestCluster(t)
	c.AddVM(srv, "a", 2, 1<<30, LowPriority, "")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate VM should panic")
			}
		}()
		c.AddVM(srv, "a", 2, 1<<30, LowPriority, "")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate server should panic")
			}
		}()
		c.AddServer("server-0", DefaultServerConfig(), eng.RNG())
	}()
}

func TestContentionBetweenVMsOnOneServer(t *testing.T) {
	eng, c, srv := newTestCluster(t)
	// One disk hog plus one moderate VM; the hog's demand exceeds device
	// capacity so the moderate VM's waits should rise vs running alone.
	victim := c.AddVM(srv, "victim", 2, 8<<30, HighPriority, "app")
	vw := &fakeWorkload{name: "v", demand: busyDemand()}
	victim.SetWorkload(vw)
	hog := c.AddVM(srv, "hog", 2, 8<<30, LowPriority, "")
	hw := &fakeWorkload{name: "h", demand: Demand{
		CPUSeconds: 0.1, IOOps: 2000, IOBytes: 2000 * 4096,
		CoreCPI: 1, LLCRefsPerInstr: 0.01, BytesPerInstr: 0.1, WorkingSetBytes: 1 << 20,
	}}
	hog.SetWorkload(hw)
	eng.Run(50)
	contended := victim.Cgroup().Snapshot().Blkio.IoWaitTimeMs / victim.Cgroup().Snapshot().Blkio.IoServiced

	// Rebuild without the hog.
	eng2 := sim.NewEngine(100*time.Millisecond, 42)
	c2 := New()
	srv2 := c2.AddServer("server-0", DefaultServerConfig(), eng2.RNG())
	eng2.Register(c2)
	v2 := c2.AddVM(srv2, "victim", 2, 8<<30, HighPriority, "app")
	v2.SetWorkload(&fakeWorkload{name: "v", demand: busyDemand()})
	eng2.Run(50)
	alone := v2.Cgroup().Snapshot().Blkio.IoWaitTimeMs / v2.Cgroup().Snapshot().Blkio.IoServiced

	if contended < 2*alone {
		t.Errorf("wait/op contended=%v alone=%v, want >= 2x", contended, alone)
	}
}
