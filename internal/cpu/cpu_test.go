package cpu

import (
	"math"
	"testing"
	"testing/quick"
)

const tick = 0.1

func TestUncontendedFullGrant(t *testing.T) {
	s := New(Config{Cores: 4, FreqHz: 2e9})
	g := s.Allocate(tick, []Request{
		{ClientID: "a", Seconds: 0.15, VCPUs: 2},
		{ClientID: "b", Seconds: 0.1, VCPUs: 2},
	})
	if g[0].Seconds != 0.15 || g[1].Seconds != 0.1 {
		t.Errorf("grants = %+v", g)
	}
}

func TestVCPUClamp(t *testing.T) {
	s := New(Config{Cores: 48, FreqHz: 2e9})
	// 2 vcpus can consume at most 0.2 core-seconds in a 0.1 s tick.
	g := s.Allocate(tick, []Request{{ClientID: "a", Seconds: 1, VCPUs: 2}})
	if math.Abs(g[0].Seconds-0.2) > 1e-12 {
		t.Errorf("grant = %v, want 0.2", g[0].Seconds)
	}
}

func TestHardCapClamp(t *testing.T) {
	s := New(Config{Cores: 48, FreqHz: 2e9})
	// Cap of 0.5 cores -> 0.05 core-seconds per tick, tighter than vcpus.
	g := s.Allocate(tick, []Request{{ClientID: "a", Seconds: 1, VCPUs: 2, CapCores: 0.5}})
	if math.Abs(g[0].Seconds-0.05) > 1e-12 {
		t.Errorf("grant = %v, want 0.05", g[0].Seconds)
	}
}

func TestOversubscriptionFairShare(t *testing.T) {
	s := New(Config{Cores: 2, FreqHz: 2e9})
	g := s.Allocate(tick, []Request{
		{ClientID: "a", Seconds: 0.2, VCPUs: 2},
		{ClientID: "b", Seconds: 0.2, VCPUs: 2},
		{ClientID: "small", Seconds: 0.02, VCPUs: 2},
	})
	// Capacity 0.2; small gets its 0.02, hogs split the remaining 0.18.
	if math.Abs(g[2].Seconds-0.02) > 1e-12 {
		t.Errorf("small grant = %v, want full 0.02", g[2].Seconds)
	}
	if math.Abs(g[0].Seconds-0.09) > 1e-12 || math.Abs(g[1].Seconds-0.09) > 1e-12 {
		t.Errorf("hog grants = %v, %v, want 0.09 each", g[0].Seconds, g[1].Seconds)
	}
}

func TestZeroVCPUsMeansNoClamp(t *testing.T) {
	s := New(Config{Cores: 48, FreqHz: 2e9})
	g := s.Allocate(tick, []Request{{ClientID: "a", Seconds: 0.7}})
	if g[0].Seconds != 0.7 {
		t.Errorf("grant = %v, want 0.7 (no vcpu clamp when 0)", g[0].Seconds)
	}
}

func TestEmptyRequests(t *testing.T) {
	s := New(DefaultConfig())
	if g := s.Allocate(tick, nil); len(g) != 0 {
		t.Errorf("grants = %v", g)
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { New(Config{Cores: 0, FreqHz: 1}) },
		func() { New(Config{Cores: 1, FreqHz: 0}) },
		func() { New(DefaultConfig()).Allocate(0, nil) },
		func() { New(DefaultConfig()).Allocate(tick, []Request{{ClientID: "a", Seconds: -1}}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: grants never exceed demand, vcpu bound, cap bound, or total
// capacity.
func TestPropertyBounds(t *testing.T) {
	s := New(Config{Cores: 8, FreqHz: 2e9})
	f := func(dem []uint8, caps []uint8) bool {
		if len(dem) == 0 {
			return true
		}
		if len(dem) > 16 {
			dem = dem[:16]
		}
		reqs := make([]Request, len(dem))
		for i, d := range dem {
			var cap float64
			if i < len(caps) {
				cap = float64(caps[i]%4) / 2 // 0, 0.5, 1, 1.5 cores
			}
			reqs[i] = Request{ClientID: string(rune('a' + i)), Seconds: float64(d) / 100, VCPUs: 2, CapCores: cap}
		}
		grants := s.Allocate(tick, reqs)
		var tot float64
		for i, g := range grants {
			if g.Seconds > reqs[i].Seconds+1e-9 {
				return false
			}
			if g.Seconds > 2*tick+1e-9 {
				return false
			}
			if reqs[i].CapCores > 0 && g.Seconds > reqs[i].CapCores*tick+1e-9 {
				return false
			}
			tot += g.Seconds
		}
		return tot <= 8*tick+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: fair share is symmetric — equal requests get equal grants.
func TestPropertySymmetry(t *testing.T) {
	s := New(Config{Cores: 1, FreqHz: 2e9})
	f := func(d uint8, n uint8) bool {
		count := int(n%6) + 2
		reqs := make([]Request, count)
		for i := range reqs {
			reqs[i] = Request{ClientID: string(rune('a' + i)), Seconds: float64(d) / 50, VCPUs: 4}
		}
		g := s.Allocate(tick, reqs)
		for i := 1; i < count; i++ {
			if math.Abs(g[i].Seconds-g[0].Seconds) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
