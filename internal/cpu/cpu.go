// Package cpu models a physical server's CPU scheduler: each VM owns a
// number of vcpus, the host has a fixed core count, and the hypervisor can
// impose a hard cap (the CFS quota that libvirt exposes as vcpu_quota —
// the knob PerfCloud's CPU-control module actuates, §III-C).
//
// When aggregate demand exceeds physical cores the scheduler shares
// capacity max-min fairly, mirroring CFS's behaviour for equal-weight
// groups. The paper's testbed (48 cores hosting ~24 vcpus) rarely
// oversubscribes raw cores — the interesting CPU effect is the hard cap
// on antagonists — but the fair-share path matters for the large-scale
// mixes where sysbench-cpu VMs pile onto busy hosts.
package cpu

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Config describes the host CPU.
type Config struct {
	Cores  float64 // physical cores
	FreqHz float64 // nominal core frequency, cycles per second
}

// DefaultConfig mirrors the paper's Dell R630: 48 cores at 2.3 GHz.
func DefaultConfig() Config {
	return Config{Cores: 48, FreqHz: 2.3e9}
}

// Request is one VM's CPU demand for a tick.
type Request struct {
	ClientID string
	Seconds  float64 // core-seconds wanted this tick
	VCPUs    float64 // the VM's vcpu count (upper bound on parallelism)
	CapCores float64 // hard cap in cores (CFS quota); 0 = unlimited
}

// Grant is the scheduler's answer for one client for one tick.
type Grant struct {
	ClientID string
	Seconds  float64 // core-seconds granted
}

// Scheduler shares host cores across VMs each tick. Not safe for
// concurrent use; the cluster steps it from the simulation loop.
type Scheduler struct {
	cfg Config

	lastQuiescent bool

	// Reused per-Allocate scratch (one scheduler serves one server, ticked
	// by a single goroutine, so plain fields suffice).
	clamped []float64
	fair    fairScratch

	// Input memo: the scheduler is a pure function of (tickSec, reqs), so
	// when a tick repeats last tick's inputs exactly — the steady state of
	// a busy server — the cached grants are returned without re-solving.
	memoValid  bool
	memoTick   float64
	memoReqs   []Request
	memoGrants []Grant

	// Memo accounting (plain fields: one scheduler serves one server's
	// ticking goroutine; read between ticks via MemoStats).
	memoHits   uint64
	memoMisses uint64
}

// MemoStats returns how many AllocateInto calls were served from the
// input memo (hits) versus fully solved (misses) over the scheduler's
// lifetime. Read it between ticks — the counters are owned by the
// goroutine ticking the server.
func (s *Scheduler) MemoStats() (hits, misses uint64) { return s.memoHits, s.memoMisses }

// memoizeOff disables the input memo package-wide when set; the zero
// value (enabled) is the normal operating mode. Atomic so tests can flip
// modes without racing live schedulers.
var memoizeOff atomic.Bool

// SetDefaultMemoize toggles the package-wide input memo (reusing the
// previous tick's grants when the request vector and tick length are
// unchanged) and returns the previous setting. Both settings produce
// bit-for-bit identical grants — the allocator is deterministic in its
// inputs — so the toggle exists only for equivalence tests and
// benchmarking the unmemoized path.
func SetDefaultMemoize(enabled bool) bool {
	return !memoizeOff.Swap(!enabled)
}

// requestsEqual reports element-wise equality of two request vectors.
func requestsEqual(a, b []Request) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// New creates a scheduler.
func New(cfg Config) *Scheduler {
	if cfg.Cores <= 0 || cfg.FreqHz <= 0 {
		panic(fmt.Sprintf("cpu: nonpositive config %+v", cfg))
	}
	return &Scheduler{cfg: cfg}
}

// Config returns the host CPU configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Quiescent reports whether the most recent Allocate call carried zero
// demand (the scheduler is stateless, so a quiescent allocation is a
// strict no-op beyond the zero grants it returns).
func (s *Scheduler) Quiescent() bool { return s.lastQuiescent }

// Allocate grants core-seconds for one tick. Per-client demand is first
// clamped to the VM's vcpus and its hard cap; remaining contention for
// physical cores is resolved max-min fairly.
func (s *Scheduler) Allocate(tickSec float64, reqs []Request) []Grant {
	return s.AllocateInto(nil, tickSec, reqs)
}

// AllocateInto is Allocate appending into dst (usually dst[:0] of a
// caller-owned buffer), so the per-tick hot path allocates nothing once
// the buffers reach steady-state size.
func (s *Scheduler) AllocateInto(dst []Grant, tickSec float64, reqs []Request) []Grant {
	if tickSec <= 0 {
		panic("cpu: nonpositive tick")
	}
	if s.memoValid && !memoizeOff.Load() && tickSec == s.memoTick && requestsEqual(reqs, s.memoReqs) {
		// Steady state: identical inputs produce identical grants, and the
		// scheduler has no per-tick internal state to advance.
		s.memoHits++
		return append(dst, s.memoGrants...)
	}
	s.memoMisses++
	s.clamped = s.clamped[:0]
	var anyDemand bool
	for _, r := range reqs {
		if r.Seconds < 0 {
			panic(fmt.Sprintf("cpu: negative demand from %s", r.ClientID))
		}
		d := r.Seconds
		if r.VCPUs > 0 {
			d = math.Min(d, r.VCPUs*tickSec)
		}
		if r.CapCores > 0 {
			d = math.Min(d, r.CapCores*tickSec)
		}
		anyDemand = anyDemand || d > 0
		s.clamped = append(s.clamped, d)
	}
	s.lastQuiescent = !anyDemand
	base := len(dst)
	if !anyDemand {
		// Quiescent fast path: all grants are zero; skip the fair share.
		for _, r := range reqs {
			dst = append(dst, Grant{ClientID: r.ClientID})
		}
		s.saveMemo(tickSec, reqs, dst[base:])
		return dst
	}
	shares := s.fair.fill(s.clamped, s.cfg.Cores*tickSec)
	for i, r := range reqs {
		dst = append(dst, Grant{ClientID: r.ClientID, Seconds: shares[i]})
	}
	s.saveMemo(tickSec, reqs, dst[base:])
	return dst
}

// SteadyReady reports whether the input memo would serve a tick of length
// tickSec whose request vector the caller guarantees is unchanged since
// the memo was saved — the cluster's fused steady path proves that via
// demand epochs instead of re-comparing the vectors every tick.
func (s *Scheduler) SteadyReady(tickSec float64) bool {
	return s.memoValid && !memoizeOff.Load() && tickSec == s.memoTick
}

// ReplaySteady serves one guaranteed-hit tick in place: the scheduler is
// deterministic in its inputs and has no per-tick state, so the caller's
// grant buffer (filled from this memo on the last tick) is already exact
// and only the accounting advances. Call only after SteadyReady.
func (s *Scheduler) ReplaySteady() { s.memoHits++ }

// saveMemo snapshots the inputs and grants of a fully solved tick so an
// identical next tick can skip the solve.
func (s *Scheduler) saveMemo(tickSec float64, reqs []Request, grants []Grant) {
	s.memoTick = tickSec
	s.memoReqs = append(s.memoReqs[:0], reqs...)
	s.memoGrants = append(s.memoGrants[:0], grants...)
	s.memoValid = true
}

// fairScratch holds the reusable buffers of one max-min fair computation.
type fairScratch struct {
	out []float64
	idx []int
}

// fill water-fills capacity across demands max-min fairly, returning a
// slice owned by the scratch (valid until the next fill call).
func (f *fairScratch) fill(demands []float64, capacity float64) []float64 {
	n := len(demands)
	if cap(f.out) < n {
		f.out = make([]float64, n)
	}
	f.out = f.out[:n]
	out := f.out
	for i := range out {
		out[i] = 0
	}
	if n == 0 {
		return out
	}
	var total float64
	for _, d := range demands {
		total += d
	}
	if total <= capacity {
		copy(out, demands)
		return out
	}
	f.idx = f.idx[:0]
	for i := 0; i < n; i++ {
		f.idx = append(f.idx, i)
	}
	idx := f.idx
	sort.Slice(idx, func(a, b int) bool { return demands[idx[a]] < demands[idx[b]] })
	left := capacity
	for k, i := range idx {
		share := left / float64(n-k)
		if demands[i] <= share {
			out[i] = demands[i]
			left -= demands[i]
		} else {
			for _, j := range idx[k:] {
				out[j] = share
			}
			break
		}
	}
	return out
}
