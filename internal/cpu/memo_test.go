package cpu

import (
	"reflect"
	"testing"
)

// setMemoize flips the package memo default and restores it on cleanup.
func setMemoize(t *testing.T, enabled bool) {
	t.Helper()
	prev := SetDefaultMemoize(enabled)
	t.Cleanup(func() { SetDefaultMemoize(prev) })
}

// memoTickSeq is a tick sequence that exercises the memo: repeated inputs
// (hit), a changed demand (miss), repeats of the change (hit again), a
// changed cap (miss), and a quiescent stretch (hit on the zero vector).
func memoTickSeq(s *Scheduler) [][]Grant {
	reqs := []Request{
		{ClientID: "a", Seconds: 0.4, VCPUs: 4},
		{ClientID: "b", Seconds: 1.2, VCPUs: 8},
		{ClientID: "c", Seconds: 0.9, VCPUs: 2, CapCores: 1},
	}
	var out [][]Grant
	record := func() {
		out = append(out, append([]Grant(nil), s.Allocate(0.1, reqs)...))
	}
	for i := 0; i < 5; i++ {
		record()
	}
	reqs[1].Seconds = 2.5
	for i := 0; i < 3; i++ {
		record()
	}
	reqs[2].CapCores = 0.5
	record()
	for i := range reqs {
		reqs[i].Seconds = 0
	}
	for i := 0; i < 3; i++ {
		record()
	}
	return out
}

func TestMemoizationMatchesFullSolve(t *testing.T) {
	setMemoize(t, true)
	memo := memoTickSeq(New(DefaultConfig()))

	setMemoize(t, false)
	full := memoTickSeq(New(DefaultConfig()))

	if !reflect.DeepEqual(memo, full) {
		t.Fatalf("memoized grants diverge from full solve:\nmemo: %v\nfull: %v", memo, full)
	}
}

func TestMemoHitReturnsCachedGrants(t *testing.T) {
	setMemoize(t, true)
	s := New(DefaultConfig())
	reqs := []Request{{ClientID: "a", Seconds: 0.5, VCPUs: 4}}
	first := s.Allocate(0.1, reqs)
	if !s.memoValid {
		t.Fatal("memo not armed after a full solve")
	}
	// Poison the solver scratch; a memo hit must not touch it.
	s.clamped = append(s.clamped[:0], 999)
	second := s.Allocate(0.1, reqs)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("steady tick changed grants: %v vs %v", first, second)
	}
	if len(s.clamped) != 1 || s.clamped[0] != 999 {
		t.Fatal("memo hit re-ran the solve")
	}
}
