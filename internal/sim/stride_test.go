package sim

import (
	"testing"
	"time"
)

// TestPeekSecondsMatchesSeconds pins the contract striders rely on for
// bit-identical timestamps: PeekSeconds(k) evaluated now must equal what
// Seconds() returns once the clock actually reaches that tick.
func TestPeekSecondsMatchesSeconds(t *testing.T) {
	e := NewEngine(100*time.Millisecond, 1)
	c := e.Clock()
	const horizon = 50
	peeked := make([]float64, horizon)
	for k := 0; k < horizon; k++ {
		peeked[k] = c.PeekSeconds(int64(k))
	}
	for k := 0; k < horizon; k++ {
		if got := c.Seconds(); got != peeked[k] {
			t.Fatalf("tick %d: Seconds() = %v, PeekSeconds predicted %v", k, got, peeked[k])
		}
		e.Step()
	}
}

// TestTicksBeforeBoundaries exercises the edge cases that matter when a
// stride must stop short of a scheduled event: a target landing exactly
// on a tick's timestamp (that tick must run, not be elided), targets at
// or behind the current tick, and the max cap.
func TestTicksBeforeBoundaries(t *testing.T) {
	e := NewEngine(100*time.Millisecond, 1)
	c := e.Clock()

	// Exactly on a tick boundary: ticks at 0.0..0.3 are strictly below
	// 0.4; the tick stamped 0.4 itself is excluded.
	if got := c.TicksBefore(c.PeekSeconds(4), 100); got != 4 {
		t.Errorf("TicksBefore(tick-4 boundary) = %d, want 4", got)
	}
	// Between boundaries: the partial tick counts.
	if got := c.TicksBefore(0.35, 100); got != 4 {
		t.Errorf("TicksBefore(0.35) = %d, want 4", got)
	}
	// Target at or before the current tick's own timestamp.
	if got := c.TicksBefore(0, 100); got != 0 {
		t.Errorf("TicksBefore(now) = %d, want 0", got)
	}
	if got := c.TicksBefore(-1, 100); got != 0 {
		t.Errorf("TicksBefore(past) = %d, want 0", got)
	}
	// Nonpositive max.
	if got := c.TicksBefore(10, 0); got != 0 {
		t.Errorf("TicksBefore(max=0) = %d, want 0", got)
	}
	// Cap binds.
	if got := c.TicksBefore(1e9, 7); got != 7 {
		t.Errorf("TicksBefore(cap) = %d, want 7", got)
	}

	// Cross-check against the definition on a moving clock: the count is
	// exactly the number of upcoming ticks with PeekSeconds < target.
	// Sweeping a fine-grained target past coarse tick boundaries covers
	// the monitor-interval and epoch-boundary alignments drivers feed in.
	for step := 0; step < 25; step++ {
		for _, target := range []float64{0.05, 0.1, 0.95, 1.0, 1.05, 2.5, 3.0001} {
			want := int64(0)
			for want < 40 && c.PeekSeconds(want) < target {
				want++
			}
			if got := c.TicksBefore(target, 40); got != want {
				t.Fatalf("tick %d: TicksBefore(%v) = %d, want %d", c.Tick(), target, got, want)
			}
		}
		e.Step()
	}
}

// countStrider elides as many ticks as the bound allows; it tracks the
// clock positions it was offered so tests can assert the stepper's
// accounting.
type countStrider struct{ elided int64 }

func (s *countStrider) Stride(clk *Clock, max int64) int64 {
	s.elided += max
	return max
}

// TestStepperBoundedStrideStopsAtEvent is the driver pattern for
// time-scheduled events (monitor intervals, job arrivals): the bound
// callback caps the stride with TicksBefore so the tick carrying the
// event is executed by the engine, never elided — the clock lands on the
// same tick a per-tick loop would stop at, even with a maximally greedy
// strider.
func TestStepperBoundedStrideStopsAtEvent(t *testing.T) {
	const eventSec = 37.0

	e := NewEngine(time.Second, 1)
	str := &countStrider{}
	st := &Stepper{Eng: e, Str: str}
	for e.Clock().Seconds() < eventSec {
		st.Step(func(clk *Clock) int64 { return clk.TicksBefore(eventSec, 1<<40) })
	}
	if e.Clock().Tick() != 37 {
		t.Errorf("stopped at tick %d, want exactly 37 (the event tick, not past it)", e.Clock().Tick())
	}
	if str.elided != 36 {
		t.Errorf("strider elided %d ticks, want 36 (everything between the first step and the event)", str.elided)
	}
}

// TestStepperNilStriderIsPerTick: with no strider every Step advances
// exactly one tick — the reference behavior stride mode is compared to.
func TestStepperNilStriderIsPerTick(t *testing.T) {
	e := NewEngine(time.Second, 1)
	st := &Stepper{Eng: e}
	for i := 0; i < 5; i++ {
		if n := st.Step(func(*Clock) int64 { return 1 << 40 }); n != 1 {
			t.Fatalf("step %d advanced %d ticks, want 1", i, n)
		}
	}
	if e.Clock().Tick() != 5 {
		t.Errorf("tick = %d, want 5", e.Clock().Tick())
	}
}

// TestStepperBoundZeroStopsStride: a caller bound of 0 means "my own
// event is due on the very next tick" — the strider must not be asked.
func TestStepperBoundZeroStopsStride(t *testing.T) {
	e := NewEngine(time.Second, 1)
	str := &countStrider{}
	st := &Stepper{Eng: e, Str: str}
	if n := st.Step(func(*Clock) int64 { return 0 }); n != 1 {
		t.Fatalf("advanced %d ticks, want 1", n)
	}
	if str.elided != 0 {
		t.Errorf("strider was consulted despite a zero bound (elided=%d)", str.elided)
	}
}
