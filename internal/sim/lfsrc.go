package sim

import "sync"

// lfSource reimplements Go's math/rand additive lagged-Fibonacci source
// (Mitchell & Reeds; rng.go in the standard library) so that seeding can
// be served from a cache. rand.NewSource spends ~2500 LCG steps filling
// its 607-word state vector, and the experiment drivers create dozens of
// deterministic streams per testbed — with repeated runs reusing the same
// (seed, name) pairs across schemes, re-deriving the identical vector
// over and over. lfSource computes the post-seed vector once per distinct
// seed and copies it on every reuse (a 5 KB memcpy instead of the LCG
// chain).
//
// The Go 1 compatibility promise freezes rand.NewSource's sequences, and
// TestLFSourceMatchesMathRand pins this implementation to them draw for
// draw, so the swap is invisible to every consumer: the exact bits of
// every simulation stream are unchanged.
const (
	lfLen    = 607
	lfTap    = 273
	lfMask   = 1<<63 - 1
	int32max = 1<<31 - 1
)

type lfSource struct {
	tap  int
	feed int
	vec  [lfLen]int64
}

// lfSeedrand is the Lehmer LCG step x = 16807*x mod 2^31-1 used only
// while seeding, in the overflow-free Schrage form the stdlib uses.
func lfSeedrand(x int32) int32 {
	const (
		A = 48271
		Q = 44488
		R = 3399
	)
	hi := x / Q
	lo := x % Q
	x = A*lo - R*hi
	if x < 0 {
		x += int32max
	}
	return x
}

// seedVec fills vec with the post-Seed state for seed — the LCG warm-up
// and per-word mixing of rngSource.Seed, with the tap/feed cursors left
// to the caller (they are the same constants for every seed).
func seedVec(seed int64, vec *[lfLen]int64) {
	seed %= int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}
	x := int32(seed)
	for i := -20; i < lfLen; i++ {
		x = lfSeedrand(x)
		if i >= 0 {
			u := int64(x) << 40
			x = lfSeedrand(x)
			u ^= int64(x) << 20
			x = lfSeedrand(x)
			u ^= int64(x)
			u ^= lfCooked[i]
			vec[i] = u
		}
	}
}

// lfSeedCache memoizes post-seed state vectors. Entries are immutable
// once published, so lookups copy from the shared pointer outside the
// lock. The cap bounds worst-case growth (a long sweep over thousands of
// distinct seeds) at ~20 MB; past it, new seeds are computed directly and
// simply not cached.
var lfSeedCache struct {
	sync.RWMutex
	m map[int64]*[lfLen]int64
}

const lfSeedCacheCap = 4096

// newLFSource returns a freshly seeded source, equivalent to
// rand.NewSource(seed) but served from the seed cache when possible.
func newLFSource(seed int64) *lfSource {
	s := &lfSource{tap: 0, feed: lfLen - lfTap}
	lfSeedCache.RLock()
	v := lfSeedCache.m[seed]
	lfSeedCache.RUnlock()
	if v == nil {
		v = new([lfLen]int64)
		seedVec(seed, v)
		lfSeedCache.Lock()
		if lfSeedCache.m == nil {
			lfSeedCache.m = make(map[int64]*[lfLen]int64)
		}
		if len(lfSeedCache.m) < lfSeedCacheCap {
			lfSeedCache.m[seed] = v
		}
		lfSeedCache.Unlock()
	}
	s.vec = *v
	return s
}

// Seed re-initializes the generator, matching rngSource.Seed.
func (s *lfSource) Seed(seed int64) {
	s.tap = 0
	s.feed = lfLen - lfTap
	seedVec(seed, &s.vec)
}

// Int63 returns a non-negative 63-bit integer, matching rngSource.Int63.
func (s *lfSource) Int63() int64 { return int64(s.Uint64() & lfMask) }

// Uint64 advances the lagged-Fibonacci recurrence one step, matching
// rngSource.Uint64.
func (s *lfSource) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += lfLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += lfLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}
