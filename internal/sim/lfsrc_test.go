package sim

import (
	"math/rand"
	"testing"
)

// TestLFSourceMatchesMathRand pins lfSource to rand.NewSource draw for
// draw: the raw Int63/Uint64 streams and the derived distributions the
// simulation actually consumes (NormFloat64, Float64, Perm) must be
// bit-for-bit identical for positive, negative, zero and equivalent
// seeds. This is the contract that lets RNG.Stream swap sources without
// perturbing any simulation result — and the transcription guard for
// lfCooked.
func TestLFSourceMatchesMathRand(t *testing.T) {
	seeds := []int64{0, 1, -1, 42, -42, 89482311, int32max, int32max + 1,
		-int32max, 1 << 40, -(1 << 40), 997, 104729}
	for _, seed := range seeds {
		ref := rand.NewSource(seed).(rand.Source64)
		got := newLFSource(seed)
		for i := 0; i < 2000; i++ {
			if r, g := ref.Uint64(), got.Uint64(); r != g {
				t.Fatalf("seed %d draw %d: Uint64 %d != stdlib %d", seed, i, g, r)
			}
		}
		if r, g := ref.Int63(), got.Int63(); r != g {
			t.Fatalf("seed %d: Int63 %d != stdlib %d", seed, g, r)
		}
	}

	// The derived streams (what AR1, schedulers and placement actually
	// draw) through *rand.Rand.
	for _, seed := range seeds {
		ref := rand.New(rand.NewSource(seed))
		got := rand.New(newLFSource(seed))
		for i := 0; i < 500; i++ {
			if r, g := ref.NormFloat64(), got.NormFloat64(); r != g {
				t.Fatalf("seed %d draw %d: NormFloat64 %v != stdlib %v", seed, i, g, r)
			}
			if r, g := ref.Float64(), got.Float64(); r != g {
				t.Fatalf("seed %d draw %d: Float64 %v != stdlib %v", seed, i, g, r)
			}
		}
		rp, gp := ref.Perm(17), got.Perm(17)
		for i := range rp {
			if rp[i] != gp[i] {
				t.Fatalf("seed %d: Perm %v != stdlib %v", seed, gp, rp)
			}
		}
	}
}

// TestLFSourceCacheHitIdentical verifies the cached-seed path: the second
// source for a seed (served by vector copy) produces the same stream as
// the first (which computed the vector), and re-Seeding matches a fresh
// stdlib source.
func TestLFSourceCacheHitIdentical(t *testing.T) {
	const seed = 31337
	a := newLFSource(seed) // computes and populates the cache
	b := newLFSource(seed) // copies from the cache
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: cache-hit source diverged: %d != %d", i, y, x)
		}
	}
	a.Seed(7)
	ref := rand.NewSource(7).(rand.Source64)
	for i := 0; i < 1000; i++ {
		if r, g := ref.Uint64(), a.Uint64(); r != g {
			t.Fatalf("draw %d after re-Seed: %d != stdlib %d", i, g, r)
		}
	}
}
