package sim

import (
	"math"
	"math/rand"
	"testing"
)

func TestAR1StationaryMoments(t *testing.T) {
	a := NewAR1(0.9, 2.0, rand.New(rand.NewSource(1)))
	var sum, sumsq float64
	n := 50000
	for i := 0; i < n; i++ {
		v := a.Step("x")
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.1 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(sd-2.0) > 0.2 {
		t.Errorf("stddev = %v, want ~2", sd)
	}
}

func TestAR1Autocorrelation(t *testing.T) {
	a := NewAR1(0.95, 1.0, rand.New(rand.NewSource(2)))
	var prev float64
	var num, den float64
	n := 50000
	for i := 0; i < n; i++ {
		v := a.Step("x")
		if i > 0 {
			num += prev * v
			den += prev * prev
		}
		prev = v
	}
	rho := num / den
	if math.Abs(rho-0.95) > 0.05 {
		t.Errorf("autocorrelation = %v, want ~0.95", rho)
	}
}

func TestAR1IndependentClients(t *testing.T) {
	a := NewAR1(0.9, 1.0, rand.New(rand.NewSource(3)))
	var cov, va, vb float64
	n := 20000
	for i := 0; i < n; i++ {
		x := a.Step("a")
		y := a.Step("b")
		cov += x * y
		va += x * x
		vb += y * y
	}
	r := cov / math.Sqrt(va*vb)
	if math.Abs(r) > 0.1 {
		t.Errorf("cross-client correlation = %v, want ~0", r)
	}
}

func TestAR1ZeroStdDevIsConstantZero(t *testing.T) {
	a := NewAR1(0.5, 0, rand.New(rand.NewSource(4)))
	for i := 0; i < 10; i++ {
		if v := a.Step("x"); v != 0 {
			t.Fatalf("step = %v, want 0", v)
		}
	}
}

func TestAR1GC(t *testing.T) {
	a := NewAR1(0.9, 1.0, rand.New(rand.NewSource(5)))
	for i := 0; i < 300; i++ {
		a.Step(string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	a.GC(map[string]bool{"a0": true})
	if a.Len() != 1 {
		t.Errorf("after GC len = %d, want 1", a.Len())
	}
	// GC is a no-op while small.
	b := NewAR1(0.9, 1.0, rand.New(rand.NewSource(6)))
	b.Step("x")
	b.GC(map[string]bool{})
	if b.Len() != 1 {
		t.Errorf("small-map GC should be no-op, len = %d", b.Len())
	}
}

func TestAR1Panics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewAR1(1, 1, rand.New(rand.NewSource(1))) },
		func() { NewAR1(-0.1, 1, rand.New(rand.NewSource(1))) },
		func() { NewAR1(0.5, -1, rand.New(rand.NewSource(1))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}
