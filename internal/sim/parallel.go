package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: n > 0 is taken literally, any
// other value selects GOMAXPROCS. Callers that want a hard sequential mode
// pass 1 explicitly.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEachParallel invokes fn(i) for every i in [0, n) using a bounded pool
// of at most workers goroutines. With workers <= 1 (or n <= 1) it runs
// inline on the caller's goroutine — the deterministic sequential mode the
// regression tests compare against.
//
// The iteration indices are handed out through an atomic counter, so the
// assignment of indices to goroutines (and their completion order) is
// nondeterministic; callers must make fn(i) independent of fn(j) for i != j
// and must write results only to index-i-owned locations. Under that
// contract results are bit-for-bit identical to the sequential mode.
//
// A panic inside fn stops further work from being scheduled and is
// re-raised on the caller's goroutine once all in-flight work has drained,
// matching the sequential failure behaviour experiments rely on.
func ForEachParallel(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							stop.Store(true)
							panicMu.Lock()
							if panicked == nil {
								panicked = r
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
