package sim

import (
	"sync/atomic"
	"testing"
)

func TestSlotPoolAcquireRelease(t *testing.T) {
	p := NewSlotPool(4)
	if got := p.TryAcquire(3); got != 3 {
		t.Fatalf("TryAcquire(3) on empty pool = %d", got)
	}
	if got := p.TryAcquire(3); got != 1 {
		t.Fatalf("TryAcquire(3) with 1 free = %d, want partial grant 1", got)
	}
	if got := p.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire on drained pool = %d, want 0", got)
	}
	if p.InUse() != 4 || p.PeakInUse() != 4 {
		t.Fatalf("InUse = %d, PeakInUse = %d, want 4, 4", p.InUse(), p.PeakInUse())
	}
	p.Release(4)
	if p.InUse() != 0 {
		t.Fatalf("InUse after release = %d", p.InUse())
	}
	if p.PeakInUse() != 4 {
		t.Fatalf("PeakInUse forgot the high-water mark: %d", p.PeakInUse())
	}
	p.ResetPeak()
	if p.PeakInUse() != 0 {
		t.Fatalf("PeakInUse after reset = %d", p.PeakInUse())
	}
}

func TestSlotPoolZeroCapacity(t *testing.T) {
	p := NewSlotPool(0)
	if got := p.TryAcquire(5); got != 0 {
		t.Fatalf("TryAcquire on zero-capacity pool = %d", got)
	}
}

func TestForEachSharedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		const n = 1000
		var hits [n]atomic.Int32
		ForEachShared(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachSharedReleasesSlots(t *testing.T) {
	before := SharedPool().InUse()
	ForEachShared(100, 8, func(i int) {})
	if after := SharedPool().InUse(); after != before {
		t.Fatalf("slots leaked: InUse %d -> %d", before, after)
	}
}

func TestForEachSharedPeakWithinCapacity(t *testing.T) {
	SharedPool().ResetPeak()
	// Nest fan-outs the way the experiment suite does: an outer repetition
	// layer whose workers each fan out an inner tick layer.
	ForEachShared(8, 8, func(i int) {
		ForEachShared(16, 16, func(j int) {})
	})
	if peak, capacity := SharedPool().PeakInUse(), SharedPool().Capacity(); peak > capacity {
		t.Fatalf("peak slot usage %d exceeds pool capacity %d", peak, capacity)
	}
}

func TestForEachSharedPanicPropagates(t *testing.T) {
	before := SharedPool().InUse()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in fn was swallowed")
		}
		if after := SharedPool().InUse(); after != before {
			t.Fatalf("slots leaked across panic: InUse %d -> %d", before, after)
		}
	}()
	ForEachShared(64, 4, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

func TestForEachSharedSequentialWhenDrained(t *testing.T) {
	grabbed := SharedPool().TryAcquire(SharedPool().Capacity())
	defer SharedPool().Release(grabbed)
	// With the pool drained the loop must still complete, inline.
	var sum int // no synchronization: inline execution is single-goroutine
	ForEachShared(50, 8, func(i int) { sum += i })
	if sum != 50*49/2 {
		t.Fatalf("sum = %d", sum)
	}
}
