package sim

import (
	"math"
	"math/rand"
)

// AR1 is a first-order autoregressive (Ornstein-Uhlenbeck-like) noise
// process with zero mean: x' = corr*x + sqrt(1-corr^2)*stddev*N(0,1).
// The resource models use one AR1 per client as a slowly varying "luck"
// factor: a VM that lands behind an antagonist's bursts stays unlucky for
// a correlation time of roughly tick/(1-corr), so per-VM unevenness
// survives the monitor's 5-second averaging window instead of washing out.
type AR1 struct {
	Corr   float64 // per-step correlation in [0, 1)
	StdDev float64 // stationary standard deviation

	state map[string]float64
	rng   *rand.Rand
}

// NewAR1 creates a per-client AR(1) noise source.
func NewAR1(corr, stddev float64, rng *rand.Rand) *AR1 {
	if corr < 0 || corr >= 1 {
		panic("sim: AR1 corr must be in [0, 1)")
	}
	if stddev < 0 {
		panic("sim: AR1 stddev must be nonnegative")
	}
	return &AR1{Corr: corr, StdDev: stddev, state: make(map[string]float64), rng: rng}
}

// Step advances the named client's process one step and returns its value.
func (a *AR1) Step(id string) float64 {
	next := a.Corr*a.state[id] + math.Sqrt(1-a.Corr*a.Corr)*a.StdDev*a.rng.NormFloat64()
	a.state[id] = next
	return next
}

// GC drops state for clients not in keep, bounding memory across VM churn.
// It is a no-op while the state map is still small relative to keep.
func (a *AR1) GC(keep map[string]bool) {
	if len(a.state) <= 4*len(keep)+16 {
		return
	}
	for id := range a.state {
		if !keep[id] {
			delete(a.state, id)
		}
	}
}

// Len reports the number of tracked clients (for tests).
func (a *AR1) Len() int { return len(a.state) }
