package sim

import (
	"math"
	"math/rand"
)

// AR1 is a first-order autoregressive (Ornstein-Uhlenbeck-like) noise
// process with zero mean: x' = corr*x + sqrt(1-corr^2)*stddev*N(0,1).
// The resource models use one AR1 per client as a slowly varying "luck"
// factor: a VM that lands behind an antagonist's bursts stays unlucky for
// a correlation time of roughly tick/(1-corr), so per-VM unevenness
// survives the monitor's 5-second averaging window instead of washing out.
type AR1 struct {
	Corr   float64 // per-step correlation in [0, 1)
	StdDev float64 // stationary standard deviation

	// Per-client state lives in a flat slice indexed through idx, so the
	// per-tick hot path pays one map read per Step instead of a map read
	// plus a map write. Slot order is an internal detail (GC may reorder
	// it); only the per-id values are observable.
	idx  map[string]int32
	vals []float64
	rng  *rand.Rand
	gen  uint64 // bumped whenever GC compacts (and so reassigns) slots

	slots []int32 // StepBatch scratch: resolved slot per id

	// Cached innovation scale sqrt(1-corr^2)*stddev, recomputed whenever
	// the (exported, in principle mutable) parameters change.
	scale              float64
	scaleCorr, scaleSD float64
	scaleOK            bool
}

// NewAR1 creates a per-client AR(1) noise source.
func NewAR1(corr, stddev float64, rng *rand.Rand) *AR1 {
	if corr < 0 || corr >= 1 {
		panic("sim: AR1 corr must be in [0, 1)")
	}
	if stddev < 0 {
		panic("sim: AR1 stddev must be nonnegative")
	}
	return &AR1{Corr: corr, StdDev: stddev, idx: make(map[string]int32), rng: rng}
}

// scaleFactor returns sqrt(1-corr^2)*stddev without paying the square
// root per step. The product associates exactly as Step's historical
// inline expression sqrt(1-c^2)*stddev*z: Go evaluates that left to
// right, so hoisting the left pair is exact, not approximate.
func (a *AR1) scaleFactor() float64 {
	if !a.scaleOK || a.Corr != a.scaleCorr || a.StdDev != a.scaleSD {
		a.scaleCorr, a.scaleSD = a.Corr, a.StdDev
		a.scale = math.Sqrt(1-a.Corr*a.Corr) * a.StdDev
		a.scaleOK = true
	}
	return a.scale
}

// slot resolves the client's index, allocating a zero-state slot for a
// client seen for the first time.
func (a *AR1) slot(id string) int32 {
	i, ok := a.idx[id]
	if !ok {
		i = int32(len(a.vals))
		a.idx[id] = i
		a.vals = append(a.vals, 0)
	}
	return i
}

// Step advances the named client's process one step and returns its value.
func (a *AR1) Step(id string) float64 {
	i := a.slot(id)
	next := a.Corr*a.vals[i] + a.scaleFactor()*a.rng.NormFloat64()
	a.vals[i] = next
	return next
}

// Slot is a resolved handle to one client's state, valid until the next
// GC compaction (watch Gen). Steady-state replay paths resolve each
// client once and then step by handle, skipping the per-draw map lookup.
type Slot int32

// Gen returns the slot-layout generation: Slot handles resolved under one
// generation are invalid once Gen moves (GC compacted the state slice).
func (a *AR1) Gen() uint64 { return a.gen }

// Slot resolves the client's handle, allocating zero state for a client
// seen for the first time (exactly as Step would).
func (a *AR1) Slot(id string) Slot { return Slot(a.slot(id)) }

// StepSlot is Step through a resolved handle: the identical arithmetic on
// the identical state, minus the map lookup.
func (a *AR1) StepSlot(sl Slot) float64 {
	next := a.Corr*a.vals[sl] + a.scaleFactor()*a.rng.NormFloat64()
	a.vals[sl] = next
	return next
}

// StepBatch advances every named client's process n steps, drawing in the
// same tick-major order (all ids for step 1, then all ids for step 2, ...)
// that n successive per-id Step loops would use, so the underlying random
// stream lands in the identical position and every per-client state is
// bit-for-bit what n Step calls would have produced. Ids are resolved to
// state slots once regardless of n, so replaying a long idle stretch is a
// single tight loop with no allocations beyond the reused scratch slice.
func (a *AR1) StepBatch(n int, ids []string) {
	if n <= 0 || len(ids) == 0 {
		return
	}
	scale := a.scaleFactor()
	if cap(a.slots) < len(ids) {
		a.slots = make([]int32, len(ids))
	}
	sl := a.slots[:len(ids)]
	for k, id := range ids {
		sl[k] = a.slot(id)
	}
	for t := 0; t < n; t++ {
		for _, i := range sl {
			a.vals[i] = a.Corr*a.vals[i] + scale*a.rng.NormFloat64()
		}
	}
}

// GC drops state for clients not in keep, bounding memory across VM churn.
// It is a no-op while the state map is still small relative to keep.
func (a *AR1) GC(keep map[string]bool) {
	if len(a.idx) <= 4*len(keep)+16 {
		return
	}
	for id := range a.idx {
		if !keep[id] {
			delete(a.idx, id)
		}
	}
	// Compact the state slice around the survivors. The new slot order
	// follows map iteration — arbitrary, but unobservable: clients keep
	// their values, and draws are ordered by the callers, not the slots.
	vals := make([]float64, 0, len(a.idx))
	for id, i := range a.idx {
		a.idx[id] = int32(len(vals))
		vals = append(vals, a.vals[i])
	}
	a.vals = vals
	a.gen++
}

// Len reports the number of tracked clients (for tests).
func (a *AR1) Len() int { return len(a.idx) }
