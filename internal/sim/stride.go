package sim

import "time"

// This file implements event-driven time advancement (DESIGN.md §5.6).
//
// The engine's unit of progress stays the fixed tick — determinism and
// bit-for-bit reproducibility hinge on every component observing the same
// per-tick arithmetic — but most ticks do not *need* the engine: when every
// framework is provably a no-op and no control-plane interval is due, the
// only work a tick performs is the cluster's grant/advance pipeline. A
// Strider replays exactly that work for a run of upcoming ticks and the
// Stepper then moves the clock past them in one stride, so the per-tick
// cost of engine dispatch, framework scans and controller wakeups is paid
// only on ticks that can actually change scheduling decisions.

// Strider fast-forwards the simulation through up to max upcoming ticks
// whose engine dispatch is provably redundant, replaying any per-tick state
// evolution (grants, random draws, counters) those ticks would have
// performed. It returns how many ticks it elided, 0 <= n <= max; the caller
// advances the clock by that amount. The clock passed in is positioned so
// that the next tick to execute has index clk.Tick() — PeekSeconds(0) is
// that tick's simulated time.
type Strider interface {
	Stride(clk *Clock, max int64) int64
}

// Stepper drives an engine one tick at a time, letting a Strider elide
// runs of event-free ticks between engine steps. With a nil Strider it
// degrades to plain Engine.Step, which is also the bit-for-bit reference
// behavior: striding never changes results, only how often the engine's
// dispatch loop runs.
type Stepper struct {
	Eng *Engine
	Str Strider
}

// Step advances the simulation by at least one tick: it runs exactly one
// engine tick, then offers the strider the chance to elide further ticks.
// The bound callback is evaluated on the post-step clock and returns the
// maximum number of ticks the *caller* allows the strider to elide —
// drivers use it to stop strides short of their own pending actions (a job
// arrival, an observation interval, a completed predicate). A nil bound
// means the caller imposes no limit. Step returns the total number of
// ticks advanced (>= 1).
func (s *Stepper) Step(bound func(clk *Clock) int64) int64 {
	s.Eng.Step()
	if s.Str == nil {
		return 1
	}
	clk := &s.Eng.clock
	max := int64(1<<63 - 1)
	if bound != nil {
		max = bound(clk)
	}
	if max <= 0 {
		return 1
	}
	n := s.Str.Stride(clk, max)
	if n < 0 || n > max {
		panic("sim: strider elided ticks out of bounds")
	}
	clk.tick += n
	return 1 + n
}

// RunUntil steps the simulation until the predicate returns true or the
// simulated-time limit is reached, eliding event-free ticks between steps.
// It reports whether the predicate fired. The predicate is re-checked
// inside the stride bound so the clock never overshoots the tick at which
// it first becomes true — the stop tick is identical to Engine.RunUntil's.
func (s *Stepper) RunUntil(pred func() bool, limit time.Duration) bool {
	maxTicks := int64(limit / s.Eng.clock.tickSize)
	for i := int64(0); i < maxTicks; {
		if pred() {
			return true
		}
		remaining := maxTicks - i
		i += s.Step(func(*Clock) int64 {
			if pred() {
				return 0
			}
			return remaining - 1
		})
	}
	return pred()
}

// PeekSeconds returns the simulated time, in seconds, of the tick `ahead`
// ticks past the clock's current position, computed by the exact same
// expression Seconds evaluates once the clock reaches that tick. Striders
// use it to replay time-stamped per-tick work for ticks the engine never
// dispatches, with bit-identical timestamps.
func (c *Clock) PeekSeconds(ahead int64) float64 {
	return (time.Duration(c.tick+ahead) * c.tickSize).Seconds()
}

// TicksBefore returns how many consecutive upcoming ticks — starting with
// the tick at PeekSeconds(0) — have simulated time strictly below
// targetSec, capped at max. Drivers use it to bound strides so that a tick
// whose timestamp reaches a scheduled event (a monitor interval, a job
// arrival) is executed by the engine, never elided.
func (c *Clock) TicksBefore(targetSec float64, max int64) int64 {
	if max <= 0 || !(c.PeekSeconds(0) < targetSec) {
		return 0
	}
	// Start from the algebraic estimate, then settle it against the exact
	// tick-to-seconds conversion; float rounding puts the estimate within a
	// step or two of the true boundary, so the scans are O(1).
	n := int64(targetSec/c.tickSize.Seconds()) - c.tick
	if n < 1 {
		n = 1
	}
	if n > max {
		n = max
	}
	for n > 1 && !(c.PeekSeconds(n-1) < targetSec) {
		n--
	}
	for n < max && c.PeekSeconds(n) < targetSec {
		n++
	}
	return n
}
