package sim

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-5) = %d, want GOMAXPROCS", got)
	}
}

func TestForEachParallelCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 100} {
		const n = 57
		var hits [n]atomic.Int64
		ForEachParallel(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachParallelZeroAndOne(t *testing.T) {
	ForEachParallel(0, 4, func(int) { t.Error("fn called for n=0") })
	calls := 0
	ForEachParallel(1, 4, func(i int) { calls++ })
	if calls != 1 {
		t.Errorf("n=1 calls = %d", calls)
	}
}

func TestForEachParallelPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			ForEachParallel(16, workers, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
		}()
	}
}
