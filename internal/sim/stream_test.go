package sim

import (
	"math/rand"
	"testing"
)

// TestStreamDerivationOrderIndependent pins the property cluster
// sharding (and any other fleet partitioning) rests on: a named
// stream's sequence is a pure function of (master seed, name). Deriving
// streams in a different order, deriving extra streams in between, or
// drawing from other streams first — everything a different shard
// partition or iteration order could change — must leave every stream's
// sequence untouched.
func TestStreamDerivationOrderIndependent(t *testing.T) {
	names := []string{"disk/server-0", "disk/server-1", "memsys/server-0", "jobgen"}
	draw := func(r *rand.Rand, n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = r.Float64()
		}
		return out
	}

	// Reference: derive in listed order, drain each fully before the next.
	want := make(map[string][]float64)
	ref := NewRNG(42)
	for _, name := range names {
		want[name] = draw(ref.Stream(name), 32)
	}

	// Same seed, reversed derivation order, an unrelated stream drawn in
	// between, and interleaved draws across all streams.
	alt := NewRNG(42)
	streams := make(map[string]*rand.Rand)
	for i := len(names) - 1; i >= 0; i-- {
		streams[names[i]] = alt.Stream(names[i])
		draw(alt.Stream("noise"), 100)
	}
	got := make(map[string][]float64)
	for i := 0; i < 32; i++ {
		for _, name := range names {
			got[name] = append(got[name], streams[name].Float64())
		}
	}
	for _, name := range names {
		for i, v := range want[name] {
			if got[name][i] != v {
				t.Fatalf("stream %q draw %d = %v, want %v — derivation order leaked into the sequence",
					name, i, got[name][i], v)
			}
		}
	}

	// Different seeds must still decorrelate the same name.
	other := NewRNG(43)
	if draw(other.Stream(names[0]), 1)[0] == want[names[0]][0] {
		t.Fatalf("stream %q identical across different master seeds", names[0])
	}
}
