package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// SlotPool is a weighted pool of worker slots shared by every parallel
// layer of the process. Each slot licenses one extra goroutine beyond
// the caller's own; layers that fan out (experiment repetitions,
// per-cluster tick workers) acquire slots before spawning and release
// them as workers retire, so nested fan-outs cannot multiply into more
// runnable goroutines than the machine has processors.
//
// Acquisition is non-blocking and partial: a caller asking for k slots
// receives between 0 and k, weighted by what is free right now. A caller
// granted zero slots simply runs its work inline on its own goroutine —
// it never waits — which is what makes nested use deadlock-free: an
// inner layer that finds the pool drained degrades to sequential
// execution instead of parking a worker the outer layer is counting on.
type SlotPool struct {
	capacity int64
	used     atomic.Int64
	peak     atomic.Int64

	// Contention accounting for the health layer: how often callers asked
	// for slots, how often they were turned away empty-handed, and how
	// many slots were granted in total. Updated once per fan-out, not per
	// iteration, so the counters cost nothing on the simulation hot path.
	tryAcquires atomic.Uint64
	denied      atomic.Uint64
	granted     atomic.Uint64
}

// NewSlotPool creates a pool with the given number of slots. Capacity 0
// is valid: every TryAcquire returns 0 and all work runs inline.
func NewSlotPool(capacity int) *SlotPool {
	if capacity < 0 {
		capacity = 0
	}
	return &SlotPool{capacity: int64(capacity)}
}

// TryAcquire claims up to want slots without blocking and returns how
// many were granted (possibly zero).
func (p *SlotPool) TryAcquire(want int) int {
	if want <= 0 {
		return 0
	}
	p.tryAcquires.Add(1)
	for {
		used := p.used.Load()
		free := p.capacity - used
		if free <= 0 {
			p.denied.Add(1)
			return 0
		}
		n := int64(want)
		if n > free {
			n = free
		}
		if p.used.CompareAndSwap(used, used+n) {
			p.notePeak(used + n)
			p.granted.Add(uint64(n))
			return int(n)
		}
	}
}

// Release returns n slots to the pool.
func (p *SlotPool) Release(n int) {
	if n > 0 {
		p.used.Add(-int64(n))
	}
}

// Capacity returns the total number of slots.
func (p *SlotPool) Capacity() int { return int(p.capacity) }

// InUse returns the number of slots currently held.
func (p *SlotPool) InUse() int { return int(p.used.Load()) }

// PeakInUse returns the high-water mark of held slots since the last
// ResetPeak. Tests assert it stays at or below Capacity, which — with
// one root goroutine driving the work — bounds the process's concurrent
// workers at Capacity+1.
func (p *SlotPool) PeakInUse() int { return int(p.peak.Load()) }

// ResetPeak clears the high-water mark (down to the current usage).
func (p *SlotPool) ResetPeak() { p.peak.Store(p.used.Load()) }

// PoolStats is a snapshot of the pool's capacity and contention
// counters, for the health layer.
type PoolStats struct {
	Capacity int
	InUse    int
	Peak     int
	// TryAcquires counts TryAcquire calls with want > 0; Denied counts
	// those that returned 0 because the pool was drained; GrantedSlots
	// sums the slots handed out.
	TryAcquires  uint64
	Denied       uint64
	GrantedSlots uint64
}

// Stats snapshots the pool (counters are read independently, so a
// snapshot taken mid-fan-out may be momentarily inconsistent — fine for
// health reporting).
func (p *SlotPool) Stats() PoolStats {
	return PoolStats{
		Capacity:     p.Capacity(),
		InUse:        p.InUse(),
		Peak:         p.PeakInUse(),
		TryAcquires:  p.tryAcquires.Load(),
		Denied:       p.denied.Load(),
		GrantedSlots: p.granted.Load(),
	}
}

func (p *SlotPool) notePeak(used int64) {
	for {
		peak := p.peak.Load()
		if used <= peak || p.peak.CompareAndSwap(peak, used) {
			return
		}
	}
}

// sharedPool is the process-wide pool every ForEachShared call draws
// from. Its capacity is GOMAXPROCS-1 (at init): the root goroutine that
// drives a simulation is itself a worker, so granting up to P-1 extras
// keeps the total at P even when layers nest — an outer repetition
// worker that fans a cluster tick out further is idle (blocked in
// ForEachShared) only after its own loop body returned, and while it
// participates inline it holds no extra slot.
var sharedPool = NewSlotPool(runtime.GOMAXPROCS(0) - 1)

// SharedPool returns the process-wide worker slot pool.
func SharedPool() *SlotPool { return sharedPool }

// ForEachShared invokes fn(i) for every i in [0, n) with at most want
// workers, like ForEachParallel, but draws the extra goroutines from the
// process-wide SharedPool instead of spawning unconditionally. The
// caller's goroutine always participates as one worker; up to want-1
// additional workers run while slots are available, each returning its
// slot as it retires. When the pool is drained (or want <= 1, or n <= 1)
// the loop runs inline — sequentially — on the caller's goroutine.
//
// The contract on fn matches ForEachParallel: iterations must be
// mutually independent and write only to index-owned locations; under
// it, every schedule is bit-for-bit identical to the sequential mode. A
// panic in fn stops further scheduling and is re-raised on the caller's
// goroutine after in-flight work drains.
func ForEachShared(n, want int, fn func(i int)) {
	if want > n {
		want = n
	}
	extra := 0
	if want > 1 && n > 1 {
		extra = sharedPool.TryAcquire(want - 1)
	}
	if extra == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	work := func() {
		for !stop.Load() {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						stop.Store(true)
						panicMu.Lock()
						if panicked == nil {
							panicked = r
						}
						panicMu.Unlock()
					}
				}()
				fn(i)
			}()
		}
	}
	for w := 0; w < extra; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sharedPool.Release(1)
			work()
		}()
	}
	work() // the caller is a worker too; it holds no slot
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
