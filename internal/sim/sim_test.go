package sim

import (
	"testing"
	"time"
)

func TestClockAdvances(t *testing.T) {
	e := NewEngine(100*time.Millisecond, 1)
	c := e.Clock()
	if c.Tick() != 0 || c.Now() != 0 {
		t.Fatal("fresh clock should be at zero")
	}
	e.Step()
	if c.Tick() != 1 {
		t.Errorf("tick = %d, want 1", c.Tick())
	}
	e.Run(9)
	if c.Tick() != 10 {
		t.Errorf("tick = %d, want 10", c.Tick())
	}
	if got := c.Now(); got != time.Second {
		t.Errorf("Now = %v, want 1s", got)
	}
	if got := c.Seconds(); got != 1.0 {
		t.Errorf("Seconds = %v, want 1", got)
	}
	if got := c.TickSeconds(); got != 0.1 {
		t.Errorf("TickSeconds = %v, want 0.1", got)
	}
}

func TestDefaultTickSelected(t *testing.T) {
	e := NewEngine(0, 1)
	if got := e.Clock().TickSize(); got != DefaultTick {
		t.Errorf("tick size = %v, want %v", got, DefaultTick)
	}
}

func TestTickOrderByPriorityThenRegistration(t *testing.T) {
	e := NewEngine(DefaultTick, 1)
	var order []string
	add := func(name string, pri int) {
		e.RegisterPriority(TickFunc(func(*Clock) { order = append(order, name) }), pri)
	}
	add("framework", 0)
	add("controller", 1)
	add("resources", -1)
	add("framework2", 0)
	e.Step()
	want := []string{"resources", "framework", "framework2", "controller"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunFor(t *testing.T) {
	e := NewEngine(100*time.Millisecond, 1)
	n := 0
	e.Register(TickFunc(func(*Clock) { n++ }))
	e.RunFor(2 * time.Second)
	if n != 20 {
		t.Errorf("ticks = %d, want 20", n)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(100*time.Millisecond, 1)
	n := 0
	e.Register(TickFunc(func(*Clock) { n++ }))
	ok := e.RunUntil(func() bool { return n >= 5 }, time.Minute)
	if !ok || n != 5 {
		t.Errorf("ok=%v n=%d, want fired at n=5", ok, n)
	}
	ok = e.RunUntil(func() bool { return n >= 1000000 }, time.Second)
	if ok {
		t.Error("predicate should not have fired within limit")
	}
}

func TestStopEndsRun(t *testing.T) {
	e := NewEngine(DefaultTick, 1)
	n := 0
	e.Register(TickFunc(func(*Clock) {
		n++
		if n == 3 {
			e.Stop()
		}
	}))
	e.Run(100)
	if n != 3 {
		t.Errorf("ticks = %d, want 3 (stopped)", n)
	}
	// A subsequent Run resumes normally.
	e.Run(2)
	if n != 5 {
		t.Errorf("ticks after resume = %d, want 5", n)
	}
}

func TestTickReceivesClock(t *testing.T) {
	e := NewEngine(time.Second, 1)
	var seen []int64
	e.Register(TickFunc(func(c *Clock) { seen = append(seen, c.Tick()) }))
	e.Run(3)
	want := []int64{0, 1, 2}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("seen = %v, want %v", seen, want)
		}
	}
}

func TestRNGDeterministicPerName(t *testing.T) {
	a := NewRNG(42).Stream("disk/0")
	b := NewRNG(42).Stream("disk/0")
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed+name must yield identical streams")
		}
	}
}

func TestRNGIndependentAcrossNames(t *testing.T) {
	r := NewRNG(42)
	a, b := r.Stream("disk/0"), r.Stream("disk/1")
	same := true
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Error("different names should yield different streams")
	}
}

func TestRNGSeedChangesStreams(t *testing.T) {
	a := NewRNG(1).Stream("x")
	b := NewRNG(2).Stream("x")
	same := true
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should yield different streams")
	}
	if NewRNG(7).Seed() != 7 {
		t.Error("Seed accessor")
	}
}

func TestRNGStreamf(t *testing.T) {
	r := NewRNG(5)
	a := r.Streamf("vm/%d", 3)
	b := r.Stream("vm/3")
	for i := 0; i < 5; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("Streamf should match equivalent Stream name")
		}
	}
}
