// Package sim provides the discrete-time simulation engine underlying the
// PerfCloud testbed reproduction. Time advances in fixed ticks; each tick
// every registered Tickable is stepped in registration order, which keeps
// runs deterministic for a given seed. Wall-clock time plays no role: a
// 152-node, multi-minute experiment executes in milliseconds.
//
// The engine intentionally stays minimal — entities pull randomness from
// per-component seeded streams (see RNG) so that adding a new component
// never perturbs the random sequence observed by existing ones, a
// requirement for the regression tests that pin experiment outcomes.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// DefaultTick is the default simulated duration of one tick.
const DefaultTick = 100 * time.Millisecond

// Tickable is implemented by every simulated component that needs to act
// each tick. Tick receives the simulation clock so components can read
// both the tick index and the simulated elapsed time.
type Tickable interface {
	Tick(c *Clock)
}

// TickFunc adapts a plain function to the Tickable interface.
type TickFunc func(c *Clock)

// Tick calls f(c).
func (f TickFunc) Tick(c *Clock) { f(c) }

// Clock tracks simulated time. The zero value is not usable; create one
// through an Engine.
type Clock struct {
	tick     int64
	tickSize time.Duration
}

// Tick returns the number of completed ticks.
func (c *Clock) Tick() int64 { return c.tick }

// TickSize returns the simulated duration of one tick.
func (c *Clock) TickSize() time.Duration { return c.tickSize }

// Now returns the simulated elapsed time.
func (c *Clock) Now() time.Duration { return time.Duration(c.tick) * c.tickSize }

// Seconds returns the simulated elapsed time in seconds.
func (c *Clock) Seconds() float64 { return c.Now().Seconds() }

// TickSeconds returns the duration of one tick in seconds.
func (c *Clock) TickSeconds() float64 { return c.tickSize.Seconds() }

// Engine owns the clock and the ordered set of Tickables.
type Engine struct {
	clock   Clock
	order   []entry
	nextID  int
	stopped bool
	dirty   bool // order needs re-sorting before the next Step
	rng     *RNG
}

type entry struct {
	id       int
	priority int
	t        Tickable
}

// NewEngine creates an engine with the given tick size and master seed.
// A tickSize <= 0 selects DefaultTick.
func NewEngine(tickSize time.Duration, seed int64) *Engine {
	if tickSize <= 0 {
		tickSize = DefaultTick
	}
	return &Engine{
		clock: Clock{tickSize: tickSize},
		rng:   NewRNG(seed),
	}
}

// Clock returns the engine's clock.
func (e *Engine) Clock() *Clock { return &e.clock }

// RNG returns the engine's root random stream factory.
func (e *Engine) RNG() *RNG { return e.rng }

// Register adds a Tickable at priority 0. Components registered at equal
// priority run in registration order.
func (e *Engine) Register(t Tickable) { e.RegisterPriority(t, 0) }

// RegisterPriority adds a Tickable with an explicit priority; lower
// priorities run earlier within a tick. The cluster registers resource
// models at priority -1 (grant resources), frameworks at 0 (consume them),
// and controllers such as the PerfCloud node manager at +1 (observe the
// finished tick).
func (e *Engine) RegisterPriority(t Tickable, priority int) {
	// Appending keeps registration O(1); the sort is deferred to the next
	// Step so bulk registration (hundreds of components in the large-scale
	// testbeds) costs one sort total instead of one per registration.
	e.order = append(e.order, entry{id: e.nextID, priority: priority, t: t})
	e.nextID++
	if n := len(e.order); n > 1 && e.order[n-2].priority > priority {
		e.dirty = true
	}
}

// ensureOrder sorts pending registrations into priority order. Sorting by
// (priority, id) is equivalent to a stable sort on priority, so components
// at equal priority keep registration order.
func (e *Engine) ensureOrder() {
	if !e.dirty {
		return
	}
	sort.Slice(e.order, func(i, j int) bool {
		if e.order[i].priority != e.order[j].priority {
			return e.order[i].priority < e.order[j].priority
		}
		return e.order[i].id < e.order[j].id
	})
	e.dirty = false
}

// Step advances the simulation by exactly one tick.
func (e *Engine) Step() {
	e.ensureOrder()
	for _, en := range e.order {
		en.t.Tick(&e.clock)
	}
	e.clock.tick++
}

// Run advances the simulation by n ticks, or until Stop is called.
func (e *Engine) Run(n int64) {
	e.stopped = false
	for i := int64(0); i < n && !e.stopped; i++ {
		e.Step()
	}
}

// RunFor advances the simulation by the given simulated duration
// (rounded down to whole ticks), or until Stop is called.
func (e *Engine) RunFor(d time.Duration) {
	e.Run(int64(d / e.clock.tickSize))
}

// RunUntil steps the simulation until the predicate returns true or the
// simulated-time limit is reached. It reports whether the predicate fired.
func (e *Engine) RunUntil(pred func() bool, limit time.Duration) bool {
	maxTicks := int64(limit / e.clock.tickSize)
	for i := int64(0); i < maxTicks; i++ {
		if pred() {
			return true
		}
		e.Step()
	}
	return pred()
}

// Stop requests that a Run in progress end after the current tick.
func (e *Engine) Stop() { e.stopped = true }

// RNG hands out independent, deterministically seeded random streams. Each
// named component derives its stream from the master seed and its name, so
// streams are stable across code changes elsewhere in the simulation.
type RNG struct {
	seed int64
}

// NewRNG creates a stream factory from a master seed.
func NewRNG(seed int64) *RNG { return &RNG{seed: seed} }

// Seed returns the master seed.
func (r *RNG) Seed() int64 { return r.seed }

// Stream returns a dedicated *rand.Rand for the named component.
// The same (seed, name) pair always yields the same sequence.
//
// The source is lfSource — bit-for-bit rand.NewSource's generator, with
// the expensive state seeding served from a per-seed cache. Repeated-run
// experiments build a fresh testbed (and so re-derive every component
// stream) per repetition, and compare schemes under identical seeds;
// the cache turns all but the first derivation of each (seed, name)
// stream into a memcpy.
func (r *RNG) Stream(name string) *rand.Rand {
	return rand.New(newLFSource(r.seed ^ hashString(name)))
}

// Streamf is Stream with fmt.Sprintf-style name construction.
func (r *RNG) Streamf(format string, args ...any) *rand.Rand {
	return r.Stream(fmt.Sprintf(format, args...))
}

// NewSeededRand returns a *rand.Rand identical to
// rand.New(rand.NewSource(seed)), with the seeding served from the
// shared per-seed state cache. Experiment drivers that build one RNG per
// repetition from a small set of derived seeds should prefer this over
// rand.NewSource.
func NewSeededRand(seed int64) *rand.Rand { return rand.New(newLFSource(seed)) }

// hashString is FNV-1a over the bytes of s, folded to int64.
func hashString(s string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return int64(h)
}
