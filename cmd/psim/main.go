// Command psim runs a configurable PerfCloud testbed scenario and prints
// job completions plus a per-interval control summary. It is the
// interactive counterpart of the bench harness: one cluster, one workload
// stream, a chosen mitigation scheme.
//
// Usage:
//
//	psim [-servers N] [-workers N] [-scheme default|late|dolly-2|dolly-4|perfcloud]
//	     [-workload terasort|wordcount|inverted-index|spark-logreg|spark-pagerank|spark-svm]
//	     [-jobs N] [-fio N] [-streams N] [-seed N] [-v] [-stride on|off]
//	     [-shards N] [-trace FILE] [-phase-report] [-phase-csv] [-scorecard]
//
// -trace writes a Chrome-trace-event/Perfetto JSON timeline of every
// task attempt (open it at https://ui.perfetto.dev or chrome://tracing);
// -phase-report prints the per-job phase-attribution and critical-path
// tables; -phase-csv emits the same tables as CSV; -scorecard grades the
// run's cap decisions against the testbed's ground truth (which VMs
// really were antagonists, and when) and prints the detection scorecard.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"perfcloud/internal/cluster"
	"perfcloud/internal/core"
	"perfcloud/internal/experiments"
	"perfcloud/internal/mapreduce"
	"perfcloud/internal/obs"
	"perfcloud/internal/spark"
	"perfcloud/internal/straggler"
	"perfcloud/internal/trace"
	"perfcloud/internal/workloads"
)

func main() {
	servers := flag.Int("servers", 1, "physical servers")
	workers := flag.Int("workers", 6, "worker VMs per server")
	scheme := flag.String("scheme", "perfcloud", "mitigation scheme: default|late|dolly-2|dolly-4|perfcloud|hybrid")
	workload := flag.String("workload", "terasort", "benchmark to run")
	jobs := flag.Int("jobs", 3, "number of jobs to run back-to-back")
	nfio := flag.Int("fio", 1, "fio antagonist VMs")
	nstream := flag.Int("streams", 1, "STREAM antagonist VMs")
	seed := flag.Int64("seed", 42, "random seed")
	verbose := flag.Bool("v", false, "print every control interval")
	stride := flag.String("stride", "on", "event-driven time advancement: on|off (off forces per-tick stepping)")
	shards := flag.Int("shards", 0, "cluster tick shards: 0 auto, n forced, -1 flat pre-shard path")
	traceFile := flag.String("trace", "", "write a Perfetto/chrome-trace JSON timeline to this file")
	phaseReport := flag.Bool("phase-report", false, "print per-job phase attribution and critical path")
	phaseCSV := flag.Bool("phase-csv", false, "emit the phase tables as CSV instead of text")
	scorecard := flag.Bool("scorecard", false, "grade cap decisions against ground truth and print the scorecard")
	alerts := flag.Bool("alerts", false, "evaluate the default alert rules on sim time and print the summary")
	alertsJSONL := flag.String("alerts-jsonl", "", "write the alert event stream as JSONL to this file (implies -alerts)")
	flag.Parse()
	if *alertsJSONL != "" {
		*alerts = true
	}

	switch *stride {
	case "on":
	case "off":
		cluster.SetDefaultStride(false)
	default:
		fmt.Fprintf(os.Stderr, "psim: -stride must be on or off, got %q\n", *stride)
		os.Exit(2)
	}
	cluster.SetDefaultShards(*shards)

	cfg := experiments.TestbedConfig{
		Seed:             *seed,
		Servers:          *servers,
		WorkersPerServer: *workers,
	}
	var dolly int
	switch *scheme {
	case "default":
	case "late":
		cfg.Speculator = straggler.NewLATE()
	case "dolly-2":
		dolly = 2
	case "dolly-4":
		dolly = 4
	case "perfcloud":
		cfg.PerfCloud = experiments.ControllerConfig()
	case "hybrid":
		cfg.Speculator = straggler.NewLATE()
		cfg.PerfCloud = experiments.ControllerConfig()
	default:
		fmt.Fprintf(os.Stderr, "psim: unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	var tr *trace.Tracer
	var col *obs.Collector
	if *traceFile != "" || *phaseReport || *phaseCSV {
		tr = trace.NewTracer()
		cfg.Tracer = tr
	}
	if cfg.PerfCloud != nil && (tr != nil || *scorecard) {
		col = obs.NewCollector()
		cfg.PerfCloud.Events = col
	}

	// The alert engine consumes the control plane's audit stream (wired
	// by core.Attach) and emits its own alert events into a dedicated
	// sink set: the collector (if any) plus the -alerts-jsonl file, which
	// therefore contains only alert events — the byte-compare artifact
	// the alert-smoke CI job diffs across same-seed runs.
	var alertEng *obs.AlertEngine
	var alertFile *os.File
	var alertSink *obs.JSONLSink
	var tbRef *experiments.Testbed // set right after NewTestbed; the fast-path probe closes over it
	if *alerts {
		if cfg.PerfCloud == nil {
			fmt.Fprintf(os.Stderr, "psim: -alerts needs a scheme that deploys PerfCloud (got %q)\n", *scheme)
			os.Exit(2)
		}
		var out obs.MultiSink
		if col != nil {
			out = append(out, col)
		}
		if *alertsJSONL != "" {
			f, err := os.Create(*alertsJSONL)
			if err != nil {
				fmt.Fprintln(os.Stderr, "psim:", err)
				os.Exit(1)
			}
			alertFile = f
			alertSink = obs.NewJSONLSink(f)
			out = append(out, alertSink)
		}
		alertEng = obs.NewAlertEngine(obs.DefaultRules(obs.DefaultRulesConfig{
			FastPaths: func() obs.FastPathSnapshot {
				if tbRef == nil {
					return obs.FastPathSnapshot{}
				}
				return tbRef.Clus.FastPathStats()
			},
		}), out)
		cfg.PerfCloud.Alerts = alertEng
	}

	tb := experiments.NewTestbed(cfg)
	tbRef = tb
	alertEng.SetGroundTruth(tb.Truth)
	tb.MustInput("input", 640<<20)
	for i := 0; i < *nfio; i++ {
		tb.AddAntagonist(i%*servers, workloads.NewFioRandRead(
			workloads.BurstPattern{On: 20 * time.Second, Off: 10 * time.Second}))
	}
	for i := 0; i < *nstream; i++ {
		tb.AddAntagonist(i%*servers, workloads.NewStream(
			workloads.BurstPattern{On: 25 * time.Second, Off: 10 * time.Second}))
	}

	spawn := func() straggler.Clone {
		now := tb.Eng.Clock().Seconds()
		switch *workload {
		case "terasort":
			return mustMR(tb.JT.Submit(mapreduce.Terasort("input", 10), now))
		case "wordcount":
			return mustMR(tb.JT.Submit(mapreduce.Wordcount("input", 10), now))
		case "inverted-index":
			return mustMR(tb.JT.Submit(mapreduce.InvertedIndex("input", 10), now))
		case "spark-logreg":
			return mustSpark(tb.Driver.Submit(spark.LogisticRegression(10, 4, 640<<20), now))
		case "spark-pagerank":
			return mustSpark(tb.Driver.Submit(spark.PageRank(10, 3, 640<<20), now))
		case "spark-svm":
			return mustSpark(tb.Driver.Submit(spark.SVM(10, 3, 640<<20), now))
		}
		fmt.Fprintf(os.Stderr, "psim: unknown workload %q\n", *workload)
		os.Exit(2)
		return nil
	}

	for i := 0; i < *jobs; i++ {
		var watch func() bool
		if dolly > 1 {
			clones := make([]straggler.Clone, dolly)
			for c := range clones {
				clones[c] = spawn()
			}
			g := tb.Dolly.Watch(fmt.Sprintf("job-%d", i), clones...)
			watch = g.Done
			if !tb.Stepper().RunUntil(watch, time.Hour) {
				fmt.Fprintln(os.Stderr, "psim: job did not finish")
				os.Exit(1)
			}
			fmt.Printf("[%7.1fs] job %d done: JCT %.1fs (winner of %d clones)\n",
				tb.Eng.Clock().Seconds(), i, g.JCT(), dolly)
			continue
		}
		c := spawn()
		if !tb.Stepper().RunUntil(c.Done, time.Hour) {
			fmt.Fprintln(os.Stderr, "psim: job did not finish")
			os.Exit(1)
		}
		fmt.Printf("[%7.1fs] job %d done: JCT %.1fs\n", tb.Eng.Clock().Seconds(), i, c.JCT())
	}

	if tr != nil {
		var events []obs.Event
		if col != nil {
			events = col.Events()
		}
		if *traceFile != "" {
			f, err := os.Create(*traceFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "psim:", err)
				os.Exit(1)
			}
			if err := tr.WritePerfetto(f, events); err == nil {
				err = f.Close()
				if err == nil {
					fmt.Printf("trace: %d spans written to %s (open at https://ui.perfetto.dev)\n",
						tr.Len(), *traceFile)
				}
			} else {
				f.Close()
				fmt.Fprintln(os.Stderr, "psim:", err)
				os.Exit(1)
			}
		}
		if *phaseReport || *phaseCSV {
			for _, tab := range []*trace.Table{tr.PhaseReport(), tr.CriticalPathReport()} {
				if *phaseCSV {
					fmt.Print(tab.CSV())
				} else {
					fmt.Println(tab.String())
				}
			}
		}
	}

	if *scorecard {
		var events []obs.Event
		if col != nil {
			events = col.Events()
		}
		sc := obs.Score(events, tb.Truth, tb.Eng.Clock().Seconds())
		sc.Scheme = *scheme
		fmt.Println("scorecard:", sc)
	}

	if *alerts {
		if alertSink != nil {
			if err := alertSink.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "psim:", err)
				os.Exit(1)
			}
			if err := alertFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "psim:", err)
				os.Exit(1)
			}
		}
		fmt.Println("alerts:", alertEng.Summary())
		for _, st := range alertEng.Statuses() {
			fmt.Printf("  %-34s %-8s value %.2f threshold %.2f fired %d\n",
				st.Rule, st.State, st.Value, st.Threshold, st.Firings)
		}
	}

	if tb.Sys != nil {
		tb.Sys.EachManager(func(nm *core.NodeManager) {
			throttles, detections := 0, 0
			for _, e := range nm.Trace() {
				if e.IOContention || e.CPUContention {
					detections++
				}
				if len(e.IOCaps)+len(e.CPUCaps) > 0 {
					throttles++
				}
				if *verbose {
					fmt.Printf("  [%s t=%5.0f] iowaitDev=%.1f cpiDev=%.2f ioAnt=%v cpuAnt=%v\n",
						nm.ServerID(), e.TimeSec, e.IowaitDev, e.CPIDev, e.IOAntagonists, e.CPUAntagonists)
				}
			}
			fmt.Printf("%s: %d control intervals, %d with contention, %d with caps in force\n",
				nm.ServerID(), len(nm.Trace()), detections, throttles)
		})
	}
}

func mustMR(j *mapreduce.Job, err error) straggler.Clone {
	if err != nil {
		fmt.Fprintln(os.Stderr, "psim:", err)
		os.Exit(1)
	}
	return j
}

func mustSpark(a *spark.App, err error) straggler.Clone {
	if err != nil {
		fmt.Fprintln(os.Stderr, "psim:", err)
		os.Exit(1)
	}
	return a
}
