// Command perfbench regenerates every table and figure of the paper's
// motivation and evaluation sections and prints them as aligned tables
// (or CSV). The full suite at paper scale takes a few minutes; pass
// -quick for a scaled-down run, or -fig to select one experiment.
//
// Usage:
//
//	perfbench [-fig all|1|2|3|4|5|6|7|9|10|11|12] [-seed N] [-quick] [-csv] [-parallel N]
//	          [-suite] [-suitejson FILE] [-cpuprofile FILE] [-memprofile FILE] [-fastpaths]
//	          [-tracedir DIR] [-shards N] [-scorecard] [-alerts] [-health]
//
// -alerts installs the default alert rule pack for every PerfCloud run
// (sustained victim deviation, cap dwell, false-cap watchdog, monitor
// overrun) and appends per-scheme alert tables after Figs 11 and 12;
// like scorecards, alerting is a pure observer and deterministic per
// seed. -health profiles the engine itself — sampled wall-clock phase
// timers, shared-pool contention, runtime/metrics — and prints the
// report on exit; health numbers are wall-clock and intentionally NOT
// deterministic.
//
// -scorecard grades every scheme's cap decisions against the testbed's
// ground-truth antagonist registry and appends a detection scorecard
// table (precision, recall, false-cap rate, time-to-detect, cap dwell,
// JCT recovery) after the Fig 11, Fig 12 and control-ablation tables.
// Scoring is a pure observer of the audit-event stream: result tables
// are bit-identical with or without it, and scorecards themselves are
// deterministic per seed.
//
// -tracedir enables data-plane tracing for the Fig 11/12 experiments:
// every repetition writes a Perfetto/chrome-trace JSON timeline into the
// directory, and the result rows carry per-phase time attribution.
//
// -parallel bounds both concurrency layers — per-server tick work inside a
// cluster and independent experiment repetitions. 0 (the default) uses
// GOMAXPROCS; 1 forces fully sequential execution. Either setting produces
// bit-for-bit identical tables for the same seed. Both layers draw workers
// from one shared slot pool, so their product never oversubscribes the
// machine.
//
// -suite runs the evaluation suite (Figs 3-12) and records wall-clock
// per-figure timings, merged by name into the JSON file named by
// -suitejson (default BENCH_suite.json, same schema as benchjson output:
// Count 1, NsPerOp = elapsed nanoseconds).
//
// -cpuprofile and -memprofile write pprof profiles of the selected run,
// for inspecting the simulation and monitoring hot loops with
// `go tool pprof`. The heap profile is taken after all experiments
// complete, preceded by a GC so it reflects live retained memory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"perfcloud/internal/benchfmt"
	"perfcloud/internal/cluster"
	"perfcloud/internal/experiments"
	"perfcloud/internal/obs"
	"perfcloud/internal/sim"
	"perfcloud/internal/stats"
	"perfcloud/internal/trace"
)

func main() {
	// Benchmark-harness GC tuning: the experiment suite allocates in
	// short-lived bursts (run setup) and then holds a small steady heap,
	// so the default 100% growth target forces frequent tiny collections.
	// Relaxing it trades a few tens of MB for fewer GC pauses in the
	// timed regions. Simulation results are unaffected — this changes
	// only when memory is reclaimed. GOGC in the environment still wins.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}
	fig := flag.String("fig", "all", "which figure to regenerate (all, 1-7, 9-12, ablations, extensions)")
	seed := flag.Int64("seed", 42, "master random seed")
	quick := flag.Bool("quick", false, "scaled-down large experiments")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	timelines := flag.String("timelines", "", "directory to write raw time-series CSVs (Figs 3, 9, 10)")
	parallel := flag.Int("parallel", 0, "worker bound for tick and run concurrency (0 = GOMAXPROCS, 1 = sequential)")
	suite := flag.Bool("suite", false, "run the Fig 3-12 evaluation suite and record per-figure wall-clock timings")
	suitejson := flag.String("suitejson", "BENCH_suite.json", "file to merge -suite timings into")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	fastpaths := flag.Bool("fastpaths", false, "print the simulation's cumulative fast-path hit-rate counters after the run")
	scorecard := flag.Bool("scorecard", false, "grade each scheme's cap decisions against ground truth and print detection scorecards (Figs 11, 12, control ablation)")
	tracedir := flag.String("tracedir", "", "directory to write per-repetition Perfetto traces (Figs 11, 12)")
	shards := flag.Int("shards", 0, "cluster tick shards: 0 auto, n forced, -1 flat pre-shard path")
	alerts := flag.Bool("alerts", false, "evaluate the default alert rules during PerfCloud runs and append alert tables (Figs 11, 12)")
	health := flag.Bool("health", false, "profile the engine itself (sampled phase timers, pool contention, runtime stats) and print the report")
	flag.Parse()
	cluster.SetDefaultTickWorkers(*parallel)
	cluster.SetDefaultShards(*shards)
	experiments.SetMaxParallelRuns(*parallel)
	if *fastpaths {
		experiments.SetTrackFastPaths(true)
	}
	if *tracedir != "" {
		if err := os.MkdirAll(*tracedir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		experiments.SetTraceDir(*tracedir)
	}
	if *scorecard {
		experiments.SetScorecards(true)
	}
	if *alerts {
		// The signal-only default pack: every rule reads the audit-event
		// stream, so one pack serves every testbed the suite builds.
		experiments.SetAlertRules(obs.DefaultRules(obs.DefaultRulesConfig{}))
	}
	var hl *obs.Health
	if *health {
		// Engine self-profiling: wall-clock phase timers on every testbed
		// plus slot-pool contention and runtime/metrics, reported on exit.
		// Explicitly non-deterministic; result tables are unaffected.
		hl = obs.NewHealth(obs.NewRegistry())
		hl.SetPoolStats(func() obs.PoolHealth {
			s := sim.SharedPool().Stats()
			return obs.PoolHealth{
				Capacity: s.Capacity, InUse: s.InUse, Peak: s.Peak,
				TryAcquires: s.TryAcquires, Denied: s.Denied, GrantedSlots: s.GrantedSlots,
			}
		})
		experiments.SetHealth(hl)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "perfbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "perfbench:", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "perfbench: wrote", *memprofile)
		}()
	}
	if *timelines != "" {
		if err := os.MkdirAll(*timelines, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
	}
	writeSeries := func(name string, names []string, series []*stats.TimeSeries) {
		if *timelines == "" {
			return
		}
		path := filepath.Join(*timelines, name)
		if err := os.WriteFile(path, []byte(trace.SeriesCSV(names, series)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "perfbench: wrote", path)
	}

	emit := func(t *trace.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
	suiteFigs := map[string]bool{
		"3": true, "4": true, "5": true, "6": true, "7": true,
		"9": true, "10": true, "11": true, "12": true,
	}
	want := func(f string) bool {
		if *suite {
			return suiteFigs[f]
		}
		return *fig == "all" || *fig == f
	}
	var timings []benchfmt.Result
	timed := func(name string, fn func()) {
		t0 := time.Now()
		fn()
		if *suite {
			timings = append(timings, benchfmt.Result{
				Name: "FigSuite/" + name, Count: 1,
				NsPerOp: float64(time.Since(t0).Nanoseconds()),
			})
		}
	}
	start := time.Now()

	if want("1") {
		emit(experiments.Fig1(*seed).Table())
	}
	if want("2") {
		emit(experiments.Fig2(*seed).Table())
	}
	if want("3") {
		timed("Fig3", func() {
			r := experiments.Fig3(*seed)
			emit(r.Table())
			writeSeries("fig3_iowait_deviation.csv",
				[]string{"alone", "with_fio"},
				[]*stats.TimeSeries{r.Alone.Iowait, r.WithFio.Iowait})
		})
	}
	if want("4") {
		timed("Fig4", func() { emit(experiments.Fig4(*seed).Table()) })
	}
	if want("5") {
		timed("Fig5", func() { emit(experiments.Fig5(*seed).Table()) })
	}
	if want("6") {
		timed("Fig6", func() { emit(experiments.Fig6(*seed).Table()) })
	}
	if want("7") {
		timed("Fig7", func() { emit(experiments.Fig7().Table()) })
	}
	var fig9 *experiments.Fig9Result
	if want("9") || want("10") {
		timed("Fig9", func() {
			r := experiments.Fig9(*seed)
			fig9 = &r
		})
	}
	if want("9") {
		emit(fig9.Table())
		def, pc := fig9.Arm("default"), fig9.Arm("perfcloud")
		writeSeries("fig9_deviations.csv",
			[]string{"default_iowait_dev", "perfcloud_iowait_dev", "default_cpi_dev", "perfcloud_cpi_dev"},
			[]*stats.TimeSeries{def.Iowait, pc.Iowait, def.CPI, pc.CPI})
	}
	if want("10") {
		timed("Fig10", func() {
			r10 := experiments.Fig10(fig9.Arm("perfcloud"))
			emit(r10.Table())
			writeSeries("fig10_caps.csv",
				[]string{"fio_iops_cap", "stream_core_cap"},
				[]*stats.TimeSeries{r10.FioCap, r10.StreamCap})
		})
	}
	if want("11") {
		timed("Fig11", func() {
			cfg := experiments.DefaultLargeScaleConfig()
			cfg.Seed = *seed
			if *quick {
				cfg.Servers, cfg.WorkersPerServer = 5, 8
				cfg.NumMR, cfg.NumSpark = 20, 20
				cfg.Fio, cfg.Streams = 4, 4
			}
			r := experiments.Fig11With(cfg, []experiments.Scheme{
				experiments.SchemeLATE(),
				experiments.SchemeDolly(2),
				experiments.SchemeDolly(4),
				experiments.SchemeDolly(6),
				experiments.SchemePerfCloud(),
			})
			emit(r.Table())
			if *scorecard {
				emit(r.ScorecardTable())
			}
			if *alerts {
				emit(r.AlertTable())
			}
		})
	}
	if want("12") {
		timed("Fig12", func() {
			cfg := experiments.DefaultVariabilityConfig()
			cfg.Seed = *seed
			if *quick {
				cfg.Servers, cfg.WorkersPerServer = 5, 8
				cfg.Runs, cfg.Tasks = 8, 20
				cfg.Fio, cfg.Streams = 4, 4
			}
			r := experiments.Fig12With(cfg, []experiments.Scheme{
				experiments.SchemeLATE(),
				experiments.SchemeDolly(2),
				experiments.SchemePerfCloud(),
			})
			emit(r.Table())
			if *scorecard {
				emit(r.ScorecardTable())
			}
			if *alerts {
				emit(r.AlertTable())
			}
		})
	}
	if want("ablations") {
		emit(experiments.AblationDetector(*seed).Table())
		emit(experiments.AblationPearson(*seed).Table())
		rc := experiments.AblationControl(*seed)
		emit(rc.Table())
		if *scorecard {
			emit(rc.ScorecardTable())
		}
		emit(experiments.AblationEWMA(*seed).Table())
	}
	if want("extensions") {
		emit(experiments.Heterogeneous(*seed).Table())
		emit(experiments.Migration(*seed).Table())
	}
	elapsed := time.Since(start)
	if *suite {
		timings = append(timings, benchfmt.Result{
			Name: "FigSuite/Total", Count: 1,
			NsPerOp: float64(elapsed.Nanoseconds()),
		})
		prev, err := benchfmt.ReadFile(*suitejson)
		if err == nil {
			err = benchfmt.WriteFile(*suitejson, benchfmt.Merge(prev, timings))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "perfbench: wrote", *suitejson)
	}
	if *fastpaths {
		printFastPaths(os.Stderr)
	}
	if hl != nil {
		hl.SampleRuntime()
		fmt.Fprint(os.Stderr, "health:\n"+hl.Summary())
	}
	fmt.Fprintf(os.Stderr, "perfbench: done in %v\n", elapsed.Round(time.Millisecond))
}

// printFastPaths reports how much simulation work the fast paths
// absorbed across every testbed the run built: the share of grant-phase
// ticks skipped (quiescence) or reusing demand vectors, and the per-
// resource allocator input-memo hit rates.
func printFastPaths(w *os.File) {
	fp := experiments.FastPathTotals()
	rate := func(hit, miss uint64) float64 {
		if hit+miss == 0 {
			return 0
		}
		return 100 * float64(hit) / float64(hit+miss)
	}
	ticks := fp.QuiescentSkips + fp.SteadyReuses + fp.Rebuilds
	fmt.Fprintf(w, "fastpaths: %d grant-phase ticks: %d skipped (%.1f%%), %d reused (%.1f%%), %d rebuilt\n",
		ticks, fp.QuiescentSkips, rate(fp.QuiescentSkips, fp.SteadyReuses+fp.Rebuilds),
		fp.SteadyReuses, rate(fp.SteadyReuses, fp.QuiescentSkips+fp.Rebuilds), fp.Rebuilds)
	fmt.Fprintf(w, "fastpaths: event-driven strides: %d cluster ticks elided across %d horizons (avg %.1f ticks/stride)\n",
		fp.StrideSkips, fp.HorizonRecomputes,
		float64(fp.StrideSkips)/float64(max(fp.HorizonRecomputes, 1)))
	fmt.Fprintf(w, "fastpaths: sharded ticking: %d whole-shard skips\n", fp.ShardSkips)
	fmt.Fprintf(w, "fastpaths: allocator memo hit rates: cpu %.1f%% (%d/%d), mem %.1f%% (%d/%d), disk %.1f%% (%d/%d)\n",
		rate(fp.CPUMemoHits, fp.CPUMemoMisses), fp.CPUMemoHits, fp.CPUMemoHits+fp.CPUMemoMisses,
		rate(fp.MemMemoHits, fp.MemMemoMisses), fp.MemMemoHits, fp.MemMemoHits+fp.MemMemoMisses,
		rate(fp.DiskMemoHits, fp.DiskMemoMisses), fp.DiskMemoHits, fp.DiskMemoHits+fp.DiskMemoMisses)
}
