// Command benchjson converts `go test -bench` output into JSON.
//
// It reads benchmark output on stdin, echoes every line to stdout
// unchanged (so it can sit in a pipeline without hiding the results),
// and merges the parsed benchmark results into the JSON array in the
// file named by -o: entries already present keep their position and are
// replaced by the new measurement, new names append. That way a partial
// rerun (say, one package's benchmarks) refreshes its rows without
// dropping everyone else's.
//
// With -baseline FILE it additionally prints a per-benchmark comparison
// of the parsed results against the baseline JSON, so a pipeline like
// `make bench-compare` shows regressions inline. Adding -max-regress PCT
// turns the comparison into a gate: benchjson exits non-zero if any
// benchmark's ns/op is more than PCT percent above its baseline or its
// allocs/op grew — the CI guard for the monitoring hot loops.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH.json
//	go test -bench=. -benchmem ./... | benchjson -baseline BENCH.json
//	go test -bench=. -benchmem ./... | benchjson -baseline BENCH.json -max-regress 5
//
// Results that never pass through `go test` — the per-figure wall-clock
// entries perfbench -suite merges straight into its JSON file — can be
// gated too: -injson FILE takes the results from a benchfmt JSON file
// instead of stdin, and -filter REGEX restricts which names are
// compared, so CI can hold just FigSuite/Fig11 and FigSuite/Fig12
// against the committed BENCH_suite.json baseline:
//
//	perfbench -suite -suitejson fresh.json
//	benchjson -injson fresh.json -filter 'FigSuite/Fig1[12]$' \
//	  -baseline BENCH_suite.json -max-regress 25
//
// -ratio 'NUM,DEN' (name substrings) prints ns/op(NUM)/ns/op(DEN) over
// this run's results, and -max-ratio turns it into a gate. Both operands
// come from the same run, so the gate checks scaling — "ticking a
// 10x-larger fleet may cost at most 2x per tick" — independent of the
// machine's absolute speed:
//
//	benchjson -injson BENCH_scale.json \
//	  -ratio 'servers=10240,servers=1024' -max-ratio 2
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"

	"perfcloud/internal/benchfmt"
)

func main() {
	out := flag.String("o", "", "JSON file to merge results into (default stdout, suppressing the echo)")
	baseline := flag.String("baseline", "", "baseline JSON file to diff the parsed results against")
	maxRegress := flag.Float64("max-regress", 0, "with -baseline: exit non-zero if any ns/op regressed by more than this percentage (0 = report only)")
	injson := flag.String("injson", "", "benchfmt JSON file to read results from instead of parsing stdin")
	filter := flag.String("filter", "", "regexp: only results whose name matches are compared and merged")
	ratio := flag.String("ratio", "", "'NUM,DEN' name substrings: print ns/op(NUM)/ns/op(DEN) from this run's results")
	maxRatio := flag.Float64("max-ratio", 0, "with -ratio: exit non-zero if the ratio exceeds this (0 = report only)")
	flag.Parse()
	if *maxRegress != 0 && *baseline == "" {
		fatal(fmt.Errorf("-max-regress requires -baseline"))
	}
	if *maxRatio != 0 && *ratio == "" {
		fatal(fmt.Errorf("-max-ratio requires -ratio"))
	}

	var results []benchfmt.Result
	if *injson != "" {
		var err error
		if results, err = benchfmt.ReadFile(*injson); err != nil {
			fatal(err)
		}
	} else {
		echo := *out != "" || *baseline != ""
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if echo {
				fmt.Println(line)
			}
			if r, ok := benchfmt.ParseLine(line); ok {
				results = append(results, r)
			}
		}
		if err := sc.Err(); err != nil {
			fatal(err)
		}
	}
	if *filter != "" {
		re, err := regexp.Compile(*filter)
		if err != nil {
			fatal(err)
		}
		kept := results[:0]
		for _, r := range results {
			if re.MatchString(r.Name) {
				kept = append(kept, r)
			}
		}
		results = kept
	}

	if *baseline != "" {
		base, err := benchfmt.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		byName := make(map[string]benchfmt.Result, len(base))
		for _, r := range base {
			byName[r.Name] = r
		}
		fmt.Printf("\nvs %s:\n", *baseline)
		for _, r := range results {
			fmt.Println(" ", benchfmt.FormatDelta(byName[r.Name], r))
		}
		if *maxRegress != 0 {
			if msgs := benchfmt.Regressions(base, results, *maxRegress); len(msgs) > 0 {
				fmt.Fprintln(os.Stderr, "benchjson: regressions over threshold:")
				for _, m := range msgs {
					fmt.Fprintln(os.Stderr, "  "+m)
				}
				os.Exit(1)
			}
			fmt.Printf("all benchmarks within %+.1f%% of baseline\n", *maxRegress)
		}
	}

	if *ratio != "" {
		num, den, ok := strings.Cut(*ratio, ",")
		if !ok || num == "" || den == "" {
			fatal(fmt.Errorf("-ratio wants 'NUM,DEN' name substrings, got %q", *ratio))
		}
		v, err := benchfmt.Ratio(results, num, den)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ratio %s / %s = %.2fx\n", num, den, v)
		if *maxRatio != 0 && v > *maxRatio {
			fmt.Fprintf(os.Stderr, "benchjson: ratio %.2fx exceeds maximum %.2fx\n", v, *maxRatio)
			os.Exit(1)
		}
	}

	if *out == "" {
		if *baseline != "" || *ratio != "" {
			return
		}
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(buf, '\n'))
		return
	}

	prev, err := benchfmt.ReadFile(*out)
	if err != nil {
		fatal(err)
	}
	if err := benchfmt.WriteFile(*out, benchfmt.Merge(prev, results)); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "benchjson: wrote", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
