// Command benchjson converts `go test -bench` output into JSON.
//
// It reads benchmark output on stdin, echoes every line to stdout
// unchanged (so it can sit in a pipeline without hiding the results),
// and writes a JSON array of the parsed benchmark results to the file
// named by -o. Each entry records the benchmark name, the iteration
// count, and the per-op metrics reported by the standard library
// harness (ns/op always; B/op and allocs/op when -benchmem is on).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string  `json:"name"`
	Count       int64   `json:"count"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8   12345   987.6 ns/op   512 B/op   7 allocs/op
//
// and reports whether the line was a benchmark result at all.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	count, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Count: count}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	return r, true
}

func main() {
	out := flag.String("o", "", "file to write the JSON array to (default stdout, suppressing the echo)")
	flag.Parse()

	echo := *out != ""
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo {
			fmt.Println(line)
		}
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchjson: wrote", *out)
}
