package main

import (
	"fmt"
	"io"
	"sort"
	"time"

	"perfcloud/internal/cluster"
	"perfcloud/internal/core"
	"perfcloud/internal/experiments"
	"perfcloud/internal/mapreduce"
	"perfcloud/internal/obs"
	"perfcloud/internal/sim"
	tracing "perfcloud/internal/trace"
	"perfcloud/internal/workloads"
)

// runConfig parameterises one perfcloudd run. Metrics and Events are
// the optional observability hooks (nil = off); Log receives the human
// console lines.
type runConfig struct {
	Duration time.Duration
	Seed     int64
	Metrics  *obs.Registry
	Events   obs.Sink
	Log      io.Writer
	// Series, when non-nil, receives the daemon's time series: per-
	// interval deviation signals and the throttle footprint, stamped
	// with exact simulation timestamps (the /debug/series endpoint
	// serves them with delta-scrape and downsampling).
	Series *obs.SeriesRegistry
	// OnInterval, when non-nil, is called after every control interval
	// with the cluster's cumulative fast-path snapshot — the hook the
	// /debug/fastpaths endpoint reads through.
	OnInterval func(obs.FastPathSnapshot)
	// OnScore, when non-nil, makes the run retain its own audit-event
	// collector and grade the cap decisions against the testbed's
	// ground-truth antagonist registry when the run ends.
	OnScore func(obs.Scorecard)
	// Tracer, when non-nil, records job/task/attempt spans with phase
	// attribution for the whole run (-trace exports them as Perfetto).
	Tracer *tracing.Tracer
	// AlertRules, when non-empty, deploys the deterministic alert engine:
	// rules are evaluated on sim time against the run's audit stream and
	// every lifecycle transition is emitted into Events as an EventAlert.
	AlertRules []obs.Rule
	// OnAlerts, when non-nil, is called after every control interval with
	// the rules' live statuses and running summary — the hook the
	// /debug/alerts endpoint reads through.
	OnAlerts func([]obs.AlertStatus, obs.AlertSummary)
	// Health, when non-nil, attaches the wall-clock self-profiling layer
	// (cluster/monitor phase timers, shard imbalance, runtime/metrics) —
	// explicitly non-deterministic, served on /debug/health, never part
	// of the event stream.
	Health *obs.Health
}

// run executes the canonical perfcloudd scenario: one server hosting a
// six-VM high-priority Hadoop cluster running back-to-back terasort,
// plus a bursty fio-randread antagonist and two decoys, managed by the
// PerfCloud agent. The whole loop is sequential, so with a given Seed
// the emitted event stream is byte-identical across runs (asserted by
// TestSameSeedRunsProduceIdenticalEventStreams).
func run(cfg runConfig) error {
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	// Scoring needs the full event stream regardless of what the caller
	// wired, so it keeps a private collector alongside cfg.Events.
	var col *obs.Collector
	events := cfg.Events
	if cfg.OnScore != nil {
		col = obs.NewCollector()
		if events != nil {
			events = obs.MultiSink{events, col}
		} else {
			events = col
		}
	}
	ctl := experiments.ControllerConfig()
	ctl.Metrics = cfg.Metrics
	ctl.Events = events
	ctl.Health = cfg.Health
	var alertEng *obs.AlertEngine
	if len(cfg.AlertRules) > 0 {
		// The engine emits into the same composite sink the managers use
		// (JSONL file, ring, collector); core.Attach wires it to consume
		// the managers' audit stream and ticks it on sim time.
		alertEng = obs.NewAlertEngine(cfg.AlertRules, events)
		ctl.Alerts = alertEng
	}
	tb := experiments.NewTestbed(experiments.TestbedConfig{
		Seed:      cfg.Seed,
		PerfCloud: ctl,
		Tracer:    cfg.Tracer,
	})
	alertEng.SetGroundTruth(tb.Truth)
	tb.MustInput("input", 640<<20)
	tb.AddAntagonist(0, workloads.NewFioRandRead(
		workloads.BurstPattern{StartOffset: 10 * time.Second, On: 20 * time.Second, Off: 10 * time.Second}))
	tb.AddAntagonist(0, workloads.NewSysbenchOLTP(workloads.AlwaysOn))
	tb.AddAntagonist(0, workloads.NewSysbenchCPU(workloads.AlwaysOn))

	fmt.Fprintln(cfg.Log, "perfcloudd: node manager online (server-0), monitoring interval 5s")
	fmt.Fprintln(cfg.Log, "perfcloudd: high-priority app 'hadoop' (6 VMs); low-priority: fio-randread, sysbench-oltp, sysbench-cpu")

	// Daemon-level instruments: the throttle footprint plus the
	// simulation's fast-path accounting, refreshed every control interval.
	gCapped := cfg.Metrics.Gauge("perfcloud_capped_vms",
		"VMs with any cgroup limit in force.")
	gSkips := cfg.Metrics.Gauge("perfcloud_fastpath_quiescent_skips",
		"Grant-phase ticks elided because the server was quiescent.")
	gSteady := cfg.Metrics.Gauge("perfcloud_fastpath_steady_reuses",
		"Grant phases that reused the previous demand vectors.")
	gRebuilds := cfg.Metrics.Gauge("perfcloud_fastpath_rebuilds",
		"Grant phases that rebuilt the demand vectors.")
	gStrides := cfg.Metrics.Gauge("perfcloud_fastpath_stride_skips",
		"Whole-cluster ticks elided by event-driven strides.")
	gHorizons := cfg.Metrics.Gauge("perfcloud_fastpath_horizon_recomputes",
		"Next-event horizon computations backing the strides.")
	gShardSkips := cfg.Metrics.Gauge("perfcloud_fastpath_shard_skips",
		"Whole-shard ticks elided by the sharded tick.")
	memoHits := [3]*obs.Gauge{}
	memoMisses := [3]*obs.Gauge{}
	for i, res := range []string{"cpu", "mem", "disk"} {
		l := obs.Label{Key: "res", Value: res}
		memoHits[i] = cfg.Metrics.Gauge("perfcloud_alloc_memo_hits",
			"Allocator input-memo hits.", l)
		memoMisses[i] = cfg.Metrics.Gauge("perfcloud_alloc_memo_misses",
			"Allocator input-memo misses.", l)
	}

	// Daemon time series. Throttle footprint is sampled at observe time;
	// the deviation signals are appended from the node manager's trace
	// entries below, so each point carries the control interval's exact
	// simulation timestamp even when strides elided the ticks between.
	sCapped := cfg.Series.Series("capped_vms")
	sIowait := cfg.Series.Series("dev_iowait", obs.Label{Key: "server", Value: "server-0"})
	sCPI := cfg.Series.Series("dev_cpi", obs.Label{Key: "server", Value: "server-0"})

	interval := ctl.IntervalSec
	observe := func(now float64) {
		fp := tb.Clus.FastPathStats()
		gSkips.Set(float64(fp.QuiescentSkips))
		gSteady.Set(float64(fp.SteadyReuses))
		gRebuilds.Set(float64(fp.Rebuilds))
		gStrides.Set(float64(fp.StrideSkips))
		gHorizons.Set(float64(fp.HorizonRecomputes))
		gShardSkips.Set(float64(fp.ShardSkips))
		hits := [3]uint64{fp.CPUMemoHits, fp.MemMemoHits, fp.DiskMemoHits}
		misses := [3]uint64{fp.CPUMemoMisses, fp.MemMemoMisses, fp.DiskMemoMisses}
		for i := range hits {
			memoHits[i].Set(float64(hits[i]))
			memoMisses[i].Set(float64(misses[i]))
		}
		capped := 0
		tb.Clus.EachVM(func(vm *cluster.VM) {
			if vm.Cgroup().Throttle().Active() {
				capped++
			}
		})
		gCapped.Set(float64(capped))
		sCapped.Append(now, float64(capped))
		if events != nil {
			events.Emit(obs.Event{T: now, Type: obs.EventFastPaths, Fast: &fp})
		}
		if cfg.OnInterval != nil {
			cfg.OnInterval(fp)
		}
		if alertEng != nil && cfg.OnAlerts != nil {
			cfg.OnAlerts(alertEng.Statuses(), alertEng.Summary())
		}
		if cfg.Health != nil {
			// Wall-clock self-profiling refresh: shard load imbalance (the
			// max/mean active-server ratio across tick shards) and the
			// runtime/metrics bridge. Kept strictly out of the sim outputs.
			var max, sum float64
			shards := 0
			tb.Clus.EachShardStats(func(st cluster.ShardStats) {
				shards++
				sum += float64(st.Active)
				if float64(st.Active) > max {
					max = float64(st.Active)
				}
			})
			if shards > 0 && sum > 0 {
				cfg.Health.ObserveShardImbalance(max * float64(shards) / sum)
			}
			cfg.Health.SampleRuntime()
		}
	}

	// Keep a terasort stream running while the daemon manages the server.
	var doneFn func() bool
	submit := func() error {
		j, err := tb.JT.Submit(mapreduce.Terasort("input", 10), tb.Eng.Clock().Seconds())
		if err != nil {
			return err
		}
		doneFn = j.Done
		return nil
	}
	if err := submit(); err != nil {
		return err
	}

	logged := 0
	nm := tb.Sys.Managers()[0]
	ticks := int64(cfg.Duration / tb.Eng.Clock().TickSize())
	nextObserve := interval
	st := tb.Stepper()
	for i := int64(0); i < ticks; {
		i += st.Step(func(clk *sim.Clock) int64 {
			// Stop at completions (the resubmission below must happen on the
			// same tick per-tick stepping would use) and before the next
			// daemon observation so its gauges sample the same instants.
			if doneFn() {
				return 0
			}
			b := ticks - i - 1
			if nb := clk.TicksBefore(nextObserve, b); nb < b {
				b = nb
			}
			return b
		})
		now := tb.Eng.Clock().Seconds()
		if doneFn() {
			fmt.Fprintf(cfg.Log, "[%7.1fs] hadoop: terasort finished, resubmitting\n", now)
			if err := submit(); err != nil {
				return err
			}
		}
		if now >= nextObserve {
			observe(now)
			nextObserve += interval
		}
		trace := nm.Trace()
		for ; logged < len(trace); logged++ {
			e := trace[logged]
			sIowait.Append(e.TimeSec, e.IowaitDev)
			sCPI.Append(e.TimeSec, e.CPIDev)
			logEntry(cfg.Log, e)
		}
	}
	fmt.Fprintf(cfg.Log, "perfcloudd: shutting down after %v simulated\n", cfg.Duration)
	if alertEng != nil {
		fmt.Fprintf(cfg.Log, "perfcloudd: alerts: %s\n", alertEng.Summary())
		if cfg.OnAlerts != nil {
			cfg.OnAlerts(alertEng.Statuses(), alertEng.Summary())
		}
	}
	if cfg.OnScore != nil {
		sc := obs.Score(col.Events(), tb.Truth, tb.Eng.Clock().Seconds())
		sc.Scheme = "perfcloud"
		cfg.OnScore(sc)
	}
	return nil
}

// logEntry prints one control interval the way the daemon's journal
// would, throttles in sorted VM order.
func logEntry(w io.Writer, e core.TraceEntry) {
	switch {
	case len(e.IOAntagonists)+len(e.CPUAntagonists) > 0:
		fmt.Fprintf(w, "[%7.1fs] CONTENTION iowaitDev=%.1f cpiDev=%.2f -> antagonists io=%v cpu=%v\n",
			e.TimeSec, e.IowaitDev, e.CPIDev, e.IOAntagonists, e.CPUAntagonists)
	case e.IOContention || e.CPUContention:
		fmt.Fprintf(w, "[%7.1fs] contention detected (iowaitDev=%.1f cpiDev=%.2f), identifying...\n",
			e.TimeSec, e.IowaitDev, e.CPIDev)
	}
	for _, vm := range sortedKeys(e.IOCaps) {
		fmt.Fprintf(w, "[%7.1fs]   blkio throttle %s -> %.0f IOPS\n", e.TimeSec, vm, e.IOCaps[vm])
	}
	for _, vm := range sortedKeys(e.CPUCaps) {
		fmt.Fprintf(w, "[%7.1fs]   vcpu quota %s -> %.2f cores\n", e.TimeSec, vm, e.CPUCaps[vm])
	}
}

func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
