// Command perfcloudd demonstrates the PerfCloud node-manager agent the
// way it would run as a daemon on a physical server (§III-D): it builds
// one simulated server hosting a high-priority Hadoop cluster plus
// antagonist VMs, runs the agent, and logs every 5-second control
// interval — detections, identified antagonists and the caps applied.
//
// With -http the daemon also exposes its control-plane observability:
// an index of every endpoint on /, a Prometheus /metrics endpoint, the
// typed decision audit log on /debug/events, the simulation's fast-path
// accounting on /debug/fastpaths, the daemon's time series on
// /debug/series (?since=<simSeconds> for delta scrapes, ?max=N to
// downsample), the wall-clock engine self-profiling snapshot on
// /debug/health, Go runtime profiles under /debug/pprof/ and, once the
// run finishes, the detection scorecard — cap decisions graded against
// the testbed's ground-truth antagonist registry — on /debug/score.
// -events appends the full audit log as JSONL.
// -alerts deploys the default deterministic alert rule pack: rules are
// evaluated on sim time, their lifecycle transitions land in the audit
// stream as alert events, and live statuses serve on /debug/alerts.
// -trace records every task attempt with phase attribution and writes a
// Perfetto/chrome-trace JSON timeline, with the agent's cap/release
// decisions as instant markers.
//
// Usage:
//
//	perfcloudd [-duration 3m] [-seed N] [-http :8080] [-events out.jsonl]
//	           [-alerts] [-trace out.json]
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"time"

	"perfcloud/internal/obs"
	"perfcloud/internal/sim"
	"perfcloud/internal/trace"
)

func main() {
	duration := flag.Duration("duration", 3*time.Minute, "simulated runtime")
	seed := flag.Int64("seed", 42, "random seed")
	httpAddr := flag.String("http", "", "serve /metrics, /debug/events and /debug/fastpaths on this address (e.g. :8080)")
	eventsPath := flag.String("events", "", "write the decision audit log as JSONL to this file")
	tracePath := flag.String("trace", "", "write a Perfetto/chrome-trace JSON timeline to this file")
	alerts := flag.Bool("alerts", false, "evaluate the default alert rules on sim time (statuses on /debug/alerts)")
	flag.Parse()

	cfg := runConfig{Duration: *duration, Seed: *seed, Log: os.Stdout}
	if *alerts {
		cfg.AlertRules = obs.DefaultRules(obs.DefaultRulesConfig{})
	}

	var sinks obs.MultiSink
	var jsonl *obs.JSONLSink
	var eventsFile *os.File
	var col *obs.Collector
	if *tracePath != "" {
		cfg.Tracer = trace.NewTracer()
		col = obs.NewCollector()
		sinks = append(sinks, col)
	}
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfcloudd:", err)
			os.Exit(1)
		}
		eventsFile = f
		jsonl = obs.NewJSONLSink(f)
		sinks = append(sinks, jsonl)
	}

	var srv *daemonServer
	if *httpAddr != "" {
		cfg.Metrics = obs.NewRegistry()
		cfg.Series = obs.NewSeriesRegistry(0)
		srv = newDaemonServer(cfg.Metrics, obs.NewRing(4096), cfg.Series)
		sinks = append(sinks, srv.ring)
		cfg.OnInterval = srv.setFastPaths
		cfg.OnScore = srv.setScore
		cfg.OnAlerts = srv.setAlerts
		// Wall-clock self-profiling rides along with the HTTP surface:
		// phase timers, tick-pool contention and the runtime bridge, all
		// kept out of the deterministic sim outputs.
		cfg.Health = obs.NewHealth(cfg.Metrics)
		cfg.Health.SetPoolStats(func() obs.PoolHealth {
			st := sim.SharedPool().Stats()
			return obs.PoolHealth{
				Capacity: st.Capacity, InUse: st.InUse, Peak: st.Peak,
				TryAcquires: st.TryAcquires, Denied: st.Denied, GrantedSlots: st.GrantedSlots,
			}
		})
		srv.health = cfg.Health
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfcloudd:", err)
			os.Exit(1)
		}
		go http.Serve(ln, srv.handler())
		fmt.Printf("perfcloudd: serving /metrics, /debug/{events,fastpaths,series,score,alerts,health,pprof} on http://%s\n", ln.Addr())
	}
	if len(sinks) > 0 {
		cfg.Events = sinks
	}

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "perfcloudd:", err)
		os.Exit(1)
	}

	if jsonl != nil {
		if err := jsonl.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "perfcloudd: writing events:", err)
			os.Exit(1)
		}
		eventsFile.Close()
		fmt.Printf("perfcloudd: audit log written to %s\n", *eventsPath)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err == nil {
			err = cfg.Tracer.WritePerfetto(f, col.Events())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfcloudd: writing trace:", err)
			os.Exit(1)
		}
		fmt.Printf("perfcloudd: %d spans written to %s (open at https://ui.perfetto.dev)\n",
			cfg.Tracer.Len(), *tracePath)
	}
	if srv != nil {
		fmt.Println("perfcloudd: run complete; endpoints stay up, ctrl-c to exit")
		select {}
	}
}
