// Command perfcloudd demonstrates the PerfCloud node-manager agent the
// way it would run as a daemon on a physical server (§III-D): it builds
// one simulated server hosting a high-priority Hadoop cluster plus
// antagonist VMs, runs the agent, and logs every 5-second control
// interval — detections, identified antagonists and the caps applied.
//
// Usage:
//
//	perfcloudd [-duration 3m] [-seed N]
package main

import (
	"flag"
	"fmt"
	"time"

	"perfcloud/internal/experiments"
	"perfcloud/internal/mapreduce"
	"perfcloud/internal/workloads"
)

func main() {
	duration := flag.Duration("duration", 3*time.Minute, "simulated runtime")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	tb := experiments.NewTestbed(experiments.TestbedConfig{
		Seed:      *seed,
		PerfCloud: experiments.ControllerConfig(),
	})
	tb.MustInput("input", 640<<20)
	tb.AddAntagonist(0, workloads.NewFioRandRead(
		workloads.BurstPattern{StartOffset: 10 * time.Second, On: 20 * time.Second, Off: 10 * time.Second}))
	tb.AddAntagonist(0, workloads.NewSysbenchOLTP(workloads.AlwaysOn))
	tb.AddAntagonist(0, workloads.NewSysbenchCPU(workloads.AlwaysOn))

	fmt.Println("perfcloudd: node manager online (server-0), monitoring interval 5s")
	fmt.Println("perfcloudd: high-priority app 'hadoop' (6 VMs); low-priority: fio-randread, sysbench-oltp, sysbench-cpu")

	// Keep a terasort stream running while the daemon manages the server.
	var doneFn func() bool
	submit := func() {
		j, err := tb.JT.Submit(mapreduce.Terasort("input", 10), tb.Eng.Clock().Seconds())
		if err != nil {
			panic(err)
		}
		doneFn = j.Done
	}
	submit()

	logged := 0
	nm := tb.Sys.Managers()[0]
	ticks := int64(*duration / tb.Eng.Clock().TickSize())
	for i := int64(0); i < ticks; i++ {
		tb.Eng.Step()
		if doneFn() {
			fmt.Printf("[%7.1fs] hadoop: terasort finished, resubmitting\n", tb.Eng.Clock().Seconds())
			submit()
		}
		trace := nm.Trace()
		for ; logged < len(trace); logged++ {
			e := trace[logged]
			switch {
			case len(e.IOAntagonists)+len(e.CPUAntagonists) > 0:
				fmt.Printf("[%7.1fs] CONTENTION iowaitDev=%.1f cpiDev=%.2f -> antagonists io=%v cpu=%v\n",
					e.TimeSec, e.IowaitDev, e.CPIDev, e.IOAntagonists, e.CPUAntagonists)
			case e.IOContention || e.CPUContention:
				fmt.Printf("[%7.1fs] contention detected (iowaitDev=%.1f cpiDev=%.2f), identifying...\n",
					e.TimeSec, e.IowaitDev, e.CPIDev)
			}
			for vm, cap := range e.IOCaps {
				fmt.Printf("[%7.1fs]   blkio throttle %s -> %.0f IOPS\n", e.TimeSec, vm, cap)
			}
			for vm, cap := range e.CPUCaps {
				fmt.Printf("[%7.1fs]   vcpu quota %s -> %.2f cores\n", e.TimeSec, vm, cap)
			}
		}
	}
	fmt.Printf("perfcloudd: shutting down after %v simulated\n", *duration)
}
