package main

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"

	"perfcloud/internal/obs"
)

// daemonServer exposes a running (or finished) daemon's observability
// state over HTTP: Prometheus text on /metrics, the decision audit
// log's retained tail on /debug/events, the simulation's fast-path
// accounting on /debug/fastpaths, the daemon's time series on
// /debug/series and the latest detection scorecard on /debug/score.
// All endpoints are safe to serve while the simulation is stepping:
// the registries and ring are internally synchronized, and the
// fast-path snapshot and scorecard are replaced under mu by the run
// loop's hooks rather than read live from the cluster.
type daemonServer struct {
	reg    *obs.Registry
	ring   *obs.Ring
	series *obs.SeriesRegistry

	mu    sync.Mutex
	fast  obs.FastPathSnapshot
	score *obs.Scorecard
}

func newDaemonServer(reg *obs.Registry, ring *obs.Ring, series *obs.SeriesRegistry) *daemonServer {
	return &daemonServer{reg: reg, ring: ring, series: series}
}

// setFastPaths is the runConfig.OnInterval hook.
func (s *daemonServer) setFastPaths(fp obs.FastPathSnapshot) {
	s.mu.Lock()
	s.fast = fp
	s.mu.Unlock()
}

// setScore is the runConfig.OnScore hook.
func (s *daemonServer) setScore(sc obs.Scorecard) {
	s.mu.Lock()
	s.score = &sc
	s.mu.Unlock()
}

func (s *daemonServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/debug/events", s.serveEvents)
	mux.HandleFunc("/debug/fastpaths", s.serveFastPaths)
	mux.HandleFunc("/debug/series", s.serveSeries)
	mux.HandleFunc("/debug/score", s.serveScore)
	return mux
}

func (s *daemonServer) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	if err := s.reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *daemonServer) serveEvents(w http.ResponseWriter, _ *http.Request) {
	events := s.ring.Events()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Total    uint64      `json:"total"`
		Retained int         `json:"retained"`
		Events   []obs.Event `json:"events"`
	}{Total: s.ring.Total(), Retained: len(events), Events: events})
}

func (s *daemonServer) serveFastPaths(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	fp := s.fast
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(fp)
}

// serveSeries renders the daemon's time series. ?since=<simSeconds>
// returns only points strictly after that simulation time (delta
// scrape); ?max=N downsamples each series to at most N points.
func (s *daemonServer) serveSeries(w http.ResponseWriter, r *http.Request) {
	var since float64
	var max int
	if v := r.URL.Query().Get("since"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = f
	}
	if v := r.URL.Query().Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "bad max: "+err.Error(), http.StatusBadRequest)
			return
		}
		max = n
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.series.WriteJSON(w, since, max); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// serveScore returns the latest detection scorecard, or 404 until the
// run has finished and graded itself.
func (s *daemonServer) serveScore(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	sc := s.score
	s.mu.Unlock()
	if sc == nil {
		http.Error(w, "no scorecard yet: run still in progress", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sc)
}
