package main

import (
	"encoding/json"
	"net/http"
	"sync"

	"perfcloud/internal/obs"
)

// daemonServer exposes a running (or finished) daemon's observability
// state over HTTP: Prometheus text on /metrics, the decision audit
// log's retained tail on /debug/events, and the simulation's fast-path
// accounting on /debug/fastpaths. All three are safe to serve while
// the simulation is stepping: the registry and ring are internally
// synchronized, and the fast-path snapshot is replaced under mu by the
// run loop's OnInterval hook rather than read live from the cluster.
type daemonServer struct {
	reg  *obs.Registry
	ring *obs.Ring

	mu   sync.Mutex
	fast obs.FastPathSnapshot
}

func newDaemonServer(reg *obs.Registry, ring *obs.Ring) *daemonServer {
	return &daemonServer{reg: reg, ring: ring}
}

// setFastPaths is the runConfig.OnInterval hook.
func (s *daemonServer) setFastPaths(fp obs.FastPathSnapshot) {
	s.mu.Lock()
	s.fast = fp
	s.mu.Unlock()
}

func (s *daemonServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/debug/events", s.serveEvents)
	mux.HandleFunc("/debug/fastpaths", s.serveFastPaths)
	return mux
}

func (s *daemonServer) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *daemonServer) serveEvents(w http.ResponseWriter, _ *http.Request) {
	events := s.ring.Events()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Total    uint64      `json:"total"`
		Retained int         `json:"retained"`
		Events   []obs.Event `json:"events"`
	}{Total: s.ring.Total(), Retained: len(events), Events: events})
}

func (s *daemonServer) serveFastPaths(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	fp := s.fast
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(fp)
}
