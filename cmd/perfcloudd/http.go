package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"perfcloud/internal/obs"
)

// daemonServer exposes a running (or finished) daemon's observability
// state over HTTP: Prometheus text on /metrics, the decision audit
// log's retained tail on /debug/events, the simulation's fast-path
// accounting on /debug/fastpaths, the daemon's time series on
// /debug/series, the latest detection scorecard on /debug/score, the
// alert engine's rule statuses on /debug/alerts and the wall-clock
// self-profiling snapshot on /debug/health. All endpoints are safe to
// serve while the simulation is stepping: the registries and ring are
// internally synchronized, and the fast-path snapshot, scorecard and
// alert statuses are replaced under mu by the run loop's hooks rather
// than read live from the cluster.
type daemonServer struct {
	reg    *obs.Registry
	ring   *obs.Ring
	series *obs.SeriesRegistry
	health *obs.Health

	mu     sync.Mutex
	fast   obs.FastPathSnapshot
	score  *obs.Scorecard
	alerts *alertState
}

// alertState is the /debug/alerts payload, swapped whole by setAlerts.
type alertState struct {
	Summary  obs.AlertSummary  `json:"summary"`
	Statuses []obs.AlertStatus `json:"statuses"`
}

func newDaemonServer(reg *obs.Registry, ring *obs.Ring, series *obs.SeriesRegistry) *daemonServer {
	return &daemonServer{reg: reg, ring: ring, series: series}
}

// setFastPaths is the runConfig.OnInterval hook.
func (s *daemonServer) setFastPaths(fp obs.FastPathSnapshot) {
	s.mu.Lock()
	s.fast = fp
	s.mu.Unlock()
}

// setScore is the runConfig.OnScore hook.
func (s *daemonServer) setScore(sc obs.Scorecard) {
	s.mu.Lock()
	s.score = &sc
	s.mu.Unlock()
}

// setAlerts is the runConfig.OnAlerts hook.
func (s *daemonServer) setAlerts(sts []obs.AlertStatus, sum obs.AlertSummary) {
	s.mu.Lock()
	s.alerts = &alertState{Summary: sum, Statuses: sts}
	s.mu.Unlock()
}

// endpoints lists every registered path, in registration order; the
// index handler renders it so the daemon is explorable from "/".
var endpoints = []struct{ path, doc string }{
	{"/metrics", "Prometheus text exposition of all registered instruments"},
	{"/debug/events", "retained tail of the decision audit log (JSON)"},
	{"/debug/fastpaths", "cumulative simulation fast-path counters (JSON)"},
	{"/debug/series", "daemon time series; ?since=<simSec> delta scrape, ?max=N downsample"},
	{"/debug/score", "detection scorecard vs ground truth (404 until the run ends)"},
	{"/debug/alerts", "alert rule statuses and summary (404 until rules evaluate)"},
	{"/debug/health", "wall-clock engine self-profiling snapshot (JSON)"},
	{"/debug/pprof/", "Go runtime profiles (heap, goroutine, CPU via ?seconds=N)"},
}

func (s *daemonServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.serveIndex)
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/debug/events", s.serveEvents)
	mux.HandleFunc("/debug/fastpaths", s.serveFastPaths)
	mux.HandleFunc("/debug/series", s.serveSeries)
	mux.HandleFunc("/debug/score", s.serveScore)
	mux.HandleFunc("/debug/alerts", s.serveAlerts)
	mux.HandleFunc("/debug/health", s.serveHealth)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveIndex lists the registered endpoints. The "/" pattern matches
// every otherwise-unhandled path, so anything but the root itself is an
// explicit 404 rather than a silent index.
func (s *daemonServer) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "perfcloudd endpoints:")
	for _, e := range endpoints {
		fmt.Fprintf(w, "  %-18s %s\n", e.path, e.doc)
	}
}

func (s *daemonServer) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	if err := s.reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *daemonServer) serveEvents(w http.ResponseWriter, _ *http.Request) {
	events := s.ring.Events()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Total    uint64      `json:"total"`
		Retained int         `json:"retained"`
		Events   []obs.Event `json:"events"`
	}{Total: s.ring.Total(), Retained: len(events), Events: events})
}

func (s *daemonServer) serveFastPaths(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	fp := s.fast
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(fp)
}

// serveSeries renders the daemon's time series. ?since=<simSeconds>
// returns only points strictly after that simulation time (delta
// scrape); ?max=N downsamples each series to at most N points.
func (s *daemonServer) serveSeries(w http.ResponseWriter, r *http.Request) {
	var since float64
	var max int
	if v := r.URL.Query().Get("since"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = f
	}
	if v := r.URL.Query().Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "bad max: "+err.Error(), http.StatusBadRequest)
			return
		}
		max = n
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.series.WriteJSON(w, since, max); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// serveScore returns the latest detection scorecard, or 404 until the
// run has finished and graded itself.
func (s *daemonServer) serveScore(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	sc := s.score
	s.mu.Unlock()
	if sc == nil {
		http.Error(w, "no scorecard yet: run still in progress", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sc)
}

// serveAlerts returns the alert engine's latest rule statuses and
// summary, or 404 until the first evaluation (or when -alerts is off).
func (s *daemonServer) serveAlerts(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	a := s.alerts
	s.mu.Unlock()
	if a == nil {
		http.Error(w, "no alerts yet: rules not evaluated (is -alerts on?)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(a)
}

// serveHealth returns the wall-clock self-profiling snapshot: phase
// timers, pool contention, shard imbalance and the runtime bridge.
func (s *daemonServer) serveHealth(w http.ResponseWriter, _ *http.Request) {
	if s.health == nil {
		http.Error(w, "health layer not attached", http.StatusNotFound)
		return
	}
	s.health.SampleRuntime()
	w.Header().Set("Content-Type", "application/json")
	if err := s.health.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
