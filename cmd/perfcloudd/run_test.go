package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"perfcloud/internal/obs"
)

// runStream runs the daemon scenario with a JSONL sink and returns the
// raw audit log.
func runStream(t *testing.T, seed int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	if err := run(runConfig{Duration: 3 * time.Minute, Seed: seed, Events: sink, Log: io.Discard}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSameSeedRunsProduceIdenticalEventStreams(t *testing.T) {
	a := runStream(t, 42)
	b := runStream(t, 42)
	if len(a) == 0 {
		t.Fatal("empty event stream")
	}
	if !bytes.Equal(a, b) {
		// Find the first differing line for a useful failure message.
		la := strings.Split(string(a), "\n")
		lb := strings.Split(string(b), "\n")
		for i := range la {
			if i >= len(lb) || la[i] != lb[i] {
				t.Fatalf("streams diverge at line %d:\n  a: %s\n  b: %s", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("streams differ in length: %d vs %d lines", len(la), len(lb))
	}
}

func TestAuditLogCoversTheDecisionPipeline(t *testing.T) {
	stream := runStream(t, 42)
	types := map[obs.EventType]int{}
	sc := bufio.NewScanner(bytes.NewReader(stream))
	for sc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		types[e.Type]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []obs.EventType{
		obs.EventSample, obs.EventDetect, obs.EventIdentify,
		obs.EventCap, obs.EventFastPaths,
	} {
		if types[want] == 0 {
			t.Errorf("no %q events in audit log (got %v)", want, types)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	srv := newDaemonServer(reg, obs.NewRing(4096))
	err := run(runConfig{
		Duration: 3 * time.Minute, Seed: 42,
		Metrics: reg, Events: srv.ring,
		OnInterval: srv.setFastPaths,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	metrics := string(get("/metrics"))
	for _, want := range []string{
		"# TYPE perfcloud_intervals_total counter",
		`perfcloud_intervals_total{server="server-0"}`,
		"# TYPE perfcloud_iowait_dev histogram",
		`perfcloud_cap_updates_total{res="io",server="server-0"}`,
		"perfcloud_fastpath_steady_reuses",
		"perfcloud_capped_vms",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var events struct {
		Total    uint64      `json:"total"`
		Retained int         `json:"retained"`
		Events   []obs.Event `json:"events"`
	}
	if err := json.Unmarshal(get("/debug/events"), &events); err != nil {
		t.Fatal(err)
	}
	if events.Total == 0 || events.Retained == 0 {
		t.Fatalf("no events retained: %+v", events)
	}
	types := map[obs.EventType]bool{}
	for _, e := range events.Events {
		types[e.Type] = true
	}
	if !types[obs.EventDetect] || !types[obs.EventIdentify] || !types[obs.EventCap] {
		t.Errorf("/debug/events missing decision types, got %v", types)
	}

	var fp obs.FastPathSnapshot
	if err := json.Unmarshal(get("/debug/fastpaths"), &fp); err != nil {
		t.Fatal(err)
	}
	if fp.SteadyReuses == 0 || fp.CPUMemoHits == 0 {
		t.Errorf("fast-path snapshot looks empty: %+v", fp)
	}
}
